open Fhe_ir

(** The benchmark registry: the eight applications of the paper's
    evaluation (§8), by their Table 4 short names. *)

type app = {
  name : string;  (** short name: SF, HCD, LR, MR, PR, MLP, Lenet-5, Lenet-C *)
  description : string;
  build : unit -> Program.t;
  inputs : seed:int -> (string * float array) list;
  exec_build : unit -> Program.t;
      (** the exec-scale variant: same circuit structure, shrunk data
          (16×16 images, 256 regression samples, miniature LeNet) so a
          real encrypted run on {!Ckks.Backend} stays in CI budget *)
  exec_inputs : seed:int -> (string * float array) list;
  exec_tol : float;
      (** pinned max|err| bound for the exec variant compiled at
          rbits 28 / waterline 22 (measured error with ~8× headroom) *)
}

val all : app list
(** In the paper's order: SF, HCD, LR, MR, PR, MLP, Lenet-5, Lenet-C. *)

val small : app list
(** The six non-LeNet apps (used where LeNet-scale runs are too slow). *)

val tensor : app list
(** Apps the tensor frontend adds beyond the paper's eight (MLP-W,
    MLP-B).  Kept separate from {!all} so tiers pinned to the paper's
    app set are untouched. *)

val find : string -> app
(** Case-insensitive lookup over {!all} and {!tensor}. @raise Not_found. *)
