open Fhe_ir

(** Harris Corner Detection (HCD) on a packed 64×64 image:
    Sobel gradients, 3×3 box-summed second-moment matrix, response
    [det(M) − k·trace(M)²] (~110 ops, multiplicative depth 3). *)

val build : ?n_slots:int -> ?width:int -> unit -> Program.t
(** Input: ["img"] (default 64×64; [width] shrinks the image for the
    real-runtime exec tier). *)

val inputs : ?width:int -> seed:int -> unit -> (string * float array) list
