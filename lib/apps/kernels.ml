(* The kernel library moved to {!Fhe_tensor.Kernels} when the tensor
   frontend arrived (the lowering is its main consumer); this alias
   keeps the historical [Fhe_apps.Kernels] path working for the
   hand-built apps, the tests, and the bench micro-section. *)
include Fhe_tensor.Kernels
