open Fhe_ir

let image_width = 64

let sobel_x =
  [| [| -1.0; 0.0; 1.0 |]; [| -2.0; 0.0; 2.0 |]; [| -1.0; 0.0; 1.0 |] |]

let sobel_y =
  [| [| -1.0; -2.0; -1.0 |]; [| 0.0; 0.0; 0.0 |]; [| 1.0; 2.0; 1.0 |] |]

let build ?(n_slots = 16384) ?(width = image_width) () =
  let b = Builder.create ~n_slots () in
  let img = Builder.input b "img" in
  let gx = Kernels.conv2d b img ~width ~height:width ~weights:sobel_x in
  let gy = Kernels.conv2d b img ~width ~height:width ~weights:sobel_y in
  let out = Builder.add b (Builder.square b gx) (Builder.square b gy) in
  Builder.finish b ~outputs:[ out ]

let inputs ?(width = image_width) ~seed () =
  [ ("img", Data.image ~seed (width * width)) ]
