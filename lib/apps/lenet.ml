open Fhe_ir

type variant = Mnist | Cifar

let geometry = function
  | Mnist -> (28, 1) (* width/height, input channels *)
  | Cifar -> (32, 3)

(* Convolution over strided (dilated) channel layouts: the logical pixel
   (r, c) of a stride-s feature map lives in slot s*(r*width + c). *)
let conv_layer b ~width ~stride ~out_channels ~weights chans =
  let kh = 5 and kw = 5 in
  let cy = kh / 2 and cx = kw / 2 in
  List.init out_channels (fun oc ->
      let terms = ref [] in
      List.iteri
        (fun ic x ->
          for dy = 0 to kh - 1 do
            for dx = 0 to kw - 1 do
              let w = weights oc ic dy dx in
              let shift = stride * (((dy - cy) * width) + (dx - cx)) in
              let tap = Builder.rotate b x shift in
              terms := Builder.mul b tap (Builder.const b w) :: !terms
            done
          done)
        chans;
      Builder.add_many b (List.rev !terms))

let square_layer b chans = List.map (Builder.square b) chans

let pool_layer b ~width ~stride chans =
  let quarter = Builder.const b 0.25 in
  let pool x =
    let s = stride in
    let sum =
      Builder.add b
        (Builder.add b x (Builder.rotate b x s))
        (Builder.add b
           (Builder.rotate b x (s * width))
           (Builder.rotate b x ((s * width) + s)))
    in
    Builder.mul b sum quarter
  in
  List.map pool chans

(* One-hot masked flatten: pick each valid strided position and rotate
   it to its packed destination.  Masks are shared across channels. *)
let flatten b ~width ~stride chans =
  let grid = width / stride in
  let feat_per_chan = grid * grid in
  let terms = ref [] in
  List.iteri
    (fun c x ->
      for r = 0 to grid - 1 do
        for cc = 0 to grid - 1 do
          let pos = stride * ((r * width) + cc) in
          let dst = (c * feat_per_chan) + (r * grid) + cc in
          let mask = Array.make (pos + 1) 0.0 in
          mask.(pos) <- 1.0;
          let tag = Printf.sprintf "onehot%d" pos in
          let sel = Builder.mul b x (Builder.vconst b ~tag mask) in
          terms := Builder.rotate b sel (pos - dst) :: !terms
        done
      done)
    chans;
  (Builder.add_many b (List.rev !terms), List.length chans * feat_per_chan)

let next_pow2 n =
  let rec go k = if k >= n then k else go (2 * k) in
  go 1

let dense_matrix ~seed ~dim ~rows =
  let fan = float_of_int dim in
  let m = Data.matrix ~seed ~rows:dim ~cols:dim in
  Array.mapi
    (fun r row ->
      if r < rows then Array.map (fun w -> 2.0 *. w /. sqrt fan) row
      else Array.map (fun _ -> 0.0) row)
    m

(* The full network and the exec-tier miniature share everything but
   their geometry: conv → x² → pool twice, masked flatten, then a dense
   head with square activations between (not after) the layers.  [head]
   gives the row count of each dense layer; each layer's matrix dim is
   the padded width of what feeds it (the flatten for the first, the
   previous layer's padded rows after).  Keeping one emitter keeps the
   two variants' op streams structurally in lockstep — the compile-tier
   digests pin the full network, the exec tier runs the miniature. *)
let network b ~width ~seed ~out_channels:(oc1, oc2) ~head chans =
  let conv_w layer =
    let g = Fhe_util.Prng.create (seed + layer) in
    let tbl = Hashtbl.create 64 in
    fun oc ic dy dx ->
      let key = (oc, ic, dy, dx) in
      match Hashtbl.find_opt tbl key with
      | Some w -> w
      | None ->
          let w = Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0 /. 25.0 in
          Hashtbl.replace tbl key w;
          w
  in
  (* Conv1 -> x^2 -> AvgPool *)
  let c1 = conv_layer b ~width ~stride:1 ~out_channels:oc1 ~weights:(conv_w 1) chans in
  let p1 = pool_layer b ~width ~stride:1 (square_layer b c1) in
  (* Conv2 -> x^2 -> AvgPool (stride doubled by pool1) *)
  let c2 = conv_layer b ~width ~stride:2 ~out_channels:oc2 ~weights:(conv_w 2) p1 in
  let p2 = pool_layer b ~width ~stride:2 (square_layer b c2) in
  (* Flatten (stride now 4) and dense head *)
  let flat, feat = flatten b ~width ~stride:4 p2 in
  let rec dense x ~dim ~layer = function
    | [] -> x
    | rows :: rest ->
        let fc =
          Kernels.matvec_bsgs b x ~dim
            ~mat:(dense_matrix ~seed:(seed + 10 + layer) ~dim ~rows)
        in
        (match rest with
        | [] -> fc
        | _ ->
            dense (Builder.square b fc) ~dim:(next_pow2 rows)
              ~layer:(layer + 1) rest)
  in
  dense flat ~dim:(next_pow2 feat) ~layer:0 (head ~feat)

let build ?(n_slots = 16384) ?(seed = 11) variant =
  let width, in_channels = geometry variant in
  let b = Builder.create ~n_slots () in
  let chans =
    List.init in_channels (fun c -> Builder.input b (Printf.sprintf "ch%d" c))
  in
  let out =
    network b ~width ~seed ~out_channels:(6, 16)
      ~head:(fun ~feat:_ -> [ 120; 84; 10 ])
      chans
  in
  Builder.finish b ~outputs:[ out ]

let inputs ~seed variant =
  let width, in_channels = geometry variant in
  List.init in_channels (fun c ->
      (Printf.sprintf "ch%d" c, Data.image ~seed:(seed + c) (width * width)))

(* The exec-tier miniature: identical layer structure (conv → x² → pool,
   twice, then flatten and a square-activated dense head) on an 8×8
   image with 2 channels per conv stage, so a real encrypted run
   finishes in milliseconds while still exercising every op kind the
   full network uses (strided rotations, masked flatten, BSGS dense). *)
let small_width = 8

let build_small ?(n_slots = 512) ?(seed = 11) variant =
  let width = small_width in
  let _, in_channels = geometry variant in
  let b = Builder.create ~n_slots () in
  let chans =
    List.init in_channels (fun c -> Builder.input b (Printf.sprintf "ch%d" c))
  in
  let out =
    network b ~width ~seed ~out_channels:(2, 2)
      ~head:(fun ~feat -> [ next_pow2 feat; 4 ])
      chans
  in
  Builder.finish b ~outputs:[ out ]

let inputs_small ~seed variant =
  let _, in_channels = geometry variant in
  List.init in_channels (fun c ->
      (Printf.sprintf "ch%d" c,
       Data.image ~seed:(seed + c) (small_width * small_width)))
