module T = Fhe_tensor

type variant = Mnist | Cifar

let geometry = function
  | Mnist -> (28, 1) (* width/height, input channels *)
  | Cifar -> (32, 3)

let next_pow2 n =
  let rec go k = if k >= n then k else go (2 * k) in
  go 1

let dense_matrix ~seed ~dim ~rows =
  let fan = float_of_int dim in
  let m = Data.matrix ~seed ~rows:dim ~cols:dim in
  Array.mapi
    (fun r row ->
      if r < rows then Array.map (fun w -> 2.0 *. w /. sqrt fan) row
      else Array.map (fun _ -> 0.0) row)
    m

(* Per-conv-layer weights, drawn lazily in emission order and memoized
   so every lowering of the same graph sees identical values. *)
let conv_weights ~seed layer =
  let g = Fhe_util.Prng.create (seed + layer) in
  let tbl = Hashtbl.create 64 in
  fun oc ic dy dx ->
    let key = (oc, ic, dy, dx) in
    match Hashtbl.find_opt tbl key with
    | Some w -> w
    | None ->
        let w = Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0 /. 25.0 in
        Hashtbl.replace tbl key w;
        w

(* The full network and the exec-tier miniature share everything but
   their geometry: conv → x² → pool twice, masked flatten, then a dense
   head with square activations between (not after) the layers.  [head]
   gives the row count of each dense layer; each layer's matrix dim is
   the padded width of what feeds it (the flatten for the first, the
   previous layer's padded rows after).  One graph emitter keeps the
   two variants' op streams structurally in lockstep — the compile-tier
   digests pin the full network, the exec tier runs the miniature. *)
let graph_of ~n_slots ~width ~in_channels ~seed ~out_channels:(oc1, oc2) ~head
    () =
  let g = T.Graph.create ~n_slots () in
  let x = T.Graph.input_img g ~prefix:"ch" ~channels:in_channels ~width () in
  (* Conv1 -> x^2 -> AvgPool *)
  let c1 =
    T.Graph.conv2d g ~out_channels:oc1 ~ksize:5
      ~weights:(conv_weights ~seed 1) x
  in
  let p1 = T.Graph.pool_avg g (T.Graph.square g c1) in
  (* Conv2 -> x^2 -> AvgPool (stride doubled by pool1) *)
  let c2 =
    T.Graph.conv2d g ~out_channels:oc2 ~ksize:5
      ~weights:(conv_weights ~seed 2) p1
  in
  let p2 = T.Graph.pool_avg g (T.Graph.square g c2) in
  (* Flatten (stride now 4) and dense head *)
  let flat = T.Graph.flatten g p2 in
  let feat = T.Graph.dim g flat in
  let rec dense x ~dim ~layer = function
    | [] -> x
    | rows :: rest -> (
        let fc =
          T.Graph.dense g ~rows
            ~mat:(dense_matrix ~seed:(seed + 10 + layer) ~dim ~rows)
            x
        in
        match rest with
        | [] -> fc
        | _ ->
            dense (T.Graph.square g fc) ~dim:(next_pow2 rows)
              ~layer:(layer + 1) rest)
  in
  T.Graph.output g (dense flat ~dim:(next_pow2 feat) ~layer:0 (head ~feat));
  g

(* The dense head runs BSGS — O(√dim) input rotations dominate at the
   1024-wide flatten — pinned as the lowering plan. *)
let plan = { T.Layout.dense = T.Layout.Bsgs }

let graph ?(n_slots = 16384) ?(seed = 11) variant =
  let width, in_channels = geometry variant in
  graph_of ~n_slots ~width ~in_channels ~seed ~out_channels:(6, 16)
    ~head:(fun ~feat:_ -> [ 120; 84; 10 ])
    ()

let build ?n_slots ?seed variant = T.Lower.lower ~plan (graph ?n_slots ?seed variant)

let data ~seed variant =
  let width, in_channels = geometry variant in
  [ ( "ch",
      Array.init in_channels (fun c ->
          Data.image ~seed:(seed + c) (width * width)) ) ]

let inputs ~seed variant =
  let width, in_channels = geometry variant in
  List.init in_channels (fun c ->
      (Printf.sprintf "ch%d" c, Data.image ~seed:(seed + c) (width * width)))

(* The exec-tier miniature: identical layer structure (conv → x² → pool,
   twice, then flatten and a square-activated dense head) on an 8×8
   image with 2 channels per conv stage, so a real encrypted run
   finishes in milliseconds while still exercising every op kind the
   full network uses (strided rotations, masked flatten, BSGS dense). *)
let small_width = 8

let graph_small ?(n_slots = 512) ?(seed = 11) variant =
  let _, in_channels = geometry variant in
  graph_of ~n_slots ~width:small_width ~in_channels ~seed ~out_channels:(2, 2)
    ~head:(fun ~feat -> [ next_pow2 feat; 4 ])
    ()

let build_small ?n_slots ?seed variant =
  T.Lower.lower ~plan (graph_small ?n_slots ?seed variant)

let data_small ~seed variant =
  let _, in_channels = geometry variant in
  [ ( "ch",
      Array.init in_channels (fun c ->
          Data.image ~seed:(seed + c) (small_width * small_width)) ) ]

let inputs_small ~seed variant =
  let _, in_channels = geometry variant in
  List.init in_channels (fun c ->
      (Printf.sprintf "ch%d" c,
       Data.image ~seed:(seed + c) (small_width * small_width)))
