module T = Fhe_tensor

(* The tensor-frontend catalog: every registry app whose circuit is now
   *generated* from a {!Fhe_tensor.Graph} rather than hand-built, plus
   the wide/batched MLP variants the frontend adds.  [fhec tensor], the
   bench tensor section and the @tensor tier all drive layout search
   from these graphs; the pinned [plan] is what the production [build]
   in {!Registry} uses, and the digest pins in test_tensor.ml hold the
   lowering to the historical hand-built op streams. *)

type entry = {
  name : string;
  description : string;
  graph : unit -> T.Graph.t;  (** compile-tier graph (16384 slots) *)
  plan : T.Layout.plan;  (** the pinned production packing *)
  data : seed:int -> (string * float array array) list;
      (** logical tensor data for {!T.Lower.pack_inputs} /
          {!T.Lower.reference} at compile-tier geometry *)
  exec_graph : unit -> T.Graph.t;  (** exec-scale graph (shrunk data) *)
  exec_data : seed:int -> (string * float array array) list;
}

let mlp_data ~seed =
  [ ("x", [| Data.signal ~seed ~lo:0.0 ~hi:1.0 Mlp.input_dim |]) ]

let mlp_wide_data ~seed =
  [ ("x", [| Data.signal ~seed ~lo:0.0 ~hi:1.0 Mlp.wide_dim |]) ]

let all =
  [ { name = "MLP";
      description = "64-64-16-10 perceptron, square activations";
      graph = (fun () -> Mlp.graph ());
      plan = Mlp.plan;
      data = (fun ~seed -> mlp_data ~seed);
      exec_graph = (fun () -> Mlp.graph ~n_slots:128 ());
      exec_data = (fun ~seed -> mlp_data ~seed) };
    { name = "MLP-W";
      description = "128-128-32-10 perceptron, poly(x/2 + x\xc2\xb2/4) activations";
      graph = (fun () -> Mlp.graph_wide ());
      plan = Mlp.plan_wide;
      data = (fun ~seed -> mlp_wide_data ~seed);
      exec_graph = (fun () -> Mlp.graph_wide ~n_slots:256 ());
      exec_data = (fun ~seed -> mlp_wide_data ~seed) };
    { name = "MLP-B";
      description = "batched 64-64-16-10 perceptron, 256 users interleaved";
      graph = (fun () -> Mlp.graph_batched ());
      plan = Mlp.plan_batched;
      data = (fun ~seed -> Mlp.batched_data ~n_slots:16384 ~seed ());
      exec_graph = (fun () -> Mlp.graph_batched ~n_slots:512 ~batch:8 ());
      exec_data =
        (fun ~seed -> Mlp.batched_data ~n_slots:512 ~batch:8 ~seed ()) };
    { name = "Lenet-5";
      description = "LeNet-5 inference, MNIST shapes";
      graph = (fun () -> Lenet.graph Lenet.Mnist);
      plan = Lenet.plan;
      data = (fun ~seed -> Lenet.data ~seed Lenet.Mnist);
      exec_graph = (fun () -> Lenet.graph_small Lenet.Mnist);
      exec_data = (fun ~seed -> Lenet.data_small ~seed Lenet.Mnist) };
    { name = "Lenet-C";
      description = "LeNet-5 inference, CIFAR-10 shapes";
      graph = (fun () -> Lenet.graph Lenet.Cifar);
      plan = Lenet.plan;
      data = (fun ~seed -> Lenet.data ~seed Lenet.Cifar);
      exec_graph = (fun () -> Lenet.graph_small Lenet.Cifar);
      exec_data = (fun ~seed -> Lenet.data_small ~seed Lenet.Cifar) }
  ]

let find name =
  let lower = String.lowercase_ascii name in
  match
    List.find_opt (fun e -> String.lowercase_ascii e.name = lower) all
  with
  | Some e -> e
  | None -> raise Not_found
