open Fhe_ir

(** Multi-Layer Perceptron (MLP) inference: a 64→64→16→10 network with
    square activations, dense layers as Halevi–Shoup diagonal
    matrix-vector products over one packed input ciphertext.

    Since the tensor frontend landed, all variants are built from one
    {!Fhe_tensor.Graph} description and lowered under a pinned
    {!Fhe_tensor.Layout.plan}: [build] uses the historical [diag]
    packing (digest-identical to the hand-built emission), [build_wide]
    a wider network under [bsgs], and [build_batched] the same 64-dim
    network with many users interleaved in one ciphertext. *)

val input_dim : int

val graph :
  ?n_slots:int -> ?seed:int -> ?batch:int -> unit -> Fhe_tensor.Graph.t
(** The 64-64-16-10 network as a tensor graph ([batch] users, default
    1). *)

val plan : Fhe_tensor.Layout.plan
(** The pinned packing of {!build}: [diag]. *)

val build : ?n_slots:int -> ?seed:int -> unit -> Program.t
(** Input: ["x"] (the feature vector in the first {!input_dim} slots);
    output: the 10 logits in the first slots. *)

val inputs : seed:int -> (string * float array) list

(** {1 Wide variant} *)

val wide_dim : int
(** 128. *)

val act_coeffs : float array
(** The wide variant's activation polynomial [0.5·x + 0.25·x²]. *)

val graph_wide : ?n_slots:int -> ?seed:int -> unit -> Fhe_tensor.Graph.t
(** A 128-128-32-10 network with the polynomial activation. *)

val plan_wide : Fhe_tensor.Layout.plan
(** The pinned packing of {!build_wide}: [bsgs]. *)

val build_wide : ?n_slots:int -> ?seed:int -> unit -> Program.t

val inputs_wide : seed:int -> (string * float array) list

(** {1 Batched variant} *)

val plan_batched : Fhe_tensor.Layout.plan
(** The pinned packing of {!build_batched}: [interleaved]. *)

val graph_batched :
  ?n_slots:int -> ?seed:int -> ?batch:int -> unit -> Fhe_tensor.Graph.t
(** The 64-dim network over [batch] users per ciphertext (default: the
    maximum, [n_slots/64]). *)

val build_batched :
  ?n_slots:int -> ?seed:int -> ?batch:int -> unit -> Program.t

val batched_data :
  n_slots:int ->
  ?batch:int ->
  seed:int ->
  unit ->
  (string * float array array) list
(** The logical per-user input vectors (user [u] drawn at seed
    [seed + u]). *)

val inputs_batched :
  ?n_slots:int -> ?batch:int -> seed:int -> unit -> (string * float array) list
(** {!batched_data} packed for the interleaved layout. *)
