open Fhe_ir

let width = 64

let box3 = Array.make_matrix 3 3 1.0

let build ?(n_slots = 16384) ?(width = width) () =
  let b = Builder.create ~n_slots () in
  let img = Builder.input b "img" in
  let conv w = Kernels.conv2d b img ~width ~height:width ~weights:w in
  let ix = conv Sobel.sobel_x in
  let iy = conv Sobel.sobel_y in
  let ixx = Builder.square b ix in
  let iyy = Builder.square b iy in
  let ixy = Builder.mul b ix iy in
  let sum v = Kernels.conv2d b v ~width ~height:width ~weights:box3 in
  let sxx = sum ixx and syy = sum iyy and sxy = sum ixy in
  let det = Builder.sub b (Builder.mul b sxx syy) (Builder.square b sxy) in
  let trace = Builder.add b sxx syy in
  let k = Builder.const b 0.04 in
  let resp = Builder.sub b det (Builder.mul b (Builder.square b trace) k) in
  Builder.finish b ~outputs:[ resp ]

let inputs ?(width = width) ~seed () =
  [ ("img", Data.image ~seed (width * width)) ]
