module T = Fhe_tensor

let input_dim = 64

(* Rectangular layers are padded to the 64×64 diagonal form: rows past
   the output dimension are zero, which the diagonal extraction turns
   into (still dense) masked diagonals. *)
let layer_matrix ~seed ~rows =
  let m = Data.matrix ~seed ~rows:input_dim ~cols:input_dim in
  Array.mapi (fun r row -> if r < rows then row else Array.map (fun _ -> 0.0) row) m

(* The historical 64-64-16-10 network as a tensor graph.  Lowered under
   the [diag] plan this reproduces the hand-built emission op-for-op
   (same digests); the batched builds lower the very same graph under a
   batched packing. *)
let graph ?(n_slots = 16384) ?(seed = 7) ?(batch = 1) () =
  let g = T.Graph.create ~n_slots () in
  let x = T.Graph.input_vec g ~name:"x" ~batch ~dim:input_dim () in
  let dense s rows v =
    T.Graph.dense g ~rows ~mat:(layer_matrix ~seed:s ~rows) v
  in
  let h1 = T.Graph.square g (dense (seed + 1) 64 x) in
  let h2 = T.Graph.square g (dense (seed + 2) 16 h1) in
  let logits = dense (seed + 3) 10 h2 in
  T.Graph.output g logits;
  g

let plan = { T.Layout.dense = T.Layout.Diag }

let build ?(n_slots = 16384) ?(seed = 7) () =
  T.Lower.lower ~plan (graph ~n_slots ~seed ())

let inputs ~seed = [ ("x", Data.signal ~seed ~lo:0.0 ~hi:1.0 input_dim) ]

(* ------------------------------------------------------------------ *)
(* wide variant: 128-128-32-10 with a degree-2 polynomial activation
   (0.5·x + 0.25·x²) instead of the plain square                       *)

let wide_dim = 128

let wide_matrix ~seed ~rows =
  let m = Data.matrix ~seed ~rows:wide_dim ~cols:wide_dim in
  Array.mapi
    (fun r row ->
      if r < rows then Array.map (fun w -> w /. 4.0) row
      else Array.map (fun _ -> 0.0) row)
    m

let act_coeffs = [| 0.0; 0.5; 0.25 |]

let graph_wide ?(n_slots = 16384) ?(seed = 7) () =
  let g = T.Graph.create ~n_slots () in
  let x = T.Graph.input_vec g ~name:"x" ~dim:wide_dim () in
  let dense s rows v =
    T.Graph.dense g ~rows ~mat:(wide_matrix ~seed:s ~rows) v
  in
  let act v = T.Graph.poly g ~coeffs:act_coeffs v in
  let h1 = act (dense (seed + 1) 128 x) in
  let h2 = act (dense (seed + 2) 32 h1) in
  let logits = dense (seed + 3) 10 h2 in
  T.Graph.output g logits;
  g

let plan_wide = { T.Layout.dense = T.Layout.Bsgs }

let build_wide ?(n_slots = 16384) ?(seed = 7) () =
  T.Lower.lower ~plan:plan_wide (graph_wide ~n_slots ~seed ())

let inputs_wide ~seed = [ ("x", Data.signal ~seed ~lo:0.0 ~hi:1.0 wide_dim) ]

(* ------------------------------------------------------------------ *)
(* batched variant: the 64-dim network with [batch] users interleaved
   in one ciphertext (component r of user u at slot r·(n_slots/64)+u)  *)

let plan_batched = { T.Layout.dense = T.Layout.Interleaved }

let graph_batched ?(n_slots = 16384) ?(seed = 7) ?batch () =
  let batch =
    match batch with Some b -> b | None -> n_slots / input_dim
  in
  graph ~n_slots ~seed ~batch ()

let build_batched ?(n_slots = 16384) ?(seed = 7) ?batch () =
  T.Lower.lower ~plan:plan_batched (graph_batched ~n_slots ~seed ?batch ())

let batched_data ~n_slots ?batch ~seed () =
  let batch =
    match batch with Some b -> b | None -> n_slots / input_dim
  in
  [ ( "x",
      Array.init batch (fun u ->
          Data.signal ~seed:(seed + u) ~lo:0.0 ~hi:1.0 input_dim) ) ]

let inputs_batched ?(n_slots = 16384) ?batch ~seed () =
  T.Lower.pack_inputs ~plan:plan_batched
    (graph_batched ~n_slots ?batch ())
    ~data:(batched_data ~n_slots ?batch ~seed ())
