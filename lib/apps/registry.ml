type app = {
  name : string;
  description : string;
  build : unit -> Fhe_ir.Program.t;
  inputs : seed:int -> (string * float array) list;
  exec_build : unit -> Fhe_ir.Program.t;
  exec_inputs : seed:int -> (string * float array) list;
  exec_tol : float;
}

(* Exec-scale geometry: the compile-tier programs (16384 slots, 64×64
   images, LeNet at full width) are what the paper benchmarks, but a
   real encrypted run of those takes minutes per app.  The exec
   variants shrink the data — never the structure — so the real-runtime
   tier stays in CI budget: 16×16 images for the filters, 256 samples
   for the regressions, the full 64-dim MLP in 128 slots, and the
   miniature LeNet.  [exec_tol] is the pinned max|err| bound for a
   28-bit-prime, waterline-22 compile (measured max error with roughly
   8× headroom for platform float jitter). *)
let all =
  [ { name = "SF";
      description = "Sobel filter, 64x64 image";
      build = (fun () -> Sobel.build ());
      inputs = (fun ~seed -> Sobel.inputs ~seed ());
      exec_build = (fun () -> Sobel.build ~n_slots:256 ~width:16 ());
      exec_inputs = (fun ~seed -> Sobel.inputs ~width:16 ~seed ());
      exec_tol = 0.15 };
    { name = "HCD";
      description = "Harris corner detection, 64x64 image";
      build = (fun () -> Harris.build ());
      inputs = (fun ~seed -> Harris.inputs ~seed ());
      exec_build = (fun () -> Harris.build ~n_slots:256 ~width:16 ());
      exec_inputs = (fun ~seed -> Harris.inputs ~width:16 ~seed ());
      exec_tol = 4.0 };
    { name = "LR";
      description = "linear regression, 2 GD epochs, 16384 samples";
      build = (fun () -> Regression.linear ());
      inputs = (fun ~seed -> Regression.inputs_linear ~seed ());
      exec_build = (fun () -> Regression.linear ~n_slots:256 ());
      exec_inputs = (fun ~seed -> Regression.inputs_linear ~seed ~n:256 ());
      exec_tol = 1.5e-3 };
    { name = "MR";
      description = "multivariate regression (8 features), 2 GD epochs";
      build = (fun () -> Regression.multivariate ());
      inputs = (fun ~seed -> Regression.inputs_multivariate ~seed ());
      exec_build = (fun () -> Regression.multivariate ~n_slots:256 ());
      exec_inputs =
        (fun ~seed -> Regression.inputs_multivariate ~seed ~n:256 ());
      exec_tol = 2e-4 };
    { name = "PR";
      description = "polynomial regression (degree 3), 2 GD epochs";
      build = (fun () -> Regression.polynomial ());
      inputs = (fun ~seed -> Regression.inputs_polynomial ~seed ());
      exec_build = (fun () -> Regression.polynomial ~n_slots:256 ());
      exec_inputs = (fun ~seed -> Regression.inputs_polynomial ~seed ~n:256 ());
      exec_tol = 1.2e-3 };
    { name = "MLP";
      description = "64-64-16-10 perceptron, square activations";
      build = (fun () -> Mlp.build ());
      inputs = (fun ~seed -> Mlp.inputs ~seed);
      exec_build = (fun () -> Mlp.build ~n_slots:128 ());
      exec_inputs = (fun ~seed -> Mlp.inputs ~seed);
      exec_tol = 0.7 };
    { name = "Lenet-5";
      description = "LeNet-5 inference, MNIST shapes";
      build = (fun () -> Lenet.build Lenet.Mnist);
      inputs = (fun ~seed -> Lenet.inputs ~seed Lenet.Mnist);
      exec_build = (fun () -> Lenet.build_small Lenet.Mnist);
      exec_inputs = (fun ~seed -> Lenet.inputs_small ~seed Lenet.Mnist);
      exec_tol = 2e-4 };
    { name = "Lenet-C";
      description = "LeNet-5 inference, CIFAR-10 shapes";
      build = (fun () -> Lenet.build Lenet.Cifar);
      inputs = (fun ~seed -> Lenet.inputs ~seed Lenet.Cifar);
      exec_build = (fun () -> Lenet.build_small Lenet.Cifar);
      exec_inputs = (fun ~seed -> Lenet.inputs_small ~seed Lenet.Cifar);
      exec_tol = 2e-4 }
  ]

(* compile-tier programs cheap enough for exhaustive differential
   tiers: everything but the two full-width LeNets *)
let small =
  List.filter
    (fun a -> not (String.starts_with ~prefix:"Lenet" a.name))
    all

(* Apps the tensor frontend adds beyond the paper's eight.  Kept out of
   [all] so the §8 tables and the tiers pinned to the paper's app set
   are untouched; the @tensor and exec tiers walk this list
   explicitly. *)
let tensor =
  [ { name = "MLP-W";
      description = "128-128-32-10 perceptron, poly(x/2 + x\xc2\xb2/4) activations";
      build = (fun () -> Mlp.build_wide ());
      inputs = (fun ~seed -> Mlp.inputs_wide ~seed);
      exec_build = (fun () -> Mlp.build_wide ~n_slots:256 ());
      exec_inputs = (fun ~seed -> Mlp.inputs_wide ~seed);
      exec_tol = 1e-3 };
    { name = "MLP-B";
      description = "batched 64-64-16-10 perceptron, 256 users interleaved";
      build = (fun () -> Mlp.build_batched ());
      inputs = (fun ~seed -> Mlp.inputs_batched ~seed ());
      exec_build = (fun () -> Mlp.build_batched ~n_slots:512 ~batch:8 ());
      exec_inputs =
        (fun ~seed -> Mlp.inputs_batched ~n_slots:512 ~batch:8 ~seed ());
      exec_tol = 2.5 }
  ]

let find name =
  let lower = String.lowercase_ascii name in
  match
    List.find_opt
      (fun a -> String.lowercase_ascii a.name = lower)
      (all @ tensor)
  with
  | Some a -> a
  | None -> raise Not_found
