module T = Fhe_tensor

(** The tensor-frontend catalog: registry apps whose circuits are
    generated from a {!Fhe_tensor.Graph}, with their pinned packing
    plans and the logical tensor data that feeds layout search,
    {!T.Lower.reference} and {!T.Lower.pack_inputs}.  Drives
    [fhec tensor], the bench tensor section and the @tensor tier. *)

type entry = {
  name : string;
  description : string;
  graph : unit -> T.Graph.t;  (** compile-tier graph (16384 slots) *)
  plan : T.Layout.plan;  (** the pinned production packing *)
  data : seed:int -> (string * float array array) list;
      (** logical tensor data (per input: batch × dim user rows, or
          channels × width² planes) at compile-tier geometry *)
  exec_graph : unit -> T.Graph.t;  (** exec-scale graph (shrunk data) *)
  exec_data : seed:int -> (string * float array array) list;
}

val all : entry list
(** MLP, MLP-W, MLP-B, Lenet-5, Lenet-C. *)

val find : string -> entry
(** Case-insensitive lookup. @raise Not_found. *)
