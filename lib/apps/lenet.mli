open Fhe_ir

(** LeNet-5 inference (Lenet-5 on MNIST shapes, Lenet-C on CIFAR-10
    shapes): Conv(5×5,6) → x² → AvgPool → Conv(5×5,16) → x² → AvgPool →
    FC120 → x² → FC84 → x² → FC10.

    Packing: one ciphertext per input channel; convolutions use shared
    shifted-window rotations with scalar weights; pooling is strided
    (no repacking — later layers use dilated rotations); a one-hot
    masked flatten compacts the strided feature maps into one packed
    vector for the BSGS dense layers.  Roughly 10k ops at depth ~13,
    the scale the paper's Lenet rows exercise. *)

type variant = Mnist | Cifar

val build : ?n_slots:int -> ?seed:int -> variant -> Program.t
(** Inputs: ["ch0"] (and ["ch1"], ["ch2"] for [Cifar]). *)

val inputs : seed:int -> variant -> (string * float array) list

val small_width : int
(** Image width of the exec-tier miniature (8). *)

val build_small : ?n_slots:int -> ?seed:int -> variant -> Program.t
(** Exec-tier miniature: the same conv → x² → pool → conv → x² → pool →
    flatten → dense structure on an 8×8 image with 2 channels per conv
    stage, sized so a real encrypted run (Ckks.Backend) completes in
    milliseconds.  Inputs as {!build}. *)

val inputs_small : seed:int -> variant -> (string * float array) list
