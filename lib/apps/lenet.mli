open Fhe_ir

(** LeNet-5 inference (Lenet-5 on MNIST shapes, Lenet-C on CIFAR-10
    shapes): Conv(5×5,6) → x² → AvgPool → Conv(5×5,16) → x² → AvgPool →
    FC120 → x² → FC84 → x² → FC10.

    Packing: one ciphertext per input channel; convolutions use shared
    shifted-window rotations with scalar weights; pooling is strided
    (no repacking — later layers use dilated rotations); a one-hot
    masked flatten compacts the strided feature maps into one packed
    vector for the BSGS dense layers.  Roughly 10k ops at depth ~13,
    the scale the paper's Lenet rows exercise.

    Both the full network and the exec miniature are described once as
    an {!Fhe_tensor.Graph} and lowered under the pinned [bsgs] plan —
    digest-identical to the historical hand-built emission. *)

type variant = Mnist | Cifar

val plan : Fhe_tensor.Layout.plan
(** The pinned lowering plan: [bsgs]. *)

val graph : ?n_slots:int -> ?seed:int -> variant -> Fhe_tensor.Graph.t
(** The full network as a tensor graph. *)

val build : ?n_slots:int -> ?seed:int -> variant -> Program.t
(** Inputs: ["ch0"] (and ["ch1"], ["ch2"] for [Cifar]). *)

val inputs : seed:int -> variant -> (string * float array) list

val data : seed:int -> variant -> (string * float array array) list
(** The same pixels as {!inputs}, keyed by the image-input prefix for
    {!Fhe_tensor.Lower.pack_inputs}/[reference]. *)

val small_width : int
(** Image width of the exec-tier miniature (8). *)

val graph_small : ?n_slots:int -> ?seed:int -> variant -> Fhe_tensor.Graph.t

val build_small : ?n_slots:int -> ?seed:int -> variant -> Program.t
(** Exec-tier miniature: the same conv → x² → pool → conv → x² → pool →
    flatten → dense structure on an 8×8 image with 2 channels per conv
    stage, sized so a real encrypted run (Ckks.Backend) completes in
    milliseconds.  Inputs as {!build}. *)

val inputs_small : seed:int -> variant -> (string * float array) list

val data_small : seed:int -> variant -> (string * float array array) list
