open Fhe_ir

(** Sobel Filter (SF): edge-detection on a packed 64×64 image.
    [Gx² + Gy²] with the two 3×3 Sobel kernels — the smallest benchmark
    (~60 ops, multiplicative depth 2). *)

val image_width : int

val build : ?n_slots:int -> ?width:int -> unit -> Program.t
(** Input: ["img"] (the [width]×[width] image, default 64×64, in the
    first [width²] slots). *)

val inputs : ?width:int -> seed:int -> unit -> (string * float array) list
(** A matching synthetic input image. *)

val sobel_x : float array array
(** The horizontal-gradient kernel (shared with Harris). *)

val sobel_y : float array array
(** The vertical-gradient kernel. *)
