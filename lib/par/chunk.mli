(** Balanced work splitting for the domain pool.

    Per-item tasks are the right granularity for whole-program
    compilations, but thousands of tiny tasks (fuzz seeds) would spend
    their time on the queue lock.  [split] groups a work list into at
    most [chunks] contiguous runs whose lengths differ by at most one;
    mapping over the chunks and concatenating preserves the original
    order, so the determinism contract of {!Pool.map} carries over. *)

val ranges : chunks:int -> int -> (int * int) list
(** [ranges ~chunks n] partitions [0 .. n-1] into at most [chunks]
    contiguous [(start, length)] ranges, in order, each non-empty, with
    lengths differing by at most one.  [n = 0] gives [[]].
    [chunks < 1] is an error. *)

val split : chunks:int -> 'a list -> 'a list list
(** [split ~chunks xs] cuts [xs] into the {!ranges} partition;
    [List.concat (split ~chunks xs) = xs]. *)
