(* A fixed-size domain pool over a mutex/condition work channel.

   Tasks are closures pushed onto one shared FIFO; worker domains and
   the submitting caller both pop from it, so a pool of width [d] runs
   [d] tasks at a time with [d - 1] spawned domains.  Each [map] call
   owns its result array and completion counter, so concurrent [map]s
   on one pool interleave safely (a caller draining the queue may even
   execute another call's tasks — harmless, the counters are
   per-call).

   Determinism contract: results are collected by submission index;
   scheduling order is irrelevant to what [map] returns. *)

type t = {
  width : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains a task *)
  mutable shut : bool;
  mutable workers : unit Domain.t list;
}

(* set while a domain is executing a pool task; rejects nested use *)
let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let nested_msg =
  "Fhe_par.Pool: map/iter called from inside a pool task; parallelize at \
   the outer level only"

let run_task job =
  Domain.DLS.set inside true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside false) job

(* Workers block for work and exit once the pool is shut *and* the
   queue is empty, so shutdown never drops queued tasks. *)
let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
          if t.shut then None
          else begin
            Condition.wait t.work t.lock;
            next ()
          end
    in
    match next () with
    | None -> Mutex.unlock t.lock
    | Some job ->
        Mutex.unlock t.lock;
        (* tasks wrap their own exceptions; a raise here is a pool bug,
           but swallowing it beats losing a worker domain *)
        (try run_task job with _ -> ());
        loop ()
  in
  loop ()

let create ?domains () =
  let width =
    match domains with
    | None -> Domain.recommended_domain_count ()
    | Some d when d >= 1 -> d
    | Some d -> invalid_arg (Printf.sprintf "Fhe_par.Pool.create: domains %d" d)
  in
  let t =
    { width; queue = Queue.create (); lock = Mutex.create ();
      work = Condition.create (); shut = false; workers = [] }
  in
  t.workers <- List.init (width - 1) (fun _ -> Domain.spawn (worker t));
  t

let domains t = t.width

let shutdown t =
  Mutex.lock t.lock;
  if t.shut then Mutex.unlock t.lock
  else begin
    t.shut <- true;
    Condition.broadcast t.work;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.lock;
    List.iter Domain.join ws
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type ('b, 'e) slot = Empty | Ok_ of 'b | Exn of exn * Printexc.raw_backtrace

let map t f xs =
  if Domain.DLS.get inside then invalid_arg nested_msg;
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let results = Array.make n Empty in
    let completed = ref 0 in
    let finished = Condition.create () in
    let task i () =
      let r =
        match f xs.(i) with
        | v -> Ok_ v
        | exception e -> Exn (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- r;
      Mutex.lock t.lock;
      incr completed;
      if !completed = n then Condition.broadcast finished;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    if t.shut then begin
      Mutex.unlock t.lock;
      invalid_arg "Fhe_par.Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* the caller works the queue too; once it runs dry, wait for the
       stragglers running on other domains *)
    let rec drain () =
      Mutex.lock t.lock;
      match Queue.take_opt t.queue with
      | Some job ->
          Mutex.unlock t.lock;
          run_task job;
          drain ()
      | None ->
          while !completed < n do
            Condition.wait finished t.lock
          done;
          Mutex.unlock t.lock
    in
    drain ();
    (* re-raise the lowest-indexed failure, deterministically *)
    Array.iter
      (function
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty | Ok_ _ -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Ok_ v -> v
        | Empty | Exn _ -> assert false)
  end

let iter t f xs = ignore (map t (fun x -> f x) xs : unit list)

(* ------------------------------------------------------------------ *)
(* One-shot task submission with a deadline-bounded await — the serve
   daemon's watchdog.  A handle is a single atomic cell written once by
   the task; await polls it against the monotonic clock, so a wedged
   task (infinite loop, pathological compile) costs the caller exactly
   its deadline, never forever.  The task itself is not killed —
   domains cannot be cancelled — it is *abandoned*: it keeps its worker
   until it finishes, and its eventual result is discarded unless
   someone awaits the handle again. *)

type 'a outcome = Pending | Value of 'a | Raised of exn

type 'a handle = { cell : 'a outcome Atomic.t }

let submit t job =
  let h = { cell = Atomic.make Pending } in
  let task () =
    let r = match job () with v -> Value v | exception e -> Raised e in
    Atomic.set h.cell r
  in
  Mutex.lock t.lock;
  if t.shut then begin
    Mutex.unlock t.lock;
    invalid_arg "Fhe_par.Pool.submit: pool is shut down"
  end;
  if t.workers = [] then begin
    (* width-1 pool: no worker will ever pop the queue outside map's
       drain, so run inline — submission-time blocking, but complete *)
    Mutex.unlock t.lock;
    (try run_task task with _ -> ())
  end
  else begin
    Queue.add task t.queue;
    Condition.signal t.work;
    Mutex.unlock t.lock
  end;
  h

let peek h =
  match Atomic.get h.cell with
  | Pending -> None
  | Value v -> Some (Ok v)
  | Raised e -> Some (Error e)

(* poll interval: coarse enough to cost nothing next to a compile,
   fine enough that a 1 ms deadline is honoured within ~2 ms *)
let tick_s = 0.0005

let await ?deadline_ms h =
  let deadline =
    Option.map
      (fun ms ->
        Int64.add (Fhe_util.Timer.now_ns ())
          (Int64.of_float (Float.max ms 0.0 *. 1e6)))
      deadline_ms
  in
  let rec loop () =
    match Atomic.get h.cell with
    | Value v -> Ok v
    | Raised e -> Error (`Exn e)
    | Pending -> (
        match deadline with
        | Some d when Fhe_util.Timer.now_ns () >= d -> Error `Timeout
        | _ ->
            Unix.sleepf tick_s;
            loop ())
  in
  loop ()
