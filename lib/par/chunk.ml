let ranges ~chunks n =
  if chunks < 1 then
    invalid_arg (Printf.sprintf "Fhe_par.Chunk.ranges: chunks %d" chunks);
  if n <= 0 then []
  else begin
    let k = min chunks n in
    let base = n / k and extra = n mod k in
    (* the first [extra] ranges carry one element more *)
    let rec go i start acc =
      if i = k then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        go (i + 1) (start + len) ((start, len) :: acc)
    in
    go 0 0 []
  end

let split ~chunks xs =
  let a = Array.of_list xs in
  List.map
    (fun (start, len) -> Array.to_list (Array.sub a start len))
    (ranges ~chunks (Array.length a))
