(** A fixed-size domain pool with a channel-based work queue.

    The compilation drivers — the [fhec check] conformance sweep, the
    fuzz harness, and the bench emitters — push many independent
    compilations through one of these.  The design goals, in order:

    {ol
    {- {b Determinism.}  [map] returns results in submission order, so a
       driver that collects results and {e then} renders its report
       produces byte-identical output at every pool width.  Side
       effects inside tasks run in scheduling order, which is
       unspecified; keep tasks pure and do the printing after [map]
       returns.}
    {- {b No escape.}  A task that raises does not tear down the pool
       or poison other tasks: every task's exception is captured, all
       remaining tasks still run, and [map] re-raises the
       lowest-indexed exception (with its original backtrace) once the
       batch has drained.}
    {- {b Legacy parity.}  [create ~domains:1] spawns no domains at
       all: tasks run in the caller, in submission order — exactly the
       sequential driver this replaces.}}

    The submitting domain participates in the work: [create ~domains:4]
    spawns three worker domains and the caller executes queued tasks
    while it waits, so [domains] is the true parallel width.  Pools are
    small (a few domains) and long-lived; create one per driver run and
    [shutdown] it when done. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (default
    {!Domain.recommended_domain_count}).  [domains < 1] is an error. *)

val domains : t -> int
(** The parallel width this pool was created with (including the
    submitting domain). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element, in parallel across the
    pool, and returns the results {e in the order of [xs]}.  If one or
    more applications raise, every task still runs to completion and
    the exception of the lowest-indexed failure is re-raised with its
    original backtrace.

    @raise Invalid_argument when called from inside a pool task
    (nested data parallelism would deadlock a fixed-size pool — split
    the work at the outer level instead), or after [shutdown]. *)

val iter : t -> ('a -> unit) -> 'a list -> unit
(** [map] for effects; the same ordering, exception, and nesting rules
    apply (effects run in scheduling order, not submission order). *)

val shutdown : t -> unit
(** Drain the queue, join every worker domain, and mark the pool
    closed.  Idempotent: second and later calls are no-ops.  Calling
    [map]/[iter] afterwards raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on the
    way out, exception or not. *)

(** {1 One-shot submission with a deadline}

    The batch API above blocks until the whole batch drains — right for
    drivers, wrong for a service where one wedged compile must not hang
    its caller forever.  [submit] hands one task to the pool and
    returns immediately; [await ~deadline_ms] is the watchdog: it
    bounds the wait and reports [`Timeout] instead of hanging (the
    serve layer lifts that into a structured [Reserve.Diag]).  A timed
    out task is {e abandoned}, not cancelled — domains cannot be
    killed — so it occupies its worker until it finishes on its own;
    size the pool for the abandonment rate you can tolerate. *)

type 'a handle

val submit : t -> (unit -> 'a) -> 'a handle
(** Enqueue one task.  On a width-1 pool (no spawned workers) the task
    runs inline before [submit] returns, preserving completeness at
    the cost of deadline preemption — deadline-sensitive callers
    should use a pool of width ≥ 2.
    @raise Invalid_argument after [shutdown]. *)

val await :
  ?deadline_ms:float -> 'a handle -> ('a, [ `Timeout | `Exn of exn ]) result
(** Wait (polling the monotonic clock) until the task finishes or the
    deadline elapses.  Without [deadline_ms] it waits indefinitely.
    [`Exn e] is the task's own exception.  Awaiting again after a
    [`Timeout] is allowed: the task may have finished in the
    meantime. *)

val peek : 'a handle -> ('a, exn) result option
(** Non-blocking: [None] while the task is still pending. *)
