(* Bounded admission: at most [capacity] compiles in flight; above
   [degrade_at] new admissions run the degraded (fallback-permitted)
   chain; at capacity the request is shed with an explicit reply.
   Counters are atomics — connection handlers on many threads hit this
   concurrently. *)

type level = Normal | Pressured

type t = {
  capacity : int;
  degrade_at : int;
  inflight : int Atomic.t;
  admitted : int Atomic.t;
  shed : int Atomic.t;
  degraded : int Atomic.t;
  timeouts : int Atomic.t;
  failed : int Atomic.t;
  completed : int Atomic.t;
}

let create ~capacity ~degrade_at =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  if degrade_at < 1 || degrade_at > capacity then
    invalid_arg "Admission.create: degrade_at out of [1, capacity]";
  {
    capacity;
    degrade_at;
    inflight = Atomic.make 0;
    admitted = Atomic.make 0;
    shed = Atomic.make 0;
    degraded = Atomic.make 0;
    timeouts = Atomic.make 0;
    failed = Atomic.make 0;
    completed = Atomic.make 0;
  }

let rec try_admit t =
  let cur = Atomic.get t.inflight in
  if cur >= t.capacity then begin
    Atomic.incr t.shed;
    `Shed
  end
  else if Atomic.compare_and_set t.inflight cur (cur + 1) then begin
    Atomic.incr t.admitted;
    `Go (if cur + 1 > t.degrade_at then Pressured else Normal)
  end
  else try_admit t

let release t = Atomic.decr t.inflight

let note_degraded t = Atomic.incr t.degraded
let note_timeout t = Atomic.incr t.timeouts
let note_failed t = Atomic.incr t.failed
let note_completed t = Atomic.incr t.completed

type stats = {
  inflight : int;
  admitted : int;
  shed : int;
  degraded : int;
  timeouts : int;
  failed : int;
  completed : int;
}

let stats (t : t) : stats =
  {
    inflight = Atomic.get t.inflight;
    admitted = Atomic.get t.admitted;
    shed = Atomic.get t.shed;
    degraded = Atomic.get t.degraded;
    timeouts = Atomic.get t.timeouts;
    failed = Atomic.get t.failed;
    completed = Atomic.get t.completed;
  }

let stats_json (s : stats) =
  Printf.sprintf
    "{\"inflight\":%d,\"admitted\":%d,\"shed\":%d,\"degraded\":%d,\
     \"timeouts\":%d,\"failed\":%d,\"completed\":%d}"
    s.inflight s.admitted s.shed s.degraded s.timeouts s.failed s.completed
