(** Closed-loop load generator for a running compile daemon.

    [threads] client threads, each holding one connection and issuing
    [per_thread] requests back-to-back (reconnecting after a transport
    failure).  Shared by the [bench serve] emitter and the serve test
    tier, so published load numbers come from the same harness the
    tests exercise. *)

type stats = {
  requests : int;
  ok : int;
  degraded : int;
  shed : int;
  timeouts : int;
  failed : int;
  transport : int;  (** connect/read/write failures *)
  wall_ms : float;
  qps : float;  (** completed (ok + degraded) per wall-clock second *)
  p50_ms : float;  (** over completed request latencies *)
  p99_ms : float;
}

val run :
  socket:string ->
  ?threads:int ->
  ?per_thread:int ->
  make_request:(int -> Protocol.compile_request) ->
  unit ->
  stats
(** [make_request i] builds the [i]-th request (global index across
    threads), so a workload can mix programs, compilers, and tenants
    deterministically. *)

val pp : Format.formatter -> stats -> unit
(** One human-readable summary line. *)
