(* The compile daemon: a Unix-domain-socket accept loop with one system
   thread per connection, compiles scheduled on a shared domain pool,
   one process-wide compile cache with per-tenant namespacing, and the
   robustness core — bounded admission (explicit shed, never a silent
   drop), per-request deadline budgets (a wedged compile is abandoned
   and answered with a structured timeout), and degradation under
   pressure (admissions above the degrade threshold run the fallback
   chain instead of failing strict). *)

type config = {
  socket : string;
  domains : int;
  capacity : int;
  degrade_at : int;
  default_deadline_ms : int;
  read_timeout_ms : int;
  max_payload : int;
}

let default_config ~socket =
  {
    socket;
    domains = 2;
    capacity = 8;
    degrade_at = 6;
    default_deadline_ms = 30_000;
    read_timeout_ms = 2_000;
    max_payload = Protocol.max_payload_default;
  }

type t = {
  config : config;
  listen : Unix.file_descr;
  pool : Fhe_par.Pool.t;
  adm : Admission.t;
  stopping : bool Atomic.t;
  cleaned : bool Atomic.t;
  live : int Atomic.t;  (* connection handlers still running *)
  mutable acceptor : Thread.t option;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Compile dispatch: the same strategy registry, knobs, and cache keys
   as the [fhec compile] CLI path, so a served result is byte-identical
   to a local one.  Runs inside a pool worker domain; the tenant
   namespace is domain-local state, so it must be entered here, not in
   the connection thread. *)

module St = Fhe_strategy.Strategy
module Reg = Fhe_strategy.Registry

let diag_of_exn e =
  Reserve.Diag.to_string (Reserve.Diag.of_exn Reserve.Diag.Serve e)

let strategy_infos () =
  List.map
    (fun s ->
      let c = St.caps s in
      {
        Protocol.s_name = St.name s;
        s_aliases = St.aliases s;
        s_redistributes = c.St.redistributes;
        s_hoists = c.St.hoists;
        s_explores = c.St.explores;
        s_fallback = c.St.fallback_chain;
      })
    (Reg.all ())

let compile_one level (req : Protocol.compile_request) : Protocol.reply =
  let in_ns f =
    if req.tenant = "" then f ()
    else Fhe_cache.Store.with_namespace req.tenant f
  in
  in_ns @@ fun () ->
  let cfg =
    St.config ~xmax_bits:req.xmax_bits
      ?iterations:(if req.iterations > 0 then Some req.iterations else None)
      ~rbits:req.rbits ~wbits:req.wbits ()
  in
  let plain engine managed =
    Protocol.Compiled
      { engine; wbits_used = req.wbits; warnings = []; managed }
  in
  if String.lowercase_ascii req.compiler = Fhe_strategy.Portfolio.mode_name
  then
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match Reg.of_name n with
          | Some s -> resolve (s :: acc) rest
          | None -> Error n)
    in
    match resolve [] req.strategies with
    | Error n -> Protocol.Bad_request (Printf.sprintf "unknown strategy %S" n)
    | Ok subset -> (
        (* already inside a pool worker — nested pool use is rejected —
           so the legs run sequentially here; the report is the same *)
        match
          Fhe_strategy.Portfolio.run ~strategies:subset cfg req.program
        with
        | Ok r -> (
            match r.Fhe_strategy.Portfolio.winner.result with
            | Ok m ->
                plain
                  ("portfolio:"
                  ^ St.name r.Fhe_strategy.Portfolio.winner.strategy)
                  m
            | Error _ -> assert false (* the winner is an Ok leg *))
        | Error msg -> Protocol.Failed [ msg ])
  else
    match Reg.of_name req.compiler with
    | None ->
        Protocol.Bad_request
          (Printf.sprintf "unknown compiler %S" req.compiler)
    | Some s -> (
        match St.safe s with
        | Some safe -> (
            let strict =
              not (req.allow_fallback || level = Admission.Pressured)
            in
            match safe cfg ~strict ~oracle:req.oracle req.program with
            | Ok o ->
                let reply =
                  {
                    Protocol.engine =
                      Reserve.Pipeline.engine_name o.Reserve.Pipeline.engine;
                    wbits_used = o.Reserve.Pipeline.wbits;
                    warnings =
                      List.map Reserve.Diag.to_string
                        o.Reserve.Pipeline.warnings;
                    managed = o.Reserve.Pipeline.managed;
                  }
                in
                if o.Reserve.Pipeline.fallbacks = [] then
                  Protocol.Compiled reply
                else Protocol.Degraded reply
            | Error attempts ->
                Protocol.Failed
                  (List.map Reserve.Diag.to_string
                     (Reserve.Pipeline.attempt_diags attempts)))
        | None -> (
            try plain (St.name s) (Reg.compile s cfg req.program)
            with e -> Protocol.Failed [ diag_of_exn e ]))

(* ------------------------------------------------------------------ *)
(* Per-connection handling. *)

let send fd ~max_payload reply =
  ignore max_payload;
  let typ, payload = Protocol.encode_reply reply in
  Protocol.write_frame fd ~typ payload

let handle_compile t fd (req : Protocol.compile_request) =
  let send r = send fd ~max_payload:t.config.max_payload r in
  match Admission.try_admit t.adm with
  | `Shed ->
      ignore @@ send
        (Protocol.Shed
           {
             retry_after_ms = 25 + (t.config.default_deadline_ms / 100);
             reason =
               Printf.sprintf "server at capacity (%d compiles in flight)"
                 t.config.capacity;
           })
  | `Go level ->
      Fun.protect
        ~finally:(fun () -> Admission.release t.adm)
        (fun () ->
          let deadline_ms =
            float_of_int
              (if req.deadline_ms > 0 then req.deadline_ms
               else t.config.default_deadline_ms)
          in
          let handle =
            Fhe_par.Pool.submit t.pool (fun () -> compile_one level req)
          in
          match Fhe_par.Pool.await ~deadline_ms handle with
          | Ok reply ->
              (match reply with
              | Protocol.Compiled _ -> Admission.note_completed t.adm
              | Protocol.Degraded _ -> Admission.note_degraded t.adm
              | Protocol.Failed _ -> Admission.note_failed t.adm
              | _ -> ());
              ignore (send reply)
          | Error `Timeout ->
              Admission.note_timeout t.adm;
              let d =
                Reserve.Diag.errorf
                  ~hint:"retry with a larger deadline-ms or a smaller program"
                  Reserve.Diag.Serve
                  "compile abandoned after its %.0f ms deadline budget"
                  deadline_ms
              in
              ignore (send (Protocol.Timed_out (Reserve.Diag.to_string d)))
          | Error (`Exn e) ->
              Admission.note_failed t.adm;
              ignore (send (Protocol.Failed [ diag_of_exn e ])))

(* Closing a listening fd does not wake a thread blocked in accept(2);
   shutdown does on Linux, and the dummy self-connect covers platforms
   where it doesn't.  The fd itself is closed in [stop], after the
   acceptor has been joined. *)
let request_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.listen Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.connect fd (Unix.ADDR_UNIX t.config.socket)
         with Unix.Unix_error _ -> ());
        close_quiet fd
  end

let handle_conn t fd =
  (* Slow-loris guard: a peer that stalls mid-frame (or never reads its
     reply) trips the socket timeout instead of pinning this thread. *)
  let timeout_s = float_of_int t.config.read_timeout_ms /. 1000. in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
   with Unix.Unix_error _ -> ());
  let send r = send fd ~max_payload:t.config.max_payload r in
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Protocol.read_frame ~max_payload:t.config.max_payload fd with
      | Error `Closed -> ()
      | Error `Timeout ->
          (* best-effort notice, then drop the connection *)
          ignore (send (Protocol.Bad_request "request read timed out"))
      | Error (`Malformed m) -> ignore (send (Protocol.Bad_request m))
      | Ok (version, typ, payload) -> (
          match Protocol.decode_request ~version ~typ payload with
          | Error m ->
              (* the frame itself was well-formed, so the stream is
                 still aligned: reply and keep the connection *)
              if send (Protocol.Bad_request m) = Ok () then loop ()
          | Ok Protocol.Ping ->
              if send Protocol.Pong = Ok () then loop ()
          | Ok Protocol.Stats ->
              let json = Admission.stats_json (Admission.stats t.adm) in
              if send (Protocol.Stats_reply json) = Ok () then loop ()
          | Ok Protocol.List_strategies ->
              if send (Protocol.Strategies_reply (strategy_infos ())) = Ok ()
              then loop ()
          | Ok Protocol.Shutdown ->
              ignore (send Protocol.Pong);
              request_stop t
          | Ok (Protocol.Compile req) ->
              handle_compile t fd req;
              loop ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle. *)

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.listen with
  | fd, _ when Atomic.get t.stopping -> close_quiet fd
  | fd, _ ->
      Atomic.incr t.live;
      ignore
        (Thread.create
           (fun () ->
             Fun.protect
               ~finally:(fun () ->
                 close_quiet fd;
                 Atomic.decr t.live)
               (fun () -> try handle_conn t fd with _ -> ()))
           ());
      accept_loop t
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error _ ->
      (* the listening socket was closed (stop/shutdown) or is beyond
         repair; either way the accept loop is done *)
      ()

let start config =
  if String.length config.socket > 100 then
    invalid_arg
      (Printf.sprintf
         "Server.start: socket path %S exceeds the sockaddr_un limit; use a \
          short path (e.g. under /tmp)"
         config.socket);
  if config.capacity < 1 then invalid_arg "Server.start: capacity < 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists config.socket then
    (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  let listen = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen (Unix.ADDR_UNIX config.socket);
     Unix.listen listen 64
   with e ->
     close_quiet listen;
     raise e);
  let degrade_at = max 1 (min config.degrade_at config.capacity) in
  let t =
    {
      config;
      listen;
      pool = Fhe_par.Pool.create ~domains:(max 2 config.domains) ();
      adm = Admission.create ~capacity:config.capacity ~degrade_at;
      stopping = Atomic.make false;
      cleaned = Atomic.make false;
      live = Atomic.make 0;
      acceptor = None;
    }
  in
  t.acceptor <- Some (Thread.create accept_loop t);
  t

let stats t = Admission.stats t.adm

let running t = not (Atomic.get t.stopping)

let stop t =
  request_stop t;
  if Atomic.compare_and_set t.cleaned false true then begin
    Option.iter Thread.join t.acceptor;
    close_quiet t.listen;
    (* give in-flight connection handlers a bounded window to drain *)
    let deadline = Unix.gettimeofday () +. 10. in
    while Atomic.get t.live > 0 && Unix.gettimeofday () < deadline do
      Thread.yield ();
      (try Thread.delay 0.002 with _ -> ())
    done;
    Fhe_par.Pool.shutdown t.pool;
    try Unix.unlink t.config.socket with Unix.Unix_error _ -> ()
  end

let run config =
  let t = start config in
  Fun.protect
    ~finally:(fun () -> stop t)
    (fun () ->
      while running t do
        Thread.delay 0.05
      done)
