(** Bounded admission control for the compile daemon.

    At most [capacity] compiles are in flight at once.  Admission never
    blocks and never drops silently:

    - below [degrade_at] in-flight: [`Go Normal] — the request runs the
      strict configuration it asked for;
    - at or above [degrade_at]: [`Go Pressured] — the request is
      admitted but runs with the fallback chain enabled, trading plan
      quality for completion under load;
    - at [capacity]: [`Shed] — the caller must send an explicit
      {!Protocol.Shed} reply so the client can back off and retry.

    Thread-safe: connection handlers on many threads share one [t]. *)

type level = Normal | Pressured

type t

val create : capacity:int -> degrade_at:int -> t
(** @raise Invalid_argument unless [1 <= degrade_at <= capacity]. *)

val try_admit : t -> [ `Go of level | `Shed ]
(** Reserve an in-flight slot (lock-free CAS).  Every [`Go] must be
    paired with exactly one {!release}. *)

val release : t -> unit

val note_degraded : t -> unit
(** Count a reply that went out as {!Protocol.Degraded}. *)

val note_timeout : t -> unit
val note_failed : t -> unit
val note_completed : t -> unit

type stats = {
  inflight : int;
  admitted : int;
  shed : int;
  degraded : int;
  timeouts : int;
  failed : int;
  completed : int;
}

val stats : t -> stats
(** A consistent-enough snapshot (each counter read atomically). *)

val stats_json : stats -> string
(** One-line JSON object, stable key order — the [Stats] reply body. *)
