(* Closed-loop load generator: N client threads, each holding one
   connection and issuing its requests back-to-back.  Shared by the
   [bench serve] emitter and the serve test tier, so the numbers in
   BENCH_compile.json come from the same harness the tests gate on. *)

type stats = {
  requests : int;
  ok : int;
  degraded : int;
  shed : int;
  timeouts : int;
  failed : int;
  transport : int;  (** connect/read/write failures *)
  wall_ms : float;
  qps : float;  (** completed (ok + degraded) per second *)
  p50_ms : float;  (** over completed request latencies *)
  p99_ms : float;
}

type cell = {
  mutable ok : int;
  mutable degraded : int;
  mutable shed : int;
  mutable timeouts : int;
  mutable failed : int;
  mutable transport : int;
  mutable latencies : float list;  (** completed requests only, ms *)
}

let fresh_cell () =
  {
    ok = 0;
    degraded = 0;
    shed = 0;
    timeouts = 0;
    failed = 0;
    transport = 0;
    latencies = [];
  }

let worker ~socket ~per_thread ~make_request ~first cell =
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> Ok c
    | None -> (
        match Client.connect ~socket () with
        | Ok c ->
            conn := Some c;
            Ok c
        | Error _ as e -> e)
  in
  for i = 0 to per_thread - 1 do
    let req = make_request (first + i) in
    match get_conn () with
    | Error _ -> cell.transport <- cell.transport + 1
    | Ok c -> (
        let t0 = Fhe_util.Timer.now_ns () in
        match Client.compile c req with
        | Ok reply -> (
            let ms =
              Int64.to_float (Int64.sub (Fhe_util.Timer.now_ns ()) t0) /. 1e6
            in
            match reply with
            | Protocol.Compiled _ ->
                cell.ok <- cell.ok + 1;
                cell.latencies <- ms :: cell.latencies
            | Protocol.Degraded _ ->
                cell.degraded <- cell.degraded + 1;
                cell.latencies <- ms :: cell.latencies
            | Protocol.Shed _ -> cell.shed <- cell.shed + 1
            | Protocol.Timed_out _ -> cell.timeouts <- cell.timeouts + 1
            | Protocol.Failed _ | Protocol.Bad_request _ ->
                cell.failed <- cell.failed + 1
            | Protocol.Pong | Protocol.Stats_reply _
            | Protocol.Strategies_reply _ ->
                cell.failed <- cell.failed + 1)
        | Error _ ->
            (* connection poisoned; reconnect for the next request *)
            cell.transport <- cell.transport + 1;
            Option.iter Client.close !conn;
            conn := None)
  done;
  Option.iter Client.close !conn

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let run ~socket ?(threads = 4) ?(per_thread = 8) ~make_request () =
  let cells = Array.init threads (fun _ -> fresh_cell ()) in
  let t0 = Fhe_util.Timer.now_ns () in
  let ths =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            worker ~socket ~per_thread ~make_request ~first:(t * per_thread)
              cells.(t))
          ())
  in
  List.iter Thread.join ths;
  let wall_ms =
    Int64.to_float (Int64.sub (Fhe_util.Timer.now_ns ()) t0) /. 1e6
  in
  let sum f = Array.fold_left (fun a c -> a + f c) 0 cells in
  let ok = sum (fun c -> c.ok) and degraded = sum (fun c -> c.degraded) in
  let lats =
    Array.of_list (Array.fold_left (fun a c -> c.latencies @ a) [] cells)
  in
  Array.sort compare lats;
  {
    requests = threads * per_thread;
    ok;
    degraded;
    shed = sum (fun c -> c.shed);
    timeouts = sum (fun c -> c.timeouts);
    failed = sum (fun c -> c.failed);
    transport = sum (fun c -> c.transport);
    wall_ms;
    qps =
      (if wall_ms <= 0. then 0.
       else float_of_int (ok + degraded) /. (wall_ms /. 1000.));
    p50_ms = percentile lats 0.50;
    p99_ms = percentile lats 0.99;
  }

let pp ppf (s : stats) =
  Format.fprintf ppf
    "%d requests in %.1f ms: %d ok, %d degraded, %d shed, %d timeout, %d \
     failed, %d transport; %.1f qps, p50 %.2f ms, p99 %.2f ms"
    s.requests s.wall_ms s.ok s.degraded s.shed s.timeouts s.failed s.transport
    s.qps s.p50_ms s.p99_ms
