(** Client side of the compile protocol.

    [connect]/[compile] are the plain one-request primitives;
    {!compile_retry} is the resilient path — a fresh connection per
    attempt, honouring {!Protocol.Shed} backpressure with exponential
    backoff and deterministic jitter; {!raw} delivers arbitrary (e.g.
    fault-corrupted) bytes for the robustness matrix. *)

type t

val connect :
  ?timeout_ms:int ->
  ?max_payload:int ->
  socket:string ->
  unit ->
  (t, string) result
(** Connect to a daemon's Unix socket.  [timeout_ms] (default 5 s)
    bounds every subsequent read and write on the connection. *)

val close : t -> unit

val ping : t -> (unit, string) result

val stats : t -> (string, string) result
(** The server's counters as a JSON object. *)

val compile : t -> Protocol.compile_request -> (Protocol.reply, string) result
(** One request, no retry; [Error] is a transport or framing failure
    (a structured refusal like [Shed] comes back as [Ok (Shed _)]). *)

val list_strategies : t -> (Protocol.strategy_info list, string) result
(** The server's registered strategies with capability flags. *)

val shutdown_server : t -> (unit, string) result

type attempt_log = { attempts : int; sheds : int; transport_errors : int }

val compile_retry :
  ?attempts:int ->
  ?base_delay_ms:float ->
  ?max_delay_ms:float ->
  ?seed:int ->
  socket:string ->
  Protocol.compile_request ->
  (Protocol.reply * attempt_log, string) result
(** Retry until a non-[Shed] reply or the attempt budget (default 5)
    runs out.  Between attempts: exponential backoff from
    [base_delay_ms] (default 25 ms, doubling, capped at
    [max_delay_ms]) with full jitter drawn from a PRNG seeded by
    [seed] — deterministic for tests, decorrelated across clients.  A
    [Shed] reply's [retry_after_ms] acts as a floor on the next delay.
    Transport failures (connection refused, mid-response disconnect)
    also retry; structured failures ([Failed], [Timed_out],
    [Bad_request]) return immediately as [Ok]. *)

(** {1 Fault delivery} *)

type raw_conduct =
  [ `Read_reply  (** then read one frame like a well-behaved client *)
  | `Close  (** then close abruptly (mid-response disconnect) *)
  | `Stall of int  (** then hold the socket silent for [ms], then close *)
  ]

val raw :
  ?max_payload:int ->
  socket:string ->
  bytes:string ->
  raw_conduct ->
  ( [ `Reply of Protocol.reply
    | `No_reply of string
    | `Closed
    | `Send_failed of string ],
    string )
  result
(** Deliver [bytes] verbatim — typically a {!Protocol.frame} run
    through {!Fhe_sim.Faults.wire_apply} — then behave per [conduct].
    The outer [Error] is a connect failure only; everything the server
    does in response (reply, silence, slammed door) comes back as
    [Ok _] for the matrix to assert on. *)
