open Fhe_ir

(* The compile daemon's frame and message layer.  Same defensive posture
   as Fhe_ir.Wire: every claimed length is checked against the bytes
   actually present (plus a hard cap) before any allocation, and hostile
   input becomes a typed [Error], never an exception or an OOM. *)

let magic = "FHES"
let version = 2
let version_min = 1
let header_len = 10 (* magic + version + type + u32 payload length *)
(* Lenet-scale programs encode to ~17 MiB, so the cap must clear them
   with room; it exists to bound a hostile peer, not to ration honest
   ones. *)
let max_payload_default = 32 * 1024 * 1024

(* Message-type bytes.  Requests live below 64, replies at 64 and up, so
   a peer that answers a request with a request is caught immediately. *)
let t_compile = 1
let t_ping = 2
let t_shutdown = 3
let t_stats = 4
let t_strategies = 5
let t_ok = 64
let t_degraded = 65
let t_shed = 66
let t_timeout = 67
let t_failed = 68
let t_bad_request = 69
let t_pong = 70
let t_stats_reply = 71
let t_strategies_reply = 72

type compile_request = {
  tenant : string;
  compiler : string;
  strategies : string list;
  rbits : int;
  wbits : int;
  xmax_bits : int;
  iterations : int;
  allow_fallback : bool;
  oracle : bool;
  deadline_ms : int;
  program : Program.t;
}

type strategy_info = {
  s_name : string;
  s_aliases : string list;
  s_redistributes : bool;
  s_hoists : bool;
  s_explores : bool;
  s_fallback : bool;
}

type request = Compile of compile_request | Ping | Shutdown | Stats
             | List_strategies

type compile_reply = {
  engine : string;
  wbits_used : int;
  warnings : string list;
  managed : Managed.t;
}

type reply =
  | Compiled of compile_reply
  | Degraded of compile_reply
  | Shed of { retry_after_ms : int; reason : string }
  | Timed_out of string
  | Failed of string list
  | Bad_request of string
  | Pong
  | Stats_reply of string
  | Strategies_reply of strategy_info list

let reply_name = function
  | Compiled _ -> "ok"
  | Degraded _ -> "degraded"
  | Shed _ -> "shed"
  | Timed_out _ -> "timeout"
  | Failed _ -> "failed"
  | Bad_request _ -> "bad-request"
  | Pong -> "pong"
  | Stats_reply _ -> "stats"
  | Strategies_reply _ -> "strategies"

(* ------------------------------------------------------------------ *)
(* Field caps: absolute ceilings on hostile claims, enforced before the
   corresponding allocation. *)

let max_name = 4096
let max_message = 65536
let max_list = 1024

(* ------------------------------------------------------------------ *)
(* Payload encoding. *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let encode_compile_request (r : compile_request) =
  let b = Buffer.create 256 in
  add_str b r.tenant;
  add_str b r.compiler;
  add_u32 b r.rbits;
  add_u32 b r.wbits;
  add_u32 b r.xmax_bits;
  add_u32 b r.iterations;
  add_u8 b ((if r.allow_fallback then 1 else 0) lor (if r.oracle then 2 else 0));
  add_u32 b r.deadline_ms;
  add_str b (Wire.encode r.program);
  (* v2: the portfolio strategy subset, after the v1 fields so a v1
     payload is exactly a v2 payload minus this trailer *)
  add_u32 b (List.length r.strategies);
  List.iter (add_str b) r.strategies;
  Buffer.contents b

let encode_compile_reply (r : compile_reply) =
  let b = Buffer.create 256 in
  add_str b r.engine;
  add_u32 b r.wbits_used;
  add_u32 b (List.length r.warnings);
  List.iter (add_str b) r.warnings;
  add_str b (Wire.encode_managed r.managed);
  Buffer.contents b

let encode_request = function
  | Compile r -> (t_compile, encode_compile_request r)
  | Ping -> (t_ping, "")
  | Shutdown -> (t_shutdown, "")
  | Stats -> (t_stats, "")
  | List_strategies -> (t_strategies, "")

let encode_strategy_info b (i : strategy_info) =
  add_str b i.s_name;
  add_u32 b (List.length i.s_aliases);
  List.iter (add_str b) i.s_aliases;
  add_u8 b
    ((if i.s_redistributes then 1 else 0)
    lor (if i.s_hoists then 2 else 0)
    lor (if i.s_explores then 4 else 0)
    lor if i.s_fallback then 8 else 0)

let encode_reply = function
  | Compiled r -> (t_ok, encode_compile_reply r)
  | Degraded r -> (t_degraded, encode_compile_reply r)
  | Shed { retry_after_ms; reason } ->
      let b = Buffer.create 32 in
      add_u32 b retry_after_ms;
      add_str b reason;
      (t_shed, Buffer.contents b)
  | Timed_out msg ->
      let b = Buffer.create 32 in
      add_str b msg;
      (t_timeout, Buffer.contents b)
  | Failed msgs ->
      let b = Buffer.create 64 in
      add_u32 b (List.length msgs);
      List.iter (add_str b) msgs;
      (t_failed, Buffer.contents b)
  | Bad_request msg ->
      let b = Buffer.create 32 in
      add_str b msg;
      (t_bad_request, Buffer.contents b)
  | Pong -> (t_pong, "")
  | Stats_reply json -> (t_stats_reply, json)
  | Strategies_reply infos ->
      let b = Buffer.create 128 in
      add_u32 b (List.length infos);
      List.iter (encode_strategy_info b) infos;
      (t_strategies_reply, Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Payload decoding: a bounds-checked cursor; [Fail] never escapes. *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

type cursor = { s : string; mutable pos : int }

let need c n what =
  if n < 0 || c.pos + n > String.length c.s then
    fail "truncated %s at byte %d" what c.pos

let u8 c what =
  need c 1 what;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u32 c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let str c ~cap what =
  let n = u32 c what in
  if n > cap then fail "%s length %d exceeds cap %d" what n cap;
  need c n what;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let finish c v =
  if c.pos <> String.length c.s then
    fail "%d trailing bytes after message" (String.length c.s - c.pos);
  v

let str_list c ~count_what ~what =
  let n = u32 c count_what in
  if n > max_list then fail "%s %d exceeds cap %d" count_what n max_list;
  List.init n (fun _ -> str c ~cap:max_message what)

let wire_sub ~what decode c =
  (* a Wire-encoded blob, length-prefixed; its own decoder revalidates *)
  let blob = str c ~cap:(String.length c.s) what in
  match decode blob with
  | Ok v -> v
  | Error e -> fail "%s: %s" what (Format.asprintf "%a" Wire.pp_error e)

let decode_compile_request ~version:v c =
  let tenant = str c ~cap:max_name "tenant" in
  let compiler = str c ~cap:max_name "compiler" in
  let rbits = u32 c "rbits" in
  let wbits = u32 c "wbits" in
  let xmax_bits = u32 c "xmax-bits" in
  let iterations = u32 c "iterations" in
  let flags = u8 c "flags" in
  let deadline_ms = u32 c "deadline-ms" in
  let program = wire_sub ~what:"program" Wire.decode c in
  (* the v2 trailer is mandatory in v2 frames: a version byte is a
     promise about the exact payload layout, so every truncation of a
     v2 payload still fails to decode *)
  let strategies =
    if v >= 2 then
      str_list c ~count_what:"strategy count" ~what:"strategy"
    else []
  in
  if rbits < 1 || rbits > 120 then fail "rbits %d out of range" rbits;
  if wbits < 1 || wbits > rbits then fail "wbits %d out of range" wbits;
  if xmax_bits > 120 then fail "xmax-bits %d out of range" xmax_bits;
  {
    tenant;
    compiler;
    strategies;
    rbits;
    wbits;
    xmax_bits;
    iterations;
    allow_fallback = flags land 1 <> 0;
    oracle = flags land 2 <> 0;
    deadline_ms;
    program;
  }

let decode_compile_reply c =
  let engine = str c ~cap:max_name "engine" in
  let wbits_used = u32 c "wbits-used" in
  let warnings = str_list c ~count_what:"warning count" ~what:"warning" in
  let managed = wire_sub ~what:"managed" Wire.decode_managed c in
  { engine; wbits_used; warnings; managed }

let empty c v = finish c v

let guard f payload =
  let c = { s = payload; pos = 0 } in
  match f c with v -> Ok (finish c v) | exception Fail m -> Error m

let decode_request ?version:(v = version) ~typ payload =
  if v < version_min || v > version then
    Error (Printf.sprintf "unsupported protocol version %d" v)
  else if typ = t_compile then
    guard (fun c -> Compile (decode_compile_request ~version:v c)) payload
  else if typ = t_ping then guard (fun c -> empty c Ping) payload
  else if typ = t_shutdown then guard (fun c -> empty c Shutdown) payload
  else if typ = t_stats then guard (fun c -> empty c Stats) payload
  else if typ = t_strategies then
    guard (fun c -> empty c List_strategies) payload
  else Error (Printf.sprintf "unknown request type %d" typ)

let decode_strategy_info c =
  let s_name = str c ~cap:max_name "strategy name" in
  let s_aliases = str_list c ~count_what:"alias count" ~what:"alias" in
  let flags = u8 c "capability flags" in
  {
    s_name;
    s_aliases;
    s_redistributes = flags land 1 <> 0;
    s_hoists = flags land 2 <> 0;
    s_explores = flags land 4 <> 0;
    s_fallback = flags land 8 <> 0;
  }

let decode_reply ~typ payload =
  if typ = t_ok then guard (fun c -> Compiled (decode_compile_reply c)) payload
  else if typ = t_degraded then
    guard (fun c -> Degraded (decode_compile_reply c)) payload
  else if typ = t_shed then
    guard
      (fun c ->
        let retry_after_ms = u32 c "retry-after-ms" in
        let reason = str c ~cap:max_message "reason" in
        Shed { retry_after_ms; reason })
      payload
  else if typ = t_timeout then
    guard (fun c -> Timed_out (str c ~cap:max_message "message")) payload
  else if typ = t_failed then
    guard
      (fun c -> Failed (str_list c ~count_what:"error count" ~what:"error"))
      payload
  else if typ = t_bad_request then
    guard (fun c -> Bad_request (str c ~cap:max_message "message")) payload
  else if typ = t_pong then guard (fun c -> empty c Pong) payload
  else if typ = t_stats_reply then
    if String.length payload > max_payload_default then Error "stats too large"
    else Ok (Stats_reply payload)
  else if typ = t_strategies_reply then
    guard
      (fun c ->
        let n = u32 c "strategy count" in
        if n > max_list then fail "strategy count %d exceeds cap %d" n max_list;
        Strategies_reply (List.init n (fun _ -> decode_strategy_info c)))
      payload
  else Error (Printf.sprintf "unknown reply type %d" typ)

(* ------------------------------------------------------------------ *)
(* Framing. *)

let frame ~typ payload =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  add_u8 b version;
  add_u8 b typ;
  add_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

type read_error =
  [ `Closed  (** clean EOF at a frame boundary *)
  | `Timeout  (** the peer stalled past the socket's receive timeout *)
  | `Malformed of string  (** bad magic/version/length, or mid-frame EOF *)
  ]

let pp_read_error ppf = function
  | `Closed -> Format.pp_print_string ppf "connection closed"
  | `Timeout -> Format.pp_print_string ppf "read timeout"
  | `Malformed m -> Format.fprintf ppf "malformed frame: %s" m

(* Read exactly [len] bytes, tolerating partial reads and EINTR.  A
   receive timeout set on the socket surfaces as EAGAIN/EWOULDBLOCK. *)
let read_exact fd buf off len =
  let rec go pos =
    if pos >= len then Ok ()
    else
      match Unix.read fd buf (off + pos) (len - pos) with
      | 0 -> Error (`Eof_after pos)
      | n -> go (pos + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error `Timeout
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) ->
          Error (`Sys (Unix.error_message e))
  in
  go 0

let read_frame ?(max_payload = max_payload_default) fd :
    (int * int * string, read_error) result =
  let hd = Bytes.create header_len in
  match read_exact fd hd 0 header_len with
  | Error (`Eof_after 0) -> Error `Closed
  | Error (`Eof_after n) ->
      Error (`Malformed (Printf.sprintf "eof after %d header bytes" n))
  | Error `Timeout -> Error `Timeout
  | Error (`Sys m) -> Error (`Malformed m)
  | Ok () ->
      if Bytes.sub_string hd 0 4 <> magic then Error (`Malformed "bad magic")
      else
        let v = Char.code (Bytes.get hd 4) in
        if v < version_min || v > version then
          Error
            (`Malformed (Printf.sprintf "unsupported protocol version %d" v))
        else
          let typ = Char.code (Bytes.get hd 5) in
          let len = Int32.to_int (Bytes.get_int32_le hd 6) land 0xffffffff in
          if len > max_payload then
            Error
              (`Malformed
                 (Printf.sprintf "payload length %d exceeds cap %d" len
                    max_payload))
          else
            let payload = Bytes.create len in
            match read_exact fd payload 0 len with
            | Ok () -> Ok (v, typ, Bytes.unsafe_to_string payload)
            | Error `Timeout -> Error `Timeout
            | Error (`Eof_after n) ->
                Error
                  (`Malformed
                     (Printf.sprintf "eof after %d of %d payload bytes" n len))
            | Error (`Sys m) -> Error (`Malformed m)

let write_frame fd ~typ payload =
  let s = frame ~typ payload in
  let buf = Bytes.unsafe_of_string s in
  let rec go pos =
    if pos >= Bytes.length buf then Ok ()
    else
      match Unix.single_write fd buf pos (Bytes.length buf - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0
