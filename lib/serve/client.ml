(* Client side of the compile protocol: a thin connection wrapper, a
   retrying one-shot [compile_retry] (fresh connection per attempt,
   exponential backoff with deterministic jitter), and a raw-bytes
   sender the fault matrix uses to deliver corrupted frames. *)

type t = { fd : Unix.file_descr; max_payload : int }

let connect ?(timeout_ms = 5_000) ?(max_payload = Protocol.max_payload_default)
    ~socket () =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
      let s = float_of_int timeout_ms /. 1000. in
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
       with Unix.Unix_error _ -> ());
      Ok { fd; max_payload }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let roundtrip t request =
  let typ, payload = Protocol.encode_request request in
  match Protocol.write_frame t.fd ~typ payload with
  | Error m -> Error (Printf.sprintf "write: %s" m)
  | Ok () -> (
      match Protocol.read_frame ~max_payload:t.max_payload t.fd with
      | Error e -> Error (Format.asprintf "read: %a" Protocol.pp_read_error e)
      | Ok (_version, typ, payload) -> (
          match Protocol.decode_reply ~typ payload with
          | Error m -> Error (Printf.sprintf "reply: %s" m)
          | Ok reply -> Ok reply))

let ping t =
  match roundtrip t Protocol.Ping with
  | Ok Protocol.Pong -> Ok ()
  | Ok r -> Error ("unexpected reply: " ^ Protocol.reply_name r)
  | Error _ as e -> e

let stats t =
  match roundtrip t Protocol.Stats with
  | Ok (Protocol.Stats_reply json) -> Ok json
  | Ok r -> Error ("unexpected reply: " ^ Protocol.reply_name r)
  | Error _ as e -> e

let compile t req = roundtrip t (Protocol.Compile req)

let list_strategies t =
  match roundtrip t Protocol.List_strategies with
  | Ok (Protocol.Strategies_reply infos) -> Ok infos
  | Ok r -> Error ("unexpected reply: " ^ Protocol.reply_name r)
  | Error _ as e -> e

let shutdown_server t =
  match roundtrip t Protocol.Shutdown with
  | Ok Protocol.Pong -> Ok ()
  | Ok r -> Error ("unexpected reply: " ^ Protocol.reply_name r)
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Retrying one-shot. *)

type attempt_log = { attempts : int; sheds : int; transport_errors : int }

let compile_retry ?(attempts = 5) ?(base_delay_ms = 25.) ?(max_delay_ms = 2_000.)
    ?(seed = 0) ~socket (req : Protocol.compile_request) =
  let rng = Fhe_util.Prng.create (0x5e12e + seed) in
  let log = ref { attempts = 0; sheds = 0; transport_errors = 0 } in
  (* full jitter: delay in [d/2, d), doubling each retry, capped *)
  let backoff i extra_ms =
    let d = min max_delay_ms (base_delay_ms *. (2. ** float_of_int i)) in
    let jittered = d *. (0.5 +. (0.5 *. Fhe_util.Prng.uniform rng ~lo:0. ~hi:1.)) in
    Unix.sleepf ((max jittered (float_of_int extra_ms)) /. 1000.)
  in
  let rec go i last_err =
    if i >= attempts then
      Error
        (Printf.sprintf "gave up after %d attempts: %s" attempts
           (Option.value last_err ~default:"shed"))
    else begin
      log := { !log with attempts = !log.attempts + 1 };
      match connect ~socket () with
      | Error m ->
          log := { !log with transport_errors = !log.transport_errors + 1 };
          backoff i 0;
          go (i + 1) (Some m)
      | Ok t -> (
          let r = compile t req in
          close t;
          match r with
          | Ok (Protocol.Shed { retry_after_ms; reason }) ->
              log := { !log with sheds = !log.sheds + 1 };
              backoff i retry_after_ms;
              go (i + 1) (Some ("shed: " ^ reason))
          | Ok reply -> Ok (reply, !log)
          | Error m ->
              (* transport or framing failure: the server may have
                 restarted mid-flight; a fresh connection may succeed *)
              log := { !log with transport_errors = !log.transport_errors + 1 };
              backoff i 0;
              go (i + 1) (Some m))
    end
  in
  go 0 None

(* ------------------------------------------------------------------ *)
(* Raw sender for the fault matrix. *)

type raw_conduct =
  [ `Read_reply  (** then read one frame like a well-behaved client *)
  | `Close  (** then close abruptly (mid-response disconnect) *)
  | `Stall of int  (** then hold the socket silent for [ms], then close *)
  ]

let send_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let rec go pos =
    if pos >= Bytes.length buf then Ok ()
    else
      match Unix.single_write fd buf pos (Bytes.length buf - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let raw ?(max_payload = Protocol.max_payload_default) ~socket ~bytes conduct =
  match connect ~max_payload ~socket () with
  | Error m -> Error m
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match send_all t.fd bytes with
          | Error m -> Ok (`Send_failed m)
          | Ok () -> (
              match conduct with
              | `Close -> Ok `Closed
              | `Stall ms ->
                  Unix.sleepf (float_of_int ms /. 1000.);
                  Ok `Closed
              | `Read_reply -> (
                  match Protocol.read_frame ~max_payload t.fd with
                  | Error e ->
                      Ok
                        (`No_reply
                           (Format.asprintf "%a" Protocol.pp_read_error e))
                  | Ok (_version, typ, payload) -> (
                      match Protocol.decode_reply ~typ payload with
                      | Ok reply -> Ok (`Reply reply)
                      | Error m -> Ok (`No_reply ("undecodable reply: " ^ m))))))
