(** The resilient compile daemon.

    A Unix-domain-socket server speaking {!Protocol}: one system thread
    per connection, compiles scheduled on a shared {!Fhe_par.Pool} of
    worker domains, and one process-wide {!Fhe_cache.Store} shared by
    every request with per-tenant namespacing.

    The robustness contract, tested by the serve tier's fault matrix:

    - {b Admission.}  At most [capacity] compiles in flight; excess
      requests get an explicit {!Protocol.Shed} reply with a
      [retry_after_ms], never a silent drop or an unbounded queue.
    - {b Deadlines.}  Every compile runs under a budget (the request's
      [deadline_ms] or the server default).  A compile that exceeds it
      is abandoned on its worker and answered with a structured
      {!Protocol.Timed_out} carrying a [Reserve.Diag] serve-pass
      diagnostic.
    - {b Degradation.}  Above [degrade_at] in-flight, reserve-family
      requests run with the fallback chain enabled (reserve → EVA →
      degraded waterlines); a fallback result goes out as
      {!Protocol.Degraded} with rendered warnings, not an error.
    - {b Hostile input.}  Malformed frames and payloads produce
      {!Protocol.Bad_request}; a peer that stalls mid-frame trips the
      receive timeout and loses its connection (slow-loris guard); a
      peer that disconnects mid-response costs one [EPIPE]-as-[Error]
      write ([SIGPIPE] is ignored).  No request, however corrupt, can
      raise past the handler.

    Served compiles dispatch to the same engines with the same knobs
    and cache keys as the [fhec compile] CLI path, so a served result
    is byte-identical to a local one. *)

type config = {
  socket : string;  (** path to bind; unlinked on stop.  Keep it short:
                        [sockaddr_un] caps paths around 104 bytes *)
  domains : int;  (** compile pool width; clamped to at least 2 so a
                      worker domain always exists to run compiles while
                      connection threads await deadlines *)
  capacity : int;  (** max compiles in flight before shedding *)
  degrade_at : int;  (** in-flight threshold where admissions switch to
                         the fallback-permitted chain *)
  default_deadline_ms : int;  (** compile budget when a request says 0 *)
  read_timeout_ms : int;  (** per-socket receive/send timeout *)
  max_payload : int;  (** per-frame payload cap *)
}

val default_config : socket:string -> config
(** domains 2, capacity 8, degrade_at 6, deadline 30 s, read timeout
    2 s, 32 MiB frames. *)

type t

val start : config -> t
(** Bind, listen, and spawn the accept loop; returns immediately.
    Replaces a stale socket file from a previous crash.
    @raise Invalid_argument on a config that cannot work (socket path
    over the [sockaddr_un] limit, [capacity < 1]).
    @raise Unix.Unix_error when the bind itself fails. *)

val stop : t -> unit
(** Stop accepting, give in-flight connections a bounded drain window,
    shut the pool down, and unlink the socket.  Idempotent. *)

val running : t -> bool
(** False once a stop was requested (including by a client's
    [Shutdown] request). *)

val run : config -> unit
(** Foreground mode: [start], then block until a [Shutdown] request
    arrives, then [stop].  What [fhec serve] calls. *)

val stats : t -> Admission.stats

val compile_one : Admission.level -> Protocol.compile_request -> Protocol.reply
(** The compile dispatch itself (strategy-registry lookup, portfolio
    mode, tenant namespace, fallback policy) with no transport —
    exposed for the parity tests and for [fhec serve --self-test]. *)

val strategy_infos : unit -> Protocol.strategy_info list
(** The registry listing a [List_strategies] request is answered
    with. *)
