open Fhe_ir

(** The compile daemon's wire protocol.

    Frames are ["FHES"] + version byte + message-type byte + a
    little-endian u32 payload length + payload; payloads are the
    length-prefixed field encodings below, with programs and compiled
    results carried as {!Fhe_ir.Wire} blobs.

    Decoding follows the same defensive contract as {!Fhe_ir.Wire}:
    every claimed length is validated against the bytes present (plus a
    hard cap) before allocation, unknown types/versions are typed
    errors, and nothing hostile can raise past [decode_*] — the fault
    matrix in the serve test tier holds the daemon to exactly this. *)

val magic : string

val version : int
(** The version this end emits (2).  v2 appended a mandatory strategy
    subset list to the compile payload; both versions decode (see
    {!decode_request}), so pre-bump peers keep working. *)

val version_min : int
(** Oldest version still accepted (1). *)

val header_len : int
(** Bytes in a frame header (magic + version + type + length). *)

val max_payload_default : int
(** Default per-frame payload cap (32 MiB — the largest registry
    program, Lenet-C, encodes to ~17 MiB). *)

(** {1 Messages} *)

type compile_request = {
  tenant : string;  (** cache namespace; [""] = the shared namespace *)
  compiler : string;
      (** canonical strategy name or alias (the server resolves it in
          its strategy registry), or ["portfolio"] *)
  strategies : string list;
      (** v2: for ["portfolio"], the strategy subset to race; [[]] =
          every registered strategy.  Ignored for named compilers; [[]]
          in requests decoded from v1 frames. *)
  rbits : int;
  wbits : int;
  xmax_bits : int;
  iterations : int;  (** Hecate search budget; [0] = the default *)
  allow_fallback : bool;
      (** permit the degraded-waterline fallback chain even when the
          server is not under pressure *)
  oracle : bool;  (** run the differential self-check server-side *)
  deadline_ms : int;  (** per-request compile budget; [0] = server default *)
  program : Program.t;
}

type strategy_info = {
  s_name : string;
  s_aliases : string list;
  s_redistributes : bool;
  s_hoists : bool;
  s_explores : bool;
  s_fallback : bool;
}
(** One registered strategy with its capability flags — the wire
    mirror of [Fhe_strategy.Strategy.caps], kept structural so the
    protocol stays dependency-free. *)

type request = Compile of compile_request | Ping | Shutdown | Stats
             | List_strategies

type compile_reply = {
  engine : string;  (** engine that actually produced the plan *)
  wbits_used : int;  (** waterline it ran at (may be degraded) *)
  warnings : string list;  (** rendered degradation diagnostics *)
  managed : Managed.t;
}

type reply =
  | Compiled of compile_reply  (** the requested configuration, exactly *)
  | Degraded of compile_reply  (** a fallback engine or waterline *)
  | Shed of { retry_after_ms : int; reason : string }
      (** admission control refused the request; retry later *)
  | Timed_out of string  (** the compile exceeded its deadline budget *)
  | Failed of string list  (** every attempted engine failed; rendered diags *)
  | Bad_request of string  (** malformed or out-of-range request *)
  | Pong
  | Stats_reply of string  (** server counters as a JSON object *)
  | Strategies_reply of strategy_info list  (** registry listing *)

val reply_name : reply -> string
(** Stable label: ["ok"], ["degraded"], ["shed"], ["timeout"],
    ["failed"], ["bad-request"], ["pong"], ["stats"], ["strategies"]. *)

val encode_request : request -> int * string
(** Message-type byte and payload, always in the current {!version}'s
    layout. *)

val encode_reply : reply -> int * string

val decode_request :
  ?version:int -> typ:int -> string -> (request, string) result
(** Decode a payload in the layout of [version] (default: current) —
    pass the version byte {!read_frame} returned.  v1 compile payloads
    decode with [strategies = []]; in v2 payloads the strategy trailer
    is mandatory, so every truncation still fails.  Never raises;
    hostile payloads produce [Error]. *)

val decode_reply : typ:int -> string -> (reply, string) result

(** {1 Framing} *)

val frame : typ:int -> string -> string
(** The full frame bytes for a payload — what [write_frame] sends;
    exposed so the fault harness can corrupt real frames. *)

type read_error =
  [ `Closed  (** clean EOF at a frame boundary *)
  | `Timeout  (** the peer stalled past the socket's receive timeout *)
  | `Malformed of string  (** bad magic/version/length, or mid-frame EOF *)
  ]

val pp_read_error : Format.formatter -> read_error -> unit

val read_frame :
  ?max_payload:int -> Unix.file_descr ->
  (int * int * string, read_error) result
(** Read one frame: [(version, type byte, payload)].  Accepts any
    version in [[version_min, version]]; hand the version to
    {!decode_request} so the payload is parsed in its own layout.
    Handles partial reads and EINTR; a receive timeout configured on
    the socket surfaces as [`Timeout].  Never raises. *)

val write_frame : Unix.file_descr -> typ:int -> string -> (unit, string) result
(** Write one frame, tolerating partial writes.  [EPIPE] (peer gone)
    comes back as [Error], not a signal — servers ignore [SIGPIPE]. *)
