type plan = {
  n : int;
  p : int;
  (* ψ^bitrev(i) tables, the standard Harvey/Longa–Naehrig layout *)
  psi : int array;
  psi_inv : int array;
  n_inv : int;
  (* Shoup companions: psi_sh.(i) = floor (psi.(i) * 2^31 / p), etc. —
     one per twiddle so the butterflies never divide. *)
  psi_sh : int array;
  psi_inv_sh : int array;
  n_inv_sh : int;
  br : Modarith.Barrett.t;
}

let bit_reverse x bits =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if x land (1 lsl i) <> 0 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

let make_plan ~n ~p =
  assert (n > 0 && n land (n - 1) = 0);
  let bits =
    let rec go b k = if k = 1 then b else go (b + 1) (k / 2) in
    go 0 n
  in
  let root = Primes.primitive_root ~p ~two_n:(2 * n) in
  let root_inv = Modarith.inv root ~m:p in
  let tab r =
    let a = Array.make n 0 in
    let cur = ref 1 in
    let plainpow = Array.make n 0 in
    for i = 0 to n - 1 do
      plainpow.(i) <- !cur;
      cur := Modarith.mul !cur r ~m:p
    done;
    for i = 0 to n - 1 do
      a.(i) <- plainpow.(bit_reverse i bits)
    done;
    a
  in
  let psi = tab root in
  let psi_inv = tab root_inv in
  let n_inv = Modarith.inv n ~m:p in
  { n;
    p;
    psi;
    psi_inv;
    n_inv;
    psi_sh = Array.map (fun w -> Modarith.shoup w ~m:p) psi;
    psi_inv_sh = Array.map (fun w -> Modarith.shoup w ~m:p) psi_inv;
    n_inv_sh = Modarith.shoup n_inv ~m:p;
    br = Modarith.Barrett.make p }

let modulus t = t.p

let size t = t.n

let barrett t = t.br

(* The original scalar transforms, kept verbatim as the oracle the
   optimized kernels are pinned against (see test_exec.ml). *)
module Reference = struct
  (* Cooley–Tukey butterfly forward NTT with ψ folded in. *)
  let forward t a =
    let p = t.p in
    let n = t.n in
    let m = ref 1 and len = ref (n / 2) in
    while !len >= 1 do
      let start = ref 0 in
      for i = 0 to !m - 1 do
        let w = t.psi.(!m + i) in
        for j = !start to !start + !len - 1 do
          let u = a.(j) in
          let v = Modarith.mul a.(j + !len) w ~m:p in
          a.(j) <- Modarith.add u v ~m:p;
          a.(j + !len) <- Modarith.sub u v ~m:p
        done;
        start := !start + (2 * !len)
      done;
      m := !m * 2;
      len := !len / 2
    done

  (* Gentleman–Sande inverse with ψ^{-1} folded in. *)
  let inverse t a =
    let p = t.p in
    let n = t.n in
    let m = ref (n / 2) and len = ref 1 in
    while !m >= 1 do
      let start = ref 0 in
      for i = 0 to !m - 1 do
        let w = t.psi_inv.(!m + i) in
        for j = !start to !start + !len - 1 do
          let u = a.(j) in
          let v = a.(j + !len) in
          a.(j) <- Modarith.add u v ~m:p;
          a.(j + !len) <- Modarith.mul (Modarith.sub u v ~m:p) w ~m:p
        done;
        start := !start + (2 * !len)
      done;
      m := !m / 2;
      len := !len * 2
    done;
    for i = 0 to n - 1 do
      a.(i) <- Modarith.mul a.(i) t.n_inv ~m:p
    done
end

(* Optimized in-place transforms on Rvec storage.

   Lazy butterflies in the Longa–Naehrig style: values stay in
   [0, 2p) across stages — the twiddle product is a Shoup lazy
   multiply (result < 2p for any input < 2p, since 2p < 2^31), and
   each output takes exactly one conditional subtraction of 2p.  A
   final canonicalization pass maps back to [0, p), which makes the
   results bit-identical to [Reference].

   The inner loops use [Bigarray.Array1.unsafe_get]/[unsafe_set]
   directly: applied syntactically they compile to single load/store
   instructions even without flambda, where the [Rvec.get] wrapper
   would stay an out-of-line call.  Every index below is loop-derived
   and bounded by [n], so the debug mode's obligation reduces to the
   single length check in [guard]. *)

module A1 = Bigarray.Array1

let guard t (a : Rvec.t) =
  if Rvec.checked && A1.dim a <> t.n then
    invalid_arg
      (Printf.sprintf "Ntt: vector length %d does not match plan size %d"
         (A1.dim a) t.n)

let forward t (a : Rvec.t) =
  guard t a;
  let p = t.p in
  let two_p = 2 * p in
  let n = t.n in
  let psi = t.psi and psi_sh = t.psi_sh in
  let m = ref 1 and len = ref (n / 2) in
  while !len >= 1 do
    let l = !len in
    let start = ref 0 in
    for i = 0 to !m - 1 do
      let w = Array.unsafe_get psi (!m + i) in
      let wp = Array.unsafe_get psi_sh (!m + i) in
      let j0 = !start in
      (* branchless [0, 2p) reductions: the sign mask [x asr 62] is -1
         exactly when the tentative subtraction went negative, so the
         conditional add-back costs an and+add, never a mispredict *)
      for j = j0 to j0 + l - 1 do
        let u = A1.unsafe_get a j in
        let t0 = A1.unsafe_get a (j + l) in
        let q = (t0 * wp) lsr 31 in
        let v = (t0 * w) - (q * p) in
        let x = u + v - two_p in
        let x = x + (two_p land (x asr 62)) in
        let y = u - v in
        let y = y + (two_p land (y asr 62)) in
        A1.unsafe_set a j x;
        A1.unsafe_set a (j + l) y
      done;
      start := !start + (2 * l)
    done;
    m := !m * 2;
    len := l / 2
  done;
  for i = 0 to n - 1 do
    let x = A1.unsafe_get a i - p in
    A1.unsafe_set a i (x + (p land (x asr 62)))
  done

let inverse t (a : Rvec.t) =
  guard t a;
  let p = t.p in
  let two_p = 2 * p in
  let n = t.n in
  let psi_inv = t.psi_inv and psi_inv_sh = t.psi_inv_sh in
  let m = ref (n / 2) and len = ref 1 in
  while !m >= 1 do
    let l = !len in
    let start = ref 0 in
    for i = 0 to !m - 1 do
      let w = Array.unsafe_get psi_inv (!m + i) in
      let wp = Array.unsafe_get psi_inv_sh (!m + i) in
      let j0 = !start in
      for j = j0 to j0 + l - 1 do
        let u = A1.unsafe_get a j in
        let v = A1.unsafe_get a (j + l) in
        let x = u + v - two_p in
        let x = x + (two_p land (x asr 62)) in
        let d = u - v in
        let d = d + (two_p land (d asr 62)) in
        let q = (d * wp) lsr 31 in
        A1.unsafe_set a j x;
        A1.unsafe_set a (j + l) ((d * w) - (q * p))
      done;
      start := !start + (2 * l)
    done;
    m := !m / 2;
    len := l * 2
  done;
  let ni = t.n_inv and nip = t.n_inv_sh in
  for i = 0 to n - 1 do
    (* inputs are < 2p < 2^31, so the Shoup multiply is in range and
       its canonical variant lands directly in [0, p) *)
    let x = A1.unsafe_get a i in
    let q = (x * nip) lsr 31 in
    let r = (x * ni) - (q * p) - p in
    A1.unsafe_set a i (r + (p land (r asr 62)))
  done
