type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* FHE_CKKS_CHECKED=1 turns every access into a bounds-checked one.
   Read once at module load: the branch below is on an immutable bool,
   which the compiler hoists out of the hot loops. *)
let checked =
  match Sys.getenv_opt "FHE_CKKS_CHECKED" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let length (t : t) = Bigarray.Array1.dim t

let create n : t =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a 0;
  a

let[@inline] get (t : t) i =
  if checked then Bigarray.Array1.get t i else Bigarray.Array1.unsafe_get t i

let[@inline] set (t : t) i v =
  if checked then Bigarray.Array1.set t i v
  else Bigarray.Array1.unsafe_set t i v

let blit (src : t) (dst : t) = Bigarray.Array1.blit src dst

let copy t =
  let n = length t in
  let out = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.blit t out;
  out

let of_array a : t =
  let n = Array.length a in
  let out = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set out i (Array.unsafe_get a i)
  done;
  out

let to_array (t : t) = Array.init (length t) (fun i -> get t i)

let fill (t : t) v = Bigarray.Array1.fill t v
