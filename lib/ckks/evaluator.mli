(** Homomorphic evaluation: the RNS-CKKS operations of Table 2 on real
    ciphertexts.

    Ciphertexts are pairs [(c0, c1)] with [m ≈ c0 + c1·s (mod Q_l)],
    kept in NTT form, carrying their level and exact scale (a float:
    rescaling divides by the actual dropped prime, not exactly [2^R]).
    Scale drift between adds is tolerated up to a relative bound and
    contributes to the (approximate) result like any other noise. *)

type ct = {
  c0 : Poly.t;
  c1 : Poly.t;
  level : int;
  scale : float;
}

val encrypt :
  Keys.t -> level:int -> scale:float -> float array -> ct
(** Public-key encryption of up to [n/2] real slot values. *)

val encrypt_det :
  Keys.t -> tag:int -> level:int -> scale:float -> float array -> ct
(** Public-key encryption from a deterministic randomness stream
    derived from [(keygen seed, tag)].  Two calls with the same keys,
    tag, and arguments produce byte-identical ciphertexts regardless of
    what was encrypted in between — the scheduler relies on this to
    encrypt inputs in any order and to re-encrypt freed inputs. *)

val encrypt_sym :
  Keys.t -> level:int -> scale:float -> float array -> ct
(** Secret-key encryption (fresh randomness per call). *)

val decrypt : Keys.t -> ct -> float array
(** Decrypt and decode to [n/2] slot values. *)

val add : Keys.t -> ct -> ct -> ct

val sub : Keys.t -> ct -> ct -> ct

val neg : Keys.t -> ct -> ct

val add_plain : Keys.t -> ct -> float array -> ct
(** Add a plaintext vector, encoded at the ciphertext's scale/level. *)

val sub_plain : Keys.t -> ct -> float array -> ct

val mul : Keys.t -> ct -> ct -> ct
(** Ciphertext multiplication including relinearization; scales
    multiply. *)

val mul_plain : Keys.t -> ct -> ?scale:float -> float array -> ct
(** Multiply by a plaintext encoded at [scale] (default [2^level_bits·½]
    — pass the compiler's waterline for managed programs). *)

val rescale : Keys.t -> ct -> ct
(** Drop the top chain prime; scale divides by that prime. *)

val modswitch : Keys.t -> ct -> ct
(** Drop the top chain prime without touching the scale. *)

val rescale_modswitch : Keys.t -> ct -> ct
(** [rescale] followed by [modswitch], fused: one pass of the RNS
    division computes only the surviving [level - 2] rows, so the row
    that the modswitch would immediately drop is never materialized.
    Requires [level > 2]. *)

val upscale : Keys.t -> ct -> int -> ct
(** Multiply by the exact constant [2^bits] (noise-free). *)

val rotate : Keys.t -> ct -> int -> ct
(** Rotate slots left by [k] (Galois automorphism + key switch); the
    Galois key is generated on demand if missing. *)

val scale_mismatch_tolerance : float
(** Maximum relative operand-scale mismatch [add] accepts (the RNS prime
    drift bound; see DESIGN.md). *)
