module Disk = Fhe_cache.Disk

let key ~nonce ~id = Digest.to_hex (Digest.string (Printf.sprintf "ct:%s:%d" nonce id))

let spill ~dir ~nonce ~id ct =
  let payload = Bytes.to_string (Serialize.ciphertext_to_bytes ct) in
  let key = key ~nonce ~id in
  Disk.put ~dir ~key payload;
  match Disk.get ~dir ~key with
  | `Hit s -> String.equal s payload
  | `Miss | `Poisoned -> false

let load ctx ~dir ~nonce ~id =
  match Disk.get ~dir ~key:(key ~nonce ~id) with
  | `Hit s -> (
      match Serialize.ciphertext_of_bytes ctx (Bytes.of_string s) with
      | Ok ct -> Some ct
      | Error _ -> None)
  | `Miss | `Poisoned -> None

let drop ~dir ~nonce ~id = Disk.remove ~dir ~key:(key ~nonce ~id)
