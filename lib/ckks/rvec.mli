(** Residue vectors: the coefficient storage of the CKKS hot paths.

    A flat [Bigarray.Array1] of native ints in 64-bit cells — unboxed,
    untagged loads/stores and no GC scanning, which is what the NTT and
    key-switch inner loops are bound by.  Accesses are unchecked by
    default; setting [FHE_CKKS_CHECKED=1] in the environment (read once
    at startup) turns every [get]/[set] into a bounds-checked access
    for debugging. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val checked : bool
(** Whether the bounds-checked debug mode is active. *)

val create : int -> t
(** Zero-filled vector of the given length. *)

val length : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

val blit : t -> t -> unit
(** [blit src dst]; lengths must match. *)

val copy : t -> t

val of_array : int array -> t

val to_array : t -> int array

val fill : t -> int -> unit
