(** Arithmetic modulo word-sized primes.

    All moduli in this backend are NTT-friendly primes below [2^30], so
    products of two residues fit comfortably in OCaml's 63-bit native
    integers — no 128-bit emulation needed (this is why the backend uses
    ~28-bit prime chains instead of SEAL's 60-bit ones; see DESIGN.md). *)

val max_modulus_bits : int
(** 30: moduli must be below [2^30]. *)

val add : int -> int -> m:int -> int

val sub : int -> int -> m:int -> int

val mul : int -> int -> m:int -> int

val neg : int -> m:int -> int

val pow : int -> int -> m:int -> int
(** [pow b e ~m] with [e >= 0], by square-and-multiply. *)

val inv : int -> m:int -> int
(** Inverse modulo a prime [m] (Fermat). @raise Invalid_argument on 0. *)

val center : int -> m:int -> int
(** Map a residue to its centered representative in
    [(-m/2, m/2\]]. *)

(** {1 Division-free reductions}

    The NTT and keyswitch inner loops cannot afford a hardware divide
    per butterfly.  Shoup multiplication handles constants known ahead
    of the loop (twiddles, scalars); Barrett reduction handles products
    of two variable residues. *)

val shoup_shift : int
(** 31: the fixed-point shift used by the Shoup precomputation. *)

val shoup : int -> m:int -> int
(** [shoup w ~m] precomputes [floor (w * 2^31 / m)] for use with
    {!mul_shoup} / {!mul_shoup_lazy}. Requires [w < m < 2^30]. *)

val mul_shoup_lazy : int -> int -> int -> m:int -> int
(** [mul_shoup_lazy a w wp ~m] = a value congruent to [a*w mod m] in
    [[0, 2m)], for any [a < 2^31] and [wp = shoup w ~m].  One
    high-multiply, no division; used inside the lazy NTT butterflies. *)

val mul_shoup : int -> int -> int -> m:int -> int
(** Like {!mul_shoup_lazy} but canonical: result in [[0, m)]. *)

module Barrett : sig
  type t
  (** Precomputed constants for one modulus. *)

  val make : int -> t
  (** @raise Invalid_argument if the modulus is not in [[2, 2^30)]. *)

  val modulus : t -> int

  val reduce : t -> int -> int
  (** [reduce t x] = [x mod p] for any [x < p^2], canonical. *)

  val mul : t -> int -> int -> int
  (** [mul t a b] = [a * b mod p] for residues [a, b < p]. *)
end
