type ct = {
  c0 : Poly.t;
  c1 : Poly.t;
  level : int;
  scale : float;
}

let scale_mismatch_tolerance = 1e-3

let encode_at (k : Keys.t) ~level ~scale values =
  Encoder.encode k.Keys.ctx ~level ~scale values

let encrypt_with (k : Keys.t) fresh ~level ~scale values =
  let ctx = k.Keys.ctx in
  let n = ctx.Context.n in
  let m = encode_at k ~level ~scale values in
  let u =
    Poly.to_ntt ctx
      (Poly.of_coeff_array ctx ~level ~special:false
         (Sampler.ternary fresh ~n))
  in
  let e0 =
    Poly.to_ntt ctx
      (Poly.of_coeff_array ctx ~level ~special:false
         (Sampler.gaussian fresh ~n ()))
  in
  let e1 =
    Poly.to_ntt ctx
      (Poly.of_coeff_array ctx ~level ~special:false
         (Sampler.gaussian fresh ~n ()))
  in
  let pb = Poly.restrict ctx k.Keys.pb ~level ~special:false in
  let pa = Poly.restrict ctx k.Keys.pa ~level ~special:false in
  { c0 = Poly.add ctx (Poly.add ctx (Poly.mul ctx pb u) e0) m;
    c1 = Poly.add ctx (Poly.mul ctx pa u) e1;
    level;
    scale }

let encrypt (k : Keys.t) ~level ~scale values =
  encrypt_with k k.Keys.enc_sampler ~level ~scale values

(* Deterministic encryption for scheduled execution: the randomness
   stream depends only on (keygen seed, tag), not on how many
   encryptions happened before — so inputs can be encrypted in any
   order, or re-encrypted after being freed, with byte-identical
   results. *)
let encrypt_det (k : Keys.t) ~tag ~level ~scale values =
  encrypt_with k
    (Sampler.create ~seed:(Keys.derived_enc_seed k tag))
    ~level ~scale values

let encrypt_sym (k : Keys.t) ~level ~scale values =
  let ctx = k.Keys.ctx in
  let n = ctx.Context.n in
  let fresh = k.Keys.enc_sampler in
  let m = encode_at k ~level ~scale values in
  let a = Sampler.uniform_ntt fresh ctx ~level ~special:false in
  let e =
    Poly.to_ntt ctx
      (Poly.of_coeff_array ctx ~level ~special:false
         (Sampler.gaussian fresh ~n ()))
  in
  let s = Poly.restrict ctx k.Keys.s ~level ~special:false in
  { c0 = Poly.add ctx (Poly.add ctx (Poly.neg ctx (Poly.mul ctx a s)) e) m;
    c1 = a;
    level;
    scale }

let decrypt (k : Keys.t) ct =
  let ctx = k.Keys.ctx in
  let s = Poly.restrict ctx k.Keys.s ~level:ct.level ~special:false in
  let m = Poly.add ctx ct.c0 (Poly.mul ctx ct.c1 s) in
  Encoder.decode ctx ~scale:ct.scale m

let check_binop a b =
  if a.level <> b.level then invalid_arg "Evaluator: level mismatch";
  let rel = Float.abs (a.scale -. b.scale) /. Float.max a.scale b.scale in
  if rel > scale_mismatch_tolerance then
    invalid_arg
      (Printf.sprintf "Evaluator: scale mismatch beyond tolerance (%g vs %g)"
         a.scale b.scale)

let add (k : Keys.t) a b =
  check_binop a b;
  let ctx = k.Keys.ctx in
  { a with
    c0 = Poly.add ctx a.c0 b.c0;
    c1 = Poly.add ctx a.c1 b.c1;
    scale = Float.max a.scale b.scale }

let sub (k : Keys.t) a b =
  check_binop a b;
  let ctx = k.Keys.ctx in
  { a with
    c0 = Poly.sub ctx a.c0 b.c0;
    c1 = Poly.sub ctx a.c1 b.c1;
    scale = Float.max a.scale b.scale }

let neg (k : Keys.t) a =
  let ctx = k.Keys.ctx in
  { a with c0 = Poly.neg ctx a.c0; c1 = Poly.neg ctx a.c1 }

let add_plain (k : Keys.t) a values =
  let m = encode_at k ~level:a.level ~scale:a.scale values in
  { a with c0 = Poly.add k.Keys.ctx a.c0 m }

let sub_plain (k : Keys.t) a values =
  let m = encode_at k ~level:a.level ~scale:a.scale values in
  { a with c0 = Poly.sub k.Keys.ctx a.c0 m }

(* Σ_j [x]_{q_j} · ksk_j, then divide by the special prime: returns the
   (b, a) pair adding [x·target] under the secret key.

   Two phases, both fanned across the pool when one is attached:
   phase 1 brings each digit row to coefficient form (one inverse NTT
   per digit); phase 2 owns one output row each — for every digit it
   base-extends the coefficients into that row's prime (a blit when the
   primes coincide), forward-transforms once, and multiply-accumulates
   against {e both} key polynomials, so the lifted transform is shared
   between the b and a accumulators.  Digits accumulate in fixed order
   with exact modular adds, so the result is width-independent. *)
let key_switch (k : Keys.t) x (sk : Keys.switch_key) =
  let ctx = k.Keys.ctx in
  let n = ctx.Context.n in
  let level = x.Poly.level in
  let digits = Array.init level (fun j -> Rvec.copy x.Poly.data.(j)) in
  Context.par_rows ctx level (fun j ->
      Ntt.inverse (Context.plan ctx j) digits.(j));
  let acc_b = Poly.zero ctx ~level ~special:true ~ntt:true in
  let acc_a = Poly.zero ctx ~level ~special:true ~ntt:true in
  let nrows = level + 1 in
  Context.par_rows ctx nrows (fun r ->
      let pi = if r < level then r else ctx.Context.levels in
      let q = Context.prime ctx pi in
      let plan = Context.plan ctx pi in
      let br = Ntt.barrett plan in
      let rb = acc_b.Poly.data.(r) and ra = acc_a.Poly.data.(r) in
      let tmp = Rvec.create n in
      for j = 0 to level - 1 do
        let qj = Context.prime ctx j in
        let dj = digits.(j) in
        if qj = q then Rvec.blit dj tmp
        else begin
          let half = qj / 2 in
          for i = 0 to n - 1 do
            let c = Rvec.get dj i in
            let c = if c > half then c - qj else c in
            Rvec.set tmp i (Fhe_util.Bits.pos_rem c q)
          done
        end;
        Ntt.forward plan tmp;
        (* key rows: keys live in the full (levels, special) basis, so
           chain row r aligns with key row r and the special row with
           the key's last row *)
        let kb_j = sk.Keys.kb.(j) and ka_j = sk.Keys.ka.(j) in
        let key_row p = p.Poly.data.(if r < level then r else Poly.rows p - 1) in
        let kb = key_row kb_j and ka = key_row ka_j in
        for i = 0 to n - 1 do
          let d = Rvec.get tmp i in
          let b' = Rvec.get rb i + Modarith.Barrett.mul br d (Rvec.get kb i) in
          Rvec.set rb i (if b' >= q then b' - q else b');
          let a' = Rvec.get ra i + Modarith.Barrett.mul br d (Rvec.get ka i) in
          Rvec.set ra i (if a' >= q then a' - q else a')
        done
      done);
  (Poly.drop_last ctx acc_b, Poly.drop_last ctx acc_a)

let mul (k : Keys.t) a b =
  if a.level <> b.level then invalid_arg "Evaluator.mul: level mismatch";
  let ctx = k.Keys.ctx in
  let e0 = Poly.mul ctx a.c0 b.c0 in
  let e1 = Poly.add ctx (Poly.mul ctx a.c0 b.c1) (Poly.mul ctx a.c1 b.c0) in
  let e2 = Poly.mul ctx a.c1 b.c1 in
  let rb, ra = key_switch k e2 (Keys.relin_key k) in
  { c0 = Poly.add ctx e0 rb;
    c1 = Poly.add ctx e1 ra;
    level = a.level;
    scale = a.scale *. b.scale }

let mul_plain (k : Keys.t) a ?scale values =
  let ctx = k.Keys.ctx in
  let pscale =
    match scale with
    | Some s -> s
    | None -> Fhe_util.Bits.pow2f (ctx.Context.level_bits / 2)
  in
  let m = encode_at k ~level:a.level ~scale:pscale values in
  { a with
    c0 = Poly.mul ctx a.c0 m;
    c1 = Poly.mul ctx a.c1 m;
    scale = a.scale *. pscale }

let rescale (k : Keys.t) a =
  if a.level <= 1 then invalid_arg "Evaluator.rescale: bottom level";
  let ctx = k.Keys.ctx in
  let q = float_of_int ctx.Context.primes.(a.level - 1) in
  { c0 = Poly.drop_last ctx a.c0;
    c1 = Poly.drop_last ctx a.c1;
    level = a.level - 1;
    scale = a.scale /. q }

let modswitch (k : Keys.t) a =
  if a.level <= 1 then invalid_arg "Evaluator.modswitch: bottom level";
  let ctx = k.Keys.ctx in
  { a with
    c0 = Poly.restrict ctx a.c0 ~level:(a.level - 1) ~special:false;
    c1 = Poly.restrict ctx a.c1 ~level:(a.level - 1) ~special:false;
    level = a.level - 1 }

let rescale_modswitch (k : Keys.t) a =
  if a.level <= 2 then invalid_arg "Evaluator.rescale_modswitch: bottom level";
  let ctx = k.Keys.ctx in
  let keep = a.level - 2 in
  let q = float_of_int ctx.Context.primes.(a.level - 1) in
  { c0 = Poly.drop_last ~keep ctx a.c0;
    c1 = Poly.drop_last ~keep ctx a.c1;
    level = keep;
    scale = a.scale /. q }

let upscale (k : Keys.t) a bits =
  if bits <= 0 then invalid_arg "Evaluator.upscale: non-positive bits";
  let ctx = k.Keys.ctx in
  let factor pi =
    Modarith.pow 2 bits ~m:(Context.prime ctx pi)
  in
  { a with
    c0 = Poly.mul_scalar_fn ctx a.c0 factor;
    c1 = Poly.mul_scalar_fn ctx a.c1 factor;
    scale = a.scale *. Fhe_util.Bits.pow2f bits }

let rotate (k : Keys.t) a steps =
  let ctx = k.Keys.ctx in
  let nh = Context.slot_count ctx in
  let steps = Fhe_util.Bits.pos_rem steps nh in
  if steps = 0 then a
  else begin
    let g = Keys.galois_element ctx steps in
    let c0g = Poly.automorphism ctx a.c0 ~g in
    let c1g = Poly.automorphism ctx a.c1 ~g in
    let gk = Keys.galois_key k steps in
    let kb, ka = key_switch k c1g gk in
    { a with c0 = Poly.add ctx c0g kb; c1 = ka }
  end
