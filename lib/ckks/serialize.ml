(* Little-endian framed binary format.  Each object: 4-byte magic,
   1-byte version, payload.  Residues fit 32 bits (moduli < 2^30). *)

let magic_ct = "FHC1"

let magic_keys = "FHK1"

let version = 1

(* ------------------------------------------------------------------ *)
(* writer *)


let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  for i = 0 to 3 do
    w_u8 b ((v lsr (8 * i)) land 0xff)
  done

let w_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
  done

let w_row b row =
  let n = Rvec.length row in
  w_u32 b n;
  for i = 0 to n - 1 do
    w_u32 b (Rvec.get row i)
  done

let w_poly b (p : Poly.t) =
  w_u8 b p.Poly.level;
  w_u8 b (if p.Poly.special then 1 else 0);
  w_u8 b (if p.Poly.ntt then 1 else 0);
  Array.iter (w_row b) p.Poly.data

(* ------------------------------------------------------------------ *)
(* reader *)

exception Bad of string

type reader = { data : bytes; mutable pos : int }

let r_u8 r =
  if r.pos >= Bytes.length r.data then raise (Bad "truncated");
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (r_u8 r lsl (8 * i))
  done;
  !v

let r_f64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (r_u8 r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let r_row r ~n ~q =
  let len = r_u32 r in
  if len <> n then raise (Bad (Printf.sprintf "row length %d, expected %d" len n));
  let row = Rvec.create n in
  for i = 0 to n - 1 do
    let v = r_u32 r in
    if v >= q then raise (Bad "residue out of range");
    Rvec.set row i v
  done;
  row

let r_poly r (ctx : Context.t) =
  let level = r_u8 r in
  if level < 1 || level > ctx.Context.levels then raise (Bad "bad poly level");
  let special = r_u8 r = 1 in
  let ntt = r_u8 r = 1 in
  let nrows = level + if special then 1 else 0 in
  let data =
    Array.init nrows (fun row ->
        let q =
          Context.prime ctx (if row < level then row else ctx.Context.levels)
        in
        r_row r ~n:ctx.Context.n ~q)
  in
  { Poly.level; special; ntt; data }

let r_magic r expect =
  let got = String.init 4 (fun _ -> Char.chr (r_u8 r)) in
  if got <> expect then raise (Bad (Printf.sprintf "bad magic %S" got));
  let v = r_u8 r in
  if v <> version then raise (Bad (Printf.sprintf "unsupported version %d" v))

(* ------------------------------------------------------------------ *)
(* public api *)

let ciphertext_to_bytes (ct : Evaluator.ct) =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic_ct;
  w_u8 b version;
  w_u8 b ct.Evaluator.level;
  w_f64 b ct.Evaluator.scale;
  w_poly b ct.Evaluator.c0;
  w_poly b ct.Evaluator.c1;
  Buffer.to_bytes b

let ciphertext_of_bytes ctx data =
  let r = { data; pos = 0 } in
  match
    r_magic r magic_ct;
    let level = r_u8 r in
    let scale = r_f64 r in
    let c0 = r_poly r ctx in
    let c1 = r_poly r ctx in
    if c0.Poly.level <> level || c1.Poly.level <> level then
      raise (Bad "component level mismatch");
    if not (scale > 0.0) then raise (Bad "non-positive scale");
    { Evaluator.c0; c1; level; scale }
  with
  | ct -> Ok ct
  | exception Bad msg -> Error msg

let w_switch_key b (sk : Keys.switch_key) =
  w_u32 b (Array.length sk.Keys.kb);
  Array.iter (w_poly b) sk.Keys.kb;
  Array.iter (w_poly b) sk.Keys.ka

let r_switch_key r ctx =
  let n = r_u32 r in
  if n <> ctx.Context.levels then raise (Bad "switch key digit count");
  let kb = Array.init n (fun _ -> r_poly r ctx) in
  let ka = Array.init n (fun _ -> r_poly r ctx) in
  { Keys.kb; ka }

let galois_keys_to_bytes (k : Keys.t) =
  let b = Buffer.create 65536 in
  Buffer.add_string b magic_keys;
  w_u8 b version;
  w_poly b k.Keys.pb;
  w_poly b k.Keys.pa;
  (* forces generation if the relin key is lazy/evicted *)
  w_switch_key b (Keys.relin_key k);
  let rotations =
    List.sort compare
      (Hashtbl.fold (fun step _ acc -> step :: acc) k.Keys.galois [])
  in
  w_u32 b (List.length rotations);
  List.iter
    (fun step ->
      w_u32 b step;
      w_switch_key b (Hashtbl.find k.Keys.galois step))
    rotations;
  Buffer.to_bytes b

let load_evaluation_keys ctx ~secret data =
  let r = { data; pos = 0 } in
  match
    r_magic r magic_keys;
    let pb = r_poly r ctx in
    let pa = r_poly r ctx in
    let relin = r_switch_key r ctx in
    let nrot = r_u32 r in
    let galois = Hashtbl.create (max 4 nrot) in
    for _ = 1 to nrot do
      let step = r_u32 r in
      Hashtbl.replace galois step (r_switch_key r ctx)
    done;
    let last_use = Hashtbl.create (max 4 (nrot + 1)) in
    (* loaded keys are resident from tick 0; relin is LRU tag 0 *)
    Hashtbl.replace last_use 0 0;
    Hashtbl.iter (fun step _ -> Hashtbl.replace last_use step 0) galois;
    let resident = (1 + nrot) * Keys.switch_key_bytes ctx in
    { Keys.ctx; seed = 0; s = secret; pb; pa; relin = Some relin; galois;
      last_use; tick = 0; budget = None;
      resident_bytes = resident; peak_bytes = resident;
      gens = 0; evictions = 0;
      enc_sampler = Sampler.create ~seed:(0 lxor 0x5EED5) }
  with
  | keys -> Ok keys
  | exception Bad msg -> Error msg
