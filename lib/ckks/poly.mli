(** RNS polynomials over [Z_Q\[X\]/(X^n + 1)].

    A polynomial lives in a basis of [level] chain primes (rows
    [0..level-1]) optionally extended by the special prime (last row).
    Ciphertext polynomials are kept in NTT (evaluation) form; the few
    operations that need coefficients (rescale, key-switch
    decomposition, automorphism, decoding) convert transiently.

    Rows are {!Rvec.t} bigarray vectors (unboxed 64-bit cells), and the
    per-row loops use the plan's precomputed Shoup/Barrett constants —
    no division on any hot path.  When the context has a pool attached
    ({!Context.set_pool}), row work fans out across it with results
    identical to the sequential path. *)

type t = {
  level : int;
  special : bool;
  ntt : bool;
  data : Rvec.t array;  (** one row of [n] residues per basis prime *)
}

val rows : t -> int
(** [level], plus one for the special row when present. *)

val prime_index : Context.t -> t -> int -> int
(** Context prime index of row [r]: [r] itself for chain rows,
    [ctx.levels] for the special row. *)

val zero : Context.t -> level:int -> special:bool -> ntt:bool -> t

val copy : t -> t

val release : Context.t -> t -> unit
(** Return every row to the context's arena (no-op without one).  The
    caller promises no live value still references this polynomial's
    storage — including via ciphertexts that share the record. *)

val of_coeff_array : Context.t -> level:int -> special:bool -> int array -> t
(** Lift small signed coefficients into every basis row (coeff form). *)

val to_ntt : Context.t -> t -> t
(** No-op if already in NTT form. *)

val of_ntt : Context.t -> t -> t
(** Inverse transform; no-op if already in coefficient form. *)

val add : Context.t -> t -> t -> t

val sub : Context.t -> t -> t -> t

val neg : Context.t -> t -> t

val mul : Context.t -> t -> t -> t
(** Pointwise product; both operands must be in NTT form with equal
    bases. *)

val mul_scalar_fn : Context.t -> t -> (int -> int) -> t
(** Multiply row [i] by [scalar_of_prime_index i] (mod that prime);
    index [levels] means the special row. *)

val drop_last : ?keep:int -> Context.t -> t -> t
(** Exact RNS division by the last basis prime with centered rounding —
    the arithmetic core of [rescale] (drops the top chain prime) and of
    the key-switch mod-down (drops the special prime).  Input in NTT
    form; output in NTT form.  [?keep] restricts the output to its
    first [keep] chain rows, fusing a following modswitch into the same
    pass (rows that would be dropped anyway are never computed). *)

val automorphism : Context.t -> t -> g:int -> t
(** Apply the Galois map [X ↦ X^g] ([g] odd, mod [2n]); any form, result
    in the same form as the input. *)

val equal_basis : t -> t -> bool

val restrict : Context.t -> t -> level:int -> special:bool -> t
(** Keep only the first [level] chain rows (and the special row if
    requested): reduction mod a smaller modulus, which in RNS is just
    dropping rows.  @raise Invalid_argument when growing the basis. *)
