type switch_key = {
  kb : Poly.t array;
  ka : Poly.t array;
}

type mem = {
  resident_bytes : int;
  peak_bytes : int;
  gens : int;
  evictions : int;
}

type t = {
  ctx : Context.t;
  seed : int;
  s : Poly.t;
  pb : Poly.t;
  pa : Poly.t;
  mutable relin : switch_key option;
  galois : (int, switch_key) Hashtbl.t;
  last_use : (int, int) Hashtbl.t;
  mutable tick : int;
  mutable budget : int option;
  mutable resident_bytes : int;
  mutable peak_bytes : int;
  mutable gens : int;
  mutable evictions : int;
  enc_sampler : Sampler.t;
}

(* The relin key shares the eviction namespace with the Galois keys;
   Galois entries are keyed by their (nonzero) normalized step, so 0 is
   free for relin. *)
let relin_tag = 0

(* SplitMix-style scramble confined to OCaml's 63-bit ints: every
   switch key and every deterministic encryption draws from its own
   stream derived from (seed, salt), so the bytes of a key depend only
   on the keygen seed and its identity — never on generation order.
   That is what makes evict-then-regenerate byte-identical. *)
let mix seed salt =
  let m = 0x2545F4914F6CDD1D in
  let s = ref ((seed lxor (((2 * salt) + 1) * m)) land max_int) in
  s := !s lxor (!s lsr 29);
  s := !s * m land max_int;
  s := !s lxor (!s lsr 32);
  !s land max_int

let relin_seed t = mix t.seed 0x7E11

let galois_seed t k = mix t.seed (0x60A1 + k)

let derived_enc_seed t tag = mix (t.seed lxor 0x5EED5) (0xE4C0 + tag)

let switch_key_bytes (ctx : Context.t) =
  let levels = ctx.Context.levels in
  (* kb + ka: [levels] digits, each a full-basis poly of [levels+1]
     rows of [n] boxed-free 64-bit cells *)
  2 * levels * (levels + 1) * ctx.Context.n * 8

let galois_element (ctx : Context.t) k =
  let nh = Context.slot_count ctx in
  let k = Fhe_util.Bits.pos_rem k nh in
  (Fftc.rot_group ctx.Context.fft).(k)

(* Key for switching [target·(something)] onto s: digit j encrypts
   e_j + P·target on residue row j. *)
let make_switch_key (ctx : Context.t) sampler ~s ~target =
  let levels = ctx.Context.levels in
  let n = ctx.Context.n in
  let kb = Array.make levels s and ka = Array.make levels s in
  for j = 0 to levels - 1 do
    let a = Sampler.uniform_ntt sampler ctx ~level:levels ~special:true in
    let e =
      Poly.to_ntt ctx
        (Poly.of_coeff_array ctx ~level:levels ~special:true
           (Sampler.gaussian sampler ~n ()))
    in
    let gadget =
      Poly.mul_scalar_fn ctx target (fun pi ->
          if pi = j then ctx.Context.special else 0)
    in
    let b =
      Poly.add ctx (Poly.add ctx (Poly.neg ctx (Poly.mul ctx a s)) e) gadget
    in
    kb.(j) <- b;
    ka.(j) <- a
  done;
  { kb; ka }

let touch t tag =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.last_use tag t.tick

let evict t tag =
  let release sk =
    Array.iter (Poly.release t.ctx) sk.kb;
    Array.iter (Poly.release t.ctx) sk.ka
  in
  (if tag = relin_tag then begin
     (match t.relin with Some sk -> release sk | None -> ());
     t.relin <- None
   end
   else begin
     (match Hashtbl.find_opt t.galois tag with
     | Some sk -> release sk
     | None -> ());
     Hashtbl.remove t.galois tag
   end);
  Hashtbl.remove t.last_use tag;
  t.resident_bytes <- t.resident_bytes - switch_key_bytes t.ctx;
  t.evictions <- t.evictions + 1

(* Make room for one more switch key under the byte budget by evicting
   least-recently-used keys ([keep] is pinned).  If nothing evictable
   remains we overshoot rather than fail: a budget below one key's size
   still computes correct results, it just cannot be honored. *)
let ensure_room t ~keep =
  match t.budget with
  | None -> ()
  | Some budget ->
      let incoming = switch_key_bytes t.ctx in
      let exception Done in
      (try
         while t.resident_bytes + incoming > budget do
           let victim =
             Hashtbl.fold
               (fun tag tick acc ->
                 if tag = keep then acc
                 else
                   match acc with
                   | Some (_, best) when best <= tick -> acc
                   | _ -> Some (tag, tick))
               t.last_use None
           in
           match victim with
           | Some (tag, _) -> evict t tag
           | None -> raise Done
         done
       with Done -> ())

let account_gen t tag =
  t.gens <- t.gens + 1;
  t.resident_bytes <- t.resident_bytes + switch_key_bytes t.ctx;
  if t.resident_bytes > t.peak_bytes then t.peak_bytes <- t.resident_bytes;
  touch t tag

let relin_key t =
  match t.relin with
  | Some sk ->
      touch t relin_tag;
      sk
  | None ->
      ensure_room t ~keep:relin_tag;
      let s2 = Poly.mul t.ctx t.s t.s in
      let sk =
        make_switch_key t.ctx
          (Sampler.create ~seed:(relin_seed t))
          ~s:t.s ~target:s2
      in
      t.relin <- Some sk;
      account_gen t relin_tag;
      sk

let galois_key t k =
  let nh = Context.slot_count t.ctx in
  let k = Fhe_util.Bits.pos_rem k nh in
  if k = 0 then invalid_arg "Keys.galois_key: rotation by zero needs no key";
  match Hashtbl.find_opt t.galois k with
  | Some sk ->
      touch t k;
      sk
  | None ->
      ensure_room t ~keep:k;
      let g = galois_element t.ctx k in
      let s_g = Poly.automorphism t.ctx t.s ~g in
      let sk =
        make_switch_key t.ctx
          (Sampler.create ~seed:(galois_seed t k))
          ~s:t.s ~target:s_g
      in
      Hashtbl.replace t.galois k sk;
      account_gen t k;
      sk

let add_rotation t k =
  let nh = Context.slot_count t.ctx in
  let k = Fhe_util.Bits.pos_rem k nh in
  if k <> 0 then ignore (galois_key t k)

let set_budget t budget = t.budget <- budget

let mem t =
  { resident_bytes = t.resident_bytes;
    peak_bytes = t.peak_bytes;
    gens = t.gens;
    evictions = t.evictions }

let keygen ?(seed = 0xC0FFEE) ?(rotations = []) ?key_budget ctx =
  let sampler = Sampler.create ~seed in
  let n = ctx.Context.n in
  let levels = ctx.Context.levels in
  let s_coeffs = Sampler.ternary sampler ~n in
  let s =
    Poly.to_ntt ctx (Poly.of_coeff_array ctx ~level:levels ~special:true s_coeffs)
  in
  let s_top = Poly.restrict ctx s ~level:levels ~special:false in
  let pa_full = Sampler.uniform_ntt sampler ctx ~level:levels ~special:false in
  let pe =
    Poly.to_ntt ctx
      (Poly.of_coeff_array ctx ~level:levels ~special:false
         (Sampler.gaussian sampler ~n ()))
  in
  let pb = Poly.add ctx (Poly.neg ctx (Poly.mul ctx pa_full s_top)) pe in
  let t =
    { ctx;
      seed;
      s;
      pb;
      pa = pa_full;
      relin = None;
      galois = Hashtbl.create 16;
      last_use = Hashtbl.create 16;
      tick = 0;
      budget = key_budget;
      resident_bytes = 0;
      peak_bytes = 0;
      gens = 0;
      evictions = 0;
      enc_sampler = Sampler.create ~seed:(seed lxor 0x5EED5) }
  in
  (* Without a budget every key is resident forever, so generate the
     relin key eagerly (keygen-time cost, like before laziness existed).
     Under a budget stay lazy: the first mul pays for it. *)
  if key_budget = None then ignore (relin_key t);
  List.iter (add_rotation t) rotations;
  t
