type switch_key = {
  kb : Poly.t array;
  ka : Poly.t array;
}

type t = {
  ctx : Context.t;
  s : Poly.t;
  pb : Poly.t;
  pa : Poly.t;
  relin : switch_key;
  galois : (int, switch_key) Hashtbl.t;
  sampler : Sampler.t;
  enc_sampler : Sampler.t;
}

let galois_element (ctx : Context.t) k =
  let nh = Context.slot_count ctx in
  let k = Fhe_util.Bits.pos_rem k nh in
  (Fftc.rot_group ctx.Context.fft).(k)

(* Key for switching [target·(something)] onto s: digit j encrypts
   e_j + P·target on residue row j. *)
let make_switch_key (ctx : Context.t) sampler ~s ~target =
  let levels = ctx.Context.levels in
  let n = ctx.Context.n in
  let kb = Array.make levels s and ka = Array.make levels s in
  for j = 0 to levels - 1 do
    let a = Sampler.uniform_ntt sampler ctx ~level:levels ~special:true in
    let e =
      Poly.to_ntt ctx
        (Poly.of_coeff_array ctx ~level:levels ~special:true
           (Sampler.gaussian sampler ~n ()))
    in
    let gadget =
      Poly.mul_scalar_fn ctx target (fun pi ->
          if pi = j then ctx.Context.special else 0)
    in
    let b =
      Poly.add ctx (Poly.add ctx (Poly.neg ctx (Poly.mul ctx a s)) e) gadget
    in
    kb.(j) <- b;
    ka.(j) <- a
  done;
  { kb; ka }

let make_galois_key t k =
  let g = galois_element t.ctx k in
  let s_g = Poly.automorphism t.ctx t.s ~g in
  make_switch_key t.ctx t.sampler ~s:t.s ~target:s_g

let add_rotation t k =
  let nh = Context.slot_count t.ctx in
  let k = Fhe_util.Bits.pos_rem k nh in
  if k <> 0 && not (Hashtbl.mem t.galois k) then
    Hashtbl.replace t.galois k (make_galois_key t k)

let keygen ?(seed = 0xC0FFEE) ?(rotations = []) ctx =
  let sampler = Sampler.create ~seed in
  let n = ctx.Context.n in
  let levels = ctx.Context.levels in
  let s_coeffs = Sampler.ternary sampler ~n in
  let s =
    Poly.to_ntt ctx (Poly.of_coeff_array ctx ~level:levels ~special:true s_coeffs)
  in
  let s_top = Poly.restrict ctx s ~level:levels ~special:false in
  let pa_full = Sampler.uniform_ntt sampler ctx ~level:levels ~special:false in
  let pe =
    Poly.to_ntt ctx
      (Poly.of_coeff_array ctx ~level:levels ~special:false
         (Sampler.gaussian sampler ~n ()))
  in
  let pb = Poly.add ctx (Poly.neg ctx (Poly.mul ctx pa_full s_top)) pe in
  let s2 = Poly.mul ctx s s in
  let relin = make_switch_key ctx sampler ~s ~target:s2 in
  let t =
    { ctx; s; pb; pa = pa_full; relin; galois = Hashtbl.create 16; sampler;
      enc_sampler = Sampler.create ~seed:(seed lxor 0x5EED5) }
  in
  List.iter (add_rotation t) rotations;
  t
