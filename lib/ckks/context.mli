(** RNS-CKKS context: the ring, the modulus chain, and all precomputed
    transform plans.

    The chain is [q_1 … q_L] (~[level_bits]-bit NTT primes, playing the
    paper's rescaling factors [R]) plus one {e special prime} [p] used
    only inside key switching (the noise of a switch is divided by [p],
    keeping relinearization/rotation noise at the fresh-noise scale). *)

type t = {
  n : int;  (** ring degree (power of two); slot count is [n/2] *)
  levels : int;  (** chain length [L] *)
  level_bits : int;  (** nominal log2 of each chain prime *)
  primes : int array;  (** [q_1 … q_L] *)
  special : int;  (** the key-switching prime [p] *)
  plans : Ntt.plan array;  (** NTT plans for [q_1 … q_L] *)
  special_plan : Ntt.plan;
  fft : Fftc.plan;
  mutable pool : Fhe_par.Pool.t option;
      (** when set, per-prime limb work fans out across these domains *)
  mutable arena : Arena.t option;
      (** when set, polynomial rows are drawn from / released to this
          freelist (driver-domain only) *)
}

val make : n:int -> levels:int -> ?level_bits:int -> unit -> t
(** Build a context ([level_bits] defaults to 28; the special prime gets
    [level_bits + 1] bits so it dominates every chain prime).
    @raise Invalid_argument for invalid sizes. *)

val plan : t -> int -> Ntt.plan
(** Plan for chain index [i] (0-based); index [levels] is the special
    prime's plan. *)

val prime : t -> int -> int
(** Prime for chain index [i]; index [levels] is the special prime. *)

val slot_count : t -> int

val set_pool : t -> Fhe_par.Pool.t option -> unit
(** Attach (or detach) a domain pool.  Subsequent RNS limb work —
    per-row NTTs, rescale rows, key-switch accumulation rows — runs on
    the pool.  Results are bit-identical to the sequential path: every
    task owns a distinct row index. *)

val set_arena : t -> Arena.t option -> unit
(** Attach (or detach) a row arena.  With an arena attached,
    [alloc_row]/[alloc_row_raw] reuse released rows instead of
    allocating, and [release_row] parks rows for reuse.  The arena is
    driver-domain-only; this is safe because all [Poly] allocation
    happens on the driving domain. *)

val alloc_row : t -> Rvec.t
(** A zero-filled length-[n] row (arena-reused when possible). *)

val alloc_row_raw : t -> Rvec.t
(** A length-[n] row with unspecified contents — overwrite fully. *)

val release_row : t -> Rvec.t -> unit
(** Return a row for reuse; no-op without an arena. *)

val par_rows : t -> int -> (int -> unit) -> unit
(** [par_rows t nrows f] runs [f 0 .. f (nrows-1)], on the attached
    pool when there is one (each call must write only row-private
    state).  Must not be nested inside another [par_rows] task. *)
