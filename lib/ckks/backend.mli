open Fhe_ir

(** Execute a scale-managed IR program on the real RNS-CKKS scheme.

    This is the end-to-end path: ciphertext inputs are encrypted at
    their assigned level and the waterline scale; every IR op maps to
    one homomorphic operation; outputs are decrypted and decoded.  The
    program must have been compiled with [rbits] equal to this context's
    [level_bits] (28-bit chains — see DESIGN.md on the 60→28-bit
    substitution) and with [n_slots = n/2].

    A [Rescale] whose only consumer is a [Modswitch] executes as the
    fused {!Evaluator.rescale_modswitch} (same results, one RNS
    division pass).  Passing [?pool] fans per-prime limb work across
    the domains; outputs are bit-identical at every width. *)

type stats = {
  keygen_ms : float;
  encrypt_ms : float;
  eval_ms : float;  (** homomorphic ops only (excludes encrypt/decrypt) *)
  decrypt_ms : float;
  output_levels : int array;
      (** ciphertext level of each program output; [-1] for plaintext
          outputs *)
}

val run :
  ?seed:int ->
  ?pool:Fhe_par.Pool.t ->
  Managed.t ->
  inputs:(string * float array) list ->
  float array array
(** Build a context/keys sized for the program, run it, and return one
    decrypted slot vector per program output.
    @raise Invalid_argument if [rbits] exceeds the backend's 28-bit
    prime budget, the slot count is no power of two ≥ 2, or an input is
    missing. *)

val run_timed :
  ?seed:int ->
  ?pool:Fhe_par.Pool.t ->
  Managed.t ->
  inputs:(string * float array) list ->
  float array array * stats
(** [run] plus wall-clock phase timings and output levels. *)

val run_with_keys :
  Keys.t -> Managed.t -> inputs:(string * float array) list ->
  float array array
(** Same, reusing existing key material (context sizes must fit). *)
