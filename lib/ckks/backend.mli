open Fhe_ir

(** Execute a scale-managed IR program on the real RNS-CKKS scheme,
    under a liveness-driven schedule with explicit memory management.

    This is the end-to-end path: ciphertext inputs are encrypted at
    their assigned level and the waterline scale; every IR op maps to
    one homomorphic operation; outputs are decrypted and decoded.  The
    program must have been compiled with [rbits] equal to this context's
    [level_bits] (28-bit chains — see DESIGN.md on the 60→28-bit
    substitution) and with [n_slots = n/2].

    A [Rescale] whose only consumer is a [Modswitch] executes as the
    fused {!Evaluator.rescale_modswitch} (same results, one RNS
    division pass).  Passing [?pool] fans per-prime limb work across
    the domains; outputs are bit-identical at every width.

    {2 Memory-scalable execution (DESIGN.md §11)}

    With [?sched] (the default), ops execute in a liveness-minimizing
    order computed by {!Fhe_sched.Schedule} (never worse than program
    order), dead ciphertexts are freed at their last use into the
    context's row arena, and — under [?mem_budget] — cold ciphertexts
    spill to disk through the checksummed {!Fhe_cache.Disk} format,
    reloading (or deterministically recomputing, if the entry is lost
    or poisoned) on demand.  [?mem_budget] also bounds resident
    switch-key bytes ({!Keys.set_budget}), with [?key_budget] taking
    precedence for keys when both are given.

    Decrypted outputs are byte-identical with scheduling on or off, at
    any pool width, under any budget: inputs encrypt from per-input
    derived randomness streams ({!Evaluator.encrypt_det}), switch keys
    regenerate from per-key derived streams, every homomorphic op is
    deterministic, and reordering respects all data dependences. *)

type mem_stats = {
  peak_ct_bytes : int;
      (** measured peak of live ciphertext bytes (physical polynomials,
          shared storage counted once) *)
  sched_ct_bytes : int;
      (** analytic peak of the executed order (2 polys/ct weights) *)
  order_ct_bytes : int;
      (** analytic peak of program order with the same free plan — the
          "before" of the scheduler's reordering win *)
  resident_ct_bytes : int;
      (** analytic total with no freeing at all: what a naive executor
          holds at the end of the program *)
  peak_key_bytes : int;  (** high-water resident switch-key bytes *)
  key_gens : int;  (** switch-key (re)generations during this run *)
  key_evictions : int;
  ct_spills : int;
  ct_reloads : int;
  ct_recomputes : int;  (** demand recomputations (lost/poisoned spills) *)
  arena_reuses : int;  (** row allocations served by the freelist *)
  reordered : bool;  (** false = the schedule is program order *)
}

type stats = {
  keygen_ms : float;
  encrypt_ms : float;
  eval_ms : float;  (** homomorphic ops only (excludes encrypt/decrypt) *)
  decrypt_ms : float;
  output_levels : int array;
      (** ciphertext level of each program output; [-1] for plaintext
          outputs *)
  mem : mem_stats;
}

val run :
  ?seed:int ->
  ?pool:Fhe_par.Pool.t ->
  ?sched:bool ->
  ?mem_budget:int ->
  ?key_budget:int ->
  ?spill_dir:string ->
  ?spill_fault:(int -> bool) ->
  Managed.t ->
  inputs:(string * float array) list ->
  float array array
(** Build a context/keys sized for the program, run it, and return one
    decrypted slot vector per program output.  [?sched] (default
    [true]) enables reordering + freeing + arena reuse; [?mem_budget]
    (bytes) enables ciphertext spilling and bounds switch-key
    residency; [?key_budget] overrides the key bound separately;
    [?spill_dir] overrides the private temp directory; [?spill_fault]
    is a test seam — ids for which it returns [true] lose their spilled
    entry and must recompute.
    @raise Invalid_argument if [rbits] exceeds the backend's 28-bit
    prime budget, the slot count is no power of two ≥ 2, or an input is
    missing. *)

val run_timed :
  ?seed:int ->
  ?pool:Fhe_par.Pool.t ->
  ?sched:bool ->
  ?mem_budget:int ->
  ?key_budget:int ->
  ?spill_dir:string ->
  ?spill_fault:(int -> bool) ->
  Managed.t ->
  inputs:(string * float array) list ->
  float array array * stats
(** [run] plus wall-clock phase timings, output levels, and memory
    accounting. *)

val run_with_keys :
  ?sched:bool ->
  ?mem_budget:int ->
  ?key_budget:int ->
  ?spill_dir:string ->
  ?spill_fault:(int -> bool) ->
  Keys.t ->
  Managed.t ->
  inputs:(string * float array) list ->
  float array array
(** Same, reusing existing key material (context sizes must fit).
    Budgets install onto the shared [Keys.t] and persist after the
    call. *)
