(** Freelist arena for ciphertext residue rows.

    All rows in a context have the same length [n], so a single
    freelist suffices: [release] returns a row to the pool and a later
    [alloc_zero]/[alloc_raw] hands it back instead of allocating fresh
    Bigarray storage. Rows of any other length are silently dropped.

    The arena is NOT thread-safe: it must only be touched from the
    driving domain. All [Poly] allocations happen on the driver (worker
    tasks only ever create scratch [Rvec]s directly), so attaching an
    arena to a [Context] is safe even with a domain pool installed. *)

type t

val create : n:int -> t
(** [create ~n] makes an empty arena for rows of length [n]. *)

val alloc_zero : t -> Rvec.t
(** A zero-filled row: reused from the freelist (and cleared) if
    available, freshly allocated otherwise. *)

val alloc_raw : t -> Rvec.t
(** A row with unspecified contents — caller must overwrite fully. *)

val release : t -> Rvec.t -> unit
(** Return a row to the freelist. The caller promises no live value
    still references it. Wrong-length rows are ignored. *)

val reuses : t -> int
(** Number of allocations served from the freelist. *)

val fresh : t -> int
(** Number of allocations that had to create new storage. *)

val available : t -> int
(** Rows currently parked in the freelist. *)
