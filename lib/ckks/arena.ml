type t = {
  n : int;
  mutable free : Rvec.t list;
  mutable n_free : int;
  mutable reuses : int;
  mutable fresh : int;
}

let create ~n = { n; free = []; n_free = 0; reuses = 0; fresh = 0 }

let take t =
  match t.free with
  | r :: tl ->
      t.free <- tl;
      t.n_free <- t.n_free - 1;
      t.reuses <- t.reuses + 1;
      Some r
  | [] -> None

let alloc_zero t =
  match take t with
  | Some r ->
      Rvec.fill r 0;
      r
  | None ->
      t.fresh <- t.fresh + 1;
      Rvec.create t.n

let alloc_raw t =
  match take t with
  | Some r -> r
  | None ->
      t.fresh <- t.fresh + 1;
      Rvec.create t.n

let release t r =
  if Rvec.length r = t.n then begin
    t.free <- r :: t.free;
    t.n_free <- t.n_free + 1
  end

let reuses t = t.reuses
let fresh t = t.fresh
let available t = t.n_free
