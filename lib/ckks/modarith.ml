let max_modulus_bits = 30

let add a b ~m =
  let s = a + b in
  if s >= m then s - m else s

let sub a b ~m =
  let d = a - b in
  if d < 0 then d + m else d

let mul a b ~m = a * b mod m

let neg a ~m = if a = 0 then 0 else m - a

let rec pow b e ~m =
  if e = 0 then 1
  else begin
    let h = pow (mul b b ~m) (e / 2) ~m in
    if e land 1 = 1 then mul b h ~m else h
  end

let inv a ~m =
  if a = 0 then invalid_arg "Modarith.inv: zero";
  pow a (m - 2) ~m

let center a ~m = if a > m / 2 then a - m else a

(* --- Shoup multiplication ---------------------------------------------
   For a multiplicand [w] reused across a whole loop (twiddle factor,
   scalar), precompute [wp = floor (w * 2^31 / m)].  Then for any
   [a < 2^31] a single high-multiply replaces the division:

     q = (a * wp) >> 31        — q <= a*w/m, off by < 1 + a/2^31
     r = a*w - q*m             — r in [0, 2m)

   All intermediates stay below 2^62 because m < 2^30 forces both
   [wp < 2^31] and [a*w < 2^61], so nothing overflows 63-bit ints. *)

let shoup_shift = 31

let shoup w ~m = (w lsl shoup_shift) / m

let[@inline] mul_shoup_lazy a w wp ~m =
  let q = (a * wp) lsr shoup_shift in
  (a * w) - (q * m)

let[@inline] mul_shoup a w wp ~m =
  let r = mul_shoup_lazy a w wp ~m in
  if r >= m then r - m else r

(* --- Barrett reduction -------------------------------------------------
   Division-free reduction of a full product [x = a*b < m^2] for a
   modulus not known in advance of the loop.  With [k = bits m] and
   [mu = floor (2^2k / m)]:

     q = ((x >> (k-1)) * mu) >> (k+1)

   underestimates floor (x/m) by at most 2 (HAC 14.42), so two
   conditional subtractions canonicalize.  [x >> (k-1) < 2^(k+1)] and
   [mu < 2^(k+1)] keep the product below 2^62 for k <= 30. *)

module Barrett = struct
  type t = { p : int; mu : int; s1 : int; s2 : int }

  let bits m =
    let rec go acc m = if m = 0 then acc else go (acc + 1) (m lsr 1) in
    go 0 m

  let make p =
    if p < 2 || p >= 1 lsl max_modulus_bits then
      invalid_arg "Modarith.Barrett.make: modulus out of range";
    let k = bits p in
    { p; mu = (1 lsl (2 * k)) / p; s1 = k - 1; s2 = k + 1 }

  let modulus t = t.p

  let[@inline] reduce t x =
    let q = ((x lsr t.s1) * t.mu) lsr t.s2 in
    let r = x - (q * t.p) in
    let r = if r >= t.p then r - t.p else r in
    if r >= t.p then r - t.p else r

  let[@inline] mul t a b = reduce t (a * b)
end
