(** Key material: secret/public keys, relinearization and Galois
    (rotation) switch keys — generated lazily, evicted under a byte
    budget, regenerated deterministically.

    Switch keys use the RNS per-prime decomposition with a special
    modulus: the key for digit [j] encrypts [P·target] on residue row
    [j] only, so [Σ_j \[x\]_{q_j} · ksk_j ≡ P·x·target (mod Q_l·P)] at
    {e any} level [l] — one key set serves the whole modulus chain.

    Every switch key draws its randomness from a private stream derived
    from [(keygen seed, key identity)] — never from a shared sampler —
    so the bytes of a key are independent of the order keys are
    requested in, and an evicted key regenerates byte-identically on
    the next miss. That is the determinism contract the `@mem` tier
    pins. *)

type switch_key = {
  kb : Poly.t array;  (** per digit: b_j = −a_j·s + e_j + P·target (row j) *)
  ka : Poly.t array;
}

type mem = {
  resident_bytes : int;  (** switch-key bytes currently resident *)
  peak_bytes : int;  (** high-water mark of [resident_bytes] *)
  gens : int;  (** switch-key generations (incl. regenerations) *)
  evictions : int;
}

type t = {
  ctx : Context.t;
  seed : int;  (** keygen seed: root of every derived stream *)
  s : Poly.t;  (** secret key, full basis, NTT *)
  pb : Poly.t;  (** public key b = −a·s + e (top level, no special) *)
  pa : Poly.t;
  mutable relin : switch_key option;
      (** switches s² → s; [None] when not yet generated or evicted —
          use {!relin_key}, not this field *)
  galois : (int, switch_key) Hashtbl.t;
      (** resident rotation keys per (normalized, nonzero) step — use
          {!galois_key} to read through the LRU/eviction machinery *)
  last_use : (int, int) Hashtbl.t;  (** LRU ticks; relin is tag 0 *)
  mutable tick : int;
  mutable budget : int option;  (** byte budget; [None] = unlimited *)
  mutable resident_bytes : int;
  mutable peak_bytes : int;
  mutable gens : int;
  mutable evictions : int;
  enc_sampler : Sampler.t;
      (** ad-hoc encryption randomness: its own stream, derived from the
          keygen seed, so whole runs are reproducible while successive
          encryptions still draw fresh randomness.  Order-dependent —
          the scheduler uses {!derived_enc_seed} streams instead. *)
}

val keygen : ?seed:int -> ?rotations:int list -> ?key_budget:int -> Context.t -> t
(** Generate the secret/public key pair; [rotations] lists slot-rotation
    amounts to pre-generate Galois keys for.  Without [key_budget] the
    relin key is generated eagerly and nothing is ever evicted; with it,
    all switch keys are lazy and the least-recently-used one is evicted
    whenever resident switch-key bytes would exceed the budget.  A
    budget smaller than one key overshoots rather than fails. *)

val relin_key : t -> switch_key
(** The relinearization key, generating (or regenerating) it on a miss. *)

val galois_key : t -> int -> switch_key
(** [galois_key t k]: the rotation key for step [k] (normalized mod
    slot count), generating it on a miss.
    @raise Invalid_argument when the normalized step is 0. *)

val add_rotation : t -> int -> unit
(** Ensure the Galois key for one more rotation amount is resident
    (idempotent; no-op for step 0). *)

val set_budget : t -> int option -> unit
(** Install or clear the switch-key byte budget (takes effect at the
    next generation; resident keys are not evicted immediately). *)

val mem : t -> mem
(** Byte/eviction counters (cumulative over the lifetime of [t]). *)

val switch_key_bytes : Context.t -> int
(** Size of one switch key in this context. *)

val derived_enc_seed : t -> int -> int
(** Seed of the deterministic encryption stream for input tag [n]:
    depends only on [(keygen seed, n)], so encryptions commute. *)

val galois_element : Context.t -> int -> int
(** The ring automorphism exponent [5^k mod 2n] implementing a left
    rotation by [k] slots. *)
