(** Key material: secret/public keys, relinearization and Galois
    (rotation) switch keys.

    Switch keys use the RNS per-prime decomposition with a special
    modulus: the key for digit [j] encrypts [P·target] on residue row
    [j] only, so [Σ_j \[x\]_{q_j} · ksk_j ≡ P·x·target (mod Q_l·P)] at
    {e any} level [l] — one key set serves the whole modulus chain. *)

type switch_key = {
  kb : Poly.t array;  (** per digit: b_j = −a_j·s + e_j + P·target (row j) *)
  ka : Poly.t array;
}

type t = {
  ctx : Context.t;
  s : Poly.t;  (** secret key, full basis, NTT *)
  pb : Poly.t;  (** public key b = −a·s + e (top level, no special) *)
  pa : Poly.t;
  relin : switch_key;  (** switches s² → s *)
  galois : (int, switch_key) Hashtbl.t;  (** per rotation step k *)
  sampler : Sampler.t;  (** for lazily generated Galois keys *)
  enc_sampler : Sampler.t;
      (** encryption randomness: its own stream, derived from the keygen
          seed, so whole runs are reproducible while successive
          encryptions still draw fresh randomness *)
}

val keygen : ?seed:int -> ?rotations:int list -> Context.t -> t
(** Generate all key material; [rotations] lists the slot-rotation
    amounts that will be used (Galois keys are per-amount). *)

val add_rotation : t -> int -> unit
(** Generate (idempotently) the Galois key for one more rotation
    amount. *)

val galois_element : Context.t -> int -> int
(** The ring automorphism exponent [5^k mod 2n] implementing a left
    rotation by [k] slots. *)
