type t = {
  level : int;
  special : bool;
  ntt : bool;
  data : Rvec.t array;
}

let rows t = t.level + if t.special then 1 else 0

(* basis-prime index of row r: 0..level-1 are chain primes, the special
   row maps to Context index [levels] *)
let prime_index (ctx : Context.t) t r =
  if r < t.level then r
  else begin
    assert t.special;
    ctx.Context.levels
  end

let zero (ctx : Context.t) ~level ~special ~ntt =
  let nrows = level + if special then 1 else 0 in
  { level; special; ntt;
    data = Array.init nrows (fun _ -> Context.alloc_row ctx) }

let copy t = { t with data = Array.map Rvec.copy t.data }

(* Arena-aware copy: rows come from the context's freelist when one is
   attached.  Driver-domain only (like all Poly allocation). *)
let copy_into (ctx : Context.t) t =
  { t with
    data =
      Array.map
        (fun r ->
          let o = Context.alloc_row_raw ctx in
          Rvec.blit r o;
          o)
        t.data }

let release (ctx : Context.t) t =
  Array.iter (Context.release_row ctx) t.data

let of_coeff_array (ctx : Context.t) ~level ~special coeffs =
  assert (Array.length coeffs = ctx.Context.n);
  let t = zero ctx ~level ~special ~ntt:false in
  for r = 0 to rows t - 1 do
    let q = Context.prime ctx (prime_index ctx t r) in
    let row = t.data.(r) in
    for j = 0 to ctx.Context.n - 1 do
      Rvec.set row j (Fhe_util.Bits.pos_rem coeffs.(j) q)
    done
  done;
  t

let to_ntt (ctx : Context.t) t =
  if t.ntt then t
  else begin
    let t' = copy_into ctx t in
    Context.par_rows ctx (rows t) (fun r ->
        Ntt.forward (Context.plan ctx (prime_index ctx t r)) t'.data.(r));
    { t' with ntt = true }
  end

let of_ntt (ctx : Context.t) t =
  if not t.ntt then t
  else begin
    let t' = copy_into ctx t in
    Context.par_rows ctx (rows t) (fun r ->
        Ntt.inverse (Context.plan ctx (prime_index ctx t r)) t'.data.(r));
    { t' with ntt = false }
  end

let check_compat a b =
  if a.level <> b.level || a.special <> b.special || a.ntt <> b.ntt then
    invalid_arg "Poly: basis/form mismatch"

let add (ctx : Context.t) a b =
  check_compat a b;
  let out = zero ctx ~level:a.level ~special:a.special ~ntt:a.ntt in
  let n = ctx.Context.n in
  for r = 0 to rows a - 1 do
    let q = Context.prime ctx (prime_index ctx a r) in
    let ra = a.data.(r) and rb = b.data.(r) and ro = out.data.(r) in
    for j = 0 to n - 1 do
      let s = Rvec.get ra j + Rvec.get rb j in
      Rvec.set ro j (if s >= q then s - q else s)
    done
  done;
  out

let sub (ctx : Context.t) a b =
  check_compat a b;
  let out = zero ctx ~level:a.level ~special:a.special ~ntt:a.ntt in
  let n = ctx.Context.n in
  for r = 0 to rows a - 1 do
    let q = Context.prime ctx (prime_index ctx a r) in
    let ra = a.data.(r) and rb = b.data.(r) and ro = out.data.(r) in
    for j = 0 to n - 1 do
      let d = Rvec.get ra j - Rvec.get rb j in
      Rvec.set ro j (if d < 0 then d + q else d)
    done
  done;
  out

let mul (ctx : Context.t) a b =
  if not (a.ntt && b.ntt) then invalid_arg "Poly.mul: operands must be NTT";
  check_compat a b;
  let out = zero ctx ~level:a.level ~special:a.special ~ntt:true in
  let n = ctx.Context.n in
  for r = 0 to rows a - 1 do
    let br = Ntt.barrett (Context.plan ctx (prime_index ctx a r)) in
    let ra = a.data.(r) and rb = b.data.(r) and ro = out.data.(r) in
    for j = 0 to n - 1 do
      Rvec.set ro j (Modarith.Barrett.mul br (Rvec.get ra j) (Rvec.get rb j))
    done
  done;
  out

let neg (ctx : Context.t) a =
  let out = zero ctx ~level:a.level ~special:a.special ~ntt:a.ntt in
  let n = ctx.Context.n in
  for r = 0 to rows a - 1 do
    let q = Context.prime ctx (prime_index ctx a r) in
    let ra = a.data.(r) and ro = out.data.(r) in
    for j = 0 to n - 1 do
      let x = Rvec.get ra j in
      Rvec.set ro j (if x = 0 then 0 else q - x)
    done
  done;
  out

let mul_scalar_fn (ctx : Context.t) a scalar_of =
  let out = zero ctx ~level:a.level ~special:a.special ~ntt:a.ntt in
  let n = ctx.Context.n in
  for r = 0 to rows a - 1 do
    let pi = prime_index ctx a r in
    let q = Context.prime ctx pi in
    let s = Fhe_util.Bits.pos_rem (scalar_of pi) q in
    let sp = Modarith.shoup s ~m:q in
    let ra = a.data.(r) and ro = out.data.(r) in
    for j = 0 to n - 1 do
      Rvec.set ro j (Modarith.mul_shoup (Rvec.get ra j) s sp ~m:q)
    done
  done;
  out

let drop_last ?keep (ctx : Context.t) t =
  if not t.ntt then invalid_arg "Poly.drop_last: expected NTT form";
  let n = ctx.Context.n in
  let last_row = rows t - 1 in
  let last_pi = prime_index ctx t last_row in
  let q_last = Context.prime ctx last_pi in
  (* bring the dropped component to coefficient form *)
  let dropped = Rvec.copy t.data.(last_row) in
  Ntt.inverse (Context.plan ctx last_pi) dropped;
  let full_level = if t.special then t.level else t.level - 1 in
  let out_level =
    match keep with
    | None -> full_level
    | Some l ->
        if l < 1 || l > full_level then
          invalid_arg "Poly.drop_last: keep out of range";
        l
  in
  let out = zero ctx ~level:out_level ~special:false ~ntt:true in
  Context.par_rows ctx out_level (fun r ->
      let pi = prime_index ctx out r in
      let q = Context.prime ctx pi in
      let inv_last = Modarith.inv (q_last mod q) ~m:q in
      let il_sh = Modarith.shoup inv_last ~m:q in
      (* centered lift of the dropped component, reduced mod q, in NTT *)
      let lifted = Rvec.create n in
      for j = 0 to n - 1 do
        Rvec.set lifted j
          (Fhe_util.Bits.pos_rem (Modarith.center (Rvec.get dropped j) ~m:q_last) q)
      done;
      Ntt.forward (Context.plan ctx pi) lifted;
      let src = t.data.(r) and dst = out.data.(r) in
      for j = 0 to n - 1 do
        let d = Rvec.get src j - Rvec.get lifted j in
        let d = if d < 0 then d + q else d in
        Rvec.set dst j (Modarith.mul_shoup d inv_last il_sh ~m:q)
      done);
  out

let automorphism (ctx : Context.t) t ~g =
  let n = ctx.Context.n in
  if g land 1 = 0 then invalid_arg "Poly.automorphism: g must be odd";
  let was_ntt = t.ntt in
  let t = of_ntt ctx t in
  let out = zero ctx ~level:t.level ~special:t.special ~ntt:false in
  for r = 0 to rows t - 1 do
    let q = Context.prime ctx (prime_index ctx t r) in
    let src = t.data.(r) and dst = out.data.(r) in
    for j = 0 to n - 1 do
      let k = j * g mod (2 * n) in
      let x = Rvec.get src j in
      if k < n then Rvec.set dst k x
      else Rvec.set dst (k - n) (if x = 0 then 0 else q - x)
    done
  done;
  if was_ntt then to_ntt ctx out else out

let equal_basis a b = a.level = b.level && a.special = b.special

let restrict (ctx : Context.t) t ~level ~special =
  if level > t.level || (special && not t.special) then
    invalid_arg "Poly.restrict: cannot grow a basis";
  let copy_row r =
    let o = Context.alloc_row_raw ctx in
    Rvec.blit r o;
    o
  in
  let keep =
    Array.init (level + if special then 1 else 0) (fun r ->
        if r < level then copy_row t.data.(r)
        else copy_row t.data.(rows t - 1))
  in
  { level; special; ntt = t.ntt; data = keep }
