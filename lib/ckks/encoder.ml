let encode (ctx : Context.t) ~level ~scale values =
  let nh = Context.slot_count ctx in
  if Array.length values > nh then invalid_arg "Encoder.encode: too many values";
  let vals =
    Array.init nh (fun i ->
        { Complex.re = (if i < Array.length values then values.(i) else 0.0);
          im = 0.0 })
  in
  Fftc.embed_inv ctx.Context.fft vals;
  (* coefficients as nearest-integer floats (exact for |x| < 2^53);
     Float.rem of an exact float is exact, so every residue row sees the
     same integer *)
  let n = ctx.Context.n in
  let coeff = Array.make n 0.0 in
  for i = 0 to nh - 1 do
    coeff.(i) <- Float.round (vals.(i).Complex.re *. scale);
    coeff.(i + nh) <- Float.round (vals.(i).Complex.im *. scale)
  done;
  let out = Poly.zero ctx ~level ~special:false ~ntt:false in
  for r = 0 to level - 1 do
    let q = Context.prime ctx r in
    let qf = float_of_int q in
    let row = out.Poly.data.(r) in
    for j = 0 to n - 1 do
      let v = Float.rem coeff.(j) qf in
      let v = if v < 0.0 then v +. qf else v in
      Rvec.set row j (int_of_float v)
    done
  done;
  Poly.to_ntt ctx out

let decode (ctx : Context.t) ~scale p =
  let p = Poly.of_ntt ctx p in
  let level = p.Poly.level in
  let primes = Array.to_list (Array.sub ctx.Context.primes 0 level) in
  let q_total = Bigint.product primes in
  let half, _ = Bigint.divmod_small q_total 2 in
  (* Garner-free CRT: x = sum_i a_i * (Q/q_i) with a_i = x_i * (Q/q_i)^-1
     mod q_i, reduced mod Q, then centered. *)
  let q_hats =
    List.mapi
      (fun i q ->
        let hat, r = Bigint.divmod_small q_total q in
        assert (r = 0);
        (* (Q/q_i) mod q_i by folding limb-wise *)
        let _, hat_mod = Bigint.divmod_small hat q in
        let hat_inv = Modarith.inv hat_mod ~m:q in
        (i, q, hat, hat_inv))
      primes
  in
  let n = ctx.Context.n in
  let nh = Context.slot_count ctx in
  let vals = Array.make nh Complex.zero in
  let coeff = Array.make n 0.0 in
  for j = 0 to n - 1 do
    let acc =
      List.fold_left
        (fun acc (i, q, hat, hat_inv) ->
          let a = Modarith.mul (Rvec.get p.Poly.data.(i) j) hat_inv ~m:q in
          Bigint.add acc (Bigint.mul_small hat a))
        Bigint.zero q_hats
    in
    (* reduce mod Q (acc < level * Q) then center *)
    let rec reduce acc =
      if Bigint.compare acc q_total >= 0 then reduce (Bigint.sub acc q_total)
      else acc
    in
    let acc = reduce acc in
    let centered =
      if Bigint.compare acc half > 0 then
        -.Bigint.to_float (Bigint.sub q_total acc)
      else Bigint.to_float acc
    in
    coeff.(j) <- centered /. scale
  done;
  for i = 0 to nh - 1 do
    vals.(i) <- { Complex.re = coeff.(i); im = coeff.(i + nh) }
  done;
  Fftc.embed ctx.Context.fft vals;
  Array.map (fun c -> c.Complex.re) vals
