type t = {
  n : int;
  levels : int;
  level_bits : int;
  primes : int array;
  special : int;
  plans : Ntt.plan array;
  special_plan : Ntt.plan;
  fft : Fftc.plan;
  mutable pool : Fhe_par.Pool.t option;
  mutable arena : Arena.t option;
}

let make ~n ~levels ?(level_bits = 28) () =
  if n < 4 || n land (n - 1) <> 0 then
    invalid_arg "Context.make: n must be a power of two >= 4";
  if levels < 1 then invalid_arg "Context.make: need at least one level";
  if level_bits < 16 || level_bits > 28 then
    invalid_arg "Context.make: level_bits must be in 16..28";
  let primes =
    Array.of_list (Primes.ntt_prime_chain ~n ~bits:level_bits ~count:levels)
  in
  let special =
    (* one extra bit: the special prime must dominate the chain primes *)
    List.hd (Primes.ntt_prime_chain ~n ~bits:(level_bits + 1) ~count:1)
  in
  { n;
    levels;
    level_bits;
    primes;
    special;
    plans = Array.map (fun p -> Ntt.make_plan ~n ~p) primes;
    special_plan = Ntt.make_plan ~n ~p:special;
    fft = Fftc.make_plan ~n;
    pool = None;
    arena = None }

let plan t i = if i = t.levels then t.special_plan else t.plans.(i)

let prime t i = if i = t.levels then t.special else t.primes.(i)

let slot_count t = t.n / 2

let set_pool t pool = t.pool <- pool

let set_arena t arena = t.arena <- arena

(* Row allocation goes through the arena when one is attached.  Only
   ever called from the driving domain (worker tasks allocate scratch
   rows with Rvec.create directly). *)
let alloc_row t =
  match t.arena with Some a -> Arena.alloc_zero a | None -> Rvec.create t.n

let alloc_row_raw t =
  match t.arena with Some a -> Arena.alloc_raw a | None -> Rvec.create t.n

let release_row t r =
  match t.arena with Some a -> Arena.release a r | None -> ()

(* Fan per-prime row work across the pool when one is attached.  Each
   task writes only its own row, and rows are dense 0..nrows-1, so the
   result is identical to the sequential loop regardless of width. *)
let par_rows t nrows f =
  match t.pool with
  | Some pool when nrows > 1 && Fhe_par.Pool.domains pool > 1 ->
      Fhe_par.Pool.iter pool f (List.init nrows (fun r -> r))
  | _ -> for r = 0 to nrows - 1 do f r done
