(** Negacyclic number-theoretic transform over [Z_p\[X\]/(X^n + 1)].

    Standard ψ-twisted radix-2 NTT (Cooley–Tukey decimation-in-time
    forward, Gentleman–Sande inverse) with ψ a primitive 2n-th root of
    unity, so pointwise products in the transform domain implement
    negacyclic convolution directly.

    Two implementations share one plan: the optimized in-place kernels
    on {!Rvec.t} storage (Shoup twiddle multiplies, lazy [< 2p]
    butterflies, canonical [[0, p)] outputs) and the original scalar
    code retained as {!Reference} — the test tier pins them bit-exact
    against each other. *)

type plan

val make_plan : n:int -> p:int -> plan
(** Precompute twiddle tables (and their Shoup/Barrett companions) for
    size [n] (a power of two) modulo the NTT-friendly prime
    [p ≡ 1 (mod 2n)]. *)

val modulus : plan -> int

val size : plan -> int

val barrett : plan -> Modarith.Barrett.t
(** The plan's precomputed Barrett constants, for pointwise products
    modulo the same prime. *)

val forward : plan -> Rvec.t -> unit
(** In-place forward transform (coefficient → evaluation order).
    Inputs must be canonical residues; outputs are canonical. *)

val inverse : plan -> Rvec.t -> unit
(** In-place inverse transform; [inverse plan (forward plan a)] is the
    identity. *)

val bit_reverse : int -> int -> int

(** The pre-optimization scalar transforms on plain [int array]s —
    the bit-exact oracle for the optimized kernels. *)
module Reference : sig
  val forward : plan -> int array -> unit

  val inverse : plan -> int array -> unit
end
