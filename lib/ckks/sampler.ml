type t = Fhe_util.Prng.t

let create ~seed = Fhe_util.Prng.create seed

let ternary g ~n = Array.init n (fun _ -> Fhe_util.Prng.int g 3 - 1)

let gaussian g ~n ?(sigma = 3.2) () =
  Array.init n (fun _ ->
      int_of_float (Float.round (sigma *. Fhe_util.Prng.gaussian g)))

let uniform_ntt g (ctx : Context.t) ~level ~special =
  let p = Poly.zero ctx ~level ~special ~ntt:true in
  Array.iteri
    (fun r row ->
      let q =
        Context.prime ctx (if r < level then r else ctx.Context.levels)
      in
      for j = 0 to ctx.Context.n - 1 do
        Rvec.set row j (Fhe_util.Prng.int g q)
      done)
    p.Poly.data;
  p
