open Fhe_ir

type mem_stats = {
  peak_ct_bytes : int;
  sched_ct_bytes : int;
  order_ct_bytes : int;
  resident_ct_bytes : int;
  peak_key_bytes : int;
  key_gens : int;
  key_evictions : int;
  ct_spills : int;
  ct_reloads : int;
  ct_recomputes : int;
  arena_reuses : int;
  reordered : bool;
}

type stats = {
  keygen_ms : float;
  encrypt_ms : float;
  eval_ms : float;
  decrypt_ms : float;
  output_levels : int array;
  mem : mem_stats;
}

let pad n a =
  let out = Array.make n 0.0 in
  Array.blit a 0 out 0 (min n (Array.length a));
  out

let rotl a k =
  let n = Array.length a in
  Array.init n (fun i -> a.((i + k) mod n))

(* Fusion plan for the Modswitch∘Rescale peephole: a Rescale consumed
   exactly once, by a Modswitch, and not itself an output, is deferred —
   its consumer executes the fused [Evaluator.rescale_modswitch] on the
   pre-rescale ciphertext and the intermediate basis never exists. *)
let deferred_rescales (p : Program.t) =
  let n = Program.n_ops p in
  let uses = Array.make n 0 in
  let bump o = uses.(o) <- uses.(o) + 1 in
  Program.iteri
    (fun _ k ->
      match k with
      | Op.Add (a, b) | Op.Sub (a, b) | Op.Mul (a, b) -> bump a; bump b
      | Op.Neg a | Op.Rotate (a, _) | Op.Rescale a | Op.Modswitch a
      | Op.Upscale (a, _) -> bump a
      | Op.Input _ | Op.Const _ | Op.Vconst _ -> ())
    p;
  Array.iter bump (Program.outputs p);
  let is_rescale = Array.make n false in
  Program.iteri
    (fun i k -> match k with Op.Rescale _ -> is_rescale.(i) <- true | _ -> ())
    p;
  let deferred = Array.make n false in
  Program.iteri
    (fun _ k ->
      match k with
      | Op.Modswitch a when is_rescale.(a) && uses.(a) = 1 ->
          deferred.(a) <- true
      | _ -> ())
    p;
  deferred

(* Storage roots: an op whose result physically IS its operand's value
   (deferred rescale, plaintext scale bookkeeping, rotation by zero)
   maps to the operand's root.  Liveness, freeing, spilling, and slot
   storage all happen on roots. *)
let storage_roots (p : Program.t) deferred =
  let n = Program.n_ops p in
  let nh = Program.n_slots p in
  let root = Array.init n (fun i -> i) in
  Program.iteri
    (fun i k ->
      let alias a = root.(i) <- root.(a) in
      let is_c o = Program.vtype p o = Op.Cipher in
      match k with
      | Op.Rescale a -> if (not (is_c a)) || deferred.(i) then alias a
      | Op.Modswitch a | Op.Upscale (a, _) -> if not (is_c a) then alias a
      | Op.Rotate (a, s) ->
          if is_c a && Fhe_util.Bits.pos_rem s nh = 0 then alias a
      | _ -> ())
    p;
  root

(* Unique token for this process, used to key spill entries so runs
   sharing a spill directory (even across processes) cannot read each
   other's ciphertexts.  The marker file is removed when the run ends. *)
let fresh_nonce () =
  let marker = Filename.temp_file "fhe-spill" ".nonce" in
  (marker, Filename.basename marker)

let run_counter = ref 0

(* Per-value storage state.  Only storage roots (and plains) occupy a
   slot; alias ids read through their root. *)
type slot =
  | Unset
  | Ct of Evaluator.ct
  | Pl of float array
  | SpilledSlot  (** released from memory, verified copy on disk *)
  | FreedSlot  (** dead (or lost spill) — recompute on demand *)

let exec ?(sched = true) ?mem_budget ?key_budget ?spill_dir ?spill_fault
    (keys : Keys.t) (m : Managed.t) ~inputs =
  let ctx = keys.Keys.ctx in
  let p = m.Managed.prog in
  let nh = Context.slot_count ctx in
  if Program.n_slots p <> nh then
    invalid_arg "Backend.run: program slot count must equal n/2";
  if m.Managed.rbits <> ctx.Context.level_bits then
    invalid_arg "Backend.run: program rbits must match context level_bits";
  let n = Program.n_ops p in
  let nbytes = 8 * ctx.Context.n in
  let deferred = deferred_rescales p in
  let root = storage_roots p deferred in
  (match key_budget, mem_budget with
  | Some b, _ | None, Some b -> Keys.set_budget keys (Some b)
  | None, None -> ());
  (if sched then
     match ctx.Context.arena with
     | None -> Context.set_arena ctx (Some (Arena.create ~n:ctx.Context.n))
     | Some _ -> ());
  let arena_reuses0 =
    match ctx.Context.arena with Some a -> Arena.reuses a | None -> 0
  in
  let keys_mem0 = Keys.mem keys in

  (* ---- schedule ---- *)
  let weight i =
    if root.(i) = i && Program.vtype p i = Op.Cipher then
      2 * m.Managed.level.(i) * nbytes
    else 0
  in
  let plan =
    Fhe_sched.Schedule.plan ~reorder:sched ~n
      ~deps:(fun i -> Op.operands (Program.kind p i))
      ~root:(fun i -> root.(i))
      ~weight ~outputs:(Program.outputs p) ()
  in

  (* ---- spill environment (only with a budget, under scheduling) ---- *)
  let spilling = sched && mem_budget <> None in
  let marker, nonce = if spilling then fresh_nonce () else ("", "") in
  incr run_counter;
  let dir =
    match spill_dir with
    | Some d -> d
    | None -> marker ^ Printf.sprintf ".%d.d" !run_counter
  in
  let own_dir = spill_dir = None in

  (* ---- slots and byte accounting ---- *)
  let slots : slot array = Array.make n Unset in
  let live_list = ref [] in
  let live_bytes = ref 0 and peak_live = ref 0 in
  let spills = ref 0 and reloads = ref 0 and recomputes = ref 0 in
  let spilled_ever = ref [] in
  let no_spill = Hashtbl.create 8 in
  let poly_bytes (pl : Poly.t) = Poly.rows pl * nbytes in
  (* Whether [pl] is also referenced by another live ciphertext
     (add_plain/sub_plain share the untouched c1 record), in which case
     it must be neither double-counted nor released. *)
  let shares_poly pl exclude =
    List.exists
      (fun r ->
        r <> exclude
        &&
        match slots.(r) with
        | Ct c -> c.Evaluator.c0 == pl || c.Evaluator.c1 == pl
        | _ -> false)
      !live_list
  in
  let install r ct =
    slots.(r) <- Ct ct;
    live_list := r :: !live_list;
    let add pl =
      if not (shares_poly pl r) then live_bytes := !live_bytes + poly_bytes pl
    in
    add ct.Evaluator.c0;
    if ct.Evaluator.c1 != ct.Evaluator.c0 then add ct.Evaluator.c1;
    if !live_bytes > !peak_live then peak_live := !live_bytes
  in
  let release_ct r =
    match slots.(r) with
    | Ct ct ->
        live_list := List.filter (fun x -> x <> r) !live_list;
        let drop pl =
          if not (shares_poly pl r) then begin
            live_bytes := !live_bytes - poly_bytes pl;
            if sched then Poly.release ctx pl
          end
        in
        drop ct.Evaluator.c0;
        if ct.Evaluator.c1 != ct.Evaluator.c0 then drop ct.Evaluator.c1
    | _ -> ()
  in

  (* ---- next scheduled use (for spill victim choice) ---- *)
  let pos_of = Array.make n 0 in
  Array.iteri (fun pos i -> pos_of.(i) <- pos) plan.Fhe_sched.Schedule.order;
  let use_pos : int list array = Array.make n [] in
  (if spilling then begin
     Program.iteri
       (fun j k ->
         List.iter
           (fun o -> use_pos.(root.(o)) <- pos_of.(j) :: use_pos.(root.(o)))
           (Op.operands k))
       p;
     Array.iter
       (fun o -> use_pos.(root.(o)) <- max_int :: use_pos.(root.(o)))
       (Program.outputs p);
     Array.iteri (fun r l -> use_pos.(r) <- List.sort compare l) use_pos
   end);
  let next_use r pos =
    let rec drop = function
      | u :: tl when u <= pos ->
          use_pos.(r) <- tl;
          drop tl
      | l -> ( match l with [] -> max_int | u :: _ -> u)
    in
    drop use_pos.(r)
  in

  let find name =
    match List.assoc_opt name inputs with
    | Some v -> pad nh v
    | None -> invalid_arg (Printf.sprintf "Backend: missing input %S" name)
  in
  let pow2 b = Fhe_util.Bits.pow2f b in
  let encrypt_ms = ref 0.0 in

  let plain i =
    match slots.(root.(i)) with
    | Pl v -> v
    | _ -> invalid_arg "Backend: not plain"
  in

  (* ---- op evaluation, with demand-driven reload/recompute ---- *)
  let rec force_ct i : Evaluator.ct =
    let r = root.(i) in
    match slots.(r) with
    | Ct ct -> ct
    | Pl _ | Unset -> invalid_arg "Backend: not cipher"
    | SpilledSlot -> (
        let faulted = match spill_fault with Some f -> f r | None -> false in
        let reloaded = if faulted then None else Ctstore.load ctx ~dir ~nonce ~id:r in
        match reloaded with
        | Some ct ->
            incr reloads;
            install r ct;
            ct
        | None -> recompute r)
    | FreedSlot -> recompute r
  and recompute r =
    incr recomputes;
    let opnds = Op.operands (Program.kind p r) in
    (* Operand roots that are currently dead get transiently
       resurrected by the recursive force; re-free them afterwards so
       recomputation does not change what stays resident. *)
    let dead_before =
      List.sort_uniq compare
        (List.filter_map
           (fun o ->
             match slots.(root.(o)) with
             | FreedSlot -> Some root.(o)
             | _ -> None)
           opnds)
    in
    let ct = compute_ct r (Program.kind p r) in
    install r ct;
    List.iter
      (fun ro ->
        release_ct ro;
        slots.(ro) <- FreedSlot)
      dead_before;
    ct
  and compute_ct i k : Evaluator.ct =
    let is_c o = Program.vtype p o = Op.Cipher in
    match k with
    | Op.Input { name; vt = Op.Cipher } ->
        let ct, ms =
          Fhe_util.Timer.time (fun () ->
              Evaluator.encrypt_det keys ~tag:i ~level:m.Managed.level.(i)
                ~scale:(pow2 m.Managed.scale.(i))
                (find name))
        in
        encrypt_ms := !encrypt_ms +. ms;
        ct
    | Op.Add (a, b) -> (
        match (is_c a, is_c b) with
        | true, true -> Evaluator.add keys (force_ct a) (force_ct b)
        | true, false -> Evaluator.add_plain keys (force_ct a) (plain b)
        | false, true -> Evaluator.add_plain keys (force_ct b) (plain a)
        | false, false -> invalid_arg "Backend: plain op in compute_ct")
    | Op.Sub (a, b) -> (
        match (is_c a, is_c b) with
        | true, true -> Evaluator.sub keys (force_ct a) (force_ct b)
        | true, false -> Evaluator.sub_plain keys (force_ct a) (plain b)
        | false, true ->
            Evaluator.neg keys (Evaluator.sub_plain keys (force_ct b) (plain a))
        | false, false -> invalid_arg "Backend: plain op in compute_ct")
    | Op.Mul (a, b) -> (
        match (is_c a, is_c b) with
        | true, true -> Evaluator.mul keys (force_ct a) (force_ct b)
        | true, false ->
            Evaluator.mul_plain keys (force_ct a)
              ~scale:(pow2 m.Managed.scale.(b))
              (plain b)
        | false, true ->
            Evaluator.mul_plain keys (force_ct b)
              ~scale:(pow2 m.Managed.scale.(a))
              (plain a)
        | false, false -> invalid_arg "Backend: plain op in compute_ct")
    | Op.Neg a -> Evaluator.neg keys (force_ct a)
    | Op.Rotate (a, steps) -> Evaluator.rotate keys (force_ct a) steps
    | Op.Rescale a -> Evaluator.rescale keys (force_ct a)
    | Op.Modswitch a ->
        if deferred.(a) then begin
          let ct = force_ct a in
          if ct.Evaluator.level > 2 then Evaluator.rescale_modswitch keys ct
          else Evaluator.modswitch keys (Evaluator.rescale keys ct)
        end
        else Evaluator.modswitch keys (force_ct a)
    | Op.Upscale (a, bits) -> Evaluator.upscale keys (force_ct a) bits
    | Op.Input { vt = Op.Plain; _ } | Op.Const _ | Op.Vconst _ ->
        invalid_arg "Backend: plain op in compute_ct"
  in
  let compute_plain i k =
    match k with
    | Op.Input { name; _ } -> find name
    | Op.Const c -> Array.make nh c
    | Op.Vconst { values; _ } -> pad nh values
    | Op.Add (a, b) -> Array.init nh (fun j -> (plain a).(j) +. (plain b).(j))
    | Op.Sub (a, b) -> Array.init nh (fun j -> (plain a).(j) -. (plain b).(j))
    | Op.Mul (a, b) -> Array.init nh (fun j -> (plain a).(j) *. (plain b).(j))
    | Op.Neg a -> Array.map (fun x -> -.x) (plain a)
    | Op.Rotate (a, k) -> rotl (plain a) k
    | Op.Rescale _ | Op.Modswitch _ | Op.Upscale _ ->
        ignore i;
        invalid_arg "Backend: alias op in compute_plain"
  in

  (* Spill least-urgently-needed live ciphertexts until under budget.
     Victim = live root with the furthest next scheduled use (outputs
     not needed until decrypt make ideal victims).  A failed
     (unverified) spill keeps the value in memory and excludes it from
     future victim picks. *)
  let spill_down budget pos =
    let continue = ref true in
    while !continue && !live_bytes > budget do
      let victim =
        List.fold_left
          (fun acc r ->
            if Hashtbl.mem no_spill r then acc
            else
              let nu = next_use r pos in
              match acc with
              | Some (br, bnu) when (bnu, br) >= (nu, r) -> acc
              | _ -> Some (r, nu))
          None !live_list
      in
      match victim with
      | None -> continue := false
      | Some (r, _) -> (
          match slots.(r) with
          | Ct ct ->
              if Ctstore.spill ~dir ~nonce ~id:r ct then begin
                incr spills;
                spilled_ever := r :: !spilled_ever;
                release_ct r;
                slots.(r) <- SpilledSlot
              end
              else Hashtbl.replace no_spill r ()
          | _ -> Hashtbl.replace no_spill r ())
    done
  in

  (* ---- main loop over the scheduled order ---- *)
  let t_eval0 = Fhe_util.Timer.now_ns () in
  Array.iteri
    (fun pos i ->
      let k = Program.kind p i in
      (if root.(i) <> i then
         (* alias: deferred rescale, plain scale bookkeeping, or
            rotation by zero — the value lives at its root; executing
            it is a no-op *)
         ()
       else if Program.vtype p i = Op.Cipher then
         let ct = compute_ct i k in
         install i ct
       else slots.(i) <- Pl (compute_plain i k));
      (if sched then
         List.iter
           (fun r ->
             match slots.(r) with
             | Ct _ ->
                 release_ct r;
                 slots.(r) <- FreedSlot
             | SpilledSlot -> slots.(r) <- FreedSlot
             | _ -> ())
           plan.Fhe_sched.Schedule.free_after.(pos));
      match mem_budget with
      | Some b when spilling -> spill_down b pos
      | _ -> ())
    plan.Fhe_sched.Schedule.order;
  let eval_ms =
    (Int64.to_float (Int64.sub (Fhe_util.Timer.now_ns ()) t_eval0) /. 1e6)
    -. !encrypt_ms
  in

  (* ---- outputs ---- *)
  let outputs = Program.outputs p in
  let output_levels =
    Array.map
      (fun o ->
        if Program.vtype p o = Op.Cipher then (force_ct o).Evaluator.level
        else -1)
      outputs
  in
  let decrypted, decrypt_ms =
    Fhe_util.Timer.time (fun () ->
        Array.map
          (fun o ->
            if Program.vtype p o = Op.Cipher then
              Evaluator.decrypt keys (force_ct o)
            else plain o)
          outputs)
  in

  (* ---- spill cleanup (best-effort) ---- *)
  if spilling then begin
    List.iter
      (fun r -> Ctstore.drop ~dir ~nonce ~id:r)
      (List.sort_uniq compare !spilled_ever);
    (try Sys.remove marker with Sys_error _ -> ());
    if own_dir then
      try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ()
  end;

  let keys_mem = Keys.mem keys in
  let mem =
    { peak_ct_bytes = !peak_live;
      sched_ct_bytes = plan.Fhe_sched.Schedule.peak;
      order_ct_bytes = plan.Fhe_sched.Schedule.order_peak;
      resident_ct_bytes = plan.Fhe_sched.Schedule.resident;
      peak_key_bytes = keys_mem.Keys.peak_bytes;
      key_gens = keys_mem.Keys.gens - keys_mem0.Keys.gens;
      key_evictions = keys_mem.Keys.evictions - keys_mem0.Keys.evictions;
      ct_spills = !spills;
      ct_reloads = !reloads;
      ct_recomputes = !recomputes;
      arena_reuses =
        (match ctx.Context.arena with
        | Some a -> Arena.reuses a - arena_reuses0
        | None -> 0);
      reordered = plan.Fhe_sched.Schedule.reordered }
  in
  (decrypted, !encrypt_ms, eval_ms, decrypt_ms, output_levels, mem)

let run_with_keys ?sched ?mem_budget ?key_budget ?spill_dir ?spill_fault
    (keys : Keys.t) (m : Managed.t) ~inputs =
  let out, _, _, _, _, _ =
    exec ?sched ?mem_budget ?key_budget ?spill_dir ?spill_fault keys m ~inputs
  in
  out

let run_timed ?(seed = 0xC0FFEE) ?pool ?sched ?mem_budget ?key_budget
    ?spill_dir ?spill_fault (m : Managed.t) ~inputs =
  let nh = Program.n_slots m.Managed.prog in
  let levels = max 1 (Managed.max_level m) in
  let ctx = Context.make ~n:(2 * nh) ~levels ~level_bits:m.Managed.rbits () in
  Context.set_pool ctx pool;
  (if sched <> Some false then
     Context.set_arena ctx (Some (Arena.create ~n:ctx.Context.n)));
  let kb =
    match key_budget, mem_budget with
    | Some b, _ | None, Some b -> Some b
    | None, None -> None
  in
  let keys, keygen_ms =
    Fhe_util.Timer.time (fun () -> Keys.keygen ~seed ?key_budget:kb ctx)
  in
  let out, encrypt_ms, eval_ms, decrypt_ms, output_levels, mem =
    exec ?sched ?mem_budget ?key_budget ?spill_dir ?spill_fault keys m ~inputs
  in
  (out, { keygen_ms; encrypt_ms; eval_ms; decrypt_ms; output_levels; mem })

let run ?(seed = 0xC0FFEE) ?pool ?sched ?mem_budget ?key_budget ?spill_dir
    ?spill_fault (m : Managed.t) ~inputs =
  let out, _ =
    run_timed ~seed ?pool ?sched ?mem_budget ?key_budget ?spill_dir
      ?spill_fault m ~inputs
  in
  out
