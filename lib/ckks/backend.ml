open Fhe_ir

type value =
  | C of Evaluator.ct
  | P of float array  (* true (unscaled) plaintext payload *)

type stats = {
  keygen_ms : float;
  encrypt_ms : float;
  eval_ms : float;
  decrypt_ms : float;
  output_levels : int array;
}

let pad n a =
  let out = Array.make n 0.0 in
  Array.blit a 0 out 0 (min n (Array.length a));
  out

let rotl a k =
  let n = Array.length a in
  Array.init n (fun i -> a.((i + k) mod n))

(* Fusion plan for the Modswitch∘Rescale peephole: a Rescale consumed
   exactly once, by a Modswitch, and not itself an output, is deferred —
   its consumer executes the fused [Evaluator.rescale_modswitch] on the
   pre-rescale ciphertext and the intermediate basis never exists. *)
let deferred_rescales (p : Program.t) =
  let n = Program.n_ops p in
  let uses = Array.make n 0 in
  let bump o = uses.(o) <- uses.(o) + 1 in
  Program.iteri
    (fun _ k ->
      match k with
      | Op.Add (a, b) | Op.Sub (a, b) | Op.Mul (a, b) -> bump a; bump b
      | Op.Neg a | Op.Rotate (a, _) | Op.Rescale a | Op.Modswitch a
      | Op.Upscale (a, _) -> bump a
      | Op.Input _ | Op.Const _ | Op.Vconst _ -> ())
    p;
  Array.iter bump (Program.outputs p);
  let is_rescale = Array.make n false in
  Program.iteri
    (fun i k -> match k with Op.Rescale _ -> is_rescale.(i) <- true | _ -> ())
    p;
  let deferred = Array.make n false in
  Program.iteri
    (fun _ k ->
      match k with
      | Op.Modswitch a when is_rescale.(a) && uses.(a) = 1 ->
          deferred.(a) <- true
      | _ -> ())
    p;
  deferred

let exec (keys : Keys.t) (m : Managed.t) ~inputs =
  let ctx = keys.Keys.ctx in
  let p = m.Managed.prog in
  let nh = Context.slot_count ctx in
  if Program.n_slots p <> nh then
    invalid_arg "Backend.run: program slot count must equal n/2";
  if m.Managed.rbits <> ctx.Context.level_bits then
    invalid_arg "Backend.run: program rbits must match context level_bits";
  let n = Program.n_ops p in
  let deferred = deferred_rescales p in
  let vals : value array = Array.make n (P [||]) in
  let cipher i =
    match vals.(i) with C ct -> ct | P _ -> invalid_arg "Backend: not cipher"
  in
  let plain i =
    match vals.(i) with P v -> v | C _ -> invalid_arg "Backend: not plain"
  in
  let find name =
    match List.assoc_opt name inputs with
    | Some v -> pad nh v
    | None -> invalid_arg (Printf.sprintf "Backend: missing input %S" name)
  in
  let pow2 b = Fhe_util.Bits.pow2f b in
  let encrypt_ms = ref 0.0 in
  let t_eval0 = Fhe_util.Timer.now_ns () in
  Program.iteri
    (fun i k ->
      let is_c o = Program.vtype p o = Op.Cipher in
      vals.(i) <-
        (match k with
        | Op.Input { name; vt = Op.Cipher } ->
            let ct, ms =
              Fhe_util.Timer.time (fun () ->
                  Evaluator.encrypt keys ~level:m.Managed.level.(i)
                    ~scale:(pow2 m.Managed.scale.(i))
                    (find name))
            in
            encrypt_ms := !encrypt_ms +. ms;
            C ct
        | Op.Input { name; vt = Op.Plain } -> P (find name)
        | Op.Const c -> P (Array.make nh c)
        | Op.Vconst { values; _ } -> P (pad nh values)
        | Op.Add (a, b) -> (
            match (is_c a, is_c b) with
            | true, true -> C (Evaluator.add keys (cipher a) (cipher b))
            | true, false -> C (Evaluator.add_plain keys (cipher a) (plain b))
            | false, true -> C (Evaluator.add_plain keys (cipher b) (plain a))
            | false, false ->
                P (Array.init nh (fun j -> (plain a).(j) +. (plain b).(j))))
        | Op.Sub (a, b) -> (
            match (is_c a, is_c b) with
            | true, true -> C (Evaluator.sub keys (cipher a) (cipher b))
            | true, false -> C (Evaluator.sub_plain keys (cipher a) (plain b))
            | false, true ->
                C
                  (Evaluator.neg keys
                     (Evaluator.sub_plain keys (cipher b) (plain a)))
            | false, false ->
                P (Array.init nh (fun j -> (plain a).(j) -. (plain b).(j))))
        | Op.Mul (a, b) -> (
            match (is_c a, is_c b) with
            | true, true -> C (Evaluator.mul keys (cipher a) (cipher b))
            | true, false ->
                C
                  (Evaluator.mul_plain keys (cipher a)
                     ~scale:(pow2 m.Managed.scale.(b))
                     (plain b))
            | false, true ->
                C
                  (Evaluator.mul_plain keys (cipher b)
                     ~scale:(pow2 m.Managed.scale.(a))
                     (plain a))
            | false, false ->
                P (Array.init nh (fun j -> (plain a).(j) *. (plain b).(j))))
        | Op.Neg a ->
            if is_c a then C (Evaluator.neg keys (cipher a))
            else P (Array.map (fun x -> -.x) (plain a))
        | Op.Rotate (a, k) ->
            if is_c a then C (Evaluator.rotate keys (cipher a) k)
            else P (rotl (plain a) k)
        | Op.Rescale a ->
            if is_c a then
              if deferred.(i) then vals.(a) (* fused into the Modswitch *)
              else C (Evaluator.rescale keys (cipher a))
            else vals.(a) (* plaintext bookkeeping only *)
        | Op.Modswitch a ->
            if is_c a then
              if deferred.(a) then begin
                let ct = cipher a in
                if ct.Evaluator.level > 2 then
                  C (Evaluator.rescale_modswitch keys ct)
                else
                  C (Evaluator.modswitch keys (Evaluator.rescale keys ct))
              end
              else C (Evaluator.modswitch keys (cipher a))
            else vals.(a)
        | Op.Upscale (a, bits) ->
            if is_c a then C (Evaluator.upscale keys (cipher a) bits)
            else vals.(a)))
    p;
  let eval_ms =
    (Int64.to_float (Int64.sub (Fhe_util.Timer.now_ns ()) t_eval0) /. 1e6)
    -. !encrypt_ms
  in
  let outputs = Program.outputs p in
  let output_levels =
    Array.map
      (fun o -> match vals.(o) with C ct -> ct.Evaluator.level | P _ -> -1)
      outputs
  in
  let decrypted, decrypt_ms =
    Fhe_util.Timer.time (fun () ->
        Array.map
          (fun o ->
            match vals.(o) with
            | C ct -> Evaluator.decrypt keys ct
            | P v -> v)
          outputs)
  in
  (decrypted, !encrypt_ms, eval_ms, decrypt_ms, output_levels)

let run_with_keys (keys : Keys.t) (m : Managed.t) ~inputs =
  let out, _, _, _, _ = exec keys m ~inputs in
  out

let run_timed ?(seed = 0xC0FFEE) ?pool (m : Managed.t) ~inputs =
  let nh = Program.n_slots m.Managed.prog in
  let levels = max 1 (Managed.max_level m) in
  let ctx = Context.make ~n:(2 * nh) ~levels ~level_bits:m.Managed.rbits () in
  Context.set_pool ctx pool;
  let keys, keygen_ms = Fhe_util.Timer.time (fun () -> Keys.keygen ~seed ctx) in
  let out, encrypt_ms, eval_ms, decrypt_ms, output_levels =
    exec keys m ~inputs
  in
  (out, { keygen_ms; encrypt_ms; eval_ms; decrypt_ms; output_levels })

let run ?(seed = 0xC0FFEE) ?pool (m : Managed.t) ~inputs =
  let out, _ = run_timed ~seed ?pool m ~inputs in
  out
