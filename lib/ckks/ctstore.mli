(** Spill-to-disk for cold ciphertexts, on top of the checksummed
    {!Fhe_cache.Disk} entry format.

    Entries are keyed by [(nonce, op id)]; the nonce isolates one
    backend run from another when runs share a spill directory.  A
    spill is only trusted after verify-on-write: [spill] reads the
    entry back and compares bytes before reporting success, so the
    in-memory ciphertext is never dropped on the strength of an
    unverified write.  A reload that misses, reads poisoned bytes, or
    fails to decode returns [None] — the scheduler then recomputes the
    value instead. *)

val spill :
  dir:string -> nonce:string -> id:int -> Evaluator.ct -> bool
(** Serialize, write, and verify one ciphertext.  [true] iff the entry
    read back byte-identical — only then may the caller free the
    in-memory copy. *)

val load :
  Context.t -> dir:string -> nonce:string -> id:int -> Evaluator.ct option
(** Reload a spilled ciphertext; [None] on miss/poison/decode failure
    (all recoverable by recomputation). *)

val drop : dir:string -> nonce:string -> id:int -> unit
(** Best-effort removal of one entry. *)
