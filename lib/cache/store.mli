open Fhe_ir

(** The process-wide content-addressed compilation cache.

    Maps a {!Key.make} key to a compiled {!Managed.t} through an
    in-memory {!Lru} and, when a cache directory is configured, the
    {!Disk} store.  The reserve pipeline, the differential driver, the
    fuzz harness and the bench emitters all consult one shared instance,
    so a program compiled once under a configuration is never compiled
    again — the memoization is sound because every compiler here is a
    pure function of (program, configuration), which the [@cache] test
    tier and {!Fhe_check.Invariants.check_cache_consistency} verify.

    {b Parallel safety.}  The store is shared, not sharded: the LRU is
    mutex-guarded and the counters are atomics, so domains of a
    {!Fhe_par.Pool} may hit it concurrently.  A shared store was chosen
    over per-domain shards because hits from one domain must serve every
    other (the whole point of caching a batch sweep), and the critical
    section is a hash lookup — contention is negligible next to a
    compilation.

    {b Integrity.}  Disk entries are checksummed ({!Disk}); a corrupt
    entry counts as [poisoned], is deleted, and the value is recomputed
    — never trusted.  Unmarshalled programs are additionally re-checked
    with {!Validator.check} before being served. *)

type stats = {
  hits : int;  (** served from memory or disk *)
  misses : int;
  disk_hits : int;  (** subset of [hits] that came from disk *)
  stores : int;
  poisoned : int;  (** corrupt disk entries detected (and recomputed) *)
  swept : int;
      (** orphaned temp files removed by crash recovery on store open *)
}

(** {1 Configuration} *)

val set_enabled : bool -> unit
(** Default [true] (in-memory only). *)

val enabled : unit -> bool

val set_dir : string option -> unit
(** [Some dir] also persists entries under [dir] (created on first
    write).  Default [None].  Opening a directory runs crash recovery:
    temp files orphaned by a writer killed mid-store are swept
    ({!Disk.sweep}, counted in [stats.swept]) before any lookup can
    race new writes into the directory. *)

val dir : unit -> string option

val set_capacity : int -> unit
(** Per-generation LRU capacity (entries, default 256); resets the
    in-memory cache. *)

val bypass : (unit -> 'a) -> 'a
(** Run [f] with the store invisible on the calling domain: finds miss
    without counting, adds are dropped.  Used to force a cold
    compilation (bench baselines, cache-consistency recomputation)
    without disturbing other domains. *)

val active : unit -> bool
(** [enabled] and not bypassed on this domain — whether [find]/[add]
    will actually do anything.  Callers can test this before paying for
    a digest. *)

val with_namespace : string -> (unit -> 'a) -> 'a
(** Run [f] with every [find]/[add] on the calling domain re-keyed
    into the given tenant namespace ([""] = the anonymous namespace,
    i.e. no re-keying).  The serve daemon wraps each request's compile
    in this, so keys minted deep inside the pipeline are isolated per
    tenant without threading a tenant parameter through every pass.
    Nests and restores like {!bypass}. *)

val namespace : unit -> string option
(** The calling domain's current namespace, if any. *)

val reset : unit -> unit
(** Drop every in-memory entry and zero the counters; configuration and
    disk entries are untouched. *)

(** {1 The cache} *)

val find : string -> Managed.t option

val add : string -> Managed.t -> unit

val with_managed : key:string -> (unit -> Managed.t) -> Managed.t
(** [find], or compute-and-[add]. *)

val with_managed_hit : key:string -> (unit -> Managed.t) -> Managed.t * bool
(** Same, flagging whether the value was served from the cache — the
    differential driver uses the flag to trigger the cache-consistency
    recheck. *)

val stats : unit -> stats

val pp_stats : Format.formatter -> stats -> unit
