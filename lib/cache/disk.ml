let header = "fhe-cache-entry/1"

let safe_key key =
  key <> ""
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       key

let path ~dir ~key =
  if not (safe_key key) then
    invalid_arg ("Disk.path: not a hex digest key: " ^ key);
  Filename.concat dir (key ^ ".entry")

let ensure_dir dir =
  (* one level is enough for _fhecache/; races with other writers are
     benign (EEXIST) *)
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ()

let get ~dir ~key =
  match open_in_bin (path ~dir ~key) with
  | exception Sys_error _ -> `Miss
  | ic -> (
      let result =
        try
          let text = really_input_string ic (in_channel_length ic) in
          match String.index_opt text '\n' with
          | None -> `Poisoned
          | Some i -> (
              let head = String.sub text 0 i in
              let payload =
                String.sub text (i + 1) (String.length text - i - 1)
              in
              match String.split_on_char ' ' head with
              | [ h; md5; len ]
                when h = header
                     && int_of_string_opt len = Some (String.length payload)
                     && md5 = Digest.to_hex (Digest.string payload) ->
                  `Hit payload
              | _ -> `Poisoned)
        with _ -> `Poisoned
      in
      close_in_noerr ic;
      result)

let put ~dir ~key payload =
  try
    ensure_dir dir;
    let final = path ~dir ~key in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
        (Domain.self () :> int)
    in
    let oc = open_out_bin tmp in
    Printf.fprintf oc "%s %s %d\n" header
      (Digest.to_hex (Digest.string payload))
      (String.length payload);
    output_string oc payload;
    (* fsync before the rename: without it a crash shortly after the
       rename can leave the *final* name pointing at zero-length or
       partial data on journalled filesystems — the one corruption the
       checksum header cannot distinguish from hostile bytes cheaply.
       With it, the rename publishes only fully-durable entries. *)
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> ());
    close_out oc;
    Sys.rename tmp final
  with Sys_error _ | Unix.Unix_error _ -> ()

(* a writer that died between open and rename leaves a *.tmp.PID.DOM
   orphan; they are invisible to get (never matching a digest key) but
   accumulate forever, so store open sweeps them.  Live writers are not
   at risk: a concurrent put loses at most its own tmp file and
   degrades to a dropped store, which put already tolerates. *)
let is_orphan name =
  let rec find_sub i =
    if i + 5 > String.length name then false
    else String.sub name i 5 = ".tmp." || find_sub (i + 1)
  in
  find_sub 0

let sweep ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun n name ->
          if is_orphan name then
            match Sys.remove (Filename.concat dir name) with
            | () -> n + 1
            | exception Sys_error _ -> n
          else n)
        0 names

let remove ~dir ~key =
  try Sys.remove (path ~dir ~key) with Sys_error _ -> ()
