(** Content-addressed cache keys.

    A key names one compilation result: the program's structural digest
    ({!Fhe_ir.Intern.digest}), the compiler variant, and every
    configuration knob that can change the output.  The composed key is
    itself digested, so it is a fixed-width hex string safe to use as a
    filename in the on-disk store; a format-version stamp is folded in,
    invalidating persisted entries wholesale when the representation
    changes. *)

val version : string
(** The cache format version folded into every key. *)

val make :
  digest:string ->
  compiler:string ->
  rbits:int ->
  wbits:int ->
  ?xmax_bits:int ->
  ?tenant:string ->
  ?extra:string list ->
  unit ->
  string
(** [extra] carries compiler-specific knobs (e.g. the Hecate
    exploration budget, or the placement switches of a reserve
    variant); order matters.  [tenant] (default [""], the anonymous
    tenant) namespaces the key for multi-tenant stores: equal
    compilations under different tenants get distinct keys, so one
    tenant's poisoned or evicted entries never touch another's.  The
    serve daemon sets it per request; see also
    {!Store.with_namespace}, which namespaces keys minted by code that
    doesn't take a tenant parameter (the pipeline's internal keys). *)
