(** Content-addressed cache keys.

    A key names one compilation result: the program's structural digest
    ({!Fhe_ir.Intern.digest}), the compiler variant, and every
    configuration knob that can change the output.  The composed key is
    itself digested, so it is a fixed-width hex string safe to use as a
    filename in the on-disk store; a format-version stamp is folded in,
    invalidating persisted entries wholesale when the representation
    changes. *)

val version : string
(** The cache format version folded into every key. *)

val make :
  digest:string ->
  compiler:string ->
  rbits:int ->
  wbits:int ->
  ?xmax_bits:int ->
  ?extra:string list ->
  unit ->
  string
(** [extra] carries compiler-specific knobs (e.g. the Hecate
    exploration budget, or the placement switches of a reserve
    variant); order matters. *)
