(** The on-disk half of the compilation cache: one file per entry under
    a cache directory (conventionally [_fhecache/]).

    Every entry is integrity-checked: a header line with the format
    version, the payload's MD5, and the payload length guards the
    payload bytes.  A corrupt, truncated, or version-skewed file reads
    back as [`Poisoned] — never as a payload — so the caller can
    recompute instead of trusting damaged bytes (the payload is
    [Marshal] data, which must not be fed corrupt input).

    Writes go through a temp file and [rename], so concurrent readers
    and writers (including other processes) see either the old complete
    entry or the new complete entry.  All operations are best-effort:
    I/O errors degrade to a miss or a dropped store, never an
    exception. *)

val path : dir:string -> key:string -> string
(** Where the entry for [key] lives.  [key] must be a hex digest (as
    produced by {!Key.make}); anything else raises
    [Invalid_argument]. *)

val get : dir:string -> key:string -> [ `Hit of string | `Miss | `Poisoned ]

val put : dir:string -> key:string -> string -> unit
(** Creates [dir] if needed.  The entry is flushed and fsync'd before
    the atomic rename, so a published name never points at partially
    durable bytes even across a crash. *)

val remove : dir:string -> key:string -> unit

val sweep : dir:string -> int
(** Delete orphaned temp files ([*.tmp.PID.DOMAIN]) left by writers
    that crashed between open and rename; returns how many were
    removed.  Run on store open ({!Store.set_dir}); racing an active
    writer is benign (its store degrades to a no-op, which [put]
    already tolerates).  A missing directory sweeps zero files. *)
