type 'a t = {
  mutable young : (string, 'a) Hashtbl.t;
  mutable old : (string, 'a) Hashtbl.t;
  cap : int;
  lock : Mutex.t;
}

let create ?(cap = 256) () =
  let size = max 16 (min cap 4096) in
  { young = Hashtbl.create size;
    old = Hashtbl.create size;
    cap;
    lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

(* assumes the lock is held *)
let flip_if_full t =
  if Hashtbl.length t.young >= t.cap then begin
    t.old <- t.young;
    t.young <- Hashtbl.create (max 16 (min t.cap 4096))
  end

let add t k v =
  if t.cap > 0 then
    locked t (fun () ->
        flip_if_full t;
        Hashtbl.replace t.young k v)

let find t k =
  if t.cap <= 0 then None
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.young k with
        | Some _ as r -> r
        | None -> (
            match Hashtbl.find_opt t.old k with
            | Some v ->
                (* promote so a steadily-hit entry never ages out *)
                flip_if_full t;
                Hashtbl.replace t.young k v;
                Some v
            | None -> None))

let length t =
  locked t (fun () ->
      Hashtbl.length t.young
      + Hashtbl.fold
          (fun k _ acc ->
            if Hashtbl.mem t.young k then acc else acc + 1)
          t.old 0)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.young;
      Hashtbl.reset t.old)
