let version = "fhe-cache/1"

let make ~digest ~compiler ~rbits ~wbits ?(xmax_bits = 0) ?(tenant = "")
    ?(extra = []) () =
  let fields =
    version :: digest :: compiler :: string_of_int rbits
    :: string_of_int wbits :: string_of_int xmax_bits :: tenant :: extra
  in
  Digest.to_hex (Digest.string (String.concat "\x01" fields))
