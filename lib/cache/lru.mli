(** A mutex-guarded, capacity-bounded map from string keys to values.

    Eviction is generational ("flip" LRU): entries live in a young and
    an old table; additions go to young, a hit in old promotes, and
    when young fills, old is dropped wholesale and young becomes old.
    Recently-used entries therefore survive at least one full
    generation, the resident size is bounded by [2·cap], and every
    operation is O(1) — no linked-list bookkeeping on the hot path.

    All operations take the internal mutex, so one instance can back a
    cache shared by every domain of a {!Fhe_par.Pool}. *)

type 'a t

val create : ?cap:int -> unit -> 'a t
(** [cap] (default 256) is the per-generation capacity; [cap <= 0]
    disables storage entirely (every [find] misses). *)

val find : 'a t -> string -> 'a option

val add : 'a t -> string -> 'a -> unit

val length : 'a t -> int
(** Distinct keys currently resident (both generations). *)

val clear : 'a t -> unit
