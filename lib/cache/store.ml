open Fhe_ir

type stats = {
  hits : int;
  misses : int;
  disk_hits : int;
  stores : int;
  poisoned : int;
  swept : int;
}

(* configuration: read on every lookup, written only from the driver
   setup path — atomics keep cross-domain reads well-defined *)
let enabled_f = Atomic.make true

let dir_f = Atomic.make (None : string option)

let memo : Managed.t Lru.t Atomic.t = Atomic.make (Lru.create ())

let hits = Atomic.make 0

let misses = Atomic.make 0

let disk_hits = Atomic.make 0

let stores = Atomic.make 0

let poisoned = Atomic.make 0

let swept = Atomic.make 0

let set_enabled v = Atomic.set enabled_f v

let enabled () = Atomic.get enabled_f

(* opening a disk store is the crash-recovery point: sweep temp files
   orphaned by writers that died mid-put, before any request can race
   new writes into the directory *)
let set_dir d =
  Atomic.set dir_f d;
  match d with
  | None -> ()
  | Some dir ->
      let n = Disk.sweep ~dir in
      if n > 0 then ignore (Atomic.fetch_and_add swept n)

let dir () = Atomic.get dir_f

let set_capacity cap = Atomic.set memo (Lru.create ~cap ())

(* per-domain bypass: a pool task forcing a cold compile must not blind
   the store for its sibling domains *)
let bypass_key = Domain.DLS.new_key (fun () -> ref false)

let bypassed () = !(Domain.DLS.get bypass_key)

let bypass f =
  let r = Domain.DLS.get bypass_key in
  let saved = !r in
  r := true;
  Fun.protect ~finally:(fun () -> r := saved) f

let active () = Atomic.get enabled_f && not (bypassed ())

(* per-domain tenant namespace, same DLS discipline as bypass: the
   serve daemon wraps each request's compile in [with_namespace], so
   the pipeline's internally-minted keys land in that tenant's
   namespace without the pipeline knowing tenants exist.  Re-digesting
   keeps the effective key a hex digest (a Disk filename). *)
let ns_key = Domain.DLS.new_key (fun () -> ref "")

let namespace () =
  match !(Domain.DLS.get ns_key) with "" -> None | ns -> Some ns

let with_namespace ns f =
  let r = Domain.DLS.get ns_key in
  let saved = !r in
  r := ns;
  Fun.protect ~finally:(fun () -> r := saved) f

let effective key =
  match !(Domain.DLS.get ns_key) with
  | "" -> key
  | ns -> Digest.to_hex (Digest.string (ns ^ "\x01" ^ key))

let reset () =
  Lru.clear (Atomic.get memo);
  List.iter
    (fun c -> Atomic.set c 0)
    [ hits; misses; disk_hits; stores; poisoned; swept ]

let encode (m : Managed.t) = Marshal.to_string m []

(* The Disk checksum has already vouched for the bytes, so Marshal is
   safe to run; the validator re-check guards against a well-formed
   entry that encodes an illegal program (e.g. written by a buggy or
   hostile producer). *)
let decode payload =
  match (Marshal.from_string payload 0 : Managed.t) with
  | m -> ( match Validator.check m with Ok () -> Some m | Error _ -> None)
  | exception _ -> None

let find key =
  if not (active ()) then None
  else
    let key = effective key in
    match Lru.find (Atomic.get memo) key with
    | Some m ->
        Atomic.incr hits;
        Some m
    | None -> (
        match Atomic.get dir_f with
        | None ->
            Atomic.incr misses;
            None
        | Some d -> (
            match Disk.get ~dir:d ~key with
            | `Hit payload -> (
                match decode payload with
                | Some m ->
                    Atomic.incr hits;
                    Atomic.incr disk_hits;
                    Lru.add (Atomic.get memo) key m;
                    Some m
                | None ->
                    Atomic.incr poisoned;
                    Disk.remove ~dir:d ~key;
                    Atomic.incr misses;
                    None)
            | `Poisoned ->
                Atomic.incr poisoned;
                Disk.remove ~dir:d ~key;
                Atomic.incr misses;
                None
            | `Miss ->
                Atomic.incr misses;
                None))

let add key m =
  if active () then begin
    let key = effective key in
    Atomic.incr stores;
    Lru.add (Atomic.get memo) key m;
    match Atomic.get dir_f with
    | None -> ()
    | Some d -> Disk.put ~dir:d ~key (encode m)
  end

let with_managed_hit ~key f =
  match find key with
  | Some m -> (m, true)
  | None ->
      let m = f () in
      add key m;
      (m, false)

let with_managed ~key f = fst (with_managed_hit ~key f)

let stats () =
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    disk_hits = Atomic.get disk_hits;
    stores = Atomic.get stores;
    poisoned = Atomic.get poisoned;
    swept = Atomic.get swept;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "cache: %d hit(s) (%d from disk), %d miss(es), %d store(s), %d poisoned, \
     %d swept"
    s.hits s.disk_hits s.misses s.stores s.poisoned s.swept
