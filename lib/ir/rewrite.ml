type result = { prog : Program.t; remap : int array }

let rebuild p ~keep ~rewrite =
  let n = Program.n_ops p in
  let remap = Array.make n (-1) in
  let out = Fhe_util.Vec.create () in
  let must_keep = Array.make n false in
  Array.iter (fun o -> must_keep.(o) <- true) (Program.outputs p);
  for i = 0 to n - 1 do
    if keep i || must_keep.(i) then begin
      let k = Program.kind p i in
      let k =
        Op.map_operands
          (fun o ->
            if remap.(o) < 0 then
              invalid_arg
                (Printf.sprintf "Rewrite.rebuild: op %d uses deleted op %d" i o)
            else remap.(o))
          k
      in
      (* intern: rebuilt programs share physical nodes with their
         sources and with each other, and downstream dedup is O(1) *)
      Fhe_util.Vec.push out (Intern.kind (rewrite i k)).Intern.kind;
      remap.(i) <- Fhe_util.Vec.length out - 1
    end
  done;
  let outputs = Array.map (fun o -> remap.(o)) (Program.outputs p) in
  { prog =
      Program.make ~ops:(Fhe_util.Vec.to_array out) ~outputs
        ~n_slots:(Program.n_slots p);
    remap }

let identity p = rebuild p ~keep:(fun _ -> true) ~rewrite:(fun _ k -> k)
