let run ?(key = fun _ -> 0) p =
  let n = Program.n_ops p in
  let remap = Array.make n (-1) in
  let out = Fhe_util.Vec.create () in
  (* keyed on (intern uid, discriminator): deep equality of remapped
     kinds collapses to an integer comparison, bit-exact on floats *)
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  for i = 0 to n - 1 do
    let k = Op.map_operands (fun o -> remap.(o)) (Program.kind p i) in
    let mergeable = match k with Op.Input _ -> false | _ -> true in
    let node = Intern.kind k in
    let hk = (node.Intern.uid, key i) in
    match (if mergeable then Hashtbl.find_opt tbl hk else None) with
    | Some j -> remap.(i) <- j
    | None ->
        Fhe_util.Vec.push out node.Intern.kind;
        let j = Fhe_util.Vec.length out - 1 in
        remap.(i) <- j;
        if mergeable then Hashtbl.add tbl hk j
  done;
  let outputs = Array.map (fun o -> remap.(o)) (Program.outputs p) in
  { Rewrite.prog =
      Program.make ~ops:(Fhe_util.Vec.to_array out) ~outputs
        ~n_slots:(Program.n_slots p);
    remap }
