let run p =
  let n = Program.n_ops p in
  let remap = Array.make n (-1) in
  let out = Fhe_util.Vec.create () in
  (* New-id -> scalar constant value, for folding chains. *)
  let const_of : (int, float) Hashtbl.t = Hashtbl.create 64 in
  (* dedup keyed on the intern uid (bit-exact floats, O(1) equality) *)
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let emit k =
    let node = Intern.kind k in
    match
      (match k with
      | Op.Input _ -> None
      | _ -> Hashtbl.find_opt tbl node.Intern.uid)
    with
    | Some j -> j
    | None ->
        Fhe_util.Vec.push out node.Intern.kind;
        let j = Fhe_util.Vec.length out - 1 in
        (match k with
        | Op.Input _ -> ()
        | _ -> Hashtbl.add tbl node.Intern.uid j);
        (match k with Op.Const c -> Hashtbl.replace const_of j c | _ -> ());
        j
  in
  let cval j = Hashtbl.find_opt const_of j in
  (* Operands below are already remapped, so they index [out]. *)
  let new_kind j = Fhe_util.Vec.get out j in
  for i = 0 to n - 1 do
    let k = Op.map_operands (fun o -> remap.(o)) (Program.kind p i) in
    let j =
      match k with
      | Op.Rescale _ | Op.Modswitch _ | Op.Upscale _ ->
          invalid_arg "Constfold.run: managed program"
      | Op.Add (a, b) -> (
          match (cval a, cval b) with
          | Some x, Some y -> emit (Op.Const (x +. y))
          | Some 0.0, None -> b
          | None, Some 0.0 -> a
          | _ -> emit k)
      | Op.Sub (a, b) -> (
          match (cval a, cval b) with
          | Some x, Some y -> emit (Op.Const (x -. y))
          | None, Some 0.0 -> a
          | _ -> emit k)
      | Op.Mul (a, b) -> (
          match (cval a, cval b) with
          | Some x, Some y -> emit (Op.Const (x *. y))
          | Some 1.0, None -> b
          | None, Some 1.0 -> a
          | _ -> emit k)
      | Op.Neg a -> (
          match cval a with
          | Some x -> emit (Op.Const (-.x))
          | None -> (
              match new_kind a with Op.Neg inner -> inner | _ -> emit k))
      | Op.Rotate (a, amt) -> (
          match new_kind a with
          | Op.Rotate (inner, amt') ->
              (* canonicalize into [0, n_slots): OCaml's [mod] keeps the
                 sign of the dividend, and programs built outside
                 [Builder] (Wire, Parser, Program.make) may carry
                 negative amounts *)
              let n = Program.n_slots p in
              let s = (((amt + amt') mod n) + n) mod n in
              if s = 0 then inner else emit (Op.Rotate (inner, s))
          | _ -> emit k)
      | Op.Input _ | Op.Const _ | Op.Vconst _ -> emit k
    in
    remap.(i) <- j
  done;
  let outputs = Array.map (fun o -> remap.(o)) (Program.outputs p) in
  let prog =
    Program.make ~ops:(Fhe_util.Vec.to_array out) ~outputs
      ~n_slots:(Program.n_slots p)
  in
  (* Folding can orphan ops; clean up while preserving the remap. *)
  let d = Dce.run prog in
  { Rewrite.prog = d.Rewrite.prog;
    remap =
      Array.map (fun j -> if j < 0 then -1 else d.Rewrite.remap.(j)) remap }
