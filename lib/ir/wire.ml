(* The canonical IR wire format: one textual and one binary encoding of
   programs (and managed programs), each versioned, each decoded through
   a validator that refuses hostile bytes instead of raising or
   allocating unboundedly.

   The round-trip contract, tested over the Progen corpus, is
   [Intern.digest (decode (encode p)) = Intern.digest p]: the digest
   canonicalizes NaN payloads, so the textual encoding's single "nan"
   token is lossless under the contract even though it drops payload
   bits.  The binary encoding preserves exact float bit patterns. *)

type error = { at : int; msg : string }

let pp_error ppf e = Format.fprintf ppf "at %d: %s" e.at e.msg

exception Fail of error

let fail at fmt = Format.kasprintf (fun msg -> raise (Fail { at; msg })) fmt

(* hard ceilings on decoded structures: a frame can claim at most what
   its own byte count can justify, and never more than these *)
let max_ops = 1 lsl 24

let max_slots = 1 lsl 26

let max_outputs = 1 lsl 20

let max_name = 4096

(* ------------------------------------------------------------------ *)
(* binary encoding *)

let magic_program = "FHEW"

let magic_managed = "FHEM"

let version = 1

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire: u32 out of range";
  Buffer.add_int32_le b (Int32.of_int v)

let add_i32 b v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg "Wire: i32 out of range";
  Buffer.add_int32_le b (Int32.of_int v)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let tag_of (k : Op.kind) =
  match k with
  | Op.Input _ -> 1 | Op.Const _ -> 2 | Op.Vconst _ -> 3 | Op.Add _ -> 4
  | Op.Sub _ -> 5 | Op.Mul _ -> 6 | Op.Neg _ -> 7 | Op.Rotate _ -> 8
  | Op.Rescale _ -> 9 | Op.Modswitch _ -> 10 | Op.Upscale _ -> 11

let encode_kind b (k : Op.kind) =
  add_u8 b (tag_of k);
  match k with
  | Op.Input { name; vt } ->
      add_u8 b (match vt with Op.Cipher -> 1 | Op.Plain -> 0);
      add_str b name
  | Op.Const v -> add_f64 b v
  | Op.Vconst { tag; values } ->
      add_str b tag;
      add_u32 b (Array.length values);
      Array.iter (add_f64 b) values
  | Op.Add (a, o) | Op.Sub (a, o) | Op.Mul (a, o) ->
      add_u32 b a;
      add_u32 b o
  | Op.Neg a | Op.Rescale a | Op.Modswitch a -> add_u32 b a
  | Op.Rotate (a, k) | Op.Upscale (a, k) ->
      add_u32 b a;
      add_i32 b k

let encode_program_body b p =
  add_u32 b (Program.n_slots p);
  add_u32 b (Program.n_ops p);
  Program.iteri (fun _ k -> encode_kind b k) p;
  let outs = Program.outputs p in
  add_u32 b (Array.length outs);
  Array.iter (add_u32 b) outs

let encode p =
  let b = Buffer.create (64 + (16 * Program.n_ops p)) in
  Buffer.add_string b magic_program;
  add_u8 b version;
  encode_program_body b p;
  Buffer.contents b

let encode_managed (m : Managed.t) =
  let b = Buffer.create (64 + (24 * Program.n_ops m.Managed.prog)) in
  Buffer.add_string b magic_managed;
  add_u8 b version;
  encode_program_body b m.Managed.prog;
  Array.iter (add_i32 b) m.Managed.scale;
  Array.iter (add_i32 b) m.Managed.level;
  add_u32 b m.Managed.rbits;
  add_u32 b m.Managed.wbits;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* binary decoding: a cursor with hard bounds checks; every length is
   validated against the bytes actually present before any allocation
   sized by it *)

type cursor = { data : string; mutable pos : int }

let remaining c = String.length c.data - c.pos

let need c n what =
  if n < 0 || remaining c < n then
    fail c.pos "truncated: %s needs %d byte(s), %d left" what n (remaining c)

let u8 c what =
  need c 1 what;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u32 c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_le c.data c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let i32 c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_le c.data c.pos) in
  c.pos <- c.pos + 4;
  v

let f64 c what =
  need c 8 what;
  let v = Int64.float_of_bits (String.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let str c ~cap what =
  let n = u32 c what in
  if n > cap then fail c.pos "%s length %d exceeds cap %d" what n cap;
  need c n what;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let vtype c =
  match u8 c "input type" with
  | 0 -> Op.Plain
  | 1 -> Op.Cipher
  | v -> fail (c.pos - 1) "bad input type byte %d" v

let decode_kind c =
  let at = c.pos in
  match u8 c "op tag" with
  | 1 ->
      let vt = vtype c in
      let name = str c ~cap:max_name "input name" in
      Op.Input { name; vt }
  | 2 -> Op.Const (f64 c "const")
  | 3 ->
      let tag = str c ~cap:max_name "vconst tag" in
      let n = u32 c "vconst length" in
      (* each value takes 8 bytes: the claimed count is bounded by the
         bytes present before anything is allocated *)
      need c (n * 8) "vconst values";
      Op.Vconst { tag; values = Array.init n (fun _ -> f64 c "vconst value") }
  | 4 -> let a = u32 c "operand" in Op.Add (a, u32 c "operand")
  | 5 -> let a = u32 c "operand" in Op.Sub (a, u32 c "operand")
  | 6 -> let a = u32 c "operand" in Op.Mul (a, u32 c "operand")
  | 7 -> Op.Neg (u32 c "operand")
  | 8 -> let a = u32 c "operand" in Op.Rotate (a, i32 c "rotate amount")
  | 9 -> Op.Rescale (u32 c "operand")
  | 10 -> Op.Modswitch (u32 c "operand")
  | 11 -> let a = u32 c "operand" in Op.Upscale (a, i32 c "upscale amount")
  | t -> fail at "unknown op tag %d" t

let decode_program_body c =
  let n_slots = u32 c "slot count" in
  if n_slots > max_slots then fail c.pos "slot count %d exceeds cap" n_slots;
  let n_ops = u32 c "op count" in
  if n_ops > max_ops then fail c.pos "op count %d exceeds cap" n_ops;
  (* every op costs at least one tag byte *)
  need c n_ops "ops";
  let ops = Array.init n_ops (fun _ -> decode_kind c) in
  let n_out = u32 c "output count" in
  if n_out > max_outputs then fail c.pos "output count %d exceeds cap" n_out;
  need c (n_out * 4) "outputs";
  let outputs = Array.init n_out (fun _ -> u32 c "output id") in
  (* Program.make re-validates operand and output ranges and the
     power-of-two slot count; its Invalid_argument becomes a decode
     error rather than an exception *)
  match Program.make ~ops ~outputs ~n_slots with
  | p -> p
  | exception Invalid_argument msg -> fail c.pos "%s" msg

let header c magic what =
  need c 5 (what ^ " header");
  let m = String.sub c.data c.pos 4 in
  if m <> magic then fail c.pos "bad magic %S (want %S)" m magic;
  c.pos <- c.pos + 4;
  let v = u8 c "version" in
  if v <> version then fail (c.pos - 1) "unsupported %s version %d" what v

let finish c v =
  if remaining c <> 0 then
    fail c.pos "%d trailing byte(s) after the encoded value" (remaining c);
  v

let run f data =
  match f { data; pos = 0 } with v -> Ok v | exception Fail e -> Error e

let decode data =
  run
    (fun c ->
      header c magic_program "program";
      finish c (decode_program_body c))
    data

let decode_managed data =
  run
    (fun c ->
      header c magic_managed "managed program";
      let prog = decode_program_body c in
      let n = Program.n_ops prog in
      need c (n * 8) "scale/level annotations";
      let scale = Array.init n (fun _ -> i32 c "scale") in
      let level = Array.init n (fun _ -> i32 c "level") in
      let rbits = u32 c "rbits" in
      let wbits = u32 c "wbits" in
      let m =
        match Managed.make ~prog ~scale ~level ~rbits ~wbits with
        | m -> m
        | exception Invalid_argument msg -> fail c.pos "%s" msg
      in
      finish c m)
    data

(* ------------------------------------------------------------------ *)
(* textual encoding *)

let text_header = "fhe-wire/1"

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* exact textual floats: hex-float literals round-trip every finite
   bit pattern; nan/infinity use the tokens float_of_string accepts *)
let float_text v =
  if Float.is_nan v then "nan"
  else if v = Float.infinity then "infinity"
  else if v = Float.neg_infinity then "-infinity"
  else Printf.sprintf "%h" v

let encode_text p =
  let b = Buffer.create (64 + (32 * Program.n_ops p)) in
  Buffer.add_string b text_header;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "slots %d\n" (Program.n_slots p));
  Program.iteri
    (fun i k ->
      Buffer.add_string b (Printf.sprintf "%%%d = " i);
      (match k with
      | Op.Input { name; vt } ->
          Buffer.add_string b
            (Printf.sprintf "input %s %s" (quote name)
               (match vt with Op.Cipher -> "cipher" | Op.Plain -> "plain"))
      | Op.Const v -> Buffer.add_string b ("const " ^ float_text v)
      | Op.Vconst { tag; values } ->
          Buffer.add_string b
            (Printf.sprintf "vconst %s %d" (quote tag) (Array.length values));
          Array.iter
            (fun v ->
              Buffer.add_char b ' ';
              Buffer.add_string b (float_text v))
            values
      | Op.Add (a, o) -> Buffer.add_string b (Printf.sprintf "add %%%d %%%d" a o)
      | Op.Sub (a, o) -> Buffer.add_string b (Printf.sprintf "sub %%%d %%%d" a o)
      | Op.Mul (a, o) -> Buffer.add_string b (Printf.sprintf "mul %%%d %%%d" a o)
      | Op.Neg a -> Buffer.add_string b (Printf.sprintf "neg %%%d" a)
      | Op.Rotate (a, k) ->
          Buffer.add_string b (Printf.sprintf "rotate %%%d %d" a k)
      | Op.Rescale a -> Buffer.add_string b (Printf.sprintf "rescale %%%d" a)
      | Op.Modswitch a ->
          Buffer.add_string b (Printf.sprintf "modswitch %%%d" a)
      | Op.Upscale (a, k) ->
          Buffer.add_string b (Printf.sprintf "upscale %%%d %d" a k));
      Buffer.add_char b '\n')
    p;
  Buffer.add_string b "ret";
  Array.iter
    (fun o -> Buffer.add_string b (Printf.sprintf " %%%d" o))
    (Program.outputs p);
  Buffer.add_char b '\n';
  Buffer.contents b

(* textual decoding: tokens are whitespace-separated; quoted strings
   carry their own lexer.  Errors report the 1-based line number. *)

let unquote line s =
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    fail line "expected a quoted string, got %s" s;
  let b = Buffer.create (n - 2) in
  let i = ref 1 in
  while !i < n - 1 do
    (match s.[!i] with
    | '\\' ->
        if !i + 1 >= n - 1 then fail line "dangling escape in %s" s;
        incr i;
        (match s.[!i] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 'x' ->
            if !i + 2 >= n - 1 then fail line "short \\x escape in %s" s;
            (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
            | Some code -> Buffer.add_char b (Char.chr code)
            | None -> fail line "bad \\x escape in %s" s);
            i := !i + 2
        | c -> fail line "unknown escape '\\%c'" c)
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

(* split into tokens; a quoted string (with escapes) is one token *)
let tokens line s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\t' | '\r' -> incr i
    | '"' ->
        let start = !i in
        incr i;
        let rec scan () =
          if !i >= n then fail line "unterminated string"
          else
            match s.[!i] with
            | '\\' ->
                if !i + 1 >= n then fail line "unterminated string";
                i := !i + 2;
                scan ()
            | '"' -> incr i
            | _ ->
                incr i;
                scan ()
        in
        scan ();
        out := String.sub s start (!i - start) :: !out
    | _ ->
        let start = !i in
        while
          !i < n
          && (match s.[!i] with ' ' | '\t' | '\r' -> false | _ -> true)
        do
          incr i
        done;
        out := String.sub s start (!i - start) :: !out);
    ()
  done;
  List.rev !out

let value_id line tok =
  if String.length tok < 2 || tok.[0] <> '%' then
    fail line "expected a value id like %%3, got %s" tok;
  match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
  | Some v when v >= 0 && v <= max_ops -> v
  | _ -> fail line "malformed value id %s" tok

let float_tok line tok =
  match float_of_string_opt tok with
  | Some f -> f
  | None -> fail line "expected a number, got %s" tok

let int_tok line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected an integer, got %s" tok

let decode_text text =
  match
    let lines = String.split_on_char '\n' text in
    let header, rest =
      match lines with
      | h :: rest -> (h, rest)
      | [] -> fail 0 "empty input"
    in
    if String.trim header <> text_header then
      fail 1 "bad header %S (want %S)" (String.trim header) text_header;
    let n_slots = ref 0 in
    let ops = ref [] in
    let n_ops = ref 0 in
    let outputs = ref None in
    List.iteri
      (fun i raw ->
        let line = i + 2 in
        if !n_ops > max_ops then fail line "op count exceeds cap";
        match tokens line raw with
        | [] -> ()
        | [ "slots"; n ] ->
            if !n_slots <> 0 then fail line "duplicate slots directive";
            let v = int_tok line n in
            if v <= 0 || v > max_slots then
              fail line "slot count %d out of range" v;
            n_slots := v
        | "ret" :: rest ->
            if !outputs <> None then fail line "duplicate ret";
            if rest = [] then fail line "ret needs at least one value";
            if List.length rest > max_outputs then
              fail line "output count exceeds cap";
            outputs :=
              Some (Array.of_list (List.map (value_id line) rest))
        | lhs :: "=" :: rhs ->
            if !outputs <> None then fail line "op after ret";
            let id = value_id line lhs in
            if id <> !n_ops then
              fail line "expected id %%%d, got %%%d (ids must be dense)"
                !n_ops id;
            let k =
              match rhs with
              | [ "input"; name; vt ] ->
                  let vt =
                    match vt with
                    | "cipher" -> Op.Cipher
                    | "plain" -> Op.Plain
                    | _ -> fail line "input type must be cipher or plain"
                  in
                  Op.Input { name = unquote line name; vt }
              | [ "const"; v ] -> Op.Const (float_tok line v)
              | "vconst" :: tag :: count :: vals ->
                  let count = int_tok line count in
                  if count <> List.length vals then
                    fail line "vconst claims %d value(s), has %d" count
                      (List.length vals);
                  Op.Vconst
                    { tag = unquote line tag;
                      values =
                        Array.of_list (List.map (float_tok line) vals) }
              | [ "add"; a; b ] -> Op.Add (value_id line a, value_id line b)
              | [ "sub"; a; b ] -> Op.Sub (value_id line a, value_id line b)
              | [ "mul"; a; b ] -> Op.Mul (value_id line a, value_id line b)
              | [ "neg"; a ] -> Op.Neg (value_id line a)
              | [ "rotate"; a; k ] ->
                  Op.Rotate (value_id line a, int_tok line k)
              | [ "rescale"; a ] -> Op.Rescale (value_id line a)
              | [ "modswitch"; a ] -> Op.Modswitch (value_id line a)
              | [ "upscale"; a; k ] ->
                  Op.Upscale (value_id line a, int_tok line k)
              | op :: _ -> fail line "unknown operation %s" op
              | [] -> fail line "missing right-hand side"
            in
            ops := k :: !ops;
            incr n_ops
        | _ -> fail line "expected 'slots N', '%%N = op ...' or 'ret ...'")
      rest;
    if !n_slots = 0 then fail 0 "missing slots directive";
    match !outputs with
    | None -> fail 0 "missing ret"
    | Some outputs -> (
        let ops = Array.of_list (List.rev !ops) in
        match Program.make ~ops ~outputs ~n_slots:!n_slots with
        | p -> p
        | exception Invalid_argument msg -> fail 0 "%s" msg)
  with
  | p -> Ok p
  | exception Fail e -> Error e
