type expr = Op.id

(* The dedup table keys on the intern uid (Intern.kind), not the raw
   Op.kind: O(1) integer keying instead of re-hashing whole kinds, and
   bit-exact float payload equality — polymorphic keying aliased
   [Const 0.0] with [Const (-0.0)] and could miss equal NaN kinds.

   The table value holds the interned node itself, not just the op id:
   intern records are weakly held, and if one died under a mid-build
   GC, re-interning an equal kind minted a fresh uid, the lookup
   missed, and the builder emitted a duplicate op — emission depended
   on collector timing (the full LeNet-5 stream used to carry ~145
   GC-duplicated rotations).  Keeping the node alive for the builder's
   lifetime makes emission a pure function of the call sequence, which
   is what lets the tensor frontend pin lowered-circuit digests. *)
type t = {
  ops : Op.kind Fhe_util.Vec.t;
  tbl : (int, Intern.t * Op.id) Hashtbl.t option;
  n_slots : int;
}

let create ?(dedup = true) ~n_slots () =
  { ops = Fhe_util.Vec.create ();
    tbl = (if dedup then Some (Hashtbl.create 1024) else None);
    n_slots }

let emit t k =
  match t.tbl with
  | None ->
      Fhe_util.Vec.push t.ops k;
      Fhe_util.Vec.length t.ops - 1
  | Some tbl -> (
      let node = Intern.kind k in
      match Hashtbl.find_opt tbl node.Intern.uid with
      | Some (_, id) -> id
      | None ->
          Fhe_util.Vec.push t.ops node.Intern.kind;
          let id = Fhe_util.Vec.length t.ops - 1 in
          Hashtbl.add tbl node.Intern.uid (node, id);
          id)

let input t ?(vt = Op.Cipher) name =
  (* Inputs are effectful declarations: never dedup, even with equal names. *)
  Fhe_util.Vec.push t.ops (Op.Input { name; vt });
  Fhe_util.Vec.length t.ops - 1

let const t v = emit t (Op.Const v)

let vconst t ?(tag = "") values =
  if Array.length values > t.n_slots then
    invalid_arg "Builder.vconst: too many values";
  (* stored unpadded: semantically zero-extended to the slot count *)
  emit t (Op.Vconst { values = Array.copy values; tag })

let add t a b = emit t (Op.Add (a, b))

let sub t a b = emit t (Op.Sub (a, b))

let mul t a b = emit t (Op.Mul (a, b))

let neg t a = emit t (Op.Neg a)

let rotate t a k =
  let k = Fhe_util.Bits.pos_rem k t.n_slots in
  if k = 0 then a else emit t (Op.Rotate (a, k))

let square t a = mul t a a

let rec add_many t = function
  | [] -> invalid_arg "Builder.add_many: empty"
  | [ e ] -> e
  | es ->
      (* Pairwise balanced reduction keeps multiplicative/addition depth low. *)
      let rec pair = function
        | [] -> []
        | [ e ] -> [ e ]
        | a :: b :: rest -> add t a b :: pair rest
      in
      add_many t (pair es)

let finish t ~outputs =
  if outputs = [] then invalid_arg "Builder.finish: no outputs";
  Program.make
    ~ops:(Fhe_util.Vec.to_array t.ops)
    ~outputs:(Array.of_list outputs)
    ~n_slots:t.n_slots

let n_slots t = t.n_slots
