(** The canonical IR wire format.

    Two self-describing encodings of {!Program.t} (and of compiled
    {!Managed.t}), both versioned:

    - {b binary}: a [FHEW]/[FHEM] magic, a version byte, and
      length-prefixed little-endian fields.  Exact: every float bit
      pattern round-trips.
    - {b textual}: a [fhe-wire/1] header followed by one op per line
      with quoted strings and hex-float literals, diffable and
      hand-editable.  Exact for finite floats; NaN payload bits collapse
      to the canonical NaN (which {!Intern.digest} does anyway).

    {b Round-trip contract} (tested over the Progen corpus):
    [decode (encode p)] and [decode_text (encode_text p)] both succeed
    and preserve {!Intern.digest}.

    {b Decode validation.}  Decoders never raise and never allocate a
    structure larger than the input bytes can justify: every claimed
    length is checked against the bytes actually present (plus hard
    ceilings) before any allocation, unknown tags/versions/magic are
    typed errors, and the decoded program is re-validated through
    {!Program.make} (dense ids, operand ordering, power-of-two slots)
    — so arbitrary hostile input produces [Error], not an exception,
    not an OOM.  This is the property the compile daemon's frame layer
    relies on. *)

type error = { at : int; msg : string }
(** [at] is a byte offset for the binary decoders, a 1-based line
    number for the textual decoder. *)

val pp_error : Format.formatter -> error -> unit

(** {1 Binary} *)

val version : int
(** Encoding version written (and required) by this build: [1]. *)

val encode : Program.t -> string

val decode : string -> (Program.t, error) result

val encode_managed : Managed.t -> string
(** The program body plus the scale/level annotations and the
    [rbits]/[wbits] parameters — what the compile daemon ships back. *)

val decode_managed : string -> (Managed.t, error) result
(** Structural validation only ({!Managed.make} length/parameter
    checks); callers wanting full legality run {!Validator.check} on
    the result, as {!Fhe_cache.Store} does for disk entries. *)

(** {1 Textual} *)

val encode_text : Program.t -> string

val decode_text : string -> (Program.t, error) result
