(** Hash-consing for {!Op.kind} and content digests for {!Program.t}.

    Interning maps every structurally-equal kind to one canonical,
    physically-shared value carrying a precomputed structural hash and a
    dense unique id.  Pass-level dedup tables ({!Builder}, {!Cse},
    {!Constfold}) key on the [uid], which turns their deep structural
    hashing/equality into an O(1) integer comparison, and the shared
    nodes shrink the resident size of generated circuits (convolutions
    repeat the same mask [Vconst] hundreds of times).

    Structural equality here is {e bit-exact} on float payloads, unlike
    the polymorphic [compare] the tables used before: [Const 0.0] and
    [Const (-0.0)] are distinct (they differ under IEEE signed-zero
    semantics), while every NaN payload is normalised to one canonical
    NaN (all NaNs are arithmetically interchangeable).  The old keying
    could both alias [0.0]/[-0.0] and miss equal NaN kinds whose
    payloads hashed differently.

    The intern table is global, weak (entries are reclaimed when the
    last program referencing them dies) and mutex-guarded, so interning
    is safe from any domain of a {!Fhe_par.Pool}. *)

type t = private {
  kind : Op.kind;  (** the canonical, physically shared representative *)
  hash : int;  (** precomputed structural hash (normalised floats) *)
  uid : int;  (** dense id: [equal_kind a b] iff equal [uid]s *)
}

val kind : Op.kind -> t
(** Intern a kind.  Two structurally equal kinds (same constructor,
    operand ids, and bit-normalised payloads) return the same node —
    same [kind] (physically), same [hash], same [uid]. *)

val equal_kind : Op.kind -> Op.kind -> bool
(** Bit-normalised structural equality (no interning). *)

val hash_kind : Op.kind -> int
(** The structural hash [kind k] would carry (no interning). *)

val table_size : unit -> int
(** Live entries in the global intern table (weak: GC-dependent). *)

(** {1 Program content digests}

    A 128-bit (MD5, hex-encoded) digest of a program's full structural
    content: every op with bit-normalised payloads, the output list and
    the slot count.  Two programs with equal digests are structurally
    equal for every purpose the compilers care about — the digest is
    the content address of the compilation cache ({!Fhe_cache}). *)

val digest : Program.t -> string
(** Hex MD5 of the canonical serialisation; 32 characters. *)
