(* Hash-consing and content digests.  Float payloads are compared and
   hashed by bit pattern with all NaNs collapsed to one canonical NaN:
   the polymorphic [compare] used by the old dedup tables both aliased
   0.0 with -0.0 and could miss structurally-equal NaN kinds whose
   payload bits hashed apart. *)

type t = { kind : Op.kind; hash : int; uid : int }

let canonical_nan = 0x7FF8000000000000L

let float_bits f =
  if Float.is_nan f then canonical_nan else Int64.bits_of_float f

let equal_kind (a : Op.kind) (b : Op.kind) =
  match (a, b) with
  | Op.Input { name = n1; vt = v1 }, Op.Input { name = n2; vt = v2 } ->
      v1 = v2 && String.equal n1 n2
  | Op.Const x, Op.Const y -> Int64.equal (float_bits x) (float_bits y)
  | ( Op.Vconst { tag = t1; values = v1 },
      Op.Vconst { tag = t2; values = v2 } ) ->
      String.equal t1 t2
      && Array.length v1 = Array.length v2
      &&
      let n = Array.length v1 in
      let rec go i =
        i >= n || (Int64.equal (float_bits v1.(i)) (float_bits v2.(i)) && go (i + 1))
      in
      go 0
  | Op.Add (a1, b1), Op.Add (a2, b2)
  | Op.Sub (a1, b1), Op.Sub (a2, b2)
  | Op.Mul (a1, b1), Op.Mul (a2, b2) ->
      a1 = a2 && b1 = b2
  | Op.Neg a1, Op.Neg a2 | Op.Rescale a1, Op.Rescale a2
  | Op.Modswitch a1, Op.Modswitch a2 ->
      a1 = a2
  | Op.Rotate (a1, k1), Op.Rotate (a2, k2) -> a1 = a2 && k1 = k2
  | Op.Upscale (a1, m1), Op.Upscale (a2, m2) -> a1 = a2 && m1 = m2
  | _ -> false

(* FNV-1a over the kind's canonical fields *)
let mix h x = (h * 0x01000193) lxor (x land max_int)

let mix64 h v =
  mix (mix h (Int64.to_int v)) (Int64.to_int (Int64.shift_right_logical v 32))

let tag_of = function
  | Op.Input _ -> 1 | Op.Const _ -> 2 | Op.Vconst _ -> 3 | Op.Add _ -> 4
  | Op.Sub _ -> 5 | Op.Mul _ -> 6 | Op.Neg _ -> 7 | Op.Rotate _ -> 8
  | Op.Rescale _ -> 9 | Op.Modswitch _ -> 10 | Op.Upscale _ -> 11

let hash_kind (k : Op.kind) =
  let h = mix 0x811C9DC5 (tag_of k) in
  match k with
  | Op.Input { name; vt } ->
      mix (mix h (Hashtbl.hash name)) (if vt = Op.Cipher then 1 else 0)
  | Op.Const v -> mix64 h (float_bits v)
  | Op.Vconst { tag; values } ->
      Array.fold_left
        (fun h v -> mix64 h (float_bits v))
        (mix h (Hashtbl.hash tag))
        values
  | Op.Add (a, b) | Op.Sub (a, b) | Op.Mul (a, b) -> mix (mix h a) b
  | Op.Neg a | Op.Rescale a | Op.Modswitch a -> mix h a
  | Op.Rotate (a, k) | Op.Upscale (a, k) -> mix (mix h a) k

module Node = struct
  type nonrec t = t

  let equal a b = equal_kind a.kind b.kind

  let hash a = a.hash
end

module W = Weak.Make (Node)

(* One global table: interning must give the same physical node whoever
   asks, including tasks on different pool domains — hence the mutex
   (Weak tables are not domain-safe).  Entries are weak, so kinds only
   referenced by dead programs are reclaimed with them. *)
let table = W.create 4096

let counter = ref 0

let lock = Mutex.create ()

let kind k =
  let h = hash_kind k in
  Mutex.lock lock;
  let cand = { kind = k; hash = h; uid = !counter } in
  let node = W.merge table cand in
  if node == cand then incr counter;
  Mutex.unlock lock;
  node

let table_size () =
  Mutex.lock lock;
  let n = W.count table in
  Mutex.unlock lock;
  n

(* ------------------------------------------------------------------ *)
(* content digest *)

let add_int b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let ser_kind b (k : Op.kind) =
  Buffer.add_uint8 b (tag_of k);
  match k with
  | Op.Input { name; vt } ->
      add_str b name;
      Buffer.add_uint8 b (if vt = Op.Cipher then 1 else 0)
  | Op.Const v -> Buffer.add_int64_le b (float_bits v)
  | Op.Vconst { tag; values } ->
      add_str b tag;
      add_int b (Array.length values);
      Array.iter (fun v -> Buffer.add_int64_le b (float_bits v)) values
  | Op.Add (a, o) | Op.Sub (a, o) | Op.Mul (a, o) ->
      add_int b a;
      add_int b o
  | Op.Neg a | Op.Rescale a | Op.Modswitch a -> add_int b a
  | Op.Rotate (a, k) | Op.Upscale (a, k) ->
      add_int b a;
      add_int b k

let digest p =
  let b = Buffer.create (64 * Program.n_ops p) in
  Buffer.add_string b "fhe-ir/1";
  add_int b (Program.n_slots p);
  add_int b (Program.n_ops p);
  Program.iteri (fun _ k -> ser_kind b k) p;
  let outs = Program.outputs p in
  add_int b (Array.length outs);
  Array.iter (fun o -> add_int b o) outs;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))
