open Fhe_ir

(** Deterministic random-program generation for property tests and the
    [fhec fuzz] harness.  Equal seeds give equal programs and inputs. *)

type t = {
  prog : Program.t;  (** an arithmetic-only DAG *)
  inputs : (string * float array) list;
      (** matching synthetic input vectors in [[-1, 1)] *)
}

type profile = {
  w_add : int;
  w_sub : int;
  w_mul : int;
  w_neg : int;
  w_rotate : int;
  w_square : int;  (** op-mix weights (relative, each >= 0, sum > 0) *)
  max_depth : int;
      (** multiplicative-depth cap: a mul/square that would push the
          operand depth sum past this is demoted to an add *)
  rotate_strides : int list;
      (** rotation amounts to draw from; [[]] = uniform in
          [[1, n_slots)] *)
  w_rotmask : int;
      (** weight of the rotate-then-mask idiom (one rotation followed by
          a 0/1 prefix-mask plaintext multiplication — the
          select-and-align step tensor lowerings emit).  0 (the
          default) reproduces the historical draw sequence exactly. *)
  rot_chain : int;
      (** rotations emitted per rotation pick, each with its own drawn
          amount (>= 1); the default 1 is the historical single
          rotation, draw-for-draw *)
}

val default_profile : profile
(** Equal weights, depth cap 4, uniform rotations — draw-for-draw the
    historical distribution, so fixed seeds keep their programs. *)

val make :
  ?n_slots:int -> ?size:int -> ?n_inputs:int -> ?profile:profile -> int -> t
(** [make seed] generates a program of roughly [size] random ops
    (default 25) over [n_inputs] cipher inputs (default 2) and a small
    plain-constant pool, on [n_slots]-slot vectors (default 16);
    multiplicative depth is capped so every compiler stays within a
    small modulus chain.  [profile] (default {!default_profile}) skews
    the op mix for coverage-guided generation
    ({!Fhe_check.Coverage} feeds uncovered-feature profiles back in). *)
