open Fhe_ir

(** Deterministic fault injection for managed programs.

    Each class corrupts a legal scale-management plan the way a compiler
    bug (or bit-flipped annotation) would, so tests can prove the
    validator and the fallback driver actually catch that failure mode —
    every corruption produced here violates at least one Table 2 rule,
    i.e. {!Fhe_ir.Validator.check} is guaranteed to reject it. *)

type cls =
  | Scale_off_by_one
      (** a ciphertext's recorded scale is off by one bit *)
  | Dropped_rescale
      (** a rescale op is deleted; its users read the unrescaled value *)
  | Level_overflow
      (** a ciphertext's level jumps past its modulus chain *)
  | Dangling_operand
      (** an operand edge is rewired to an unrelated value whose
          scale/level disagree *)

val all : cls list
(** Every class, in declaration order. *)

val name : cls -> string
(** Stable kebab-case label, e.g. ["dropped-rescale"]. *)

val pp : Format.formatter -> cls -> unit

val inject : cls -> seed:int -> Managed.t -> Managed.t option
(** [inject cls ~seed m] returns a corrupted copy of [m], or [None] when
    [m] has no injection site for this class (e.g. no rescale op to
    drop).  Equal seeds pick equal sites; [m] itself is never mutated. *)

(** {1 Wire faults}

    The transport-level failure modes of the compile daemon's protocol,
    driven from seeds exactly like the annotation faults above so the
    whole failure matrix is replayable: a given (class, seed, length)
    always yields the same concrete plan. *)

type wire_cls =
  | Truncated_frame  (** the frame ends mid-header or mid-payload *)
  | Bit_flipped_payload  (** one bit of the framed bytes is flipped *)
  | Slow_loris
      (** the peer sends a prefix, then stalls holding the connection *)
  | Mid_response_disconnect
      (** the peer vanishes partway through a message *)

val wire_all : wire_cls list

val wire_name : wire_cls -> string
(** Stable kebab-case label, e.g. ["slow-loris"]. *)

val pp_wire : Format.formatter -> wire_cls -> unit

type wire_plan =
  | Truncate of int  (** deliver only the first [n] bytes *)
  | Flip_bit of int  (** flip bit [i] of the delivered bytes *)
  | Stall of { prefix : int; delay_ms : int }
      (** deliver [prefix] bytes, then hold the connection silent *)
  | Disconnect of int  (** deliver [n] bytes, then close abruptly *)

val wire_plan : wire_cls -> seed:int -> len:int -> wire_plan
(** Pick this class's concrete plan for a payload of [len] bytes.
    Deterministic in (class, seed, len). *)

val wire_apply : wire_plan -> string -> string
(** The bytes the peer actually delivers under the plan ([Stall] and
    [Disconnect] deliver their prefix; the behavioural part — holding
    or closing the socket — is the transport harness's job). *)
