(* Random arithmetic-program generation, shared by the property tests,
   the `fhec fuzz` harness, and the coverage-guided conformance
   generator (Fhe_check.Coverage).

   Programs are DAGs over a couple of cipher inputs, a plain constant
   pool, and random add/sub/mul/neg/rotate nodes; multiplicative depth
   is kept moderate so every scale-management plan stays within a small
   modulus chain.

   A [profile] skews the op mix, the depth cap, and the rotation
   strides so callers can steer generation into corners (deep mul
   chains, power-of-two rotation cascades, ...) the uniform mix rarely
   reaches.  [default_profile] reproduces the historical distribution
   draw-for-draw: equal seeds keep producing the exact programs the
   fixed-seed fuzz alias and the property tests were pinned against. *)

open Fhe_ir

type t = {
  prog : Program.t;
  inputs : (string * float array) list;
}

type profile = {
  w_add : int;
  w_sub : int;
  w_mul : int;
  w_neg : int;
  w_rotate : int;
  w_square : int;
  max_depth : int;
  rotate_strides : int list;
  w_rotmask : int;
  rot_chain : int;
}

let default_profile =
  { w_add = 1; w_sub = 1; w_mul = 1; w_neg = 1; w_rotate = 1; w_square = 1;
    max_depth = 4; rotate_strides = []; w_rotmask = 0; rot_chain = 1 }

(* op selector: scan the weight ranges in declared order.  With the
   default profile the total is 6 and the scan maps a draw of [k] to
   op [k] — exactly the historical [Prng.int rng 6] dispatch.  The
   tensor-era [w_rotmask] range sits after the historical six so a zero
   weight leaves the scan (and every fixed-seed pin) untouched. *)
type picked = Padd | Psub | Pmul | Pneg | Protate | Psquare | Protmask

let pick_op rng pr =
  let total =
    pr.w_add + pr.w_sub + pr.w_mul + pr.w_neg + pr.w_rotate + pr.w_square
    + pr.w_rotmask
  in
  if total <= 0 then invalid_arg "Progen: profile weights sum to 0";
  let r = Fhe_util.Prng.int rng total in
  if r < pr.w_add then Padd
  else if r < pr.w_add + pr.w_sub then Psub
  else if r < pr.w_add + pr.w_sub + pr.w_mul then Pmul
  else if r < pr.w_add + pr.w_sub + pr.w_mul + pr.w_neg then Pneg
  else if r < pr.w_add + pr.w_sub + pr.w_mul + pr.w_neg + pr.w_rotate then
    Protate
  else if
    r < pr.w_add + pr.w_sub + pr.w_mul + pr.w_neg + pr.w_rotate + pr.w_square
  then Psquare
  else Protmask

let make ?(n_slots = 16) ?(size = 25) ?(n_inputs = 2)
    ?(profile = default_profile) seed =
  let rng = Fhe_util.Prng.create seed in
  let b = Builder.create ~n_slots () in
  let values = ref [] in
  let depth = Hashtbl.create 64 in
  let d e = Option.value ~default:0 (Hashtbl.find_opt depth e) in
  let push e de =
    Hashtbl.replace depth e (max de (d e));
    values := e :: !values
  in
  let pick () =
    let vs = Array.of_list !values in
    vs.(Fhe_util.Prng.int rng (Array.length vs))
  in
  let inputs =
    List.init n_inputs (fun i ->
        let name = Printf.sprintf "in%d" i in
        push (Builder.input b name) 0;
        ( name,
          Array.init n_slots (fun _ ->
              Fhe_util.Prng.uniform rng ~lo:(-1.0) ~hi:1.0) ))
  in
  push (Builder.const b 0.5) 0;
  push (Builder.const b (-0.25)) 0;
  push
    (Builder.vconst b ~tag:"gen"
       (Array.init n_slots (fun i -> float_of_int (i mod 3) /. 4.0)))
    0;
  let rotate_amount () =
    match profile.rotate_strides with
    | [] -> 1 + Fhe_util.Prng.int rng (n_slots - 1)
    | strides ->
        List.nth strides (Fhe_util.Prng.int rng (List.length strides))
  in
  (* a rotation pick emits a chain of [rot_chain] rotations (each with
     its own drawn amount) — the tensor-lowering idiom that stresses
     rotate composition; the default of 1 is the historical single
     rotation, draw-for-draw *)
  let rotate_chain x =
    let r = ref x in
    for _ = 1 to max 1 profile.rot_chain do
      r := Builder.rotate b !r (rotate_amount ())
    done;
    !r
  in
  (* rotate-then-mask: the select-and-align step of strided tensor
     layouts (one rotation, then a 0/1 prefix mask) *)
  let rotmask x =
    let rx = Builder.rotate b x (rotate_amount ()) in
    let len = 1 + Fhe_util.Prng.int rng (n_slots - 1) in
    let mask = Array.make len 1.0 in
    Builder.mul b rx (Builder.vconst b ~tag:(Printf.sprintf "mask%d" len) mask)
  in
  for _ = 1 to size do
    let a = pick () and c = pick () in
    let e, de =
      match pick_op rng profile with
      | Padd -> (Builder.add b a c, max (d a) (d c))
      | Psub -> (Builder.sub b a c, max (d a) (d c))
      | Pmul when d a + d c < profile.max_depth ->
          (Builder.mul b a c, max (d a) (d c) + 1)
      | Pmul -> (Builder.add b a c, max (d a) (d c))
      | Pneg -> (Builder.neg b a, d a)
      | Protate -> (rotate_chain a, d a)
      | Psquare when 2 * d a < profile.max_depth ->
          (Builder.square b a, d a + 1)
      | Psquare -> (Builder.add b a c, max (d a) (d c))
      | Protmask when d a < profile.max_depth -> (rotmask a, d a + 1)
      | Protmask -> (Builder.add b a c, max (d a) (d c))
    in
    push e de
  done;
  let outputs =
    match !values with v :: w :: _ when v <> w -> [ v; w ] | v :: _ -> [ v ] | [] -> assert false
  in
  let prog = Builder.finish b ~outputs in
  { prog; inputs }
