open Fhe_ir

type cls =
  | Scale_off_by_one
  | Dropped_rescale
  | Level_overflow
  | Dangling_operand

let all = [ Scale_off_by_one; Dropped_rescale; Level_overflow; Dangling_operand ]

let name = function
  | Scale_off_by_one -> "scale-off-by-one"
  | Dropped_rescale -> "dropped-rescale"
  | Level_overflow -> "level-overflow"
  | Dangling_operand -> "dangling-operand"

let pp ppf c = Format.pp_print_string ppf (name c)

let tag = function
  | Scale_off_by_one -> 1
  | Dropped_rescale -> 2
  | Level_overflow -> 3
  | Dangling_operand -> 4

let pick rng a = a.(Fhe_util.Prng.int rng (Array.length a))

let remake (m : Managed.t) ~prog ~scale ~level =
  Managed.make ~prog ~scale ~level ~rbits:m.Managed.rbits
    ~wbits:m.Managed.wbits

(* Annotation faults: perturb one value's recorded scale or level.  Any
   cipher value works for scale (every op kind constrains its result
   scale, and cipher inputs must sit exactly at the waterline); level
   faults need a non-leaf (input levels are only constrained through
   users). *)

let bump_scale rng (m : Managed.t) =
  let p = m.Managed.prog in
  let sites = ref [] in
  Program.iteri
    (fun i _ -> if Program.vtype p i = Op.Cipher then sites := i :: !sites)
    p;
  match !sites with
  | [] -> None
  | sites ->
      let i = pick rng (Array.of_list sites) in
      let scale = Array.copy m.Managed.scale in
      scale.(i) <- scale.(i) + (if Fhe_util.Prng.bool rng then 1 else -1);
      Some (remake m ~prog:p ~scale ~level:(Array.copy m.Managed.level))

let bump_level rng (m : Managed.t) =
  let p = m.Managed.prog in
  let sites = ref [] in
  Program.iteri
    (fun i k ->
      if Program.vtype p i = Op.Cipher && not (Op.is_leaf k) then
        sites := i :: !sites)
    p;
  match !sites with
  | [] -> None
  | sites ->
      let i = pick rng (Array.of_list sites) in
      let level = Array.copy m.Managed.level in
      level.(i) <- level.(i) + 8;
      Some (remake m ~prog:p ~scale:(Array.copy m.Managed.scale) ~level)

(* Structural fault: delete a rescale whose result is consumed somewhere;
   the users keep their annotations but now read the unrescaled value. *)

let drop_rescale rng (m : Managed.t) =
  let p = m.Managed.prog in
  let n = Program.n_ops p in
  let users = Analysis.users p in
  let sites = ref [] in
  Program.iteri
    (fun i k ->
      match k with
      | Op.Rescale _ when users.(i) <> [] -> sites := i :: !sites
      | _ -> ())
    p;
  match !sites with
  | [] -> None
  | sites ->
      let r = pick rng (Array.of_list sites) in
      let a = match Program.kind p r with Op.Rescale a -> a | _ -> assert false in
      let remap o = if o = r then a else if o < r then o else o - 1 in
      let old j' = if j' < r then j' else j' + 1 in
      let ops =
        Array.init (n - 1) (fun j' ->
            Op.map_operands remap (Program.kind p (old j')))
      in
      let outputs = Array.map remap (Program.outputs p) in
      let scale = Array.init (n - 1) (fun j' -> m.Managed.scale.(old j')) in
      let level = Array.init (n - 1) (fun j' -> m.Managed.level.(old j')) in
      let prog = Program.make ~ops ~outputs ~n_slots:(Program.n_slots p) in
      Some (remake m ~prog ~scale ~level)

(* Structural fault: rewire one cipher operand edge to an unrelated
   cipher value whose (scale, level) disagree — the SSA shape stays
   legal, the scale bookkeeping at the user no longer adds up. *)

let replace_slot k slot o' =
  match (k, slot) with
  | Op.Add (_, b), 0 -> Op.Add (o', b)
  | Op.Add (a, _), 1 -> Op.Add (a, o')
  | Op.Sub (_, b), 0 -> Op.Sub (o', b)
  | Op.Sub (a, _), 1 -> Op.Sub (a, o')
  | Op.Mul (_, b), 0 -> Op.Mul (o', b)
  | Op.Mul (a, _), 1 -> Op.Mul (a, o')
  | Op.Neg _, 0 -> Op.Neg o'
  | Op.Rotate (_, k), 0 -> Op.Rotate (o', k)
  | Op.Rescale _, 0 -> Op.Rescale o'
  | Op.Modswitch _, 0 -> Op.Modswitch o'
  | Op.Upscale (_, amt), 0 -> Op.Upscale (o', amt)
  | _ -> invalid_arg "Faults.replace_slot"

let rewire_operand rng (m : Managed.t) =
  let p = m.Managed.prog in
  let n = Program.n_ops p in
  let s = m.Managed.scale and l = m.Managed.level in
  let is_c i = Program.vtype p i = Op.Cipher in
  let edges = ref [] in
  Program.iteri
    (fun u k ->
      if not (Op.is_leaf k) then
        List.iteri
          (fun slot o -> if is_c o then edges := (u, slot, o) :: !edges)
          (Op.operands k))
    p;
  match !edges with
  | [] -> None
  | edges ->
      let edges = Array.of_list edges in
      let attempt () =
        let u, slot, o = pick rng edges in
        let candidates = ref [] in
        for o' = 0 to u - 1 do
          if o' <> o && is_c o' && (s.(o') <> s.(o) || l.(o') <> l.(o)) then
            candidates := o' :: !candidates
        done;
        match !candidates with
        | [] -> None
        | cs ->
            let o' = pick rng (Array.of_list cs) in
            let ops =
              Array.init n (fun j ->
                  let k = Program.kind p j in
                  if j = u then replace_slot k slot o' else k)
            in
            let prog =
              Program.make ~ops ~outputs:(Array.copy (Program.outputs p))
                ~n_slots:(Program.n_slots p)
            in
            Some
              (remake m ~prog ~scale:(Array.copy s) ~level:(Array.copy l))
      in
      let rec retry k = if k = 0 then None
        else match attempt () with Some m' -> Some m' | None -> retry (k - 1)
      in
      retry 64

let inject cls ~seed m =
  let rng = Fhe_util.Prng.create ((seed * 8) + tag cls) in
  match cls with
  | Scale_off_by_one -> bump_scale rng m
  | Dropped_rescale -> drop_rescale rng m
  | Level_overflow -> bump_level rng m
  | Dangling_operand -> rewire_operand rng m

(* ------------------------------------------------------------------ *)
(* Wire faults: what a hostile or failing peer does to the compile
   daemon's byte stream.  Each seed deterministically picks a concrete
   plan for a payload of a given length, so a whole failure matrix
   replays bit-identically in tests.  Byte-level plans (truncate, flip)
   are pure string transforms via [wire_apply]; behavioural plans
   (stall, disconnect) describe what the transport harness should do
   mid-stream. *)

type wire_cls =
  | Truncated_frame
  | Bit_flipped_payload
  | Slow_loris
  | Mid_response_disconnect

let wire_all =
  [ Truncated_frame; Bit_flipped_payload; Slow_loris;
    Mid_response_disconnect ]

let wire_name = function
  | Truncated_frame -> "truncated-frame"
  | Bit_flipped_payload -> "bit-flipped-payload"
  | Slow_loris -> "slow-loris"
  | Mid_response_disconnect -> "mid-response-disconnect"

let pp_wire ppf c = Format.pp_print_string ppf (wire_name c)

let wire_tag = function
  | Truncated_frame -> 1
  | Bit_flipped_payload -> 2
  | Slow_loris -> 3
  | Mid_response_disconnect -> 4

type wire_plan =
  | Truncate of int
  | Flip_bit of int
  | Stall of { prefix : int; delay_ms : int }
  | Disconnect of int

let wire_plan cls ~seed ~len =
  let rng = Fhe_util.Prng.create ((seed * 16) + wire_tag cls) in
  let cut () = if len = 0 then 0 else Fhe_util.Prng.int rng len in
  match cls with
  | Truncated_frame -> Truncate (cut ())
  | Bit_flipped_payload ->
      if len = 0 then Truncate 0
      else Flip_bit (Fhe_util.Prng.int rng (len * 8))
  | Slow_loris ->
      Stall { prefix = cut (); delay_ms = 50 + Fhe_util.Prng.int rng 200 }
  | Mid_response_disconnect -> Disconnect (cut ())

let wire_apply plan payload =
  match plan with
  | Truncate n | Disconnect n | Stall { prefix = n; _ } ->
      String.sub payload 0 (min n (String.length payload))
  | Flip_bit b ->
      let i = b / 8 in
      if i >= String.length payload then payload
      else begin
        let by = Bytes.of_string payload in
        Bytes.set by i
          (Char.chr (Char.code (Bytes.get by i) lxor (1 lsl (b mod 8))));
        Bytes.to_string by
      end
