module Heap = Fhe_util.Heap

type plan = {
  order : int array;
  free_after : int list array;
  peak : int;
  order_peak : int;
  resident : int;
  reordered : bool;
}

let sort_uniq_ints l = List.sort_uniq compare l

let plan ?(reorder = true) ~n ~deps ~root ~weight ~outputs () =
  (* Normalized views of the graph. *)
  let d = Array.init n (fun i -> sort_uniq_ints (deps i)) in
  let r = Array.init n root in
  Array.iteri
    (fun i l ->
      List.iter
        (fun j ->
          if j < 0 || j >= i then
            invalid_arg
              (Printf.sprintf "Schedule.plan: dep %d of op %d not backward" j i))
        l;
      if r.(i) > i || r.(r.(i)) <> r.(i) then
        invalid_arg (Printf.sprintf "Schedule.plan: unresolved root for op %d" i))
    d;
  let w = Array.init n (fun i -> if r.(i) = i then weight i else 0) in
  (* Distinct weighted dep-roots per op: the storage an op reads. *)
  let droots =
    Array.init n (fun i ->
        sort_uniq_ints
          (List.filter_map
             (fun j -> if w.(r.(j)) > 0 then Some r.(j) else None)
             d.(i)))
  in
  let is_out = Array.make n false in
  Array.iter (fun o -> is_out.(r.(o)) <- true) outputs;
  (* Remaining-use counts per root (ops not yet executed that read it). *)
  let base_uses = Array.make n 0 in
  Array.iter
    (fun dl -> List.iter (fun rho -> base_uses.(rho) <- base_uses.(rho) + 1) dl)
    droots;
  let resident = Array.fold_left ( + ) 0 w in

  (* Simulate an order: peak live weight with freeing + the free plan. *)
  let simulate order =
    let remaining = Array.copy base_uses in
    let live = Array.make n false in
    let free_after = Array.make (Array.length order) [] in
    let cur = ref 0 and peak = ref 0 in
    Array.iteri
      (fun p i ->
        if r.(i) = i && w.(i) > 0 then begin
          live.(i) <- true;
          cur := !cur + w.(i);
          if !cur > !peak then peak := !cur
        end;
        let kill rho =
          if live.(rho) && (not is_out.(rho)) && remaining.(rho) = 0 then begin
            live.(rho) <- false;
            cur := !cur - w.(rho);
            free_after.(p) <- rho :: free_after.(p)
          end
        in
        List.iter
          (fun rho ->
            remaining.(rho) <- remaining.(rho) - 1;
            kill rho)
          droots.(i);
        (* A root with no uses at all (dead code, non-output) dies at its
           own position. *)
        kill r.(i))
      order;
    (!peak, free_after)
  in

  let identity = Array.init n (fun i -> i) in
  let order_peak, id_free = simulate identity in

  let greedy () =
    (* Precedence graph over raw deps. *)
    let indeg = Array.make n 0 in
    let succs = Array.make n [] in
    Array.iteri
      (fun i dl ->
        indeg.(i) <- List.length dl;
        List.iter (fun j -> succs.(j) <- i :: succs.(j)) dl)
      d;
    let remaining = Array.copy base_uses in
    (* Net live-weight delta of executing op [i] right now: bytes it
       allocates minus bytes of dep-roots it is the last use of.
       Only ever decreases as other ops consume uses, so a lazy
       re-push heap is sound. *)
    let prio i =
      let gain = w.(i) in
      let freed =
        List.fold_left
          (fun acc rho ->
            if (not is_out.(rho)) && remaining.(rho) = 1 then acc + w.(rho)
            else acc)
          0 droots.(i)
      in
      gain - freed
    in
    let heap = Heap.create () in
    let key = Array.make n max_int in
    let push i =
      let p = prio i in
      key.(i) <- p;
      Heap.push heap ~prio:p i
    in
    let emitted = Array.make n false in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then push i
    done;
    let order = Array.make n 0 in
    let pos = ref 0 in
    let rec next () =
      match Heap.pop heap with
      | None -> None
      | Some i ->
          if emitted.(i) then next ()
          else
            let cur = prio i in
            if cur < key.(i) then begin
              (* Stale entry: priority dropped since push; re-queue. *)
              key.(i) <- cur;
              Heap.push heap ~prio:cur i;
              next ()
            end
            else Some i
    in
    let ok = ref true in
    while !pos < n && !ok do
      match next () with
      | None -> ok := false
      | Some i ->
          emitted.(i) <- true;
          order.(!pos) <- i;
          incr pos;
          List.iter (fun rho -> remaining.(rho) <- remaining.(rho) - 1) droots.(i);
          List.iter
            (fun j ->
              indeg.(j) <- indeg.(j) - 1;
              if indeg.(j) = 0 then push j)
            succs.(i)
    done;
    if !ok then Some order else None
  in

  let make order ~peak ~free_after ~reordered =
    { order; free_after; peak; order_peak; resident; reordered }
  in
  let identity_plan () =
    make identity ~peak:order_peak ~free_after:id_free ~reordered:false
  in
  if not reorder then identity_plan ()
  else
    match greedy () with
    | None -> identity_plan () (* cyclic deps can't happen; belt and braces *)
    | Some order ->
        let peak, free_after = simulate order in
        if peak > order_peak then identity_plan ()
        else make order ~peak ~free_after ~reordered:(order <> identity)
