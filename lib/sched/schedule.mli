(** Liveness-driven evaluation scheduling over a managed op graph.

    Given a DAG of [n] ops in a valid program order (every dependence
    points backwards), [plan] produces an execution order that respects
    all dependences while trying to minimize the peak number of live
    ciphertext bytes, together with an explicit free plan: after each
    position, which storage roots are dead and can be released.

    The graph is described by callbacks so the module stays independent
    of the IR:

    - [deps i] are the operand op ids of op [i] (each [< i]) — these are
      the {e precedence} edges: op [i] may only run after all of them.
    - [root i] is the {e storage root} of op [i]'s result: the op whose
      result physically backs [i]'s value. For a plain op this is [i]
      itself; for alias ops (deferred rescale, rotate-by-zero, plain
      passthroughs) it is the root of the aliased operand. [root i <= i],
      and [root (root i) = root i] (callers pass a fully resolved map).
      Liveness is computed on roots, so aliases neither allocate nor
      free anything.
    - [weight r] is the byte weight of root [r]'s value (0 for plains
      and for non-root ids). A value is live from the execution of its
      root until its last use; program outputs are pinned live forever.

    The scheduler is a greedy Sethi–Ullman-style list scheduler: among
    ready ops it picks the one with the smallest net live-weight delta
    (bytes allocated by the op minus bytes of operands whose last use it
    is), with op id as the deterministic tie-break. Both the greedy
    order and the identity (program) order are then simulated; if the
    greedy order does not improve peak live bytes, the identity order is
    kept — so [peak <= order_peak] always holds. *)

type plan = {
  order : int array;
      (** Execution order: a permutation of [0 .. n-1], topologically
          valid w.r.t. [deps]. *)
  free_after : int list array;
      (** [free_after.(p)] lists the storage roots whose last use is at
          position [p] of [order] (dead afterwards, never outputs).
          Indexed by position, not op id. *)
  peak : int;
      (** Peak live weight of [order], with freeing. *)
  order_peak : int;
      (** Peak live weight of the identity (program) order, with
          freeing. Always [>= peak]. *)
  resident : int;
      (** Total weight of all roots — the no-freeing peak that a naive
          executor holds at the end of the program. *)
  reordered : bool;
      (** True iff [order] differs from the identity order. *)
}

val plan :
  ?reorder:bool ->
  n:int ->
  deps:(int -> int list) ->
  root:(int -> int) ->
  weight:(int -> int) ->
  outputs:int array ->
  unit ->
  plan
(** [plan ~n ~deps ~root ~weight ~outputs ()] schedules ops
    [0 .. n-1]. With [~reorder:false] (default [true]) the identity
    order is used directly — the free plan and peak accounting are
    still computed, so a caller can measure program-order peaks.

    Raises [Invalid_argument] if some dependence does not point
    backwards ([deps i] containing [j >= i]) or a root is not resolved
    ([root i > i] or [root (root i) <> root i]). *)
