open Fhe_ir

(** Metamorphic relations over the rewrite passes.

    Every program transformation the toolchain applies — constant
    folding, CSE, DCE before scale management, and managed CSE/DCE
    after — must preserve two things: the function computed (checked by
    interpretation) and well-typedness (checked by
    {!Fhe_ir.Validator} plus the {!Invariants} reserve lemmas).  This
    harness states those relations once and applies all of them to any
    arithmetic program, so the property suite and [fhec check] exercise
    identical judgments. *)

type failure = {
  relation : string;
      (** e.g. ["constfold"], ["managed-cse"], ["optimize-then-compile"] *)
  detail : string;
}

val relations : string list
(** The relation names, in application order. *)

val check :
  ?rbits:int ->
  ?wbits:int ->
  ?xmax_bits:int ->
  ?noise:Fhe_sim.Noise.t ->
  Program.t ->
  inputs:(string * float array) list ->
  failure list
(** Apply every relation to an arithmetic program ([rbits] defaults to
    60, [wbits] to 25, [xmax_bits] to 0):
    - [identity], [constfold], [cse], [dce], [optimize] (all three
      composed): transformed program computes the same reference
      outputs;
    - [optimize-then-compile]: the optimized program compiled by the
      reserve pipeline still agrees with the {e original} source under
      the oracle and satisfies validator + reserve lemmas;
    - [managed-cse], [managed-dce], [managed-cse-dce]: the managed
      rewrites preserve legality, the reserve lemmas, and oracle
      agreement with the source.
    Never raises: internal exceptions become failures of their
    relation. *)

val pp_failure : Format.formatter -> failure -> unit
