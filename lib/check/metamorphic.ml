open Fhe_ir

type failure = { relation : string; detail : string }

let pp_failure ppf f =
  Format.fprintf ppf "metamorphic %s: %s" f.relation f.detail

let relations =
  [ "identity"; "constfold"; "cse"; "dce"; "optimize"; "optimize-then-compile";
    "managed-cse"; "managed-dce"; "managed-cse-dce" ]

(* exact reference comparison (tiny slack for float re-association) *)
let same_reference ~slack p q ~inputs =
  let a = Fhe_sim.Interp.run_reference p ~inputs in
  let b = Fhe_sim.Interp.run_reference q ~inputs in
  if Array.length a <> Array.length b then Some "output count changed"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i ra ->
        Array.iteri
          (fun j x ->
            let bound = slack *. (1.0 +. Float.abs x) in
            if !bad = None && Float.abs (x -. b.(i).(j)) > bound then
              bad :=
                Some
                  (Printf.sprintf "output %d slot %d: %g <> %g" i j x
                     b.(i).(j)))
          ra)
      a;
    !bad
  end

let check ?(rbits = 60) ?(wbits = 25) ?(xmax_bits = 0) ?noise p ~inputs =
  let failures = ref [] in
  let fail relation detail = failures := { relation; detail } :: !failures in
  let guarded relation f =
    try f () with e -> fail relation ("exception: " ^ Printexc.to_string e)
  in
  let slack = 1e-9 in
  (* 1. source-level rewrites preserve the reference semantics *)
  let arith relation (pass : Program.t -> Rewrite.result) =
    guarded relation (fun () ->
        let r = pass p in
        match same_reference ~slack p r.Rewrite.prog ~inputs with
        | None -> ()
        | Some d -> fail relation d)
  in
  arith "identity" Rewrite.identity;
  arith "constfold" Constfold.run;
  arith "cse" (Cse.run ?key:None);
  arith "dce" Dce.run;
  let optimize q =
    let q = (Constfold.run q).Rewrite.prog in
    let q = (Cse.run q).Rewrite.prog in
    (Dce.run q).Rewrite.prog
  in
  guarded "optimize" (fun () ->
      match same_reference ~slack p (optimize p) ~inputs with
      | None -> ()
      | Some d -> fail "optimize" d);
  (* 2. the compiled forms: well-typed under both judgments and
     oracle-equivalent to the *original* source *)
  let well_typed relation (m : Managed.t) =
    (match Validator.check m with
    | Ok () -> ()
    | Error es ->
        fail relation
          (Format.asprintf "validator: %a" Validator.pp_error (List.hd es)));
    (match Invariants.check m with
    | [] -> ()
    | v :: _ ->
        fail relation (Format.asprintf "%a" Invariants.pp_violation v));
    let o = Oracle.check ?noise p m ~inputs in
    if not (Oracle.ok o) then
      fail relation
        (Format.asprintf "%a" Oracle.pp_mismatch
           (List.hd o.Oracle.mismatches))
  in
  guarded "optimize-then-compile" (fun () ->
      well_typed "optimize-then-compile"
        (Reserve.Pipeline.compile ~xmax_bits ~rbits ~wbits (optimize p)));
  guarded "managed-rewrites" (fun () ->
      let m = Reserve.Pipeline.compile ~xmax_bits ~rbits ~wbits p in
      well_typed "managed-cse" (Managed.cse m);
      well_typed "managed-dce" (Managed.dce m);
      well_typed "managed-cse-dce" (Managed.dce (Managed.cse m)));
  List.rev !failures
