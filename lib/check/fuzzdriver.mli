(** The fuzz harness behind [fhec fuzz]: random programs plus injected
    faults through the resilient driver, sequentially or on a pool.

    Every seed's work — generated program, synthetic inputs, fault
    sites — derives from the seed alone, so per-seed results don't
    depend on which domain runs them; results are aggregated in seed
    order.  The whole report is therefore byte-identical at every pool
    width, which the [@par] stress test checks by diffing a sequential
    against a parallel run. *)

type stats = {
  seeds : int;  (** programs pushed through *)
  size : int;  (** approximate op count per program *)
  wbits : int;
  ok : int;  (** compiled in the requested configuration *)
  fellback : int;  (** compiled via the fallback chain *)
  failed : int;  (** failed with diagnostics (no crash) *)
  crashed : int;  (** escaped exceptions — always a bug *)
  classes : Fhe_sim.Faults.cls array;  (** [Fhe_sim.Faults.all] *)
  injected : int array;  (** per class: seeds with a fault injected *)
  detected : int array;  (** per class: injections the validator caught *)
  missed : int array;  (** per class: injections that slipped through *)
  nosite : int array;  (** per class: seeds with no injection site *)
  crash_msgs : string list;  (** at most 5, in seed order *)
}

val run :
  ?pool:Fhe_par.Pool.t ->
  ?size:int ->
  ?rbits:int ->
  ?wbits:int ->
  ?strict:bool ->
  seeds:int ->
  unit ->
  stats
(** [run ~seeds ()] fuzzes seeds [0 .. seeds-1] ([size] defaults to
    25, [rbits] 60, [wbits] 30, [strict] false).  With [pool], seeds
    are chunked across the pool; the stats are identical either way.
    Per-seed exceptions are captured as [crashed], never re-raised.
    @raise Invalid_argument when [seeds <= 0]. *)

val verdict : stats -> (unit, string) result
(** The gate [fhec fuzz] exits on: [Error] when anything crashed or
    any injected fault escaped the validator. *)

val pp : Format.formatter -> stats -> unit
(** The classic [fhec fuzz] report, including up to five crash
    messages. *)
