open Fhe_ir

type t = (string, unit) Hashtbl.t

let create () : t = Hashtbl.create 128

let bucket n =
  if n <= 0 then 0
  else if n <= 1 then 1
  else if n <= 2 then 2
  else if n <= 4 then 4
  else if n <= 8 then 8
  else if n <= 16 then 16
  else if n <= 32 then 32
  else if n <= 64 then 64
  else if n <= 128 then 128
  else 256

let features ?(rbits = 60) ?(wbits = 30) p =
  let feats = ref [] in
  let hit f = feats := f :: !feats in
  let hitf fmt = Printf.ksprintf hit fmt in
  let n_slots = Program.n_slots p in
  let rot_amounts = Hashtbl.create 8 in
  Program.iteri
    (fun i k ->
      match k with
      | Op.Input _ | Op.Const _ | Op.Vconst _ -> ()
      | Op.Add _ -> hit "op:add"
      | Op.Sub _ -> hit "op:sub"
      | Op.Neg _ -> hit "op:neg"
      | Op.Mul (a, b) ->
          if Program.vtype p a = Op.Cipher && Program.vtype p b = Op.Cipher
          then hit "op:mul-cc"
          else if Program.vtype p i = Op.Cipher then hit "op:mul-cp"
          else hit "op:mul-pp"
      | Op.Rotate (a, k) ->
          hit "op:rotate";
          Hashtbl.replace rot_amounts k ();
          if k = 1 || k = n_slots - 1 then hit "rot:unit"
          else if k > 1 && k land (k - 1) = 0 then hit "rot:pow2"
          else hit "rot:other";
          if 2 * k >= n_slots then hit "rot:halfspan";
          (* composed rotations — what tensor lowerings emit and the
             Constfold composition rule must canonicalize *)
          (match Program.kind p a with
          | Op.Rotate _ -> hit "rot:chain"
          | _ -> ())
      | Op.Rescale _ | Op.Modswitch _ | Op.Upscale _ -> hit "op:scale-mgmt")
    p;
  hitf "rot:distinct:%d" (bucket (Hashtbl.length rot_amounts));
  hitf "depth:%d" (Analysis.max_mult_depth p);
  let fanout = Array.fold_left max 0 (Analysis.n_uses p) in
  hitf "fanout:%d" (bucket fanout);
  hitf "arith:%d" (bucket (Program.n_arith p));
  hitf "outputs:%d" (Array.length (Program.outputs p));
  (* scale-management pressure of the forward baseline: which corners
     of the rescale/modswitch/upscale machinery this program reaches *)
  (try
     let m =
       Fhe_strategy.Registry.compile_uncached
         (Fhe_strategy.Registry.get_exn "eva")
         (Fhe_strategy.Strategy.config ~rbits ~wbits ())
         p
     in
     hitf "level:%d" (Managed.input_level m);
     hitf "rescale:%d" (bucket (Managed.n_rescale m));
     hitf "modswitch:%d" (bucket (Managed.n_modswitch m));
     hitf "upscale:%d" (bucket (Managed.n_upscale m))
   with _ -> hit "eva-rejects");
  List.sort_uniq compare !feats

let add ?rbits ?wbits (t : t) p =
  let fresh = ref 0 in
  List.iter
    (fun f ->
      if not (Hashtbl.mem t f) then begin
        Hashtbl.replace t f ();
        incr fresh
      end)
    (features ?rbits ?wbits p);
  !fresh

let cardinal = Hashtbl.length

let mem (t : t) f = Hashtbl.mem t f

let to_list (t : t) =
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) t [])

let profiles =
  let d = Fhe_sim.Progen.default_profile in
  [ ("uniform", d);
    ( "mul-chain",
      { d with Fhe_sim.Progen.w_mul = 5; w_square = 2; w_rotate = 0;
        max_depth = 6 } );
    ( "square-chain",
      { d with Fhe_sim.Progen.w_square = 6; w_mul = 0; w_add = 2;
        max_depth = 6 } );
    ( "rot-pow2",
      { d with Fhe_sim.Progen.w_rotate = 5; w_mul = 1;
        rotate_strides = [ 1; 2; 4; 8 ] } );
    ( "rot-wide",
      { d with Fhe_sim.Progen.w_rotate = 5;
        rotate_strides = [ 1; 7; 8; 15 ] } );
    ( "add-wide",
      { d with Fhe_sim.Progen.w_add = 5; w_sub = 3; w_mul = 1;
        max_depth = 2 } );
    ( "neg-rot",
      { d with Fhe_sim.Progen.w_neg = 3; w_rotate = 3; w_mul = 1 } );
    (* the tensor-lowering shape: rotation chains plus rotate-then-mask
       (strided layouts, masked flattens) at tensor-typical strides *)
    ( "tensor",
      { d with Fhe_sim.Progen.w_rotate = 4; w_mul = 2; w_rotmask = 4;
        rot_chain = 3; rotate_strides = [ 1; 2; 4; 7; 8 ] } ) ]

type candidate = {
  gen : Fhe_sim.Progen.t;
  profile : string;
  seed : int;
  fresh : int;
}

let generate ?(n_slots = 16) ?(sizes = [ 10; 25; 40; 60 ]) ?rbits ?wbits t
    ~seed ~budget =
  let profs = Array.of_list profiles in
  let np = Array.length profs in
  let yield = Array.make np 0 and uses = Array.make np 0 in
  let out = ref [] in
  for i = 0 to budget - 1 do
    (* warm-up: visit every profile once; then exploit by yield rate,
       with a deterministic round-robin explore every [np]-th draw *)
    let pi =
      if i < np then i
      else if i mod np = 0 then i / np mod np
      else begin
        let best = ref 0 and best_rate = ref neg_infinity in
        Array.iteri
          (fun j y ->
            let rate =
              float_of_int (y + 1) /. float_of_int (uses.(j) + 1)
            in
            if rate > !best_rate then begin
              best := j;
              best_rate := rate
            end)
          yield;
        !best
      end
    in
    let name, profile = profs.(pi) in
    let size = List.nth sizes (i mod List.length sizes) in
    let seed' = (seed * 1_000_003) + i in
    let g = Fhe_sim.Progen.make ~n_slots ~size ~profile seed' in
    let fresh = add ?rbits ?wbits t g.Fhe_sim.Progen.prog in
    uses.(pi) <- uses.(pi) + 1;
    yield.(pi) <- yield.(pi) + fresh;
    out := { gen = g; profile = name; seed = seed'; fresh } :: !out
  done;
  List.rev !out

let distill cs = List.filter (fun c -> c.fresh > 0) cs
