open Fhe_ir

(** Coverage-guided program generation.

    {!Fhe_sim.Progen}'s uniform op mix rarely produces the corners
    where scale managers actually differ: long cipher-mul chains (deep
    rescale cascades), power-of-two rotation ladders, wide shallow
    adds.  This module extracts a feature set from each generated
    program — op/shape features plus scale-management features of its
    EVA compilation (levels consumed, rescale/modswitch/upscale
    pressure) — and drives a battery of generation {!Fhe_sim.Progen.profile}s
    with a deterministic bandit: profiles that keep yielding unseen
    features get picked more.  Kept programs form the conformance
    corpus. *)

type t
(** A mutable coverage map (a set of feature labels). *)

val create : unit -> t

val features : ?rbits:int -> ?wbits:int -> Program.t -> string list
(** Feature labels of one program, sorted and without duplicates:
    [op:*] presence (with cipher×cipher vs cipher×plain muls split),
    [depth:*] multiplicative depth, [rot:*] rotation-amount classes,
    [fanout:*] / [arith:*] / [outputs:*] shape buckets, and — when EVA
    can compile the program at [rbits]/[wbits] (defaults 60/30) —
    [level:*] and [rescale:*]/[modswitch:*]/[upscale:*] pressure
    buckets. *)

val add : ?rbits:int -> ?wbits:int -> t -> Program.t -> int
(** Record a program's features; returns how many were unseen. *)

val cardinal : t -> int

val mem : t -> string -> bool

val to_list : t -> string list
(** Sorted. *)

val profiles : (string * Fhe_sim.Progen.profile) list
(** The generation battery: the default mix plus mul-chain, square-
    chain, power-of-two-rotation, wide-rotation, shallow-add, and
    neg/rotate profiles. *)

type candidate = {
  gen : Fhe_sim.Progen.t;
  profile : string;  (** battery entry that produced it *)
  seed : int;  (** exact [Progen.make] seed, for replay *)
  fresh : int;  (** unseen features it contributed *)
}

val generate :
  ?n_slots:int ->
  ?sizes:int list ->
  ?rbits:int ->
  ?wbits:int ->
  t ->
  seed:int ->
  budget:int ->
  candidate list
(** Run exactly [budget] candidate generations (sizes cycling through
    [sizes], default [[10; 25; 40; 60]]), steering profile choice by
    coverage yield with a deterministic bandit: profiles that keep
    producing unseen features are drawn more often.  All candidates are
    returned in generation order; deterministic in [seed] and the
    prior state of the map. *)

val distill : candidate list -> candidate list
(** The coverage corpus: candidates that contributed an unseen feature. *)
