open Fhe_ir

type compiler = Fhe_strategy.Strategy.t

let all_compilers = Fhe_strategy.Registry.all ()
let compiler_name = Fhe_strategy.Strategy.name
let of_name = Fhe_strategy.Registry.of_name

type entry = {
  compiler : compiler;
  managed : Managed.t option;
  compile_ms : float;
  input_level : int;
  modulus_bits : int;
  est_latency_us : float;
  validator_errors : string list;
  lemma_violations : Invariants.violation list;
  oracle : Oracle.report option;
  crash : string option;
}

let entry_ok e =
  e.crash = None && e.managed <> None && e.validator_errors = []
  && e.lemma_violations = []
  && match e.oracle with Some o -> Oracle.ok o | None -> false

type report = { label : string; entries : entry list }

let ok r = List.for_all entry_ok r.entries

let failures r =
  List.filter_map
    (fun e ->
      if entry_ok e then None
      else
        let what =
          match e.crash with
          | Some msg -> "crash: " ^ msg
          | None -> (
              match (e.validator_errors, e.lemma_violations, e.oracle) with
              | v :: _, _, _ -> "validator: " ^ v
              | [], l :: _, _ ->
                  Format.asprintf "%a" Invariants.pp_violation l
              | [], [], Some o when not (Oracle.ok o) ->
                  Format.asprintf "%a" Oracle.pp_mismatch
                    (List.hd o.Oracle.mismatches)
              | _ -> "no managed program produced")
        in
        Some (compiler_name e.compiler, what))
    r.entries

let run ?pool ?(rbits = 60) ?(wbits = 30) ?(xmax_bits = 0)
    ?(hecate_iterations = 60) ?noise ?(compilers = all_compilers)
    ?(verify_cache = true) ~label p ~inputs =
  let cfg =
    Fhe_strategy.Strategy.config ~xmax_bits ~iterations:hecate_iterations
      ~rbits ~wbits ()
  in
  let one compiler =
    let compile () = Fhe_strategy.Registry.compile_uncached compiler cfg p in
    (* every strategy goes through the content-addressed store; the
       compute path is bypassed so a miss is a genuinely cold compile *)
    let cached_compile () =
      if not (Fhe_cache.Store.active ()) then (compile (), false)
      else
        Fhe_cache.Store.with_managed_hit
          ~key:(Fhe_strategy.Strategy.cache_key compiler cfg p)
          (fun () -> Fhe_cache.Store.bypass compile)
    in
    match Fhe_util.Timer.time cached_compile with
    | (m, from_cache), compile_ms ->
        let validator_errors =
          match Validator.check m with
          | Ok () -> []
          | Error es ->
              List.map (Format.asprintf "%a" Validator.pp_error) es
        in
        let lemma_violations =
          let base = Invariants.check m in
          (* cache-soundness lemma: a served plan must agree with a
             fresh recompute op for op *)
          if from_cache && verify_cache then
            base
            @ Invariants.check_cache_consistency ~cached:m
                ~fresh:(Fhe_cache.Store.bypass compile)
          else base
        in
        let oracle =
          try Some (Oracle.check ?noise p m ~inputs)
          with _ -> None
        in
        {
          compiler;
          managed = Some m;
          compile_ms;
          input_level = Managed.input_level m;
          modulus_bits = Managed.input_level m * rbits;
          est_latency_us = Fhe_cost.Model.estimate m;
          validator_errors;
          lemma_violations;
          oracle;
          crash = None;
        }
    | exception e ->
        {
          compiler;
          managed = None;
          compile_ms = 0.0;
          input_level = 0;
          modulus_bits = 0;
          est_latency_us = 0.0;
          validator_errors = [];
          lemma_violations = [];
          oracle = None;
          crash = Some (Printexc.to_string e);
        }
  in
  let entries =
    match pool with
    | None -> List.map one compilers
    | Some pool -> Fhe_par.Pool.map pool one compilers
  in
  { label; entries }

let pp ppf r =
  Format.fprintf ppf "differential %s:" r.label;
  List.iter
    (fun e ->
      Format.fprintf ppf "@\n  %-12s " (compiler_name e.compiler);
      if entry_ok e then
        Format.fprintf ppf "ok  L=%d (%d bits)  %.2f ms  est %.3f s"
          e.input_level e.modulus_bits e.compile_ms
          (e.est_latency_us /. 1e6)
      else
        match failures { r with entries = [ e ] } with
        | (_, what) :: _ -> Format.fprintf ppf "FAIL  %s" what
        | [] -> Format.fprintf ppf "FAIL")
    r.entries
