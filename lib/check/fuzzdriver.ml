(* The fuzz harness behind `fhec fuzz`, as a library so the stress
   tests can run it sequentially and in parallel and compare the two.

   Each seed is independent: its program, its inputs, and its
   fault-injection sites all derive from the seed alone (the per-item
   stream-splitting scheme of Fhe_util.Prng), so the per-seed result
   is the same whichever worker domain runs it.  Aggregation folds the
   per-seed results in seed order, making the whole report
   byte-identical at every pool width. *)

open Fhe_ir

type seed_result = {
  outcome : [ `Ok | `Fallback | `Failed ] option;
      (* None when the seed crashed before the driver returned *)
  crash : string option;
  injected : bool array;
  detected : bool array;
  missed : bool array;
  nosite : bool array;
}

type stats = {
  seeds : int;
  size : int;
  wbits : int;
  ok : int;
  fellback : int;
  failed : int;
  crashed : int;
  classes : Fhe_sim.Faults.cls array;
  injected : int array;
  detected : int array;
  missed : int array;
  nosite : int array;
  crash_msgs : string list;
}

let classes = Array.of_list Fhe_sim.Faults.all

let one_seed ~size ~rbits ~wbits ~strict seed =
  let n_cls = Array.length classes in
  let r =
    {
      outcome = None;
      crash = None;
      injected = Array.make n_cls false;
      detected = Array.make n_cls false;
      missed = Array.make n_cls false;
      nosite = Array.make n_cls false;
    }
  in
  try
    let g = Fhe_sim.Progen.make ~size seed in
    let p = g.Fhe_sim.Progen.prog in
    let managed, outcome =
      match
        Reserve.Pipeline.compile_safe ~strict
          ~oracle_inputs:g.Fhe_sim.Progen.inputs ~rbits ~wbits p
      with
      | Ok o ->
          ( Some o.Reserve.Pipeline.managed,
            if o.Reserve.Pipeline.fallbacks = [] then `Ok else `Fallback )
      | Error _ -> (None, `Failed)
    in
    let r = { r with outcome = Some outcome } in
    (* corrupt a known-legal plan; the validator must reject every
       corruption class.  When the driver produced nothing (already an
       [`Failed] outcome) and EVA can't compile the configuration
       either, there is no plan to corrupt — skip injection for this
       seed rather than calling it a crash. *)
    let victim =
      match managed with
      | Some m -> Some m
      | None -> (
          let eva = Fhe_strategy.Registry.get_exn "eva" in
          let cfg = Fhe_strategy.Strategy.config ~rbits ~wbits () in
          match Fhe_strategy.Registry.compile eva cfg p with
          | m -> Some m
          | exception _ -> None)
    in
    Option.iter
      (fun victim ->
        Array.iteri
          (fun ci cls ->
            match Fhe_sim.Faults.inject cls ~seed victim with
            | None -> r.nosite.(ci) <- true
            | Some bad -> (
                r.injected.(ci) <- true;
                match Validator.check bad with
                | Error _ -> r.detected.(ci) <- true
                | Ok () -> r.missed.(ci) <- true))
          classes)
      victim;
    r
  with e ->
    { r with crash = Some (Printf.sprintf "seed %d: %s" seed (Printexc.to_string e)) }

let run ?pool ?(size = 25) ?(rbits = 60) ?(wbits = 30) ?(strict = false)
    ~seeds () =
  if seeds <= 0 then invalid_arg "Fuzzdriver.run: seeds must be positive";
  let all_seeds = List.init seeds (fun s -> s) in
  let work chunk = List.map (one_seed ~size ~rbits ~wbits ~strict) chunk in
  let results =
    match pool with
    | None -> work all_seeds
    | Some pool ->
        (* chunk the seeds so tiny programs amortize the queue lock *)
        let chunks = 4 * Fhe_par.Pool.domains pool in
        List.concat
          (Fhe_par.Pool.map pool work
             (Fhe_par.Chunk.split ~chunks all_seeds))
  in
  let n_cls = Array.length classes in
  let ok = ref 0 and fellback = ref 0 and failed = ref 0 and crashed = ref 0 in
  let injected = Array.make n_cls 0 and detected = Array.make n_cls 0 in
  let missed = Array.make n_cls 0 and nosite = Array.make n_cls 0 in
  let crash_msgs = ref [] in
  List.iter
    (fun r ->
      (match r.outcome with
      | Some `Ok -> incr ok
      | Some `Fallback -> incr fellback
      | Some `Failed -> incr failed
      | None -> ());
      (match r.crash with
      | Some msg ->
          incr crashed;
          if List.length !crash_msgs < 5 then crash_msgs := msg :: !crash_msgs
      | None -> ());
      let bump counts flags =
        Array.iteri (fun i b -> if b then counts.(i) <- counts.(i) + 1) flags
      in
      bump injected r.injected;
      bump detected r.detected;
      bump missed r.missed;
      bump nosite r.nosite)
    results;
  {
    seeds; size; wbits;
    ok = !ok; fellback = !fellback; failed = !failed; crashed = !crashed;
    classes; injected; detected; missed; nosite;
    crash_msgs = List.rev !crash_msgs;
  }

let verdict s =
  if s.crashed > 0 then Error "fuzz: uncaught exceptions in the driver"
  else if Array.exists (fun c -> c > 0) s.missed then
    Error "fuzz: some injected faults escaped the validator"
  else Ok ()

let pp ppf s =
  Format.fprintf ppf "fuzz: %d random programs (size ~%d, waterline %d)@\n"
    s.seeds s.size s.wbits;
  Format.fprintf ppf "  compiled (requested config) : %d@\n" s.ok;
  Format.fprintf ppf "  compiled via fallback       : %d@\n" s.fellback;
  Format.fprintf ppf "  failed with diagnostics     : %d@\n" s.failed;
  Format.fprintf ppf "  crashed (uncaught)          : %d@\n" s.crashed;
  Format.fprintf ppf "fault injection:";
  Array.iteri
    (fun ci cls ->
      Format.fprintf ppf
        "@\n  %-18s injected %4d  detected %4d  missed %4d  no-site %4d"
        (Fhe_sim.Faults.name cls) s.injected.(ci) s.detected.(ci)
        s.missed.(ci) s.nosite.(ci))
    s.classes;
  List.iter (fun m -> Format.fprintf ppf "@\n%s" m) s.crash_msgs
