open Fhe_ir

(** The semantic-equivalence oracle.

    A scale-management compiler may only change {e bookkeeping}: the
    managed program must compute the same function as its arithmetic
    source, up to the worst-case noise bound the simulator propagates
    ({!Fhe_sim.Interp}).  This module packages that check as a reusable
    judgment: interpret both programs on deterministic plaintext
    vectors and compare slot by slot against the per-output bound from
    {!Fhe_sim.Noise}, plus a small relative slack for floating-point
    re-association. *)

type mismatch = {
  output : int;  (** output index *)
  slot : int;
  got : float;  (** managed-program value *)
  expected : float;  (** reference value *)
  bound : float;  (** tolerance that was exceeded *)
}

type report = {
  mismatches : mismatch list;  (** in (output, slot) order; [] = agree *)
  outputs : int;  (** outputs compared *)
  slots : int;  (** slots per output *)
  max_abs_error : float;  (** worst observed |got - expected| *)
  worst_bound : float;  (** largest tolerance granted to any slot *)
}

val ok : report -> bool
(** No mismatches. *)

val synth_inputs : ?seed:int -> Program.t -> (string * float array) list
(** Deterministic vectors in [[-1, 1)] for {e every} input of the
    program (cipher and plain), in op order; equal seeds (default 42)
    give equal vectors.  Use when a program has no natural dataset
    (generated programs, parsed files). *)

val check :
  ?noise:Fhe_sim.Noise.t ->
  ?slack:float ->
  Program.t ->
  Managed.t ->
  inputs:(string * float array) list ->
  report
(** [check src m ~inputs] interprets [src] exactly and [m] under the
    noise model and compares.  A slot passes when
    [|got - expected| <= err_bound + slack * (1 + |expected|)]
    ([slack] defaults to [1e-9]).
    @raise Invalid_argument if the programs disagree on output count or
    an input vector is missing/too long (caller bugs, not compiler
    bugs). *)

val pp_mismatch : Format.formatter -> mismatch -> unit

val pp : Format.formatter -> report -> unit
