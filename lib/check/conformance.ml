module Reg = Fhe_apps.Registry

type kind = Semantic | Typing | Metamorphic_ | Crash

type failure = {
  subject : string;
  compiler : string;
  kind : kind;
  detail : string;
}

type summary = {
  programs : int;
  compilations : int;
  failures : failure list;
  coverage : int;
  corpus : int;
}

let ok s = s.failures = []

let kind_name = function
  | Semantic -> "semantic"
  | Typing -> "typing"
  | Metamorphic_ -> "metamorphic"
  | Crash -> "crash"

let entry_failures subject (e : Differential.entry) =
  let compiler = Differential.compiler_name e.Differential.compiler in
  let mk kind detail = { subject; compiler; kind; detail } in
  match e.Differential.crash with
  | Some msg -> [ mk Crash msg ]
  | None ->
      List.concat
        [ List.map
            (fun v -> mk Typing ("validator: " ^ v))
            e.Differential.validator_errors;
          List.map
            (fun v ->
              mk Typing (Format.asprintf "%a" Invariants.pp_violation v))
            e.Differential.lemma_violations;
          (match e.Differential.oracle with
          | Some o when not (Oracle.ok o) ->
              [ mk Semantic
                  (Format.asprintf "%a" Oracle.pp_mismatch
                     (List.hd o.Oracle.mismatches)) ]
          | Some _ -> []
          | None -> [ mk Semantic "oracle could not execute the program" ]) ]

let check_one ~rbits ~wbits ~xmax_bits ~hecate_iterations ?noise ~subject p
    ~inputs =
  let d =
    Differential.run ~rbits ~wbits ~xmax_bits ~hecate_iterations ?noise
      ~label:subject p ~inputs
  in
  let diff_failures =
    List.concat_map (entry_failures subject) d.Differential.entries
  in
  let meta_failures =
    List.map
      (fun (f : Metamorphic.failure) ->
        { subject; compiler = "-"; kind = Metamorphic_;
          detail = f.Metamorphic.relation ^ ": " ^ f.Metamorphic.detail })
      (Metamorphic.check ~rbits ~wbits ~xmax_bits ?noise p ~inputs)
  in
  (List.length d.Differential.entries, diff_failures @ meta_failures)

let run ?pool ?(rbits = 60) ?(wbits = 30) ?(hecate_iterations = 60) ?noise
    ?(apps = true) ?(gen = 0) ?(seed = 1) ?(progress = fun _ -> ()) () =
  (* Phase 1 (sequential): assemble the work list.  Coverage-guided
     generation is a bandit over the shared coverage map, so it stays
     sequential — candidate [i+1] depends on what [i] contributed.
     Each work item is (subject, thunk); the thunks are pure. *)
  let app_items =
    if not apps then []
    else
      List.map
        (fun (a : Reg.app) ->
          ( a.Reg.name,
            fun () ->
              let p = a.Reg.build () in
              let inputs = a.Reg.inputs ~seed:42 in
              let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
              check_one ~rbits ~wbits ~xmax_bits ~hecate_iterations ?noise
                ~subject:a.Reg.name p ~inputs ))
        Reg.all
  in
  let coverage = Coverage.create () in
  let corpus = ref 0 in
  let gen_items =
    if gen <= 0 then []
    else begin
      let candidates = Coverage.generate coverage ~seed ~budget:gen in
      corpus := List.length (Coverage.distill candidates);
      List.map
        (fun (c : Coverage.candidate) ->
          let subject =
            Printf.sprintf "gen-%d(%s)" c.Coverage.seed c.Coverage.profile
          in
          ( subject,
            fun () ->
              check_one ~rbits ~wbits ~xmax_bits:0 ~hecate_iterations ?noise
                ~subject c.Coverage.gen.Fhe_sim.Progen.prog
                ~inputs:c.Coverage.gen.Fhe_sim.Progen.inputs ))
        candidates
    end
  in
  let items = app_items @ gen_items in
  (* Phase 2 (parallel): run the checks.  Exceptions become Crash
     results inside the task, so one pathological program can't abort
     the sweep at any pool width. *)
  let check (subject, thunk) =
    match thunk () with
    | n, fs -> (subject, n, fs)
    | exception e ->
        ( subject, 0,
          [ { subject; compiler = "-"; kind = Crash;
              detail = Printexc.to_string e } ] )
  in
  let checked =
    match pool with
    | None -> List.map check items
    | Some pool -> Fhe_par.Pool.map pool check items
  in
  (* Phase 3 (sequential): fold the results in submission order, so
     progress lines and the failure list are byte-identical whatever
     the pool width. *)
  let programs = ref 0 and compilations = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (subject, n, fs) ->
      incr programs;
      compilations := !compilations + n;
      failures := List.rev_append fs !failures;
      progress
        (Printf.sprintf "%-24s %s" subject
           (if fs = [] then "ok"
            else Printf.sprintf "%d violation(s)" (List.length fs))))
    checked;
  {
    programs = !programs;
    compilations = !compilations;
    failures = List.rev !failures;
    coverage = Coverage.cardinal coverage;
    corpus = !corpus;
  }

let pp_failure ppf f =
  Format.fprintf ppf "%-11s %-24s %-12s %s"
    (kind_name f.kind) f.subject f.compiler f.detail

let pp ppf s =
  let count k =
    List.length (List.filter (fun f -> f.kind = k) s.failures)
  in
  if s.failures <> [] then begin
    Format.fprintf ppf "violations:@\n";
    List.iter (fun f -> Format.fprintf ppf "  %a@\n" pp_failure f) s.failures
  end;
  Format.fprintf ppf
    "conformance: %d program(s), %d compilation(s); %d semantic, %d typing, \
     %d metamorphic, %d crash violation(s)"
    s.programs s.compilations (count Semantic) (count Typing)
    (count Metamorphic_) (count Crash);
  if s.coverage > 0 then
    Format.fprintf ppf "@\ncoverage: %d feature(s), corpus of %d program(s)"
      s.coverage s.corpus
