module Reg = Fhe_apps.Registry

type kind = Semantic | Typing | Metamorphic_ | Crash

type failure = {
  subject : string;
  compiler : string;
  kind : kind;
  detail : string;
}

type summary = {
  programs : int;
  compilations : int;
  failures : failure list;
  coverage : int;
  corpus : int;
}

let ok s = s.failures = []

let kind_name = function
  | Semantic -> "semantic"
  | Typing -> "typing"
  | Metamorphic_ -> "metamorphic"
  | Crash -> "crash"

let entry_failures subject (e : Differential.entry) =
  let compiler = Differential.compiler_name e.Differential.compiler in
  let mk kind detail = { subject; compiler; kind; detail } in
  match e.Differential.crash with
  | Some msg -> [ mk Crash msg ]
  | None ->
      List.concat
        [ List.map
            (fun v -> mk Typing ("validator: " ^ v))
            e.Differential.validator_errors;
          List.map
            (fun v ->
              mk Typing (Format.asprintf "%a" Invariants.pp_violation v))
            e.Differential.lemma_violations;
          (match e.Differential.oracle with
          | Some o when not (Oracle.ok o) ->
              [ mk Semantic
                  (Format.asprintf "%a" Oracle.pp_mismatch
                     (List.hd o.Oracle.mismatches)) ]
          | Some _ -> []
          | None -> [ mk Semantic "oracle could not execute the program" ]) ]

let check_one ~rbits ~wbits ~xmax_bits ~hecate_iterations ?noise ~subject p
    ~inputs =
  let d =
    Differential.run ~rbits ~wbits ~xmax_bits ~hecate_iterations ?noise
      ~label:subject p ~inputs
  in
  let diff_failures =
    List.concat_map (entry_failures subject) d.Differential.entries
  in
  let meta_failures =
    List.map
      (fun (f : Metamorphic.failure) ->
        { subject; compiler = "-"; kind = Metamorphic_;
          detail = f.Metamorphic.relation ^ ": " ^ f.Metamorphic.detail })
      (Metamorphic.check ~rbits ~wbits ~xmax_bits ?noise p ~inputs)
  in
  (List.length d.Differential.entries, diff_failures @ meta_failures)

let run ?(rbits = 60) ?(wbits = 30) ?(hecate_iterations = 60) ?noise
    ?(apps = true) ?(gen = 0) ?(seed = 1) ?(progress = fun _ -> ()) () =
  let programs = ref 0 and compilations = ref 0 in
  let failures = ref [] in
  let note subject n fs =
    incr programs;
    compilations := !compilations + n;
    failures := List.rev_append fs !failures;
    progress
      (Printf.sprintf "%-24s %s" subject
         (if fs = [] then "ok"
          else Printf.sprintf "%d violation(s)" (List.length fs)))
  in
  if apps then
    List.iter
      (fun (a : Reg.app) ->
        let subject = a.Reg.name in
        match
          let p = a.Reg.build () in
          let inputs = a.Reg.inputs ~seed:42 in
          let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
          check_one ~rbits ~wbits ~xmax_bits ~hecate_iterations ?noise
            ~subject p ~inputs
        with
        | n, fs -> note subject n fs
        | exception e ->
            note subject 0
              [ { subject; compiler = "-"; kind = Crash;
                  detail = Printexc.to_string e } ])
      Reg.all;
  let coverage = Coverage.create () in
  let corpus = ref 0 in
  if gen > 0 then begin
    let candidates = Coverage.generate coverage ~seed ~budget:gen in
    corpus := List.length (Coverage.distill candidates);
    List.iter
      (fun (c : Coverage.candidate) ->
        let subject =
          Printf.sprintf "gen-%d(%s)" c.Coverage.seed c.Coverage.profile
        in
        match
          check_one ~rbits ~wbits ~xmax_bits:0 ~hecate_iterations ?noise
            ~subject c.Coverage.gen.Fhe_sim.Progen.prog
            ~inputs:c.Coverage.gen.Fhe_sim.Progen.inputs
        with
        | n, fs -> note subject n fs
        | exception e ->
            note subject 0
              [ { subject; compiler = "-"; kind = Crash;
                  detail = Printexc.to_string e } ])
      candidates
  end;
  {
    programs = !programs;
    compilations = !compilations;
    failures = List.rev !failures;
    coverage = Coverage.cardinal coverage;
    corpus = !corpus;
  }

let pp_failure ppf f =
  Format.fprintf ppf "%-11s %-24s %-12s %s"
    (kind_name f.kind) f.subject f.compiler f.detail

let pp ppf s =
  let count k =
    List.length (List.filter (fun f -> f.kind = k) s.failures)
  in
  if s.failures <> [] then begin
    Format.fprintf ppf "violations:@\n";
    List.iter (fun f -> Format.fprintf ppf "  %a@\n" pp_failure f) s.failures
  end;
  Format.fprintf ppf
    "conformance: %d program(s), %d compilation(s); %d semantic, %d typing, \
     %d metamorphic, %d crash violation(s)"
    s.programs s.compilations (count Semantic) (count Typing)
    (count Metamorphic_) (count Crash);
  if s.coverage > 0 then
    Format.fprintf ppf "@\ncoverage: %d feature(s), corpus of %d program(s)"
      s.coverage s.corpus
