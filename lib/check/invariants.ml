open Fhe_ir

type violation = { op : Op.id; rule : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "op %%%d violates %s: %s" v.op v.rule v.detail

let check (m : Managed.t) =
  let p = m.Managed.prog in
  let prm = Reserve.Rtype.params ~rbits:m.Managed.rbits ~wbits:m.Managed.wbits in
  let rho i = Managed.reserve m i in
  let level i = m.Managed.level.(i) in
  let scale i = m.Managed.scale.(i) in
  let is_cipher i = Program.vtype p i = Op.Cipher in
  let input_l = Managed.input_level m in
  let out = ref [] in
  let fail op rule detail = out := { op; rule; detail } :: !out in
  let failf op rule fmt = Format.kasprintf (fail op rule) fmt in
  Program.iteri
    (fun i k ->
      if rho i < 0 then
        failf i "reserve-nonnegative" "reserve %d < 0 (scale %d, level %d)"
          (rho i) (scale i) (level i);
      if is_cipher i then begin
        (* the waterline lemma, stated through the principal level *)
        let principal = Reserve.Rtype.principal_level prm (rho i) in
        if level i < principal then
          failf i "principal-level"
            "level %d below principal level %d of reserve %d" (level i)
            principal (rho i);
        if input_l > 0 && level i > input_l then
          failf i "level-within-modulus" "level %d exceeds input level %d"
            (level i) input_l
      end;
      match k with
      | Op.Mul (a, b) when is_cipher a && is_cipher b ->
          if level a <> level b then
            failf i "mul-reserve" "operand levels differ (%d vs %d)" (level a)
              (level b)
          else begin
            (* Equation Mul: ρ1 + ρ2 = ρ + l·rbits at the common level *)
            let l = level a in
            if rho a + rho b <> rho i + (l * m.Managed.rbits) then
              failf i "mul-reserve"
                "reserve %d + %d <> result reserve %d + %d*rbits" (rho a)
                (rho b) (rho i) l
          end
      | Op.Mul (a, b) when is_cipher a || is_cipher b ->
          let pl = if is_cipher a then b else a in
          if scale pl < m.Managed.wbits then
            failf i "pmul-waterline"
              "plain operand %%%d encoded at scale %d < waterline %d" pl
              (scale pl) m.Managed.wbits
      | Op.Add (a, b) | Op.Sub (a, b) ->
          if is_cipher a && is_cipher b then begin
            if level a <> level b || rho a <> rho b then
              failf i "add-reserve"
                "operands (reserve %d @ level %d) vs (reserve %d @ level %d)"
                (rho a) (level a) (rho b) (level b)
            else if rho i <> rho a || level i <> level a then
              failf i "add-reserve"
                "result (reserve %d @ level %d) not inherited from operands \
                 (reserve %d @ level %d)"
                (rho i) (level i) (rho a) (level a)
          end
      | Op.Rescale a when is_cipher i ->
          if rho i <> rho a then
            failf i "rescale-invariant" "reserve changed %d -> %d" (rho a)
              (rho i);
          if level i <> level a - 1 then
            failf i "rescale-invariant" "level %d -> %d (expected one drop)"
              (level a) (level i)
      | Op.Modswitch a when is_cipher i ->
          if rho i <> rho a - m.Managed.rbits then
            failf i "modswitch-reserve"
              "reserve %d -> %d (expected a drop of rbits=%d)" (rho a) (rho i)
              m.Managed.rbits
      | Op.Upscale (a, bits) when is_cipher i ->
          if rho i <> rho a - bits then
            failf i "upscale-reserve" "reserve %d -> %d (expected a drop of %d)"
              (rho a) (rho i) bits
      | _ -> ())
    p;
  List.rev !out

let ok m = check m = []

(* The cached program must agree with a fresh recompute op for op: same
   structure (interned-kind equality, so float payloads compare
   bit-exactly) and same reserve typing.  Any disagreement means the
   cache served a stale or corrupted plan. *)
let check_cache_consistency ~cached ~fresh =
  let out = ref [] in
  let fail op detail = out := { op; rule = "cache-consistency"; detail } :: !out in
  let failf op fmt = Format.kasprintf (fail op) fmt in
  let pc = cached.Managed.prog and pf = fresh.Managed.prog in
  if
    cached.Managed.rbits <> fresh.Managed.rbits
    || cached.Managed.wbits <> fresh.Managed.wbits
  then
    failf 0 "params differ: cached (rbits %d, wbits %d) vs fresh (%d, %d)"
      cached.Managed.rbits cached.Managed.wbits fresh.Managed.rbits
      fresh.Managed.wbits;
  if Program.n_slots pc <> Program.n_slots pf then
    failf 0 "slot count differs: cached %d vs fresh %d" (Program.n_slots pc)
      (Program.n_slots pf);
  if Program.n_ops pc <> Program.n_ops pf then
    failf 0 "op count differs: cached %d vs fresh %d" (Program.n_ops pc)
      (Program.n_ops pf)
  else begin
    Program.iteri
      (fun i k ->
        if not (Intern.equal_kind k (Program.kind pf i)) then
          failf i "op kind differs from recompute";
        if cached.Managed.scale.(i) <> fresh.Managed.scale.(i) then
          failf i "scale %d <> recomputed %d" cached.Managed.scale.(i)
            fresh.Managed.scale.(i);
        if cached.Managed.level.(i) <> fresh.Managed.level.(i) then
          failf i "level %d <> recomputed %d" cached.Managed.level.(i)
            fresh.Managed.level.(i);
        if Managed.reserve cached i <> Managed.reserve fresh i then
          failf i "reserve %d <> recomputed %d" (Managed.reserve cached i)
            (Managed.reserve fresh i))
      pc;
    if Program.outputs pc <> Program.outputs pf then
      failf 0 "output list differs from recompute"
  end;
  List.rev !out
