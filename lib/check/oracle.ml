open Fhe_ir

type mismatch = {
  output : int;
  slot : int;
  got : float;
  expected : float;
  bound : float;
}

type report = {
  mismatches : mismatch list;
  outputs : int;
  slots : int;
  max_abs_error : float;
  worst_bound : float;
}

let ok r = r.mismatches = []

let synth_inputs ?(seed = 42) p =
  let rng = Fhe_util.Prng.create seed in
  let n_slots = Program.n_slots p in
  let acc = ref [] in
  Program.iteri
    (fun _ k ->
      match k with
      | Op.Input { name; _ } ->
          acc :=
            ( name,
              Array.init n_slots (fun _ ->
                  Fhe_util.Prng.uniform rng ~lo:(-1.0) ~hi:1.0) )
            :: !acc
      | _ -> ())
    p;
  List.rev !acc

let check ?noise ?(slack = 1e-9) src m ~inputs =
  let refs = Fhe_sim.Interp.run_reference src ~inputs in
  let outs = Fhe_sim.Interp.run ?noise m ~inputs in
  if Array.length refs <> Array.length outs then
    invalid_arg "Oracle.check: output count mismatch";
  let mismatches = ref [] in
  let max_abs_error = ref 0.0 and worst_bound = ref 0.0 in
  let slots = ref 0 in
  Array.iteri
    (fun i (v : Fhe_sim.Interp.value) ->
      let r = refs.(i) in
      slots := max !slots (Array.length v.Fhe_sim.Interp.data);
      Array.iteri
        (fun j x ->
          let bound =
            v.Fhe_sim.Interp.err +. (slack *. (1.0 +. Float.abs r.(j)))
          in
          let err = Float.abs (x -. r.(j)) in
          max_abs_error := Float.max !max_abs_error err;
          worst_bound := Float.max !worst_bound bound;
          if err > bound then
            mismatches :=
              { output = i; slot = j; got = x; expected = r.(j); bound }
              :: !mismatches)
        v.Fhe_sim.Interp.data)
    outs;
  {
    mismatches = List.rev !mismatches;
    outputs = Array.length outs;
    slots = !slots;
    max_abs_error = !max_abs_error;
    worst_bound = !worst_bound;
  }

let pp_mismatch ppf m =
  Format.fprintf ppf "output %d slot %d: got %g, expected %g (bound %g)"
    m.output m.slot m.got m.expected m.bound

let pp ppf r =
  if ok r then
    Format.fprintf ppf "oracle: %d output(s) agree (max err %g <= bound %g)"
      r.outputs r.max_abs_error r.worst_bound
  else
    Format.fprintf ppf "oracle: %d mismatch(es)@\n%a"
      (List.length r.mismatches)
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_mismatch)
      r.mismatches
