(** The machine-readable perf baseline ([BENCH_compile.json]).

    One flat record per (app, compiler): compile time, consumed modulus
    (the encryption parameter [L] and [L·rbits] bits), and the Table 3
    latency estimate.  The emitter, a dependency-free JSON parser, and
    the gate comparator live together so the schema has exactly one
    owner: `bench json` writes the file, `bench gate` re-measures and
    diffs against it, and future PRs inherit a mechanical regression
    check instead of eyeballing tables. *)

(** {1 A minimal JSON tree} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact, valid JSON; strings are escaped. *)

val parse : string -> (json, string) result
(** Strict little parser (objects, arrays, strings with the common
    escapes, numbers, [true]/[false]/[null]); [Error] carries the
    offending position. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]. *)

(** {1 The bench-compile schema} *)

val schema : string
(** ["fhe-bench-compile/v7"]. *)

val schema_v6 : string
(** ["fhe-bench-compile/v6"]: the pre-memory-accounting schema, still
    accepted by {!run_of_json}. *)

val schema_v5 : string
(** ["fhe-bench-compile/v5"]: the pre-portfolio schema, still accepted
    by {!run_of_json}. *)

val schema_v4 : string
(** ["fhe-bench-compile/v4"]: the pre-exec schema, still accepted by
    {!run_of_json}. *)

val schema_v3 : string
(** ["fhe-bench-compile/v3"]: the pre-serve schema, still accepted by
    {!run_of_json}. *)

val schema_v2 : string
(** ["fhe-bench-compile/v2"]: the pre-cache schema, still accepted by
    {!run_of_json}. *)

val schema_v1 : string
(** ["fhe-bench-compile/v1"]: the pre-multicore schema, still
    accepted by {!run_of_json}. *)

type exec_stats = {
  exec_ms : float;
      (** measured encrypt + eval + decrypt wall time on the real CKKS
          backend (keygen excluded: it is per-context, not per-run) *)
  encrypt_ms : float;
  eval_ms : float;
  decrypt_ms : float;
  keygen_ms : float;
  max_err : float;
      (** max |decrypted - reference| over all output slots, against
          the plaintext interpreter on the same seeded inputs *)
  peak_ct_bytes : int;
      (** measured peak live ciphertext bytes under the scheduler (v7;
          0 = not measured).  Deterministic: a byte count, not a wall
          clock. *)
  order_ct_bytes : int;
      (** analytic peak of program-order execution with freeing — the
          scheduler's "before" number (v7) *)
  resident_ct_bytes : int;
      (** analytic no-freeing total ciphertext bytes (v7) *)
  peak_key_bytes : int;
      (** high-water resident switch-key bytes (v7) *)
}
(** The [bench exec] measured-runtime snapshot (v5, memory accounting
    since v7), taken on the exec-scale variant of each app. *)

type measurement = {
  app : string;
  compiler : string;  (** {!Differential.compiler_name} label *)
  compile_ms : float;  (** cold: measured under a bypassed cache *)
  warm_compile_ms : float;
      (** the same compile served from the content-addressed cache,
          including digest/key cost (v3; 0 = not measured) *)
  input_level : int;
  modulus_bits : int;
  est_latency_us : float;
  exec : exec_stats option;  (** v5; [None] in compile-only runs *)
}

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  cache_poisoned : int;
}
(** {!Fhe_cache.Store} counters over the measurement batch (v3). *)

val no_cache_stats : cache_stats

type serve_stats = {
  serve_requests : int;  (** requests issued by the load generator *)
  serve_qps : float;  (** completed (ok + degraded) per second *)
  serve_p50_ms : float;  (** warm-cache served-compile latency *)
  serve_p99_ms : float;
  serve_shed : int;  (** admission-control refusals during the run *)
  serve_timeouts : int;  (** deadline-budget expiries *)
  serve_degraded : int;  (** fallback-chain replies *)
}
(** The [bench serve] load-test snapshot (v4). *)

type portfolio_entry = {
  p_app : string;
  p_winner : string;  (** canonical strategy name of the best leg *)
  p_win_est_latency_us : float;
  p_legs : (string * float) list;
      (** every successful leg's est latency, in registry order *)
}

type portfolio_stats = {
  p_strategies : string list;  (** names raced, in registry order *)
  p_wins : (string * int) list;  (** per-strategy win counts *)
  p_entries : portfolio_entry list;
}
(** The [bench portfolio] snapshot (v6): deterministic cost-model
    numbers only, so the file byte-compares across pool widths. *)

type run = {
  rbits : int;
  wbits : int;
  domains : int;  (** pool width the run was measured at (v2; v1 = 1) *)
  wall_time_par : float;
      (** wall time (ms) of the whole measurement batch at that width
          (v2; v1 = 0) *)
  cache : cache_stats;  (** v3; zeros for v1/v2 files *)
  serve : serve_stats option;  (** v4; [None] in older files and in
                                   runs measured without a daemon *)
  portfolio : portfolio_stats option;
      (** v6; [None] in older files and in runs that never raced the
          strategies *)
  entries : measurement list;
}

val run_to_json : run -> json
(** Always emits the v6 schema. *)

val run_of_json : json -> (run, string) result
(** Accepts v6 through v1 files (v1 defaults [domains] to 1 and
    [wall_time_par] to 0; pre-v3 files get zeroed cache stats and
    [warm_compile_ms]; pre-v4 files get [serve = None]; pre-v5 files
    get [exec = None] on every entry; pre-v6 files get
    [portfolio = None]); rejects unknown schemas and malformed
    entries. *)

val compare_runs :
  ?time_slack:float ->
  ?latency_slack:float ->
  ?exec_slack:float ->
  ?err_slack:float ->
  ?mem_slack:float ->
  baseline:run ->
  current:run ->
  unit ->
  string list
(** The perf gate: one message per regression, [] = gate passes.
    Checked per (app, compiler) pair of the baseline:
    - the pair must still exist;
    - [modulus_bits] must not grow at all (consumed modulus is exact);
    - [est_latency_us] must stay within [1 + latency_slack]
      (default 0.10) of the baseline;
    - [compile_ms] must stay within [time_slack] (default 3.0, wall
      clocks are noisy) times the baseline;
    - a measured [warm_compile_ms] (> 0) must not exceed the cold
      baseline [compile_ms] (with 0.05 ms of grace for timer jitter):
      the cache must never make a compile slower than compiling;
    - when the baseline entry carries [exec] stats, the current entry
      must too, its [exec_ms] must stay within [exec_slack] (default
      1.75) times the baseline, and its [max_err] within [err_slack]
      (default 4.0) times the baseline (floored at 1e-9 absolute so
      exact baselines don't gate on noise);
    - baseline [peak_ct_bytes] / [peak_key_bytes] > 0 demand the
      current values stay within [mem_slack] (default 1.10, tight
      because byte counts are deterministic) times the baseline. *)
