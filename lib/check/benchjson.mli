(** The machine-readable perf baseline ([BENCH_compile.json]).

    One flat record per (app, compiler): compile time, consumed modulus
    (the encryption parameter [L] and [L·rbits] bits), and the Table 3
    latency estimate.  The emitter, a dependency-free JSON parser, and
    the gate comparator live together so the schema has exactly one
    owner: `bench json` writes the file, `bench gate` re-measures and
    diffs against it, and future PRs inherit a mechanical regression
    check instead of eyeballing tables. *)

(** {1 A minimal JSON tree} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact, valid JSON; strings are escaped. *)

val parse : string -> (json, string) result
(** Strict little parser (objects, arrays, strings with the common
    escapes, numbers, [true]/[false]/[null]); [Error] carries the
    offending position. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]. *)

(** {1 The bench-compile schema} *)

val schema : string
(** ["fhe-bench-compile/v2"]. *)

val schema_v1 : string
(** ["fhe-bench-compile/v1"]: the pre-multicore schema, still
    accepted by {!run_of_json}. *)

type measurement = {
  app : string;
  compiler : string;  (** {!Differential.compiler_name} label *)
  compile_ms : float;
  input_level : int;
  modulus_bits : int;
  est_latency_us : float;
}

type run = {
  rbits : int;
  wbits : int;
  domains : int;  (** pool width the run was measured at (v2; v1 = 1) *)
  wall_time_par : float;
      (** wall time (ms) of the whole measurement batch at that width
          (v2; v1 = 0) *)
  entries : measurement list;
}

val run_to_json : run -> json
(** Always emits the v2 schema. *)

val run_of_json : json -> (run, string) result
(** Accepts v2 and v1 files (v1 defaults [domains] to 1 and
    [wall_time_par] to 0); rejects unknown schemas and malformed
    entries. *)

val compare_runs :
  ?time_slack:float ->
  ?latency_slack:float ->
  baseline:run ->
  current:run ->
  unit ->
  string list
(** The perf gate: one message per regression, [] = gate passes.
    Checked per (app, compiler) pair of the baseline:
    - the pair must still exist;
    - [modulus_bits] must not grow at all (consumed modulus is exact);
    - [est_latency_us] must stay within [1 + latency_slack]
      (default 0.10) of the baseline;
    - [compile_ms] must stay within [time_slack] (default 3.0, wall
      clocks are noisy) times the baseline. *)
