(** The conformance subsystem's front door ([fhec check]).

    Pushes a set of programs — the eight registry applications and/or a
    coverage-guided generated batch — through the {!Differential}
    driver and the {!Metamorphic} harness, and aggregates violations by
    kind.  A clean run is the executable form of the paper's
    correctness claim: every compiler's output type-checks under both
    judgments and computes the source function on every program we can
    construct. *)

type kind = Semantic | Typing | Metamorphic_ | Crash

type failure = {
  subject : string;  (** app name or generated-program tag *)
  compiler : string;  (** compiler label, or ["-"] for source rewrites *)
  kind : kind;
  detail : string;
}

type summary = {
  programs : int;  (** programs checked *)
  compilations : int;  (** (program, compiler) pairs compiled *)
  failures : failure list;
  coverage : int;  (** feature-coverage cardinality of the batch *)
  corpus : int;  (** generated candidates that added coverage *)
}

val ok : summary -> bool

val kind_name : kind -> string

val run :
  ?pool:Fhe_par.Pool.t ->
  ?rbits:int ->
  ?wbits:int ->
  ?hecate_iterations:int ->
  ?noise:Fhe_sim.Noise.t ->
  ?apps:bool ->
  ?gen:int ->
  ?seed:int ->
  ?progress:(string -> unit) ->
  unit ->
  summary
(** [run ()] checks the registry apps when [apps] (default true) and
    [gen] (default 0) coverage-guided generated programs seeded by
    [seed] (default 1).  [wbits] defaults to 30, [rbits] to 60;
    [hecate_iterations] (default 60) bounds exploration per program.
    Apps use their registry datasets and measured [x_max] headroom;
    generated programs use their synthetic inputs.  [progress] (e.g.
    [print_endline]) is called once per program with a one-line
    status.  Never raises.

    With [pool] the per-program checks run in parallel.  Generation
    stays sequential (the coverage bandit is stateful) and results are
    folded in submission order, so the summary, the failure list, and
    the progress lines are byte-identical at every pool width. *)

val pp_failure : Format.formatter -> failure -> unit

val pp : Format.formatter -> summary -> unit
(** Multi-line human summary, failures first. *)
