type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* emit *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_string j =
  let b = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Num f -> Buffer.add_string b (number f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          vs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parse *)

exception Bad of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let bad msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else bad (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else bad ("expected " ^ word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then bad "short \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub text !pos 4)
                with _ -> bad "bad \\u escape"
              in
              pos := !pos + 4;
              (* BMP only; enough for this schema *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              go ()
          | _ -> bad "bad escape")
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let number_body () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num text.[!pos] do
      advance ()
    done;
    if !pos = start then bad "expected a number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> bad "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '"' -> Str (string_body ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> bad "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> bad "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number_body ())
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (p, msg) ->
      Error (Printf.sprintf "JSON error at offset %d: %s" p msg)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

(* ------------------------------------------------------------------ *)
(* the bench-compile schema *)

let schema = "fhe-bench-compile/v7"

let schema_v6 = "fhe-bench-compile/v6"

let schema_v5 = "fhe-bench-compile/v5"

let schema_v4 = "fhe-bench-compile/v4"

let schema_v3 = "fhe-bench-compile/v3"

let schema_v2 = "fhe-bench-compile/v2"

let schema_v1 = "fhe-bench-compile/v1"

type exec_stats = {
  exec_ms : float;
  encrypt_ms : float;
  eval_ms : float;
  decrypt_ms : float;
  keygen_ms : float;
  max_err : float;
  (* v7 additions: memory accounting (deterministic byte counts, not
     wall-clock).  0 = not measured (pre-v7 baseline). *)
  peak_ct_bytes : int;
  order_ct_bytes : int;
  resident_ct_bytes : int;
  peak_key_bytes : int;
}

type measurement = {
  app : string;
  compiler : string;
  compile_ms : float;
  warm_compile_ms : float;
  input_level : int;
  modulus_bits : int;
  est_latency_us : float;
  exec : exec_stats option;
}

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  cache_poisoned : int;
}

let no_cache_stats =
  { cache_hits = 0; cache_misses = 0; cache_stores = 0; cache_poisoned = 0 }

type serve_stats = {
  serve_requests : int;
  serve_qps : float;
  serve_p50_ms : float;
  serve_p99_ms : float;
  serve_shed : int;
  serve_timeouts : int;
  serve_degraded : int;
}

type portfolio_entry = {
  p_app : string;
  p_winner : string;
  p_win_est_latency_us : float;
  p_legs : (string * float) list;
}

type portfolio_stats = {
  p_strategies : string list;
  p_wins : (string * int) list;
  p_entries : portfolio_entry list;
}

type run = {
  rbits : int;
  wbits : int;
  domains : int;
  wall_time_par : float;
  cache : cache_stats;
  serve : serve_stats option;
  portfolio : portfolio_stats option;
  entries : measurement list;
}

let run_to_json r =
  Obj
    [ ("schema", Str schema);
      ("rbits", Num (float_of_int r.rbits));
      ("waterline", Num (float_of_int r.wbits));
      ("domains", Num (float_of_int r.domains));
      ("wall_time_par", Num r.wall_time_par);
      ( "cache",
        Obj
          [ ("hits", Num (float_of_int r.cache.cache_hits));
            ("misses", Num (float_of_int r.cache.cache_misses));
            ("stores", Num (float_of_int r.cache.cache_stores));
            ("poisoned", Num (float_of_int r.cache.cache_poisoned)) ] );
      ( "serve",
        match r.serve with
        | None -> Null
        | Some s ->
            Obj
              [ ("requests", Num (float_of_int s.serve_requests));
                ("qps", Num s.serve_qps);
                ("p50_ms", Num s.serve_p50_ms);
                ("p99_ms", Num s.serve_p99_ms);
                ("shed", Num (float_of_int s.serve_shed));
                ("timeouts", Num (float_of_int s.serve_timeouts));
                ("degraded", Num (float_of_int s.serve_degraded)) ] );
      ( "portfolio",
        match r.portfolio with
        | None -> Null
        | Some p ->
            Obj
              [ ("strategies", Arr (List.map (fun s -> Str s) p.p_strategies));
                ( "wins",
                  Obj
                    (List.map
                       (fun (s, n) -> (s, Num (float_of_int n)))
                       p.p_wins) );
                ( "entries",
                  Arr
                    (List.map
                       (fun e ->
                         Obj
                           [ ("app", Str e.p_app);
                             ("winner", Str e.p_winner);
                             ( "win_est_latency_us",
                               Num e.p_win_est_latency_us );
                             ( "legs",
                               Obj
                                 (List.map
                                    (fun (s, v) -> (s, Num v))
                                    e.p_legs) ) ])
                       p.p_entries) ) ] );
      ( "entries",
        Arr
          (List.map
             (fun m ->
               Obj
                 [ ("app", Str m.app);
                   ("compiler", Str m.compiler);
                   ("compile_ms", Num m.compile_ms);
                   ("warm_compile_ms", Num m.warm_compile_ms);
                   ("input_level", Num (float_of_int m.input_level));
                   ("modulus_bits", Num (float_of_int m.modulus_bits));
                   ("est_latency_us", Num m.est_latency_us);
                   ( "exec",
                     match m.exec with
                     | None -> Null
                     | Some e ->
                         Obj
                           [ ("exec_ms", Num e.exec_ms);
                             ("encrypt_ms", Num e.encrypt_ms);
                             ("eval_ms", Num e.eval_ms);
                             ("decrypt_ms", Num e.decrypt_ms);
                             ("keygen_ms", Num e.keygen_ms);
                             ("max_err", Num e.max_err);
                             ( "peak_ct_bytes",
                               Num (float_of_int e.peak_ct_bytes) );
                             ( "order_ct_bytes",
                               Num (float_of_int e.order_ct_bytes) );
                             ( "resident_ct_bytes",
                               Num (float_of_int e.resident_ct_bytes) );
                             ( "peak_key_bytes",
                               Num (float_of_int e.peak_key_bytes) ) ] ) ])
             r.entries) ) ]

let get_str k j =
  match member k j with Some (Str s) -> Ok s | _ -> Error ("missing " ^ k)

let get_num k j =
  match member k j with Some (Num f) -> Ok f | _ -> Error ("missing " ^ k)

let ( let* ) = Result.bind

let run_of_json j =
  let* s = get_str "schema" j in
  if
    s <> schema && s <> schema_v6 && s <> schema_v5 && s <> schema_v4
    && s <> schema_v3 && s <> schema_v2 && s <> schema_v1
  then Error (Printf.sprintf "unknown schema %S" s)
  else
    let* rbits = get_num "rbits" j in
    let* wbits = get_num "waterline" j in
    (* v2 additions; a v1 file is a sequential run with no recorded
       batch wall time *)
    let domains =
      match member "domains" j with Some (Num f) -> int_of_float f | _ -> 1
    in
    let wall_time_par =
      match member "wall_time_par" j with Some (Num f) -> f | _ -> 0.0
    in
    (* v3 additions; in a v1/v2 file there was no cache, and every
       warm_compile_ms reads as 0 ("not measured") *)
    let cache =
      match member "cache" j with
      | Some c ->
          let geti k =
            match member k c with Some (Num f) -> int_of_float f | _ -> 0
          in
          { cache_hits = geti "hits"; cache_misses = geti "misses";
            cache_stores = geti "stores"; cache_poisoned = geti "poisoned" }
      | None -> no_cache_stats
    in
    (* v4 addition: the serve-daemon load snapshot; absent or null in
       older files (and in runs measured without a daemon) *)
    let serve =
      match member "serve" j with
      | Some (Obj _ as s) ->
          let geti k =
            match member k s with Some (Num f) -> int_of_float f | _ -> 0
          in
          let getf k =
            match member k s with Some (Num f) -> f | _ -> 0.0
          in
          Some
            { serve_requests = geti "requests"; serve_qps = getf "qps";
              serve_p50_ms = getf "p50_ms"; serve_p99_ms = getf "p99_ms";
              serve_shed = geti "shed"; serve_timeouts = geti "timeouts";
              serve_degraded = geti "degraded" }
      | _ -> None
    in
    (* v6 addition: the portfolio-mode snapshot; absent or null in older
       files and in runs that never raced the strategies *)
    let portfolio =
      match member "portfolio" j with
      | Some (Obj _ as p) ->
          let strs = function
            | Some (Arr l) ->
                List.filter_map (function Str s -> Some s | _ -> None) l
            | _ -> []
          in
          let num_fields = function
            | Some (Obj kvs) ->
                List.filter_map
                  (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
                  kvs
            | _ -> []
          in
          let entries =
            match member "entries" p with
            | Some (Arr es) ->
                List.filter_map
                  (fun e ->
                    match
                      ( get_str "app" e,
                        get_str "winner" e,
                        get_num "win_est_latency_us" e )
                    with
                    | Ok a, Ok w, Ok l ->
                        Some
                          { p_app = a; p_winner = w; p_win_est_latency_us = l;
                            p_legs = num_fields (member "legs" e) }
                    | _ -> None)
                  es
            | _ -> []
          in
          Some
            { p_strategies = strs (member "strategies" p);
              p_wins =
                List.map
                  (fun (k, f) -> (k, int_of_float f))
                  (num_fields (member "wins" p));
              p_entries = entries }
      | _ -> None
    in
    let* entries =
      match member "entries" j with
      | Some (Arr es) ->
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* app = get_str "app" e in
              let* compiler = get_str "compiler" e in
              let* compile_ms = get_num "compile_ms" e in
              let warm_compile_ms =
                match member "warm_compile_ms" e with
                | Some (Num f) -> f
                | _ -> 0.0
              in
              let* input_level = get_num "input_level" e in
              let* modulus_bits = get_num "modulus_bits" e in
              let* est_latency_us = get_num "est_latency_us" e in
              (* v5 addition: measured execution stats; absent or null
                 in older files and in compile-only runs *)
              let exec =
                match member "exec" e with
                | Some (Obj _ as x) ->
                    let getf k =
                      match member k x with Some (Num f) -> f | _ -> 0.0
                    in
                    Some
                      { exec_ms = getf "exec_ms";
                        encrypt_ms = getf "encrypt_ms";
                        eval_ms = getf "eval_ms";
                        decrypt_ms = getf "decrypt_ms";
                        keygen_ms = getf "keygen_ms";
                        max_err = getf "max_err";
                        peak_ct_bytes = int_of_float (getf "peak_ct_bytes");
                        order_ct_bytes = int_of_float (getf "order_ct_bytes");
                        resident_ct_bytes =
                          int_of_float (getf "resident_ct_bytes");
                        peak_key_bytes = int_of_float (getf "peak_key_bytes") }
                | _ -> None
              in
              Ok
                ({ app; compiler; compile_ms; warm_compile_ms;
                   input_level = int_of_float input_level;
                   modulus_bits = int_of_float modulus_bits;
                   est_latency_us; exec }
                :: acc))
            (Ok []) es
          |> Result.map List.rev
      | _ -> Error "missing entries"
    in
    Ok
      { rbits = int_of_float rbits; wbits = int_of_float wbits; domains;
        wall_time_par; cache; serve; portfolio; entries }

let compare_runs ?(time_slack = 3.0) ?(latency_slack = 0.10)
    ?(exec_slack = 1.75) ?(err_slack = 4.0) ?(mem_slack = 1.10) ~baseline
    ~current () =
  let find app compiler =
    List.find_opt
      (fun m -> m.app = app && m.compiler = compiler)
      current.entries
  in
  (* the measured-runtime rules (v5): baselines without exec stats gate
     nothing; a baseline with them demands a current measurement that
     is present, no slower than [exec_slack]x, and no less precise than
     [err_slack]x (plus an absolute floor so ~0 baselines don't make
     the gate hair-triggered) *)
  let exec_rule b c =
    match b.exec with
    | None -> None
    | Some be -> (
        match c.exec with
        | None ->
            Some
              (Printf.sprintf "%s/%s: exec stats missing from current run"
                 b.app b.compiler)
        | Some ce ->
            if be.exec_ms > 0.0 && ce.exec_ms > be.exec_ms *. exec_slack then
              Some
                (Printf.sprintf
                   "%s/%s: measured runtime regressed %.2f -> %.2f ms \
                    (slack %.2fx)"
                   b.app b.compiler be.exec_ms ce.exec_ms exec_slack)
            else if ce.max_err > Float.max (be.max_err *. err_slack) 1e-9 then
              Some
                (Printf.sprintf
                   "%s/%s: decrypt precision regressed %g -> %g max |err|"
                   b.app b.compiler be.max_err ce.max_err)
            else if
              (* the v7 memory rules: byte counts are deterministic, so
                 the slack is tight; a pre-v7 baseline (0 bytes) gates
                 nothing *)
              be.peak_ct_bytes > 0
              && float_of_int ce.peak_ct_bytes
                 > float_of_int be.peak_ct_bytes *. mem_slack
            then
              Some
                (Printf.sprintf
                   "%s/%s: peak live ciphertext bytes regressed %d -> %d \
                    (slack %.2fx)"
                   b.app b.compiler be.peak_ct_bytes ce.peak_ct_bytes
                   mem_slack)
            else if
              be.peak_key_bytes > 0
              && float_of_int ce.peak_key_bytes
                 > float_of_int be.peak_key_bytes *. mem_slack
            then
              Some
                (Printf.sprintf
                   "%s/%s: peak switch-key bytes regressed %d -> %d \
                    (slack %.2fx)"
                   b.app b.compiler be.peak_key_bytes ce.peak_key_bytes
                   mem_slack)
            else None)
  in
  List.filter_map
    (fun b ->
      match find b.app b.compiler with
      | None ->
          Some
            (Printf.sprintf "%s/%s: entry missing from current run" b.app
               b.compiler)
      | Some c ->
          if c.modulus_bits > b.modulus_bits then
            Some
              (Printf.sprintf
                 "%s/%s: consumed modulus grew %d -> %d bits (L %d -> %d)"
                 b.app b.compiler b.modulus_bits c.modulus_bits
                 b.input_level c.input_level)
          else if
            c.est_latency_us > b.est_latency_us *. (1.0 +. latency_slack)
          then
            Some
              (Printf.sprintf
                 "%s/%s: estimated latency regressed %.0f -> %.0f us"
                 b.app b.compiler b.est_latency_us c.est_latency_us)
          else if
            b.compile_ms > 0.0 && c.compile_ms > b.compile_ms *. time_slack
          then
            Some
              (Printf.sprintf
                 "%s/%s: compile time regressed %.2f -> %.2f ms (slack %.1fx)"
                 b.app b.compiler b.compile_ms c.compile_ms time_slack)
          else if
            (* a warm (cache-hit) compile must not cost more than
               recompiling cold, up to the same timing slack as the
               cold rule — a hit still pays the digest of the whole
               program, which on a fast compiler (EVA on LeNet) is the
               same order as the compile itself.  0.05 ms of grace
               absorbs timer jitter on apps that compile in
               microseconds.  warm_compile_ms = 0 means "not measured"
               (v1/v2 baseline or cache disabled). *)
            c.warm_compile_ms > 0.0
            && c.warm_compile_ms > Float.max b.compile_ms 0.05 *. time_slack
          then
            Some
              (Printf.sprintf
                 "%s/%s: warm-cache compile %.3f ms exceeds the cold \
                  baseline %.3f ms"
                 b.app b.compiler c.warm_compile_ms b.compile_ms)
          else exec_rule b c)
    baseline.entries
