open Fhe_ir

(** The paper's §5 reserve-typing lemmas, checked on final programs.

    {!Fhe_ir.Validator} enforces the Table 2 scale/level transfer rules
    directly; this module re-derives the same well-typedness through the
    {e reserve} view ([ρ = l·rbits − scale], {!Reserve.Rtype}) — an
    independent formulation, so a bookkeeping bug has to fool two
    different judgments to escape.  Every compiler's output (EVA,
    Hecate, and all reserve variants) must satisfy all of these:

    - [reserve-nonnegative]: [ρ ≥ 0] everywhere (no scale overflow);
    - [principal-level]: every ciphertext lives at or above its
      principal level [⌈(ρ + ω)/r⌉] (the waterline lemma);
    - [level-within-modulus]: no ciphertext level exceeds the input
      level [L] (the consumed modulus bound);
    - [mul-reserve]: cipher×cipher multiplication at a common operand
      level [l] satisfies [ρ₁ + ρ₂ = ρ + l·rbits] (Equation Mul);
    - [pmul-waterline]: the plaintext operand of a cipher×plain
      multiplication is encoded at or above the waterline;
    - [add-reserve]: cipher±cipher operands carry equal reserve at
      equal level, inherited by the result;
    - [rescale-invariant]: rescale preserves reserve exactly and drops
      one level (the lemma that decouples analysis from placement);
    - [modswitch-reserve] / [upscale-reserve]: modswitch consumes
      [rbits] of reserve, upscale consumes its amount. *)

type violation = { op : Op.id; rule : string; detail : string }

val check : Managed.t -> violation list
(** All violated lemmas in op order; [] = well-typed.  The sweep never
    stops early. *)

val ok : Managed.t -> bool

val check_cache_consistency :
  cached:Managed.t -> fresh:Managed.t -> violation list
(** The cache-soundness lemma: a [Managed.t] served by
    {!Fhe_cache.Store} must agree with a fresh recompute on every op —
    identical structure (compared through {!Fhe_ir.Intern.equal_kind},
    so float payloads are bit-exact), identical scale, level and reserve
    ({!Reserve.Rtype} view), identical outputs and parameters.  Each
    disagreement is reported as a [cache-consistency] violation.  Run by
    the differential driver on every cache hit when verification is on. *)

val pp_violation : Format.formatter -> violation -> unit
