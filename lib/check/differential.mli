open Fhe_ir

(** The differential driver: one program, every compiler.

    Compiles a source program under EVA, Hecate, and the three reserve
    pipeline variants, then holds each result to the same conformance
    bar — {!Fhe_ir.Validator} legality, the {!Invariants} reserve
    lemmas, and {!Oracle} agreement with the interpreted source.
    Because every compiler is compared against the one reference
    execution, agreement is transitive: all five managed programs
    compute the same function.  Per-compiler measurements (compile
    time, input level, consumed modulus bits, estimated latency) ride
    along for regression pinning and the perf baseline. *)

type compiler = Fhe_strategy.Strategy.t
(** A compiler is a registered scale strategy; the driver holds no
    compiler knowledge of its own.  First-class modules — compare by
    {!compiler_name}, never with polymorphic equality. *)

val all_compilers : compiler list
(** {!Fhe_strategy.Registry.all} at load time — EVA, Hecate, Ba, Ra,
    Full, the paper's five columns, in that order. *)

val compiler_name : compiler -> string
(** Canonical {!Fhe_strategy.Strategy.name}: ["eva"], ["hecate"],
    ["reserve-ba"], ["reserve-ra"], ["reserve-full"]. *)

val of_name : string -> compiler option
(** {!Fhe_strategy.Registry.of_name}: canonical names or aliases. *)

type entry = {
  compiler : compiler;
  managed : Managed.t option;  (** [None] when compilation failed *)
  compile_ms : float;
  input_level : int;  (** encryption parameter [L]; 0 on failure *)
  modulus_bits : int;  (** consumed modulus: [L * rbits] *)
  est_latency_us : float;  (** Table 3 cost-model estimate *)
  validator_errors : string list;
  lemma_violations : Invariants.violation list;
  oracle : Oracle.report option;
  crash : string option;  (** escaped exception, if any *)
}

val entry_ok : entry -> bool
(** Compiled, legal, lemma-clean, and oracle-agreeing. *)

type report = { label : string; entries : entry list }

val ok : report -> bool

val failures : report -> (string * string) list
(** [(compiler, what)] for every failed entry, in compiler order. *)

val run :
  ?pool:Fhe_par.Pool.t ->
  ?rbits:int ->
  ?wbits:int ->
  ?xmax_bits:int ->
  ?hecate_iterations:int ->
  ?noise:Fhe_sim.Noise.t ->
  ?compilers:compiler list ->
  ?verify_cache:bool ->
  label:string ->
  Program.t ->
  inputs:(string * float array) list ->
  report
(** Compile under each compiler (default {!all_compilers}) and check.
    Every compiler is consulted through {!Fhe_cache.Store} (when the
    cache is active); on a hit, [verify_cache] (default true) recompiles
    cold and runs {!Invariants.check_cache_consistency} — any
    disagreement surfaces as a [cache-consistency] lemma violation, so
    [fhec check] exercises cache soundness for free.
    With [pool] the compilers run in parallel; entries always come
    back in compiler order, so the report is identical at any pool
    width (modulo the measured [compile_ms]).  Don't pass a pool that
    is already running this call's caller — nested pool use is
    rejected; {!Conformance.run} parallelizes per program instead.
    [rbits] defaults to 60, [wbits] to 30, [xmax_bits] to 0.
    [hecate_iterations] (default 60) bounds the exploration so
    differential sweeps stay cheap; it does not change correctness,
    only plan quality.  Never raises: per-compiler exceptions are
    recorded in the entry. *)

val pp : Format.formatter -> report -> unit
