/* CLOCK_MONOTONIC for Timer: Unix.gettimeofday is wall-clock and
   steps under NTP adjustment, which skews bench timings; the
   monotonic clock only ever moves forward. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value fhe_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
