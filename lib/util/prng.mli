(** Deterministic pseudo-random number generation (SplitMix64).

    The evaluation needs reproducible synthetic datasets and reproducible
    exploration (the Hecate baseline), independent of the OCaml stdlib
    [Random] state.  SplitMix64 is small, fast, and has well-understood
    statistical quality for this purpose. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** Derive an independent generator (for parallel-feeling streams). *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators up front, one per
    work item.  Because every stream is split from the root generator
    before any work is scheduled, stream [i] depends only on the seed
    and on [i] — not on which worker domain eventually consumes it —
    which is what keeps parallel generation byte-identical to
    sequential.  Advances [t] by [n] draws. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1]; [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal draw (Box–Muller). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
