type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  { state = next_int64 t }

(* Parallel drivers split every per-item stream from the root seed
   before any work is scheduled, so the streams — and everything
   generated from them — depend only on the seed and the item index,
   never on how many domains end up running the items. *)
let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n";
  Array.init n (fun _ -> split t)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let gaussian t =
  (* Box–Muller; avoid u1 = 0. *)
  let u1 = ref (float t 1.0) in
  while !u1 = 0.0 do u1 := float t 1.0 done;
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log !u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
