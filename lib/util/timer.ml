external monotonic_ns : unit -> int64 = "fhe_monotonic_ns"

let now_ns = monotonic_ns

let time f =
  let t0 = monotonic_ns () in
  let r = f () in
  let t1 = monotonic_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e6)

let time_ms f = snd (time f)
