(** Monotonic timing for the compile-time experiments (Table 4).

    Backed by [clock_gettime(CLOCK_MONOTONIC)]: unlike the wall clock
    it never steps backwards under NTP adjustment, so elapsed times are
    always non-negative even on a loaded host. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock (arbitrary epoch; only
    differences are meaningful). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    monotonic time in milliseconds. *)

val time_ms : (unit -> unit) -> float
(** Elapsed monotonic time of a thunk, in milliseconds. *)
