open Fhe_ir

(* The EVA baseline: a fused forward pass.  Scale tracking and op
   insertion happen in one walk, so analyze/annotate are trivial and
   place does the work.  Results are legal by Eva.compile's contract. *)
module Eva_strategy = struct
  let name = "eva"
  let aliases = []

  let caps =
    {
      Strategy.redistributes = false;
      hoists = false;
      explores = false;
      fallback_chain = false;
    }

  let cache_key_tag = "eva"
  let cache_extra _ _ = []

  type analysis = unit
  type annotation = unit

  let analyze _ _ = ()
  let annotate _ _ () = ()

  let place (cfg : Strategy.config) p () =
    Fhe_eva.Eva.compile ~xmax_bits:cfg.xmax_bits ~rbits:cfg.rbits
      ~wbits:cfg.wbits p

  let safe = None
end

(* Hecate: annotate explores the proactive-downscale plan space, place
   extracts the winning managed program. *)
module Hecate_strategy = struct
  let name = "hecate"
  let aliases = []

  let caps =
    {
      Strategy.redistributes = false;
      hoists = false;
      explores = true;
      fallback_chain = false;
    }

  let cache_key_tag = "hecate"

  let iterations_of (cfg : Strategy.config) p =
    match cfg.iterations with
    | Some n -> n
    | None -> Fhe_hecate.Hecate.default_iterations p

  let cache_extra cfg p = [ string_of_int (iterations_of cfg p) ]

  type analysis = unit
  type annotation = Fhe_hecate.Hecate.result

  let analyze _ _ = ()

  let annotate (cfg : Strategy.config) p () =
    Fhe_hecate.Hecate.compile ~iterations:(iterations_of cfg p)
      ~xmax_bits:cfg.xmax_bits ~rbits:cfg.rbits ~wbits:cfg.wbits p

  let place _ _ (r : Fhe_hecate.Hecate.result) = r.Fhe_hecate.Hecate.managed
  let safe = None
end

(* The reserve variants map 1:1 onto the interface: analyze is the §6.1
   allocation ordering, annotate the §6.2/§6.3 backward reserve
   analysis, place the §7 insertion (+hoisting for `Full) — matching
   Pipeline.compile's uncached path, validation included. *)
module Reserve_strategy (V : sig
  val variant : Reserve.Pipeline.variant
end) =
struct
  let name = Reserve.Pipeline.variant_name V.variant

  let aliases =
    match V.variant with
    | `Ba -> [ "ba" ]
    | `Ra -> [ "ra" ]
    | `Full -> [ "reserve"; "full" ]

  let redistribute = match V.variant with `Ba -> false | `Ra | `Full -> true
  let hoist = match V.variant with `Ba | `Ra -> false | `Full -> true

  let caps =
    {
      Strategy.redistributes = redistribute;
      hoists = hoist;
      explores = false;
      fallback_chain = true;
    }

  let cache_key_tag = name

  (* matches Pipeline.plan_key's eager_input_upscale = None slot *)
  let cache_extra _ _ = [ "-" ]

  type analysis = int array
  type annotation = Reserve.Allocation.t

  let prm (cfg : Strategy.config) =
    Reserve.Rtype.params ~rbits:cfg.rbits ~wbits:cfg.wbits

  let analyze cfg p = Reserve.Ordering.run (prm cfg) p

  let annotate (cfg : Strategy.config) p order =
    Reserve.Allocation.run (prm cfg) ~redistribute
      ~output_reserve:cfg.xmax_bits ~order p

  let place _ p alloc =
    let m = Reserve.Placement.run ~hoist p alloc in
    Validator.check_exn m;
    m

  let safe =
    Some
      (fun (cfg : Strategy.config) ~strict ~oracle ?oracle_inputs p ->
        Reserve.Pipeline.compile_safe ~variant:V.variant
          ~xmax_bits:cfg.xmax_bits ~strict ~oracle ?oracle_inputs
          ~rbits:cfg.rbits ~wbits:cfg.wbits p)
end

module Reserve_ba = Reserve_strategy (struct
  let variant = `Ba
end)

module Reserve_ra = Reserve_strategy (struct
  let variant = `Ra
end)

module Reserve_full = Reserve_strategy (struct
  let variant = `Full
end)

(* Canonical order: pins the differential report and Benchjson entry
   ordering; do not reorder. *)
let builtin : Strategy.t list =
  [
    (module Eva_strategy);
    (module Hecate_strategy);
    (module Reserve_ba);
    (module Reserve_ra);
    (module Reserve_full);
  ]

let registered = ref builtin
let all () = !registered
let names () = List.map Strategy.name !registered

let spellings s =
  List.map String.lowercase_ascii (Strategy.name s :: Strategy.aliases s)

let of_name n =
  let n = String.lowercase_ascii n in
  List.find_opt (fun s -> List.mem n (spellings s)) !registered

let get_exn n =
  match of_name n with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Registry.get_exn: unknown strategy %S" n)

let register s =
  let fresh = spellings s in
  List.iter
    (fun existing ->
      List.iter
        (fun sp ->
          if List.mem sp (spellings existing) then
            invalid_arg
              (Printf.sprintf "Registry.register: %S already names strategy %S"
                 sp (Strategy.name existing)))
        fresh)
    !registered;
  registered := !registered @ [ s ]

let compile_uncached = Strategy.compile_uncached

let compile_hit s cfg p =
  if not (Fhe_cache.Store.active ()) then (compile_uncached s cfg p, false)
  else
    Fhe_cache.Store.with_managed_hit
      ~key:(Strategy.cache_key s cfg p)
      (fun () -> Fhe_cache.Store.bypass (fun () -> compile_uncached s cfg p))

let compile s cfg p = fst (compile_hit s cfg p)
