open Fhe_ir

(** Portfolio mode: compile one program under several strategies, score
    each plan with the Table 3 cost model, keep the cheapest.

    Legs run in registry order; with a pool they run in parallel via
    {!Fhe_par.Pool.map}, whose submission-ordered results make the
    report — and the winner — identical at any [-j] width.  Every leg
    compiles through {!Registry.compile_hit}, so a warm
    {!Fhe_cache.Store} makes the whole portfolio nearly free. *)

type leg = {
  strategy : Strategy.t;
  result : (Managed.t, string) result;
  est_latency_us : float;  (** cost-model estimate; 0 on failure *)
  compile_ms : float;
  from_cache : bool;
}

type report = {
  winner : leg;  (** lowest est-latency [Ok] leg; ties → registry order *)
  legs : leg list;  (** one per strategy, registry order *)
}

val mode_name : string
(** ["portfolio"] — the selector drivers accept alongside strategy
    names. *)

val run :
  ?pool:Fhe_par.Pool.t ->
  ?strategies:Strategy.t list ->
  Strategy.config ->
  Program.t ->
  (report, string) result
(** [strategies] defaults to {!Registry.all} (also when [[]] is
    passed, matching the wire protocol's "empty subset = all").
    [Error] only when every leg fails; the message concatenates the
    per-leg failures. *)
