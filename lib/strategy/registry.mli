open Fhe_ir

(** The strategy registry: the one place that knows which scale
    strategies exist.

    The five built-ins are registered at load time, in the canonical
    driver order ([eva; hecate; reserve-ba; reserve-ra; reserve-full])
    that pins the differential report and Benchjson entry ordering.
    Adding strategy number six is {!register} — every driver (fhec,
    serve, bench, differential, portfolio) picks it up from here. *)

val all : unit -> Strategy.t list
(** Registration order; the five built-ins first. *)

val names : unit -> string list

val of_name : string -> Strategy.t option
(** Case-insensitive lookup by canonical name or alias.  ["portfolio"]
    is a compilation {e mode}, not a strategy, and is not found here. *)

val get_exn : string -> Strategy.t
(** @raise Invalid_argument on unknown name. *)

val register : Strategy.t -> unit
(** Append a strategy.  @raise Invalid_argument if its name or any
    alias collides with an already-registered spelling. *)

val compile_uncached : Strategy.t -> Strategy.config -> Program.t -> Managed.t
(** The raw three-phase compile; no cache interaction. *)

val compile_hit : Strategy.t -> Strategy.config -> Program.t -> Managed.t * bool
(** Compile through {!Fhe_cache.Store} when it is active: hits return
    the stored plan, misses compile under [Store.bypass] (so nested
    lookups see a genuinely cold store) and persist the result.  The
    flag is [true] on a cache hit.  With the store inactive this is
    {!compile_uncached}. *)

val compile : Strategy.t -> Strategy.config -> Program.t -> Managed.t
(** [compile s cfg p = fst (compile_hit s cfg p)]. *)
