open Fhe_ir

(** The [Scale_strategy] pass interface (HEIR direction, ROADMAP item 5).

    Every scale-management compiler in the repo — the EVA forward
    waterline, the Hecate explorer, and the three reserve variants —
    is one instance of the same three-phase shape:

    {v analyze : what order / structure to work in
       annotate : per-value scale decisions (reserves, drop plans, …)
       place    : insert the scale-management ops and produce Managed.t v}

    A strategy packages those phases behind a first-class module along
    with its canonical name, accepted aliases, capability flags, and the
    cache-key recipe that makes its results addressable in
    {!Fhe_cache.Store}.  Drivers (differential, serve, bench, fhec)
    never match on compiler identity; they look strategies up in
    {!Registry} and call the uniform entry points here. *)

type caps = {
  redistributes : bool;  (** reserve redistribution (§6.3) *)
  hoists : bool;         (** rescale hoisting (§7) *)
  explores : bool;       (** stochastic plan exploration (Hecate) *)
  fallback_chain : bool; (** participates in [compile_safe] degradation *)
}

type config = {
  rbits : int;            (** rescale prime bits *)
  wbits : int;            (** waterline bits *)
  xmax_bits : int;        (** output-magnitude headroom (Table 1 x_max) *)
  iterations : int option;
      (** exploration budget for strategies that explore; [None] lets
          the strategy pick its own default *)
}

val config :
  ?xmax_bits:int -> ?iterations:int -> rbits:int -> wbits:int -> unit ->
  config
(** [xmax_bits] defaults to 0, [iterations] to [None]. *)

type phases = {
  analyze_ms : float;
  annotate_ms : float;
  place_ms : float;
  total_ms : float;
}

type safe_outcome = (Reserve.Pipeline.outcome, Reserve.Pipeline.attempt list)
  result

module type SCALE_STRATEGY = sig
  val name : string
  (** Canonical name, e.g. ["reserve-full"].  The single naming scheme:
      what [fhec --compiler] accepts, what the serve protocol carries,
      what Benchjson records, what cache keys embed. *)

  val aliases : string list
  (** Accepted spellings kept for compatibility (e.g. ["reserve"] for
      the full variant, matching the old [Pipeline.engine_name]). *)

  val caps : caps

  val cache_key_tag : string
  (** The [~compiler] component of {!Fhe_cache.Key.make}.  Byte-stable:
      existing on-disk stores keep hitting across the refactor. *)

  val cache_extra : config -> Program.t -> string list
  (** The [~extra] component — every knob beyond (rbits, wbits,
      xmax_bits) that can change this strategy's output. *)

  type analysis
  type annotation

  val analyze : config -> Program.t -> analysis
  val annotate : config -> Program.t -> analysis -> annotation
  val place : config -> Program.t -> annotation -> Managed.t
  (** The three passes.  [place]'s result is legal
      ({!Fhe_ir.Validator.check} passes) for strategies that validate;
      see each instance's doc.  Any phase may raise — callers that need
      totality go through {!safe} or catch. *)

  val safe :
    (config -> strict:bool -> oracle:bool ->
     ?oracle_inputs:(string * float array) list -> Program.t ->
     safe_outcome)
    option
  (** Degrading entry point for strategies on the resilient fallback
      chain (the reserve variants, via
      {!Reserve.Pipeline.compile_safe}); [None] for strategies compiled
      plainly. *)
end

type t = (module SCALE_STRATEGY)
(** A registered strategy.  First-class modules contain closures, so
    never compare strategies with polymorphic equality — compare
    {!name}s. *)

val name : t -> string
val aliases : t -> string list
val caps : t -> caps
val safe :
  t ->
  (config -> strict:bool -> oracle:bool ->
   ?oracle_inputs:(string * float array) list -> Program.t -> safe_outcome)
  option

val caps_string : caps -> string
(** Comma-joined flag names, ["-"] when none — for [--list-strategies]
    and the strategies reply. *)

val cache_key : t -> config -> Program.t -> string
(** The {!Fhe_cache.Key.make} key for compiling [p] under this strategy
    and config.  Byte-identical to the keys the pre-refactor drivers
    minted ([Pipeline.cache_key], [Pipeline.eva_cache_key], the
    differential driver's Hecate key). *)

val compile_uncached : t -> config -> Program.t -> Managed.t
(** Run the three phases; no {!Fhe_cache.Store} interaction. *)

val compile_with_phases : t -> config -> Program.t -> Managed.t * phases
(** Like {!compile_uncached} with per-phase wall times. *)
