open Fhe_ir

type caps = {
  redistributes : bool;
  hoists : bool;
  explores : bool;
  fallback_chain : bool;
}

type config = {
  rbits : int;
  wbits : int;
  xmax_bits : int;
  iterations : int option;
}

let config ?(xmax_bits = 0) ?iterations ~rbits ~wbits () =
  { rbits; wbits; xmax_bits; iterations }

type phases = {
  analyze_ms : float;
  annotate_ms : float;
  place_ms : float;
  total_ms : float;
}

type safe_outcome =
  (Reserve.Pipeline.outcome, Reserve.Pipeline.attempt list) result

module type SCALE_STRATEGY = sig
  val name : string
  val aliases : string list
  val caps : caps
  val cache_key_tag : string
  val cache_extra : config -> Program.t -> string list

  type analysis
  type annotation

  val analyze : config -> Program.t -> analysis
  val annotate : config -> Program.t -> analysis -> annotation
  val place : config -> Program.t -> annotation -> Managed.t

  val safe :
    (config -> strict:bool -> oracle:bool ->
     ?oracle_inputs:(string * float array) list -> Program.t ->
     safe_outcome)
    option
end

type t = (module SCALE_STRATEGY)

let name (module S : SCALE_STRATEGY) = S.name
let aliases (module S : SCALE_STRATEGY) = S.aliases
let caps (module S : SCALE_STRATEGY) = S.caps
let safe (module S : SCALE_STRATEGY) = S.safe

let caps_string c =
  let flags =
    [
      (c.redistributes, "redistributes");
      (c.hoists, "hoists");
      (c.explores, "explores");
      (c.fallback_chain, "fallback");
    ]
  in
  match List.filter_map (fun (b, n) -> if b then Some n else None) flags with
  | [] -> "-"
  | fs -> String.concat "," fs

let cache_key (module S : SCALE_STRATEGY) cfg p =
  Fhe_cache.Key.make ~digest:(Intern.digest p) ~compiler:S.cache_key_tag
    ~rbits:cfg.rbits ~wbits:cfg.wbits ~xmax_bits:cfg.xmax_bits
    ~extra:(S.cache_extra cfg p) ()

let compile_with_phases (module S : SCALE_STRATEGY) cfg p =
  let a, analyze_ms = Fhe_util.Timer.time (fun () -> S.analyze cfg p) in
  let b, annotate_ms = Fhe_util.Timer.time (fun () -> S.annotate cfg p a) in
  let m, place_ms = Fhe_util.Timer.time (fun () -> S.place cfg p b) in
  ( m,
    {
      analyze_ms;
      annotate_ms;
      place_ms;
      total_ms = analyze_ms +. annotate_ms +. place_ms;
    } )

let compile_uncached (module S : SCALE_STRATEGY) cfg p =
  let a = S.analyze cfg p in
  let b = S.annotate cfg p a in
  S.place cfg p b
