type leg = {
  strategy : Strategy.t;
  result : (Fhe_ir.Managed.t, string) result;
  est_latency_us : float;
  compile_ms : float;
  from_cache : bool;
}

type report = { winner : leg; legs : leg list }

let mode_name = "portfolio"

let one_leg cfg p s =
  match Fhe_util.Timer.time (fun () -> Registry.compile_hit s cfg p) with
  | (m, from_cache), compile_ms ->
      {
        strategy = s;
        result = Ok m;
        est_latency_us = Fhe_cost.Model.estimate m;
        compile_ms;
        from_cache;
      }
  | exception e ->
      {
        strategy = s;
        result = Error (Printexc.to_string e);
        est_latency_us = 0.;
        compile_ms = 0.;
        from_cache = false;
      }

let run ?pool ?strategies cfg p =
  let strategies =
    match strategies with None | Some [] -> Registry.all () | Some l -> l
  in
  let legs =
    match pool with
    | None -> List.map (one_leg cfg p) strategies
    | Some pool -> Fhe_par.Pool.map pool (one_leg cfg p) strategies
  in
  let winner =
    List.fold_left
      (fun best leg ->
        match (leg.result, best) with
        | Error _, _ -> best
        | Ok _, None -> Some leg
        | Ok _, Some b ->
            if leg.est_latency_us < b.est_latency_us then Some leg else best)
      None legs
  in
  match winner with
  | Some w -> Ok { winner = w; legs }
  | None ->
      let msgs =
        List.filter_map
          (fun l ->
            match l.result with
            | Error e -> Some (Strategy.name l.strategy ^ ": " ^ e)
            | Ok _ -> None)
          legs
      in
      Error ("portfolio: every strategy failed — " ^ String.concat "; " msgs)
