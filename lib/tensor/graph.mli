(** The tensor DSL: a small graph of tensor ops (dense/matmul, conv2d,
    pooling, pointwise activations, flatten) over two tensor kinds —
    batched vectors and square multi-channel feature maps — that
    {!Lower} turns into rotate/mask/mul-reduce circuits over
    {!Fhe_ir.Builder} under a chosen {!Layout.plan}.

    Nodes are created in program order and identified by dense integer
    ids; construction validates shapes eagerly so lowering never fails
    on a well-typed graph. *)

type act = Square | Poly of float array
(** Pointwise activation: [x²], or a polynomial [c₀ + c₁x + … + cₙxⁿ]
    given as its coefficient array [c₀..cₙ] (degree ≥ 1), evaluated by
    Horner's rule. *)

type node =
  | Vec_input of { name : string; dim : int; batch : int }
  | Img_input of { prefix : string; channels : int; width : int }
  | Dense of { src : int; mat : float array array; rows : int }
  | Conv2d of {
      src : int;
      out_channels : int;
      ksize : int;
      weights : int -> int -> int -> int -> float;
          (** [weights oc ic dy dx], pure and memoized by the caller *)
    }
  | Act of { src : int; act : act }
  | Pool of { src : int; avg : bool }  (** 2×2, stride 2 *)
  | Flatten of { src : int }

type shape =
  | Vec of { dim : int; batch : int }
      (** [dim] logical components per user, [batch] users *)
  | Img of { channels : int; width : int; stride : int }
      (** square [width×width] maps, one ciphertext per channel, logical
          pixel [(r,c)] at slot [stride·(r·width+c)] *)

type t

val create : n_slots:int -> unit -> t
(** Fresh graph over [n_slots]-slot ciphertexts (power of two). *)

val input_vec : t -> name:string -> ?batch:int -> dim:int -> unit -> int
(** A ciphertext input holding [batch] (default 1) users' [dim]-vectors. *)

val input_img : t -> prefix:string -> channels:int -> width:int -> unit -> int
(** Image input: channel [c] is the ciphertext input named
    [prefix ^ string_of_int c]. *)

val dense : t -> rows:int -> mat:float array array -> int -> int
(** Matrix-vector product with a square padded matrix whose width is a
    power of two (rows past [rows] must be zero); the result is a
    [rows]-vector.  The source vector may be narrower than the matrix
    (zero padding). *)

val conv2d :
  t ->
  out_channels:int ->
  ksize:int ->
  weights:(int -> int -> int -> int -> float) ->
  int ->
  int
(** [ksize×ksize] (odd) same-padding convolution over a feature map.
    Edge taps follow the strided slot layout: indices are linear in
    [r·width+c], so out-of-row taps read the neighbouring row and
    out-of-map taps read (zero) slots beyond the map — the same
    arithmetic the hand-built LeNet always computed. *)

val square : t -> int -> int

val poly : t -> coeffs:float array -> int -> int

val pool_avg : t -> int -> int
(** 2×2 average pooling, stride 2.  The map keeps its slot footprint and
    doubles its layout stride (no compaction until {!flatten}). *)

val pool_sum : t -> int -> int

val flatten : t -> int -> int
(** One-hot masked flatten of a strided feature map into a packed
    vector: destination [c·grid² + r·grid + cc] for channel [c], grid
    position [(r,cc)], [grid = width/stride]. *)

val output : t -> int -> unit
(** Mark a node as a program output (in call order).  An image output
    contributes one circuit output per channel. *)

(** {1 Introspection} *)

val n_slots : t -> int

val n_nodes : t -> int

val nodes : t -> node array

val shapes : t -> shape array

val outputs : t -> int list

val shape : t -> int -> shape

val dim : t -> int -> int
(** Logical width of a vector node ([rows] of a dense, [feat] of a
    flatten). *)

val batch : t -> int
(** Largest input batch (1 when unbatched). *)

val has_img : t -> bool

val uniform_dim : t -> int option
(** The single matrix/vector-input width when all agree — the batched
    packings require one global block width. *)
