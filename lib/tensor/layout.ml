type dense_kernel = Diag | Bsgs | Interleaved | Blocked

type plan = { dense : dense_kernel }

let all = [ { dense = Diag }; { dense = Bsgs };
            { dense = Interleaved }; { dense = Blocked } ]

let name p =
  match p.dense with
  | Diag -> "diag"
  | Bsgs -> "bsgs"
  | Interleaved -> "interleaved"
  | Blocked -> "blocked"

let of_name s =
  match String.lowercase_ascii s with
  | "diag" -> Some { dense = Diag }
  | "bsgs" -> Some { dense = Bsgs }
  | "interleaved" -> Some { dense = Interleaved }
  | "blocked" -> Some { dense = Blocked }
  | _ -> None

let description p =
  match p.dense with
  | Diag -> "Halevi-Shoup diagonals over a replicated packed vector"
  | Bsgs -> "baby-step/giant-step diagonals (O(sqrt dim) input rotations)"
  | Interleaved ->
      "batched: component r of user u at slot r*(n_slots/dim) + u"
  | Blocked -> "batched: user u owns the contiguous block u*dim .. u*dim+dim-1"
