(** Candidate slot packings for the tensor lowering (CHET-style
    CipherTensor kernels).

    A [plan] fixes the dense (matvec) kernel and, with it, how vectors
    are laid out in slots: [Diag]/[Bsgs] pack one sample in the first
    [dim] slots (the layout the hand-built apps always used), while
    [Interleaved]/[Blocked] pack a whole batch of users into one
    ciphertext.  Convolutional feature maps always use the halide-style
    strided layout (logical pixel [(r,c)] of a stride-[s] map at slot
    [s·(r·width+c)]) — the stride is forced by the avg-pool emission, so
    it is not a search dimension. *)

type dense_kernel = Diag | Bsgs | Interleaved | Blocked

type plan = { dense : dense_kernel }

val all : plan list
(** Every plan, in canonical (tie-breaking) order:
    diag, bsgs, interleaved, blocked. *)

val name : plan -> string

val of_name : string -> plan option
(** Case-insensitive inverse of {!name}. *)

val description : plan -> string
(** One-line human description for [--list-layouts]. *)
