open Fhe_ir

(** Shared homomorphic circuit kernels used by the benchmark apps:
    packed-ciphertext idioms (rotate-and-sum reductions, shifted-window
    convolutions, diagonal/BSGS matrix-vector products) in the style of
    the EVA/Hecate benchmark suites. *)

val sum_slots : Builder.t -> Builder.expr -> n:int -> Builder.expr
(** Log-depth rotate-and-sum: every one of the first [n] slots ends up
    holding the sum of all [n].  [n] must be a power of two no larger
    than the slot count (the vector must be zero outside those slots,
    or wrap-around terms will pollute the sum). *)

val mean_slots : Builder.t -> Builder.expr -> n:int -> Builder.expr
(** {!sum_slots} followed by multiplication with [1/n]. *)

val conv2d :
  Builder.t ->
  Builder.expr ->
  width:int ->
  height:int ->
  weights:float array array ->
  Builder.expr
(** 2-D convolution of a row-major [width×height] image packed in one
    ciphertext with a scalar-weight kernel: one rotation per tap (shared
    across callers via builder dedup), one plaintext multiplication per
    non-zero weight, and a balanced add tree.  Edges wrap around
    (circular convolution), as in the EVA image benchmarks. *)

val replicate :
  Builder.t -> Builder.expr -> dim:int -> Builder.expr
(** [replicate b x ~dim] doubles a clean packed vector ([x || x || 0…])
    so that full-width rotations by [0..dim-1] emulate cyclic rotations
    within the first [dim] slots.  [x] must be zero outside its first
    [dim] slots. *)

val matvec_diag :
  Builder.t ->
  Builder.expr ->
  dim:int ->
  mat:float array array ->
  Builder.expr
(** Halevi–Shoup diagonal matrix-vector product for a [dim×dim] matrix
    over a vector packed in the first [dim] slots (power of two):
    [y = Σ_d rotate(x, d) ⊙ diag_d].  One rotation + plaintext mul per
    nonzero diagonal; the input is replicated internally and the output
    is clean (zero outside the first [dim] slots). *)

val matvec_bsgs :
  Builder.t ->
  Builder.expr ->
  dim:int ->
  mat:float array array ->
  Builder.expr
(** Baby-step/giant-step variant: [O(√dim)] distinct input rotations
    (the dominant cost), one plaintext mul per diagonal, one output
    rotation per giant step, plus a final cleanup mask (one extra
    plaintext-mul depth).  Used for the LeNet dense layers. *)

val matvec_interleaved :
  Builder.t ->
  Builder.expr ->
  dim:int ->
  mat:float array array ->
  Builder.expr
(** Batched diagonal matvec over the interleaved packing: component [r]
    of user [u] at slot [r·stride + u], [stride = n_slots/dim] (so [dim]
    must divide the slot count).  One full-width rotation by [d·stride]
    plus one tiled diagonal mask per nonzero diagonal serves up to
    [stride] users at once; no replication step. *)

val matvec_blocked :
  Builder.t ->
  Builder.expr ->
  dim:int ->
  batch:int ->
  mat:float array array ->
  Builder.expr
(** Batched diagonal matvec over the blocked packing: user [u] owns
    slots [u·dim .. u·dim+dim-1] ([batch·dim <= n_slots]).  Each nonzero
    diagonal costs up to two rotations (in-block and wrap-around) with
    0/1-masked diagonals; with [batch = 1] this is a replication-free
    packed matvec. *)

val masked_gather :
  Builder.t ->
  (Builder.expr * int * int * int) list ->
  Builder.expr
(** [masked_gather b parts] with parts [(ct, src_off, len, dst_off)]:
    select [len] slots starting at [src_off] from each ciphertext with a
    0/1 mask and rotate them to [dst_off], summing everything into one
    packed vector (the flatten step between conv and dense layers). *)
