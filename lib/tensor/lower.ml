open Fhe_ir

(* ------------------------------------------------------------------ *)
(* plan validity                                                       *)

let supports plan (g : Graph.t) =
  let n = Graph.n_slots g in
  match plan.Layout.dense with
  | Layout.Diag | Layout.Bsgs -> Graph.batch g = 1
  | Layout.Interleaved -> (
      (not (Graph.has_img g))
      &&
      match Graph.uniform_dim g with
      | Some d -> n mod d = 0 && Graph.batch g <= n / d
      | None -> false)
  | Layout.Blocked -> (
      ((not (Graph.has_img g)) || Graph.batch g = 1)
      &&
      match Graph.uniform_dim g with
      | Some d -> Graph.batch g * d <= n
      | None -> false)

let candidates g = List.filter (fun p -> supports p g) Layout.all

(* ------------------------------------------------------------------ *)
(* lowering                                                            *)

type value = Vvec of Builder.expr | Vimg of Builder.expr list

(* the packed (one-user) layouts rely on vectors being zero outside
   their logical extent (the replicate trick); a polynomial with a
   nonzero constant term splats it into every slot, so those layouts
   re-mask the result to the source's logical width *)
let needs_poly_mask plan =
  match plan.Layout.dense with
  | Layout.Diag | Layout.Bsgs -> true
  | Layout.Interleaved | Layout.Blocked -> false

let horner b x coeffs =
  let deg = Array.length coeffs - 1 in
  let acc = ref (Builder.mul b x (Builder.const b coeffs.(deg))) in
  for i = deg - 1 downto 1 do
    acc := Builder.mul b (Builder.add b !acc (Builder.const b coeffs.(i))) x
  done;
  Builder.add b !acc (Builder.const b coeffs.(0))

let lower ?(plan = { Layout.dense = Layout.Diag }) (g : Graph.t) =
  if not (supports plan g) then
    invalid_arg
      (Printf.sprintf "Lower.lower: layout %s does not support this graph"
         (Layout.name plan));
  let b = Builder.create ~n_slots:(Graph.n_slots g) () in
  let nodes = Graph.nodes g and shapes = Graph.shapes g in
  let vals = Array.make (Array.length nodes) (Vvec 0) in
  let vec i = match vals.(i) with Vvec e -> e | Vimg _ -> assert false in
  let img i = match vals.(i) with Vimg cs -> cs | Vvec _ -> assert false in
  let img_geom i =
    match shapes.(i) with
    | Graph.Img { width; stride; _ } -> (width, stride)
    | Graph.Vec _ -> assert false
  in
  let batch = Graph.batch g in
  Array.iteri
    (fun i node ->
      let v =
        match node with
        | Graph.Vec_input { name; _ } -> Vvec (Builder.input b name)
        | Graph.Img_input { prefix; channels; _ } ->
            Vimg
              (List.init channels (fun c ->
                   Builder.input b (Printf.sprintf "%s%d" prefix c)))
        | Graph.Dense { src; mat; _ } ->
            let x = vec src in
            let dim = Array.length mat in
            Vvec
              (match plan.Layout.dense with
              | Layout.Diag -> Kernels.matvec_diag b x ~dim ~mat
              | Layout.Bsgs -> Kernels.matvec_bsgs b x ~dim ~mat
              | Layout.Interleaved -> Kernels.matvec_interleaved b x ~dim ~mat
              | Layout.Blocked -> Kernels.matvec_blocked b x ~dim ~batch ~mat)
        | Graph.Conv2d { src; out_channels; ksize; weights } ->
            let width, stride = img_geom src in
            let chans = img src in
            let cy = ksize / 2 and cx = ksize / 2 in
            Vimg
              (List.init out_channels (fun oc ->
                   let terms = ref [] in
                   List.iteri
                     (fun ic x ->
                       for dy = 0 to ksize - 1 do
                         for dx = 0 to ksize - 1 do
                           let w = weights oc ic dy dx in
                           let shift =
                             stride * (((dy - cy) * width) + (dx - cx))
                           in
                           let tap = Builder.rotate b x shift in
                           terms :=
                             Builder.mul b tap (Builder.const b w) :: !terms
                         done
                       done)
                     chans;
                   Builder.add_many b (List.rev !terms)))
        | Graph.Act { src; act = Graph.Square } -> (
            match vals.(src) with
            | Vvec x -> Vvec (Builder.square b x)
            | Vimg cs -> Vimg (List.map (Builder.square b) cs))
        | Graph.Act { src; act = Graph.Poly coeffs } -> (
            match vals.(src) with
            | Vvec x ->
                let y = horner b x coeffs in
                if coeffs.(0) <> 0.0 && needs_poly_mask plan then begin
                  let d = Graph.dim g src in
                  let tag = Printf.sprintf "polymask%d" d in
                  Vvec (Builder.mul b y (Builder.vconst b ~tag (Array.make d 1.0)))
                end
                else Vvec y
            | Vimg cs -> Vimg (List.map (fun x -> horner b x coeffs) cs))
        | Graph.Pool { src; avg } ->
            let width, stride = img_geom src in
            let chans = img src in
            let quarter = if avg then Some (Builder.const b 0.25) else None in
            let pool x =
              let s = stride in
              let sum =
                Builder.add b
                  (Builder.add b x (Builder.rotate b x s))
                  (Builder.add b
                     (Builder.rotate b x (s * width))
                     (Builder.rotate b x ((s * width) + s)))
              in
              match quarter with
              | Some q -> Builder.mul b sum q
              | None -> sum
            in
            Vimg (List.map pool chans)
        | Graph.Flatten { src } ->
            let width, stride = img_geom src in
            let chans = img src in
            let grid = width / stride in
            let feat_per_chan = grid * grid in
            let terms = ref [] in
            List.iteri
              (fun c x ->
                for r = 0 to grid - 1 do
                  for cc = 0 to grid - 1 do
                    let pos = stride * ((r * width) + cc) in
                    let dst = (c * feat_per_chan) + (r * grid) + cc in
                    let mask = Array.make (pos + 1) 0.0 in
                    mask.(pos) <- 1.0;
                    let tag = Printf.sprintf "onehot%d" pos in
                    let sel = Builder.mul b x (Builder.vconst b ~tag mask) in
                    terms := Builder.rotate b sel (pos - dst) :: !terms
                  done
                done)
              chans;
            Vvec (Builder.add_many b (List.rev !terms))
      in
      vals.(i) <- v)
    nodes;
  let outputs =
    List.concat_map
      (fun o -> match vals.(o) with Vvec e -> [ e ] | Vimg cs -> cs)
      (Graph.outputs g)
  in
  Builder.finish b ~outputs

(* ------------------------------------------------------------------ *)
(* input packing and the layout-aware reference semantics              *)

(* slot of component [r] of user [u] for a width-[d] vector under each
   packing *)
let vec_slot plan ~n ~d r u =
  match plan.Layout.dense with
  | Layout.Diag | Layout.Bsgs ->
      assert (u = 0);
      r
  | Layout.Interleaved -> (r * (n / d)) + u
  | Layout.Blocked -> (u * d) + r

(* the block width the packing is built around: the uniform dense width
   when the graph has one, the input's own width otherwise (packed
   layouts never look at it) *)
let block_dim plan g ~fallback =
  match plan.Layout.dense with
  | Layout.Diag | Layout.Bsgs -> fallback
  | Layout.Interleaved | Layout.Blocked -> (
      match Graph.uniform_dim g with Some d -> d | None -> fallback)

let pack_vec plan g ~dim ~batch users =
  let n = Graph.n_slots g in
  let d = block_dim plan g ~fallback:dim in
  let arr = Array.make n 0.0 in
  for u = 0 to batch - 1 do
    let v = users.(u) in
    for r = 0 to min dim (Array.length v) - 1 do
      arr.(vec_slot plan ~n ~d r u) <- v.(r)
    done
  done;
  arr

let pack_inputs ~plan (g : Graph.t) ~data =
  let find name =
    match List.assoc_opt name data with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Lower.pack_inputs: no data %S" name)
  in
  Array.to_list (Graph.nodes g)
  |> List.concat_map (fun node ->
         match node with
         | Graph.Vec_input { name; dim; batch } ->
             let users = find name in
             if Array.length users < batch then
               invalid_arg "Lower.pack_inputs: fewer users than batch";
             [ (name, pack_vec plan g ~dim ~batch users) ]
         | Graph.Img_input { prefix; channels; width } ->
             let chans = find prefix in
             if Array.length chans < channels then
               invalid_arg "Lower.pack_inputs: missing channels";
             List.init channels (fun c ->
                 let src = chans.(c) in
                 let arr = Array.make (width * width) 0.0 in
                 Array.blit src 0 arr 0
                   (min (Array.length src) (width * width));
                 (Printf.sprintf "%s%d" prefix c, arr))
         | _ -> [])

let reference ~plan (g : Graph.t) ~data =
  let n = Graph.n_slots g in
  let nodes = Graph.nodes g and shapes = Graph.shapes g in
  let batch = Graph.batch g in
  let packed = List.map (fun (k, v) -> (k, v)) (pack_inputs ~plan g ~data) in
  (* cyclic slot read, mirroring Builder.rotate's normalisation *)
  let at arr i = arr.(((i mod n) + n) mod n) in
  let vals = Array.make (Array.length nodes) ([||] : float array array) in
  let geom i =
    match shapes.(i) with
    | Graph.Img { width; stride; _ } -> (width, stride)
    | Graph.Vec _ -> assert false
  in
  let pad a =
    let r = Array.make n 0.0 in
    Array.blit a 0 r 0 (min n (Array.length a));
    r
  in
  Array.iteri
    (fun i node ->
      let v =
        match node with
        | Graph.Vec_input { name; _ } ->
            [| pad (List.assoc name packed) |]
        | Graph.Img_input { prefix; channels; _ } ->
            Array.init channels (fun c ->
                pad (List.assoc (Printf.sprintf "%s%d" prefix c) packed))
        | Graph.Dense { src; mat; _ } ->
            let x = vals.(src).(0) in
            let dim = Array.length mat in
            let d = block_dim plan g ~fallback:dim in
            let y = Array.make n 0.0 in
            let users =
              match plan.Layout.dense with
              | Layout.Diag | Layout.Bsgs -> 1
              | Layout.Interleaved -> n / d
              | Layout.Blocked -> batch
            in
            for u = 0 to users - 1 do
              for r = 0 to dim - 1 do
                let s = ref 0.0 in
                for c = 0 to dim - 1 do
                  s := !s +. (mat.(r).(c) *. x.(vec_slot plan ~n ~d c u))
                done;
                y.(vec_slot plan ~n ~d r u) <- !s
              done
            done;
            [| y |]
        | Graph.Conv2d { src; out_channels; ksize; weights } ->
            let width, stride = geom src in
            let chans = vals.(src) in
            let cy = ksize / 2 and cx = ksize / 2 in
            Array.init out_channels (fun oc ->
                Array.init n (fun i ->
                    let s = ref 0.0 in
                    for ic = 0 to Array.length chans - 1 do
                      for dy = 0 to ksize - 1 do
                        for dx = 0 to ksize - 1 do
                          let shift =
                            stride * (((dy - cy) * width) + (dx - cx))
                          in
                          s :=
                            !s
                            +. (weights oc ic dy dx *. at chans.(ic) (i + shift))
                        done
                      done
                    done;
                    !s))
        | Graph.Act { src; act } ->
            let f =
              match act with
              | Graph.Square -> fun x -> x *. x
              | Graph.Poly coeffs ->
                  fun x ->
                    let deg = Array.length coeffs - 1 in
                    let acc = ref coeffs.(deg) in
                    for k = deg - 1 downto 0 do
                      acc := (!acc *. x) +. coeffs.(k)
                    done;
                    !acc
            in
            let mapped = Array.map (Array.map f) vals.(src) in
            (* mirror the packed-layout cleanup mask *)
            (match (node, shapes.(src)) with
            | ( Graph.Act { act = Graph.Poly coeffs; _ },
                Graph.Vec { dim; _ } )
              when coeffs.(0) <> 0.0 && needs_poly_mask plan ->
                Array.iter
                  (fun row ->
                    for s = dim to n - 1 do
                      row.(s) <- 0.0
                    done)
                  mapped
            | _ -> ());
            mapped
        | Graph.Pool { src; avg } ->
            let width, stride = geom src in
            let f = if avg then 0.25 else 1.0 in
            Array.map
              (fun x ->
                Array.init n (fun i ->
                    f
                    *. (at x i +. at x (i + stride)
                       +. at x (i + (stride * width))
                       +. at x (i + (stride * width) + stride))))
              vals.(src)
        | Graph.Flatten { src } ->
            let width, stride = geom src in
            let chans = vals.(src) in
            let grid = width / stride in
            let feat_per_chan = grid * grid in
            let y = Array.make n 0.0 in
            Array.iteri
              (fun c x ->
                for r = 0 to grid - 1 do
                  for cc = 0 to grid - 1 do
                    let pos = stride * ((r * width) + cc) in
                    let dst = (c * feat_per_chan) + (r * grid) + cc in
                    y.(dst) <- x.(pos)
                  done
                done)
              chans;
            [| y |]
      in
      vals.(i) <- v)
    nodes;
  Array.concat (List.map (fun o -> vals.(o)) (Graph.outputs g))

(* ------------------------------------------------------------------ *)
(* layout search                                                       *)

let cost ?(rbits = 60) ?(wbits = 30) p =
  let depth = Fhe_ir.Analysis.mult_depth p in
  let t = ref 0.0 in
  for i = 0 to Program.n_ops p - 1 do
    t := !t +. Fhe_cost.Model.arith_cost_estimate ~rbits ~wbits p ~depth i
  done;
  !t

type candidate = { plan : Layout.plan; prog : Program.t; est : float }

let search ?pool ?rbits ?wbits (g : Graph.t) =
  let plans = candidates g in
  if plans = [] then invalid_arg "Lower.search: no layout supports this graph";
  let eval plan =
    let prog = lower ~plan g in
    { plan; prog; est = cost ?rbits ?wbits prog }
  in
  let cands =
    match (pool, plans) with
    | None, _ | _, [ _ ] -> List.map eval plans
    | Some pool, first :: rest ->
        (* the first lowering populates any weight memos shared through
           the graph's closures; the rest then race read-only *)
        let head = eval first in
        head :: Fhe_par.Pool.map pool eval rest
    | _, [] -> assert false
  in
  let best =
    List.fold_left
      (fun acc c ->
        match acc with Some b when b.est <= c.est -> acc | _ -> Some c)
      None cands
  in
  (cands, Option.get best)
