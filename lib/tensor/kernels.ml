open Fhe_ir

let sum_slots b e ~n =
  assert (n > 0 && n land (n - 1) = 0);
  let rec go e k =
    if k = 0 then e else go (Builder.add b e (Builder.rotate b e k)) (k / 2)
  in
  go e (n / 2)

let mean_slots b e ~n =
  Builder.mul b (sum_slots b e ~n) (Builder.const b (1.0 /. float_of_int n))

let conv2d b img ~width ~height ~weights =
  let kh = Array.length weights in
  let kw = Array.length weights.(0) in
  ignore height;
  let cy = kh / 2 and cx = kw / 2 in
  let terms = ref [] in
  for dy = 0 to kh - 1 do
    for dx = 0 to kw - 1 do
      let w = weights.(dy).(dx) in
      if w <> 0.0 then begin
        let shift = ((dy - cy) * width) + (dx - cx) in
        let tap = Builder.rotate b img shift in
        let term =
          if w = 1.0 then tap else Builder.mul b tap (Builder.const b w)
        in
        terms := term :: !terms
      end
    done
  done;
  Builder.add_many b (List.rev !terms)

let replicate b x ~dim =
  if dim >= Builder.n_slots b then x
  else Builder.add b x (Builder.rotate b x (-dim))

let diag_of mat ~dim d = Array.init dim (fun r -> mat.(r).((r + d) mod dim))

let nonzero v = Array.exists (fun x -> x <> 0.0) v

let matvec_diag b x ~dim ~mat =
  assert (Array.length mat = dim);
  let xx = replicate b x ~dim in
  let terms = ref [] in
  for d = 0 to dim - 1 do
    let diag = diag_of mat ~dim d in
    if nonzero diag then begin
      let rx = Builder.rotate b xx d in
      let tag = Printf.sprintf "diag%d" d in
      (* the dim-length plaintext is zero-padded: the product is clean
         outside the first dim slots *)
      terms := Builder.mul b rx (Builder.vconst b ~tag diag) :: !terms
    end
  done;
  Builder.add_many b (List.rev !terms)

let matvec_bsgs b x ~dim ~mat =
  assert (Array.length mat = dim);
  let xx = replicate b x ~dim in
  let bs =
    let rec grow k = if k * k >= dim then k else grow (2 * k) in
    grow 1
  in
  let gs = (dim + bs - 1) / bs in
  let baby = Array.init bs (fun j -> Builder.rotate b xx j) in
  let outer = ref [] in
  for g = 0 to gs - 1 do
    let inner = ref [] in
    for j = 0 to bs - 1 do
      let d = (g * bs) + j in
      if d < dim then begin
        let diag = diag_of mat ~dim d in
        if nonzero diag then begin
          (* dim-periodic mask over (up to) 2·dim slots so the later
             full-width rotation by g·bs sees the wrapped values *)
          let pre_len = min (2 * dim) (Builder.n_slots b) in
          let pre =
            Array.init pre_len (fun r ->
                diag.((r + (2 * dim) - (g * bs)) mod dim))
          in
          let tag = Printf.sprintf "bsgs%d_%d" g j in
          inner := Builder.mul b baby.(j) (Builder.vconst b ~tag pre) :: !inner
        end
      end
    done;
    match List.rev !inner with
    | [] -> ()
    | terms ->
        outer := Builder.rotate b (Builder.add_many b terms) (g * bs) :: !outer
  done;
  let dirty = Builder.add_many b (List.rev !outer) in
  (* slots >= dim hold wrap-around garbage: mask them off so consumers
     (replicate) see a clean packed vector *)
  let ones = Array.make dim 1.0 in
  Builder.mul b dirty (Builder.vconst b ~tag:"bsgs_mask" ones)

(* Batched matvec, interleaved packing: component [r] of user [u] lives
   in slot [r*stride + u] with [stride = n_slots/dim], so a full-width
   rotation by [d*stride] is a per-user cyclic rotation by [d] — no
   replication needed, one rotation + one (tiled) diagonal mask per
   nonzero diagonal, for up to [stride] users at once. *)
let matvec_interleaved b x ~dim ~mat =
  assert (Array.length mat = dim);
  let n = Builder.n_slots b in
  assert (n mod dim = 0);
  let stride = n / dim in
  let terms = ref [] in
  for d = 0 to dim - 1 do
    let diag = diag_of mat ~dim d in
    if nonzero diag then begin
      let rx = Builder.rotate b x (d * stride) in
      let m = Array.init n (fun s -> diag.(s / stride)) in
      let tag = Printf.sprintf "ildiag%d" d in
      terms := Builder.mul b rx (Builder.vconst b ~tag m) :: !terms
    end
  done;
  Builder.add_many b (List.rev !terms)

(* Batched matvec, blocked packing: user [u] owns the contiguous slots
   [u*dim .. u*dim+dim-1].  A cyclic-within-block rotation by [d] needs
   two full-width rotations: by [d] for the rows that stay inside the
   block, and by [d - dim] for the rows that wrap, each under its own
   0/1-masked diagonal. *)
let matvec_blocked b x ~dim ~batch ~mat =
  assert (Array.length mat = dim);
  assert (batch >= 1 && batch * dim <= Builder.n_slots b);
  let terms = ref [] in
  for d = 0 to dim - 1 do
    let diag = diag_of mat ~dim d in
    if nonzero diag then begin
      let main = Array.make (batch * dim) 0.0 in
      let wrap = Array.make (batch * dim) 0.0 in
      for u = 0 to batch - 1 do
        for r = 0 to dim - 1 do
          if r + d < dim then main.((u * dim) + r) <- diag.(r)
          else wrap.((u * dim) + r) <- diag.(r)
        done
      done;
      if nonzero main then begin
        let tag = Printf.sprintf "blkd%d" d in
        terms :=
          Builder.mul b (Builder.rotate b x d) (Builder.vconst b ~tag main)
          :: !terms
      end;
      if nonzero wrap then begin
        let tag = Printf.sprintf "blkw%d" d in
        terms :=
          Builder.mul b
            (Builder.rotate b x (d - dim))
            (Builder.vconst b ~tag wrap)
          :: !terms
      end
    end
  done;
  Builder.add_many b (List.rev !terms)

let masked_gather b parts =
  let terms =
    List.map
      (fun (ct, src_off, len, dst_off) ->
        let mask = Array.make (src_off + len) 0.0 in
        for i = src_off to (src_off + len) - 1 do
          mask.(i) <- 1.0
        done;
        let tag = Printf.sprintf "gather%d_%d_%d" src_off len dst_off in
        let selected = Builder.mul b ct (Builder.vconst b ~tag mask) in
        Builder.rotate b selected (src_off - dst_off))
      parts
  in
  Builder.add_many b terms
