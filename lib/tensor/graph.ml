type act = Square | Poly of float array

type node =
  | Vec_input of { name : string; dim : int; batch : int }
  | Img_input of { prefix : string; channels : int; width : int }
  | Dense of { src : int; mat : float array array; rows : int }
  | Conv2d of {
      src : int;
      out_channels : int;
      ksize : int;
      weights : int -> int -> int -> int -> float;
    }
  | Act of { src : int; act : act }
  | Pool of { src : int; avg : bool }
  | Flatten of { src : int }

type shape =
  | Vec of { dim : int; batch : int }
  | Img of { channels : int; width : int; stride : int }

type t = {
  n_slots : int;
  mutable nodes : node list; (* reversed *)
  mutable shapes : shape list; (* reversed, parallel to nodes *)
  mutable n : int;
  mutable outputs : int list; (* reversed *)
}

let create ~n_slots () =
  if n_slots <= 0 || n_slots land (n_slots - 1) <> 0 then
    invalid_arg "Graph.create: n_slots must be a positive power of two";
  { n_slots; nodes = []; shapes = []; n = 0; outputs = [] }

let n_slots g = g.n_slots

let n_nodes g = g.n

let nodes g = Array.of_list (List.rev g.nodes)

let shapes g = Array.of_list (List.rev g.shapes)

let outputs g = List.rev g.outputs

let shape g id =
  if id < 0 || id >= g.n then invalid_arg "Graph.shape: bad id";
  List.nth g.shapes (g.n - 1 - id)

let push g node shape =
  g.nodes <- node :: g.nodes;
  g.shapes <- shape :: g.shapes;
  let id = g.n in
  g.n <- id + 1;
  id

let is_pow2 n = n > 0 && n land (n - 1) = 0

let input_vec g ~name ?(batch = 1) ~dim () =
  if dim <= 0 || dim > g.n_slots then invalid_arg "Graph.input_vec: dim";
  if batch < 1 then invalid_arg "Graph.input_vec: batch";
  push g (Vec_input { name; dim; batch }) (Vec { dim; batch })

let input_img g ~prefix ~channels ~width () =
  if channels < 1 then invalid_arg "Graph.input_img: channels";
  if width <= 0 || width * width > g.n_slots then
    invalid_arg "Graph.input_img: width";
  push g (Img_input { prefix; channels; width })
    (Img { channels; width; stride = 1 })

let dense g ~rows ~mat src =
  let dim = Array.length mat in
  if not (is_pow2 dim) then invalid_arg "Graph.dense: dim must be a power of 2";
  if Array.exists (fun row -> Array.length row <> dim) mat then
    invalid_arg "Graph.dense: matrix must be square";
  if rows < 1 || rows > dim then invalid_arg "Graph.dense: rows";
  (match shape g src with
  | Vec { dim = d; _ } ->
      if d > dim then invalid_arg "Graph.dense: input wider than matrix"
  | Img _ -> invalid_arg "Graph.dense: flatten the image first");
  let batch = match shape g src with Vec { batch; _ } -> batch | _ -> 1 in
  push g (Dense { src; mat; rows }) (Vec { dim = rows; batch })

let conv2d g ~out_channels ~ksize ~weights src =
  if out_channels < 1 then invalid_arg "Graph.conv2d: out_channels";
  if ksize < 1 || ksize mod 2 = 0 then
    invalid_arg "Graph.conv2d: kernel size must be odd";
  match shape g src with
  | Vec _ -> invalid_arg "Graph.conv2d: needs an image"
  | Img { width; stride; _ } ->
      push g (Conv2d { src; out_channels; ksize; weights })
        (Img { channels = out_channels; width; stride })

let act g a src =
  (match a with
  | Square -> ()
  | Poly cs ->
      if Array.length cs < 2 then
        invalid_arg "Graph.poly: need at least degree 1");
  push g (Act { src; act = a }) (shape g src)

let square g src = act g Square src

let poly g ~coeffs src = act g (Poly coeffs) src

let pool g ~avg src =
  match shape g src with
  | Vec _ -> invalid_arg "Graph.pool: needs an image"
  | Img { channels; width; stride } ->
      if width / (2 * stride) < 1 then invalid_arg "Graph.pool: map too small";
      push g (Pool { src; avg }) (Img { channels; width; stride = 2 * stride })

let pool_avg g src = pool g ~avg:true src

let pool_sum g src = pool g ~avg:false src

let flatten g src =
  match shape g src with
  | Vec _ -> invalid_arg "Graph.flatten: already a vector"
  | Img { channels; width; stride } ->
      let grid = width / stride in
      let feat = channels * grid * grid in
      if feat > g.n_slots then invalid_arg "Graph.flatten: too many features";
      push g (Flatten { src }) (Vec { dim = feat; batch = 1 })

let dim g id =
  match shape g id with
  | Vec { dim; _ } -> dim
  | Img _ -> invalid_arg "Graph.dim: not a vector"

let output g id =
  if id < 0 || id >= g.n then invalid_arg "Graph.output: bad id";
  g.outputs <- id :: g.outputs

let batch g =
  List.fold_left
    (fun acc n ->
      match n with Vec_input { batch; _ } -> max acc batch | _ -> acc)
    1 g.nodes

let has_img g =
  List.exists (fun n -> match n with Img_input _ -> true | _ -> false) g.nodes

(* the single dense/input vector width, when the graph has one — the
   batched packings need it to be globally uniform *)
let uniform_dim g =
  let dims =
    List.filter_map
      (fun n ->
        match n with
        | Vec_input { dim; _ } -> Some dim
        | Dense { mat; _ } -> Some (Array.length mat)
        | _ -> None)
      g.nodes
  in
  match List.sort_uniq compare dims with [ d ] -> Some d | _ -> None
