open Fhe_ir

(** Lowering from the tensor DSL to rotate/mask/mul-reduce circuits,
    plus the layout search that picks the packing (DESIGN.md §12).

    A {!Layout.plan} fixes the dense kernel and with it the slot
    placement of every vector in the graph; feature maps always use the
    strided layout.  [lower] is deterministic: the same graph and plan
    produce byte-identical programs (and therefore identical
    {!Fhe_ir.Intern} digests), which is what lets the registry pin the
    regenerated MLP/LeNet against their historical hand-built op
    streams. *)

val supports : Layout.plan -> Graph.t -> bool
(** Whether a packing can express this graph: the packed layouts
    ([diag]/[bsgs]) require batch 1; the batched layouts require one
    uniform matrix width ([interleaved] additionally an image-free graph
    and a batch no larger than [n_slots/dim], [blocked] a batch whose
    blocks fit the ciphertext). *)

val candidates : Graph.t -> Layout.plan list
(** The supported subset of {!Layout.all}, in canonical order. *)

val lower : ?plan:Layout.plan -> Graph.t -> Program.t
(** Emit the circuit under [plan] (default [diag]).
    @raise Invalid_argument if the plan does not support the graph. *)

val pack_inputs :
  plan:Layout.plan ->
  Graph.t ->
  data:(string * float array array) list ->
  (string * float array) list
(** Pack logical tensor data into circuit input vectors.  [data] binds
    each vector input's name to a [batch × dim] array of user vectors,
    and each image input's prefix to a [channels × width²] array of
    row-major channel planes. *)

val reference :
  plan:Layout.plan ->
  Graph.t ->
  data:(string * float array array) list ->
  float array array
(** The DSL interpreter: evaluate the graph on plain floats under the
    plan's slot placement — dense layers as per-user mat-vec products,
    convolutions/pools by direct (cyclic) index arithmetic over the
    strided maps, flatten as a gather — one [n_slots] slot vector per
    circuit output.  No rotations, masks, or add-tree ordering are
    involved, so agreement with {!Fhe_sim.Interp.run_reference} on the
    lowered circuit checks the emission, not itself. *)

val cost : ?rbits:int -> ?wbits:int -> Program.t -> float
(** Σ of {!Fhe_cost.Model.arith_cost_estimate} over the program (the
    §6.1 estimator at the default 60/30 geometry): the layout-search
    objective. *)

type candidate = { plan : Layout.plan; prog : Program.t; est : float }

val search :
  ?pool:Fhe_par.Pool.t ->
  ?rbits:int ->
  ?wbits:int ->
  Graph.t ->
  candidate list * candidate
(** Lower the graph under every supported plan, score each with {!cost},
    and return all candidates (canonical order) plus the winner — the
    cheapest, ties broken toward the earlier plan.  With [?pool] the
    candidate lowerings race in parallel; results are in submission
    order, so the outcome is byte-identical at any pool width. *)
