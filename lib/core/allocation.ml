open Fhe_ir

type t = {
  prm : Rtype.params;
  rho : int array;
  mul_level : int array;
  rin : int array array;
  mismatched : bool array;
}

exception Refused

(* Slot-indexed operand access. *)
let operand_array k = Array.of_list (Op.operands k)

let run prm ?(redistribute = true) ?(output_reserve = 0) ~order prog =
  Program.iteri
    (fun _ k ->
      if Op.is_scale_mgmt k then
        invalid_arg "Allocation.run: program already scale-managed")
    prog;
  let n = Program.n_ops prog in
  let is_c i = Program.vtype prog i = Op.Cipher in
  let rho = Array.make n (-1) in
  let mul_level = Array.make n (-1) in
  let mismatched = Array.make n false in
  let rin =
    Array.init n (fun i ->
        let ops = operand_array (Program.kind prog i) in
        Array.map (fun _ -> -1) ops)
  in
  let opnds = Array.init n (fun i -> operand_array (Program.kind prog i)) in
  (* Edges into each value: (user op, slot) pairs. *)
  let edges = Array.make n [] in
  Program.iteri
    (fun u k ->
      List.iteri (fun slot o -> edges.(o) <- (u, slot) :: edges.(o)) (Op.operands k))
    prog;
  let processed = Array.make n false in

  (* ------------------------------------------------------------------
     Redistribution (§6.3).  All updates are tentative until commit. *)
  let try_lower root target =
    let trho : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let trin : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
    let get_rho v =
      match Hashtbl.find_opt trho v with Some x -> x | None -> rho.(v)
    in
    let get_rin u slot =
      match Hashtbl.find_opt trin (u, slot) with
      | Some x -> x
      | None -> rin.(u).(slot)
    in
    let set_rin u slot x = Hashtbl.replace trin (u, slot) x in
    let rec lower v target depthk =
      if target < 0 || depthk > 64 then raise Refused;
      if get_rho v > target then begin
        List.iter
          (fun (u, slot) ->
            let cur = get_rin u slot in
            if cur > target then begin
              let delta = cur - target in
              match Program.kind prog u with
              | Op.Mul (a, b) when is_c a && is_c b ->
                  (* shift delta onto the sibling operand *)
                  let sib = 1 - slot in
                  let w = opnds.(u).(sib) in
                  if w = v then raise Refused (* squaring: nothing to shift to *);
                  let l = mul_level.(u) in
                  let nsib = get_rin u sib + delta in
                  if nsib > Rtype.max_reserve_for_level prm l then raise Refused;
                  (* the lowered edge must keep its principal level *)
                  if Rtype.principal_level prm target <> l then raise Refused;
                  if processed.(w) && nsib > get_rho w then raise Refused;
                  set_rin u slot target;
                  set_rin u sib nsib
              | Op.Mul _ ->
                  (* cipher×plain: the cipher demand is rho(u) + wbits *)
                  let nru = get_rho u - delta in
                  if Rtype.mul_operand_level prm nru <> mul_level.(u) then
                    raise Refused;
                  lower u nru (depthk + 1);
                  set_rin u slot target
              | Op.Add _ | Op.Sub _ | Op.Neg _ | Op.Rotate _ ->
                  (* demand equals the user's own reserve: recurse *)
                  let nru = get_rho u - delta in
                  lower u nru (depthk + 1);
                  (* cap all of u's outgoing demands at its new reserve *)
                  Array.iteri
                    (fun s o ->
                      if is_c o && get_rin u s > nru then set_rin u s nru)
                    opnds.(u)
              | Op.Input _ | Op.Const _ | Op.Vconst _ | Op.Rescale _
              | Op.Modswitch _ | Op.Upscale _ ->
                  assert false
            end)
          edges.(v);
        Hashtbl.replace trho v target
      end
    in
    match lower root target 0 with
    | () ->
        Hashtbl.iter (fun v x -> rho.(v) <- x) trho;
        Hashtbl.iter (fun (u, slot) x -> rin.(u).(slot) <- x) trin;
        true
    | exception Refused -> false
  in

  (* ------------------------------------------------------------------
     Backward pass in allocation order, subject to readiness. *)
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (Program.outputs prog);
  let compute_rho v =
    let base = if is_output.(v) then output_reserve else 0 in
    List.fold_left (fun acc (u, slot) -> max acc rin.(u).(slot)) base edges.(v)
  in
  let process v =
    let k = Program.kind prog v in
    if is_c v then begin
      rho.(v) <- compute_rho v;
      match k with
      | Op.Mul (a, b) when is_c a && is_c b ->
          if
            redistribute
            && Rtype.is_level_mismatch prm rho.(v)
            && try_lower v (rho.(v) - Rtype.mismatch_need prm rho.(v))
          then rho.(v) <- compute_rho v;
          let l, r1, r2 = Rtype.mul_split prm rho.(v) in
          mul_level.(v) <- l;
          mismatched.(v) <- Rtype.is_level_mismatch prm rho.(v);
          rin.(v).(0) <- r1;
          rin.(v).(1) <- r2
      | Op.Mul (a, b) ->
          if
            redistribute
            && Rtype.is_level_mismatch prm rho.(v)
            && try_lower v (rho.(v) - Rtype.mismatch_need prm rho.(v))
          then rho.(v) <- compute_rho v;
          mul_level.(v) <- Rtype.mul_operand_level prm rho.(v);
          mismatched.(v) <- Rtype.is_level_mismatch prm rho.(v);
          let rc = Rtype.pmul_operand prm rho.(v) in
          if is_c a then rin.(v).(0) <- rc;
          if is_c b then rin.(v).(1) <- rc
      | Op.Add _ | Op.Sub _ | Op.Neg _ | Op.Rotate _ ->
          Array.iteri
            (fun s o -> if is_c o then rin.(v).(s) <- rho.(v))
            opnds.(v)
      | Op.Input _ -> ()
      | Op.Const _ | Op.Vconst _ | Op.Rescale _ | Op.Modswitch _
      | Op.Upscale _ ->
          assert false
    end
    else rho.(v) <- 0;
    processed.(v) <- true
  in
  (* Kahn's algorithm on the reversed graph, priority = allocation rank. *)
  let pending = Array.make n 0 in
  Program.iteri
    (fun _ k -> List.iter (fun o -> pending.(o) <- pending.(o) + 1) (Op.operands k))
    prog;
  let heap = Fhe_util.Heap.create () in
  for v = 0 to n - 1 do
    if pending.(v) = 0 then Fhe_util.Heap.push heap ~prio:order.(v) v
  done;
  let visited = ref 0 in
  let rec drain () =
    match Fhe_util.Heap.pop heap with
    | None -> ()
    | Some v ->
        process v;
        incr visited;
        Array.iter
          (fun o ->
            pending.(o) <- pending.(o) - 1;
            if pending.(o) = 0 then Fhe_util.Heap.push heap ~prio:order.(o) o)
          opnds.(v);
        drain ()
  in
  drain ();
  assert (!visited = n);
  { prm; rho; mul_level; rin; mismatched }

let run_safe prm ?redistribute ?output_reserve ~order prog =
  let pre = ref [] in
  Program.iteri
    (fun i k ->
      if Op.is_scale_mgmt k then
        pre :=
          Diag.errorf ~op:i Diag.Allocation
            ~hint:"pass the original arithmetic program, not a managed one"
            "input already scale-managed (%s)" (Op.name k)
          :: !pre)
    prog;
  let n = Program.n_ops prog in
  if Array.length order <> n then
    pre :=
      Diag.errorf Diag.Allocation
        ~hint:"the order array must come from Ordering.run on this program"
        "allocation order has %d entries for %d ops" (Array.length order) n
      :: !pre;
  if !pre <> [] then Error (List.rev !pre)
  else
    match run prm ?redistribute ?output_reserve ~order prog with
    | a ->
        (* self-check: every ciphertext got a non-negative reserve and
           every multiplication a realizable operand level *)
        let bad = ref [] in
        Program.iteri
          (fun i k ->
            if Program.vtype prog i = Op.Cipher then begin
              if a.rho.(i) < 0 then
                bad :=
                  Diag.errorf ~op:i Diag.Allocation
                    "negative reserve %d bits" a.rho.(i)
                  :: !bad;
              match k with
              | Op.Mul _ when a.mul_level.(i) < 1 ->
                  bad :=
                    Diag.errorf ~op:i Diag.Allocation
                      "multiplication operand level %d < 1" a.mul_level.(i)
                    :: !bad
              | _ -> ()
            end)
          prog;
        if !bad = [] then Ok a else Error (List.rev !bad)
    | exception e -> Error [ Diag.of_exn Diag.Allocation e ]
