open Fhe_ir

(** The end-to-end reserve compiler (the paper's "this work").

    [ordering → allocation (+ redistribution) → placement (+ hoisting)],
    followed by managed CSE/DCE and a legality check.  The ablation
    switches reproduce the §8.3 breakdown:
    - [`Ba]: backward analysis only — no redistribution, no hoisting;
    - [`Ra]: reserve allocation with redistribution, no hoisting;
    - [`Full]: everything (default). *)

type variant = [ `Ba | `Ra | `Full ]

val variant_name : variant -> string
(** Canonical names: ["reserve-ba"], ["reserve-ra"], ["reserve-full"]
    — the naming scheme shared with [Fhe_strategy] and the cache keys. *)

type stats = {
  ordering_ms : float;
  allocation_ms : float;
  placement_ms : float;
  total_ms : float;  (** scale-management time: the sum of the above *)
}

val compile :
  ?variant:variant -> ?xmax_bits:int -> ?eager_input_upscale:bool ->
  rbits:int -> wbits:int -> Program.t -> Managed.t
(** Compile an arithmetic program; the result is validated.
    [xmax_bits] is the paper's [x_max] headroom (Table 1): the output
    reserve starts at that many bits instead of 0, keeping
    [m·x_max < Q] for values as large as [2^xmax_bits].
    @raise Failure if the produced program fails the legality check
    (which would indicate a compiler bug). *)

val compile_with_stats :
  ?variant:variant -> ?xmax_bits:int -> ?eager_input_upscale:bool ->
  rbits:int -> wbits:int -> Program.t -> Managed.t * stats
(** Same, timing each phase (for the Table 4 reproduction). *)

val cache_key :
  ?variant:variant -> ?xmax_bits:int -> ?eager_input_upscale:bool ->
  rbits:int -> wbits:int -> Program.t -> string
(** The {!Fhe_cache.Store} key [compile] uses for this exact
    configuration (defaults match [compile]'s): the program's
    {!Fhe_ir.Intern.digest} plus every knob that can change the plan.
    Exposed so external drivers (the differential harness) address the
    same entries instead of inventing parallel key schemes. *)

val eva_cache_key :
  ?xmax_bits:int -> rbits:int -> wbits:int -> Program.t -> string
(** Same for the EVA baseline, as cached by the fallback chain. *)

val compile_batch :
  ?pool:Fhe_par.Pool.t ->
  ?variant:variant -> ?xmax_bits:int -> ?eager_input_upscale:bool ->
  rbits:int -> wbits:int -> Program.t list ->
  (Managed.t, string) result list
(** Compile N independent programs, in parallel when a {!Fhe_par.Pool}
    is supplied.  Results come back in input order; a program whose
    compilation raises becomes an [Error] (the rendered exception)
    without disturbing its neighbours.  Programs share nothing, so the
    result list is identical at every pool width. *)

(** {1 Resilient driver}

    [compile] aborts on the first internal failure — correct for a
    compiler bug hunt, wrong for a service compiling untrusted programs.
    {!compile_safe} instead validates after every pass, self-checks the
    compiled program against the reference execution (the differential
    oracle), and on any failure walks a bounded fallback chain:
    reserve [`Full] → [`Ra] → [`Ba] → EVA at the requested waterline →
    EVA at degraded waterlines.  Every failure is collected as
    structured {!Diag.t} diagnostics; nothing escapes as an exception. *)

type engine = [ `Reserve of variant | `Eva ]

type attempt = {
  engine : engine;
  wbits : int;  (** waterline this attempt ran at *)
  diags : Diag.t list;  (** why it failed *)
}

type outcome = {
  managed : Managed.t;  (** the compiled, validated program *)
  engine : engine;  (** which engine produced it *)
  wbits : int;  (** the waterline it was compiled at *)
  fallbacks : attempt list;
      (** failed attempts preceding success, in chain order; empty when
          the requested configuration succeeded *)
  warnings : Diag.t list;  (** degradation notices *)
}

val engine_name : engine -> string
(** [`Reserve v] names as {!variant_name}[ v] (so [`Reserve `Full] is
    ["reserve-full"], not the historical ["reserve"]); [`Eva] is
    ["eva"]. *)

val attempt_diags : attempt list -> Diag.t list
(** All diagnostics of a (failed) chain, flattened in chain order. *)

val compile_safe :
  ?variant:variant ->
  ?xmax_bits:int ->
  ?eager_input_upscale:bool ->
  ?strict:bool ->
  ?waterline_steps:int list ->
  ?oracle:bool ->
  ?oracle_inputs:(string * float array) list ->
  ?noise:Fhe_sim.Noise.t ->
  rbits:int -> wbits:int -> Program.t ->
  (outcome, attempt list) result
(** Never raises.  [strict] (default false) disables the fallback chain:
    only the requested configuration is attempted.  [waterline_steps]
    (default [[5; 10]]) are bit decrements applied to [wbits] for the
    final EVA fallbacks (steps that would drop the waterline below 1 bit
    are skipped, so the chain always terminates after at most
    [3 + 1 + length waterline_steps] attempts).  [oracle] (default true)
    runs the differential self-check on [oracle_inputs] (synthesized
    deterministically from the program when omitted); [noise] is its
    error model.  [Error attempts] means every link of the chain failed;
    each attempt carries its own diagnostics. *)
