open Fhe_ir

type severity = Error | Warning | Info

type pass =
  | Parse
  | Ordering
  | Allocation
  | Placement
  | Validation
  | Oracle
  | Driver
  | Serve

type t = {
  severity : severity;
  pass : pass;
  op : Op.id option;
  msg : string;
  hint : string option;
}

type 'a pass_result = ('a, t list) result

let make ?(severity = Error) ?op ?hint pass msg =
  { severity; pass; op; msg; hint }

let errorf ?op ?hint pass fmt =
  Format.kasprintf (fun msg -> make ~severity:Error ?op ?hint pass msg) fmt

let warnf ?op ?hint pass fmt =
  Format.kasprintf (fun msg -> make ~severity:Warning ?op ?hint pass msg) fmt

let of_validator_error ?(severity = Error) (e : Validator.error) =
  make ~severity ~op:e.Validator.op Validation e.Validator.msg

let of_parse_error (e : Parser.error) =
  make Parse (Format.asprintf "%a" Parser.pp_error e)

let of_exn pass exn =
  let hint = "internal compiler invariant violated; please report this program" in
  let msg =
    match exn with
    | Failure m -> m
    | Invalid_argument m -> m
    | Assert_failure (file, line, _) ->
        Printf.sprintf "assertion failed at %s:%d" file line
    | e -> Printexc.to_string e
  in
  make ~hint pass ("uncaught exception: " ^ msg)

let is_error d = d.severity = Error

let errors ds = List.filter is_error ds

let pass_name = function
  | Parse -> "parse"
  | Ordering -> "ordering"
  | Allocation -> "allocation"
  | Placement -> "placement"
  | Validation -> "validation"
  | Oracle -> "oracle"
  | Driver -> "driver"
  | Serve -> "serve"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp ppf d =
  Format.fprintf ppf "%s[%s]" (severity_name d.severity) (pass_name d.pass);
  Option.iter (fun i -> Format.fprintf ppf " op %%%d" i) d.op;
  Format.fprintf ppf ": %s" d.msg;
  Option.iter (fun h -> Format.fprintf ppf " (hint: %s)" h) d.hint

let pp_list ppf ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ds

let to_string d = Format.asprintf "%a" pp d
