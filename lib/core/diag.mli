open Fhe_ir

(** Structured compiler diagnostics.

    The pass stack historically enforced its invariants by aborting
    ([failwith]/[invalid_arg]/[assert]); a production service compiling
    untrusted programs must instead degrade gracefully.  Every pass entry
    point that can fail has a [_safe] variant returning
    [('a, Diag.t list) result] (the {!pass_result} convention); the
    original exception-raising entry points remain as thin wrappers for
    callers that prefer to crash. *)

type severity = Error | Warning | Info

type pass =
  | Parse
  | Ordering
  | Allocation
  | Placement
  | Validation
  | Oracle  (** the differential-execution self check *)
  | Driver  (** the fallback-chain driver itself *)
  | Serve  (** the compile daemon: admission, deadlines, transport *)

type t = {
  severity : severity;
  pass : pass;  (** originating pass *)
  op : Op.id option;  (** offending op, when one can be named *)
  msg : string;
  hint : string option;  (** actionable suggestion, when one exists *)
}

type 'a pass_result = ('a, t list) result
(** The pass-result convention: [Ok x], or every problem found. *)

val make : ?severity:severity -> ?op:Op.id -> ?hint:string -> pass -> string -> t
(** [make pass msg] builds a diagnostic; [severity] defaults to [Error]. *)

val errorf :
  ?op:Op.id -> ?hint:string -> pass -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [errorf pass fmt ...] — an [Error] diagnostic with a formatted message. *)

val warnf :
  ?op:Op.id -> ?hint:string -> pass -> ('a, Format.formatter, unit, t) format4 -> 'a

val of_validator_error : ?severity:severity -> Validator.error -> t
(** Lift a legality-checker error ([pass = Validation], op preserved). *)

val of_parse_error : Parser.error -> t
(** Lift a typed parse error ([pass = Parse]; the line number lands in
    the message since parse errors precede op ids). *)

val of_exn : pass -> exn -> t
(** Demote an escaped exception ([Failure], [Invalid_argument],
    [Assert_failure], ...) to an [Error] diagnostic, with a hint that an
    internal invariant was violated. *)

val is_error : t -> bool

val errors : t list -> t list
(** The [Error]-severity subset, in order. *)

val pass_name : pass -> string

val severity_name : severity -> string

val pp : Format.formatter -> t -> unit
(** Renders ["error\[allocation\] op %12: message (hint: ...)"]. *)

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line. *)

val to_string : t -> string
