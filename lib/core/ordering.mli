open Fhe_ir

(** Allocation ordering (§6.1): decide in which order the backward
    reserve analysis visits values, prioritizing heavy operations.

    Each op's latency is estimated from its multiplicative depth
    (level ≈ [1 + depth·ω], interpolated in Table 3).  Walking from the
    heaviest op along the dependence chain that realizes its depth up to
    the return value, chain members are ranked return-side first — so a
    heavy op's whole downstream chain is allocated before anything else,
    giving redistribution maximal freedom on that chain. *)

val run : Rtype.params -> Program.t -> int array
(** [run p prog] returns a rank per value id: smaller rank = allocated
    earlier.  Every value gets a distinct rank in [0 .. n-1]. *)

val run_safe : Rtype.params -> Program.t -> int array Diag.pass_result
(** Like {!run} but never raises: rejects scale-managed input with a
    diagnostic per offending op, demotes escaped exceptions, and
    self-checks that the produced rank is a permutation. *)
