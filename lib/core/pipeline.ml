open Fhe_ir

type variant = [ `Ba | `Ra | `Full ]

type stats = {
  ordering_ms : float;
  allocation_ms : float;
  placement_ms : float;
  total_ms : float;
}

let zero_stats =
  { ordering_ms = 0.0; allocation_ms = 0.0; placement_ms = 0.0;
    total_ms = 0.0 }

let variant_name = function
  | `Ba -> "reserve-ba"
  | `Ra -> "reserve-ra"
  | `Full -> "reserve-full"

(* ------------------------------------------------------------------ *)
(* Content-addressed memoization.  Every pass here is a pure function
   of (program, configuration), so results are cached in the global
   Fhe_cache.Store keyed by the program's structural digest plus every
   knob that can change the output.

   The ordering pass does not depend on the variant switches
   (redistribute/hoist only reach allocation and placement), so it gets
   its own memo shared by all three variants: the differential driver,
   which compiles the same source under `Ba/`Ra/`Full, runs it once
   instead of three times. *)

let ordering_memo : int array Fhe_cache.Lru.t = Fhe_cache.Lru.create ()

let order_key ~digest ~rbits ~wbits =
  Fhe_cache.Key.make ~digest ~compiler:"reserve-ordering" ~rbits ~wbits ()

(* [digest] is [Some d] only when the store is consulted; order arrays
   in the memo are shared — allocation only reads them *)
let ordering_run ?digest prm prog =
  match digest with
  | Some digest -> (
      let key = order_key ~digest ~rbits:prm.Rtype.rbits ~wbits:prm.Rtype.wbits in
      match Fhe_cache.Lru.find ordering_memo key with
      | Some order -> order
      | None ->
          let order = Ordering.run prm prog in
          Fhe_cache.Lru.add ordering_memo key order;
          order)
  | None -> Ordering.run prm prog

let ordering_run_safe ?digest prm prog =
  match digest with
  | Some digest -> (
      let key = order_key ~digest ~rbits:prm.Rtype.rbits ~wbits:prm.Rtype.wbits in
      match Fhe_cache.Lru.find ordering_memo key with
      | Some order -> Ok order
      | None ->
          Result.map
            (fun order ->
              Fhe_cache.Lru.add ordering_memo key order;
              order)
            (Ordering.run_safe prm prog))
  | None -> Ordering.run_safe prm prog

let plan_key ~digest ~variant ~xmax_bits ~eager_input_upscale ~rbits ~wbits =
  Fhe_cache.Key.make ~digest ~compiler:(variant_name variant) ~rbits ~wbits
    ~xmax_bits
    ~extra:
      [ (match eager_input_upscale with
        | None -> "-"
        | Some b -> string_of_bool b) ]
    ()

let cache_key ?(variant = `Full) ?(xmax_bits = 0) ?eager_input_upscale ~rbits
    ~wbits prog =
  plan_key
    ~digest:(Intern.digest prog)
    ~variant ~xmax_bits ~eager_input_upscale ~rbits ~wbits

let eva_key ~digest ~xmax_bits ~rbits ~wbits =
  Fhe_cache.Key.make ~digest ~compiler:"eva" ~rbits ~wbits ~xmax_bits ()

let eva_cache_key ?(xmax_bits = 0) ~rbits ~wbits prog =
  eva_key ~digest:(Intern.digest prog) ~xmax_bits ~rbits ~wbits

let compile_uncached ?digest ~variant ~xmax_bits ?eager_input_upscale ~rbits
    ~wbits prog =
  let prm = Rtype.params ~rbits ~wbits in
  let redistribute = match variant with `Ba -> false | `Ra | `Full -> true in
  let hoist = match variant with `Ba | `Ra -> false | `Full -> true in
  let order, ordering_ms =
    Fhe_util.Timer.time (fun () -> ordering_run ?digest prm prog)
  in
  let alloc, allocation_ms =
    Fhe_util.Timer.time (fun () -> Allocation.run prm ~redistribute ~output_reserve:xmax_bits ~order prog)
  in
  let m, placement_ms =
    Fhe_util.Timer.time (fun () ->
        Placement.run ~hoist ?eager_input_upscale prog alloc)
  in
  Validator.check_exn m;
  ( m,
    { ordering_ms;
      allocation_ms;
      placement_ms;
      total_ms = ordering_ms +. allocation_ms +. placement_ms } )

let compile_with_stats ?(variant = `Full) ?(xmax_bits = 0)
    ?eager_input_upscale ~rbits ~wbits prog =
  if not (Fhe_cache.Store.active ()) then
    compile_uncached ~variant ~xmax_bits ?eager_input_upscale ~rbits ~wbits
      prog
  else begin
    let digest = Intern.digest prog in
    let key =
      plan_key ~digest ~variant ~xmax_bits ~eager_input_upscale ~rbits ~wbits
    in
    match Fhe_cache.Store.find key with
    | Some m -> (m, zero_stats)
    | None ->
        let (m, _) as r =
          compile_uncached ~digest ~variant ~xmax_bits ?eager_input_upscale
            ~rbits ~wbits prog
        in
        Fhe_cache.Store.add key m;
        r
  end

let compile ?variant ?xmax_bits ?eager_input_upscale ~rbits ~wbits prog =
  fst
    (compile_with_stats ?variant ?xmax_bits ?eager_input_upscale ~rbits ~wbits
       prog)

(* ------------------------------------------------------------------ *)
(* The resilient driver: validate after every pass, self-check the
   result against the reference execution, and degrade through a
   bounded fallback chain instead of crashing. *)

type engine = [ `Reserve of variant | `Eva ]

type attempt = { engine : engine; wbits : int; diags : Diag.t list }

type outcome = {
  managed : Managed.t;
  engine : engine;
  wbits : int;
  fallbacks : attempt list;
  warnings : Diag.t list;
}

let engine_name = function
  | `Reserve v -> variant_name v
  | `Eva -> "eva"

let attempt_diags atts = List.concat_map (fun a -> a.diags) atts

(* Deterministic synthetic inputs for the differential oracle when the
   caller has none at hand; shorter than the slot count (zero-padded by
   the interpreter) to keep the self-check cheap on wide programs. *)
let synth_inputs prog =
  let rng = Fhe_util.Prng.create 0x5eed in
  let n = min (Program.n_slots prog) 64 in
  let acc = ref [] in
  Program.iteri
    (fun _ k ->
      match k with
      | Op.Input { name; _ } when not (List.mem_assoc name !acc) ->
          acc :=
            ( name,
              Array.init n (fun _ ->
                  Fhe_util.Prng.uniform rng ~lo:(-1.0) ~hi:1.0) )
            :: !acc
      | _ -> ())
    prog;
  List.rev !acc

(* The managed program must compute the same function as its source, up
   to the propagated noise bound plus float-association slack. *)
let oracle_check ?noise prog m ~inputs =
  match
    let refs = Fhe_sim.Interp.run_reference prog ~inputs in
    let outs = Fhe_sim.Interp.run ?noise m ~inputs in
    let bad = ref [] in
    Array.iteri
      (fun i (v : Fhe_sim.Interp.value) ->
        let r = refs.(i) in
        Array.iteri
          (fun j x ->
            let bound = v.Fhe_sim.Interp.err +. (1e-9 *. (1.0 +. Float.abs r.(j))) in
            if Float.abs (x -. r.(j)) > bound && !bad = [] then
              bad :=
                [ Diag.errorf Diag.Oracle
                    "output %d slot %d: managed %g differs from reference %g \
                     beyond the noise bound %g"
                    i j x r.(j) bound ])
          v.Fhe_sim.Interp.data)
      outs;
    !bad
  with
  | [] -> Ok ()
  | ds -> Error ds
  | exception e -> Error [ Diag.of_exn Diag.Oracle e ]

let attempt_one ~xmax_bits ?eager_input_upscale ~rbits ~oracle ~inputs ?noise
    prog engine w =
  let compiled =
    match engine with
    | `Reserve variant -> (
        match Rtype.params ~rbits ~wbits:w with
        | prm -> (
            let digest =
              if Fhe_cache.Store.active () then Some (Intern.digest prog)
              else None
            in
            let cold () =
              let redistribute =
                match variant with `Ba -> false | `Ra | `Full -> true
              in
              let hoist =
                match variant with `Ba | `Ra -> false | `Full -> true
              in
              Result.bind (ordering_run_safe ?digest prm prog) (fun order ->
                  Result.bind
                    (Allocation.run_safe prm ~redistribute
                       ~output_reserve:xmax_bits ~order prog)
                    (fun alloc ->
                      Placement.run_safe ~hoist ?eager_input_upscale prog alloc))
            in
            match digest with
            | None -> cold ()
            | Some digest -> (
                (* same key as the plain pipeline: compile and
                   compile_safe share entries for identical configs *)
                let key =
                  plan_key ~digest ~variant ~xmax_bits ~eager_input_upscale
                    ~rbits ~wbits:w
                in
                match Fhe_cache.Store.find key with
                | Some m -> Ok m
                | None ->
                    Result.map
                      (fun m ->
                        Fhe_cache.Store.add key m;
                        m)
                      (cold ())))
        | exception e -> Error [ Diag.of_exn Diag.Driver e ])
    | `Eva -> (
        let cold () =
          match Fhe_eva.Eva.compile ~xmax_bits ~rbits ~wbits:w prog with
          | m -> (
              match Validator.check m with
              | Ok () -> Ok m
              | Error es -> Error (List.map Diag.of_validator_error es))
          | exception e -> Error [ Diag.of_exn Diag.Driver e ]
        in
        if not (Fhe_cache.Store.active ()) then cold ()
        else
          let key =
            eva_key ~digest:(Intern.digest prog) ~xmax_bits ~rbits ~wbits:w
          in
          match Fhe_cache.Store.find key with
          | Some m -> Ok m
          | None ->
              Result.map
                (fun m ->
                  Fhe_cache.Store.add key m;
                  m)
                (cold ()))
  in
  Result.bind compiled (fun m ->
      if not oracle then Ok m
      else Result.map (fun () -> m) (oracle_check ?noise prog m ~inputs))

let compile_safe ?(variant = `Full) ?(xmax_bits = 0) ?eager_input_upscale
    ?(strict = false) ?(waterline_steps = [ 5; 10 ]) ?(oracle = true)
    ?oracle_inputs ?noise ~rbits ~wbits prog =
  try
    let inputs =
      match oracle_inputs with
      | Some i -> i
      | None -> if oracle then synth_inputs prog else []
    in
    let chain =
      if strict then [ (`Reserve variant, wbits) ]
      else
        let variants =
          match variant with
          | `Full -> [ `Full; `Ra; `Ba ]
          | `Ra -> [ `Ra; `Ba ]
          | `Ba -> [ `Ba ]
        in
        List.map (fun v -> (`Reserve v, wbits)) variants
        @ (`Eva, wbits)
          :: List.filter_map
               (fun d ->
                 let w = wbits - d in
                 if d > 0 && w >= 1 then Some (`Eva, w) else None)
               waterline_steps
    in
    let rec go failed = function
      | [] -> Error (List.rev failed)
      | (engine, w) :: rest -> (
          match
            attempt_one ~xmax_bits ?eager_input_upscale ~rbits ~oracle ~inputs
              ?noise prog engine w
          with
          | Ok m ->
              let warnings =
                if failed = [] then []
                else
                  [ Diag.warnf Diag.Driver
                      "requested configuration failed; degraded to %s at \
                       waterline %d after %d failed attempt(s)"
                      (engine_name engine) w (List.length failed) ]
              in
              Ok
                { managed = m;
                  engine;
                  wbits = w;
                  fallbacks = List.rev failed;
                  warnings }
          | Error ds -> go ({ engine; wbits = w; diags = ds } :: failed) rest)
    in
    go [] chain
  with e ->
    Error
      [ { engine = `Reserve variant;
          wbits;
          diags = [ Diag.of_exn Diag.Driver e ] } ]

(* ------------------------------------------------------------------ *)
(* Batch compilation *)

let compile_batch ?pool ?variant ?xmax_bits ?eager_input_upscale ~rbits
    ~wbits progs =
  let one p =
    match compile ?variant ?xmax_bits ?eager_input_upscale ~rbits ~wbits p with
    | m -> Ok m
    | exception e -> Error (Printexc.to_string e)
  in
  match pool with
  | None -> List.map one progs
  | Some pool -> Fhe_par.Pool.map pool one progs
