open Fhe_ir

type result = {
  managed : Managed.t;
  iterations : int;
  accepted : int;
  best_cost : float;
}

let candidates prog =
  let ids = ref [] in
  Program.iteri
    (fun i k ->
      let planable =
        match k with
        | Op.Input { vt = Op.Cipher; _ } -> true
        | _ -> Program.vtype prog i = Op.Cipher && not (Op.is_leaf k)
      in
      if planable then ids := i :: !ids)
    prog;
  Array.of_list (List.rev !ids)

let default_iterations prog =
  let n = Array.length (candidates prog) in
  Fhe_util.Bits.clamp ~lo:200 ~hi:20000 (20 * n)

let compile ?(seed = 0x4eca7e) ?iterations ?(max_drop = 2) ?xmax_bits
    ?(objective = Fhe_cost.Model.estimate) ~rbits ~wbits prog =
  let cands = candidates prog in
  if Array.length cands = 0 then
    invalid_arg "Hecate.compile: no ciphertext values to plan over";
  let iterations =
    match iterations with Some i -> i | None -> default_iterations prog
  in
  let rng = Fhe_util.Prng.create seed in
  let n = Program.n_ops prog in
  let evaluate drops =
    let m = Fhe_eva.Eva.compile_with_drops ?xmax_bits ~rbits ~wbits ~drops prog in
    (m, objective m)
  in
  let cur = Array.make n 0 in
  let best_m, best_cost = evaluate cur in
  let best_m = ref best_m and best_cost = ref best_cost in
  let accepted = ref 0 in
  let iters_done = ref 1 in
  while !iters_done < iterations do
    let cand = Array.copy cur in
    (* mutate one or two plan points *)
    let points = 1 + Fhe_util.Prng.int rng 2 in
    for _ = 1 to points do
      let v = cands.(Fhe_util.Prng.int rng (Array.length cands)) in
      cand.(v) <- Fhe_util.Prng.int rng (max_drop + 1)
    done;
    let m, cost = evaluate cand in
    incr iters_done;
    if cost < !best_cost then begin
      best_cost := cost;
      best_m := m;
      Array.blit cand 0 cur 0 n;
      incr accepted
    end
  done;
  { managed = !best_m;
    iterations = !iters_done;
    accepted = !accepted;
    best_cost = !best_cost }
