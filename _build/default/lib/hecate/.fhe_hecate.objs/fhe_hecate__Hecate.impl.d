lib/hecate/hecate.ml: Array Fhe_cost Fhe_eva Fhe_ir Fhe_util List Managed Op Program
