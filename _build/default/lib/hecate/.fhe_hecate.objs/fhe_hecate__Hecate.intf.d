lib/hecate/hecate.mli: Fhe_ir Managed Program
