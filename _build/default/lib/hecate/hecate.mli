open Fhe_ir

(** The Hecate baseline: exploration-based scale management (CGO'22,
    §3.3 of the reserve paper).

    Hecate searches the space of scale-management plans instead of
    deriving one analytically.  A plan assigns each value a number of
    proactive downscales (rescale-to-waterline steps, possibly preceded
    by an upscale); a legalizer — EVA's forward pass honoring the plan —
    turns any plan into an RNS-CKKS-compliant program, whose latency is
    statically estimated with the Table 3 cost model.  Hill climbing
    over random single/double-point mutations keeps the best plan.
    Every candidate evaluation counts as one iteration: this is the
    "# Iters" column of Table 4 and the source of Hecate's compile-time
    blow-up that reserve analysis eliminates. *)

type result = {
  managed : Managed.t;  (** best plan found, legalized *)
  iterations : int;     (** candidate plans evaluated *)
  accepted : int;       (** mutations that improved the estimate *)
  best_cost : float;    (** estimated latency (µs) of [managed] *)
}

val default_iterations : Program.t -> int
(** The iteration budget heuristic: ~20 candidate plans per cipher
    arithmetic op, between 200 and 20000 (the paper's exploration counts
    scale with program complexity the same way). *)

val compile :
  ?seed:int ->
  ?iterations:int ->
  ?max_drop:int ->
  ?xmax_bits:int ->
  ?objective:(Managed.t -> float) ->
  rbits:int ->
  wbits:int ->
  Program.t ->
  result
(** Explore and return the best plan.  [seed] (default 0x4eca7e) makes
    runs reproducible; [max_drop] (default 2) bounds per-value
    downscales.  The all-zero plan (plain EVA) seeds the search, so the
    result never scores worse than EVA under the chosen [objective]
    (default: the Table 3 latency estimate).  Supplying an objective
    that mixes latency with a static error estimate — e.g.
    [Fhe_sim.Noise.static_log2_error] — reproduces the error-latency
    trade-off exploration of ELASM (USENIX Sec'23), the paper's
    follow-up cited in §9.1. *)
