(** Security estimation for context parameters.

    The homomorphic encryption standard (homomorphicencryption.org,
    ternary secrets, classical attacks) tabulates the largest total
    modulus [log2 (Q·P)] admissible per ring degree at 128/192/256-bit
    security; the paper fixes 128-bit for all experiments.  These checks
    gate the toy backend the same way SEAL's validator gates it. *)

type level = B128 | B192 | B256

val max_total_modulus_bits : n:int -> level -> int
(** Largest [log2] of the full modulus (chain primes × special prime)
    at the given ring degree and security level.
    @raise Invalid_argument for degrees outside 1024..32768. *)

val total_modulus_bits : Context.t -> int
(** [log2] (rounded up) of this context's full modulus, special prime
    included. *)

val check : Context.t -> level -> (unit, string) result
(** Whether the context satisfies the security level. *)

val classify : Context.t -> level option
(** The strongest standard level the context meets, if any. *)
