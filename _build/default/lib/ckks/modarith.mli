(** Arithmetic modulo word-sized primes.

    All moduli in this backend are NTT-friendly primes below [2^30], so
    products of two residues fit comfortably in OCaml's 63-bit native
    integers — no 128-bit emulation needed (this is why the backend uses
    ~28-bit prime chains instead of SEAL's 60-bit ones; see DESIGN.md). *)

val max_modulus_bits : int
(** 30: moduli must be below [2^30]. *)

val add : int -> int -> m:int -> int

val sub : int -> int -> m:int -> int

val mul : int -> int -> m:int -> int

val neg : int -> m:int -> int

val pow : int -> int -> m:int -> int
(** [pow b e ~m] with [e >= 0], by square-and-multiply. *)

val inv : int -> m:int -> int
(** Inverse modulo a prime [m] (Fermat). @raise Invalid_argument on 0. *)

val center : int -> m:int -> int
(** Map a residue to its centered representative in
    [(-m/2, m/2\]]. *)
