let max_modulus_bits = 30

let add a b ~m =
  let s = a + b in
  if s >= m then s - m else s

let sub a b ~m =
  let d = a - b in
  if d < 0 then d + m else d

let mul a b ~m = a * b mod m

let neg a ~m = if a = 0 then 0 else m - a

let rec pow b e ~m =
  if e = 0 then 1
  else begin
    let h = pow (mul b b ~m) (e / 2) ~m in
    if e land 1 = 1 then mul b h ~m else h
  end

let inv a ~m =
  if a = 0 then invalid_arg "Modarith.inv: zero";
  pow a (m - 2) ~m

let center a ~m = if a > m / 2 then a - m else a
