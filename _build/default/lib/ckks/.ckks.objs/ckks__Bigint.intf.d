lib/ckks/bigint.mli:
