lib/ckks/sampler.mli: Context Poly
