lib/ckks/keys.ml: Array Context Fftc Fhe_util Hashtbl List Poly Sampler
