lib/ckks/encoder.ml: Array Bigint Complex Context Fftc Float List Modarith Poly
