lib/ckks/evaluator.ml: Array Context Encoder Fhe_util Float Hashtbl Keys Modarith Ntt Poly Printf Sampler
