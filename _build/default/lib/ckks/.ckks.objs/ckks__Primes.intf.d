lib/ckks/primes.mli:
