lib/ckks/fftc.ml: Array Complex Float
