lib/ckks/modarith.mli:
