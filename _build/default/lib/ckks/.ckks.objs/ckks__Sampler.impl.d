lib/ckks/sampler.ml: Array Context Fhe_util Float Poly
