lib/ckks/keys.mli: Context Hashtbl Poly Sampler
