lib/ckks/poly.ml: Array Context Fhe_util Modarith Ntt
