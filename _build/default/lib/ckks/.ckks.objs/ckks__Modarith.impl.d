lib/ckks/modarith.ml:
