lib/ckks/fftc.mli: Complex
