lib/ckks/ntt.mli:
