lib/ckks/security.ml: Array Context Fhe_util Float List Printf Result
