lib/ckks/backend.ml: Array Context Evaluator Fhe_ir Fhe_util Keys List Managed Op Printf Program
