lib/ckks/bigint.ml: Array List Stdlib
