lib/ckks/backend.mli: Fhe_ir Keys Managed
