lib/ckks/poly.mli: Context
