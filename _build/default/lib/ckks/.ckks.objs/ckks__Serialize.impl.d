lib/ckks/serialize.ml: Array Buffer Bytes Char Context Evaluator Hashtbl Int64 Keys List Poly Printf Sampler String
