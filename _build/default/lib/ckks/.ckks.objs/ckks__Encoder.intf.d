lib/ckks/encoder.mli: Context Poly
