lib/ckks/context.mli: Fftc Ntt
