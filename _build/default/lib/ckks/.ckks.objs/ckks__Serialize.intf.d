lib/ckks/serialize.mli: Context Evaluator Keys Poly
