lib/ckks/context.ml: Array Fftc List Ntt Primes
