lib/ckks/evaluator.mli: Keys Poly
