lib/ckks/security.mli: Context
