(** NTT-friendly prime generation.

    An RNS-CKKS modulus chain needs primes [p ≡ 1 (mod 2N)] so that the
    2N-th roots of unity exist for the negacyclic NTT.  Primality is
    decided exactly below [2^32] with deterministic Miller–Rabin. *)

val is_prime : int -> bool
(** Exact for inputs below [2^32]. *)

val ntt_prime_chain : n:int -> bits:int -> count:int -> int list
(** [ntt_prime_chain ~n ~bits ~count] returns [count] distinct primes
    [p ≡ 1 (mod 2n)] as close to [2^bits] as possible (alternating
    above/below so products stay near [2^(bits·count)]).
    @raise Invalid_argument if [bits >= 30] or not enough primes exist
    in range. *)

val primitive_root : p:int -> two_n:int -> int
(** A primitive [two_n]-th root of unity mod [p]
    (requires [p ≡ 1 (mod two_n)]). *)
