(** Binary (de)serialization of ciphertexts and key material.

    A deployed FHE service moves encrypted inputs, evaluation keys and
    results over the wire; this module gives the backend that surface.
    The format is a little-endian length-prefixed framing with a magic
    tag and version byte per object; deserialization validates shape
    against the provided context.

    The secret key is deliberately {e not} serializable through this
    interface — only public material (ciphertexts, public key, switch
    keys) travels. *)

val ciphertext_to_bytes : Evaluator.ct -> bytes

val ciphertext_of_bytes : Context.t -> bytes -> (Evaluator.ct, string) result

val galois_keys_to_bytes : Keys.t -> bytes
(** Serialize the public evaluation material: public key, relin key, and
    all currently generated Galois keys. *)

val load_evaluation_keys :
  Context.t -> secret:Poly.t -> bytes -> (Keys.t, string) result
(** Rebuild a key set from serialized evaluation material.  Decryption
    needs the secret, which the caller keeps out of band; pass
    [Keys.t.s] from the generating side (or a dummy if the consumer only
    evaluates). *)
