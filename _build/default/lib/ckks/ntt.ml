type plan = {
  n : int;
  p : int;
  (* ψ^bitrev(i) tables, the standard Harvey/Longa–Naehrig layout *)
  psi : int array;
  psi_inv : int array;
  n_inv : int;
}

let bit_reverse x bits =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if x land (1 lsl i) <> 0 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

let make_plan ~n ~p =
  assert (n > 0 && n land (n - 1) = 0);
  let bits =
    let rec go b k = if k = 1 then b else go (b + 1) (k / 2) in
    go 0 n
  in
  let root = Primes.primitive_root ~p ~two_n:(2 * n) in
  let root_inv = Modarith.inv root ~m:p in
  let tab r =
    let a = Array.make n 0 in
    let cur = ref 1 in
    let plainpow = Array.make n 0 in
    for i = 0 to n - 1 do
      plainpow.(i) <- !cur;
      cur := Modarith.mul !cur r ~m:p
    done;
    for i = 0 to n - 1 do
      a.(i) <- plainpow.(bit_reverse i bits)
    done;
    a
  in
  { n;
    p;
    psi = tab root;
    psi_inv = tab root_inv;
    n_inv = Modarith.inv n ~m:p }

let modulus t = t.p

let size t = t.n

(* Cooley–Tukey butterfly forward NTT with ψ folded in. *)
let forward t a =
  let p = t.p in
  let n = t.n in
  let m = ref 1 and len = ref (n / 2) in
  while !len >= 1 do
    let start = ref 0 in
    for i = 0 to !m - 1 do
      let w = t.psi.(!m + i) in
      for j = !start to !start + !len - 1 do
        let u = a.(j) in
        let v = Modarith.mul a.(j + !len) w ~m:p in
        a.(j) <- Modarith.add u v ~m:p;
        a.(j + !len) <- Modarith.sub u v ~m:p
      done;
      start := !start + (2 * !len)
    done;
    m := !m * 2;
    len := !len / 2
  done

(* Gentleman–Sande inverse with ψ^{-1} folded in. *)
let inverse t a =
  let p = t.p in
  let n = t.n in
  let m = ref (n / 2) and len = ref 1 in
  while !m >= 1 do
    let start = ref 0 in
    for i = 0 to !m - 1 do
      let w = t.psi_inv.(!m + i) in
      for j = !start to !start + !len - 1 do
        let u = a.(j) in
        let v = a.(j + !len) in
        a.(j) <- Modarith.add u v ~m:p;
        a.(j + !len) <- Modarith.mul (Modarith.sub u v ~m:p) w ~m:p
      done;
      start := !start + (2 * !len)
    done;
    m := !m / 2;
    len := !len * 2
  done;
  for i = 0 to n - 1 do
    a.(i) <- Modarith.mul a.(i) t.n_inv ~m:p
  done
