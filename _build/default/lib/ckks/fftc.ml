type plan = {
  n : int;  (* ring degree *)
  nh : int;  (* slot count = n/2 *)
  m : int;  (* 2n *)
  ksi : Complex.t array;  (* ksi.(j) = exp(2πi·j/m), j in [0, m] *)
  rot_group : int array;  (* 5^j mod m *)
}

let make_plan ~n =
  assert (n >= 4 && n land (n - 1) = 0);
  let nh = n / 2 in
  let m = 2 * n in
  let ksi =
    Array.init (m + 1) (fun j ->
        let t = 2.0 *. Float.pi *. float_of_int j /. float_of_int m in
        { Complex.re = cos t; im = sin t })
  in
  let rot_group = Array.make nh 1 in
  for j = 1 to nh - 1 do
    rot_group.(j) <- rot_group.(j - 1) * 5 mod m
  done;
  { n; nh; m; ksi; rot_group }

let slots t = t.nh

let rot_group t = t.rot_group

let bit_reverse_in_place a =
  let n = Array.length a in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- tmp
    end;
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit
  done

let embed t vals =
  let size = Array.length vals in
  assert (size = t.nh);
  bit_reverse_in_place vals;
  let len = ref 2 in
  while !len <= size do
    let lenh = !len / 2 in
    let lenq = !len * 4 in
    let i = ref 0 in
    while !i < size do
      for j = 0 to lenh - 1 do
        let idx = t.rot_group.(j) mod lenq * (t.m / lenq) in
        let u = vals.(!i + j) in
        let v = Complex.mul vals.(!i + j + lenh) t.ksi.(idx) in
        vals.(!i + j) <- Complex.add u v;
        vals.(!i + j + lenh) <- Complex.sub u v
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let embed_inv t vals =
  let size = Array.length vals in
  assert (size = t.nh);
  let len = ref size in
  while !len >= 2 do
    let lenh = !len / 2 in
    let lenq = !len * 4 in
    let i = ref 0 in
    while !i < size do
      for j = 0 to lenh - 1 do
        let idx = (lenq - (t.rot_group.(j) mod lenq)) * (t.m / lenq) in
        let u = Complex.add vals.(!i + j) vals.(!i + j + lenh) in
        let v =
          Complex.mul (Complex.sub vals.(!i + j) vals.(!i + j + lenh)) t.ksi.(idx)
        in
        vals.(!i + j) <- u;
        vals.(!i + j + lenh) <- v
      done;
      i := !i + !len
    done;
    len := !len / 2
  done;
  bit_reverse_in_place vals;
  let inv = 1.0 /. float_of_int size in
  for i = 0 to size - 1 do
    vals.(i) <- { Complex.re = vals.(i).Complex.re *. inv; im = vals.(i).Complex.im *. inv }
  done
