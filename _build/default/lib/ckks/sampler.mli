(** Randomness for key generation and encryption. *)

type t

val create : seed:int -> t

val ternary : t -> n:int -> int array
(** Uniform coefficients in [{-1, 0, 1}] (secret keys, encryption
    randomness). *)

val gaussian : t -> n:int -> ?sigma:float -> unit -> int array
(** Rounded Gaussian error coefficients (default σ = 3.2, the standard
    R-LWE error width). *)

val uniform_ntt : t -> Context.t -> level:int -> special:bool -> Poly.t
(** A uniformly random ring element, sampled directly in NTT form
    (valid because the NTT is a bijection per prime). *)
