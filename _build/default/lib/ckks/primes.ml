(* Deterministic Miller–Rabin: bases {2, 3, 5, 7} decide primality for
   all n < 3,215,031,751 > 2^31. *)
let is_prime n =
  if n < 2 then false
  else if n mod 2 = 0 then n = 2
  else begin
    let d = ref (n - 1) and r = ref 0 in
    while !d mod 2 = 0 do
      d := !d / 2;
      incr r
    done;
    let witness a =
      if a mod n = 0 then false
      else begin
        let x = ref (Modarith.pow (a mod n) !d ~m:n) in
        if !x = 1 || !x = n - 1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to !r - 1 do
               x := Modarith.mul !x !x ~m:n;
               if !x = n - 1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      end
    in
    not (List.exists witness [ 2; 3; 5; 7 ])
  end

let ntt_prime_chain ~n ~bits ~count =
  if bits >= Modarith.max_modulus_bits then
    invalid_arg "Primes.ntt_prime_chain: bits must be < 30";
  let step = 2 * n in
  let base = 1 lsl bits in
  (* candidates ≡ 1 (mod 2n), alternating below/above 2^bits *)
  let start = (base / step * step) + 1 in
  let found = ref [] and nfound = ref 0 and k = ref 0 in
  while !nfound < count do
    let cand =
      if !k mod 2 = 0 then start + (!k / 2 * step)
      else start - (((!k / 2) + 1) * step)
    in
    incr k;
    if cand > step && cand < 1 lsl Modarith.max_modulus_bits then begin
      if is_prime cand && not (List.mem cand !found) then begin
        found := cand :: !found;
        incr nfound
      end
    end
    else if cand >= 1 lsl Modarith.max_modulus_bits && start - ((!k / 2) + 1) * step <= step
    then invalid_arg "Primes.ntt_prime_chain: not enough primes in range"
  done;
  List.rev !found

let primitive_root ~p ~two_n =
  if (p - 1) mod two_n <> 0 then
    invalid_arg "Primes.primitive_root: p-1 not divisible by 2n";
  let cofactor = (p - 1) / two_n in
  let rec search g =
    if g >= p then invalid_arg "Primes.primitive_root: none found"
    else begin
      let cand = Modarith.pow g cofactor ~m:p in
      (* cand has order dividing two_n; check it's exactly two_n *)
      if Modarith.pow cand (two_n / 2) ~m:p = p - 1 then cand else search (g + 1)
    end
  in
  search 2
