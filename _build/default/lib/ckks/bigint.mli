(** A minimal unsigned big integer, just large enough for exact CRT
    reconstruction at decode time (no arbitrary-precision library is
    available in the sealed build environment).

    Representation: little-endian limbs in base [2^26]. *)

type t

val zero : t

val of_int : int -> t
(** Of a non-negative OCaml int. *)

val mul_small : t -> int -> t
(** Multiply by a non-negative word-sized int. *)

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val compare : t -> t -> int

val divmod_small : t -> int -> t * int
(** Quotient and remainder by a positive word-sized int. *)

val to_float : t -> float
(** Nearest float (loses precision beyond 53 bits, as expected). *)

val product : int list -> t
(** Product of non-negative ints. *)
