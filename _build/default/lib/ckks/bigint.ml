(* little-endian limbs, base 2^26; invariant: no trailing zero limb *)
type t = int array

let base_bits = 26

let base = 1 lsl base_bits

let mask = base - 1

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero = [||]

let of_int x =
  if x < 0 then invalid_arg "Bigint.of_int: negative";
  let rec go x acc = if x = 0 then List.rev acc else go (x lsr base_bits) ((x land mask) :: acc) in
  Array.of_list (go x [])

let mul_small a k =
  if k < 0 then invalid_arg "Bigint.mul_small: negative";
  if k = 0 then zero
  else begin
    let n = Array.length a in
    let out = Array.make (n + 3) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = (a.(i) * k) + !carry in
      out.(i) <- v land mask;
      carry := v lsr base_bits
    done;
    let i = ref n in
    while !carry <> 0 do
      out.(!i) <- !carry land mask;
      carry := !carry lsr base_bits;
      incr i
    done;
    normalize out
  end

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < Array.length a then a.(i) else 0 in
    let bv = if i < Array.length b then b.(i) else 0 in
    let v = av + bv + !carry in
    out.(i) <- v land mask;
    carry := v lsr base_bits
  done;
  out.(n) <- !carry;
  normalize out

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let sub a b =
  if compare a b < 0 then invalid_arg "Bigint.sub: negative result";
  let n = Array.length a in
  let out = Array.make n 0 in
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let bv = if i < Array.length b then b.(i) else 0 in
    let v = a.(i) - bv - !borrow in
    if v < 0 then begin
      out.(i) <- v + base;
      borrow := 1
    end
    else begin
      out.(i) <- v;
      borrow := 0
    end
  done;
  normalize out

let divmod_small a k =
  if k <= 0 then invalid_arg "Bigint.divmod_small: non-positive divisor";
  let n = Array.length a in
  let out = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    out.(i) <- cur / k;
    rem := cur mod k
  done;
  (normalize out, !rem)

let to_float a =
  Array.fold_right
    (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb)
    a 0.0

let product ks = List.fold_left (fun acc k -> mul_small acc k) (of_int 1) ks
