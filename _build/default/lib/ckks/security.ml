type level = B128 | B192 | B256

(* homomorphicencryption.org standard, ternary secret, classical *)
let table =
  [ (1024, (27, 19, 14));
    (2048, (54, 37, 29));
    (4096, (109, 75, 58));
    (8192, (218, 152, 118));
    (16384, (438, 305, 237));
    (32768, (881, 611, 476)) ]

let max_total_modulus_bits ~n level =
  match List.assoc_opt n table with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Security.max_total_modulus_bits: no standard entry for n = %d" n)
  | Some (b128, b192, b256) -> (
      match level with B128 -> b128 | B192 -> b192 | B256 -> b256)

let total_modulus_bits (ctx : Context.t) =
  let bits = ref 0.0 in
  Array.iter
    (fun q -> bits := !bits +. Fhe_util.Bits.log2f (float_of_int q))
    ctx.Context.primes;
  bits := !bits +. Fhe_util.Bits.log2f (float_of_int ctx.Context.special);
  int_of_float (Float.ceil !bits)

let name = function B128 -> "128" | B192 -> "192" | B256 -> "256"

let check ctx level =
  let have = total_modulus_bits ctx in
  match max_total_modulus_bits ~n:ctx.Context.n level with
  | exception Invalid_argument m -> Error m
  | budget ->
      if have <= budget then Ok ()
      else
        Error
          (Printf.sprintf
             "modulus is %d bits but %s-bit security at n = %d allows only %d"
             have (name level) ctx.Context.n budget)

let classify ctx =
  List.find_opt
    (fun lv -> Result.is_ok (check ctx lv))
    [ B256; B192; B128 ]
