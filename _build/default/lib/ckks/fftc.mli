(** The special complex FFT of the CKKS canonical embedding.

    CKKS encodes a vector of [N/2] complex slots as the evaluations of a
    real-coefficient polynomial at the odd 2N-th roots of unity indexed
    by the multiplicative orbit of 5 (the "rot group") — so that slot
    rotation is a Galois automorphism.  [embed] maps coefficients to
    slots (decode direction); [embed_inv] is its inverse (encode
    direction).  Structure follows the HEAAN reference implementation. *)

type plan

val make_plan : n:int -> plan
(** [n] is the ring degree (power of two ≥ 4); the slot count is [n/2]. *)

val slots : plan -> int

val embed : plan -> Complex.t array -> unit
(** In-place special FFT over [n/2] values (coefficients → slots). *)

val embed_inv : plan -> Complex.t array -> unit
(** In-place inverse (slots → coefficients); exact inverse of {!embed}
    up to floating-point rounding. *)

val rot_group : plan -> int array
(** [5^j mod 2n] for [j < n/2] — the Galois elements implementing slot
    rotations (shared with the evaluator). *)
