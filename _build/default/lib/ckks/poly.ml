type t = {
  level : int;
  special : bool;
  ntt : bool;
  data : int array array;
}

let rows t = t.level + if t.special then 1 else 0

(* basis-prime index of row r: 0..level-1 are chain primes, the special
   row maps to Context index [levels] *)
let prime_index (ctx : Context.t) t r =
  if r < t.level then r
  else begin
    assert t.special;
    ctx.Context.levels
  end

let zero (ctx : Context.t) ~level ~special ~ntt =
  let nrows = level + if special then 1 else 0 in
  { level; special; ntt;
    data = Array.init nrows (fun _ -> Array.make ctx.Context.n 0) }

let copy t = { t with data = Array.map Array.copy t.data }

let of_coeff_array (ctx : Context.t) ~level ~special coeffs =
  assert (Array.length coeffs = ctx.Context.n);
  let t = zero ctx ~level ~special ~ntt:false in
  for r = 0 to rows t - 1 do
    let q = Context.prime ctx (prime_index ctx t r) in
    let row = t.data.(r) in
    for j = 0 to ctx.Context.n - 1 do
      row.(j) <- Fhe_util.Bits.pos_rem coeffs.(j) q
    done
  done;
  t

let to_ntt (ctx : Context.t) t =
  if t.ntt then t
  else begin
    let t' = copy t in
    for r = 0 to rows t - 1 do
      Ntt.forward (Context.plan ctx (prime_index ctx t r)) t'.data.(r)
    done;
    { t' with ntt = true }
  end

let of_ntt (ctx : Context.t) t =
  if not t.ntt then t
  else begin
    let t' = copy t in
    for r = 0 to rows t - 1 do
      Ntt.inverse (Context.plan ctx (prime_index ctx t r)) t'.data.(r)
    done;
    { t' with ntt = false }
  end

let check_compat a b =
  if a.level <> b.level || a.special <> b.special || a.ntt <> b.ntt then
    invalid_arg "Poly: basis/form mismatch"

let map2 (ctx : Context.t) f a b =
  check_compat a b;
  let out = copy a in
  for r = 0 to rows a - 1 do
    let q = Context.prime ctx (prime_index ctx a r) in
    let ra = a.data.(r) and rb = b.data.(r) and ro = out.data.(r) in
    for j = 0 to ctx.Context.n - 1 do
      ro.(j) <- f ra.(j) rb.(j) q
    done
  done;
  out

let add ctx a b = map2 ctx (fun x y q -> Modarith.add x y ~m:q) a b

let sub ctx a b = map2 ctx (fun x y q -> Modarith.sub x y ~m:q) a b

let mul ctx a b =
  if not (a.ntt && b.ntt) then invalid_arg "Poly.mul: operands must be NTT";
  map2 ctx (fun x y q -> Modarith.mul x y ~m:q) a b

let neg (ctx : Context.t) a =
  let out = copy a in
  for r = 0 to rows a - 1 do
    let q = Context.prime ctx (prime_index ctx a r) in
    let ro = out.data.(r) in
    for j = 0 to ctx.Context.n - 1 do
      ro.(j) <- Modarith.neg ro.(j) ~m:q
    done
  done;
  out

let mul_scalar_fn (ctx : Context.t) a scalar_of =
  let out = copy a in
  for r = 0 to rows a - 1 do
    let pi = prime_index ctx a r in
    let q = Context.prime ctx pi in
    let s = Fhe_util.Bits.pos_rem (scalar_of pi) q in
    let ro = out.data.(r) in
    for j = 0 to ctx.Context.n - 1 do
      ro.(j) <- Modarith.mul ro.(j) s ~m:q
    done
  done;
  out

let drop_last (ctx : Context.t) t =
  if not t.ntt then invalid_arg "Poly.drop_last: expected NTT form";
  let last_row = rows t - 1 in
  let last_pi = prime_index ctx t last_row in
  let q_last = Context.prime ctx last_pi in
  (* bring the dropped component to coefficient form *)
  let dropped = Array.copy t.data.(last_row) in
  Ntt.inverse (Context.plan ctx last_pi) dropped;
  let out =
    if t.special then zero ctx ~level:t.level ~special:false ~ntt:true
    else zero ctx ~level:(t.level - 1) ~special:false ~ntt:true
  in
  for r = 0 to rows out - 1 do
    let pi = prime_index ctx out r in
    let q = Context.prime ctx pi in
    let inv_last = Modarith.inv (q_last mod q) ~m:q in
    (* centered lift of the dropped component, reduced mod q, in NTT *)
    let lifted = Array.make ctx.Context.n 0 in
    for j = 0 to ctx.Context.n - 1 do
      lifted.(j) <- Fhe_util.Bits.pos_rem (Modarith.center dropped.(j) ~m:q_last) q
    done;
    Ntt.forward (Context.plan ctx pi) lifted;
    let src = t.data.(r) and dst = out.data.(r) in
    for j = 0 to ctx.Context.n - 1 do
      dst.(j) <- Modarith.mul (Modarith.sub src.(j) lifted.(j) ~m:q) inv_last ~m:q
    done
  done;
  out

let extend_row (ctx : Context.t) ~level ~special ~row_prime coeffs =
  let out = zero ctx ~level ~special ~ntt:false in
  for r = 0 to rows out - 1 do
    let pi = prime_index ctx out r in
    let q = Context.prime ctx pi in
    let dst = out.data.(r) in
    for j = 0 to ctx.Context.n - 1 do
      dst.(j) <- Fhe_util.Bits.pos_rem (Modarith.center coeffs.(j) ~m:row_prime) q
    done
  done;
  to_ntt ctx { out with ntt = false }

let automorphism (ctx : Context.t) t ~g =
  let n = ctx.Context.n in
  if g land 1 = 0 then invalid_arg "Poly.automorphism: g must be odd";
  let was_ntt = t.ntt in
  let t = of_ntt ctx t in
  let out = zero ctx ~level:t.level ~special:t.special ~ntt:false in
  for r = 0 to rows t - 1 do
    let q = Context.prime ctx (prime_index ctx t r) in
    let src = t.data.(r) and dst = out.data.(r) in
    for j = 0 to n - 1 do
      let k = j * g mod (2 * n) in
      if k < n then dst.(k) <- src.(j)
      else dst.(k - n) <- Modarith.neg src.(j) ~m:q
    done
  done;
  if was_ntt then to_ntt ctx out else out

let equal_basis a b = a.level = b.level && a.special = b.special

let restrict (ctx : Context.t) t ~level ~special =
  ignore ctx;
  if level > t.level || (special && not t.special) then
    invalid_arg "Poly.restrict: cannot grow a basis";
  let keep =
    Array.init (level + if special then 1 else 0) (fun r ->
        if r < level then Array.copy t.data.(r)
        else Array.copy t.data.(rows t - 1))
  in
  { level; special; ntt = t.ntt; data = keep }
