(** Negacyclic number-theoretic transform over [Z_p\[X\]/(X^n + 1)].

    Standard ψ-twisted radix-2 NTT (Cooley–Tukey decimation-in-time
    forward, Gentleman–Sande inverse) with ψ a primitive 2n-th root of
    unity, so pointwise products in the transform domain implement
    negacyclic convolution directly. *)

type plan

val make_plan : n:int -> p:int -> plan
(** Precompute twiddle tables for size [n] (a power of two) modulo the
    NTT-friendly prime [p ≡ 1 (mod 2n)]. *)

val modulus : plan -> int

val size : plan -> int

val forward : plan -> int array -> unit
(** In-place forward transform (coefficient → evaluation order). *)

val inverse : plan -> int array -> unit
(** In-place inverse transform; [inverse plan (forward plan a)] is the
    identity. *)
