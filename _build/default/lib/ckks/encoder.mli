(** CKKS encoding: real slot vectors ↔ scaled integer ring elements via
    the canonical embedding ({!Fftc}). *)

val encode :
  Context.t -> level:int -> scale:float -> float array -> Poly.t
(** Encode up to [n/2] real values (zero-extended) at the given scale
    into an NTT-form plaintext polynomial at [level].  Scales above
    [2^53] lose low-order rounding bits — an error ~[2^-53·|v|] relative
    to the value, far below the scheme noise. *)

val decode : Context.t -> scale:float -> Poly.t -> float array
(** Decode a (plaintext) polynomial back to [n/2] real slot values.
    Uses exact CRT reconstruction ({!Bigint}), so it is precise at any
    level. *)
