open Fhe_ir

(** Program-level cost estimation on top of {!Latency}.

    For a managed program this is the evaluation's "runtime latency"
    (the authors' testbed is substituted by the calibrated Table 3 cost
    model, see DESIGN.md §3).  For an unmanaged (arithmetic-only)
    program it provides the §6.1 estimator: operand level approximated
    as [1 + depth * wbits/rbits] from the multiplicative depth. *)

val classify : Program.t -> Op.id -> Latency.cls option
(** Latency class of an op; [None] for leaves (inputs/constants) and
    for all-plain arithmetic, which execute at negligible/offline cost.
    [Upscale] maps to [Add_cp] and [Neg] to [Modswitch_p] (both linear
    coefficient scans), matching the paper's worked-example accounting. *)

val op_cost : Managed.t -> Op.id -> float
(** Latency (µs) of one op at its operands' (max) level; [Rescale] is
    charged at its result level (paper calibration: Fig. 2b = 390,
    Fig. 3h benefit = 18). *)

val estimate : Managed.t -> float
(** Total latency (µs) of a managed program: the Σ of {!op_cost}. *)

val level_estimate : rbits:int -> wbits:int -> depth:int -> float
(** §6.1 lower-bound level estimate [1 + depth * ω] for an op at the
    given multiplicative depth (depth counts from 1 at the returns). *)

val arith_cost_estimate :
  rbits:int -> wbits:int -> Program.t -> depth:int array -> Op.id -> float
(** §6.1 per-op cost estimate used by allocation ordering: the latency
    class interpolated at [level_estimate ~depth:depth.(id)].
    Leaves and all-plain compute cost 0. *)
