(** The paper's Table 3: measured RNS-CKKS operation latencies (µs) per
    operand level, for SEAL 3.6.1 at [N = 2^15], [R = 2^60].

    The evaluation uses these numbers as the cost model: compiled-program
    "runtime latency" is the sum of per-op costs at each op's operand
    level, which is the same estimator exploration-based compilers use
    internally.  Levels beyond the measured 1–5 are linearly extrapolated
    with the level-4→5 slope (all rows grow close to linearly);
    fractional levels (the ordering heuristic of §6.1 produces them) are
    linearly interpolated. *)

type cls =
  | Mul_cc       (** cipher × cipher (incl. relinearization) *)
  | Mul_cp       (** cipher × plain *)
  | Add_cc       (** cipher + cipher (also sub) *)
  | Add_cp       (** cipher + plain *)
  | Rotate_c     (** rotation of a ciphertext (incl. key switching) *)
  | Rescale_c    (** rescale of a ciphertext *)
  | Modswitch_c  (** modswitch of a ciphertext *)
  | Modswitch_p  (** modswitch of a plaintext; also used for negation *)

val all : cls list

val name : cls -> string

val table : cls -> float array
(** Latencies in µs at operand levels 1..5 (index 0 = level 1). *)

val cost : cls -> float -> float
(** [cost c l] interpolated/extrapolated latency (µs) at fractional
    operand level [l].  Clamped below at level 1. *)
