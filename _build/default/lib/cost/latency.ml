type cls =
  | Mul_cc
  | Mul_cp
  | Add_cc
  | Add_cp
  | Rotate_c
  | Rescale_c
  | Modswitch_c
  | Modswitch_p

let all =
  [ Mul_cc; Mul_cp; Add_cc; Add_cp; Rotate_c; Rescale_c; Modswitch_c;
    Modswitch_p ]

let name = function
  | Mul_cc -> "cipher x cipher"
  | Mul_cp -> "cipher x plain"
  | Add_cc -> "cipher + cipher"
  | Add_cp -> "cipher + plain"
  | Rotate_c -> "rotate (cipher)"
  | Rescale_c -> "rescale (cipher)"
  | Modswitch_c -> "modswitch (cipher)"
  | Modswitch_p -> "modswitch (plain)"

(* Table 3 of the paper, µs, operand levels 1..5. *)
let table = function
  | Modswitch_p -> [| 29.; 43.; 57.; 71.; 86. |]
  | Modswitch_c -> [| 48.; 86.; 156.; 208.; 286. |]
  | Add_cp -> [| 50.; 98.; 153.; 209.; 269. |]
  | Add_cc -> [| 85.; 204.; 250.; 339.; 421. |]
  | Mul_cp -> [| 211.; 421.; 642.; 853.; 1120. |]
  | Rescale_c -> [| 1926.; 3119.; 4525.; 5706.; 6901. |]
  | Rotate_c -> [| 3828.; 7966.; 13584.; 20933.; 28832. |]
  | Mul_cc -> [| 4363.; 9172.; 15658.; 23517.; 33974. |]

let cost c l =
  let t = table c in
  let n = Array.length t in
  let l = if l < 1.0 then 1.0 else l in
  let lmax = float_of_int n in
  if l >= lmax then
    (* extrapolate with the last measured slope *)
    t.(n - 1) +. ((l -. lmax) *. (t.(n - 1) -. t.(n - 2)))
  else begin
    let i0 = int_of_float (floor l) in
    let frac = l -. floor l in
    t.(i0 - 1) +. (frac *. (t.(i0) -. t.(i0 - 1)))
  end
