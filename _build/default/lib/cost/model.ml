open Fhe_ir

let classify p i =
  let cipher o = Program.vtype p o = Op.Cipher in
  if not (cipher i) then
    (* plain-only compute happens offline / at encode time *)
    None
  else
    match Program.kind p i with
    | Op.Input _ | Op.Const _ | Op.Vconst _ -> None
    | Op.Add (a, b) | Op.Sub (a, b) ->
        Some (if cipher a && cipher b then Latency.Add_cc else Latency.Add_cp)
    | Op.Mul (a, b) ->
        Some (if cipher a && cipher b then Latency.Mul_cc else Latency.Mul_cp)
    | Op.Neg _ -> Some Latency.Modswitch_p
    | Op.Rotate _ -> Some Latency.Rotate_c
    | Op.Rescale _ -> Some Latency.Rescale_c
    | Op.Modswitch _ -> Some Latency.Modswitch_c
    | Op.Upscale _ -> Some Latency.Add_cp

let operand_level (m : Managed.t) i =
  match Op.operands (Program.kind m.Managed.prog i) with
  | [] -> m.Managed.level.(i)
  | ops -> List.fold_left (fun acc o -> max acc m.Managed.level.(o)) 1 ops

let op_cost (m : Managed.t) i =
  match classify m.Managed.prog i with
  | None -> 0.0
  | Some c ->
      (* Rescale is charged at its result level: this calibration
         reproduces the paper's worked example exactly (Fig. 2b sums to
         390, the Fig. 3h hoisting benefit to 18). *)
      let l =
        match Program.kind m.Managed.prog i with
        | Op.Rescale _ -> m.Managed.level.(i)
        | _ -> operand_level m i
      in
      Latency.cost c (float_of_int l)

let estimate (m : Managed.t) =
  let total = ref 0.0 in
  Program.iteri (fun i _ -> total := !total +. op_cost m i) m.Managed.prog;
  !total

let level_estimate ~rbits ~wbits ~depth =
  1.0 +. (float_of_int depth *. float_of_int wbits /. float_of_int rbits)

let arith_cost_estimate ~rbits ~wbits p ~depth i =
  match classify p i with
  | None -> 0.0
  | Some c ->
      let l = level_estimate ~rbits ~wbits ~depth:depth.(i) in
      Latency.cost c l
