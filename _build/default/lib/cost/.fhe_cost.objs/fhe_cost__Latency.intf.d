lib/cost/latency.mli:
