lib/cost/latency.ml: Array
