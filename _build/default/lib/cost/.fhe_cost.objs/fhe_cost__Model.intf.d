lib/cost/model.mli: Fhe_ir Latency Managed Op Program
