lib/cost/model.ml: Array Fhe_ir Latency List Managed Op Program
