type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length t = t.len

let grow t needed =
  let cap = Array.length t.data in
  if needed > cap then begin
    let ncap = max 8 (max needed (2 * cap)) in
    (* Safe: slots beyond [len] are never observed. *)
    let nd = Array.make ncap (Obj.magic 0) in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let push t x =
  grow t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i = check t i; t.data.(i)

let set t i x = check t i; t.data.(i) <- x

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f t =
  for i = 0 to t.len - 1 do f t.data.(i) done

let iteri f t =
  for i = 0 to t.len - 1 do f i t.data.(i) done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do acc := f !acc t.data.(i) done;
  !acc

let clear t = t.len <- 0; t.data <- [||]
