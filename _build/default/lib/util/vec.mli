(** A growable array (OCaml 5.1 predates stdlib [Dynarray]).

    Used by the IR builder and the compiler passes, which append
    operations one at a time and then freeze the result. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val to_array : 'a t -> 'a array
(** Freeze into a fresh array of exactly [length t] elements. *)

val of_array : 'a array -> 'a t

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val clear : 'a t -> unit
