(** Wall-clock timing for the compile-time experiments (Table 4). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed wall
    time in milliseconds. *)

val time_ms : (unit -> unit) -> float
(** Elapsed wall time of a thunk, in milliseconds. *)
