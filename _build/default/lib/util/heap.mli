(** A mutable binary min-heap over integer items with integer
    priorities.  Used by the reserve analysis to process values in
    allocation order subject to dataflow readiness. *)

type t

val create : unit -> t

val push : t -> prio:int -> int -> unit

val pop : t -> int option
(** Remove and return the item with the smallest priority (ties broken
    by insertion order being irrelevant but deterministic). *)

val is_empty : t -> bool

val length : t -> int
