(** Small integer helpers used throughout the scale analyses.

    All scale quantities in this project are integers counting {e bits}
    (i.e. [log2] of the actual scale / modulus / reserve).  The helpers
    here implement the ceiling/fraction arithmetic that the paper writes
    over the reals, exactly, over integers. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] for [b > 0].  Works for negative [a]. *)

val floor_div : int -> int -> int
(** [floor_div a b] is [floor (a / b)] for [b > 0].  Works for negative [a]. *)

val pos_rem : int -> int -> int
(** [pos_rem a b] is [a mod b] normalised into [0 .. b-1] for [b > 0]. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] bounds [x] into [\[lo, hi\]]. *)

val pow2f : int -> float
(** [pow2f b] is [2.0 ** b] as a float; [b] may be negative or large. *)

val log2f : float -> float
(** Base-2 logarithm. *)
