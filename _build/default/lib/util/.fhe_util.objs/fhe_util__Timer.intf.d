lib/util/timer.mli:
