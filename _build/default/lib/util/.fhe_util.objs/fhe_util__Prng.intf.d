lib/util/prng.mli:
