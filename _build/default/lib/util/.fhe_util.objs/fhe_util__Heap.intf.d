lib/util/heap.mli:
