lib/util/bits.ml:
