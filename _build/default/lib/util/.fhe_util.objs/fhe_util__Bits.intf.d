lib/util/bits.mli:
