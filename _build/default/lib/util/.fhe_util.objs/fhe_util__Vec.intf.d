lib/util/vec.mli:
