let ceil_div a b =
  assert (b > 0);
  if a >= 0 then (a + b - 1) / b
  else -((-a) / b)

let floor_div a b =
  assert (b > 0);
  if a >= 0 then a / b
  else -(((-a) + b - 1) / b)

let pos_rem a b =
  assert (b > 0);
  let r = a mod b in
  if r < 0 then r + b else r

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let pow2f b = 2.0 ** float_of_int b

let log2f x = log x /. log 2.0
