let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1000.0)

let time_ms f = snd (time f)
