type t = {
  mutable prio : int array;
  mutable item : int array;
  mutable len : int;
}

let create () = { prio = Array.make 16 0; item = Array.make 16 0; len = 0 }

let swap t i j =
  let p = t.prio.(i) and x = t.item.(i) in
  t.prio.(i) <- t.prio.(j);
  t.item.(i) <- t.item.(j);
  t.prio.(j) <- p;
  t.item.(j) <- x

let less t i j =
  t.prio.(i) < t.prio.(j) || (t.prio.(i) = t.prio.(j) && t.item.(i) < t.item.(j))

let push t ~prio x =
  if t.len = Array.length t.prio then begin
    let n = 2 * t.len in
    let p = Array.make n 0 and it = Array.make n 0 in
    Array.blit t.prio 0 p 0 t.len;
    Array.blit t.item 0 it 0 t.len;
    t.prio <- p;
    t.item <- it
  end;
  t.prio.(t.len) <- prio;
  t.item.(t.len) <- x;
  let i = ref t.len in
  t.len <- t.len + 1;
  while !i > 0 && less t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.item.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prio.(0) <- t.prio.(t.len);
      t.item.(0) <- t.item.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < t.len && less t l !m then m := l;
        if r < t.len && less t r !m then m := r;
        if !m <> !i then begin
          swap t !i !m;
          i := !m
        end
        else continue := false
      done
    end;
    Some x
  end

let is_empty t = t.len = 0

let length t = t.len
