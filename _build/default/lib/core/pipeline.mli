open Fhe_ir

(** The end-to-end reserve compiler (the paper's "this work").

    [ordering → allocation (+ redistribution) → placement (+ hoisting)],
    followed by managed CSE/DCE and a legality check.  The ablation
    switches reproduce the §8.3 breakdown:
    - [`Ba]: backward analysis only — no redistribution, no hoisting;
    - [`Ra]: reserve allocation with redistribution, no hoisting;
    - [`Full]: everything (default). *)

type variant = [ `Ba | `Ra | `Full ]

type stats = {
  ordering_ms : float;
  allocation_ms : float;
  placement_ms : float;
  total_ms : float;  (** scale-management time: the sum of the above *)
}

val compile :
  ?variant:variant -> ?xmax_bits:int -> ?eager_input_upscale:bool ->
  rbits:int -> wbits:int -> Program.t -> Managed.t
(** Compile an arithmetic program; the result is validated.
    [xmax_bits] is the paper's [x_max] headroom (Table 1): the output
    reserve starts at that many bits instead of 0, keeping
    [m·x_max < Q] for values as large as [2^xmax_bits].
    @raise Failure if the produced program fails the legality check
    (which would indicate a compiler bug). *)

val compile_with_stats :
  ?variant:variant -> ?xmax_bits:int -> ?eager_input_upscale:bool ->
  rbits:int -> wbits:int -> Program.t -> Managed.t * stats
(** Same, timing each phase (for the Table 4 reproduction). *)
