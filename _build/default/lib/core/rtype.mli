
(** The reserve type system (§5 of the paper), in exact integer (bit)
    arithmetic.

    A ciphertext with coefficient modulus [Q = R^l] and scale [m] has
    reserve [r = Q/m] — the scale budget available to succeeding
    operations.  We track [ρ = log2 r] as an integer number of bits; the
    paper's log_R quantities are [ρbits / rbits].  The key facts:

    - reserve is invariant under [rescale] (both [Q] and [m] divide by
      [R]), which decouples the analysis from rescale placement;
    - the waterline [m ≥ W] forces the {e principal level}
      [l = ⌈(ρ + ω)⌉] (in bits: [ceil((ρ + wbits) / rbits)]), the
      smallest level at which a ciphertext with reserve [ρ] can live;
    - ciphertext multiplication satisfies [ρ1 + ρ2 = ρ + l·rbits] at the
      common operand level [l = ⌈ρ + 2ω⌉], and is a {e level-mismatch}
      operation (a rescale of its result is required) when that operand
      level differs from the result's principal level. *)

type params = { rbits : int; wbits : int }

val params : rbits:int -> wbits:int -> params
(** @raise Invalid_argument unless [0 < wbits <= rbits]. *)

val principal_level : params -> int -> int
(** [principal_level p ρ] = [⌈(ρ + wbits) / rbits⌉], the minimal level
    of a ciphertext with reserve [ρ] bits (≥ 1 since [wbits > 0]). *)

val mul_operand_level : params -> int -> int
(** [mul_operand_level p ρ] = [⌈(ρ + 2·wbits) / rbits⌉]: the common
    operand level of a multiplication whose result has reserve [ρ]
    (Equation Mul, and PMul with the plaintext at the waterline). *)

val is_level_mismatch : params -> int -> bool
(** Whether a multiplication with result reserve [ρ] is level-mismatched
    ([mul_operand_level <> principal_level]). *)

val mismatch_need : params -> int -> int
(** The bits by which [ρ] must decrease to resolve a level mismatch:
    the paper's fractional part [{ρ + 2ω}], i.e.
    [(ρ + 2·wbits) − (mul_operand_level − 1)·rbits] (always > 0). *)

val mul_split : params -> int -> int * int * int
(** [mul_split p ρ] = [(l, ρ1, ρ2)]: the operand level and the equal
    reserve split [ρ1 + ρ2 = ρ + l·rbits] (§6.2, Equation 1; an odd
    total gives the extra bit to [ρ1]).  Both halves have principal
    level exactly [l]. *)

val pmul_operand : params -> int -> int
(** Cipher-operand reserve of a cipher×plain multiplication with result
    reserve [ρ]: [ρ + wbits] (the plaintext is encoded at the
    waterline). *)

val max_reserve_for_level : params -> int -> int
(** [max_reserve_for_level p l] = [l·rbits − wbits]: the largest reserve
    whose principal level is still [l] (the §6.3 redistribution bound). *)

val canonical_scale : params -> rho:int -> level:int -> int
(** Scale (bits) of a ciphertext realized with reserve [rho] at [level]:
    [level·rbits − rho]. *)

val check_edge : params -> rin:int -> level:int -> bool
(** Whether a ciphertext with incoming-reserve [rin] consumed at [level]
    is exactly at its principal level — the well-typedness condition for
    multiplication operands that redistribution must preserve. *)
