open Fhe_ir

type plan = {
  cuts : int list;
  segments : Managed.t list;
  bootstraps : int;
  total_latency_us : float;
  max_segment_level : int;
  sm_invocations : int;
  sm_time_ms : float;
}

(* forward multiplicative depth: levels a value has consumed since the
   inputs (0 at the leaves, +1 at every cipher multiplication) *)
let forward_depth p =
  let n = Program.n_ops p in
  let d = Array.make n 0 in
  Program.iteri
    (fun i k ->
      let base =
        List.fold_left (fun acc o -> max acc d.(o)) 0 (Op.operands k)
      in
      let inc =
        match k with
        | Op.Mul _ when Program.vtype p i = Op.Cipher -> 1
        | _ -> 0
      in
      d.(i) <- base + inc)
    p;
  d

(* Extract the sub-program of ops with depth in (lo, hi]: earlier cipher
   values become boundary inputs (bootstrapped arrivals), plaintext
   subgraphs are duplicated.  Returns the program and the number of
   boundary inputs, or None when the range holds nothing to compile. *)
let extract p depth users ~lo ~hi =
  let n = Program.n_ops p in
  let in_range v = depth.(v) > lo && depth.(v) <= hi in
  let is_c v = Program.vtype p v = Op.Cipher in
  let b = Builder.create ~dedup:true ~n_slots:(Program.n_slots p) () in
  let map = Array.make n (-1) in
  let boundaries = ref 0 in
  let rec resolve v =
    if map.(v) >= 0 then map.(v)
    else begin
      let k = Program.kind p v in
      let fresh_input = match k with Op.Input _ -> true | _ -> false in
      let id =
        if is_c v && (not (in_range v)) && not fresh_input then begin
          (* a ciphertext computed before this segment: refreshed input *)
          incr boundaries;
          Builder.input b (Printf.sprintf "boundary%d" v)
        end
        else
          match k with
          | Op.Input { name; vt } -> Builder.input b ~vt name
          | Op.Const c -> Builder.const b c
          | Op.Vconst { tag; values } -> Builder.vconst b ~tag values
          | Op.Add (x, y) -> Builder.add b (resolve x) (resolve y)
          | Op.Sub (x, y) -> Builder.sub b (resolve x) (resolve y)
          | Op.Mul (x, y) -> Builder.mul b (resolve x) (resolve y)
          | Op.Neg x -> Builder.neg b (resolve x)
          | Op.Rotate (x, amt) -> Builder.rotate b (resolve x) amt
          | Op.Rescale _ | Op.Modswitch _ | Op.Upscale _ ->
              invalid_arg "Bootplan: program already scale-managed"
      in
      map.(v) <- id;
      id
    end
  in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (Program.outputs p);
  let outputs = ref [] in
  for v = 0 to n - 1 do
    if in_range v then begin
      let crosses_out =
        List.exists (fun u -> depth.(u) > hi) users.(v)
        || (is_output.(v) && is_c v)
      in
      if crosses_out then outputs := resolve v :: !outputs
    end
  done;
  match List.rev !outputs with
  | [] -> None
  | outs -> Some (Builder.finish b ~outputs:outs, !boundaries)

let plan ?(bootstrap_cost_us = 1e6) ~max_level ~rbits ~wbits p =
  let depth = forward_depth p in
  let users = Analysis.users p in
  let maxd = Array.fold_left max 0 depth in
  let sm_invocations = ref 0 in
  let sm_time_ms = ref 0.0 in
  let compile_segment ~lo ~hi =
    match extract p depth users ~lo ~hi with
    | None -> Ok None
    | Some (seg, boundaries) ->
        let m, ms =
          Fhe_util.Timer.time (fun () -> Pipeline.compile ~rbits ~wbits seg)
        in
        incr sm_invocations;
        sm_time_ms := !sm_time_ms +. ms;
        if Managed.input_level m <= max_level then Ok (Some (m, boundaries))
        else Error ()
  in
  let rec build lo acc =
    if lo >= maxd then Ok (List.rev acc)
    else begin
      (* grow the segment while it still fits the level budget *)
      let rec grow hi best =
        if hi > maxd then best
        else
          match compile_segment ~lo ~hi with
          | Ok None -> grow (hi + 1) best (* nothing yet: keep growing *)
          | Ok (Some r) -> grow (hi + 1) (Some (hi, r))
          | Error () -> best
      in
      match grow (lo + 1) None with
      | None ->
          Result.Error
            (Printf.sprintf
               "segment after depth %d does not fit %d levels even alone" lo
               max_level)
      | Some (hi, (m, boundaries)) -> build hi ((hi, m, boundaries) :: acc)
    end
  in
  match build 0 [] with
  | Error _ as e -> e
  | Ok segs ->
      let cuts =
        match List.rev (List.map (fun (hi, _, _) -> hi) segs) with
        | [] -> []
        | last :: rest when last = maxd -> List.rev rest
        | all -> List.rev all
      in
      let segments = List.map (fun (_, m, _) -> m) segs in
      (* every boundary input is a ciphertext refresh (original inputs
         re-enter fresh and are not counted) *)
      let bootstraps =
        List.fold_left (fun acc (_, _, b) -> acc + b) 0 segs
      in
      let total_latency_us =
        List.fold_left
          (fun acc m -> acc +. Fhe_cost.Model.estimate m)
          (float_of_int bootstraps *. bootstrap_cost_us)
          segments
      in
      Ok
        { cuts;
          segments;
          bootstraps;
          total_latency_us;
          max_segment_level =
            List.fold_left (fun acc m -> max acc (Managed.input_level m)) 0
              segments;
          sm_invocations = !sm_invocations;
          sm_time_ms = !sm_time_ms }
