open Fhe_ir

(** Bootstrap-insertion planning: the optimization the paper's
    conclusion says fast scale management makes practical ("many
    homomorphic optimizations repeatedly require scale management").

    Deep circuits can exceed the level budget an encryption parameter
    affords.  This planner splits a program at multiplicative-depth
    boundaries into segments that each fit the budget; every ciphertext
    crossing a cut is refreshed by a (modelled) bootstrap that restores
    it to a fresh waterline-scale ciphertext.  Cuts are chosen greedily:
    a segment grows one depth layer at a time and is compiled with the
    reserve pipeline after every extension — dozens of scale-management
    invocations per plan, which is exactly why the paper's
    exploration-free analysis matters. *)

type plan = {
  cuts : int list;  (** multiplicative depths (from the inputs) cut after *)
  segments : Managed.t list;  (** each segment, scale-managed *)
  bootstraps : int;  (** ciphertext refreshes across all cuts *)
  total_latency_us : float;
      (** Σ segment latency + [bootstraps × bootstrap_cost_us] *)
  max_segment_level : int;
  sm_invocations : int;  (** scale-management runs the search performed *)
  sm_time_ms : float;  (** total time spent in scale management *)
}

val plan :
  ?bootstrap_cost_us:float ->
  max_level:int ->
  rbits:int ->
  wbits:int ->
  Program.t ->
  (plan, string) result
(** Plan bootstrap insertion so every segment needs at most [max_level]
    levels.  [bootstrap_cost_us] defaults to [1e6] (a CKKS bootstrap is
    on the order of seconds).  Fails if a single depth layer already
    exceeds the budget, or on scale-managed input. *)
