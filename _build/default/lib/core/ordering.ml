open Fhe_ir

let run (prm : Rtype.params) prog =
  let n = Program.n_ops prog in
  let depth = Analysis.mult_depth prog in
  let users = Analysis.users prog in
  let cost =
    Array.init n
      (Fhe_cost.Model.arith_cost_estimate ~rbits:prm.Rtype.rbits
         ~wbits:prm.Rtype.wbits prog ~depth)
  in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (Program.outputs prog);
  let contribution u =
    let inc =
      match Program.kind prog u with
      | Op.Mul _ when Program.vtype prog u = Op.Cipher -> 1
      | _ -> 0
    in
    depth.(u) + inc
  in
  (* The user continuing the maximal-depth chain of [v]; the paper's
     tie-breakers: lower-depth user first, then the heavier one. *)
  let chain_user v =
    let best = ref None in
    List.iter
      (fun u ->
        if contribution u = depth.(v) then
          match !best with
          | None -> best := Some u
          | Some b ->
              if
                depth.(u) < depth.(b)
                || (depth.(u) = depth.(b) && cost.(u) > cost.(b))
              then best := Some u)
      users.(v);
    !best
  in
  (* Heaviest ops first; ties resolved by depth (deeper chains expose
     more of the program) and then id for determinism. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      if cost.(a) <> cost.(b) then compare cost.(b) cost.(a)
      else if depth.(a) <> depth.(b) then compare depth.(b) depth.(a)
      else compare a b)
    order;
  let rank = Array.make n (-1) in
  let next = ref 0 in
  let assign v =
    if rank.(v) < 0 then begin
      rank.(v) <- !next;
      incr next
    end
  in
  Array.iter
    (fun h ->
      if rank.(h) < 0 then begin
        (* Collect the chain from h to the return value. *)
        let rec walk v acc =
          match chain_user v with
          | Some u when not (is_output.(v) && depth.(v) = 1) -> walk u (v :: acc)
          | _ -> v :: acc
        in
        (* [walk] yields the chain return-side first: rank the
           lower-depth (return-side) members before the heavy op. *)
        List.iter assign (walk h [])
      end)
    order;
  (* walk only covers live chains; rank leftovers (dead code) last. *)
  Array.iteri (fun v _ -> assign v) rank;
  rank

let run_safe prm prog =
  let pre = ref [] in
  Program.iteri
    (fun i k ->
      if Op.is_scale_mgmt k then
        pre :=
          Diag.errorf ~op:i Diag.Ordering
            ~hint:"pass the original arithmetic program, not a managed one"
            "input already scale-managed (%s)" (Op.name k)
          :: !pre)
    prog;
  if !pre <> [] then Error (List.rev !pre)
  else
    match run prm prog with
    | rank ->
        (* self-check: the rank must be a permutation of 0..n-1, or the
           allocation heap would starve/duplicate visits downstream *)
        let n = Program.n_ops prog in
        let seen = Array.make n false in
        let bad = ref [] in
        Array.iteri
          (fun v r ->
            if r < 0 || r >= n || seen.(r) then
              bad :=
                Diag.errorf ~op:v Diag.Ordering
                  "rank %d is out of range or duplicated" r
                :: !bad
            else seen.(r) <- true)
          rank;
        if !bad = [] then Ok rank else Error (List.rev !bad)
    | exception e -> Error [ Diag.of_exn Diag.Ordering e ]
