open Fhe_ir

type variant = [ `Ba | `Ra | `Full ]

type stats = {
  ordering_ms : float;
  allocation_ms : float;
  placement_ms : float;
  total_ms : float;
}

let compile_with_stats ?(variant = `Full) ?(xmax_bits = 0)
    ?eager_input_upscale ~rbits ~wbits prog =
  let prm = Rtype.params ~rbits ~wbits in
  let redistribute = match variant with `Ba -> false | `Ra | `Full -> true in
  let hoist = match variant with `Ba | `Ra -> false | `Full -> true in
  let order, ordering_ms =
    Fhe_util.Timer.time (fun () -> Ordering.run prm prog)
  in
  let alloc, allocation_ms =
    Fhe_util.Timer.time (fun () -> Allocation.run prm ~redistribute ~output_reserve:xmax_bits ~order prog)
  in
  let m, placement_ms =
    Fhe_util.Timer.time (fun () ->
        Placement.run ~hoist ?eager_input_upscale prog alloc)
  in
  Validator.check_exn m;
  ( m,
    { ordering_ms;
      allocation_ms;
      placement_ms;
      total_ms = ordering_ms +. allocation_ms +. placement_ms } )

let compile ?variant ?xmax_bits ?eager_input_upscale ~rbits ~wbits prog =
  fst
    (compile_with_stats ?variant ?xmax_bits ?eager_input_upscale ~rbits ~wbits
       prog)
