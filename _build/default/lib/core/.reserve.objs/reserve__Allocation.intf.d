lib/core/allocation.mli: Fhe_ir Program Rtype
