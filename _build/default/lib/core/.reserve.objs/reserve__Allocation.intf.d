lib/core/allocation.mli: Diag Fhe_ir Program Rtype
