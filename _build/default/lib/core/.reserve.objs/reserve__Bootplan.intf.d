lib/core/bootplan.mli: Fhe_ir Managed Program
