lib/core/ordering.ml: Analysis Array Diag Fhe_cost Fhe_ir List Op Program Rtype
