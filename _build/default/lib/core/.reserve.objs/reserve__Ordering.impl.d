lib/core/ordering.ml: Analysis Array Fhe_cost Fhe_ir List Op Program Rtype
