lib/core/pipeline.ml: Allocation Array Diag Fhe_eva Fhe_ir Fhe_sim Fhe_util Float List Managed Op Ordering Placement Program Result Rtype Validator
