lib/core/pipeline.ml: Allocation Fhe_ir Fhe_util Ordering Placement Rtype Validator
