lib/core/placement.mli: Allocation Fhe_ir Managed Program
