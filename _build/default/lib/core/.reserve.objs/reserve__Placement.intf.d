lib/core/placement.mli: Allocation Diag Fhe_ir Managed Program
