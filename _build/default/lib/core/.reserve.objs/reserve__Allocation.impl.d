lib/core/allocation.ml: Array Fhe_ir Fhe_util Hashtbl List Op Program Rtype
