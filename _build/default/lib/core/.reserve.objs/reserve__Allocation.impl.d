lib/core/allocation.ml: Array Diag Fhe_ir Fhe_util Hashtbl List Op Program Rtype
