lib/core/diag.mli: Fhe_ir Format Op Parser Validator
