lib/core/placement.ml: Allocation Analysis Array Emit Fhe_cost Fhe_ir Hashtbl Managed Op Program Rtype
