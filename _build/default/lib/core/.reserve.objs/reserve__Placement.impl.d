lib/core/placement.ml: Allocation Analysis Array Diag Emit Fhe_cost Fhe_ir Hashtbl List Managed Op Program Rtype Validator
