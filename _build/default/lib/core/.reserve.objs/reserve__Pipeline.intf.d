lib/core/pipeline.mli: Fhe_ir Managed Program
