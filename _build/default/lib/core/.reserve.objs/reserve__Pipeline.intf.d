lib/core/pipeline.mli: Diag Fhe_ir Fhe_sim Managed Program
