lib/core/diag.ml: Fhe_ir Format List Op Option Parser Printexc Printf Validator
