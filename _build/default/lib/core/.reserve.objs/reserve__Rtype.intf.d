lib/core/rtype.mli:
