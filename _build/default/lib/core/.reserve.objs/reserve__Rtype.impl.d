lib/core/rtype.ml: Fhe_util
