lib/core/bootplan.ml: Analysis Array Builder Fhe_cost Fhe_ir Fhe_util List Managed Op Pipeline Printf Program Result
