lib/core/ordering.mli: Fhe_ir Program Rtype
