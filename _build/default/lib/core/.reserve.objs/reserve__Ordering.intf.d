lib/core/ordering.mli: Diag Fhe_ir Program Rtype
