open Fhe_ir

(** Rescale placement (§7): turn a reserve-typed program into an
    RNS-CKKS-compliant managed program.

    {b Insertion} realizes every ciphertext at its canonical form
    (level = principal level, scale = [level·rbits − ρ]): inputs arrive
    at the waterline and are upscaled; multiplication operands are
    coerced down to their demanded (reserve, level) with
    modswitch/upscale/rescale chains; level-mismatched multiplications
    get rescales on their result.  Plaintext leaves are instantiated
    directly at whatever (scale, level) their context demands.

    {b Hoisting} then moves rescales later when profitable: an addition
    whose operands are both rescale results can instead be performed at
    the higher level with a single rescale after it; the benefit is the
    removed rescales minus the new one and the add's level penalty
    (Fig. 3h).  Candidates are re-examined to a fixpoint so merged
    rescales cascade down reduction trees.  Source rescales with
    multiple remaining uses are kept (the paper's stated limitation). *)

val insert : ?eager_input_upscale:bool -> Program.t -> Allocation.t -> Managed.t
(** Scale-management operation insertion.  The result is legal
    ({!Fhe_ir.Validator.check} passes) but not yet hoisted.
    [eager_input_upscale] (default true, the paper's Fig. 3f behaviour)
    raises every input to its canonical scale at declaration; turning it
    off keeps inputs at the waterline so per-use coercions can ride
    cheap modswitches — often slightly faster (an improvement beyond the
    paper; see DESIGN.md §8). *)

val hoist : Managed.t -> Managed.t
(** Rescale hoisting to a fixpoint; output remains legal. *)

val run :
  ?hoist:bool -> ?eager_input_upscale:bool -> Program.t -> Allocation.t ->
  Managed.t
(** [insert], optional [hoist] (default true), then managed CSE + DCE. *)

val run_safe :
  ?hoist:bool -> ?eager_input_upscale:bool -> Program.t -> Allocation.t ->
  Managed.t Diag.pass_result
(** Like {!run} but never raises, and the produced program is run
    through {!Fhe_ir.Validator.check}: an illegal result comes back as
    validation diagnostics instead of an exception downstream. *)
