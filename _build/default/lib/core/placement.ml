open Fhe_ir

(* --------------------------------------------------------------------
   Scale-management operation insertion.  [aux] on emitted values holds
   the concrete level. *)

let insert ?(eager_input_upscale = true) prog (alloc : Allocation.t) =
  let prm = alloc.Allocation.prm in
  let rb = prm.Rtype.rbits and wb = prm.Rtype.wbits in
  let e = Emit.create () in
  let n = Program.n_ops prog in
  let is_c i = Program.vtype prog i = Op.Cipher in
  let canon = Array.make n (-1) in
  let rho = alloc.Allocation.rho in
  let pl v = Rtype.principal_level prm rho.(v) in
  (* Plain inputs must be declared once; realize them at the highest
     level any ciphertext lives at and coerce down per use. *)
  let lmax = ref 1 in
  for v = 0 to n - 1 do
    if is_c v then lmax := max !lmax (pl v)
  done;
  let push_ms id =
    Emit.push e (Op.Modswitch id) ~scale:(Emit.scale e id)
      ~aux:(Emit.aux e id - 1)
  in
  let push_up id up =
    Emit.push e (Op.Upscale (id, up)) ~scale:(Emit.scale e id + up)
      ~aux:(Emit.aux e id)
  in
  let push_rs id =
    Emit.push e (Op.Rescale id) ~scale:(Emit.scale e id - rb)
      ~aux:(Emit.aux e id - 1)
  in
  (* Plaintext subgraphs are realized per (scale, level) demand. *)
  let plain_memo : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec plain v ~scale ~level =
    match Hashtbl.find_opt plain_memo (v, scale, level) with
    | Some id -> id
    | None ->
        let id =
          match Program.kind prog v with
          | (Op.Const _ | Op.Vconst _) as k ->
              Emit.plain_leaf e k ~scale ~aux:level
          | Op.Neg a ->
              Emit.push e (Op.Neg (plain a ~scale ~level)) ~scale ~aux:level
          | Op.Rotate (a, k) ->
              Emit.push e (Op.Rotate (plain a ~scale ~level, k)) ~scale
                ~aux:level
          | Op.Add (a, b) ->
              Emit.push e
                (Op.Add (plain a ~scale ~level, plain b ~scale ~level))
                ~scale ~aux:level
          | Op.Sub (a, b) ->
              Emit.push e
                (Op.Sub (plain a ~scale ~level, plain b ~scale ~level))
                ~scale ~aux:level
          | Op.Input { vt = Op.Plain; _ } ->
              let id = ref canon.(v) in
              while Emit.aux e !id > level do
                id := push_ms !id
              done;
              if Emit.scale e !id < scale then
                id := push_up !id (scale - Emit.scale e !id);
              assert (Emit.scale e !id = scale && Emit.aux e !id = level);
              !id
          | Op.Mul (a, b) ->
              (* split the demanded scale between the plain factors *)
              let s1 = (scale + 1) / 2 in
              let s2 = scale - s1 in
              Emit.push e
                (Op.Mul (plain a ~scale:s1 ~level, plain b ~scale:s2 ~level))
                ~scale ~aux:level
          | Op.Input _ | Op.Rescale _ | Op.Modswitch _ | Op.Upscale _ ->
              assert false
        in
        Hashtbl.replace plain_memo (v, scale, level) id;
        id
  in
  (* Subtype coercion: bring a canonical ciphertext down to the demanded
     (reserve, level).  Modswitches absorb full-R chunks of the reserve
     drop; the remainder is upscale-then-rescale. *)
  let coerce_memo : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let coerce id ~to_rho ~to_level =
    match Hashtbl.find_opt coerce_memo (id, to_rho, to_level) with
    | Some id' -> id'
    | None ->
        let cur_l = Emit.aux e id and cur_s = Emit.scale e id in
        let cur_rho = (cur_l * rb) - cur_s in
        let delta = cur_rho - to_rho and drop = cur_l - to_level in
        assert (delta >= 0 && drop >= 0);
        let n_ms = min drop (delta / rb) in
        let up = delta - (n_ms * rb) in
        let n_rs = drop - n_ms in
        let v = ref id in
        for _ = 1 to n_ms do
          v := push_ms !v
        done;
        if up > 0 then v := push_up !v up;
        for _ = 1 to n_rs do
          v := push_rs !v
        done;
        assert (Emit.aux e !v = to_level);
        assert (
          Emit.scale e !v = Rtype.canonical_scale prm ~rho:to_rho ~level:to_level);
        Hashtbl.replace coerce_memo (id, to_rho, to_level) !v;
        !v
  in
  let cipher_operand o ~to_rho ~to_level = coerce canon.(o) ~to_rho ~to_level in
  (* Rescale a mismatched multiplication result down to its principal
     level. *)
  let rec rescale_to id level =
    if Emit.aux e id <= level then id else rescale_to (push_rs id) level
  in
  Program.iteri
    (fun v k ->
      match k with
      | Op.Input { vt = Op.Plain; _ } ->
          canon.(v) <- Emit.push e k ~scale:wb ~aux:!lmax
      | _ when not (is_c v) -> () (* plain compute realized on demand *)
      | Op.Input _ ->
          let target_scale =
            Rtype.canonical_scale prm ~rho:rho.(v) ~level:(pl v)
          in
          let base = Emit.push e k ~scale:wb ~aux:(pl v) in
          (* Eagerly upscaling to the canonical scale matches the
             paper's Fig. 3f plans; leaving the input at the waterline
             keeps its effective reserve maximal, so later coercions can
             use cheap modswitches instead of upscale+rescale pairs. *)
          canon.(v) <-
            (if eager_input_upscale && target_scale > wb then
               push_up base (target_scale - wb)
             else base)
      | Op.Add (a, b) | Op.Sub (a, b) ->
          let target_scale =
            Rtype.canonical_scale prm ~rho:rho.(v) ~level:(pl v)
          in
          let resolve o =
            if is_c o then cipher_operand o ~to_rho:rho.(v) ~to_level:(pl v)
            else plain o ~scale:target_scale ~level:(pl v)
          in
          let a' = resolve a and b' = resolve b in
          let k' =
            match k with Op.Add _ -> Op.Add (a', b') | _ -> Op.Sub (a', b')
          in
          canon.(v) <- Emit.push e k' ~scale:target_scale ~aux:(pl v)
      | Op.Neg a ->
          let target_scale =
            Rtype.canonical_scale prm ~rho:rho.(v) ~level:(pl v)
          in
          let a' = cipher_operand a ~to_rho:rho.(v) ~to_level:(pl v) in
          canon.(v) <- Emit.push e (Op.Neg a') ~scale:target_scale ~aux:(pl v)
      | Op.Rotate (a, amt) ->
          let target_scale =
            Rtype.canonical_scale prm ~rho:rho.(v) ~level:(pl v)
          in
          let a' = cipher_operand a ~to_rho:rho.(v) ~to_level:(pl v) in
          canon.(v) <-
            Emit.push e (Op.Rotate (a', amt)) ~scale:target_scale ~aux:(pl v)
      | Op.Mul (a, b) ->
          let l = alloc.Allocation.mul_level.(v) in
          let resolve slot o =
            if is_c o then
              cipher_operand o ~to_rho:alloc.Allocation.rin.(v).(slot)
                ~to_level:l
            else plain o ~scale:wb ~level:l
          in
          let a' = resolve 0 a and b' = resolve 1 b in
          let raw_scale = Emit.scale e a' + Emit.scale e b' in
          let raw = Emit.push e (Op.Mul (a', b')) ~scale:raw_scale ~aux:l in
          canon.(v) <- rescale_to raw (pl v)
      | Op.Const _ | Op.Vconst _ | Op.Rescale _ | Op.Modswitch _
      | Op.Upscale _ ->
          assert false)
    prog;
  let outputs =
    Array.map
      (fun o ->
        if is_c o then canon.(o)
        else plain o ~scale:wb ~level:(Rtype.principal_level prm 0))
      (Program.outputs prog)
  in
  Emit.finish e ~outputs ~n_slots:(Program.n_slots prog) ~rbits:rb ~wbits:wb
    ~level:(fun v -> Emit.aux e v)

(* --------------------------------------------------------------------
   Rescale hoisting. *)

let hoist_once (m : Managed.t) =
  let p = m.Managed.prog in
  let n = Program.n_ops p in
  let uses = Analysis.n_uses p in
  let is_c i = Program.vtype p i = Op.Cipher in
  let rs_cost lvl = Fhe_cost.Latency.cost Fhe_cost.Latency.Rescale_c lvl in
  let add_cost lvl = Fhe_cost.Latency.cost Fhe_cost.Latency.Add_cc lvl in
  (* Decide which add/sub ops to hoist through. *)
  let decide = Array.make n false in
  let changed = ref false in
  for u = 0 to n - 1 do
    match Program.kind p u with
    | Op.Add (a, b) | Op.Sub (a, b) when is_c a && is_c b -> (
        match (Program.kind p a, Program.kind p b) with
        | Op.Rescale a0, Op.Rescale b0
          when m.Managed.scale.(a0) = m.Managed.scale.(b0)
               && m.Managed.level.(a0) = m.Managed.level.(b0) ->
            let l0 = float_of_int m.Managed.level.(a0) in
            let l1 = float_of_int m.Managed.level.(a) in
            (* sources are removable only when this add is their sole use
               (the paper's stated multi-use limitation) *)
            let removable =
              if a = b then if uses.(a) = 2 then 1 else 0
              else
                (if uses.(a) = 1 then 1 else 0)
                + if uses.(b) = 1 then 1 else 0
            in
            let benefit =
              (float_of_int (removable - 1) *. rs_cost l1)
              -. (add_cost l0 -. add_cost l1)
            in
            if benefit > 0.0 then begin
              decide.(u) <- true;
              changed := true
            end
        | _ -> ())
    | _ -> ()
  done;
  if not !changed then None
  else begin
    (* Rebuild with the selected adds moved above their rescales. *)
    let e = Emit.create () in
    let remap = Array.make n (-1) in
    Program.iteri
      (fun i k ->
        if decide.(i) then begin
          let a, b, mk =
            match k with
            | Op.Add (a, b) -> (a, b, fun x y -> Op.Add (x, y))
            | Op.Sub (a, b) -> (a, b, fun x y -> Op.Sub (x, y))
            | _ -> assert false
          in
          let a0 =
            match Program.kind p a with Op.Rescale x -> x | _ -> assert false
          in
          let b0 =
            match Program.kind p b with Op.Rescale x -> x | _ -> assert false
          in
          let hi =
            Emit.push e
              (mk remap.(a0) remap.(b0))
              ~scale:m.Managed.scale.(a0) ~aux:m.Managed.level.(a0)
          in
          remap.(i) <-
            Emit.push e (Op.Rescale hi) ~scale:m.Managed.scale.(i)
              ~aux:m.Managed.level.(i)
        end
        else
          (* injective rebuild: no dedup needed, plain push is cheap *)
          remap.(i) <-
            Emit.push e
              (Op.map_operands (fun o -> remap.(o)) k)
              ~scale:m.Managed.scale.(i) ~aux:m.Managed.level.(i))
      p;
    let outputs = Array.map (fun o -> remap.(o)) (Program.outputs p) in
    let m' =
      Emit.finish e ~outputs ~n_slots:(Program.n_slots p)
        ~rbits:m.Managed.rbits ~wbits:m.Managed.wbits
        ~level:(fun v -> Emit.aux e v)
    in
    Some (Managed.dce m')
  end

let hoist m =
  let rec fix m budget =
    if budget = 0 then m
    else match hoist_once m with None -> m | Some m' -> fix m' (budget - 1)
  in
  fix m 64

let run ?hoist:(do_hoist = true) ?eager_input_upscale prog alloc =
  let m = insert ?eager_input_upscale prog alloc in
  let m = if do_hoist then hoist m else m in
  Managed.dce (Managed.cse m)

let run_safe ?hoist ?eager_input_upscale prog alloc =
  match run ?hoist ?eager_input_upscale prog alloc with
  | m -> (
      match Validator.check m with
      | Ok () -> Ok m
      | Error es -> Error (List.map Diag.of_validator_error es))
  | exception e -> Error [ Diag.of_exn Diag.Placement e ]
