
type params = { rbits : int; wbits : int }

let params ~rbits ~wbits =
  if wbits <= 0 || wbits > rbits then
    invalid_arg "Rtype.params: need 0 < wbits <= rbits";
  { rbits; wbits }

let principal_level p rho = Fhe_util.Bits.ceil_div (rho + p.wbits) p.rbits

let mul_operand_level p rho =
  Fhe_util.Bits.ceil_div (rho + (2 * p.wbits)) p.rbits

let is_level_mismatch p rho = mul_operand_level p rho <> principal_level p rho

let mismatch_need p rho =
  rho + (2 * p.wbits) - ((mul_operand_level p rho - 1) * p.rbits)

let mul_split p rho =
  let l = mul_operand_level p rho in
  let total = rho + (l * p.rbits) in
  let rho1 = (total + 1) / 2 in
  let rho2 = total / 2 in
  (l, rho1, rho2)

let pmul_operand p rho = rho + p.wbits

let max_reserve_for_level p l = (l * p.rbits) - p.wbits

let canonical_scale p ~rho ~level = (level * p.rbits) - rho

let check_edge p ~rin ~level = principal_level p rin = level
