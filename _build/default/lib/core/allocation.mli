open Fhe_ir

(** Reserve allocation (§6.2) and reserve redistribution (§6.3).

    The backward analysis fixes the output reserves at 0 and infers
    every ciphertext's reserve as the maximum of the incoming-reserve
    demands ({e reserve-ins}) of its uses, visiting values in allocation
    order (subject to dataflow: a value is visited once all its users
    are).  Multiplication splits its result reserve equally between
    operands at the common operand level [⌈ρ + 2ω⌉]; when that operand
    level exceeds the result's principal level the op is
    {e level-mismatched} and redistribution tries to lower the result
    reserve by the overflow [{ρ + 2ω}], shifting budget onto sibling
    operands of already-allocated users within their slack — failing
    transactionally if any user cannot absorb it. *)

type t = {
  prm : Rtype.params;
  rho : int array;
      (** Allocated reserve (bits) per value; 0 for plaintext values. *)
  mul_level : int array;
      (** For each multiplication (by result id): the common operand
          level; [-1] for every other op. *)
  rin : int array array;
      (** [rin.(u).(slot)] = reserve demanded from op [u]'s operand in
          position [slot]; [-1] for plaintext operands.  For ciphertext
          multiplications the demands satisfy
          [rin0 + rin1 = rho + mul_level·rbits]. *)
  mismatched : bool array;
      (** Multiplications whose operand level exceeds the result's
          principal level (a rescale of the result is required). *)
}

val run :
  Rtype.params ->
  ?redistribute:bool ->
  ?output_reserve:int ->
  order:int array ->
  Program.t ->
  t
(** Run the backward analysis.  [order] is the rank array from
    {!Ordering.run}; [redistribute] (default true) enables §6.3;
    [output_reserve] (default 0) is the paper's [x_max] headroom in bits
    — the reserve the program outputs start from, so every ciphertext
    keeps room for encoded magnitudes up to [2^output_reserve].
    The input must be an arithmetic-only program.
    @raise Invalid_argument on scale-managed input. *)

val run_safe :
  Rtype.params ->
  ?redistribute:bool ->
  ?output_reserve:int ->
  order:int array ->
  Program.t ->
  t Diag.pass_result
(** Like {!run} but never raises: scale-managed input and a mis-sized
    [order] become diagnostics, escaped exceptions are demoted, and the
    result is self-checked (non-negative reserves, realizable mul
    levels). *)
