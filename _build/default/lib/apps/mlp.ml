open Fhe_ir

let input_dim = 64

(* Rectangular layers are padded to the 64×64 diagonal form: rows past
   the output dimension are zero, which the diagonal extraction turns
   into (still dense) masked diagonals. *)
let layer_matrix ~seed ~rows =
  let m = Data.matrix ~seed ~rows:input_dim ~cols:input_dim in
  Array.mapi (fun r row -> if r < rows then row else Array.map (fun _ -> 0.0) row) m

let build ?(n_slots = 16384) ?(seed = 7) () =
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x" in
  let dense s rows v =
    Kernels.matvec_diag b v ~dim:input_dim ~mat:(layer_matrix ~seed:s ~rows)
  in
  let h1 = Builder.square b (dense (seed + 1) 64 x) in
  let h2 = Builder.square b (dense (seed + 2) 16 h1) in
  let logits = dense (seed + 3) 10 h2 in
  Builder.finish b ~outputs:[ logits ]

let inputs ~seed = [ ("x", Data.signal ~seed ~lo:0.0 ~hi:1.0 input_dim) ]
