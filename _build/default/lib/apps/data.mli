(** Deterministic synthetic datasets.

    The paper's evaluation measures latency, compile time and
    fixed-point error — none of which depend on the actual pixel or
    weight values — so trained MNIST/CIFAR models are substituted by
    seeded pseudo-random tensors with the same shapes (DESIGN.md §3). *)

val image : seed:int -> int -> float array
(** [image ~seed n] is [n] pixels in [\[0, 1)]. *)

val signal : seed:int -> ?lo:float -> ?hi:float -> int -> float array
(** [n] samples uniform in [\[lo, hi)] (default [\[-1, 1)]). *)

val weights : seed:int -> int -> float array
(** Glorot-ish small weights in [\[-0.5, 0.5)]. *)

val matrix : seed:int -> rows:int -> cols:int -> float array array
(** [rows] rows of [cols] small weights. *)

val kernel : seed:int -> int -> float array array
(** A [k×k] convolution kernel of small weights. *)

val linear_samples :
  seed:int -> n:int -> coeffs:float array -> noise:float ->
  float array array * float array
(** [(xs, y)] where [xs.(f)] is feature [f]'s samples and
    [y = Σ coeffs.(f)·xs.(f) + coeffs.(last) + noise] — ground truth for
    the regression training workloads (first [length coeffs - 1]
    features, last coefficient is the intercept). *)
