open Fhe_ir

(** The benchmark registry: the eight applications of the paper's
    evaluation (§8), by their Table 4 short names. *)

type app = {
  name : string;  (** short name: SF, HCD, LR, MR, PR, MLP, Lenet-5, Lenet-C *)
  description : string;
  build : unit -> Program.t;
  inputs : seed:int -> (string * float array) list;
}

val all : app list
(** In the paper's order: SF, HCD, LR, MR, PR, MLP, Lenet-5, Lenet-C. *)

val small : app list
(** The six non-LeNet apps (used where LeNet-scale runs are too slow). *)

val find : string -> app
(** Case-insensitive lookup. @raise Not_found. *)
