open Fhe_ir

(** The regression training workloads (LR, MR, PR): homomorphic
    gradient descent, two epochs, over 16384 encrypted samples packed
    one per slot.  Weights start as public constants and become
    ciphertexts after the first update, so the second epoch multiplies
    two ciphertexts of different multiplicative depths — the pattern the
    paper calls out as what makes the regressions hard to scale-manage.
    Gradient means are internal summations (rotate-and-sum reductions).

    Outputs are the trained weights followed by the intercept. *)

val linear : ?n_slots:int -> ?epochs:int -> unit -> Program.t
(** LR: one feature ["x0"], target ["y"]. *)

val multivariate : ?n_slots:int -> ?epochs:int -> ?features:int -> unit -> Program.t
(** MR: [features] (default 8) inputs ["x0"..], target ["y"]. *)

val polynomial : ?n_slots:int -> ?epochs:int -> ?degree:int -> unit -> Program.t
(** PR: single input ["x0"]; encrypted powers [x, x², …, x^degree]
    (default 3) serve as features. *)

val inputs_linear : seed:int -> ?n:int -> unit -> (string * float array) list

val inputs_multivariate :
  seed:int -> ?n:int -> ?features:int -> unit -> (string * float array) list

val inputs_polynomial : seed:int -> ?n:int -> unit -> (string * float array) list
