let image ~seed n =
  let g = Fhe_util.Prng.create seed in
  Array.init n (fun _ -> Fhe_util.Prng.float g 1.0)

let signal ~seed ?(lo = -1.0) ?(hi = 1.0) n =
  let g = Fhe_util.Prng.create seed in
  Array.init n (fun _ -> Fhe_util.Prng.uniform g ~lo ~hi)

let weights ~seed n =
  let g = Fhe_util.Prng.create seed in
  Array.init n (fun _ -> Fhe_util.Prng.uniform g ~lo:(-0.5) ~hi:0.5)

let matrix ~seed ~rows ~cols =
  let g = Fhe_util.Prng.create seed in
  Array.init rows (fun _ ->
      Array.init cols (fun _ -> Fhe_util.Prng.uniform g ~lo:(-0.5) ~hi:0.5))

let kernel ~seed k = matrix ~seed ~rows:k ~cols:k

let linear_samples ~seed ~n ~coeffs ~noise =
  let g = Fhe_util.Prng.create seed in
  let nf = Array.length coeffs - 1 in
  let xs =
    Array.init nf (fun _ ->
        Array.init n (fun _ -> Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0))
  in
  let y =
    Array.init n (fun i ->
        let acc = ref coeffs.(nf) in
        for f = 0 to nf - 1 do
          acc := !acc +. (coeffs.(f) *. xs.(f).(i))
        done;
        !acc +. (noise *. Fhe_util.Prng.gaussian g))
  in
  (xs, y)
