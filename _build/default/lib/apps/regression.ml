open Fhe_ir

(* Homomorphic gradient descent.  [feats] are ciphertext feature
   vectors; weights/intercept start as the given public constants. *)
let gd_train b ~feats ~y ~epochs ~lr ~n =
  let rate = Builder.const b lr in
  let step acc grad = Builder.sub b acc (Builder.mul b grad rate) in
  let rec epoch k ws w0 =
    if k = 0 then (ws, w0)
    else begin
      let terms = List.map2 (fun x w -> Builder.mul b x w) feats ws in
      let pred = Builder.add b (Builder.add_many b terms) w0 in
      let err = Builder.sub b pred y in
      let gws =
        List.map (fun x -> Kernels.mean_slots b (Builder.mul b err x) ~n) feats
      in
      let g0 = Kernels.mean_slots b err ~n in
      epoch (k - 1) (List.map2 step ws gws) (step w0 g0)
    end
  in
  let nf = List.length feats in
  let init = List.init nf (fun i -> Builder.const b (0.1 +. (0.05 *. float_of_int i))) in
  let ws, w0 = epoch epochs init (Builder.const b 0.05) in
  ws @ [ w0 ]

let linear ?(n_slots = 16384) ?(epochs = 2) () =
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x0" in
  let y = Builder.input b "y" in
  let outs = gd_train b ~feats:[ x ] ~y ~epochs ~lr:0.1 ~n:n_slots in
  Builder.finish b ~outputs:outs

let multivariate ?(n_slots = 16384) ?(epochs = 2) ?(features = 8) () =
  let b = Builder.create ~n_slots () in
  let feats =
    List.init features (fun i -> Builder.input b (Printf.sprintf "x%d" i))
  in
  let y = Builder.input b "y" in
  let outs = gd_train b ~feats ~y ~epochs ~lr:0.1 ~n:n_slots in
  Builder.finish b ~outputs:outs

let polynomial ?(n_slots = 16384) ?(epochs = 2) ?(degree = 3) () =
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x0" in
  let y = Builder.input b "y" in
  let rec powers acc last k =
    if k = 0 then List.rev acc
    else begin
      let nxt = Builder.mul b last x in
      powers (nxt :: acc) nxt (k - 1)
    end
  in
  let feats = powers [ x ] x (degree - 1) in
  let outs = gd_train b ~feats ~y ~epochs ~lr:0.05 ~n:n_slots in
  Builder.finish b ~outputs:outs

let named_features ~seed ~n ~features ~coeffs =
  let xs, y = Data.linear_samples ~seed ~n ~coeffs ~noise:0.01 in
  List.init features (fun i -> (Printf.sprintf "x%d" i, xs.(i))) @ [ ("y", y) ]

let inputs_linear ~seed ?(n = 16384) () =
  named_features ~seed ~n ~features:1 ~coeffs:[| 0.7; -0.2 |]

let inputs_multivariate ~seed ?(n = 16384) ?(features = 8) () =
  let g = Fhe_util.Prng.create (seed + 1) in
  let coeffs =
    Array.init (features + 1) (fun _ -> Fhe_util.Prng.uniform g ~lo:(-0.8) ~hi:0.8)
  in
  named_features ~seed ~n ~features ~coeffs

let inputs_polynomial ~seed ?(n = 16384) () =
  (* targets follow a cubic in x0; the circuit derives the powers *)
  let x = Data.signal ~seed ~lo:(-1.0) ~hi:1.0 n in
  let y =
    Array.map (fun v -> (0.4 *. v) -. (0.3 *. v *. v) +. (0.2 *. v *. v *. v) +. 0.1) x
  in
  [ ("x0", x); ("y", y) ]
