open Fhe_ir

(** Harris Corner Detection (HCD) on a packed 64×64 image:
    Sobel gradients, 3×3 box-summed second-moment matrix, response
    [det(M) − k·trace(M)²] (~110 ops, multiplicative depth 3). *)

val build : ?n_slots:int -> unit -> Program.t
(** Input: ["img"]. *)

val inputs : seed:int -> (string * float array) list
