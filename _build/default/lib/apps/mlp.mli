open Fhe_ir

(** Multi-Layer Perceptron (MLP) inference: a 64→64→16→10 network with
    square activations, dense layers as Halevi–Shoup diagonal
    matrix-vector products over one packed input ciphertext. *)

val input_dim : int

val build : ?n_slots:int -> ?seed:int -> unit -> Program.t
(** Input: ["x"] (the feature vector in the first {!input_dim} slots);
    output: the 10 logits in the first slots. *)

val inputs : seed:int -> (string * float array) list
