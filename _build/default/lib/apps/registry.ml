type app = {
  name : string;
  description : string;
  build : unit -> Fhe_ir.Program.t;
  inputs : seed:int -> (string * float array) list;
}

let all =
  [ { name = "SF";
      description = "Sobel filter, 64x64 image";
      build = (fun () -> Sobel.build ());
      inputs = (fun ~seed -> Sobel.inputs ~seed) };
    { name = "HCD";
      description = "Harris corner detection, 64x64 image";
      build = (fun () -> Harris.build ());
      inputs = (fun ~seed -> Harris.inputs ~seed) };
    { name = "LR";
      description = "linear regression, 2 GD epochs, 16384 samples";
      build = (fun () -> Regression.linear ());
      inputs = (fun ~seed -> Regression.inputs_linear ~seed ()) };
    { name = "MR";
      description = "multivariate regression (8 features), 2 GD epochs";
      build = (fun () -> Regression.multivariate ());
      inputs = (fun ~seed -> Regression.inputs_multivariate ~seed ()) };
    { name = "PR";
      description = "polynomial regression (degree 3), 2 GD epochs";
      build = (fun () -> Regression.polynomial ());
      inputs = (fun ~seed -> Regression.inputs_polynomial ~seed ()) };
    { name = "MLP";
      description = "64-64-16-10 perceptron, square activations";
      build = (fun () -> Mlp.build ());
      inputs = (fun ~seed -> Mlp.inputs ~seed) };
    { name = "Lenet-5";
      description = "LeNet-5 inference, MNIST shapes";
      build = (fun () -> Lenet.build Lenet.Mnist);
      inputs = (fun ~seed -> Lenet.inputs ~seed Lenet.Mnist) };
    { name = "Lenet-C";
      description = "LeNet-5 inference, CIFAR-10 shapes";
      build = (fun () -> Lenet.build Lenet.Cifar);
      inputs = (fun ~seed -> Lenet.inputs ~seed Lenet.Cifar) }
  ]

let small =
  List.filter (fun a -> not (String.length a.name > 5)) all

let find name =
  let lower = String.lowercase_ascii name in
  match
    List.find_opt (fun a -> String.lowercase_ascii a.name = lower) all
  with
  | Some a -> a
  | None -> raise Not_found
