lib/apps/lenet.ml: Array Builder Data Fhe_ir Fhe_util Hashtbl Kernels List Printf
