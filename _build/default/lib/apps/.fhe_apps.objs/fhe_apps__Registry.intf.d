lib/apps/registry.mli: Fhe_ir Program
