lib/apps/sobel.ml: Builder Data Fhe_ir Kernels
