lib/apps/registry.ml: Fhe_ir Harris Lenet List Mlp Regression Sobel String
