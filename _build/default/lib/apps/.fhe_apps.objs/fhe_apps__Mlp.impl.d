lib/apps/mlp.ml: Array Builder Data Fhe_ir Kernels
