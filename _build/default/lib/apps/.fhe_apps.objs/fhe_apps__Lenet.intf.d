lib/apps/lenet.mli: Fhe_ir Program
