lib/apps/harris.mli: Fhe_ir Program
