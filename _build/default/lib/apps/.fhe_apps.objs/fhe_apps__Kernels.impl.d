lib/apps/kernels.ml: Array Builder Fhe_ir List Printf
