lib/apps/data.ml: Array Fhe_util
