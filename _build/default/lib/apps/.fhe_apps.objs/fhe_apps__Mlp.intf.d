lib/apps/mlp.mli: Fhe_ir Program
