lib/apps/kernels.mli: Builder Fhe_ir
