lib/apps/data.mli:
