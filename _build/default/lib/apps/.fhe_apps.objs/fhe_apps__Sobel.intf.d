lib/apps/sobel.mli: Fhe_ir Program
