lib/apps/harris.ml: Array Builder Data Fhe_ir Kernels Sobel
