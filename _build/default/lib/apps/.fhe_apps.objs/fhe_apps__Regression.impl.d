lib/apps/regression.ml: Array Builder Data Fhe_ir Fhe_util Kernels List Printf
