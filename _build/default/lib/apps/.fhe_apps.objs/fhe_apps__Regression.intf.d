lib/apps/regression.mli: Fhe_ir Program
