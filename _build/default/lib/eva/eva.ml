open Fhe_ir

(* Forward waterline scale management.  During the pass, [aux] on every
   emitted value counts the levels consumed so far (rescales +
   modswitches on the path from the inputs); final levels are
   [L - aux] for the smallest legal [L]. *)

let compile_with_drops ?(xmax_bits = 0) ~rbits ~wbits ~drops p =
  if wbits > rbits || wbits <= 0 then
    invalid_arg "Eva.compile: need 0 < wbits <= rbits";
  if Array.length drops <> Program.n_ops p then
    invalid_arg "Eva.compile_with_drops: drops length mismatch";
  Program.iteri
    (fun _ k ->
      if Op.is_scale_mgmt k then
        invalid_arg "Eva.compile: program already scale-managed")
    p;
  let e = Emit.create () in
  let n = Program.n_ops p in
  let rep = Array.make n (-1) in
  let is_pleaf i =
    match Program.kind p i with
    | Op.Const _ | Op.Vconst _ -> true
    | _ -> false
  in
  let leaf i ~scale ~aux = Emit.plain_leaf e (Program.kind p i) ~scale ~aux in
  (* Bring [v] from its aux up to [aux] with modswitches. *)
  let rec match_aux v aux =
    if Emit.aux e v >= aux then v
    else
      match_aux
        (Emit.push e (Op.Modswitch v) ~scale:(Emit.scale e v)
           ~aux:(Emit.aux e v + 1))
        aux
  in
  let upscale_to v s =
    let sv = Emit.scale e v in
    if sv >= s then v
    else Emit.push e (Op.Upscale (v, s - sv)) ~scale:s ~aux:(Emit.aux e v)
  in
  (* EVA's waterline rescaling: rescale while the result stays >= W. *)
  let rec rescale_down v =
    let s = Emit.scale e v in
    if s - rbits >= wbits then
      rescale_down
        (Emit.push e (Op.Rescale v) ~scale:(s - rbits) ~aux:(Emit.aux e v + 1))
    else v
  in
  (* Proactive downscaling (used by Hecate-style plans): force the value
     to the waterline scale, consuming one level per drop. *)
  let apply_drops i v =
    if Program.vtype p i <> Op.Cipher then v
    else begin
      let v = ref v in
      for _ = 1 to drops.(i) do
        let s = Emit.scale e !v in
        if s < wbits + rbits then
          v :=
            Emit.push e
              (Op.Upscale (!v, wbits + rbits - s))
              ~scale:(wbits + rbits) ~aux:(Emit.aux e !v);
        v :=
          Emit.push e (Op.Rescale !v)
            ~scale:(Emit.scale e !v - rbits)
            ~aux:(Emit.aux e !v + 1)
      done;
      !v
    end
  in
  let binary a b =
    let a' = rep.(a) and b' = rep.(b) in
    let aux = max (Emit.aux e a') (Emit.aux e b') in
    let a' = match_aux a' aux and b' = match_aux b' aux in
    (a', b', aux)
  in
  Program.iteri
    (fun i k ->
      (match k with
      | Op.Input _ -> rep.(i) <- Emit.push e k ~scale:wbits ~aux:0
      | Op.Const _ | Op.Vconst _ -> () (* instantiated on demand *)
      | Op.Neg a | Op.Rotate (a, _) ->
          let a' =
            if is_pleaf a then leaf a ~scale:wbits ~aux:0 else rep.(a)
          in
          rep.(i) <-
            Emit.push e
              (Op.map_operands (fun _ -> a') k)
              ~scale:(Emit.scale e a') ~aux:(Emit.aux e a')
      | Op.Add (a, b) | Op.Sub (a, b) ->
          let mk x y =
            match k with Op.Add _ -> Op.Add (x, y) | _ -> Op.Sub (x, y)
          in
          rep.(i) <-
            (match (is_pleaf a, is_pleaf b) with
            | true, true ->
                let a' = leaf a ~scale:wbits ~aux:0
                and b' = leaf b ~scale:wbits ~aux:0 in
                Emit.push e (mk a' b') ~scale:wbits ~aux:0
            | true, false ->
                let b' = rep.(b) in
                let a' =
                  leaf a ~scale:(Emit.scale e b') ~aux:(Emit.aux e b')
                in
                Emit.push e (mk a' b') ~scale:(Emit.scale e b')
                  ~aux:(Emit.aux e b')
            | false, true ->
                let a' = rep.(a) in
                let b' =
                  leaf b ~scale:(Emit.scale e a') ~aux:(Emit.aux e a')
                in
                Emit.push e (mk a' b') ~scale:(Emit.scale e a')
                  ~aux:(Emit.aux e a')
            | false, false ->
                let a', b', aux = binary a b in
                let s = max (Emit.scale e a') (Emit.scale e b') in
                let a' = upscale_to a' s and b' = upscale_to b' s in
                Emit.push e (mk a' b') ~scale:s ~aux)
      | Op.Mul (a, b) ->
          rep.(i) <-
            (match (is_pleaf a, is_pleaf b) with
            | true, true ->
                let a' = leaf a ~scale:wbits ~aux:0
                and b' = leaf b ~scale:wbits ~aux:0 in
                Emit.push e (Op.Mul (a', b')) ~scale:(2 * wbits) ~aux:0
            | true, false | false, true ->
                let c = if is_pleaf a then b else a in
                let q = if is_pleaf a then a else b in
                let c' = rep.(c) in
                let q' = leaf q ~scale:wbits ~aux:(Emit.aux e c') in
                let v =
                  Emit.push e (Op.Mul (c', q'))
                    ~scale:(Emit.scale e c' + wbits)
                    ~aux:(Emit.aux e c')
                in
                if Program.vtype p i = Op.Cipher then rescale_down v else v
            | false, false ->
                let a', b', aux = binary a b in
                let v =
                  Emit.push e (Op.Mul (a', b'))
                    ~scale:(Emit.scale e a' + Emit.scale e b')
                    ~aux
                in
                if Program.vtype p i = Op.Cipher then rescale_down v else v)
      | Op.Rescale _ | Op.Modswitch _ | Op.Upscale _ -> assert false);
      if rep.(i) >= 0 && drops.(i) > 0 then rep.(i) <- apply_drops i rep.(i))
    p;
  let outputs =
    Array.map
      (fun o -> if is_pleaf o then leaf o ~scale:wbits ~aux:0 else rep.(o))
      (Program.outputs p)
  in
  (* Smallest input level L: every value needs Q = R^(L - aux) >= its
     scale, and at least one live modulus. *)
  let big_l = ref 1 in
  for v = 0 to Emit.n_ops e - 1 do
    let need =
      Emit.aux e v
      + max 1 (Fhe_util.Bits.ceil_div (Emit.scale e v + xmax_bits) rbits)
    in
    if need > !big_l then big_l := need
  done;
  let m =
    Emit.finish e ~outputs ~n_slots:(Program.n_slots p) ~rbits ~wbits
      ~level:(fun v -> !big_l - Emit.aux e v)
  in
  Managed.dce (Managed.cse m)

let compile ?xmax_bits ~rbits ~wbits p =
  compile_with_drops ?xmax_bits ~rbits ~wbits
    ~drops:(Array.make (Program.n_ops p) 0)
    p
