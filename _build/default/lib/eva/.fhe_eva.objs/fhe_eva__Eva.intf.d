lib/eva/eva.mli: Fhe_ir Managed Program
