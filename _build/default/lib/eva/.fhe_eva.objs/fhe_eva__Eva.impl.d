lib/eva/eva.ml: Array Emit Fhe_ir Fhe_util Managed Op Program
