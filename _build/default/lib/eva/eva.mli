open Fhe_ir

(** The EVA baseline: forward static scale analysis (PLDI'20, §3.1 of
    the reserve paper).

    EVA walks the program from inputs to outputs tracking each
    ciphertext's scale.  After every multiplication it rescales while
    the rescaled scale stays at or above the waterline; at additions it
    upscales the smaller-scale operand; level mismatches are repaired
    with modswitch.  The input level (hence the coefficient modulus
    [Q = R^L]) is the smallest [L] that avoids scale overflow — EVA
    minimizes [Q] but, being oblivious to succeeding operations, cannot
    lower the levels of individual heavy operations. *)

val compile : ?xmax_bits:int -> rbits:int -> wbits:int -> Program.t -> Managed.t
(** Insert scale-management operations into an arithmetic program.
    [xmax_bits] is the paper's Table 1 [x_max] headroom: log2 of the
    largest encoded magnitude, reserved on top of every scale when
    sizing the coefficient modulus (default 0, i.e. values in [-1, 1]).
    The result passes {!Fhe_ir.Validator.check}.
    @raise Invalid_argument if [p] already contains scale-management
    ops, or if [wbits > rbits]. *)

val compile_with_drops :
  ?xmax_bits:int -> rbits:int -> wbits:int -> drops:int array -> Program.t ->
  Managed.t
(** EVA's forward pass extended with per-value proactive downscales:
    [drops.(i)] forces value [i] (by original id) to the waterline scale
    that many extra times, each consuming a level.  This is the plan
    space the Hecate baseline explores; [compile] is the all-zero plan.
    @raise Invalid_argument if [drops] does not match the program. *)
