open Fhe_ir

type t = {
  fresh_bits : int;
  mul_bits : int;
  rotate_bits : int;
  rescale_bits : int;
  modswitch_bits : int;
}

let default =
  { fresh_bits = 6;
    mul_bits = 12;
    rotate_bits = 12;
    rescale_bits = 10;
    modswitch_bits = 6 }

let contribution ~bits ~scale = Fhe_util.Bits.pow2f (bits - scale)

let static_log2_error ?(noise = default) (m : Managed.t) =
  let p = m.Managed.prog in
  let total = ref 0.0 in
  Program.iteri
    (fun i k ->
      if Program.vtype p i = Op.Cipher then begin
        let bits =
          match k with
          | Op.Mul (a, b)
            when Program.vtype p a = Op.Cipher && Program.vtype p b = Op.Cipher
            ->
              Some noise.mul_bits
          | Op.Rotate _ -> Some noise.rotate_bits
          | Op.Rescale _ -> Some noise.rescale_bits
          | Op.Modswitch _ -> Some noise.modswitch_bits
          | Op.Input _ -> Some noise.fresh_bits
          | _ -> None
        in
        Option.iter
          (fun b -> total := !total +. contribution ~bits:b ~scale:m.Managed.scale.(i))
          bits
      end)
    p;
  Fhe_util.Bits.log2f (Float.max !total 1e-300)
