open Fhe_ir

type value = { data : float array; err : float }

let pad n a =
  let len = Array.length a in
  if len > n then invalid_arg "Interp: input vector longer than slot count";
  if len = n then Array.copy a
  else begin
    let out = Array.make n 0.0 in
    Array.blit a 0 out 0 len;
    out
  end

let find_input inputs name =
  match List.assoc_opt name inputs with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Interp: missing input %S" name)

let max_abs a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let rotl a k =
  let n = Array.length a in
  Array.init n (fun i -> a.((i + k) mod n))

let run ?(noise = Noise.default) (m : Managed.t) ~inputs =
  let p = m.Managed.prog in
  let n_slots = Program.n_slots p in
  let n = Program.n_ops p in
  let data = Array.make n [||] in
  let err = Array.make n 0.0 in
  (* free intermediates once their last use has executed: large managed
     programs would otherwise hold every 16384-slot vector live *)
  let uses_left = Analysis.n_uses p in
  let contrib bits i = Noise.contribution ~bits ~scale:m.Managed.scale.(i) in
  Program.iteri
    (fun i k ->
      (match k with
      | Op.Input { name; vt } ->
          data.(i) <- pad n_slots (find_input inputs name);
          err.(i) <-
            (match vt with
            | Op.Cipher -> contrib noise.Noise.fresh_bits i
            | Op.Plain -> contrib noise.Noise.fresh_bits i)
      | Op.Const c ->
          data.(i) <- Array.make n_slots c;
          err.(i) <- contrib noise.Noise.fresh_bits i
      | Op.Vconst { values; _ } ->
          data.(i) <- pad n_slots values;
          err.(i) <- contrib noise.Noise.fresh_bits i
      | Op.Add (a, b) ->
          data.(i) <- map2 ( +. ) data.(a) data.(b);
          err.(i) <- err.(a) +. err.(b)
      | Op.Sub (a, b) ->
          data.(i) <- map2 ( -. ) data.(a) data.(b);
          err.(i) <- err.(a) +. err.(b)
      | Op.Mul (a, b) ->
          data.(i) <- map2 ( *. ) data.(a) data.(b);
          let cc =
            Program.vtype p a = Op.Cipher && Program.vtype p b = Op.Cipher
          in
          err.(i) <-
            (err.(a) *. max_abs data.(b))
            +. (err.(b) *. max_abs data.(a))
            +. (err.(a) *. err.(b))
            +. (if cc then contrib noise.Noise.mul_bits i else 0.0)
      | Op.Neg a ->
          data.(i) <- Array.map (fun x -> -.x) data.(a);
          err.(i) <- err.(a)
      | Op.Rotate (a, k) ->
          data.(i) <- rotl data.(a) k;
          err.(i) <-
            err.(a)
            +.
            if Program.vtype p i = Op.Cipher then
              contrib noise.Noise.rotate_bits i
            else 0.0
      | Op.Rescale a ->
          data.(i) <- Array.copy data.(a);
          err.(i) <-
            err.(a)
            +.
            if Program.vtype p i = Op.Cipher then
              contrib noise.Noise.rescale_bits i
            else 0.0
      | Op.Modswitch a ->
          data.(i) <- Array.copy data.(a);
          err.(i) <-
            err.(a)
            +.
            if Program.vtype p i = Op.Cipher then
              contrib noise.Noise.modswitch_bits i
            else 0.0
      | Op.Upscale (a, _) ->
          data.(i) <- Array.copy data.(a);
          err.(i) <- err.(a));
      List.iter
        (fun o ->
          uses_left.(o) <- uses_left.(o) - 1;
          if uses_left.(o) = 0 then data.(o) <- [||])
        (Op.operands k))
    p;
  Array.map
    (fun o -> { data = data.(o); err = err.(o) })
    (Program.outputs p)

let run_reference p ~inputs =
  let n_slots = Program.n_slots p in
  let n = Program.n_ops p in
  let data = Array.make n [||] in
  let uses_left = Analysis.n_uses p in
  Program.iteri
    (fun i k ->
      (match k with
      | Op.Input { name; _ } -> data.(i) <- pad n_slots (find_input inputs name)
      | Op.Const c -> data.(i) <- Array.make n_slots c
      | Op.Vconst { values; _ } -> data.(i) <- pad n_slots values
      | Op.Add (a, b) -> data.(i) <- map2 ( +. ) data.(a) data.(b)
      | Op.Sub (a, b) -> data.(i) <- map2 ( -. ) data.(a) data.(b)
      | Op.Mul (a, b) -> data.(i) <- map2 ( *. ) data.(a) data.(b)
      | Op.Neg a -> data.(i) <- Array.map (fun x -> -.x) data.(a)
      | Op.Rotate (a, k) -> data.(i) <- rotl data.(a) k
      | Op.Rescale a | Op.Modswitch a | Op.Upscale (a, _) ->
          data.(i) <- Array.copy data.(a));
      List.iter
        (fun o ->
          uses_left.(o) <- uses_left.(o) - 1;
          if uses_left.(o) = 0 then data.(o) <- [||])
        (Op.operands k))
    p;
  Array.map (fun o -> data.(o)) (Program.outputs p)

let max_log2_error ?noise m ~inputs =
  let outs = run ?noise m ~inputs in
  let worst = Array.fold_left (fun acc v -> Float.max acc v.err) 0.0 outs in
  Fhe_util.Bits.log2f worst

let max_magnitude_bits p ~inputs =
  let n_slots = Program.n_slots p in
  let n = Program.n_ops p in
  let data = Array.make n [||] in
  let uses_left = Analysis.n_uses p in
  let worst = ref 1.0 in
  Program.iteri
    (fun i k ->
      (match k with
      | Op.Input { name; _ } -> data.(i) <- pad n_slots (find_input inputs name)
      | Op.Const c -> data.(i) <- Array.make n_slots c
      | Op.Vconst { values; _ } -> data.(i) <- pad n_slots values
      | Op.Add (a, b) -> data.(i) <- map2 ( +. ) data.(a) data.(b)
      | Op.Sub (a, b) -> data.(i) <- map2 ( -. ) data.(a) data.(b)
      | Op.Mul (a, b) -> data.(i) <- map2 ( *. ) data.(a) data.(b)
      | Op.Neg a -> data.(i) <- Array.map (fun x -> -.x) data.(a)
      | Op.Rotate (a, k) -> data.(i) <- rotl data.(a) k
      | Op.Rescale a | Op.Modswitch a | Op.Upscale (a, _) ->
          data.(i) <- data.(a));
      worst := Float.max !worst (max_abs data.(i));
      List.iter
        (fun o ->
          uses_left.(o) <- uses_left.(o) - 1;
          if uses_left.(o) = 0 then data.(o) <- [||])
        (Op.operands k))
    p;
  int_of_float (Float.ceil (Fhe_util.Bits.log2f !worst))
