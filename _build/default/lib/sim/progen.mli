open Fhe_ir

(** Deterministic random-program generation for property tests and the
    [fhec fuzz] harness.  Equal seeds give equal programs and inputs. *)

type t = {
  prog : Program.t;  (** an arithmetic-only DAG *)
  inputs : (string * float array) list;
      (** matching synthetic input vectors in [[-1, 1)] *)
}

val make : ?n_slots:int -> ?size:int -> ?n_inputs:int -> int -> t
(** [make seed] generates a program of roughly [size] random ops
    (default 25) over [n_inputs] cipher inputs (default 2) and a small
    plain-constant pool, on [n_slots]-slot vectors (default 16);
    multiplicative depth is capped so every compiler stays within a
    small modulus chain. *)
