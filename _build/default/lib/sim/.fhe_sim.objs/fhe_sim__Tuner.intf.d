lib/sim/tuner.mli: Fhe_ir Managed Noise
