lib/sim/interp.ml: Analysis Array Fhe_ir Fhe_util Float List Managed Noise Op Printf Program
