lib/sim/progen.ml: Array Builder Fhe_ir Fhe_util Hashtbl List Option Printf Program
