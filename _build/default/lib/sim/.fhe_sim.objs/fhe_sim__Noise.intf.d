lib/sim/noise.mli: Fhe_ir
