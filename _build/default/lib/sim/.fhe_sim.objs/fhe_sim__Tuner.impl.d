lib/sim/tuner.ml: Fhe_ir Interp Managed
