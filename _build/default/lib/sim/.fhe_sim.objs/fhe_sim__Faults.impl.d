lib/sim/faults.ml: Analysis Array Fhe_ir Fhe_util Format List Managed Op Program
