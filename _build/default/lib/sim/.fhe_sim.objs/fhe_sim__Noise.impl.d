lib/sim/noise.ml: Array Fhe_ir Fhe_util Float Managed Op Option Program
