lib/sim/progen.mli: Fhe_ir Program
