lib/sim/interp.mli: Fhe_ir Managed Noise Program
