lib/sim/faults.mli: Fhe_ir Format Managed
