(* Random arithmetic-program generation, shared by the property tests
   and the `fhec fuzz` harness.

   Programs are DAGs over a couple of cipher inputs, a plain constant
   pool, and random add/sub/mul/neg/rotate nodes; multiplicative depth
   is kept moderate so every scale-management plan stays within a small
   modulus chain. *)

open Fhe_ir

type t = {
  prog : Program.t;
  inputs : (string * float array) list;
}

let make ?(n_slots = 16) ?(size = 25) ?(n_inputs = 2) seed =
  let rng = Fhe_util.Prng.create seed in
  let b = Builder.create ~n_slots () in
  let values = ref [] in
  let depth = Hashtbl.create 64 in
  let d e = Option.value ~default:0 (Hashtbl.find_opt depth e) in
  let push e de =
    Hashtbl.replace depth e (max de (d e));
    values := e :: !values
  in
  let pick () =
    let vs = Array.of_list !values in
    vs.(Fhe_util.Prng.int rng (Array.length vs))
  in
  let inputs =
    List.init n_inputs (fun i ->
        let name = Printf.sprintf "in%d" i in
        push (Builder.input b name) 0;
        ( name,
          Array.init n_slots (fun _ ->
              Fhe_util.Prng.uniform rng ~lo:(-1.0) ~hi:1.0) ))
  in
  push (Builder.const b 0.5) 0;
  push (Builder.const b (-0.25)) 0;
  push
    (Builder.vconst b ~tag:"gen"
       (Array.init n_slots (fun i -> float_of_int (i mod 3) /. 4.0)))
    0;
  for _ = 1 to size do
    let a = pick () and c = pick () in
    let e, de =
      match Fhe_util.Prng.int rng 6 with
      | 0 -> (Builder.add b a c, max (d a) (d c))
      | 1 -> (Builder.sub b a c, max (d a) (d c))
      | 2 when d a + d c < 4 -> (Builder.mul b a c, max (d a) (d c) + 1)
      | 2 -> (Builder.add b a c, max (d a) (d c))
      | 3 -> (Builder.neg b a, d a)
      | 4 -> (Builder.rotate b a (1 + Fhe_util.Prng.int rng (n_slots - 1)), d a)
      | _ when 2 * d a < 4 -> (Builder.square b a, d a + 1)
      | _ -> (Builder.add b a c, max (d a) (d c))
    in
    push e de
  done;
  let outputs =
    match !values with v :: w :: _ when v <> w -> [ v; w ] | v :: _ -> [ v ] | [] -> assert false
  in
  let prog = Builder.finish b ~outputs in
  { prog; inputs }
