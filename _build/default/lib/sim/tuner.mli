open Fhe_ir

(** Waterline auto-tuning.

    The waterline trades latency for precision (Fig. 6 vs Fig. 7): a
    larger minimum scale keeps the scale-independent operation noise
    relatively smaller but costs levels.  Given an error target, this
    searches for the smallest waterline whose compiled program's
    worst-case output error bound meets it — the parameter-selection
    loop an application developer runs by hand in EVA/Hecate. *)

val tune_waterline :
  ?lo:int ->
  ?hi:int ->
  ?noise:Noise.t ->
  compile:(wbits:int -> Managed.t) ->
  inputs:(string * float array) list ->
  target_log2_error:float ->
  unit ->
  (int * Managed.t) option
(** Smallest [wbits] in [\[lo, hi\]] (default 15..50) such that
    [Interp.max_log2_error (compile ~wbits)] ≤ [target_log2_error];
    [None] if even [hi] misses the target.  Uses binary search (error
    bounds decrease monotonically in the waterline). *)
