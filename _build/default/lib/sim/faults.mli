open Fhe_ir

(** Deterministic fault injection for managed programs.

    Each class corrupts a legal scale-management plan the way a compiler
    bug (or bit-flipped annotation) would, so tests can prove the
    validator and the fallback driver actually catch that failure mode —
    every corruption produced here violates at least one Table 2 rule,
    i.e. {!Fhe_ir.Validator.check} is guaranteed to reject it. *)

type cls =
  | Scale_off_by_one
      (** a ciphertext's recorded scale is off by one bit *)
  | Dropped_rescale
      (** a rescale op is deleted; its users read the unrescaled value *)
  | Level_overflow
      (** a ciphertext's level jumps past its modulus chain *)
  | Dangling_operand
      (** an operand edge is rewired to an unrelated value whose
          scale/level disagree *)

val all : cls list
(** Every class, in declaration order. *)

val name : cls -> string
(** Stable kebab-case label, e.g. ["dropped-rescale"]. *)

val pp : Format.formatter -> cls -> unit

val inject : cls -> seed:int -> Managed.t -> Managed.t option
(** [inject cls ~seed m] returns a corrupted copy of [m], or [None] when
    [m] has no injection site for this class (e.g. no rescale op to
    drop).  Equal seeds pick equal sites; [m] itself is never mutated. *)
