(** The RNS-CKKS noise model used by the interpreter (Fig. 7).

    CKKS noise is {e scale-independent} in absolute (integer) terms: a
    noisy operation perturbs the integer representation by roughly a
    fixed magnitude [η], so its contribution to the decoded value is
    [η / m] — a larger scale means a smaller error.  This is exactly why
    scale-management plans that keep scales high (reserve analysis) see
    lower error than plans that aggressively downscale (Hecate), the
    effect Fig. 7 measures. *)

type t = {
  fresh_bits : int;
      (** log2 of the integer noise of encryption and encoding *)
  mul_bits : int;  (** relinearization noise of cipher×cipher *)
  rotate_bits : int;  (** key-switching noise of rotation *)
  rescale_bits : int;  (** rounding noise of rescale *)
  modswitch_bits : int;  (** rounding noise of modswitch *)
}

val default : t
(** Calibrated to SEAL-like magnitudes at [N = 2^15]:
    fresh/modswitch ≈ 2^6, rescale ≈ 2^10, mul/rotate ≈ 2^12. *)

val contribution : bits:int -> scale:int -> float
(** [contribution ~bits ~scale] = [2^(bits - scale)]: the absolute error
    a noisy op adds to the decoded value at the given result scale. *)

val static_log2_error : ?noise:t -> Fhe_ir.Managed.t -> float
(** A data-free error proxy: [log2] of the summed noise contributions of
    every noisy operation at its result scale (assuming unit-magnitude
    values, i.e. ignoring the amplification {!Interp} tracks).  Cheap
    enough to sit inside an exploration loop; monotone with the
    interpreter's bound on unit-scale workloads. *)
