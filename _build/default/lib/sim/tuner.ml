open Fhe_ir

let tune_waterline ?(lo = 15) ?(hi = 50) ?noise ~compile ~inputs
    ~target_log2_error () =
  if lo > hi then invalid_arg "Tuner.tune_waterline: lo > hi";
  let err w = Interp.max_log2_error ?noise (compile ~wbits:w) ~inputs in
  if err hi > target_log2_error then None
  else begin
    (* invariant: err hi <= target < err (lo - 1); shrink to the
       smallest satisfying waterline *)
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if err mid <= target_log2_error then hi := mid else lo := mid + 1
    done;
    Some (!lo, (compile ~wbits:!lo : Managed.t))
  end
