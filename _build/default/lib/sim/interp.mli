open Fhe_ir

(** Fixed-point interpreter for managed programs.

    Executes the program on real vectors while propagating a worst-case
    additive error bound per value according to {!Noise}.  This is the
    measurement backend for the Fig. 7 error experiment and the
    differential-correctness oracle of the test suite: any legal
    scale-management plan must compute the same function as the original
    arithmetic program, up to the propagated bound. *)

type value = {
  data : float array;  (** decoded slot values (exact arithmetic) *)
  err : float;  (** worst-case absolute error bound of any slot *)
}

val run :
  ?noise:Noise.t -> Managed.t -> inputs:(string * float array) list -> value array
(** Evaluate; one {!value} per program output.  Input vectors shorter
    than the slot count are zero-padded.
    @raise Invalid_argument if a ciphertext/plaintext input is missing
    or too long. *)

val run_reference :
  Program.t -> inputs:(string * float array) list -> float array array
(** Evaluate the original (arithmetic-only) program exactly, ignoring
    scales: the ground truth the encrypted result approximates. *)

val max_log2_error :
  ?noise:Noise.t -> Managed.t -> inputs:(string * float array) list -> float
(** [log2] of the worst output error bound — the Fig. 7 metric. *)

val max_magnitude_bits : Program.t -> inputs:(string * float array) list -> int
(** [ceil log2] of the largest absolute value any (intermediate or
    output) slot takes on these inputs, at least 0 — the [x_max]
    headroom ([xmax_bits]) the compilers need to avoid scale overflow on
    this workload (Table 1). *)
