(** An immutable RNS-CKKS program: SSA ops in topological order.

    [ops.(i)] defines value [i]; operands of [ops.(i)] are all [< i].
    This is the representation every compiler pass consumes and produces
    (scale-management passes add [Rescale]/[Modswitch]/[Upscale] ops). *)

type t

val make : ops:Op.kind array -> outputs:Op.id array -> n_slots:int -> t
(** Build a program, checking SSA well-formedness.
    @raise Invalid_argument if an operand id is out of range or not
    strictly smaller than its user's id, if an output id is invalid, or
    if [n_slots] is not a positive power of two. *)

val n_ops : t -> int

val n_slots : t -> int

val kind : t -> Op.id -> Op.kind

val ops : t -> Op.kind array
(** The underlying op array (do not mutate). *)

val outputs : t -> Op.id array
(** The returned value ids (do not mutate). *)

val vtype : t -> Op.id -> Op.vtype
(** Cipher/plain classification: an op is [Cipher] iff any transitive
    input it depends on is a ciphertext. *)

val iteri : (Op.id -> Op.kind -> unit) -> t -> unit
(** Iterate ops in topological (id) order. *)

val count : t -> f:(Op.kind -> bool) -> int
(** Number of ops satisfying [f]. *)

val n_arith : t -> int
(** Number of non-leaf arithmetic ops (the "# Ops" column of Table 4). *)
