(** Human-readable program printing, for debugging and the CLI. *)

val pp_kind : Format.formatter -> Op.kind -> unit

val pp_program : Format.formatter -> Program.t -> unit
(** One op per line: [%3 = mul %1 %2], followed by [ret %3, %7].
    Short vector constants (≤ 8 values) print their contents, so the
    output parses back with {!Parser.parse} (round trip up to 12
    significant digits); longer ones print an opaque summary. *)

val program_to_string : Program.t -> string

val pp_managed :
  scale:int array -> level:int array -> Format.formatter -> Program.t -> unit
(** Like {!pp_program} but annotates every value with its scale (bits)
    and level: [%3 = mul %1 %2  : m=40 l=2]. *)

val to_dot : ?managed:Managed.t -> Program.t -> string
(** Graphviz rendering of the dataflow graph (scale-management ops drawn
    as boxes, arithmetic as ellipses, outputs double-circled).  When
    [managed] is given, nodes carry their scale/level annotation. *)
