(** The embedded DSL used to write FHE programs.

    This plays the role of the paper's Python frontend: benchmark
    applications construct their arithmetic circuit through this builder
    and the compilers insert scale management afterwards.  Only
    arithmetic operations can be emitted here — scale management is the
    compiler's job.

    Structurally identical operations are deduplicated on the fly when
    [dedup] is set, which keeps generated circuits (convolutions,
    reduction trees) compact, exactly like the CSE the reference
    compilers run. *)

type t

type expr = Op.id
(** Expressions are value ids of the program being built. *)

val create : ?dedup:bool -> n_slots:int -> unit -> t
(** [create ~n_slots ()] starts an empty program over vectors of
    [n_slots] slots.  [dedup] (default [true]) enables structural
    deduplication. *)

val input : t -> ?vt:Op.vtype -> string -> expr
(** Declare an input (default [Cipher]).  Inputs are never deduplicated. *)

val const : t -> float -> expr

val vconst : t -> ?tag:string -> float array -> expr
(** A vector constant, stored unpadded and semantically zero-extended
    to [n_slots] (execution backends pad at encode time).
    @raise Invalid_argument if longer than [n_slots]. *)

val add : t -> expr -> expr -> expr

val sub : t -> expr -> expr -> expr

val mul : t -> expr -> expr -> expr

val neg : t -> expr -> expr

val rotate : t -> expr -> int -> expr
(** Rotation amounts are normalised modulo [n_slots]; rotating by 0 is
    the identity and emits nothing. *)

val square : t -> expr -> expr

val add_many : t -> expr list -> expr
(** Balanced-tree sum of a non-empty list. *)

val finish : t -> outputs:expr list -> Program.t
(** Freeze into an immutable program.
    @raise Invalid_argument on an empty output list. *)

val n_slots : t -> int
(** The slot count this builder was created with. *)
