type id = int

type vtype = Cipher | Plain

type kind =
  | Input of { name : string; vt : vtype }
  | Const of float
  | Vconst of { tag : string; values : float array }
  | Add of id * id
  | Sub of id * id
  | Mul of id * id
  | Neg of id
  | Rotate of id * int
  | Rescale of id
  | Modswitch of id
  | Upscale of id * int

let operands = function
  | Input _ | Const _ | Vconst _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> [ a; b ]
  | Neg a | Rescale a | Modswitch a -> [ a ]
  | Rotate (a, _) -> [ a ]
  | Upscale (a, _) -> [ a ]

let map_operands f = function
  | (Input _ | Const _ | Vconst _) as k -> k
  | Add (a, b) -> Add (f a, f b)
  | Sub (a, b) -> Sub (f a, f b)
  | Mul (a, b) -> Mul (f a, f b)
  | Neg a -> Neg (f a)
  | Rotate (a, k) -> Rotate (f a, k)
  | Rescale a -> Rescale (f a)
  | Modswitch a -> Modswitch (f a)
  | Upscale (a, m) -> Upscale (f a, m)

let is_scale_mgmt = function
  | Rescale _ | Modswitch _ | Upscale _ -> true
  | Input _ | Const _ | Vconst _ | Add _ | Sub _ | Mul _ | Neg _ | Rotate _ ->
      false

let is_leaf = function
  | Input _ | Const _ | Vconst _ -> true
  | Add _ | Sub _ | Mul _ | Neg _ | Rotate _ | Rescale _ | Modswitch _
  | Upscale _ ->
      false

let is_arith k = not (is_scale_mgmt k)

let name = function
  | Input _ -> "input"
  | Const _ -> "const"
  | Vconst _ -> "vconst"
  | Add _ -> "add"
  | Sub _ -> "sub"
  | Mul _ -> "mul"
  | Neg _ -> "neg"
  | Rotate _ -> "rotate"
  | Rescale _ -> "rescale"
  | Modswitch _ -> "modswitch"
  | Upscale _ -> "upscale"
