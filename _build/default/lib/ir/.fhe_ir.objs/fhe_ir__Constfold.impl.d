lib/ir/constfold.ml: Array Dce Fhe_util Hashtbl Op Program Rewrite
