lib/ir/emit.mli: Managed Op
