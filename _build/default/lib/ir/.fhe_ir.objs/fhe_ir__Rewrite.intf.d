lib/ir/rewrite.mli: Op Program
