lib/ir/analysis.ml: Array List Op Program
