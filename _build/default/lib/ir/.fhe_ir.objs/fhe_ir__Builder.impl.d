lib/ir/builder.ml: Array Fhe_util Hashtbl Op Program
