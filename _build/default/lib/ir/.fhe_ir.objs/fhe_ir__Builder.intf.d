lib/ir/builder.mli: Op Program
