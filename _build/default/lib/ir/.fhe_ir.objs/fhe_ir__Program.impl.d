lib/ir/program.ml: Array List Op Printf
