lib/ir/dce.mli: Program Rewrite
