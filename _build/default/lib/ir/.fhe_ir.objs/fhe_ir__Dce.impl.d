lib/ir/dce.ml: Analysis Array Rewrite
