lib/ir/pp.ml: Array Buffer Format List Managed Op Printf Program String
