lib/ir/cse.mli: Op Program Rewrite
