lib/ir/parser.ml: Array Buffer Fhe_util Format List Op Program String
