lib/ir/op.ml:
