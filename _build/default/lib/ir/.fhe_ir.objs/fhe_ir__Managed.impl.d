lib/ir/managed.ml: Array Cse Dce Op Program Rewrite
