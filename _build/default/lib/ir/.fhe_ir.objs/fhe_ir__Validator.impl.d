lib/ir/validator.ml: Array Buffer Format List Managed Op Option Program
