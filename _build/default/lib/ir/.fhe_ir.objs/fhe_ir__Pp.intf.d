lib/ir/pp.mli: Format Managed Op Program
