lib/ir/program.mli: Op
