lib/ir/cse.ml: Array Fhe_util Hashtbl Op Program Rewrite
