lib/ir/validator.mli: Format Managed Op
