lib/ir/op.mli:
