lib/ir/managed.mli: Op Program Rewrite
