lib/ir/analysis.mli: Op Program
