lib/ir/emit.ml: Array Fhe_util Hashtbl Managed Op Program
