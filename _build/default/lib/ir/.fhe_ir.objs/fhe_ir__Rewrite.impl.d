lib/ir/rewrite.ml: Array Fhe_util Op Printf Program
