lib/ir/constfold.mli: Program Rewrite
