type error = { op : Op.id; msg : string }

let pp_error ppf e = Format.fprintf ppf "op %%%d: %s" e.op e.msg

let check (m : Managed.t) =
  let p = m.Managed.prog in
  let s = m.Managed.scale and l = m.Managed.level in
  let rb = m.Managed.rbits and wb = m.Managed.wbits in
  let errs = ref [] in
  let err i fmt = Format.kasprintf (fun msg -> errs := { op = i; msg } :: !errs) fmt in
  let is_c i = Program.vtype p i = Op.Cipher in
  let n = Program.n_ops p in
  for i = 0 to n - 1 do
    (* A structurally broken op must not stop the sweep: record it
       against this op id and keep checking the rest. *)
    try
    (* Per-value invariants. *)
    if s.(i) < 0 then err i "negative scale (%d bits)" s.(i);
    if s.(i) > l.(i) * rb then
      err i "scale overflow: m=%d bits exceeds Q=%d bits" s.(i) (l.(i) * rb);
    if is_c i then begin
      if l.(i) < 1 then err i "ciphertext at level %d < 1" l.(i);
      if s.(i) < wb then
        err i "ciphertext scale %d below waterline %d" s.(i) wb
    end;
    (* Per-op constraints. *)
    let expect_same_sl a =
      if s.(i) <> s.(a) then
        err i "scale changed by %s: %d -> %d" (Op.name (Program.kind p i)) s.(a) s.(i);
      if l.(i) <> l.(a) then
        err i "level changed by %s: %d -> %d" (Op.name (Program.kind p i)) l.(a) l.(i)
    in
    match Program.kind p i with
    | Op.Input { vt = Op.Cipher; _ } ->
        if s.(i) <> wb then
          err i "cipher input scale %d, expected waterline %d" s.(i) wb
    | Op.Input _ | Op.Const _ | Op.Vconst _ -> ()
    | Op.Add (a, b) | Op.Sub (a, b) -> (
        match (is_c a, is_c b) with
        | true, true ->
            if s.(a) <> s.(b) then
              err i "add/sub operand scale mismatch: %d vs %d" s.(a) s.(b);
            if l.(a) <> l.(b) then
              err i "add/sub operand level mismatch: %d vs %d" l.(a) l.(b);
            expect_same_sl a
        | true, false | false, true ->
            let c = if is_c a then a else b and q = if is_c a then b else a in
            if s.(q) <> s.(c) then
              err i "plain operand scale %d does not match cipher scale %d"
                s.(q) s.(c);
            if l.(q) <> l.(c) then
              err i "plain operand level %d does not match cipher level %d"
                l.(q) l.(c);
            expect_same_sl c
        | false, false -> expect_same_sl a)
    | Op.Mul (a, b) ->
        if l.(a) <> l.(b) then
          err i "mul operand level mismatch: %d vs %d" l.(a) l.(b);
        if l.(i) <> l.(a) then
          err i "mul changed level: %d -> %d" l.(a) l.(i);
        if s.(i) <> s.(a) + s.(b) then
          err i "mul result scale %d, expected %d + %d" s.(i) s.(a) s.(b);
        let plain_side =
          match (is_c a, is_c b) with
          | true, false -> Some b
          | false, true -> Some a
          | _ -> None
        in
        Option.iter
          (fun q ->
            if s.(q) < wb then
              err i "plain mul operand scale %d below waterline %d" s.(q) wb)
          plain_side
    | Op.Neg a | Op.Rotate (a, _) -> expect_same_sl a
    | Op.Rescale a ->
        if s.(i) <> s.(a) - rb then
          err i "rescale scale %d, expected %d - %d" s.(i) s.(a) rb;
        if l.(i) <> l.(a) - 1 then
          err i "rescale level %d, expected %d - 1" l.(i) l.(a)
        (* waterline on the result is covered by the per-value check *)
    | Op.Modswitch a ->
        if s.(i) <> s.(a) then err i "modswitch changed scale";
        if l.(i) <> l.(a) - 1 then
          err i "modswitch level %d, expected %d - 1" l.(i) l.(a)
    | Op.Upscale (a, amt) ->
        if amt <= 0 then err i "non-positive upscale amount %d" amt;
        if s.(i) <> s.(a) + amt then
          err i "upscale scale %d, expected %d + %d" s.(i) s.(a) amt;
        if l.(i) <> l.(a) then err i "upscale changed level"
    with
    | Invalid_argument m -> err i "structurally broken op: %s" m
    | Failure m -> err i "check failed: %s" m
  done;
  match List.rev !errs with [] -> Ok () | es -> Error es

let check_exn m =
  match check m with
  | Ok () -> ()
  | Error es ->
      let b = Buffer.create 256 in
      List.iter
        (fun e -> Buffer.add_string b (Format.asprintf "%a\n" pp_error e))
        es;
      failwith ("Validator: illegal managed program:\n" ^ Buffer.contents b)
