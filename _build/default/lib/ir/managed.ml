type t = {
  prog : Program.t;
  scale : int array;
  level : int array;
  rbits : int;
  wbits : int;
}

let make ~prog ~scale ~level ~rbits ~wbits =
  let n = Program.n_ops prog in
  if Array.length scale <> n || Array.length level <> n then
    invalid_arg "Managed.make: annotation length mismatch";
  if rbits <= 0 || wbits <= 0 || wbits > rbits then
    invalid_arg "Managed.make: need 0 < wbits <= rbits";
  { prog; scale = Array.copy scale; level = Array.copy level; rbits; wbits }

let apply_rewrite t (r : Rewrite.result) =
  let n' = Program.n_ops r.Rewrite.prog in
  let scale = Array.make n' 0 and level = Array.make n' 0 in
  Array.iteri
    (fun i j ->
      if j >= 0 then begin
        scale.(j) <- t.scale.(i);
        level.(j) <- t.level.(i)
      end)
    r.Rewrite.remap;
  { t with prog = r.Rewrite.prog; scale; level }

let cse t =
  let key i =
    match Program.kind t.prog i with
    | Op.Const _ | Op.Vconst _ -> (t.scale.(i) * 4096) + t.level.(i)
    | _ -> 0
  in
  apply_rewrite t (Cse.run ~key t.prog)

let dce t = apply_rewrite t (Dce.run t.prog)

let reserve t i = (t.level.(i) * t.rbits) - t.scale.(i)

let input_level t =
  let l = ref 0 in
  Program.iteri
    (fun i k ->
      match k with
      | Op.Input { vt = Op.Cipher; _ } -> l := max !l t.level.(i)
      | _ -> ())
    t.prog;
  !l

let max_level t = Array.fold_left max 0 t.level

let count_kind t f = Program.count t.prog ~f

let n_rescale t =
  count_kind t (function Op.Rescale _ -> true | _ -> false)

let n_modswitch t =
  count_kind t (function Op.Modswitch _ -> true | _ -> false)

let n_upscale t =
  count_kind t (function Op.Upscale _ -> true | _ -> false)
