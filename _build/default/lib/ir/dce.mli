(** Dead-code elimination: drop every op not reachable from an output. *)

val run : Program.t -> Rewrite.result
