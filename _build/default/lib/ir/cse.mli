(** Common-subexpression elimination by forward structural hashing.

    Two ops merge when their kinds (with operands already remapped) are
    structurally equal and their [key] discriminators agree.  [key]
    defaults to a constant; managed pipelines pass the assigned scale of
    plaintext leaves so two [Const 0.5] encoded at different scales stay
    distinct. [Input] ops are never merged. *)

val run : ?key:(Op.id -> int) -> Program.t -> Rewrite.result
