(** Incremental construction of managed programs.

    Scale-management passes synthesize a new op stream while annotating
    every value with its scale (bits) and a pass-specific auxiliary
    integer ([aux]): EVA-style forward passes store the number of
    consumed levels, the reserve pipeline stores the concrete level.
    [finish] converts [aux] to final levels through a callback.

    Plaintext constants are instantiated per (scale, aux) context —
    re-encoding a constant at another scale is free at runtime, and this
    keeps the validator's exact-scale-match rules satisfiable without
    runtime coercion ops on plaintexts. *)

type t

val create : unit -> t

val push : t -> Op.kind -> scale:int -> aux:int -> Op.id
(** Append an op with its annotations; returns the new value id. *)

val plain_leaf : t -> Op.kind -> scale:int -> aux:int -> Op.id
(** Instantiate a [Const]/[Vconst] at the given annotation, cached per
    (kind, scale, aux).
    @raise Invalid_argument on non-leaf kinds. *)

val scale : t -> Op.id -> int

val aux : t -> Op.id -> int

val kind : t -> Op.id -> Op.kind

val n_ops : t -> int

val finish :
  t ->
  outputs:Op.id array ->
  n_slots:int ->
  rbits:int ->
  wbits:int ->
  level:(Op.id -> int) ->
  Managed.t
(** Freeze.  [level] receives each new id and must return its final
    level (it may consult {!scale} and {!aux}). *)
