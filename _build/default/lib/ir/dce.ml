let run p =
  let live = Analysis.reachable p in
  Rewrite.rebuild p ~keep:(fun i -> live.(i)) ~rewrite:(fun _ k -> k)
