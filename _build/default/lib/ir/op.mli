(** Operations of the RNS-CKKS intermediate representation.

    The vocabulary mirrors Table 2 of the paper: arithmetic operations
    ([add], [sub], [mul], [neg], [rotate]) that affect encoded values, and
    scale-management operations ([rescale], [modswitch], [upscale]) that
    only change the scale/level bookkeeping of a ciphertext.

    Values are identified by dense integer ids; an operation only refers
    to ids smaller than its own (SSA, topologically ordered). *)

type id = int
(** A value id.  Ids are indices into the owning program's op array. *)

type vtype =
  | Cipher  (** encrypted vector *)
  | Plain   (** plaintext (encoded) vector *)

type kind =
  | Input of { name : string; vt : vtype }
      (** A program input; ciphertext inputs arrive encoded at the
          waterline scale. *)
  | Const of float
      (** A scalar constant, splat across all slots; always [Plain]. *)
  | Vconst of { tag : string; values : float array }
      (** A vector constant (e.g. convolution mask), zero-extended to
          the slot count; always [Plain].  [tag] is a stable label used
          for structural dedup/printing. *)
  | Add of id * id
  | Sub of id * id
  | Mul of id * id
  | Neg of id
  | Rotate of id * int
      (** [Rotate (v, k)] rotates slots left by [k] (may be negative). *)
  | Rescale of id
      (** Divide scale by the rescaling factor [R]; level decreases by 1. *)
  | Modswitch of id
      (** Drop one modulus: level decreases by 1, scale unchanged. *)
  | Upscale of id * int
      (** [Upscale (v, bits)] multiplies the scale by [2^bits]
          (multiplication by an encoded identity); level unchanged. *)

val operands : kind -> id list
(** Operand ids, in positional order. *)

val map_operands : (id -> id) -> kind -> kind
(** Rewrite operand ids (used by the pass remapping machinery). *)

val is_arith : kind -> bool
(** True for the operations a programmer writes (Table 2, upper half). *)

val is_scale_mgmt : kind -> bool
(** True for [Rescale], [Modswitch], [Upscale]. *)

val is_leaf : kind -> bool
(** True for [Input], [Const], [Vconst]. *)

val name : kind -> string
(** Mnemonic used by the printer, e.g. ["mul"]. *)
