let pp_kind ppf (k : Op.kind) =
  let v ppf i = Format.fprintf ppf "%%%d" i in
  match k with
  | Op.Input { name; vt } ->
      Format.fprintf ppf "input %s : %s" name
        (match vt with Op.Cipher -> "cipher" | Op.Plain -> "plain")
  | Op.Const c -> Format.fprintf ppf "const %g" c
  | Op.Vconst { tag; values } ->
      if Array.length values <= 8 then begin
        Format.fprintf ppf "vconst [";
        Array.iteri
          (fun i x ->
            if i > 0 then Format.fprintf ppf ", ";
            Format.fprintf ppf "%.12g" x)
          values;
        Format.fprintf ppf "]"
      end
      else if tag <> "" then
        Format.fprintf ppf "vconst <%s:%d>" tag (Array.length values)
      else Format.fprintf ppf "vconst [%d values]" (Array.length values)
  | Op.Add (a, b) -> Format.fprintf ppf "add %a %a" v a v b
  | Op.Sub (a, b) -> Format.fprintf ppf "sub %a %a" v a v b
  | Op.Mul (a, b) -> Format.fprintf ppf "mul %a %a" v a v b
  | Op.Neg a -> Format.fprintf ppf "neg %a" v a
  | Op.Rotate (a, k) -> Format.fprintf ppf "rotate %a %d" v a k
  | Op.Rescale a -> Format.fprintf ppf "rescale %a" v a
  | Op.Modswitch a -> Format.fprintf ppf "modswitch %a" v a
  | Op.Upscale (a, m) -> Format.fprintf ppf "upscale %a %d" v a m

let pp_outputs ppf outs =
  Format.fprintf ppf "ret ";
  Array.iteri
    (fun i o ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%%%d" o)
    outs

let pp_program ppf p =
  Program.iteri
    (fun i k -> Format.fprintf ppf "%%%d = %a@." i pp_kind k)
    p;
  Format.fprintf ppf "%a@." pp_outputs (Program.outputs p)

let program_to_string p = Format.asprintf "%a" pp_program p

let pp_managed ~scale ~level ppf p =
  Program.iteri
    (fun i k ->
      Format.fprintf ppf "%%%d = %a  : m=%d l=%d@." i pp_kind k scale.(i)
        level.(i))
    p;
  Format.fprintf ppf "%a@." pp_outputs (Program.outputs p)

let to_dot ?managed p =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph fhe {\n  rankdir=TB;\n";
  let is_out = Array.make (Program.n_ops p) false in
  Array.iter (fun o -> is_out.(o) <- true) (Program.outputs p);
  Program.iteri
    (fun i k ->
      let label = Format.asprintf "%%%d: %a" i pp_kind k in
      let label =
        match managed with
        | Some m ->
            Printf.sprintf "%s\\nm=%d l=%d" label m.Managed.scale.(i)
              m.Managed.level.(i)
        | None -> label
      in
      let shape = if Op.is_scale_mgmt k then "box" else "ellipse" in
      let extra = if is_out.(i) then ", peripheries=2" else "" in
      Buffer.add_string b
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" i
           (String.concat "\\\"" (String.split_on_char '"' label))
           shape extra);
      List.iter
        (fun o -> Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" o i))
        (Op.operands k))
    p;
  Buffer.add_string b "}\n";
  Buffer.contents b
