type t = {
  ops : Op.kind array;
  outputs : Op.id array;
  n_slots : int;
  vt : Op.vtype array;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let compute_vt ops =
  let n = Array.length ops in
  let vt = Array.make n Op.Plain in
  for i = 0 to n - 1 do
    let k = ops.(i) in
    let v =
      match k with
      | Op.Input { vt; _ } -> vt
      | Op.Const _ | Op.Vconst _ -> Op.Plain
      | _ ->
          if List.exists (fun o -> vt.(o) = Op.Cipher) (Op.operands k) then
            Op.Cipher
          else Op.Plain
    in
    vt.(i) <- v
  done;
  vt

let make ~ops ~outputs ~n_slots =
  if not (is_pow2 n_slots) then
    invalid_arg "Program.make: n_slots must be a positive power of two";
  let n = Array.length ops in
  Array.iteri
    (fun i k ->
      List.iter
        (fun o ->
          if o < 0 || o >= i then
            invalid_arg
              (Printf.sprintf "Program.make: op %d has invalid operand %d" i o))
        (Op.operands k))
    ops;
  Array.iter
    (fun o ->
      if o < 0 || o >= n then
        invalid_arg (Printf.sprintf "Program.make: invalid output id %d" o))
    outputs;
  { ops = Array.copy ops; outputs = Array.copy outputs; n_slots;
    vt = compute_vt ops }

let n_ops t = Array.length t.ops

let n_slots t = t.n_slots

let kind t i = t.ops.(i)

let ops t = t.ops

let outputs t = t.outputs

let vtype t i = t.vt.(i)

let iteri f t = Array.iteri f t.ops

let count t ~f =
  Array.fold_left (fun acc k -> if f k then acc + 1 else acc) 0 t.ops

let n_arith t = count t ~f:(fun k -> Op.is_arith k && not (Op.is_leaf k))
