(** Shared machinery for id-remapping program transformations.

    A pass produces a new program together with a map from old value ids
    to new ones ([-1] for deleted values), so per-value side tables
    (scales, levels, reserves) can be carried across the transformation. *)

type result = {
  prog : Program.t;
  remap : int array;  (** [remap.(old_id)] = new id, or [-1] if removed. *)
}

val rebuild :
  Program.t -> keep:(Op.id -> bool) -> rewrite:(Op.id -> Op.kind -> Op.kind) -> result
(** Rebuild keeping exactly the ops selected by [keep] (outputs are
    always kept), applying [rewrite] to each kept op {e after} its
    operands have been remapped.  A dropped op must not be an operand of
    a kept op.
    @raise Invalid_argument if that is violated. *)

val identity : Program.t -> result
