(** A text format for (arithmetic) IR programs, round-tripping with
    {!Pp.pp_program}:

    {v
    # comments and blank lines are skipped
    %0 = input x : cipher
    %1 = const 0.5
    %2 = vconst [0.1, 0.2, 0.3]
    %3 = mul %0 %1
    %4 = rotate %3 5
    ret %3, %4
    v}

    Value ids must be dense and in order (SSA, as printed); the managed
    ops [rescale]/[modswitch]/[upscale] are accepted too so printed
    managed programs parse back (annotations are not part of the text
    format and are ignored on input). *)

type error = { line : int; msg : string }

val pp_error : Format.formatter -> error -> unit

val parse : ?n_slots:int -> string -> (Program.t, error) result
(** Parse a whole program from a string ([n_slots] defaults to 16384). *)

val parse_exn : ?n_slots:int -> string -> Program.t
(** @raise Failure with a rendered error. *)
