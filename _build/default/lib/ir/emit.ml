type t = {
  ops : Op.kind Fhe_util.Vec.t;
  scales : int Fhe_util.Vec.t;
  auxs : int Fhe_util.Vec.t;
  leaves : (Op.kind * int * int, Op.id) Hashtbl.t;
}

let create () =
  { ops = Fhe_util.Vec.create ();
    scales = Fhe_util.Vec.create ();
    auxs = Fhe_util.Vec.create ();
    leaves = Hashtbl.create 64 }

let push t k ~scale ~aux =
  Fhe_util.Vec.push t.ops k;
  Fhe_util.Vec.push t.scales scale;
  Fhe_util.Vec.push t.auxs aux;
  Fhe_util.Vec.length t.ops - 1

let plain_leaf t k ~scale ~aux =
  (match k with
  | Op.Const _ | Op.Vconst _ -> ()
  | _ -> invalid_arg "Emit.plain_leaf: not a plaintext leaf");
  let key = (k, scale, aux) in
  match Hashtbl.find_opt t.leaves key with
  | Some id -> id
  | None ->
      let id = push t k ~scale ~aux in
      Hashtbl.add t.leaves key id;
      id

let scale t i = Fhe_util.Vec.get t.scales i

let aux t i = Fhe_util.Vec.get t.auxs i

let kind t i = Fhe_util.Vec.get t.ops i

let n_ops t = Fhe_util.Vec.length t.ops

let finish t ~outputs ~n_slots ~rbits ~wbits ~level =
  let prog =
    Program.make ~ops:(Fhe_util.Vec.to_array t.ops) ~outputs ~n_slots
  in
  let n = Program.n_ops prog in
  let scale = Fhe_util.Vec.to_array t.scales in
  let lv = Array.init n level in
  Managed.make ~prog ~scale ~level:lv ~rbits ~wbits
