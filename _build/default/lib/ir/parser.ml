type error = { line : int; msg : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.msg

exception Err of error

let fail line fmt = Format.kasprintf (fun msg -> raise (Err { line; msg })) fmt

let tokens_of line s =
  (* split on whitespace and commas; '=' is its own token *)
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | '=' | '[' | ']' | ':' ->
          flush ();
          out := String.make 1 c :: !out
      | _ -> Buffer.add_char buf c)
    s;
  flush ();
  ignore line;
  List.rev !out

let value_id line tok =
  if String.length tok < 2 || tok.[0] <> '%' then
    fail line "expected a value id like %%3, got %S" tok;
  match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
  | Some v when v >= 0 -> v
  | _ -> fail line "malformed value id %S" tok

let number line tok =
  match float_of_string_opt tok with
  | Some f -> f
  | None -> fail line "expected a number, got %S" tok

let integer line tok =
  match int_of_string_opt tok with
  | Some i -> i
  | None -> fail line "expected an integer, got %S" tok

(* the annotation suffix the managed printer emits, if present *)
let strip_annotation toks =
  let rec cut acc = function
    | ":" :: "m" :: "=" :: _ -> List.rev acc
    | [] -> List.rev acc
    | t :: rest -> cut (t :: acc) rest
  in
  cut [] toks

let parse_rhs line toks =
  match strip_annotation toks with
  | [ "input"; name; ":"; vt ] ->
      let vt =
        match vt with
        | "cipher" -> Op.Cipher
        | "plain" -> Op.Plain
        | _ -> fail line "input type must be cipher or plain, got %S" vt
      in
      Op.Input { name; vt }
  | [ "const"; c ] -> Op.Const (number line c)
  | "vconst" :: "[" :: rest ->
      let rec values acc = function
        | [ "]" ] -> List.rev acc
        | v :: rest -> values (number line v :: acc) rest
        | [] -> fail line "unterminated vconst"
      in
      Op.Vconst { tag = ""; values = Array.of_list (values [] rest) }
  | [ "vconst"; tag ] ->
      (* the printer's opaque form "vconst <tag>"; no values available *)
      fail line "cannot parse opaque vconst %s: use the [v1, v2, ...] form" tag
  | [ "add"; a; b ] -> Op.Add (value_id line a, value_id line b)
  | [ "sub"; a; b ] -> Op.Sub (value_id line a, value_id line b)
  | [ "mul"; a; b ] -> Op.Mul (value_id line a, value_id line b)
  | [ "neg"; a ] -> Op.Neg (value_id line a)
  | [ "rotate"; a; k ] -> Op.Rotate (value_id line a, integer line k)
  | [ "rescale"; a ] -> Op.Rescale (value_id line a)
  | [ "modswitch"; a ] -> Op.Modswitch (value_id line a)
  | [ "upscale"; a; k ] -> Op.Upscale (value_id line a, integer line k)
  | op :: _ -> fail line "unknown operation %S" op
  | [] -> fail line "missing right-hand side"

let parse ?(n_slots = 16384) text =
  let ops = Fhe_util.Vec.create () in
  let outputs = ref None in
  let handle lineno raw =
    let raw =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    match tokens_of lineno raw with
    | [] -> ()
    | "ret" :: rest ->
        if !outputs <> None then fail lineno "duplicate ret";
        if rest = [] then fail lineno "ret needs at least one value";
        outputs := Some (Array.of_list (List.map (value_id lineno) rest))
    | lhs :: "=" :: rhs ->
        if !outputs <> None then fail lineno "op after ret";
        let id = value_id lineno lhs in
        if id <> Fhe_util.Vec.length ops then
          fail lineno "expected id %%%d, got %%%d (ids must be dense and in order)"
            (Fhe_util.Vec.length ops) id;
        Fhe_util.Vec.push ops (parse_rhs lineno rhs)
    | _ -> fail lineno "expected '%%N = op ...' or 'ret ...'"
  in
  match
    String.split_on_char '\n' text
    |> List.iteri (fun i l -> handle (i + 1) l)
  with
  | () -> (
      match !outputs with
      | None -> Error { line = 0; msg = "missing ret" }
      | Some outputs -> (
          match
            Program.make ~ops:(Fhe_util.Vec.to_array ops) ~outputs ~n_slots
          with
          | p -> Ok p
          | exception Invalid_argument msg -> Error { line = 0; msg }))
  | exception Err e -> Error e

let parse_exn ?n_slots text =
  match parse ?n_slots text with
  | Ok p -> p
  | Error e -> failwith (Format.asprintf "Parser: %a" pp_error e)
