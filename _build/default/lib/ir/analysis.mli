(** Dataflow analyses shared by the scale-management passes. *)

val users : Program.t -> Op.id list array
(** [users p] maps each value to the ids of the ops consuming it.
    A user appears once per operand position (e.g. [Mul (v, v)] lists the
    mul twice for [v]). *)

val n_uses : Program.t -> int array
(** Use counts (outputs count as one use each). *)

val reachable : Program.t -> bool array
(** Values transitively reachable from the program outputs. *)

val mult_depth : Program.t -> int array
(** The paper's multiplicative depth (§6.1): the maximum number of
    ciphertext multiplications on any path from a value to a return
    value, counting from 1 at the returns.  Precisely:
    [depth v = max (1 if v is an output) (max over users u of
    depth u + (1 if u is a cipher mul))].  Unreachable values get 0.
    Scale-management ops are transparent. *)

val max_mult_depth : Program.t -> int
(** Maximum of {!mult_depth} over the outputs' dependence cone. *)
