(** Constant folding over scalar plaintext constants, plus algebraic
    identities that never change ciphertext semantics:
    [x * 1 → x], [x + 0 → x], [x - 0 → x], [neg (neg x) → x],
    [rotate (rotate x a) b → rotate x (a+b)].

    Runs before scale management so the analyses see the circuit the
    backend would actually execute.  Only arithmetic programs are
    accepted (no scale-management ops).
    @raise Invalid_argument on a managed program. *)

val run : Program.t -> Rewrite.result
