(** The RNS-CKKS legality checker.

    Verifies that a managed program satisfies every constraint of
    Table 2 plus the waterline and scale-overflow invariants.  All
    three compilers' outputs are run through this checker in the test
    suite, and the reserve pipeline checks its own output — this is the
    "ensures the correctness of the analysis result" role the paper
    assigns to the type system, applied to the final program. *)

type error = { op : Op.id; msg : string }

val pp_error : Format.formatter -> error -> unit

val check : Managed.t -> (unit, error list) result
(** All violated constraints, in op order — the sweep never stops early:
    an op whose checks themselves blow up (e.g. a structurally broken
    reference) is reported against its op id and checking continues, so
    diagnostics can point at every offending instruction in one run.
    The checked rules are:
    - every value: [0 <= scale <= level*rbits] (no scale overflow);
    - every ciphertext: [level >= 1] and [scale >= wbits] (waterline);
    - add/sub of two ciphers: equal scales and levels, result inherits;
    - add/sub cipher+plain: plain matches the cipher scale and level;
    - mul of two ciphers: equal levels; result scale is the sum;
    - mul cipher×plain: equal levels, plain scale ≥ waterline;
    - neg/rotate: scale and level preserved;
    - rescale: scale drops by exactly [rbits], level by 1, and the
      result of a cipher rescale stays at or above the waterline;
    - modswitch: level drops by 1, scale preserved;
    - upscale: positive amount, level preserved;
    - cipher inputs arrive at the waterline scale. *)

val check_exn : Managed.t -> unit
(** @raise Failure with a rendered error list if the program is illegal. *)
