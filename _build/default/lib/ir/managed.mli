(** A scale-managed program: the output of a scale-management compiler.

    Every value carries its concrete scale (in bits, i.e. [log2 m]) and
    its level [l] (number of remaining rescaling factors, so the value's
    coefficient modulus is [Q = R^l = 2^(l*rbits)]).  The RNS-CKKS
    encryption parameter implied by a managed program is the maximum
    cipher input level (bigger level = bigger, slower ciphertexts). *)

type t = {
  prog : Program.t;
  scale : int array;  (** bits; [scale.(i)] = log2 of value [i]'s scale *)
  level : int array;
  rbits : int;  (** log2 of the rescaling factor [R] (paper: 60) *)
  wbits : int;  (** log2 of the waterline [W] (paper: 15–45) *)
}

val make :
  prog:Program.t ->
  scale:int array ->
  level:int array ->
  rbits:int ->
  wbits:int ->
  t
(** @raise Invalid_argument if array lengths don't match the program. *)

val apply_rewrite : t -> Rewrite.result -> t
(** Carry annotations across a pass ({!Cse}, {!Dce}, ...). *)

val cse : t -> t
(** CSE that distinguishes plaintext leaves by (scale, level). *)

val dce : t -> t

val reserve : t -> Op.id -> int
(** [reserve m i] = [level.(i) * rbits - scale.(i)]: the bits of scale
    budget left (the paper's reserve [r = Q/m], in bits). *)

val input_level : t -> int
(** Maximum level over ciphertext inputs: the encryption parameter [L]
    (and thus [Q_max = R^L]) this program requires.  0 for programs with
    no cipher inputs. *)

val max_level : t -> int

val n_rescale : t -> int

val n_modswitch : t -> int

val n_upscale : t -> int
