let users p =
  let n = Program.n_ops p in
  let u = Array.make n [] in
  for i = n - 1 downto 0 do
    List.iter (fun o -> u.(o) <- i :: u.(o)) (Op.operands (Program.kind p i))
  done;
  u

let n_uses p =
  let n = Program.n_ops p in
  let c = Array.make n 0 in
  Program.iteri
    (fun _ k -> List.iter (fun o -> c.(o) <- c.(o) + 1) (Op.operands k))
    p;
  Array.iter (fun o -> c.(o) <- c.(o) + 1) (Program.outputs p);
  c

let reachable p =
  let n = Program.n_ops p in
  let r = Array.make n false in
  Array.iter (fun o -> r.(o) <- true) (Program.outputs p);
  for i = n - 1 downto 0 do
    if r.(i) then
      List.iter (fun o -> r.(o) <- true) (Op.operands (Program.kind p i))
  done;
  r

let is_cipher_mul p i =
  match Program.kind p i with
  | Op.Mul _ -> Program.vtype p i = Op.Cipher
  | _ -> false

let mult_depth p =
  let n = Program.n_ops p in
  let d = Array.make n 0 in
  Array.iter (fun o -> d.(o) <- max d.(o) 1) (Program.outputs p);
  for i = n - 1 downto 0 do
    if d.(i) > 0 then begin
      let inc = if is_cipher_mul p i then 1 else 0 in
      List.iter
        (fun o -> d.(o) <- max d.(o) (d.(i) + inc))
        (Op.operands (Program.kind p i))
    end
  done;
  d

let max_mult_depth p = Array.fold_left max 0 (mult_depth p)
