(* Parser, DOT export, security tables, serialization, waterline tuner
   and bootstrap planning. *)

open Fhe_ir

(* ------------------------------------------------------------------ *)
(* parser *)

let test_parse_basic () =
  let p =
    Parser.parse_exn
      {|
      # the paper's example
      %0 = input x : cipher
      %1 = input y : cipher
      %2 = mul %0 %0
      %3 = mul %0 %2
      %4 = mul %1 %1
      %5 = add %4 %1
      %6 = mul %3 %5
      ret %6
      |}
  in
  Alcotest.(check int) "ops" 7 (Program.n_ops p);
  Alcotest.(check int) "outputs" 1 (Array.length (Program.outputs p));
  Alcotest.(check int) "depth" 4 (Analysis.max_mult_depth p)

let test_parse_all_ops () =
  let p =
    Parser.parse_exn ~n_slots:8
      {|
      %0 = input x : cipher
      %1 = input w : plain
      %2 = const 0.5
      %3 = vconst [0.1, 0.2, 0.3]
      %4 = add %0 %2
      %5 = sub %4 %3
      %6 = neg %5
      %7 = rotate %6 3
      %8 = mul %7 %1
      %9 = rescale %8
      %10 = modswitch %9
      %11 = upscale %10 20
      ret %11, %7
      |}
  in
  Alcotest.(check int) "ops" 12 (Program.n_ops p);
  Alcotest.(check bool) "plain input" true (Program.vtype p 1 = Op.Plain)

let test_parse_roundtrip () =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" in
  let v = Builder.vconst b [| 0.25; 0.5 |] in
  let e = Builder.rotate b (Builder.mul b (Builder.add b x v) x) 5 in
  let p = Builder.finish b ~outputs:[ e ] in
  let p' = Parser.parse_exn ~n_slots:8 (Pp.program_to_string p) in
  Alcotest.(check string) "printed forms equal" (Pp.program_to_string p)
    (Pp.program_to_string p');
  let inputs = [ ("x", [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]) ] in
  let a = Fhe_sim.Interp.run_reference p ~inputs in
  let c = Fhe_sim.Interp.run_reference p' ~inputs in
  Alcotest.(check (array (float 1e-9))) "same function" a.(0) c.(0)

let expect_parse_error frag text =
  match Parser.parse text with
  | Ok _ -> Alcotest.failf "expected parse error mentioning %S" frag
  | Error e ->
      let msg = Format.asprintf "%a" Parser.pp_error e in
      if not (Helpers.contains msg frag) then
        Alcotest.failf "error %S does not mention %S" msg frag

let test_parse_errors () =
  expect_parse_error "missing ret" "%0 = const 1.0\n";
  expect_parse_error "dense" "%1 = const 1.0\nret %1\n";
  expect_parse_error "unknown operation" "%0 = frobnicate %1\nret %0\n";
  expect_parse_error "cipher or plain" "%0 = input x : weird\nret %0\n";
  expect_parse_error "duplicate ret" "%0 = const 1.0\nret %0\nret %0\n";
  expect_parse_error "expected a number" "%0 = const banana\nret %0\n";
  expect_parse_error "value id" "%0 = neg x\nret %0\n"

let test_parse_managed_annotations_ignored () =
  (* the managed printer's annotations parse as comments of the op *)
  let p =
    Parser.parse_exn
      "%0 = input x : cipher  : m=30 l=2\n%1 = mul %0 %0  : m=60 l=2\nret %1\n"
  in
  Alcotest.(check int) "ops" 2 (Program.n_ops p)

(* ------------------------------------------------------------------ *)
(* dot *)

let test_dot_export () =
  let p, _ = Helpers.paper_example () in
  let dot = Pp.to_dot p in
  Alcotest.(check bool) "digraph" true (Helpers.contains dot "digraph");
  Alcotest.(check bool) "edge" true (Helpers.contains dot "n0 -> n2");
  Alcotest.(check bool) "output marked" true (Helpers.contains dot "peripheries=2");
  let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 p in
  let dotm = Pp.to_dot ~managed:m m.Managed.prog in
  Alcotest.(check bool) "annotations" true (Helpers.contains dotm "m=");
  Alcotest.(check bool) "rescale boxed" true (Helpers.contains dotm "shape=box")

(* ------------------------------------------------------------------ *)
(* security *)

let test_security_table () =
  Alcotest.(check int) "n=8192 @128" 218
    (Ckks.Security.max_total_modulus_bits ~n:8192 Ckks.Security.B128);
  Alcotest.(check int) "n=32768 @256" 476
    (Ckks.Security.max_total_modulus_bits ~n:32768 Ckks.Security.B256);
  try
    ignore (Ckks.Security.max_total_modulus_bits ~n:512 Ckks.Security.B128);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_security_check () =
  (* 4 chain primes of 28 bits + a 29-bit special: ~141 bits *)
  let small = Ckks.Context.make ~n:8192 ~levels:4 () in
  Alcotest.(check bool) "fits 128-bit" true
    (Result.is_ok (Ckks.Security.check small Ckks.Security.B128));
  Alcotest.(check bool) "classified" true
    (Ckks.Security.classify small <> None);
  let big = Ckks.Context.make ~n:2048 ~levels:3 () in
  Alcotest.(check bool) "3x28+29 bits too much for n=2048" true
    (Result.is_error (Ckks.Security.check big Ckks.Security.B128))

let test_security_total_bits () =
  let ctx = Ckks.Context.make ~n:1024 ~levels:2 ~level_bits:20 () in
  let bits = Ckks.Security.total_modulus_bits ctx in
  (* 2 x ~20-bit primes + ~21-bit special *)
  Alcotest.(check bool) "within a couple of bits" true
    (bits >= 59 && bits <= 63)

(* ------------------------------------------------------------------ *)
(* serialization *)

let ser_ctx = lazy (Ckks.Context.make ~n:256 ~levels:3 ())

let ser_keys = lazy (Ckks.Keys.keygen ~rotations:[ 2 ] (Lazy.force ser_ctx))

let test_serialize_ciphertext () =
  let ctx = Lazy.force ser_ctx in
  let keys = Lazy.force ser_keys in
  let v = Array.init 128 (fun i -> cos (float_of_int i)) in
  let ct = Ckks.Evaluator.encrypt keys ~level:3 ~scale:(2.0 ** 24.0) v in
  let bytes = Ckks.Serialize.ciphertext_to_bytes ct in
  match Ckks.Serialize.ciphertext_of_bytes ctx bytes with
  | Error e -> Alcotest.failf "deserialize failed: %s" e
  | Ok ct' ->
      let dec = Ckks.Evaluator.decrypt keys ct' in
      Array.iteri
        (fun i x ->
          if Float.abs (x -. dec.(i)) > 1e-3 then
            Alcotest.failf "slot %d: %g vs %g" i x dec.(i))
        v

let test_serialize_rejects_garbage () =
  let ctx = Lazy.force ser_ctx in
  (match Ckks.Serialize.ciphertext_of_bytes ctx (Bytes.of_string "nope") with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  (* flip the magic *)
  let keys = Lazy.force ser_keys in
  let ct =
    Ckks.Evaluator.encrypt keys ~level:2 ~scale:(2.0 ** 24.0) [| 1.0 |]
  in
  let bytes = Ckks.Serialize.ciphertext_to_bytes ct in
  Bytes.set bytes 0 'X';
  match Ckks.Serialize.ciphertext_of_bytes ctx bytes with
  | Ok _ -> Alcotest.fail "accepted bad magic"
  | Error e -> Alcotest.(check bool) "mentions magic" true (Helpers.contains e "magic")

let test_serialize_keys_roundtrip () =
  let ctx = Lazy.force ser_ctx in
  let keys = Lazy.force ser_keys in
  let blob = Ckks.Serialize.galois_keys_to_bytes keys in
  match Ckks.Serialize.load_evaluation_keys ctx ~secret:keys.Ckks.Keys.s blob with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok keys' ->
      (* the reloaded evaluation keys must evaluate correctly *)
      let v = Array.init 128 (fun i -> sin (float_of_int i) /. 2.0) in
      let ct = Ckks.Evaluator.encrypt keys' ~level:3 ~scale:(2.0 ** 24.0) v in
      let sq =
        Ckks.Evaluator.rescale keys' (Ckks.Evaluator.mul keys' ct ct)
      in
      let rot = Ckks.Evaluator.rotate keys' sq 2 in
      let dec = Ckks.Evaluator.decrypt keys' rot in
      Array.iteri
        (fun i x ->
          let expect = v.((i + 2) mod 128) ** 2.0 in
          if Float.abs (x -. expect) > 0.05 then
            Alcotest.failf "slot %d: %g vs %g" i x expect)
        (Array.sub dec 0 128)

(* ------------------------------------------------------------------ *)
(* tuner *)

let test_tuner_finds_waterline () =
  let p, _ = Helpers.paper_example () in
  let compile ~wbits = Fhe_eva.Eva.compile ~rbits:60 ~wbits p in
  match
    Fhe_sim.Tuner.tune_waterline ~compile ~inputs:Helpers.paper_inputs
      ~target_log2_error:(-10.0) ()
  with
  | None -> Alcotest.fail "no waterline found"
  | Some (w, m) ->
      Alcotest.(check bool) "meets target" true
        (Fhe_sim.Interp.max_log2_error m ~inputs:Helpers.paper_inputs <= -10.0);
      (* minimality: one bit less misses the target *)
      if w > 15 then
        Alcotest.(check bool) "minimal" true
          (Fhe_sim.Interp.max_log2_error
             (compile ~wbits:(w - 1))
             ~inputs:Helpers.paper_inputs
          > -10.0)

let test_tuner_unreachable_target () =
  let p, _ = Helpers.paper_example () in
  let compile ~wbits = Fhe_eva.Eva.compile ~rbits:60 ~wbits p in
  Alcotest.(check bool) "impossible target refused" true
    (Fhe_sim.Tuner.tune_waterline ~compile ~inputs:Helpers.paper_inputs
       ~target_log2_error:(-500.0) ()
    = None)

(* ------------------------------------------------------------------ *)
(* bootstrap planning *)

let deep_program depth =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" in
  let rec go e k =
    if k = 0 then e
    else go (Builder.add b (Builder.square b e) (Builder.const b 0.1)) (k - 1)
  in
  Builder.finish b ~outputs:[ go x depth ]

let test_bootplan_fits_budget () =
  let p = deep_program 12 in
  match Reserve.Bootplan.plan ~max_level:4 ~rbits:60 ~wbits:30 p with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Alcotest.(check bool) "needs several segments" true
        (List.length plan.Reserve.Bootplan.segments >= 2);
      Alcotest.(check bool) "budget respected" true
        (plan.Reserve.Bootplan.max_segment_level <= 4);
      Alcotest.(check bool) "bootstraps counted" true
        (plan.Reserve.Bootplan.bootstraps >= List.length plan.Reserve.Bootplan.segments - 1);
      Alcotest.(check bool) "many SM invocations, little SM time" true
        (plan.Reserve.Bootplan.sm_invocations >= 8)

let test_bootplan_single_segment_when_shallow () =
  let p = deep_program 2 in
  match Reserve.Bootplan.plan ~max_level:10 ~rbits:60 ~wbits:30 p with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Alcotest.(check int) "one segment" 1
        (List.length plan.Reserve.Bootplan.segments);
      Alcotest.(check int) "no bootstraps" 0 plan.Reserve.Bootplan.bootstraps;
      Alcotest.(check (list int)) "no cuts" [] plan.Reserve.Bootplan.cuts

let test_bootplan_impossible () =
  let p = deep_program 6 in
  Alcotest.(check bool) "budget of one level cannot fit a square" true
    (Result.is_error (Reserve.Bootplan.plan ~max_level:1 ~rbits:60 ~wbits:45 p))

let test_bootplan_segments_valid () =
  let p = deep_program 9 in
  match Reserve.Bootplan.plan ~max_level:3 ~rbits:60 ~wbits:25 p with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      List.iter Helpers.check_valid plan.Reserve.Bootplan.segments;
      Alcotest.(check bool) "latency includes bootstrap cost" true
        (plan.Reserve.Bootplan.total_latency_us
        >= float_of_int plan.Reserve.Bootplan.bootstraps *. 1e6)

let suite =
  [ Alcotest.test_case "parser: basic" `Quick test_parse_basic;
    Alcotest.test_case "parser: all ops" `Quick test_parse_all_ops;
    Alcotest.test_case "parser: print/parse round trip" `Quick
      test_parse_roundtrip;
    Alcotest.test_case "parser: errors" `Quick test_parse_errors;
    Alcotest.test_case "parser: managed annotations" `Quick
      test_parse_managed_annotations_ignored;
    Alcotest.test_case "pp: dot export" `Quick test_dot_export;
    Alcotest.test_case "security: standard table" `Quick test_security_table;
    Alcotest.test_case "security: context check" `Quick test_security_check;
    Alcotest.test_case "security: modulus bits" `Quick
      test_security_total_bits;
    Alcotest.test_case "serialize: ciphertext round trip" `Quick
      test_serialize_ciphertext;
    Alcotest.test_case "serialize: rejects garbage" `Quick
      test_serialize_rejects_garbage;
    Alcotest.test_case "serialize: evaluation keys" `Quick
      test_serialize_keys_roundtrip;
    Alcotest.test_case "tuner: finds minimal waterline" `Quick
      test_tuner_finds_waterline;
    Alcotest.test_case "tuner: unreachable target" `Quick
      test_tuner_unreachable_target;
    Alcotest.test_case "bootplan: fits level budget" `Quick
      test_bootplan_fits_budget;
    Alcotest.test_case "bootplan: shallow programs untouched" `Quick
      test_bootplan_single_segment_when_shallow;
    Alcotest.test_case "bootplan: impossible budgets" `Quick
      test_bootplan_impossible;
    Alcotest.test_case "bootplan: segments legal" `Quick
      test_bootplan_segments_valid ]
