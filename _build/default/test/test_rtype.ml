module R = Reserve.Rtype

let prm = R.params ~rbits:60 ~wbits:20

let test_params_validation () =
  (try
     ignore (R.params ~rbits:60 ~wbits:0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (R.params ~rbits:20 ~wbits:60);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_principal_level () =
  Alcotest.(check int) "rho 0" 1 (R.principal_level prm 0);
  Alcotest.(check int) "rho 40" 1 (R.principal_level prm 40);
  Alcotest.(check int) "rho 41" 2 (R.principal_level prm 41);
  Alcotest.(check int) "rho 100" 2 (R.principal_level prm 100);
  Alcotest.(check int) "rho 101" 3 (R.principal_level prm 101)

let test_mul_operand_level () =
  (* the paper's q: rho 0, l = ceil(40/60) = 1 *)
  Alcotest.(check int) "rho 0" 1 (R.mul_operand_level prm 0);
  (* the paper's x3: rho 30, l = ceil(70/60) = 2 *)
  Alcotest.(check int) "rho 30" 2 (R.mul_operand_level prm 30)

let test_mismatch () =
  Alcotest.(check bool) "rho 0 matched" false (R.is_level_mismatch prm 0);
  Alcotest.(check bool) "rho 30 mismatched" true (R.is_level_mismatch prm 30);
  (* paper: {30/60 + 40/60} = 10/60 *)
  Alcotest.(check int) "need 10 bits" 10 (R.mismatch_need prm 30)

let test_mul_split_example () =
  (* paper Fig 3c: rho(q) = 0 -> l = 1, operands 30/30 *)
  let l, r1, r2 = R.mul_split prm 0 in
  Alcotest.(check int) "l" 1 l;
  Alcotest.(check int) "r1" 30 r1;
  Alcotest.(check int) "r2" 30 r2;
  (* after redistribution rho(x3) = 20 -> l = 1, operands 40/40 *)
  let l, r1, r2 = R.mul_split prm 20 in
  Alcotest.(check int) "l'" 1 l;
  Alcotest.(check (pair int int)) "split" (40, 40) (r1, r2)

let test_canonical_scale_and_bounds () =
  Alcotest.(check int) "scale" 40 (R.canonical_scale prm ~rho:80 ~level:2);
  Alcotest.(check int) "max reserve" 100 (R.max_reserve_for_level prm 2);
  Alcotest.(check bool) "edge check" true (R.check_edge prm ~rin:30 ~level:1);
  Alcotest.(check bool) "edge check fails" false
    (R.check_edge prm ~rin:30 ~level:2)

let test_pmul_operand () =
  Alcotest.(check int) "rho + omega" 50 (R.pmul_operand prm 30)

(* exact integer reformulations of the paper's §5/§6.2 identities *)
let gen_prm =
  QCheck.Gen.(
    map2
      (fun rbits wfrac -> R.params ~rbits ~wbits:(max 1 (wfrac mod rbits)))
      (int_range 8 64) (int_range 1 64))

let arb_prm = QCheck.make gen_prm

let prop_split_sum =
  QCheck.Test.make ~name:"mul_split: rho1 + rho2 = rho + l*rbits" ~count:500
    QCheck.(pair arb_prm (int_range 0 400))
    (fun (p, rho) ->
      let l, r1, r2 = R.mul_split p rho in
      r1 + r2 = rho + (l * p.R.rbits))

let prop_split_principal_levels =
  QCheck.Test.make
    ~name:"mul_split: both operands at principal level l (Eq. Mul)" ~count:500
    QCheck.(pair arb_prm (int_range 0 400))
    (fun (p, rho) ->
      let l, r1, r2 = R.mul_split p rho in
      R.principal_level p r1 = l && R.principal_level p r2 = l)

let prop_mismatch_need_resolves =
  QCheck.Test.make
    ~name:"mismatch_need drops the operand level by exactly one" ~count:500
    QCheck.(pair arb_prm (int_range 0 400))
    (fun (p, rho) ->
      QCheck.assume (R.is_level_mismatch p rho);
      let need = R.mismatch_need p rho in
      (* with waterlines above rbits/2 the needed reduction can exceed
         the whole reserve; redistribution then simply refuses *)
      need > 0
      && (rho - need < 0
         || R.mul_operand_level p (rho - need) = R.mul_operand_level p rho - 1))

let prop_principal_monotone =
  QCheck.Test.make ~name:"principal level monotone in reserve" ~count:500
    QCheck.(triple arb_prm (int_range 0 400) (int_range 0 50))
    (fun (p, rho, d) ->
      R.principal_level p rho <= R.principal_level p (rho + d))

let prop_reserve_nonneg_scale =
  QCheck.Test.make
    ~name:"canonical scale at principal level stays >= waterline" ~count:500
    QCheck.(pair arb_prm (int_range 0 400))
    (fun (p, rho) ->
      let l = R.principal_level p rho in
      R.canonical_scale p ~rho ~level:l >= p.R.wbits)

let suite =
  [ Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "principal level" `Quick test_principal_level;
    Alcotest.test_case "mul operand level" `Quick test_mul_operand_level;
    Alcotest.test_case "level mismatch + need (paper values)" `Quick
      test_mismatch;
    Alcotest.test_case "mul split (Fig 3c/3d)" `Quick test_mul_split_example;
    Alcotest.test_case "canonical scale / bounds" `Quick
      test_canonical_scale_and_bounds;
    Alcotest.test_case "pmul operand" `Quick test_pmul_operand;
    QCheck_alcotest.to_alcotest prop_split_sum;
    QCheck_alcotest.to_alcotest prop_split_principal_levels;
    QCheck_alcotest.to_alcotest prop_mismatch_need_resolves;
    QCheck_alcotest.to_alcotest prop_principal_monotone;
    QCheck_alcotest.to_alcotest prop_reserve_nonneg_scale ]
