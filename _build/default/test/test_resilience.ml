(* The resilience layer: structured diagnostics, the compile_safe
   fallback chain, and the fault-injection classes. *)

open Fhe_ir
module P = Reserve.Pipeline

(* ------------------------------------------------------------------ *)
(* compile_safe is total: never raises, and a success is validated and
   needed no fallback on well-formed arithmetic programs *)

let prop_compile_safe_total =
  QCheck.Test.make ~name:"compile_safe never raises; result validates"
    ~count:60 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      match
        P.compile_safe ~oracle_inputs:g.Gen.inputs ~rbits:60 ~wbits:25
          g.Gen.prog
      with
      | Ok o ->
          o.P.fallbacks = []
          && Result.is_ok (Validator.check o.P.managed)
      | Error _ -> false
      | exception _ -> false)

(* the chain is bounded even when every link fails *)
let prop_chain_terminates =
  QCheck.Test.make ~name:"fallback chain terminates (bounded attempts)"
    ~count:30 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      match
        P.compile_safe ~waterline_steps:[ 5; 10 ] ~rbits:60 ~wbits:100
          ~oracle_inputs:g.Gen.inputs g.Gen.prog
      with
      | Ok o -> List.length o.P.fallbacks <= 5
      | Error attempts ->
          List.length attempts <= 6 && P.attempt_diags attempts <> []
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* fallback semantics on a deliberately impossible primary config:
   waterline 62 > rbits 60 sinks reserve and EVA-at-62; the first
   degraded EVA waterline (62 - 5 = 57) must fire *)

let test_fallback_fires () =
  let g = Gen.make 7 in
  match
    P.compile_safe ~oracle_inputs:g.Gen.inputs ~waterline_steps:[ 5; 10 ]
      ~rbits:60 ~wbits:62 g.Gen.prog
  with
  | Ok o ->
      Alcotest.(check int) "four failed attempts" 4 (List.length o.P.fallbacks);
      Alcotest.(check string) "eva engine" "eva" (P.engine_name o.P.engine);
      Alcotest.(check int) "degraded waterline" 57 o.P.wbits;
      Alcotest.(check bool) "degradation warning" true (o.P.warnings <> []);
      Helpers.check_valid o.P.managed;
      Helpers.check_equivalent g.Gen.prog o.P.managed g.Gen.inputs
  | Error _ -> Alcotest.fail "expected the degraded EVA fallback to succeed"

let test_strict_no_fallback () =
  let g = Gen.make 7 in
  match
    P.compile_safe ~strict:true ~oracle_inputs:g.Gen.inputs ~rbits:60
      ~wbits:62 g.Gen.prog
  with
  | Ok _ -> Alcotest.fail "strict mode must not degrade"
  | Error attempts ->
      Alcotest.(check int) "exactly one attempt" 1 (List.length attempts);
      Alcotest.(check bool) "carries diagnostics" true
        (P.attempt_diags attempts <> [])

let test_chain_exhausted () =
  let g = Gen.make 3 in
  match
    P.compile_safe ~waterline_steps:[] ~oracle_inputs:g.Gen.inputs ~rbits:60
      ~wbits:100 g.Gen.prog
  with
  | Ok _ -> Alcotest.fail "waterline 100 > rbits can never compile"
  | Error attempts ->
      (* Full, Ra, Ba, EVA — and nothing more *)
      Alcotest.(check int) "whole chain attempted" 4 (List.length attempts);
      List.iter
        (fun (a : P.attempt) ->
          Alcotest.(check bool)
            (Printf.sprintf "diags for %s" (P.engine_name a.P.engine))
            true
            (Reserve.Diag.errors a.P.diags <> []))
        attempts

(* ------------------------------------------------------------------ *)
(* pass-level safe entry points reject bad inputs with diagnostics *)

let test_pass_safe_diagnostics () =
  let prm = Reserve.Rtype.params ~rbits:60 ~wbits:25 in
  let g = Gen.make 11 in
  let managed_prog =
    Parser.parse_exn "%0 = input x : cipher\n%1 = rescale %0\nret %1"
  in
  (match Reserve.Ordering.run_safe prm managed_prog with
  | Ok _ -> Alcotest.fail "ordering must reject managed input"
  | Error ds ->
      let d = List.hd ds in
      Alcotest.(check string) "ordering pass" "ordering"
        (Reserve.Diag.pass_name d.Reserve.Diag.pass);
      Alcotest.(check bool) "op id attached" true (d.Reserve.Diag.op <> None));
  (match
     Reserve.Allocation.run_safe prm ~order:[| 0 |] g.Gen.prog
   with
  | Ok _ -> Alcotest.fail "allocation must reject a mis-sized order"
  | Error ds -> Alcotest.(check bool) "diag list" true (ds <> []));
  match Reserve.Ordering.run_safe prm g.Gen.prog with
  | Error _ -> Alcotest.fail "ordering rejected a well-formed program"
  | Ok order -> (
      match Reserve.Allocation.run_safe prm ~order g.Gen.prog with
      | Error _ -> Alcotest.fail "allocation rejected a well-formed program"
      | Ok alloc -> (
          match Reserve.Placement.run_safe g.Gen.prog alloc with
          | Error _ -> Alcotest.fail "placement rejected a well-formed program"
          | Ok m -> Helpers.check_valid m))

(* ------------------------------------------------------------------ *)
(* every fault-injection class is rejected by the validator, and each
   class finds at least one injection site across the seed set *)

let prop_faults_rejected =
  QCheck.Test.make ~name:"all fault classes rejected by the validator"
    ~count:40 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let m = P.compile ~rbits:60 ~wbits:25 g.Gen.prog in
      List.for_all
        (fun cls ->
          match Fhe_sim.Faults.inject cls ~seed m with
          | None -> true
          | Some bad -> Result.is_error (Validator.check bad))
        Fhe_sim.Faults.all)

let test_fault_classes_covered () =
  let hits = Hashtbl.create 4 in
  for seed = 0 to 39 do
    let g = Gen.make seed in
    let m = P.compile ~rbits:60 ~wbits:25 g.Gen.prog in
    List.iter
      (fun cls ->
        match Fhe_sim.Faults.inject cls ~seed m with
        | Some bad when Result.is_error (Validator.check bad) ->
            Hashtbl.replace hits (Fhe_sim.Faults.name cls) ()
        | _ -> ())
      Fhe_sim.Faults.all
  done;
  List.iter
    (fun cls ->
      let n = Fhe_sim.Faults.name cls in
      Alcotest.(check bool) (n ^ " detected at least once") true
        (Hashtbl.mem hits n))
    Fhe_sim.Faults.all

let test_faults_deterministic () =
  let g = Gen.make 5 in
  let m = P.compile ~rbits:60 ~wbits:25 g.Gen.prog in
  List.iter
    (fun cls ->
      let a = Fhe_sim.Faults.inject cls ~seed:9 m in
      let b = Fhe_sim.Faults.inject cls ~seed:9 m in
      match (a, b) with
      | None, None -> ()
      | Some x, Some y ->
          Alcotest.(check bool)
            (Fhe_sim.Faults.name cls ^ " deterministic")
            true
            (x.Managed.scale = y.Managed.scale
            && x.Managed.level = y.Managed.level
            && Program.n_ops x.Managed.prog = Program.n_ops y.Managed.prog)
      | _ -> Alcotest.fail "site discovery must be deterministic")
    Fhe_sim.Faults.all

(* ------------------------------------------------------------------ *)
(* the validator reports every violation in one sweep, each with its op *)

let test_validator_reports_all () =
  let g = Gen.make 13 in
  let m = P.compile ~rbits:60 ~wbits:25 g.Gen.prog in
  let sites = ref [] in
  Program.iteri
    (fun i k ->
      if (not (Op.is_leaf k)) && Program.vtype m.Managed.prog i = Op.Cipher
      then sites := i :: !sites)
    m.Managed.prog;
  match !sites with
  | a :: b :: _ ->
      let scale = Array.copy m.Managed.scale in
      scale.(a) <- scale.(a) + 1;
      scale.(b) <- scale.(b) + 3;
      let bad =
        Managed.make ~prog:m.Managed.prog ~scale ~level:m.Managed.level
          ~rbits:m.Managed.rbits ~wbits:m.Managed.wbits
      in
      (match Validator.check bad with
      | Ok () -> Alcotest.fail "two corruptions must not validate"
      | Error es ->
          Alcotest.(check bool) "at least two violations" true
            (List.length es >= 2);
          let ops = List.map (fun (e : Validator.error) -> e.Validator.op) es in
          Alcotest.(check bool) "both ops named" true
            (List.mem a ops && List.mem b ops))
  | _ -> Alcotest.fail "generated program too small for two sites"

(* parse errors are typed values, renderable as diagnostics *)
let test_parse_error_diag () =
  match Parser.parse "%0 = frobnicate" with
  | Ok _ -> Alcotest.fail "nonsense must not parse"
  | Error e ->
      let d = Reserve.Diag.of_parse_error e in
      let s = Reserve.Diag.to_string d in
      Alcotest.(check bool) "mentions parse" true (Helpers.contains s "parse");
      Alcotest.(check bool) "mentions line" true (Helpers.contains s "line 1")

let suite =
  [ QCheck_alcotest.to_alcotest prop_compile_safe_total;
    QCheck_alcotest.to_alcotest prop_chain_terminates;
    QCheck_alcotest.to_alcotest prop_faults_rejected;
    Alcotest.test_case "fallback fires on impossible waterline" `Quick
      test_fallback_fires;
    Alcotest.test_case "strict mode never degrades" `Quick
      test_strict_no_fallback;
    Alcotest.test_case "exhausted chain returns every attempt" `Quick
      test_chain_exhausted;
    Alcotest.test_case "pass-level safe entry points" `Quick
      test_pass_safe_diagnostics;
    Alcotest.test_case "every fault class covered" `Quick
      test_fault_classes_covered;
    Alcotest.test_case "fault injection deterministic" `Quick
      test_faults_deterministic;
    Alcotest.test_case "validator reports all violations" `Quick
      test_validator_reports_all;
    Alcotest.test_case "parse errors as diagnostics" `Quick
      test_parse_error_diag ]
