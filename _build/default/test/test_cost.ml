open Fhe_ir
module L = Fhe_cost.Latency
module M = Fhe_cost.Model

let test_table_values () =
  (* spot-check Table 3 entries *)
  Alcotest.(check (float 0.0)) "mul_cc level 1" 4363.0 (L.table L.Mul_cc).(0);
  Alcotest.(check (float 0.0)) "mul_cc level 5" 33974.0 (L.table L.Mul_cc).(4);
  Alcotest.(check (float 0.0)) "rotate level 3" 13584.0 (L.table L.Rotate_c).(2);
  Alcotest.(check (float 0.0)) "rescale level 2" 3119.0 (L.table L.Rescale_c).(1);
  Alcotest.(check (float 0.0)) "ms plain level 1" 29.0 (L.table L.Modswitch_p).(0)

let test_table_monotone () =
  List.iter
    (fun c ->
      let t = L.table c in
      for i = 1 to Array.length t - 1 do
        if t.(i) <= t.(i - 1) then
          Alcotest.failf "%s not increasing at level %d" (L.name c) (i + 1)
      done)
    L.all

let test_interpolation () =
  (* the paper's §6.1 example: mul at level 5/3 costs 44·(1/3)+92·(2/3) *)
  let c = L.cost L.Mul_cc (1.0 +. (2.0 /. 3.0)) in
  Alcotest.(check (float 1.0)) "x3 estimate (paper: 7600)" 7569.0 c;
  Alcotest.(check (float 0.01)) "integer level exact" 9172.0 (L.cost L.Mul_cc 2.0)

let test_extrapolation () =
  let at6 = L.cost L.Mul_cc 6.0 in
  Alcotest.(check (float 0.01)) "level 6 linear extrapolation"
    (33974.0 +. (33974.0 -. 23517.0))
    at6;
  Alcotest.(check (float 0.01)) "clamped below 1" 4363.0 (L.cost L.Mul_cc 0.2)

let test_classify () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let c = Builder.const b 0.5 in
  let cc = Builder.mul b x x in
  let cp = Builder.mul b x c in
  let ac = Builder.add b cc cp in
  let ap = Builder.add b x c in
  let r = Builder.rotate b x 1 in
  let n = Builder.neg b x in
  let pp = Builder.mul b c c in
  let p = Builder.finish b ~outputs:[ ac; ap; r; n; pp ] in
  let get i = M.classify p i in
  Alcotest.(check bool) "cipher mul" true (get cc = Some L.Mul_cc);
  Alcotest.(check bool) "plain mul" true (get cp = Some L.Mul_cp);
  Alcotest.(check bool) "cipher add" true (get ac = Some L.Add_cc);
  Alcotest.(check bool) "plain add" true (get ap = Some L.Add_cp);
  Alcotest.(check bool) "rotate" true (get r = Some L.Rotate_c);
  Alcotest.(check bool) "neg" true (get n = Some L.Modswitch_p);
  Alcotest.(check bool) "plain-only compute free" true (get pp = None);
  Alcotest.(check bool) "leaf free" true (get x = None)

(* The headline calibration: EVA on the paper example costs 390 (Fig. 2b,
   in units of 100µs). *)
let test_eva_calibration () =
  let p, _ = Helpers.paper_example () in
  let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 p in
  Alcotest.(check (float 1.0)) "Fig 2b total" 389.16
    (M.estimate m /. 100.0)

let test_level_estimate () =
  (* paper: depth 4 with omega = 1/3 gives level 2.33 *)
  Alcotest.(check (float 0.01)) "1 + 4/3" 2.3333
    (M.level_estimate ~rbits:60 ~wbits:20 ~depth:4)

let test_arith_cost_estimate () =
  let p, (x, _, x2, x3, _, s, q) = Helpers.paper_example () in
  let depth = Analysis.mult_depth p in
  let est i = M.arith_cost_estimate ~rbits:60 ~wbits:20 p ~depth i /. 100.0 in
  (* Fig. 3a: costs 0, 92, 76, 1, 60 (in 100µs) *)
  Alcotest.(check (float 0.5)) "x" 0.0 (est x);
  Alcotest.(check (float 0.5)) "x2" 91.7 (est x2);
  Alcotest.(check (float 0.6)) "x3" 75.7 (est x3);
  Alcotest.(check (float 0.5)) "s" 1.2 (est s);
  Alcotest.(check (float 0.5)) "q" 59.7 (est q)

let test_estimate_additive () =
  let p, _ = Helpers.paper_example () in
  let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 p in
  let total = ref 0.0 in
  Program.iteri (fun i _ -> total := !total +. M.op_cost m i) m.Managed.prog;
  Alcotest.(check (float 1e-6)) "estimate = sum of op costs" !total
    (M.estimate m)

let suite =
  [ Alcotest.test_case "table 3 values" `Quick test_table_values;
    Alcotest.test_case "table 3 monotone in level" `Quick test_table_monotone;
    Alcotest.test_case "fractional-level interpolation" `Quick
      test_interpolation;
    Alcotest.test_case "extrapolation beyond level 5" `Quick
      test_extrapolation;
    Alcotest.test_case "op classification" `Quick test_classify;
    Alcotest.test_case "EVA calibration (Fig 2b = 390)" `Quick
      test_eva_calibration;
    Alcotest.test_case "level estimate" `Quick test_level_estimate;
    Alcotest.test_case "ordering cost estimates (Fig 3a)" `Quick
      test_arith_cost_estimate;
    Alcotest.test_case "estimate additivity" `Quick test_estimate_additive ]
