test/test_apps.ml: Alcotest Analysis Array Builder Fhe_apps Fhe_cost Fhe_eva Fhe_ir Fhe_sim Fhe_util Float Hashtbl Helpers List Op Printf Program Reserve
