test/test_resilience.ml: Alcotest Array Fhe_ir Fhe_sim Gen Hashtbl Helpers List Managed Op Parser Printf Program QCheck QCheck_alcotest Reserve Result Validator
