test/test_eva.ml: Alcotest Array Builder Fhe_eva Fhe_ir Gen Helpers Managed Op Program QCheck QCheck_alcotest
