test/test_rtype.ml: Alcotest QCheck QCheck_alcotest Reserve
