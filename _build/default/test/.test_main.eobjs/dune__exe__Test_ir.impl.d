test/test_ir.ml: Alcotest Analysis Array Builder Fhe_ir Fhe_sim Helpers List Op Pp Printf Program
