test/test_hecate.ml: Alcotest Fhe_apps Fhe_cost Fhe_eva Fhe_hecate Fhe_sim Gen Helpers QCheck QCheck_alcotest
