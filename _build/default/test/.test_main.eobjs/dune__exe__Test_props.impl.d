test/test_props.ml: Array Ckks Fhe_eva Fhe_ir Fhe_util Float Gen Lazy Managed Op Parser Pp Program QCheck QCheck_alcotest Result Validator
