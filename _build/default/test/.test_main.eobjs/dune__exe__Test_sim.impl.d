test/test_sim.ml: Alcotest Array Builder Fhe_eva Fhe_ir Fhe_sim Float Gen Helpers QCheck QCheck_alcotest
