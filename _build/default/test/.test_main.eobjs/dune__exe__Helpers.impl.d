test/helpers.ml: Alcotest Array Builder Fhe_cost Fhe_ir Fhe_sim Float Format List String Validator
