test/test_ckks_math.ml: Alcotest Array Ckks Complex Fhe_util Float Lazy List Printf QCheck QCheck_alcotest
