test/test_edge.ml: Alcotest Array Builder Ckks Emit Fhe_eva Fhe_ir Fhe_sim Fhe_util Float Gen Helpers Lazy List Managed Op Pp Reserve String
