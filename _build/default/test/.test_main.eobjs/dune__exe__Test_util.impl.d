test/test_util.ml: Alcotest Array Bits Fhe_util Heap List Prng QCheck QCheck_alcotest Timer Vec
