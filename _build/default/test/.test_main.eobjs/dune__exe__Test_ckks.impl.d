test/test_ckks.ml: Alcotest Array Ckks Fhe_util Float Hashtbl Lazy List Printf
