test/test_validator.ml: Alcotest Fhe_ir Format Helpers List Managed Op Program String Validator
