test/test_cost.ml: Alcotest Analysis Array Builder Fhe_cost Fhe_eva Fhe_ir Helpers List Managed Program
