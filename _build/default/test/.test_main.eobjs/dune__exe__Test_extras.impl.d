test/test_extras.ml: Alcotest Analysis Array Builder Bytes Ckks Fhe_eva Fhe_ir Fhe_sim Float Format Helpers Lazy List Managed Op Parser Pp Program Reserve Result
