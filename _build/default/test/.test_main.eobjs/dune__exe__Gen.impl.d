test/gen.ml: Fhe_ir Fhe_sim
