test/gen.ml: Array Builder Fhe_ir Fhe_util Hashtbl List Option Printf Program
