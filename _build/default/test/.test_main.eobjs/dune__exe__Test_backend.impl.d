test/test_backend.ml: Alcotest Array Builder Ckks Fhe_apps Fhe_eva Fhe_hecate Fhe_ir Fhe_sim Fhe_util Float Helpers Op Reserve
