test/test_reserve.ml: Alcotest Array Fhe_cost Fhe_ir Float Gen Helpers List Managed Op Program QCheck QCheck_alcotest Reserve
