test/test_passes.ml: Alcotest Array Builder Constfold Cse Dce Fhe_ir Fhe_sim Float Gen Op Program QCheck QCheck_alcotest Rewrite
