open Fhe_ir

let compile = Fhe_eva.Eva.compile

let test_paper_example () =
  (* Fig. 2b: EVA rescales only the final mul, L = 2 *)
  let p, _ = Helpers.paper_example () in
  let m = compile ~rbits:60 ~wbits:20 p in
  Helpers.check_valid m;
  Alcotest.(check int) "input level" 2 (Managed.input_level m);
  Alcotest.(check int) "one rescale" 1 (Managed.n_rescale m);
  Alcotest.(check int) "one upscale (on y)" 1 (Managed.n_upscale m);
  Alcotest.(check int) "no modswitch" 0 (Managed.n_modswitch m);
  Helpers.check_equivalent p m Helpers.paper_inputs

let test_waterline_triggers_rescale () =
  (* rescale fires only while the rescaled scale stays >= the waterline *)
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let x4 = Builder.square b (Builder.square b x) in
  let p = Builder.finish b ~outputs:[ x4 ] in
  let low = compile ~rbits:60 ~wbits:15 p in
  Alcotest.(check int) "w=15: x4 at 60 bits cannot rescale" 0
    (Managed.n_rescale low);
  let high = compile ~rbits:60 ~wbits:45 p in
  Alcotest.(check int) "w=45: x4 at 180 bits rescales twice" 2
    (Managed.n_rescale high)

let test_deep_chain_levels () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let rec pow e k = if k = 0 then e else pow (Builder.mul b e x) (k - 1) in
  let p = Builder.finish b ~outputs:[ pow x 7 ] in
  let m = compile ~rbits:60 ~wbits:30 p in
  Helpers.check_valid m;
  (* x^8 at waterline 30: scale doubles need a rescale every other mul *)
  Alcotest.(check bool) "several levels" true (Managed.input_level m >= 3);
  Helpers.check_equivalent p m [ ("x", [| 0.9; -0.5; 0.1; 1.0 |]) ]

let test_modswitch_on_level_mismatch () =
  (* multiplying a rescaled value with a fresh one needs a modswitch *)
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let x4 = Builder.square b (Builder.square b x) in
  let p = Builder.finish b ~outputs:[ Builder.mul b x4 y ] in
  let m = compile ~rbits:60 ~wbits:40 p in
  Helpers.check_valid m;
  Alcotest.(check bool) "modswitch inserted" true (Managed.n_modswitch m > 0);
  Helpers.check_equivalent p m
    [ ("x", [| 0.5; 1.0; -1.0; 0.25 |]); ("y", [| 1.0; 0.5; 2.0; -1.0 |]) ]

let test_plain_handling () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let e = Builder.mul b x (Builder.const b 0.5) in
  let e = Builder.add b e (Builder.const b 1.0) in
  let e = Builder.sub b e (Builder.vconst b [| 0.1; 0.2 |]) in
  let p = Builder.finish b ~outputs:[ e ] in
  let m = compile ~rbits:60 ~wbits:25 p in
  Helpers.check_valid m;
  Helpers.check_equivalent p m [ ("x", [| 1.0; 2.0; 3.0; 4.0 |]) ]

let test_rejects_managed_input () =
  let p =
    Program.make
      ~ops:[| Op.Input { name = "x"; vt = Op.Cipher }; Op.Rescale 0 |]
      ~outputs:[| 1 |] ~n_slots:4
  in
  try
    ignore (compile ~rbits:60 ~wbits:20 p);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_rejects_bad_waterline () =
  let p, _ = Helpers.paper_example () in
  try
    ignore (compile ~rbits:60 ~wbits:61 p);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_drops_plan () =
  (* forcing a drop on an input lowers the level of the ops consuming it *)
  let p, (x, _, _, _, _, _, _) = Helpers.paper_example () in
  let drops = Array.make (Program.n_ops p) 0 in
  drops.(x) <- 1;
  let m = Fhe_eva.Eva.compile_with_drops ~rbits:60 ~wbits:20 ~drops p in
  Helpers.check_valid m;
  Helpers.check_equivalent p m Helpers.paper_inputs;
  Alcotest.(check bool) "extra rescale present" true (Managed.n_rescale m >= 2)

let test_drops_length_mismatch () =
  let p, _ = Helpers.paper_example () in
  try
    ignore
      (Fhe_eva.Eva.compile_with_drops ~rbits:60 ~wbits:20 ~drops:[| 0 |] p);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_xmax_headroom () =
  let p, _ = Helpers.paper_example () in
  let plain = compile ~rbits:60 ~wbits:20 p in
  let roomy = compile ~xmax_bits:50 ~rbits:60 ~wbits:20 p in
  Helpers.check_valid roomy;
  Alcotest.(check bool) "headroom costs a level" true
    (Managed.input_level roomy > Managed.input_level plain);
  (* every ciphertext keeps >= xmax bits of reserve *)
  Program.iteri
    (fun i _ ->
      if Program.vtype roomy.Managed.prog i = Op.Cipher then
        Alcotest.(check bool) "reserve >= xmax" true
          (Managed.reserve roomy i >= 50))
    roomy.Managed.prog

let prop_eva_valid_and_equivalent =
  QCheck.Test.make ~name:"EVA output legal + semantics preserved (random)"
    ~count:60 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let m = compile ~rbits:60 ~wbits:20 g.Gen.prog in
      Helpers.check_valid m;
      Helpers.check_equivalent g.Gen.prog m g.Gen.inputs;
      true)

let prop_eva_waterline_sweep =
  QCheck.Test.make ~name:"EVA legal across waterlines" ~count:40
    QCheck.(pair small_int (int_range 15 45))
    (fun (seed, w) ->
      let g = Gen.make seed in
      let m = compile ~rbits:60 ~wbits:w g.Gen.prog in
      Helpers.check_valid m;
      true)

let suite =
  [ Alcotest.test_case "paper example (Fig 2b)" `Quick test_paper_example;
    Alcotest.test_case "waterline-gated rescaling" `Quick
      test_waterline_triggers_rescale;
    Alcotest.test_case "deep chains consume levels" `Quick
      test_deep_chain_levels;
    Alcotest.test_case "modswitch on level mismatch" `Quick
      test_modswitch_on_level_mismatch;
    Alcotest.test_case "plaintext handling" `Quick test_plain_handling;
    Alcotest.test_case "rejects managed input" `Quick test_rejects_managed_input;
    Alcotest.test_case "rejects bad waterline" `Quick test_rejects_bad_waterline;
    Alcotest.test_case "downscale plans" `Quick test_drops_plan;
    Alcotest.test_case "drops length mismatch" `Quick test_drops_length_mismatch;
    Alcotest.test_case "x_max headroom" `Quick test_xmax_headroom;
    QCheck_alcotest.to_alcotest prop_eva_valid_and_equivalent;
    QCheck_alcotest.to_alcotest prop_eva_waterline_sweep ]
