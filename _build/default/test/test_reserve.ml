(* Ordering, allocation, redistribution, placement and the full reserve
   pipeline, checked against the paper's worked example and random
   programs. *)

open Fhe_ir
module R = Reserve.Rtype

let prm = R.params ~rbits:60 ~wbits:20

let test_ordering_paper () =
  (* Fig. 3b: allocation order q, x3, x2, s, y2, x, y *)
  let p, (x, y, x2, x3, y2, s, q) = Helpers.paper_example () in
  let rank = Reserve.Ordering.run prm p in
  Alcotest.(check int) "q first" 0 rank.(q);
  Alcotest.(check int) "x3" 1 rank.(x3);
  Alcotest.(check int) "x2" 2 rank.(x2);
  Alcotest.(check int) "s" 3 rank.(s);
  Alcotest.(check int) "y2" 4 rank.(y2);
  Alcotest.(check int) "x" 5 rank.(x);
  Alcotest.(check int) "y" 6 rank.(y)

let prop_ordering_is_permutation =
  QCheck.Test.make ~name:"ordering ranks are a permutation" ~count:100
    QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let rank = Reserve.Ordering.run prm g.Gen.prog in
      let n = Array.length rank in
      let seen = Array.make n false in
      Array.iter (fun r -> seen.(r) <- true) rank;
      Array.for_all (fun b -> b) seen)

let test_allocation_paper () =
  (* Fig. 3d/3e: final reserves after redistribution *)
  let p, (x, y, x2, x3, y2, s, q) = Helpers.paper_example () in
  let order = Reserve.Ordering.run prm p in
  let a = Reserve.Allocation.run prm ~order p in
  let rho = a.Reserve.Allocation.rho in
  Alcotest.(check int) "q" 0 rho.(q);
  Alcotest.(check int) "x3 (redistributed 30 -> 20)" 20 rho.(x3);
  Alcotest.(check int) "s (absorbed 30 -> 40)" 40 rho.(s);
  Alcotest.(check int) "x2" 40 rho.(x2);
  Alcotest.(check int) "y2" 40 rho.(y2);
  Alcotest.(check int) "x" 80 rho.(x);
  Alcotest.(check int) "y" 80 rho.(y);
  (* x2 and y2 stay level-mismatched (rescales after them, Fig 2c) *)
  Alcotest.(check bool) "x2 mismatch" true a.Reserve.Allocation.mismatched.(x2);
  Alcotest.(check bool) "y2 mismatch" true a.Reserve.Allocation.mismatched.(y2);
  Alcotest.(check bool) "x3 resolved" false a.Reserve.Allocation.mismatched.(x3);
  Alcotest.(check int) "x2 operand level" 2 a.Reserve.Allocation.mul_level.(x2);
  Alcotest.(check int) "x3 operand level" 1 a.Reserve.Allocation.mul_level.(x3)

let test_allocation_without_redistribution () =
  let p, (_, _, _, x3, _, _, _) = Helpers.paper_example () in
  let order = Reserve.Ordering.run prm p in
  let a = Reserve.Allocation.run prm ~redistribute:false ~order p in
  (* without §6.3, x3 keeps reserve 30 and stays mismatched *)
  Alcotest.(check int) "x3 keeps 30" 30 a.Reserve.Allocation.rho.(x3);
  Alcotest.(check bool) "x3 mismatched" true
    a.Reserve.Allocation.mismatched.(x3)

let alloc_of prog ?(redistribute = true) () =
  let order = Reserve.Ordering.run prm prog in
  Reserve.Allocation.run prm ~redistribute ~order prog

(* Allocation invariants on random programs. *)
let prop_allocation_invariants =
  QCheck.Test.make ~name:"allocation: typing invariants (random)" ~count:80
    QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let p = g.Gen.prog in
      let a = alloc_of p () in
      let rho = a.Reserve.Allocation.rho in
      let ok = ref true in
      Program.iteri
        (fun v k ->
          if Program.vtype p v = Op.Cipher then begin
            if rho.(v) < 0 then ok := false;
            match k with
            | Op.Mul (x, y)
              when Program.vtype p x = Op.Cipher
                   && Program.vtype p y = Op.Cipher ->
                let l = a.Reserve.Allocation.mul_level.(v) in
                let r0 = a.Reserve.Allocation.rin.(v).(0) in
                let r1 = a.Reserve.Allocation.rin.(v).(1) in
                (* Eq. Mul: rin sum and operand principal levels *)
                if r0 + r1 <> rho.(v) + (l * 60) then ok := false;
                if R.principal_level prm r0 <> l then ok := false;
                if R.principal_level prm r1 <> l then ok := false;
                (* subtyping: demands never exceed the operand reserve *)
                if r0 > rho.(x) || r1 > rho.(y) then ok := false
            | Op.Add (x, y) | Op.Sub (x, y) ->
                List.iter
                  (fun o ->
                    if Program.vtype p o = Op.Cipher && rho.(o) < rho.(v) then
                      ok := false)
                  [ x; y ]
            | _ -> ()
          end)
        p;
      !ok)

(* Redistribution is only per-step locally optimal (Theorem 1 under
   Assumption 1): individual programs can regress slightly, but across a
   population it must be a clear net win.  Measured over 100 seeds. *)
let test_redistribution_net_win () =
  let better = ref 0 and worse = ref 0 and net = ref 0.0 in
  for seed = 0 to 99 do
    let g = Gen.make seed in
    let cost v =
      Fhe_cost.Model.estimate
        (Reserve.Pipeline.compile ~variant:v ~rbits:60 ~wbits:20 g.Gen.prog)
    in
    let ba = cost `Ba and ra = cost `Ra in
    if ra < ba -. 1e-6 then incr better;
    if ra > ba +. 1e-6 then incr worse;
    net := !net +. (ba -. ra)
  done;
  Alcotest.(check bool) "net saving positive" true (!net > 0.0);
  Alcotest.(check bool) "wins dominate losses" true (!better > 3 * !worse)

let test_placement_paper_costs () =
  (* Fig. 2c = 353, Fig. 2d = 335 (units of 100µs) *)
  let p, _ = Helpers.paper_example () in
  let ra = Reserve.Pipeline.compile ~variant:`Ra ~rbits:60 ~wbits:20 p in
  Alcotest.(check (float 1.0)) "RA (Fig 2c)" 352.5
    (Fhe_cost.Model.estimate ra /. 100.0);
  let full = Reserve.Pipeline.compile ~rbits:60 ~wbits:20 p in
  Alcotest.(check (float 1.0)) "full (Fig 2d)" 334.4
    (Fhe_cost.Model.estimate full /. 100.0);
  Alcotest.(check int) "hoist merged one rescale"
    (Managed.n_rescale ra - 1)
    (Managed.n_rescale full)

let test_placement_semantics_paper () =
  let p, _ = Helpers.paper_example () in
  List.iter
    (fun variant ->
      let m = Reserve.Pipeline.compile ~variant ~rbits:60 ~wbits:20 p in
      Helpers.check_valid m;
      Helpers.check_equivalent p m Helpers.paper_inputs)
    [ `Ba; `Ra; `Full ]

let test_hoist_idempotent_on_hoisted () =
  let p, _ = Helpers.paper_example () in
  let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:20 p in
  let m' = Reserve.Placement.hoist m in
  Alcotest.(check int) "no further rewrites" (Program.n_ops m.Managed.prog)
    (Program.n_ops m'.Managed.prog)

let prop_pipeline_valid_and_equivalent =
  QCheck.Test.make
    ~name:"reserve pipeline: legal + semantics preserved (random)" ~count:60
    QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:20 g.Gen.prog in
      Helpers.check_valid m;
      Helpers.check_equivalent g.Gen.prog m g.Gen.inputs;
      true)

let prop_pipeline_waterline_sweep =
  QCheck.Test.make ~name:"reserve pipeline: legal across waterlines"
    ~count:40
    QCheck.(pair small_int (int_range 15 45))
    (fun (seed, w) ->
      let g = Gen.make seed in
      let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:w g.Gen.prog in
      Helpers.check_valid m;
      Helpers.check_equivalent g.Gen.prog m g.Gen.inputs;
      true)

let prop_ablation_ordering =
  QCheck.Test.make ~name:"hoisting never increases estimated latency"
    ~count:40 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let cost v =
        Fhe_cost.Model.estimate
          (Reserve.Pipeline.compile ~variant:v ~rbits:60 ~wbits:20 g.Gen.prog)
      in
      let ra = cost `Ra and full = cost `Full in
      (* hoisting only applies positive-benefit rewrites in the very
         cost model used here, so it can never regress *)
      full <= ra +. 1e-6)

(* NOTE: on tiny, nearly-free random programs the backward analysis can
   lose to EVA outright — dropping the tail of the program to lower
   levels costs coercion rescales without reducing the input level, a
   blindness the paper acknowledges (§8.2, max 6.5% slowdowns).  The
   performance claim is therefore asserted on the real benchmarks in
   test_apps, not on random circuits. *)

let test_xmax_headroom () =
  let p, _ = Helpers.paper_example () in
  let roomy = Reserve.Pipeline.compile ~xmax_bits:50 ~rbits:60 ~wbits:20 p in
  Helpers.check_valid roomy;
  Program.iteri
    (fun i _ ->
      if Program.vtype roomy.Managed.prog i = Op.Cipher then
        Alcotest.(check bool) "reserve >= xmax" true
          (Managed.reserve roomy i >= 50))
    roomy.Managed.prog

let test_lazy_input_upscale () =
  (* keeping inputs at the waterline lets coercions ride modswitches:
     on the paper example the plan improves from 335 to ~315 *)
  let p, _ = Helpers.paper_example () in
  let eager = Reserve.Pipeline.compile ~rbits:60 ~wbits:20 p in
  let lazy_m =
    Reserve.Pipeline.compile ~eager_input_upscale:false ~rbits:60 ~wbits:20 p
  in
  Helpers.check_valid lazy_m;
  Helpers.check_equivalent p lazy_m Helpers.paper_inputs;
  Alcotest.(check bool) "lazy beats eager here" true
    (Fhe_cost.Model.estimate lazy_m < Fhe_cost.Model.estimate eager);
  Alcotest.(check bool) "uses a modswitch" true
    (Managed.n_modswitch lazy_m > Managed.n_modswitch eager)

let prop_lazy_input_upscale_valid =
  QCheck.Test.make ~name:"lazy input upscaling: legal + equivalent (random)"
    ~count:40 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let m =
        Reserve.Pipeline.compile ~eager_input_upscale:false ~rbits:60
          ~wbits:20 g.Gen.prog
      in
      Helpers.check_valid m;
      Helpers.check_equivalent g.Gen.prog m g.Gen.inputs;
      true)

let test_stats_reported () =
  let p, _ = Helpers.paper_example () in
  let _, stats = Reserve.Pipeline.compile_with_stats ~rbits:60 ~wbits:20 p in
  Alcotest.(check bool) "total = sum of phases" true
    (Float.abs
       (stats.Reserve.Pipeline.total_ms
       -. (stats.Reserve.Pipeline.ordering_ms
          +. stats.Reserve.Pipeline.allocation_ms
          +. stats.Reserve.Pipeline.placement_ms))
    < 1e-9)

let suite =
  [ Alcotest.test_case "ordering: paper example (Fig 3b)" `Quick
      test_ordering_paper;
    QCheck_alcotest.to_alcotest prop_ordering_is_permutation;
    Alcotest.test_case "allocation: paper example (Fig 3d/3e)" `Quick
      test_allocation_paper;
    Alcotest.test_case "allocation: redistribution off" `Quick
      test_allocation_without_redistribution;
    QCheck_alcotest.to_alcotest prop_allocation_invariants;
    Alcotest.test_case "redistribution: net win over population" `Quick
      test_redistribution_net_win;
    Alcotest.test_case "placement: paper costs (Fig 2c/2d)" `Quick
      test_placement_paper_costs;
    Alcotest.test_case "placement: semantics on paper example" `Quick
      test_placement_semantics_paper;
    Alcotest.test_case "hoist: fixpoint reached" `Quick
      test_hoist_idempotent_on_hoisted;
    QCheck_alcotest.to_alcotest prop_pipeline_valid_and_equivalent;
    QCheck_alcotest.to_alcotest prop_pipeline_waterline_sweep;
    QCheck_alcotest.to_alcotest prop_ablation_ordering;
    Alcotest.test_case "pipeline: x_max headroom" `Quick test_xmax_headroom;
    Alcotest.test_case "placement: lazy input upscaling" `Quick
      test_lazy_input_upscale;
    QCheck_alcotest.to_alcotest prop_lazy_input_upscale_valid;
    Alcotest.test_case "pipeline: stats" `Quick test_stats_reported ]
