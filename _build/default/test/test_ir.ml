open Fhe_ir

let test_op_operands () =
  Alcotest.(check (list int)) "mul" [ 1; 2 ] (Op.operands (Op.Mul (1, 2)));
  Alcotest.(check (list int)) "neg" [ 3 ] (Op.operands (Op.Neg 3));
  Alcotest.(check (list int)) "const" [] (Op.operands (Op.Const 1.0));
  Alcotest.(check (list int)) "rotate" [ 0 ] (Op.operands (Op.Rotate (0, 5)));
  Alcotest.(check (list int)) "upscale" [ 4 ] (Op.operands (Op.Upscale (4, 20)))

let test_op_classes () =
  Alcotest.(check bool) "rescale is sm" true (Op.is_scale_mgmt (Op.Rescale 0));
  Alcotest.(check bool) "add is arith" true (Op.is_arith (Op.Add (0, 1)));
  Alcotest.(check bool) "input is leaf" true
    (Op.is_leaf (Op.Input { name = "x"; vt = Op.Cipher }));
  Alcotest.(check bool) "mul not leaf" false (Op.is_leaf (Op.Mul (0, 1)));
  Alcotest.(check string) "name" "modswitch" (Op.name (Op.Modswitch 0))

let test_op_map_operands () =
  let k = Op.map_operands (fun i -> i + 10) (Op.Mul (1, 2)) in
  Alcotest.(check (list int)) "shifted" [ 11; 12 ] (Op.operands k)

let test_program_make_rejects () =
  let bad_operand () =
    ignore
      (Program.make
         ~ops:[| Op.Input { name = "x"; vt = Op.Cipher }; Op.Neg 1 |]
         ~outputs:[| 1 |] ~n_slots:4)
  in
  (try
     bad_operand ();
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Program.make
          ~ops:[| Op.Const 1.0 |]
          ~outputs:[| 5 |] ~n_slots:4);
     Alcotest.fail "expected Invalid_argument (output)"
   with Invalid_argument _ -> ());
  try
    ignore (Program.make ~ops:[| Op.Const 1.0 |] ~outputs:[| 0 |] ~n_slots:3);
    Alcotest.fail "expected Invalid_argument (slots)"
  with Invalid_argument _ -> ()

let test_vtype () =
  let p, (x, _, _, _, _, _, q) = Helpers.paper_example () in
  Alcotest.(check bool) "input cipher" true (Program.vtype p x = Op.Cipher);
  Alcotest.(check bool) "result cipher" true (Program.vtype p q = Op.Cipher);
  let b = Builder.create ~n_slots:4 () in
  let c = Builder.const b 2.0 in
  let d = Builder.mul b c c in
  let p2 = Builder.finish b ~outputs:[ d ] in
  Alcotest.(check bool) "plain compute" true (Program.vtype p2 d = Op.Plain)

let test_builder_dedup () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let a1 = Builder.mul b x x in
  let a2 = Builder.mul b x x in
  Alcotest.(check int) "structurally equal ops merge" a1 a2;
  let i1 = Builder.input b "x" in
  Alcotest.(check bool) "inputs never merge" true (i1 <> x)

let test_builder_no_dedup () =
  let b = Builder.create ~dedup:false ~n_slots:4 () in
  let x = Builder.input b "x" in
  let a1 = Builder.mul b x x in
  let a2 = Builder.mul b x x in
  Alcotest.(check bool) "kept distinct" true (a1 <> a2)

let test_builder_rotate_normalise () =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" in
  Alcotest.(check int) "rotate 0 is identity" x (Builder.rotate b x 0);
  Alcotest.(check int) "rotate n is identity" x (Builder.rotate b x 8);
  let r1 = Builder.rotate b x (-1) in
  let r2 = Builder.rotate b x 7 in
  Alcotest.(check int) "negative normalised" r1 r2

let test_builder_add_many () =
  let b = Builder.create ~n_slots:4 () in
  let xs = List.init 7 (fun i -> Builder.input b (Printf.sprintf "x%d" i)) in
  let s = Builder.add_many b xs in
  let p = Builder.finish b ~outputs:[ s ] in
  (* balanced tree: depth ceil(log2 7) = 3 adds on the critical path *)
  Alcotest.(check int) "ops" (7 + 6) (Program.n_ops p);
  let inputs =
    List.init 7 (fun i -> (Printf.sprintf "x%d" i, [| float_of_int i |]))
  in
  let out = (Fhe_sim.Interp.run_reference p ~inputs).(0) in
  Alcotest.(check (float 1e-9)) "sum" 21.0 out.(0)

let test_builder_vconst_too_long () =
  let b = Builder.create ~n_slots:4 () in
  try
    ignore (Builder.vconst b (Array.make 5 1.0));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_analysis_users () =
  let p, (x, _, x2, x3, _, _, q) = Helpers.paper_example () in
  let users = Analysis.users p in
  Alcotest.(check (list int)) "x used by x2 (twice) and x3"
    [ x2; x2; x3 ] (List.sort compare users.(x));
  Alcotest.(check (list int)) "q unused" [] users.(q)

let test_analysis_depth () =
  (* Fig. 3a of the paper *)
  let p, (x, y, x2, x3, y2, s, q) = Helpers.paper_example () in
  let d = Analysis.mult_depth p in
  Alcotest.(check int) "x" 4 d.(x);
  Alcotest.(check int) "y" 3 d.(y);
  Alcotest.(check int) "x2" 3 d.(x2);
  Alcotest.(check int) "x3" 2 d.(x3);
  Alcotest.(check int) "y2" 2 d.(y2);
  Alcotest.(check int) "s" 2 d.(s);
  Alcotest.(check int) "q" 1 d.(q);
  Alcotest.(check int) "max" 4 (Analysis.max_mult_depth p)

let test_analysis_reachable () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let dead = Builder.neg b x in
  let live = Builder.square b x in
  let p = Builder.finish b ~outputs:[ live ] in
  let r = Analysis.reachable p in
  Alcotest.(check bool) "dead" false r.(dead);
  Alcotest.(check bool) "live" true r.(live)

let test_pp () =
  let p, _ = Helpers.paper_example () in
  let s = Pp.program_to_string p in
  Alcotest.(check bool) "mentions mul" true
    (Helpers.contains s "mul");
  Alcotest.(check bool) "mentions ret" true (Helpers.contains s "ret")

let suite =
  [ Alcotest.test_case "op: operands" `Quick test_op_operands;
    Alcotest.test_case "op: classes" `Quick test_op_classes;
    Alcotest.test_case "op: map_operands" `Quick test_op_map_operands;
    Alcotest.test_case "program: make rejects bad input" `Quick
      test_program_make_rejects;
    Alcotest.test_case "program: vtype" `Quick test_vtype;
    Alcotest.test_case "builder: dedup" `Quick test_builder_dedup;
    Alcotest.test_case "builder: dedup off" `Quick test_builder_no_dedup;
    Alcotest.test_case "builder: rotate normalisation" `Quick
      test_builder_rotate_normalise;
    Alcotest.test_case "builder: add_many" `Quick test_builder_add_many;
    Alcotest.test_case "builder: vconst bounds" `Quick
      test_builder_vconst_too_long;
    Alcotest.test_case "analysis: users" `Quick test_analysis_users;
    Alcotest.test_case "analysis: mult depth (Fig 3a)" `Quick
      test_analysis_depth;
    Alcotest.test_case "analysis: reachable" `Quick test_analysis_reachable;
    Alcotest.test_case "pp: program print" `Quick test_pp ]
