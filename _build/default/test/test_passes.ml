open Fhe_ir

let test_cse_merges () =
  let b = Builder.create ~dedup:false ~n_slots:4 () in
  let x = Builder.input b "x" in
  let a1 = Builder.mul b x x in
  let a2 = Builder.mul b x x in
  let s = Builder.add b a1 a2 in
  let p = Builder.finish b ~outputs:[ s ] in
  let r = Cse.run p in
  Alcotest.(check int) "one mul left" 3 (Program.n_ops r.Rewrite.prog);
  Alcotest.(check int) "both map to same" r.Rewrite.remap.(a1)
    r.Rewrite.remap.(a2)

let test_cse_key_discriminates () =
  let b = Builder.create ~dedup:false ~n_slots:4 () in
  let c1 = Builder.const b 1.5 in
  let c2 = Builder.const b 1.5 in
  let x = Builder.input b "x" in
  let s = Builder.add b (Builder.mul b x c1) (Builder.mul b x c2) in
  let p = Builder.finish b ~outputs:[ s ] in
  let merged = Cse.run p in
  Alcotest.(check int) "same key merges consts" 4
    (Program.n_ops merged.Rewrite.prog);
  let kept = Cse.run ~key:(fun i -> i) p in
  Alcotest.(check bool) "distinct keys keep consts apart" true
    (Program.n_ops kept.Rewrite.prog > 4)

let test_cse_never_merges_inputs () =
  let b = Builder.create ~dedup:false ~n_slots:4 () in
  let x1 = Builder.input b "x" in
  let x2 = Builder.input b "x" in
  let s = Builder.add b x1 x2 in
  let p = Builder.finish b ~outputs:[ s ] in
  let r = Cse.run p in
  Alcotest.(check int) "inputs kept" 3 (Program.n_ops r.Rewrite.prog)

let test_dce () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let _dead = Builder.rotate b (Builder.neg b x) 1 in
  let live = Builder.square b x in
  let p = Builder.finish b ~outputs:[ live ] in
  let r = Dce.run p in
  Alcotest.(check int) "only live remain" 2 (Program.n_ops r.Rewrite.prog);
  Alcotest.(check int) "dead remapped to -1" (-1)
    r.Rewrite.remap.(_dead)

let test_constfold_scalars () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let c = Builder.add b (Builder.const b 2.0) (Builder.const b 3.0) in
  let d = Builder.mul b c (Builder.const b 2.0) in
  let out = Builder.mul b x d in
  let p = Builder.finish b ~outputs:[ out ] in
  let r = Constfold.run p in
  let folded = r.Rewrite.prog in
  (* input, const 10, mul *)
  Alcotest.(check int) "folded to 3 ops" 3 (Program.n_ops folded);
  let has_ten =
    Program.count folded ~f:(function Op.Const 10.0 -> true | _ -> false)
  in
  Alcotest.(check int) "const 10 present" 1 has_ten

let test_constfold_identities () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let e = Builder.mul b x (Builder.const b 1.0) in
  let e = Builder.add b e (Builder.const b 0.0) in
  let e = Builder.sub b e (Builder.const b 0.0) in
  let e = Builder.neg b (Builder.neg b e) in
  let p = Builder.finish b ~outputs:[ e ] in
  let r = Constfold.run p in
  Alcotest.(check int) "identity chain collapses to the input" 1
    (Program.n_ops r.Rewrite.prog)

let test_constfold_rotate_fusion () =
  let b = Builder.create ~dedup:false ~n_slots:8 () in
  let x = Builder.input b "x" in
  let e = Builder.rotate b (Builder.rotate b x 3) 5 in
  let p = Builder.finish b ~outputs:[ e ] in
  let r = Constfold.run p in
  Alcotest.(check int) "rotations fuse and cancel (3+5=8=0)" 1
    (Program.n_ops r.Rewrite.prog)

let test_constfold_rejects_managed () =
  let p =
    Program.make
      ~ops:[| Op.Input { name = "x"; vt = Op.Cipher }; Op.Rescale 0 |]
      ~outputs:[| 1 |] ~n_slots:4
  in
  try
    ignore (Constfold.run p);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_rewrite_detects_deleted_operand () =
  let p =
    Program.make
      ~ops:[| Op.Input { name = "x"; vt = Op.Cipher }; Op.Neg 0; Op.Neg 1 |]
      ~outputs:[| 2 |] ~n_slots:4
  in
  try
    ignore (Rewrite.rebuild p ~keep:(fun i -> i <> 1) ~rewrite:(fun _ k -> k));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_passes_preserve_semantics =
  QCheck.Test.make ~name:"cse/dce/constfold preserve program semantics"
    ~count:60 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let before = Fhe_sim.Interp.run_reference g.Gen.prog ~inputs:g.Gen.inputs in
      let check (r : Rewrite.result) =
        let after = Fhe_sim.Interp.run_reference r.Rewrite.prog ~inputs:g.Gen.inputs in
        Array.for_all2
          (fun a b ->
            Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b)
          before after
      in
      check (Cse.run g.Gen.prog)
      && check (Dce.run g.Gen.prog)
      && check (Constfold.run g.Gen.prog))

let suite =
  [ Alcotest.test_case "cse: merges duplicates" `Quick test_cse_merges;
    Alcotest.test_case "cse: key discriminates" `Quick test_cse_key_discriminates;
    Alcotest.test_case "cse: inputs never merge" `Quick
      test_cse_never_merges_inputs;
    Alcotest.test_case "dce: removes dead ops" `Quick test_dce;
    Alcotest.test_case "constfold: scalar folding" `Quick test_constfold_scalars;
    Alcotest.test_case "constfold: identities" `Quick test_constfold_identities;
    Alcotest.test_case "constfold: rotation fusion" `Quick
      test_constfold_rotate_fusion;
    Alcotest.test_case "constfold: rejects managed programs" `Quick
      test_constfold_rejects_managed;
    Alcotest.test_case "rewrite: deleted operand detection" `Quick
      test_rewrite_detects_deleted_operand;
    QCheck_alcotest.to_alcotest prop_passes_preserve_semantics ]
