(* Shared fixtures and assertions. *)

open Fhe_ir

(* The paper's running example (Fig. 2a): x^3 * (y^2 + y). *)
let paper_example () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let x2 = Builder.mul b x x in
  let x3 = Builder.mul b x x2 in
  let y2 = Builder.mul b y y in
  let s = Builder.add b y2 y in
  let q = Builder.mul b x3 s in
  (Builder.finish b ~outputs:[ q ], (x, y, x2, x3, y2, s, q))

let paper_inputs =
  [ ("x", [| 0.5; -0.25; 0.75; 1.0 |]); ("y", [| 0.25; 0.5; -0.5; 1.0 |]) ]

let check_valid m =
  match Validator.check m with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "invalid managed program:@ %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Validator.pp_error) es))

(* A managed program must compute the same function as its source, up to
   the propagated noise bound (plus slack for float association). *)
let check_equivalent ?(slack = 1e-9) src m inputs =
  let refs = Fhe_sim.Interp.run_reference src ~inputs in
  let outs = Fhe_sim.Interp.run m ~inputs in
  Array.iteri
    (fun i (v : Fhe_sim.Interp.value) ->
      let r = refs.(i) in
      Array.iteri
        (fun j x ->
          let bound = slack +. (slack *. Float.abs r.(j)) in
          if Float.abs (x -. r.(j)) > bound then
            Alcotest.failf "output %d slot %d: managed %g <> reference %g" i j
              x r.(j))
        v.data)
    outs

let float_approx ?(eps = 1e-9) () = Alcotest.float eps

let estimate = Fhe_cost.Model.estimate

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
