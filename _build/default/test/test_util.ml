open Fhe_util

let test_ceil_div () =
  Alcotest.(check int) "7/2" 4 (Bits.ceil_div 7 2);
  Alcotest.(check int) "6/2" 3 (Bits.ceil_div 6 2);
  Alcotest.(check int) "0/5" 0 (Bits.ceil_div 0 5);
  Alcotest.(check int) "-7/2" (-3) (Bits.ceil_div (-7) 2);
  Alcotest.(check int) "1/60" 1 (Bits.ceil_div 1 60)

let test_floor_div () =
  Alcotest.(check int) "7/2" 3 (Bits.floor_div 7 2);
  Alcotest.(check int) "-7/2" (-4) (Bits.floor_div (-7) 2);
  Alcotest.(check int) "-6/2" (-3) (Bits.floor_div (-6) 2)

let test_pos_rem () =
  Alcotest.(check int) "7%4" 3 (Bits.pos_rem 7 4);
  Alcotest.(check int) "-1%4" 3 (Bits.pos_rem (-1) 4);
  Alcotest.(check int) "-8%4" 0 (Bits.pos_rem (-8) 4)

let test_clamp () =
  Alcotest.(check int) "below" 2 (Bits.clamp ~lo:2 ~hi:9 0);
  Alcotest.(check int) "above" 9 (Bits.clamp ~lo:2 ~hi:9 100);
  Alcotest.(check int) "inside" 5 (Bits.clamp ~lo:2 ~hi:9 5)

let test_pow2f () =
  Alcotest.(check (float 0.0)) "2^10" 1024.0 (Bits.pow2f 10);
  Alcotest.(check (float 1e-12)) "2^-1" 0.5 (Bits.pow2f (-1))

let prop_divmod_consistent =
  QCheck.Test.make ~name:"ceil/floor div consistency" ~count:500
    QCheck.(pair (int_range (-10000) 10000) (int_range 1 97))
    (fun (a, b) ->
      let c = Bits.ceil_div a b and f = Bits.floor_div a b in
      c * b >= a && f * b <= a && c - f <= 1 && Bits.pos_rem a b = a - (f * b))

let test_vec_basic () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 81 (Vec.get v 9);
  Vec.set v 9 7;
  Alcotest.(check int) "set" 7 (Vec.get v 9);
  Alcotest.(check int) "array" 100 (Array.length (Vec.to_array v));
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 100))

let test_vec_fold () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_split () =
  let a = Prng.create 42 in
  let c = Prng.split a in
  let x = Prng.int a 1000000 and y = Prng.int c 1000000 in
  Alcotest.(check bool) "independent streams differ" true (x <> y)

let prop_prng_range =
  QCheck.Test.make ~name:"prng int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let test_prng_gaussian_moments () =
  let g = Prng.create 7 in
  let n = 20000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian g in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.05)) "mean ~ 0" 0.0 mean;
  Alcotest.(check (float 0.05)) "var ~ 1" 1.0 var

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list (int_range 0 1000))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h ~prio:x x) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let test_heap_ties () =
  let h = Heap.create () in
  Heap.push h ~prio:5 50;
  Heap.push h ~prio:5 49;
  Heap.push h ~prio:1 10;
  Alcotest.(check (option int)) "lowest prio" (Some 10) (Heap.pop h);
  Alcotest.(check (option int)) "tie by item" (Some 49) (Heap.pop h);
  Alcotest.(check (option int)) "then" (Some 50) (Heap.pop h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_timer () =
  let x, ms = Timer.time (fun () -> 21 * 2) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (ms >= 0.0)

let suite =
  [ Alcotest.test_case "bits: ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "bits: floor_div" `Quick test_floor_div;
    Alcotest.test_case "bits: pos_rem" `Quick test_pos_rem;
    Alcotest.test_case "bits: clamp" `Quick test_clamp;
    Alcotest.test_case "bits: pow2f" `Quick test_pow2f;
    QCheck_alcotest.to_alcotest prop_divmod_consistent;
    Alcotest.test_case "vec: basic" `Quick test_vec_basic;
    Alcotest.test_case "vec: fold/iter" `Quick test_vec_fold;
    Alcotest.test_case "prng: determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng: split" `Quick test_prng_split;
    QCheck_alcotest.to_alcotest prop_prng_range;
    Alcotest.test_case "prng: gaussian moments" `Quick test_prng_gaussian_moments;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "heap: tie-breaking" `Quick test_heap_ties;
    Alcotest.test_case "timer: basic" `Quick test_timer ]
