(* The scheme itself: encode/encrypt/evaluate/decrypt correctness with
   realistic (small-ring) parameters.  Precision assertions are loose —
   they bound the scheme noise, not float arithmetic. *)

module E = Ckks.Evaluator

let ctx = lazy (Ckks.Context.make ~n:512 ~levels:4 ())

let keys = lazy (Ckks.Keys.keygen ~rotations:[ 1; 3 ] (Lazy.force ctx))

let nh = 256

let scale = 2.0 ** 24.0

let data seed =
  let g = Fhe_util.Prng.create seed in
  Array.init nh (fun _ -> Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0)

let max_err a b =
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
  !m

let check_close name expect got tol =
  let e = max_err expect got in
  if e > tol then Alcotest.failf "%s: max err %g > %g" name e tol

let test_encode_roundtrip () =
  let ctx = Lazy.force ctx in
  let v = data 1 in
  let pt = Ckks.Encoder.encode ctx ~level:4 ~scale v in
  check_close "encode/decode" v (Ckks.Encoder.decode ctx ~scale pt) 1e-5

let test_encode_partial_vector () =
  let ctx = Lazy.force ctx in
  let pt = Ckks.Encoder.encode ctx ~level:2 ~scale [| 1.0; 2.0 |] in
  let out = Ckks.Encoder.decode ctx ~scale pt in
  Alcotest.(check (float 1e-5)) "slot 0" 1.0 out.(0);
  Alcotest.(check (float 1e-5)) "slot 1" 2.0 out.(1);
  Alcotest.(check (float 1e-5)) "padded" 0.0 out.(17)

let test_encrypt_roundtrip () =
  let keys = Lazy.force keys in
  let v = data 2 in
  let ct = E.encrypt keys ~level:4 ~scale v in
  check_close "pk enc/dec" v (E.decrypt keys ct) 1e-3

let test_encrypt_sym_roundtrip () =
  let keys = Lazy.force keys in
  let v = data 3 in
  let ct = E.encrypt_sym keys ~level:3 ~scale v in
  check_close "sk enc/dec" v (E.decrypt keys ct) 1e-3

let test_fresh_ciphertexts_differ () =
  let keys = Lazy.force keys in
  let v = data 4 in
  let a = E.encrypt keys ~level:4 ~scale v in
  let b = E.encrypt keys ~level:4 ~scale v in
  Alcotest.(check bool) "randomised" true (a.E.c1 <> b.E.c1)

let test_add_sub_neg () =
  let keys = Lazy.force keys in
  let x = data 5 and y = data 6 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  let cy = E.encrypt keys ~level:4 ~scale y in
  check_close "add" (Array.init nh (fun i -> x.(i) +. y.(i)))
    (E.decrypt keys (E.add keys cx cy))
    1e-3;
  check_close "sub" (Array.init nh (fun i -> x.(i) -. y.(i)))
    (E.decrypt keys (E.sub keys cx cy))
    1e-3;
  check_close "neg" (Array.map (fun v -> -.v) x)
    (E.decrypt keys (E.neg keys cx))
    1e-3

let test_plain_ops () =
  let keys = Lazy.force keys in
  let x = data 7 and y = data 8 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  check_close "add_plain" (Array.init nh (fun i -> x.(i) +. y.(i)))
    (E.decrypt keys (E.add_plain keys cx y))
    1e-3;
  check_close "sub_plain" (Array.init nh (fun i -> x.(i) -. y.(i)))
    (E.decrypt keys (E.sub_plain keys cx y))
    1e-3;
  let prod = E.mul_plain keys cx ~scale:(2.0 ** 20.0) y in
  check_close "mul_plain" (Array.init nh (fun i -> x.(i) *. y.(i)))
    (E.decrypt keys prod) 1e-3;
  Alcotest.(check (float 1.0)) "scale multiplied" (scale *. (2.0 ** 20.0))
    prod.E.scale

let test_mul_relin_rescale () =
  let keys = Lazy.force keys in
  let x = data 9 and y = data 10 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  let cy = E.encrypt keys ~level:4 ~scale y in
  let prod = E.mul keys cx cy in
  let expect = Array.init nh (fun i -> x.(i) *. y.(i)) in
  check_close "mul before rescale" expect (E.decrypt keys prod) 1e-3;
  let rs = E.rescale keys prod in
  Alcotest.(check int) "level dropped" 3 rs.E.level;
  Alcotest.(check bool) "scale divided by the dropped prime" true
    (rs.E.scale < prod.E.scale /. 1e8);
  check_close "mul after rescale" expect (E.decrypt keys rs) 2e-2

let test_square_chain () =
  (* (x^2)^2 across two rescales stays accurate *)
  let keys = Lazy.force keys in
  let x = data 11 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  let c2 = E.rescale keys (E.mul keys cx cx) in
  let c4 = E.rescale keys (E.mul keys c2 c2) in
  Alcotest.(check int) "level 2" 2 c4.E.level;
  check_close "x^4" (Array.map (fun v -> v ** 4.0) x) (E.decrypt keys c4) 0.1

let test_modswitch () =
  let keys = Lazy.force keys in
  let x = data 12 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  let ms = E.modswitch keys cx in
  Alcotest.(check int) "level dropped" 3 ms.E.level;
  Alcotest.(check (float 0.0)) "scale unchanged" cx.E.scale ms.E.scale;
  check_close "values unchanged" x (E.decrypt keys ms) 1e-3

let test_upscale () =
  let keys = Lazy.force keys in
  let x = data 13 in
  let cx = E.encrypt keys ~level:3 ~scale x in
  let up = E.upscale keys cx 3 in
  Alcotest.(check (float 0.0)) "scale x8" (cx.E.scale *. 8.0) up.E.scale;
  check_close "values unchanged" x (E.decrypt keys up) 1e-3

let test_rotate () =
  let keys = Lazy.force keys in
  let x = data 14 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  List.iter
    (fun k ->
      let rot = E.rotate keys cx k in
      let expect = Array.init nh (fun i -> x.((i + k) mod nh)) in
      check_close (Printf.sprintf "rotate %d" k) expect (E.decrypt keys rot)
        2e-2)
    [ 1; 3 ]

let test_rotate_key_on_demand () =
  let keys = Lazy.force keys in
  let x = data 15 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  (* 7 was not in the initial rotation set *)
  let rot = E.rotate keys cx 7 in
  let expect = Array.init nh (fun i -> x.((i + 7) mod nh)) in
  check_close "rotate 7" expect (E.decrypt keys rot) 2e-2;
  Alcotest.(check bool) "key cached" true
    (Hashtbl.mem keys.Ckks.Keys.galois 7)

let test_rotate_zero_identity () =
  let keys = Lazy.force keys in
  let x = data 16 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  let r = E.rotate keys cx 0 in
  Alcotest.(check bool) "physically identical" true (r == cx)

let test_level_guards () =
  let keys = Lazy.force keys in
  let cx = E.encrypt keys ~level:1 ~scale (data 17) in
  (try
     ignore (E.rescale keys cx);
     Alcotest.fail "expected Invalid_argument (rescale)"
   with Invalid_argument _ -> ());
  (try
     ignore (E.modswitch keys cx);
     Alcotest.fail "expected Invalid_argument (modswitch)"
   with Invalid_argument _ -> ());
  let cy = E.encrypt keys ~level:2 ~scale (data 18) in
  try
    ignore (E.add keys cx cy);
    Alcotest.fail "expected Invalid_argument (levels)"
  with Invalid_argument _ -> ()

let test_scale_mismatch_guard () =
  let keys = Lazy.force keys in
  let cx = E.encrypt keys ~level:2 ~scale (data 19) in
  let cy = E.encrypt keys ~level:2 ~scale:(scale *. 4.0) (data 20) in
  try
    ignore (E.add keys cx cy);
    Alcotest.fail "expected Invalid_argument (scales)"
  with Invalid_argument _ -> ()

let test_mixed_expression () =
  (* 0.5*(x + y)^2 - y, mixing every operation class *)
  let keys = Lazy.force keys in
  let x = data 21 and y = data 22 in
  let cx = E.encrypt keys ~level:4 ~scale x in
  let cy = E.encrypt keys ~level:4 ~scale y in
  let s = E.add keys cx cy in
  let sq = E.rescale keys (E.mul keys s s) in
  let half = E.mul_plain keys sq ~scale:(2.0 ** 20.0) (Array.make nh 0.5) in
  let out = E.sub_plain keys half y in
  let expect =
    Array.init nh (fun i -> (0.5 *. ((x.(i) +. y.(i)) ** 2.0)) -. y.(i))
  in
  check_close "expression" expect (E.decrypt keys out) 0.05

let suite =
  [ Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
    Alcotest.test_case "encode partial vector" `Quick test_encode_partial_vector;
    Alcotest.test_case "pk encrypt/decrypt" `Quick test_encrypt_roundtrip;
    Alcotest.test_case "sk encrypt/decrypt" `Quick test_encrypt_sym_roundtrip;
    Alcotest.test_case "encryption randomised" `Quick
      test_fresh_ciphertexts_differ;
    Alcotest.test_case "add/sub/neg" `Quick test_add_sub_neg;
    Alcotest.test_case "plaintext ops" `Quick test_plain_ops;
    Alcotest.test_case "mul + relinearize + rescale" `Quick
      test_mul_relin_rescale;
    Alcotest.test_case "square chain" `Quick test_square_chain;
    Alcotest.test_case "modswitch" `Quick test_modswitch;
    Alcotest.test_case "upscale" `Quick test_upscale;
    Alcotest.test_case "rotate" `Quick test_rotate;
    Alcotest.test_case "rotate: key on demand" `Quick test_rotate_key_on_demand;
    Alcotest.test_case "rotate: zero identity" `Quick test_rotate_zero_identity;
    Alcotest.test_case "level guards" `Quick test_level_guards;
    Alcotest.test_case "scale mismatch guard" `Quick test_scale_mismatch_guard;
    Alcotest.test_case "mixed expression" `Quick test_mixed_expression ]
