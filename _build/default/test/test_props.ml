(* Cross-cutting property tests: scheme homomorphisms, ring algebra,
   and validator fuzzing. *)

open Fhe_ir

(* ------------------------------------------------------------------ *)
(* CKKS homomorphism properties on a small, fast ring *)

let ctx = lazy (Ckks.Context.make ~n:64 ~levels:3 ())

let keys = lazy (Ckks.Keys.keygen (Lazy.force ctx))

let scale = 2.0 ** 24.0

let arb_vec =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          let g = Fhe_util.Prng.create seed in
          Array.init 32 (fun _ -> Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0))
        int)

let close ?(tol = 0.05) a b =
  Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b

let prop_enc_dec =
  QCheck.Test.make ~name:"ckks: dec (enc x) = x" ~count:20 arb_vec (fun v ->
      let keys = Lazy.force keys in
      let ct = Ckks.Evaluator.encrypt keys ~level:3 ~scale v in
      close ~tol:0.01 (Array.sub (Ckks.Evaluator.decrypt keys ct) 0 32) v)

let prop_additive_homomorphism =
  QCheck.Test.make ~name:"ckks: dec (enc x + enc y) = x + y" ~count:20
    (QCheck.pair arb_vec arb_vec) (fun (x, y) ->
      let keys = Lazy.force keys in
      let cx = Ckks.Evaluator.encrypt keys ~level:3 ~scale x in
      let cy = Ckks.Evaluator.encrypt keys ~level:3 ~scale y in
      let s = Ckks.Evaluator.decrypt keys (Ckks.Evaluator.add keys cx cy) in
      close (Array.sub s 0 32) (Array.map2 ( +. ) x y))

let prop_multiplicative_homomorphism =
  QCheck.Test.make ~name:"ckks: dec (enc x * enc y) = x * y" ~count:15
    (QCheck.pair arb_vec arb_vec) (fun (x, y) ->
      let keys = Lazy.force keys in
      let cx = Ckks.Evaluator.encrypt keys ~level:3 ~scale x in
      let cy = Ckks.Evaluator.encrypt keys ~level:3 ~scale y in
      let p =
        Ckks.Evaluator.decrypt keys
          (Ckks.Evaluator.rescale keys (Ckks.Evaluator.mul keys cx cy))
      in
      close (Array.sub p 0 32) (Array.map2 ( *. ) x y))

let prop_rotation_group =
  QCheck.Test.make ~name:"ckks: rotate k . rotate j = rotate (j+k)" ~count:10
    (QCheck.triple arb_vec (QCheck.int_range 1 5) (QCheck.int_range 1 5))
    (fun (x, j, k) ->
      let keys = Lazy.force keys in
      let cx = Ckks.Evaluator.encrypt keys ~level:2 ~scale x in
      let a =
        Ckks.Evaluator.decrypt keys
          (Ckks.Evaluator.rotate keys (Ckks.Evaluator.rotate keys cx j) k)
      in
      let b =
        Ckks.Evaluator.decrypt keys (Ckks.Evaluator.rotate keys cx (j + k))
      in
      close ~tol:0.1 (Array.sub a 0 32) (Array.sub b 0 32))

(* ------------------------------------------------------------------ *)
(* ring algebra *)

let arb_poly =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          let ctx = Lazy.force ctx in
          let s = Ckks.Sampler.create ~seed in
          Ckks.Sampler.uniform_ntt s ctx ~level:2 ~special:false)
        int)

let prop_poly_add_comm =
  QCheck.Test.make ~name:"poly: a + b = b + a" ~count:50
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      let ctx = Lazy.force ctx in
      Ckks.Poly.add ctx a b = Ckks.Poly.add ctx b a)

let prop_poly_mul_comm =
  QCheck.Test.make ~name:"poly: a * b = b * a (NTT domain)" ~count:50
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      let ctx = Lazy.force ctx in
      Ckks.Poly.mul ctx a b = Ckks.Poly.mul ctx b a)

let prop_poly_sub_inverse =
  QCheck.Test.make ~name:"poly: (a + b) - b = a" ~count:50
    (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
      let ctx = Lazy.force ctx in
      Ckks.Poly.sub ctx (Ckks.Poly.add ctx a b) b = a)

let prop_poly_ntt_roundtrip =
  QCheck.Test.make ~name:"poly: of_ntt . to_ntt = id" ~count:50 arb_poly
    (fun a ->
      let ctx = Lazy.force ctx in
      Ckks.Poly.to_ntt ctx (Ckks.Poly.of_ntt ctx a) = a)

let prop_automorphism_compose =
  QCheck.Test.make ~name:"poly: automorphisms compose" ~count:30
    (QCheck.triple arb_poly (QCheck.int_range 0 3) (QCheck.int_range 0 3))
    (fun (a, j, k) ->
      let ctx = Lazy.force ctx in
      let n2 = 2 * ctx.Ckks.Context.n in
      let g1 = Ckks.Keys.galois_element ctx j in
      let g2 = Ckks.Keys.galois_element ctx k in
      let lhs =
        Ckks.Poly.automorphism ctx (Ckks.Poly.automorphism ctx a ~g:g1) ~g:g2
      in
      let rhs = Ckks.Poly.automorphism ctx a ~g:(g1 * g2 mod n2) in
      lhs = rhs)

(* ------------------------------------------------------------------ *)
(* validator fuzzing: perturbing any annotation of a legal managed
   program (other than on inputs, whose levels are unconstrained) must
   be detected *)

let prop_validator_catches_mutations =
  QCheck.Test.make ~name:"validator catches annotation mutations" ~count:80
    (QCheck.pair QCheck.small_int QCheck.small_int) (fun (seed, pick) ->
      let g = Gen.make seed in
      let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:25 g.Gen.prog in
      (* candidate mutation sites: non-leaf ops *)
      let sites = ref [] in
      Program.iteri
        (fun i k -> if not (Op.is_leaf k) then sites := i :: !sites)
        m.Managed.prog;
      match !sites with
      | [] -> QCheck.assume_fail ()
      | sites ->
          let sites = Array.of_list sites in
          let i = sites.(pick mod Array.length sites) in
          let scale = Array.copy m.Managed.scale in
          let level = Array.copy m.Managed.level in
          if pick mod 2 = 0 then scale.(i) <- scale.(i) + 1
          else level.(i) <- level.(i) + 1;
          let mutated =
            Managed.make ~prog:m.Managed.prog ~scale ~level
              ~rbits:m.Managed.rbits ~wbits:m.Managed.wbits
          in
          Result.is_error (Validator.check mutated))

let prop_managed_passes_keep_validity =
  QCheck.Test.make ~name:"managed cse/dce preserve validity" ~count:50
    QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:25 g.Gen.prog in
      Result.is_ok (Validator.check (Managed.cse m))
      && Result.is_ok (Validator.check (Managed.dce m)))

(* a managed program parsed back from its own print still validates
   with its annotations recomputed by the compilers' path (structure
   only; annotations are not in the text format) *)
let prop_print_parse_structure =
  QCheck.Test.make ~name:"managed print/parse keeps structure" ~count:30
    QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:25 g.Gen.prog in
      (* only structurally printable programs round trip (vconsts > 8
         values print opaquely) *)
      let printable =
        Program.count m.Managed.prog ~f:(function
          | Op.Vconst { values; _ } -> Array.length values > 8
          | _ -> false)
        = 0
      in
      QCheck.assume printable;
      match Parser.parse ~n_slots:16 (Pp.program_to_string m.Managed.prog) with
      | Error _ -> false
      | Ok p' -> Program.n_ops p' = Program.n_ops m.Managed.prog)

let suite =
  [ QCheck_alcotest.to_alcotest prop_enc_dec;
    QCheck_alcotest.to_alcotest prop_additive_homomorphism;
    QCheck_alcotest.to_alcotest prop_multiplicative_homomorphism;
    QCheck_alcotest.to_alcotest prop_rotation_group;
    QCheck_alcotest.to_alcotest prop_poly_add_comm;
    QCheck_alcotest.to_alcotest prop_poly_mul_comm;
    QCheck_alcotest.to_alcotest prop_poly_sub_inverse;
    QCheck_alcotest.to_alcotest prop_poly_ntt_roundtrip;
    QCheck_alcotest.to_alcotest prop_automorphism_compose;
    QCheck_alcotest.to_alcotest prop_validator_catches_mutations;
    QCheck_alcotest.to_alcotest prop_managed_passes_keep_validity;
    QCheck_alcotest.to_alcotest prop_print_parse_structure ]
