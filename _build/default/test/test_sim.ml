open Fhe_ir
module I = Fhe_sim.Interp

let small_managed () =
  let p, _ = Helpers.paper_example () in
  Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 p

let test_reference_semantics () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let r = Builder.rotate b x 1 in
  let s = Builder.sub b (Builder.neg b x) (Builder.const b 1.0) in
  let m = Builder.mul b r (Builder.vconst b [| 2.0; 0.0; 1.0 |]) in
  let p = Builder.finish b ~outputs:[ r; s; m ] in
  let out = I.run_reference p ~inputs:[ ("x", [| 1.0; 2.0; 3.0; 4.0 |]) ] in
  Alcotest.(check (array (float 1e-12))) "rotate left"
    [| 2.0; 3.0; 4.0; 1.0 |] out.(0);
  Alcotest.(check (array (float 1e-12))) "neg/sub/const"
    [| -2.0; -3.0; -4.0; -5.0 |] out.(1);
  Alcotest.(check (array (float 1e-12))) "vconst zero-extended"
    [| 4.0; 0.0; 4.0; 0.0 |] out.(2)

let test_input_padding () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let p = Builder.finish b ~outputs:[ x ] in
  let out = I.run_reference p ~inputs:[ ("x", [| 7.0 |]) ] in
  Alcotest.(check (array (float 0.0))) "padded" [| 7.0; 0.0; 0.0; 0.0 |] out.(0)

let test_missing_input () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let p = Builder.finish b ~outputs:[ x ] in
  try
    ignore (I.run_reference p ~inputs:[]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_oversized_input () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let p = Builder.finish b ~outputs:[ x ] in
  try
    ignore (I.run_reference p ~inputs:[ ("x", Array.make 5 0.0) ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_error_bound_positive () =
  let m = small_managed () in
  let outs = I.run m ~inputs:Helpers.paper_inputs in
  Array.iter
    (fun (v : I.value) ->
      Alcotest.(check bool) "err > 0" true (v.I.err > 0.0))
    outs

let test_error_shrinks_with_waterline () =
  (* the whole point of the waterline: larger scales mean less error *)
  let p, _ = Helpers.paper_example () in
  let at w =
    I.max_log2_error
      (Fhe_eva.Eva.compile ~rbits:60 ~wbits:w p)
      ~inputs:Helpers.paper_inputs
  in
  Alcotest.(check bool) "err(w=40) < err(w=20)" true (at 40 < at 20)

let test_noisy_ops_accumulate () =
  (* more rotations, more error *)
  let build k =
    let b = Builder.create ~n_slots:4 () in
    let x = Builder.input b "x" in
    let rec rot e i = if i = 0 then e else rot (Builder.rotate b e 1) (i - 1) in
    (* dedup would fold identical rotates; chain them so each is distinct *)
    Builder.finish b ~outputs:[ rot x k ]
  in
  let err k =
    let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 (build k) in
    I.max_log2_error m ~inputs:[ ("x", [| 1.0; 2.0; 3.0; 4.0 |]) ]
  in
  Alcotest.(check bool) "3 rotations noisier than 1" true (err 3 > err 1)

let test_custom_noise_model () =
  let m = small_managed () in
  let quiet =
    { Fhe_sim.Noise.default with Fhe_sim.Noise.mul_bits = 0;
      rotate_bits = 0; rescale_bits = 0 }
  in
  let e_quiet = I.max_log2_error ~noise:quiet m ~inputs:Helpers.paper_inputs in
  let e_default = I.max_log2_error m ~inputs:Helpers.paper_inputs in
  Alcotest.(check bool) "quieter model, smaller error" true
    (e_quiet < e_default)

let test_noise_contribution () =
  Alcotest.(check (float 1e-12)) "2^(10-20)"
    (1.0 /. 1024.0)
    (Fhe_sim.Noise.contribution ~bits:10 ~scale:20)

let prop_managed_tracks_reference =
  QCheck.Test.make
    ~name:"interp(managed) = reference modulo the error bound" ~count:40
    QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:30 g.Gen.prog in
      let refs = I.run_reference g.Gen.prog ~inputs:g.Gen.inputs in
      let outs = I.run m ~inputs:g.Gen.inputs in
      Array.for_all2
        (fun (v : I.value) r ->
          Array.for_all2
            (fun x y -> Float.abs (x -. y) <= 1e-9 +. (1e-9 *. Float.abs y))
            v.I.data r)
        outs refs)

let suite =
  [ Alcotest.test_case "reference semantics" `Quick test_reference_semantics;
    Alcotest.test_case "input padding" `Quick test_input_padding;
    Alcotest.test_case "missing input rejected" `Quick test_missing_input;
    Alcotest.test_case "oversized input rejected" `Quick test_oversized_input;
    Alcotest.test_case "error bounds positive" `Quick test_error_bound_positive;
    Alcotest.test_case "error shrinks with waterline" `Quick
      test_error_shrinks_with_waterline;
    Alcotest.test_case "noisy ops accumulate" `Quick test_noisy_ops_accumulate;
    Alcotest.test_case "custom noise model" `Quick test_custom_noise_model;
    Alcotest.test_case "noise contribution formula" `Quick
      test_noise_contribution;
    QCheck_alcotest.to_alcotest prop_managed_tracks_reference ]
