module H = Fhe_hecate.Hecate

let test_counts_iterations () =
  let p, _ = Helpers.paper_example () in
  let r = H.compile ~iterations:123 ~rbits:60 ~wbits:20 p in
  Alcotest.(check int) "iteration budget honoured" 123 r.H.iterations

let test_never_worse_than_eva () =
  let p, _ = Helpers.paper_example () in
  let eva = Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 p in
  let r = H.compile ~iterations:50 ~rbits:60 ~wbits:20 p in
  Alcotest.(check bool) "seeded with the all-zero (EVA) plan" true
    (r.H.best_cost <= Fhe_cost.Model.estimate eva +. 1e-6)

let test_more_iterations_never_worse () =
  let p, _ = Helpers.paper_example () in
  let short = H.compile ~seed:9 ~iterations:20 ~rbits:60 ~wbits:20 p in
  let long = H.compile ~seed:9 ~iterations:400 ~rbits:60 ~wbits:20 p in
  Alcotest.(check bool) "hill climbing is monotone in budget" true
    (long.H.best_cost <= short.H.best_cost +. 1e-6)

let test_finds_improvement_on_example () =
  (* exploration should find level reductions EVA misses (§3.3) *)
  let p, _ = Helpers.paper_example () in
  let eva = Fhe_cost.Model.estimate (Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 p) in
  let r = H.compile ~iterations:300 ~rbits:60 ~wbits:20 p in
  Alcotest.(check bool) "strictly better than EVA" true
    (r.H.best_cost < eva);
  Alcotest.(check bool) "accepted at least one mutation" true (r.H.accepted > 0)

let test_determinism () =
  let p, _ = Helpers.paper_example () in
  let a = H.compile ~seed:5 ~iterations:100 ~rbits:60 ~wbits:20 p in
  let b = H.compile ~seed:5 ~iterations:100 ~rbits:60 ~wbits:20 p in
  Alcotest.(check (float 0.0)) "same seed, same plan" a.H.best_cost b.H.best_cost

let test_default_iterations_scale () =
  let small, _ = Helpers.paper_example () in
  let big = Fhe_apps.Registry.(find "MR").Fhe_apps.Registry.build () in
  Alcotest.(check bool) "budget grows with program size" true
    (H.default_iterations big > H.default_iterations small);
  Alcotest.(check bool) "budget floor" true
    (H.default_iterations small >= 200)

let prop_hecate_valid_and_equivalent =
  QCheck.Test.make ~name:"hecate output legal + semantics preserved (random)"
    ~count:25 QCheck.small_int (fun seed ->
      let g = Gen.make seed in
      let r = H.compile ~iterations:40 ~rbits:60 ~wbits:20 g.Gen.prog in
      Helpers.check_valid r.H.managed;
      Helpers.check_equivalent g.Gen.prog r.H.managed g.Gen.inputs;
      true)

let suite =
  [ Alcotest.test_case "iteration accounting" `Quick test_counts_iterations;
    Alcotest.test_case "never worse than EVA" `Quick test_never_worse_than_eva;
    Alcotest.test_case "monotone in budget" `Quick
      test_more_iterations_never_worse;
    Alcotest.test_case "finds improvements on the paper example" `Quick
      test_finds_improvement_on_example;
    Alcotest.test_case "deterministic per seed" `Quick test_determinism;
    Alcotest.test_case "default budget scales with size" `Quick
      test_default_iterations_scale;
    QCheck_alcotest.to_alcotest prop_hecate_valid_and_equivalent ]

let test_error_aware_objective () =
  (* the ELASM-style knob: penalising the static noise proxy must never
     yield a noisier plan than pure-latency exploration *)
  let p, _ = Helpers.paper_example () in
  let latency = Fhe_cost.Model.estimate in
  let noise m = Fhe_sim.Noise.static_log2_error m in
  let explore objective =
    (H.compile ~seed:3 ~iterations:300 ~objective ~rbits:60 ~wbits:20 p)
      .H.managed
  in
  let fast = explore latency in
  let precise =
    explore (fun m -> latency m *. (2.0 ** (0.5 *. noise m)))
  in
  Helpers.check_valid precise;
  Alcotest.(check bool) "error-aware plan is at most as noisy" true
    (noise precise <= noise fast +. 1e-9)

let test_static_error_monotone_in_waterline () =
  let p, _ = Helpers.paper_example () in
  let at w =
    Fhe_sim.Noise.static_log2_error (Fhe_eva.Eva.compile ~rbits:60 ~wbits:w p)
  in
  Alcotest.(check bool) "bigger waterline, smaller proxy" true (at 40 < at 20)

let suite =
  suite
  @ [ Alcotest.test_case "error-aware objective (ELASM-style)" `Quick
        test_error_aware_objective;
      Alcotest.test_case "static error proxy monotone" `Quick
        test_static_error_monotone_in_waterline ]
