(* Edge cases that the main suites don't pin down: the Emit helper,
   modswitch/rescale equivalences on the real scheme, single-op
   programs, and determinism guarantees. *)

open Fhe_ir

(* ------------------------------------------------------------------ *)
(* Emit *)

let test_emit_basics () =
  let e = Emit.create () in
  let a = Emit.push e (Op.Input { name = "x"; vt = Op.Cipher }) ~scale:20 ~aux:2 in
  let b = Emit.push e (Op.Mul (a, a)) ~scale:40 ~aux:2 in
  Alcotest.(check int) "scale recorded" 40 (Emit.scale e b);
  Alcotest.(check int) "aux recorded" 2 (Emit.aux e b);
  Alcotest.(check int) "count" 2 (Emit.n_ops e);
  let m =
    Emit.finish e ~outputs:[| b |] ~n_slots:4 ~rbits:60 ~wbits:20
      ~level:(Emit.aux e)
  in
  Alcotest.(check int) "levels from aux" 2 m.Managed.level.(b)

let test_emit_plain_leaf_cache () =
  let e = Emit.create () in
  let c1 = Emit.plain_leaf e (Op.Const 1.5) ~scale:20 ~aux:1 in
  let c2 = Emit.plain_leaf e (Op.Const 1.5) ~scale:20 ~aux:1 in
  let c3 = Emit.plain_leaf e (Op.Const 1.5) ~scale:25 ~aux:1 in
  Alcotest.(check int) "same annotation shares" c1 c2;
  Alcotest.(check bool) "different scale distinct" true (c1 <> c3);
  try
    ignore (Emit.plain_leaf e (Op.Neg 0) ~scale:20 ~aux:1);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* single-op and degenerate programs through the compilers *)

let single_input_program () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  Builder.finish b ~outputs:[ x ]

let test_identity_program () =
  let p = single_input_program () in
  List.iter
    (fun m ->
      Helpers.check_valid m;
      Alcotest.(check int) "one level suffices" 1 (Managed.input_level m))
    [ Fhe_eva.Eva.compile ~rbits:60 ~wbits:20 p;
      Reserve.Pipeline.compile ~rbits:60 ~wbits:20 p ]

let test_plain_only_program () =
  let b = Builder.create ~n_slots:4 () in
  let c = Builder.add b (Builder.const b 1.0) (Builder.const b 2.0) in
  let p = Builder.finish b ~outputs:[ c ] in
  let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:20 p in
  Helpers.check_valid m;
  let out = (Fhe_sim.Interp.run m ~inputs:[]).(0) in
  Alcotest.(check (float 1e-9)) "3.0" 3.0 out.Fhe_sim.Interp.data.(0)

let test_same_output_twice () =
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let s = Builder.square b x in
  let p = Builder.finish b ~outputs:[ s; s ] in
  let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:20 p in
  Helpers.check_valid m;
  let outs = Fhe_sim.Interp.run m ~inputs:[ ("x", [| 2.0 |]) ] in
  Alcotest.(check int) "two outputs" 2 (Array.length outs);
  Alcotest.(check (float 1e-9)) "equal" outs.(0).Fhe_sim.Interp.data.(0)
    outs.(1).Fhe_sim.Interp.data.(0)

let test_deep_square_tower () =
  (* x^(2^6): the hardest shape for redistribution (pure squaring) *)
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let rec tower e k = if k = 0 then e else tower (Builder.square b e) (k - 1) in
  let p = Builder.finish b ~outputs:[ tower x 6 ] in
  List.iter
    (fun w ->
      let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:w p in
      Helpers.check_valid m;
      Helpers.check_equivalent p m [ ("x", [| 0.9; 1.0; -0.95; 0.1 |]) ])
    [ 15; 30; 45 ]

(* ------------------------------------------------------------------ *)
(* determinism *)

let test_compilers_deterministic () =
  let g = Gen.make 123 in
  let fingerprint m =
    Pp.program_to_string m.Managed.prog
    ^ String.concat ","
        (List.map string_of_int (Array.to_list m.Managed.scale))
  in
  let twice f = (fingerprint (f ()), fingerprint (f ())) in
  let a, b = twice (fun () -> Fhe_eva.Eva.compile ~rbits:60 ~wbits:25 g.Gen.prog) in
  Alcotest.(check string) "eva deterministic" a b;
  let a, b =
    twice (fun () -> Reserve.Pipeline.compile ~rbits:60 ~wbits:25 g.Gen.prog)
  in
  Alcotest.(check string) "reserve deterministic" a b

(* ------------------------------------------------------------------ *)
(* scheme equivalences on real ciphertexts *)

let ctx = lazy (Ckks.Context.make ~n:128 ~levels:3 ())

let keys = lazy (Ckks.Keys.keygen (Lazy.force ctx))

let test_modswitch_equals_upscale_rescale () =
  (* modswitch = upscale by R then rescale, up to noise *)
  let keys = Lazy.force keys in
  let v = Array.init 64 (fun i -> sin (float_of_int i) /. 2.0) in
  let ct = Ckks.Evaluator.encrypt keys ~level:3 ~scale:(2.0 ** 24.0) v in
  let a = Ckks.Evaluator.modswitch keys ct in
  let b =
    Ckks.Evaluator.rescale keys (Ckks.Evaluator.upscale keys ct 28)
  in
  Alcotest.(check int) "same level" a.Ckks.Evaluator.level b.Ckks.Evaluator.level;
  let da = Ckks.Evaluator.decrypt keys a and db = Ckks.Evaluator.decrypt keys b in
  Array.iteri
    (fun i x ->
      if Float.abs (x -. db.(i)) > 0.01 then
        Alcotest.failf "slot %d: %g vs %g" i x db.(i))
    (Array.sub da 0 64)

let test_add_commutes_with_rotate () =
  (* rot(x) + rot(y) = rot(x + y) *)
  let keys = Lazy.force keys in
  let g = Fhe_util.Prng.create 5 in
  let vec () = Array.init 64 (fun _ -> Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0) in
  let x = vec () and y = vec () in
  let cx = Ckks.Evaluator.encrypt keys ~level:2 ~scale:(2.0 ** 24.0) x in
  let cy = Ckks.Evaluator.encrypt keys ~level:2 ~scale:(2.0 ** 24.0) y in
  let lhs =
    Ckks.Evaluator.add keys
      (Ckks.Evaluator.rotate keys cx 3)
      (Ckks.Evaluator.rotate keys cy 3)
  in
  let rhs = Ckks.Evaluator.rotate keys (Ckks.Evaluator.add keys cx cy) 3 in
  let dl = Ckks.Evaluator.decrypt keys lhs and dr = Ckks.Evaluator.decrypt keys rhs in
  Array.iteri
    (fun i v ->
      if i < 64 && Float.abs (v -. dr.(i)) > 0.05 then
        Alcotest.failf "slot %d: %g vs %g" i v dr.(i))
    dl

let test_bigint_of_int_roundtrip () =
  List.iter
    (fun x ->
      Alcotest.(check (float 0.0))
        (string_of_int x)
        (float_of_int x)
        (Ckks.Bigint.to_float (Ckks.Bigint.of_int x)))
    [ 0; 1; 67108863; 67108864; max_int / 2 ]

let suite =
  [ Alcotest.test_case "emit: annotations" `Quick test_emit_basics;
    Alcotest.test_case "emit: plain leaf cache" `Quick
      test_emit_plain_leaf_cache;
    Alcotest.test_case "identity program" `Quick test_identity_program;
    Alcotest.test_case "plain-only program" `Quick test_plain_only_program;
    Alcotest.test_case "duplicated outputs" `Quick test_same_output_twice;
    Alcotest.test_case "deep squaring tower" `Quick test_deep_square_tower;
    Alcotest.test_case "compilers deterministic" `Quick
      test_compilers_deterministic;
    Alcotest.test_case "ckks: modswitch = upscale;rescale" `Quick
      test_modswitch_equals_upscale_rescale;
    Alcotest.test_case "ckks: rotate distributes over add" `Quick
      test_add_commutes_with_rotate;
    Alcotest.test_case "bigint: of_int boundaries" `Quick
      test_bigint_of_int_roundtrip ]
