open Fhe_ir
module Reg = Fhe_apps.Registry

(* Building LeNet-scale programs repeatedly is wasteful: memoize. *)
let built = Hashtbl.create 8

let prog_of (a : Reg.app) =
  match Hashtbl.find_opt built a.Reg.name with
  | Some p -> p
  | None ->
      let p = a.Reg.build () in
      Hashtbl.replace built a.Reg.name p;
      p

let test_registry () =
  Alcotest.(check int) "eight benchmarks" 8 (List.length Reg.all);
  Alcotest.(check (list string)) "paper order"
    [ "SF"; "HCD"; "LR"; "MR"; "PR"; "MLP"; "Lenet-5"; "Lenet-C" ]
    (List.map (fun a -> a.Reg.name) Reg.all);
  Alcotest.(check string) "case-insensitive lookup" "Lenet-5"
    (Reg.find "lenet-5").Reg.name;
  (try
     ignore (Reg.find "nope");
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  Alcotest.(check int) "small excludes lenet" 6 (List.length Reg.small)

(* Expected op-count bands (arith ops) and multiplicative depths: the
   paper's Table 4 reports 60..9845 ops; ours land in the same decades. *)
let expectations =
  [ ("SF", (20, 80), (2, 4));
    ("HCD", (60, 160), (3, 6));
    ("LR", (100, 200), (7, 10));
    ("MR", (450, 800), (7, 10));
    ("PR", (180, 400), (9, 12));
    ("MLP", (400, 800), (4, 7));
    ("Lenet-5", (8000, 16000), (12, 18));
    ("Lenet-C", (9000, 18000), (12, 18)) ]

let test_shapes () =
  List.iter
    (fun (name, (lo, hi), (dlo, dhi)) ->
      let p = prog_of (Reg.find name) in
      let n = Program.n_arith p in
      if n < lo || n > hi then
        Alcotest.failf "%s: %d arith ops outside [%d, %d]" name n lo hi;
      let d = Analysis.max_mult_depth p in
      if d < dlo || d > dhi then
        Alcotest.failf "%s: depth %d outside [%d, %d]" name d dlo dhi)
    expectations

let test_lenet_c_bigger () =
  let l5 = prog_of (Reg.find "Lenet-5") in
  let lc = prog_of (Reg.find "Lenet-C") in
  Alcotest.(check bool) "CIFAR variant has more ops" true
    (Program.n_arith lc > Program.n_arith l5)

let test_inputs_match () =
  List.iter
    (fun (a : Reg.app) ->
      let p = prog_of a in
      (* every declared input must be provided by the generator *)
      let provided = List.map fst (a.Reg.inputs ~seed:1) in
      Program.iteri
        (fun _ k ->
          match k with
          | Op.Input { name; _ } ->
              if not (List.mem name provided) then
                Alcotest.failf "%s: input %s not provided" a.Reg.name name
          | _ -> ())
        p)
    Reg.all

let test_determinism () =
  let a = Reg.find "MLP" in
  let p1 = a.Reg.build () and p2 = a.Reg.build () in
  Alcotest.(check int) "same size" (Program.n_ops p1) (Program.n_ops p2);
  let o1 = Fhe_sim.Interp.run_reference p1 ~inputs:(a.Reg.inputs ~seed:3) in
  let o2 = Fhe_sim.Interp.run_reference p2 ~inputs:(a.Reg.inputs ~seed:3) in
  Array.iteri
    (fun i v ->
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "output %d" i) v o2.(i))
    o1

let test_outputs_finite () =
  List.iter
    (fun (a : Reg.app) ->
      let p = prog_of a in
      let outs = Fhe_sim.Interp.run_reference p ~inputs:(a.Reg.inputs ~seed:5) in
      Array.iter
        (fun o ->
          Array.iter
            (fun x ->
              if not (Float.is_finite x) then
                Alcotest.failf "%s produced a non-finite value" a.Reg.name)
            o)
        outs)
    Reg.all

(* The headline claim, on the real benchmarks: all three compilers are
   legal and semantics-preserving, and reserve never loses to EVA. *)
let compilers_on name w =
  let a = Reg.find name in
  let p = prog_of a in
  let inputs = a.Reg.inputs ~seed:11 in
  let eva = Fhe_eva.Eva.compile ~rbits:60 ~wbits:w p in
  let rsv = Reserve.Pipeline.compile ~rbits:60 ~wbits:w p in
  Helpers.check_valid eva;
  Helpers.check_valid rsv;
  Helpers.check_equivalent ~slack:1e-6 p eva inputs;
  Helpers.check_equivalent ~slack:1e-6 p rsv inputs;
  let ce = Fhe_cost.Model.estimate eva and cr = Fhe_cost.Model.estimate rsv in
  (* ties within 5% are acceptable (the paper reports up to 6.5%
     slowdowns on a few parameters); anything beyond that is a bug *)
  if cr > ce *. 1.05 then
    Alcotest.failf "%s @ w=%d: reserve (%.0f) slower than EVA (%.0f)" name w cr
      ce

let test_small_apps_all_compilers () =
  List.iter
    (fun (a : Reg.app) ->
      List.iter (fun w -> compilers_on a.Reg.name w) [ 20; 30; 40 ])
    Reg.small

let test_lenet_compilers () = compilers_on "Lenet-5" 30

let test_kernel_sum_slots () =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" in
  let p = Builder.finish b ~outputs:[ Fhe_apps.Kernels.sum_slots b x ~n:8 ] in
  let out =
    (Fhe_sim.Interp.run_reference p
       ~inputs:[ ("x", [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]) ]).(0)
  in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "36 everywhere" 36.0 v) out

let test_kernel_matvec_diag () =
  let dim = 4 in
  let mat = [| [| 1.;2.;3.;4. |]; [| 5.;6.;7.;8. |]; [| 9.;1.;2.;3. |]; [| 4.;5.;6.;7. |] |] in
  let x = [| 1.0; -1.0; 2.0; 0.5 |] in
  let b = Builder.create ~n_slots:16 () in
  let xe = Builder.input b "x" in
  let p = Builder.finish b ~outputs:[ Fhe_apps.Kernels.matvec_diag b xe ~dim ~mat ] in
  let out = (Fhe_sim.Interp.run_reference p ~inputs:[ ("x", x) ]).(0) in
  for r = 0 to dim - 1 do
    let expect = ref 0.0 in
    for c = 0 to dim - 1 do
      expect := !expect +. (mat.(r).(c) *. x.(c))
    done;
    Alcotest.(check (float 1e-9)) (Printf.sprintf "row %d" r) !expect out.(r)
  done

let test_kernel_matvec_bsgs_matches_diag () =
  let dim = 8 in
  let g = Fhe_util.Prng.create 3 in
  let mat =
    Array.init dim (fun _ ->
        Array.init dim (fun _ -> Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0))
  in
  let x = Array.init dim (fun i -> float_of_int (i + 1) /. 8.0) in
  let b = Builder.create ~n_slots:32 () in
  let xe = Builder.input b "x" in
  let d = Fhe_apps.Kernels.matvec_diag b xe ~dim ~mat in
  let s = Fhe_apps.Kernels.matvec_bsgs b xe ~dim ~mat in
  let p = Builder.finish b ~outputs:[ d; s ] in
  let outs = Fhe_sim.Interp.run_reference p ~inputs:[ ("x", x) ] in
  for r = 0 to dim - 1 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "slot %d" r)
      outs.(0).(r) outs.(1).(r)
  done

let test_kernel_conv2d () =
  (* identity kernel returns the image *)
  let b = Builder.create ~n_slots:16 () in
  let img = Builder.input b "img" in
  let id = [| [| 0.;0.;0. |]; [| 0.;1.;0. |]; [| 0.;0.;0. |] |] in
  let c = Fhe_apps.Kernels.conv2d b img ~width:4 ~height:4 ~weights:id in
  let p = Builder.finish b ~outputs:[ c ] in
  let data = Array.init 16 (fun i -> float_of_int i) in
  let out = (Fhe_sim.Interp.run_reference p ~inputs:[ ("img", data) ]).(0) in
  Alcotest.(check (array (float 1e-9))) "identity" data out

let test_kernel_masked_gather () =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let gathered =
    Fhe_apps.Kernels.masked_gather b [ (x, 0, 2, 0); (y, 2, 2, 2) ]
  in
  let p = Builder.finish b ~outputs:[ gathered ] in
  let out =
    (Fhe_sim.Interp.run_reference p
       ~inputs:
         [ ("x", [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]);
           ("y", [| 9.; 9.; 30.; 40.; 9.; 9.; 9.; 9. |]) ]).(0)
  in
  Alcotest.(check (array (float 1e-9))) "gathered"
    [| 1.; 2.; 30.; 40.; 0.; 0.; 0.; 0. |]
    out

let test_regression_learns () =
  (* gradient descent should move the weight towards the target 0.7 *)
  let a = Reg.find "LR" in
  let p = prog_of a in
  let outs = Fhe_sim.Interp.run_reference p ~inputs:(a.Reg.inputs ~seed:1) in
  let w_final = outs.(0).(0) in
  let w_init = 0.1 in
  Alcotest.(check bool) "closer to 0.7 than the initialisation" true
    (Float.abs (w_final -. 0.7) < Float.abs (w_init -. 0.7))

let suite =
  [ Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "op counts / depths in paper bands" `Slow test_shapes;
    Alcotest.test_case "Lenet-C bigger than Lenet-5" `Slow test_lenet_c_bigger;
    Alcotest.test_case "declared inputs provided" `Slow test_inputs_match;
    Alcotest.test_case "builders deterministic" `Quick test_determinism;
    Alcotest.test_case "reference outputs finite" `Slow test_outputs_finite;
    Alcotest.test_case "small apps: 3 waterlines, both compilers" `Slow
      test_small_apps_all_compilers;
    Alcotest.test_case "lenet-5: both compilers" `Slow test_lenet_compilers;
    Alcotest.test_case "kernel: sum_slots" `Quick test_kernel_sum_slots;
    Alcotest.test_case "kernel: matvec diag" `Quick test_kernel_matvec_diag;
    Alcotest.test_case "kernel: bsgs = diag" `Quick
      test_kernel_matvec_bsgs_matches_diag;
    Alcotest.test_case "kernel: conv2d identity" `Quick test_kernel_conv2d;
    Alcotest.test_case "kernel: masked gather" `Quick test_kernel_masked_gather;
    Alcotest.test_case "LR training converges" `Quick test_regression_learns ]
