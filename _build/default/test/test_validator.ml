open Fhe_ir

let mk ops outputs scale level =
  Managed.make
    ~prog:(Program.make ~ops ~outputs ~n_slots:4)
    ~scale ~level ~rbits:60 ~wbits:20

let cin name = Op.Input { name; vt = Op.Cipher }

let ok m =
  match Validator.check m with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "unexpectedly invalid: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Validator.pp_error) es))

let expect_error m frag =
  match Validator.check m with
  | Ok () -> Alcotest.failf "expected error mentioning %S" frag
  | Error es ->
      let all =
        String.concat "; "
          (List.map (Format.asprintf "%a" Validator.pp_error) es)
      in
      if not (Helpers.contains all frag) then
        Alcotest.failf "errors %S do not mention %S" all frag

let test_legal_basic () =
  ok
    (mk
       [| cin "x"; Op.Upscale (0, 40); Op.Mul (1, 1); Op.Rescale 2 |]
       [| 3 |]
       [| 20; 60; 120; 60 |]
       [| 2; 2; 2; 1 |])

let test_add_scale_mismatch () =
  expect_error
    (mk
       [| cin "x"; cin "y"; Op.Upscale (1, 5); Op.Add (0, 2) |]
       [| 3 |] [| 20; 20; 25; 25 |] [| 1; 1; 1; 1 |])
    "scale mismatch"

let test_add_level_mismatch () =
  expect_error
    (mk
       [| cin "x"; cin "y"; Op.Add (0, 1) |]
       [| 2 |] [| 20; 20; 20 |] [| 2; 1; 1 |])
    "level mismatch"

let test_mul_scale_rule () =
  expect_error
    (mk
       [| cin "x"; Op.Mul (0, 0) |]
       [| 1 |] [| 20; 39 |] [| 1; 1 |])
    "expected 20 + 20"

let test_scale_overflow () =
  expect_error
    (mk [| cin "x"; Op.Mul (0, 0); Op.Mul (1, 1) |] [| 2 |]
       [| 20; 40; 80 |] [| 1; 1; 1 |])
    "scale overflow"

let test_waterline () =
  expect_error
    (mk
       [| cin "x"; Op.Mul (0, 0); Op.Rescale 1 |]
       [| 2 |] [| 20; 40; -20 |] [| 2; 2; 1 |])
    "negative scale";
  expect_error
    (mk
       [| cin "x"; Op.Upscale (0, 10); Op.Mul (1, 1); Op.Rescale 2 |]
       [| 3 |] [| 20; 30; 60; 0 |] [| 2; 2; 2; 1 |])
    "below waterline"

let test_cipher_input_scale () =
  expect_error
    (mk [| cin "x" |] [| 0 |] [| 25 |] [| 1 |])
    "expected waterline"

let test_rescale_arithmetic () =
  expect_error
    (mk
       [| cin "x"; Op.Upscale (0, 60); Op.Rescale 1 |]
       [| 2 |] [| 20; 80; 30 |] [| 2; 2; 1 |])
    "rescale scale";
  expect_error
    (mk
       [| cin "x"; Op.Upscale (0, 60); Op.Rescale 1 |]
       [| 2 |] [| 20; 80; 20 |] [| 2; 2; 2 |])
    "rescale level"

let test_modswitch_and_upscale () =
  expect_error
    (mk [| cin "x"; Op.Modswitch 0 |] [| 1 |] [| 20; 25 |] [| 2; 1 |])
    "modswitch changed scale";
  expect_error
    (mk [| cin "x"; Op.Upscale (0, 0) |] [| 1 |] [| 20; 20 |] [| 1; 1 |])
    "non-positive upscale"

let test_level_floor () =
  expect_error
    (mk
       [| cin "x"; Op.Upscale (0, 40); Op.Rescale 1 |]
       [| 2 |] [| 20; 60; 0 |] [| 1; 1; 0 |])
    "level 0 < 1"

let test_neg_rotate_preserve () =
  expect_error
    (mk [| cin "x"; Op.Neg 0 |] [| 1 |] [| 20; 21 |] [| 1; 1 |])
    "scale changed by neg";
  expect_error
    (mk [| cin "x"; Op.Rotate (0, 1) |] [| 1 |] [| 20; 20 |] [| 2; 1 |])
    "level changed by rotate"

let test_plain_operand_rules () =
  (* plain-mul operand below waterline *)
  expect_error
    (mk
       [| cin "x"; Op.Const 2.0; Op.Mul (0, 1) |]
       [| 2 |] [| 20; 10; 30 |] [| 1; 1; 1 |])
    "below waterline";
  (* plain-add operand must match the cipher scale *)
  expect_error
    (mk
       [| cin "x"; Op.Const 2.0; Op.Add (0, 1) |]
       [| 2 |] [| 20; 25; 20 |] [| 1; 1; 1 |])
    "does not match cipher scale"

let test_check_exn () =
  try
    Validator.check_exn
      (mk [| cin "x" |] [| 0 |] [| 5 |] [| 1 |]);
    Alcotest.fail "expected Failure"
  with Failure _ -> ()

let test_managed_make_rejects () =
  (try
     ignore
       (Managed.make
          ~prog:(Program.make ~ops:[| cin "x" |] ~outputs:[| 0 |] ~n_slots:4)
          ~scale:[| 20; 20 |] ~level:[| 1 |] ~rbits:60 ~wbits:20);
     Alcotest.fail "expected Invalid_argument (lengths)"
   with Invalid_argument _ -> ());
  try
    ignore
      (Managed.make
         ~prog:(Program.make ~ops:[| cin "x" |] ~outputs:[| 0 |] ~n_slots:4)
         ~scale:[| 20 |] ~level:[| 1 |] ~rbits:20 ~wbits:60);
    Alcotest.fail "expected Invalid_argument (wbits)"
  with Invalid_argument _ -> ()

let test_managed_accessors () =
  let m =
    mk
      [| cin "x"; Op.Mul (0, 0); Op.Rescale 1; Op.Modswitch 2;
         Op.Upscale (3, 30) |]
      [| 4 |]
      [| 20; 40; -20; -20; 10 |]
      (* values irrelevant here *)
      [| 3; 3; 2; 1; 1 |]
  in
  Alcotest.(check int) "rescales" 1 (Managed.n_rescale m);
  Alcotest.(check int) "modswitches" 1 (Managed.n_modswitch m);
  Alcotest.(check int) "upscales" 1 (Managed.n_upscale m);
  Alcotest.(check int) "input level" 3 (Managed.input_level m);
  Alcotest.(check int) "max level" 3 (Managed.max_level m);
  Alcotest.(check int) "reserve" (3 * 60 - 20) (Managed.reserve m 0)

let suite =
  [ Alcotest.test_case "legal program accepted" `Quick test_legal_basic;
    Alcotest.test_case "add: scale mismatch" `Quick test_add_scale_mismatch;
    Alcotest.test_case "add: level mismatch" `Quick test_add_level_mismatch;
    Alcotest.test_case "mul: result scale rule" `Quick test_mul_scale_rule;
    Alcotest.test_case "scale overflow" `Quick test_scale_overflow;
    Alcotest.test_case "waterline violations" `Quick test_waterline;
    Alcotest.test_case "cipher input scale" `Quick test_cipher_input_scale;
    Alcotest.test_case "rescale arithmetic" `Quick test_rescale_arithmetic;
    Alcotest.test_case "modswitch/upscale rules" `Quick
      test_modswitch_and_upscale;
    Alcotest.test_case "level floor" `Quick test_level_floor;
    Alcotest.test_case "neg/rotate preserve annotations" `Quick
      test_neg_rotate_preserve;
    Alcotest.test_case "plain operand rules" `Quick test_plain_operand_rules;
    Alcotest.test_case "check_exn raises" `Quick test_check_exn;
    Alcotest.test_case "managed: make rejects" `Quick test_managed_make_rejects;
    Alcotest.test_case "managed: accessors" `Quick test_managed_accessors ]
