(* Privacy-preserving model training: two epochs of homomorphic
   gradient descent for linear regression over 16384 encrypted samples
   (the LR benchmark), showing the learned weights and the error the
   scale-management plan induces at two waterlines.

     dune exec examples/regression_training.exe *)

module Reg = Fhe_apps.Registry

let () =
  let app = Reg.find "LR" in
  let program = app.Reg.build () in
  let inputs = app.Reg.inputs ~seed:123 in
  (* ground truth: y = 0.7*x - 0.2 + noise (Data.linear_samples) *)
  let reference = Fhe_sim.Interp.run_reference program ~inputs in
  Printf.printf "after 2 GD epochs (plaintext reference): w = %.4f, b = %.4f\n"
    reference.(0).(0) reference.(1).(0);
  Printf.printf
    "            (moving from w=0.1 towards the target w=0.7, b=-0.2)\n\n";

  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits program ~inputs in
  List.iter
    (fun wbits ->
      Printf.printf "waterline 2^%d:\n" wbits;
      List.iter
        (fun (name, m) ->
          Fhe_ir.Validator.check_exn m;
          let outs = Fhe_sim.Interp.run m ~inputs in
          Printf.printf
            "  %-8s L=%d  est %.3fs  w=%.4f b=%.4f  (error bound 2^%.1f)\n"
            name
            (Fhe_ir.Managed.input_level m)
            (Fhe_cost.Model.estimate m /. 1e6)
            outs.(0).Fhe_sim.Interp.data.(0) outs.(1).Fhe_sim.Interp.data.(0)
            (Fhe_util.Bits.log2f outs.(0).Fhe_sim.Interp.err))
        [ ("EVA", Fhe_eva.Eva.compile ~xmax_bits ~rbits:60 ~wbits program);
          ( "reserve",
            Reserve.Pipeline.compile ~xmax_bits ~rbits:60 ~wbits program ) ])
    [ 20; 40 ]
