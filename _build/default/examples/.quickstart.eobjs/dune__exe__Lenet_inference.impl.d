examples/lenet_inference.ml: Analysis Array Fhe_apps Fhe_cost Fhe_eva Fhe_hecate Fhe_ir Fhe_sim Fhe_util List Managed Printf Program Reserve Validator
