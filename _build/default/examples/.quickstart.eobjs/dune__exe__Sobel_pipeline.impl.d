examples/sobel_pipeline.ml: Analysis Array Fhe_apps Fhe_cost Fhe_eva Fhe_ir Fhe_sim Fhe_util Float Hashtbl List Managed Op Option Printf Program Reserve String Validator
