examples/private_scoring.ml: Analysis Builder Fhe_apps Fhe_cost Fhe_hecate Fhe_ir Fhe_sim Fhe_util List Printf Program Validator
