examples/regression_training.mli:
