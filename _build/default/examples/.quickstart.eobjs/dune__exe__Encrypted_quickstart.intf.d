examples/encrypted_quickstart.mli:
