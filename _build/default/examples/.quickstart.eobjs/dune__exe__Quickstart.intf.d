examples/quickstart.mli:
