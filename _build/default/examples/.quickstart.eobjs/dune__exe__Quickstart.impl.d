examples/quickstart.ml: Array Builder Fhe_cost Fhe_eva Fhe_hecate Fhe_ir Fhe_sim Float Format List Managed Pp Printf Reserve Validator
