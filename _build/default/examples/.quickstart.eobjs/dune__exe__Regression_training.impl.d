examples/regression_training.ml: Array Fhe_apps Fhe_cost Fhe_eva Fhe_ir Fhe_sim Fhe_util List Printf Reserve
