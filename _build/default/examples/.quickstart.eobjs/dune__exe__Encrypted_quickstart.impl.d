examples/encrypted_quickstart.ml: Array Builder Ckks Fhe_ir Fhe_util Float Managed Printf Program Reserve
