examples/bootstrap_planning.mli:
