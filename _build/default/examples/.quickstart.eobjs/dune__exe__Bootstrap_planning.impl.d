examples/bootstrap_planning.ml: Analysis Builder Fhe_cost Fhe_ir List Managed Printf Program Reserve String
