examples/private_scoring.mli:
