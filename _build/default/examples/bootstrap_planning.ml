(* Bootstrap-insertion planning — the optimization the paper's
   conclusion motivates: "a fast and effective scale management scheme
   is crucial" because optimizations like bootstrap insertion invoke it
   repeatedly.

   We build a depth-24 encrypted polynomial iteration (think: many
   rounds of an approximated activation), far beyond what a practical
   modulus chain affords, and let the planner cut it into segments that
   each fit a 6-level budget, compiling every candidate segment with the
   reserve pipeline along the way.

     dune exec examples/bootstrap_planning.exe *)

open Fhe_ir

let () =
  (* x_{k+1} = 0.5·x_k² + 0.25·x_k  iterated 24 times *)
  let b = Builder.create ~n_slots:4096 () in
  let x0 = Builder.input b "x" in
  let half = Builder.const b 0.5 in
  let quarter = Builder.const b 0.25 in
  let rec iterate x k =
    if k = 0 then x
    else
      iterate
        (Builder.add b
           (Builder.mul b (Builder.square b x) half)
           (Builder.mul b x quarter))
        (k - 1)
  in
  let p = Builder.finish b ~outputs:[ iterate x0 24 ] in
  Printf.printf "circuit: %d ops, multiplicative depth %d\n"
    (Program.n_arith p)
    (Analysis.max_mult_depth p);

  let budget = 6 in
  match Reserve.Bootplan.plan ~max_level:budget ~rbits:60 ~wbits:30 p with
  | Error e ->
      prerr_endline e;
      exit 1
  | Ok plan ->
      Printf.printf "level budget %d -> %d segments, cut after depths [%s]\n"
        budget
        (List.length plan.Reserve.Bootplan.segments)
        (String.concat "; "
           (List.map string_of_int plan.Reserve.Bootplan.cuts));
      List.iteri
        (fun i m ->
          Printf.printf "  segment %d: %4d ops, L = %d, est %.3f s\n" i
            (Program.n_ops m.Managed.prog)
            (Managed.input_level m)
            (Fhe_cost.Model.estimate m /. 1e6))
        plan.Reserve.Bootplan.segments;
      Printf.printf
        "%d bootstraps -> total %.1f s (at 1 s per bootstrap)\n"
        plan.Reserve.Bootplan.bootstraps
        (plan.Reserve.Bootplan.total_latency_us /. 1e6);
      Printf.printf
        "the search ran scale management %d times in %.1f ms total —\n\
         at Hecate's exploration cost this planner would be infeasible\n"
        plan.Reserve.Bootplan.sm_invocations plan.Reserve.Bootplan.sm_time_ms
