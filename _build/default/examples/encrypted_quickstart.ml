(* The full stack on real encryption: compile the paper's example with
   the reserve analysis, then encode, encrypt, evaluate homomorphically
   on the from-scratch RNS-CKKS backend (NTT polynomials, RLWE,
   relinearization — no mock anywhere), decrypt and compare.

   The backend uses 28-bit prime chains (residue products must fit
   OCaml's 63-bit ints), so the program is compiled with rbits = 28.

     dune exec examples/encrypted_quickstart.exe *)

open Fhe_ir

let () =
  let n_slots = 1024 in
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let q =
    Builder.mul b
      (Builder.mul b x (Builder.mul b x x))
      (Builder.add b (Builder.mul b y y) y)
  in
  let program = Builder.finish b ~outputs:[ q ] in

  let rbits = 28 and wbits = 24 in
  let m = Reserve.Pipeline.compile ~rbits ~wbits program in
  Printf.printf "compiled: L = %d (coefficient modulus ~ 2^%d), %d ops\n"
    (Managed.input_level m)
    (Managed.input_level m * rbits)
    (Program.n_ops m.Managed.prog);

  let g = Fhe_util.Prng.create 2024 in
  let vec () =
    Array.init n_slots (fun _ -> Fhe_util.Prng.uniform g ~lo:(-0.9) ~hi:0.9)
  in
  let xd = vec () and yd = vec () in
  let inputs = [ ("x", xd); ("y", yd) ] in

  Printf.printf "ring degree n = %d (%d slots), keygen + encrypt + evaluate...\n%!"
    (2 * n_slots) n_slots;
  let outs, ms = Fhe_util.Timer.time (fun () -> Ckks.Backend.run m ~inputs) in
  let out = outs.(0) in

  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let expect = (xd.(i) ** 3.0) *. ((yd.(i) ** 2.0) +. yd.(i)) in
      worst := Float.max !worst (Float.abs (v -. expect)))
    out;
  Printf.printf "homomorphic evaluation done in %.0f ms\n" ms;
  Printf.printf "slot 0: got %.6f, expected %.6f\n" out.(0)
    ((xd.(0) ** 3.0) *. ((yd.(0) ** 2.0) +. yd.(0)));
  Printf.printf "max error across %d slots: %.2e\n" n_slots !worst;
  if !worst < 2e-2 then print_endline "PASS: encrypted result matches"
  else begin
    print_endline "FAIL: error too large";
    exit 1
  end
