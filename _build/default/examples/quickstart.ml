(* Quickstart: the paper's running example, x^3 * (y^2 + y).

   Builds the circuit with the embedded DSL, scale-manages it with all
   three compilers, checks legality, prints the plans and their
   estimated latencies, and verifies the managed programs compute the
   same function as the unmanaged circuit.

     dune exec examples/quickstart.exe *)

open Fhe_ir

let () =
  (* 1. Write the program: only arithmetic, no scale management. *)
  let b = Builder.create ~n_slots:4 () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let x3 = Builder.mul b x (Builder.mul b x x) in
  let s = Builder.add b (Builder.mul b y y) y in
  let q = Builder.mul b x3 s in
  let program = Builder.finish b ~outputs:[ q ] in
  print_endline "-- source circuit --";
  print_string (Pp.program_to_string program);

  (* 2. Scale-manage it.  Waterline 2^20, rescaling factor 2^60, as in
     the paper's Figure 2. *)
  let rbits = 60 and wbits = 20 in
  let eva = Fhe_eva.Eva.compile ~rbits ~wbits program in
  let reserve = Reserve.Pipeline.compile ~rbits ~wbits program in
  let hecate =
    (Fhe_hecate.Hecate.compile ~iterations:300 ~rbits ~wbits program)
      .Fhe_hecate.Hecate.managed
  in

  (* 3. Inspect the reserve compiler's plan: upscaled inputs, early
     rescales, and a rescale hoisted past the addition (Fig. 2d). *)
  print_endline "\n-- reserve-managed program (the paper's Fig. 2d plan) --";
  Format.printf "%a"
    (Pp.pp_managed ~scale:reserve.Managed.scale ~level:reserve.Managed.level)
    reserve.Managed.prog;

  (* 4. Every plan is legal and equivalent; compare estimated latency. *)
  let inputs = [ ("x", [| 0.5; -0.25; 0.75; 1.0 |]);
                 ("y", [| 0.25; 0.5; -0.5; 1.0 |]) ] in
  let reference = (Fhe_sim.Interp.run_reference program ~inputs).(0) in
  List.iter
    (fun (name, m) ->
      Validator.check_exn m;
      let out = (Fhe_sim.Interp.run m ~inputs).(0) in
      Array.iteri
        (fun i v -> assert (Float.abs (v -. reference.(i)) < 1e-9))
        out.Fhe_sim.Interp.data;
      Printf.printf "%-8s cost %6.1f x100us   L=%d   (slot0 = %.6f)\n" name
        (Fhe_cost.Model.estimate m /. 100.0)
        (Managed.input_level m) out.Fhe_sim.Interp.data.(0))
    [ ("EVA", eva); ("Hecate", hecate); ("reserve", reserve) ];
  Printf.printf "expected slot0 = %.6f\n" reference.(0)
