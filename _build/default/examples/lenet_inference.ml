(* Deep-learning inference at the paper's largest scale: LeNet-5 on
   MNIST-shaped data (~10k homomorphic ops), showing the compile-time
   gap that motivates the reserve analysis — exploration-based scale
   management is thousands of times slower at this size.

     dune exec examples/lenet_inference.exe *)

open Fhe_ir
module Reg = Fhe_apps.Registry

let () =
  let app = Reg.find "Lenet-5" in
  print_endline "building LeNet-5 (conv-sq-pool-conv-sq-pool-fc-sq-fc-sq-fc)...";
  let program, build_ms = Fhe_util.Timer.time app.Reg.build in
  Printf.printf "%d arithmetic ops, multiplicative depth %d (built in %.0f ms)\n\n"
    (Program.n_arith program)
    (Analysis.max_mult_depth program)
    build_ms;

  let wbits = 30 in
  let (rsv, stats), rsv_ms =
    Fhe_util.Timer.time (fun () ->
        Reserve.Pipeline.compile_with_stats ~rbits:60 ~wbits program)
  in
  Printf.printf
    "reserve analysis : %.1f ms total (ordering %.1f + allocation %.1f + \
     placement %.1f), compile %.1f ms\n"
    stats.Reserve.Pipeline.total_ms stats.Reserve.Pipeline.ordering_ms
    stats.Reserve.Pipeline.allocation_ms stats.Reserve.Pipeline.placement_ms
    rsv_ms;

  let eva, eva_ms =
    Fhe_util.Timer.time (fun () ->
        Fhe_eva.Eva.compile ~rbits:60 ~wbits program)
  in
  Printf.printf "EVA              : %.1f ms\n" eva_ms;

  let iters = 40 in
  let hec, hec_ms =
    Fhe_util.Timer.time (fun () ->
        Fhe_hecate.Hecate.compile ~iterations:iters ~rbits:60 ~wbits program)
  in
  Printf.printf
    "Hecate           : %.0f ms for %d iterations -> %.0f s extrapolated to \
     the paper's 14763\n\n"
    hec_ms iters
    (hec_ms /. float_of_int iters *. 14763.0 /. 1000.0);

  List.iter
    (fun (name, m) ->
      Validator.check_exn m;
      Printf.printf "%-8s L=%2d  estimated inference latency %.1f s\n" name
        (Managed.input_level m)
        (Fhe_cost.Model.estimate m /. 1e6))
    [ ("EVA", eva); ("Hecate", hec.Fhe_hecate.Hecate.managed); ("reserve", rsv) ];

  (* run the inference on the simulator and show the logits *)
  let inputs = app.Reg.inputs ~seed:9 in
  let out = (Fhe_sim.Interp.run rsv ~inputs).(0) in
  Printf.printf "\nlogits: ";
  for c = 0 to 9 do
    Printf.printf "%.3f " out.Fhe_sim.Interp.data.(c)
  done;
  Printf.printf "\n(error bound 2^%.1f)\n"
    (Fhe_util.Bits.log2f out.Fhe_sim.Interp.err)
