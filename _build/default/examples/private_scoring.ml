(* Error-latency trade-off exploration (ELASM-style, the paper's cited
   follow-up): private logistic scoring with a polynomial sigmoid, where
   the scale-management objective mixes the Table-3 latency estimate
   with a static noise proxy.

   Pure-latency exploration happily downscales everything (fast, noisy);
   penalising the noise proxy buys precision back for a small latency
   cost — the knob an application with an accuracy SLO actually wants.

     dune exec examples/private_scoring.exe *)

open Fhe_ir

let () =
  (* score = sigmoid(w·x + b) over 4096 encrypted feature vectors of
     dim 8 packed per-feature; sigmoid ≈ 0.5 + 0.197 t − 0.004 t³ *)
  let n_slots = 4096 in
  let b = Builder.create ~n_slots () in
  let feats = List.init 8 (fun i -> Builder.input b (Printf.sprintf "x%d" i)) in
  let g = Fhe_util.Prng.create 99 in
  let terms =
    List.map
      (fun x ->
        Builder.mul b x
          (Builder.const b (Fhe_util.Prng.uniform g ~lo:(-0.5) ~hi:0.5)))
      feats
  in
  let t = Builder.add b (Builder.add_many b terms) (Builder.const b 0.05) in
  (* degree-7 minimax sigmoid approximation (Horner over odd powers) *)
  let t2 = Builder.square b t in
  let t3 = Builder.mul b t2 t in
  let t5 = Builder.mul b t3 t2 in
  let t7 = Builder.mul b t5 t2 in
  let term c x = Builder.mul b x (Builder.const b c) in
  let score =
    Builder.add b
      (Builder.add b
         (Builder.sub b (term 0.2159 t) (term 0.0082 t3))
         (Builder.sub b (term 0.00016 t5) (term 0.0000011 t7)))
      (Builder.const b 0.5)
  in
  (* aggregate: the encrypted mean score over the whole batch — a
     rotate-and-sum reduction whose heavy rotations tempt a latency-only
     explorer into aggressive (noisy) downscaling *)
  let mean = Fhe_apps.Kernels.mean_slots b score ~n:n_slots in
  let p = Builder.finish b ~outputs:[ score; mean ] in
  Printf.printf "logistic scorer: %d ops, depth %d\n" (Program.n_arith p)
    (Analysis.max_mult_depth p);

  let rbits = 60 and wbits = 20 and iterations = 400 in
  let latency m = Fhe_cost.Model.estimate m in
  let noise m = Fhe_sim.Noise.static_log2_error m in
  let explore name objective =
    let r = Fhe_hecate.Hecate.compile ~objective ~iterations ~rbits ~wbits p in
    let m = r.Fhe_hecate.Hecate.managed in
    Validator.check_exn m;
    Printf.printf "%-22s latency %.3f s   static error 2^%.1f   (%d plans accepted)\n"
      name (latency m /. 1e6) (noise m) r.Fhe_hecate.Hecate.accepted;
    m
  in
  let fast = explore "latency-only" latency in
  (* ELASM-style: latency multiplied by an error penalty *)
  let balanced =
    explore "latency + error"
      (fun m -> latency m *. (2.0 ** (0.5 *. noise m)))
  in
  Printf.printf
    "error-aware plan is %.1f%% slower but %.1f bits more precise\n"
    ((latency balanced /. latency fast -. 1.0) *. 100.0)
    (noise fast -. noise balanced)
