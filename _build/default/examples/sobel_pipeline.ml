(* Encrypted image processing: the Sobel filter benchmark end to end on
   the fixed-point simulator, showing how the reserve compiler reduces
   operation levels (and therefore latency) relative to EVA.

     dune exec examples/sobel_pipeline.exe *)

open Fhe_ir
module Reg = Fhe_apps.Registry

let () =
  let app = Reg.find "SF" in
  let program = app.Reg.build () in
  let inputs = app.Reg.inputs ~seed:7 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits program ~inputs in
  Printf.printf "Sobel filter: %d ops, multiplicative depth %d, |values| < 2^%d\n"
    (Program.n_arith program)
    (Analysis.max_mult_depth program)
    xmax_bits;

  let wbits = 25 in
  let eva = Fhe_eva.Eva.compile ~xmax_bits ~rbits:60 ~wbits program in
  let rsv = Reserve.Pipeline.compile ~xmax_bits ~rbits:60 ~wbits program in
  Validator.check_exn eva;
  Validator.check_exn rsv;

  (* level histogram: where does each plan run its heavy ops? *)
  let histogram (m : Managed.t) =
    let h = Hashtbl.create 8 in
    Program.iteri
      (fun i k ->
        match k with
        | Op.Rotate _ | Op.Mul _ when Program.vtype m.Managed.prog i = Op.Cipher
          ->
            let l = m.Managed.level.(i) in
            Hashtbl.replace h l (1 + Option.value ~default:0 (Hashtbl.find_opt h l))
        | _ -> ())
      m.Managed.prog;
    List.sort compare (Hashtbl.fold (fun l c acc -> (l, c) :: acc) h [])
  in
  let show name m =
    Printf.printf "%-8s L=%d  est %.3fs  heavy ops by level: %s\n" name
      (Managed.input_level m)
      (Fhe_cost.Model.estimate m /. 1e6)
      (String.concat ", "
         (List.map (fun (l, c) -> Printf.sprintf "l%d:%d" l c) (histogram m)))
  in
  show "EVA" eva;
  show "reserve" rsv;

  (* run the reserve-managed program and report the edge-map quality *)
  let out = (Fhe_sim.Interp.run rsv ~inputs).(0) in
  let reference = (Fhe_sim.Interp.run_reference program ~inputs).(0) in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (v -. reference.(i))))
    out.Fhe_sim.Interp.data;
  Printf.printf
    "edge magnitudes computed for %d pixels; worst deviation %.2e, noise \
     bound 2^%.1f\n"
    (64 * 64) !worst
    (Fhe_util.Bits.log2f out.Fhe_sim.Interp.err)
