(* The tensor tier (@tensor): the tensor frontend (lib/tensor) locked
   end to end.

   - lowering correctness: for every catalog app and every supported
     packing plan, the lowered circuit's plaintext reference
     (Fhe_sim.Interp.run_reference — rotations, masks, add trees) agrees
     with the DSL interpreter (Fhe_tensor.Lower.reference — direct index
     arithmetic, no circuit structure);
   - digest pins: the DSL-regenerated MLP and LeNets reproduce the
     hand-built op streams byte-for-byte (one documented re-pin: the
     old full LeNet-5 stream carried GC-duplicated ops, see below);
   - layout search: the chosen plan is cost-minimal over every
     candidate, the candidate set obeys the packing support rules, and
     the whole search is byte-identical with and without a worker pool;
   - rotation-heavy lowerings through all 5 strategies and portfolio
     mode with zero §5 reserve-invariant violations;
   - the Constfold rotate-composition canonicalization;
   - the Progen/Coverage tensor profile reaches coverage bins the
     default profile never hits. *)

open Fhe_ir
module Reg = Fhe_apps.Registry
module Tn = Fhe_apps.Tensors
module Graph = Fhe_tensor.Graph
module Layout = Fhe_tensor.Layout
module Lower = Fhe_tensor.Lower
module Progen = Fhe_sim.Progen
module Coverage = Fhe_check.Coverage
module Invariants = Fhe_check.Invariants
module St = Fhe_strategy.Strategy
module SReg = Fhe_strategy.Registry
module Portfolio = Fhe_strategy.Portfolio

let str = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* lowering correctness: circuit reference vs DSL interpreter *)

(* exec-scale graphs keep every plan's lowering cheap; the compile-tier
   circuits are covered op-for-op by the digest pins below *)
let test_lowering_matches_reference () =
  List.iter
    (fun (e : Tn.entry) ->
      let g = e.Tn.exec_graph () in
      let data = e.Tn.exec_data ~seed:42 in
      List.iter
        (fun plan ->
          let what = str "%s/%s" e.Tn.name (Layout.name plan) in
          let p = Lower.lower ~plan g in
          let inputs = Lower.pack_inputs ~plan g ~data in
          let refs = Lower.reference ~plan g ~data in
          let got = Fhe_sim.Interp.run_reference p ~inputs in
          if Array.length got <> Array.length refs then
            Alcotest.failf "%s: %d outputs vs %d expected" what
              (Array.length got) (Array.length refs);
          Array.iteri
            (fun o slots ->
              Array.iteri
                (fun j x ->
                  let d = Float.abs (x -. refs.(o).(j)) in
                  if d > 1e-6 then
                    Alcotest.failf
                      "%s: output %d slot %d: circuit %g vs DSL %g" what o j
                      x refs.(o).(j))
                slots)
            got)
        (Lower.candidates g))
    Tn.all

(* the packed plans must agree with each other on the logical slots *)
let test_plans_agree_on_logical_slots () =
  let e = Tn.find "MLP" in
  let g = e.Tn.exec_graph () in
  let data = e.Tn.exec_data ~seed:7 in
  let out = Graph.dim g (List.hd (Graph.outputs g)) in
  let diag = Lower.reference ~plan:{ Layout.dense = Layout.Diag } g ~data in
  List.iter
    (fun plan ->
      let r = Lower.reference ~plan g ~data in
      let n = Graph.n_slots g in
      let d = Graph.dim g (List.hd (Graph.outputs g)) in
      ignore d;
      for r_i = 0 to out - 1 do
        (* user 0, logical component r_i under each packing *)
        let slot =
          match plan.Layout.dense with
          | Layout.Diag | Layout.Bsgs -> r_i
          | Layout.Interleaved ->
              let dim =
                match Graph.uniform_dim g with Some d -> d | None -> 0
              in
              r_i * (n / dim)
          | Layout.Blocked -> r_i
        in
        let a = diag.(0).(r_i) and b = r.(0).(slot) in
        if Float.abs (a -. b) > 1e-6 then
          Alcotest.failf "MLP %s: logical slot %d: %g vs diag %g"
            (Layout.name plan) r_i b a
      done)
    (Lower.candidates g)

(* ------------------------------------------------------------------ *)
(* digest pins: the regenerated apps vs the hand-built op streams *)

(* Pinned Intern digests of the historical hand-built builders.  The
   tensor lowering reproduces five of the six streams byte-for-byte.
   Lenet-5 (full, 16384 slots) is RE-PINNED: the old hand-built stream
   deterministically contained ~145 duplicated ops (e.g. `rotate %482
   16268` emitted twice) because the builder's dedup table keyed on
   weakly-held intern uids — a major GC mid-build reclaimed the nodes
   and equal kinds re-interned under fresh uids.  The builder now keeps
   interned nodes alive for its own lifetime (lib/ir/builder.ml), so
   the lowering emits the fully-deduplicated stream; the new digest is
   pinned here.  The circuit is semantically identical and strictly
   smaller (14329 vs 14474 ops). *)
let digest_pins =
  [ ("MLP", "c41fefb2bd4b8cd01298ed2bed825654",
     fun () -> Fhe_apps.Mlp.build ());
    ("MLP-exec", "2867986f2d1162b3203302c42ea676c0",
     fun () -> Fhe_apps.Mlp.build ~n_slots:128 ());
    ("Lenet-5", "2002fc2e84d31144eacbc7ebcfd1ce88",
     fun () -> Fhe_apps.Lenet.build Fhe_apps.Lenet.Mnist);
    ("Lenet-C", "fbc5ee20e587bd3537fb4cebfa6db706",
     fun () -> Fhe_apps.Lenet.build Fhe_apps.Lenet.Cifar);
    ("Lenet-5-small", "9d0f26655ef34a0d4fda6e58f92e378d",
     fun () -> Fhe_apps.Lenet.build_small Fhe_apps.Lenet.Mnist);
    ("Lenet-C-small", "944b3ce54a3b3602775e07c99e169edc",
     fun () -> Fhe_apps.Lenet.build_small Fhe_apps.Lenet.Cifar) ]

let test_digest_pins () =
  List.iter
    (fun (name, expect, build) ->
      let got = Intern.digest (build ()) in
      if got <> expect then
        Alcotest.failf
          "%s: regenerated digest %s differs from pinned %s (the DSL \
           lowering no longer reproduces the hand-built stream)"
          name got expect)
    digest_pins

(* the builder's dedup must be a pure function of the call sequence:
   a major GC between two equal emissions must not duplicate the op
   (the weak-intern regression behind the Lenet-5 re-pin above) *)
let test_builder_dedup_survives_gc () =
  let b = Builder.create ~n_slots:64 () in
  let x = Builder.input b "x" in
  let r1 = Builder.rotate b x 3 in
  Gc.full_major ();
  Gc.full_major ();
  let r2 = Builder.rotate b x 3 in
  if r1 <> r2 then
    Alcotest.failf
      "builder re-emitted rotate after GC: id %d then %d (dedup lost)" r1 r2

(* ------------------------------------------------------------------ *)
(* layout search: support rules, optimality, pool determinism *)

let plan_names g = List.map Layout.name (Lower.candidates g)

let test_candidate_support_rules () =
  (* unbatched, image-free, uniform width: every packing applies *)
  Alcotest.(check (list string))
    "MLP admits all four packings"
    [ "diag"; "bsgs"; "interleaved"; "blocked" ]
    (plan_names (Fhe_apps.Mlp.graph ()));
  (* batched: the replicate-trick packings are out *)
  Alcotest.(check (list string))
    "batched MLP admits only the batched packings"
    [ "interleaved"; "blocked" ]
    (plan_names (Fhe_apps.Mlp.graph_batched ()));
  (* images + a non-uniform dense head: only the packed plans *)
  Alcotest.(check (list string))
    "LeNet admits only the packed plans" [ "diag"; "bsgs" ]
    (plan_names (Fhe_apps.Lenet.graph Fhe_apps.Lenet.Mnist))

let test_search_cost_optimal () =
  List.iter
    (fun (e : Tn.entry) ->
      let g = e.Tn.exec_graph () in
      let cands, best = Lower.search g in
      if cands = [] then Alcotest.failf "%s: no candidates" e.Tn.name;
      List.iter
        (fun (c : Lower.candidate) ->
          if best.Lower.est > c.Lower.est then
            Alcotest.failf "%s: chose %s (%g) over cheaper %s (%g)" e.Tn.name
              (Layout.name best.Lower.plan)
              best.Lower.est (Layout.name c.Lower.plan) c.Lower.est;
          (* the estimate must be the recomputable objective *)
          let recomputed = Lower.cost c.Lower.prog in
          if recomputed <> c.Lower.est then
            Alcotest.failf "%s/%s: est %g but cost recomputes to %g" e.Tn.name
              (Layout.name c.Lower.plan) c.Lower.est recomputed)
        cands)
    Tn.all

let test_search_pool_identity () =
  List.iter
    (fun (e : Tn.entry) ->
      let g = e.Tn.exec_graph () in
      let seq_cands, seq_best = Lower.search g in
      let par_cands, par_best =
        Fhe_par.Pool.with_pool ~domains:4 (fun pool ->
            Lower.search ~pool (e.Tn.exec_graph ()))
      in
      Alcotest.(check int)
        (str "%s: same candidate count" e.Tn.name)
        (List.length seq_cands) (List.length par_cands);
      List.iter2
        (fun (a : Lower.candidate) (b : Lower.candidate) ->
          if a.Lower.plan <> b.Lower.plan then
            Alcotest.failf "%s: candidate order differs under pool" e.Tn.name;
          if a.Lower.est <> b.Lower.est then
            Alcotest.failf "%s/%s: estimate differs under pool" e.Tn.name
              (Layout.name a.Lower.plan);
          if Intern.digest a.Lower.prog <> Intern.digest b.Lower.prog then
            Alcotest.failf "%s/%s: lowered program differs under pool"
              e.Tn.name (Layout.name a.Lower.plan))
        seq_cands par_cands;
      if seq_best.Lower.plan <> par_best.Lower.plan then
        Alcotest.failf "%s: winner differs under pool" e.Tn.name)
    Tn.all

(* ------------------------------------------------------------------ *)
(* rotation-heavy lowerings x 5 strategies (+ portfolio): 0 violations *)

let rotation_heavy_programs () =
  let lowered =
    List.concat_map
      (fun (e : Tn.entry) ->
        let g = e.Tn.exec_graph () in
        List.map
          (fun plan ->
            (str "%s/%s" e.Tn.name (Layout.name plan), Lower.lower ~plan g))
          (Lower.candidates g))
      Tn.all
  in
  let generated =
    let profile = List.assoc "tensor" Coverage.profiles in
    List.init 10 (fun seed ->
        (str "progen-tensor-%d" seed, (Progen.make ~profile seed).Progen.prog))
  in
  lowered @ generated

let test_strategies_zero_violations () =
  let cfg = St.config ~iterations:10 ~rbits:60 ~wbits:30 () in
  List.iter
    (fun (what, p) ->
      List.iter
        (fun s ->
          let m = SReg.compile_uncached s cfg p in
          Validator.check_exn m;
          match Invariants.check m with
          | [] -> ()
          | v :: _ ->
              Alcotest.failf "%s under %s: %s at op %d (%s)" what (St.name s)
                v.Invariants.rule v.Invariants.op v.Invariants.detail)
        (SReg.all ()))
    (rotation_heavy_programs ())

let test_portfolio_zero_violations () =
  let cfg = St.config ~iterations:10 ~rbits:60 ~wbits:30 () in
  List.iter
    (fun (what, p) ->
      match Portfolio.run cfg p with
      | Error e -> Alcotest.failf "%s: portfolio failed: %s" what e
      | Ok r -> (
          match r.Portfolio.winner.Portfolio.result with
          | Error e -> Alcotest.failf "%s: winner failed: %s" what e
          | Ok m -> (
              Validator.check_exn m;
              match Invariants.check m with
              | [] -> ()
              | v :: _ ->
                  Alcotest.failf "%s portfolio winner: %s at op %d" what
                    v.Invariants.rule v.Invariants.op)))
    (rotation_heavy_programs ())

(* ------------------------------------------------------------------ *)
(* Constfold: rotate-of-rotate composes and canonicalizes *)

let test_constfold_rotate_composition () =
  let n = 16 in
  (* rotate 5 then rotate 13: 18 mod 16 = 2 — one canonical rotation *)
  let b = Builder.create ~n_slots:n () in
  let x = Builder.input b "x" in
  let r = Builder.rotate b (Builder.rotate b x 5) 13 in
  let p = Builder.finish b ~outputs:[ r ] in
  let folded = (Constfold.run p).Rewrite.prog in
  let rotations =
    Program.count folded ~f:(function Op.Rotate _ -> true | _ -> false)
  in
  Alcotest.(check int) "one rotation left" 1 rotations;
  Program.iteri
    (fun _ k ->
      match k with
      | Op.Rotate (_, amt) ->
          Alcotest.(check int) "canonical amount in [0, slots)" 2 amt
      | _ -> ())
    folded;
  (* a chain that cancels exactly disappears *)
  let b = Builder.create ~n_slots:n () in
  let x = Builder.input b "x" in
  let r = Builder.rotate b (Builder.rotate b x 5) 11 in
  let p = Builder.finish b ~outputs:[ r ] in
  let folded = (Constfold.run p).Rewrite.prog in
  Alcotest.(check int) "cancelling chain folds away" 0
    (Program.count folded ~f:(function Op.Rotate _ -> true | _ -> false));
  (* semantics preserved on a longer mixed chain *)
  let b = Builder.create ~n_slots:n () in
  let x = Builder.input b "x" in
  let y = Builder.rotate b (Builder.rotate b (Builder.rotate b x 7) 12) 15 in
  let out = Builder.add b y x in
  let p = Builder.finish b ~outputs:[ out ] in
  let folded = (Constfold.run p).Rewrite.prog in
  let inputs = [ ("x", Array.init n (fun i -> float_of_int i)) ] in
  Alcotest.(check bool) "folded chain computes the same slots" true
    (Fhe_sim.Interp.run_reference p ~inputs
    = Fhe_sim.Interp.run_reference folded ~inputs)

(* ------------------------------------------------------------------ *)
(* coverage: the tensor profile reaches bins the default never hits *)

let coverage_of ~profile ~seeds =
  let c = Coverage.create () in
  for seed = 0 to seeds - 1 do
    ignore (Coverage.add c (Progen.make ?profile seed).Progen.prog)
  done;
  c

let test_tensor_profile_new_bins () =
  let seeds = 60 in
  let default = coverage_of ~profile:None ~seeds in
  let tensor =
    coverage_of
      ~profile:(Some (List.assoc "tensor" Coverage.profiles))
      ~seeds
  in
  let fresh =
    List.filter
      (fun f -> not (Coverage.mem default f))
      (Coverage.to_list tensor)
  in
  if fresh = [] then
    Alcotest.fail
      "tensor profile hit no coverage bin the default profile missed";
  (* the structural bin the profile exists for: chained rotations *)
  Alcotest.(check bool) "tensor profile reaches rot:chain" true
    (Coverage.mem tensor "rot:chain")

let suite =
  [ Alcotest.test_case "lowering matches the DSL reference (all plans)"
      `Quick test_lowering_matches_reference;
    Alcotest.test_case "packings agree on logical slots" `Quick
      test_plans_agree_on_logical_slots;
    Alcotest.test_case "digest pins: regenerated apps = hand-built streams"
      `Quick test_digest_pins;
    Alcotest.test_case "builder dedup survives a major GC" `Quick
      test_builder_dedup_survives_gc;
    Alcotest.test_case "candidate sets obey the packing support rules"
      `Quick test_candidate_support_rules;
    Alcotest.test_case "search winner is cost-minimal, est recomputable"
      `Quick test_search_cost_optimal;
    Alcotest.test_case "search byte-identical with and without a pool"
      `Quick test_search_pool_identity;
    Alcotest.test_case
      "rotation-heavy lowerings x 5 strategies: 0 invariant violations"
      `Slow test_strategies_zero_violations;
    Alcotest.test_case "portfolio winners: 0 invariant violations" `Slow
      test_portfolio_zero_violations;
    Alcotest.test_case "constfold composes rotate chains canonically"
      `Quick test_constfold_rotate_composition;
    Alcotest.test_case "tensor Progen profile reaches new coverage bins"
      `Quick test_tensor_profile_new_bins ]

let () = Alcotest.run "fhe-tensor" [ ("tensor", suite) ]
