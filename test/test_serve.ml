(* The serve tier (dune build @serve).

   Three layers under test, bottom up:
   - lib/ir/Wire: the canonical IR encodings — decode ∘ encode = id
     keyed on Intern.digest over the Progen corpus, golden pins so the
     v1 format cannot drift silently, and hostile-input totality
     (truncations, bit flips, lying lengths: Error, never an exception);
   - lib/serve/Protocol: message round-trips, range validation at the
     decode boundary, and the frame layer over a real fd;
   - the daemon itself: served results byte-identical to local compiles
     for all 8 registry apps x 5 compilers, and the robustness contract
     — the seeded wire-fault matrix, admission shedding, deadline
     timeouts, degradation under pressure, tenant cache isolation,
     crash-recovery sweeps, and the retrying client. *)

open Fhe_ir
module Proto = Fhe_serve.Protocol
module Server = Fhe_serve.Server
module Client = Fhe_serve.Client
module Admission = Fhe_serve.Admission
module Loadgen = Fhe_serve.Loadgen
module Faults = Fhe_sim.Faults
module Store = Fhe_cache.Store
module Reg = Fhe_apps.Registry

let str = Printf.sprintf

(* every server test starts from a known cache configuration; the
   store is process-global and alcotest runs these sequentially *)
let fresh_cache () =
  Store.set_enabled true;
  Store.set_dir None;
  Store.set_capacity 256;
  Store.reset ()

let sock name = str "/tmp/fhec-t%d-%s.sock" (Unix.getpid ()) name

let with_server ?(domains = 2) ?(capacity = 8) ?(degrade_at = 6)
    ?(read_timeout_ms = 500) name f =
  fresh_cache ();
  let socket = sock name in
  let config =
    { (Server.default_config ~socket) with
      domains; capacity; degrade_at; read_timeout_ms }
  in
  let t = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f socket t)

let app_request ?(tenant = "") ?(compiler = "reserve-full") ?(rbits = 60)
    ?(wbits = 30) ?(iterations = 10) ?(deadline_ms = 0) app_name =
  let app = Reg.find app_name in
  let program = app.Reg.build () in
  let inputs = app.Reg.inputs ~seed:42 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits program ~inputs in
  {
    Proto.tenant; compiler; strategies = []; rbits; wbits; xmax_bits;
    iterations; allow_fallback = false; oracle = false; deadline_ms; program;
  }

let managed_bytes (m : Managed.t) = Wire.encode_managed m

let progen seed = (Fhe_sim.Progen.make seed).Fhe_sim.Progen.prog

(* ----------------------------------------------------------------- *)
(* Wire: round trips *)

let test_wire_binary_round_trip_500 () =
  for seed = 0 to 499 do
    let p = progen seed in
    let bytes = Wire.encode p in
    Alcotest.(check string)
      (str "seed %d: encode deterministic" seed)
      bytes (Wire.encode p);
    match Wire.decode bytes with
    | Error e ->
        Alcotest.fail
          (str "seed %d: decode failed: %s" seed
             (Format.asprintf "%a" Wire.pp_error e))
    | Ok q ->
        Alcotest.(check string)
          (str "seed %d: digest preserved" seed)
          (Intern.digest p) (Intern.digest q)
  done

let test_wire_text_round_trip_500 () =
  for seed = 0 to 499 do
    let p = progen seed in
    match Wire.decode_text (Wire.encode_text p) with
    | Error e ->
        Alcotest.fail
          (str "seed %d: decode_text failed: %s" seed
             (Format.asprintf "%a" Wire.pp_error e))
    | Ok q ->
        Alcotest.(check string)
          (str "seed %d: digest preserved" seed)
          (Intern.digest p) (Intern.digest q)
  done

let test_wire_managed_round_trip () =
  let ok = ref 0 in
  for seed = 0 to 24 do
    match
      Reserve.Pipeline.compile_safe ~rbits:60 ~wbits:30 (progen seed)
    with
    | Error _ -> ()
    | Ok o -> (
        incr ok;
        let m = o.Reserve.Pipeline.managed in
        match Wire.decode_managed (Wire.encode_managed m) with
        | Error e ->
            Alcotest.fail
              (str "seed %d: decode_managed failed: %s" seed
                 (Format.asprintf "%a" Wire.pp_error e))
        | Ok m' ->
            Alcotest.(check string)
              (str "seed %d: managed bytes stable" seed)
              (Wire.encode_managed m) (Wire.encode_managed m');
            Alcotest.(check string)
              (str "seed %d: program digest preserved" seed)
              (Intern.digest m.Managed.prog)
              (Intern.digest m'.Managed.prog))
  done;
  Alcotest.(check bool)
    (str "corpus yields compiles (%d ok)" !ok)
    true (!ok > 15)

(* the registry apps are fixed programs, so their encodings are pinned
   as golden files: any byte-level drift of the v1 format (which the
   on-disk cache and the daemon protocol both speak) fails here *)
let golden_program () = (Reg.find "SF").Reg.build ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun ch -> Buffer.add_string b (str "%02x" (Char.code ch))) s;
  Buffer.contents b

let test_wire_golden_text () =
  Alcotest.(check string)
    "textual v1 encoding of SF is pinned"
    (read_file "golden/wire_v1.txt")
    (Wire.encode_text (golden_program ()))

let test_wire_golden_binary () =
  Alcotest.(check string)
    "binary v1 encoding of SF is pinned"
    (String.trim (read_file "golden/wire_v1.bin.hex"))
    (hex (Wire.encode (golden_program ())))

(* ----------------------------------------------------------------- *)
(* Wire: hostile input *)

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let no_raise what f =
  match f () with
  | (_ : bool) -> ()
  | exception e ->
      Alcotest.fail (str "%s raised %s" what (Printexc.to_string e))

let test_wire_hostile_truncations () =
  let bytes = Wire.encode (golden_program ()) in
  let n = String.length bytes in
  for cut = 0 to n - 1 do
    let sub = String.sub bytes 0 cut in
    no_raise (str "decode of %d-byte prefix" cut) (fun () ->
        Result.is_ok (Wire.decode sub));
    (* a strict prefix can never be a complete program *)
    Alcotest.(check bool)
      (str "%d-byte prefix rejected" cut)
      true
      (Result.is_error (Wire.decode sub))
  done

let test_wire_hostile_bit_flips () =
  let bytes = Wire.encode (golden_program ()) in
  let n = String.length bytes in
  let rng = Fhe_util.Prng.create 0xbadbeef in
  for _ = 1 to 500 do
    let i = Fhe_util.Prng.int rng (n * 8) in
    let b = Bytes.of_string bytes in
    let c = Char.code (Bytes.get b (i / 8)) in
    Bytes.set b (i / 8) (Char.chr (c lxor (1 lsl (i mod 8))));
    let s = Bytes.to_string b in
    no_raise (str "decode with bit %d flipped" i) (fun () ->
        Result.is_ok (Wire.decode s));
    no_raise (str "decode_managed with bit %d flipped" i) (fun () ->
        Result.is_ok (Wire.decode_managed s))
  done

let test_wire_hostile_text () =
  let text = Wire.encode_text (golden_program ()) in
  let lines = String.split_on_char '\n' text in
  (* line-granular truncations *)
  List.iteri
    (fun k _ ->
      let sub =
        String.concat "\n" (List.filteri (fun i _ -> i < k) lines)
      in
      no_raise (str "decode_text of %d lines" k) (fun () ->
          Result.is_ok (Wire.decode_text sub)))
    lines;
  (* seeded character corruptions *)
  let rng = Fhe_util.Prng.create 0x7e17 in
  let n = String.length text in
  for _ = 1 to 200 do
    let i = Fhe_util.Prng.int rng n in
    let b = Bytes.of_string text in
    Bytes.set b i (Char.chr (Fhe_util.Prng.int rng 256));
    no_raise (str "decode_text with byte %d corrupted" i) (fun () ->
        Result.is_ok (Wire.decode_text (Bytes.to_string b)))
  done

(* ----------------------------------------------------------------- *)
(* Protocol: message round trips *)

let sample_request () =
  {
    (app_request ~tenant:"acme" ~compiler:"reserve-ra" "HCD") with
    Proto.strategies = [ "eva"; "reserve-full" ];
    iterations = 7;
    allow_fallback = true;
    oracle = true;
    deadline_ms = 1234;
  }

let test_protocol_request_round_trip () =
  let check_rt (r : Proto.request) =
    let typ, payload = Proto.encode_request r in
    match Proto.decode_request ~typ payload with
    | Error m -> Alcotest.fail (str "decode_request: %s" m)
    | Ok r' ->
        (* re-encoding the decoded message must reproduce the bytes *)
        let typ', payload' = Proto.encode_request r' in
        Alcotest.(check int) "type byte" typ typ';
        Alcotest.(check string) "payload bytes" payload payload'
  in
  check_rt (Proto.Compile (sample_request ()));
  check_rt Proto.Ping;
  check_rt Proto.Shutdown;
  check_rt Proto.Stats;
  (* field-level spot check through the codec *)
  let typ, payload = Proto.encode_request (Proto.Compile (sample_request ())) in
  match Proto.decode_request ~typ payload with
  | Ok (Proto.Compile r) ->
      Alcotest.(check string) "tenant" "acme" r.Proto.tenant;
      Alcotest.(check string) "compiler" "reserve-ra" r.Proto.compiler;
      Alcotest.(check int) "deadline" 1234 r.Proto.deadline_ms;
      Alcotest.(check bool) "fallback flag" true r.Proto.allow_fallback;
      Alcotest.(check bool) "oracle flag" true r.Proto.oracle;
      Alcotest.(check string) "program digest"
        (Intern.digest (sample_request ()).Proto.program)
        (Intern.digest r.Proto.program)
  | _ -> Alcotest.fail "compile request did not survive the codec"

let test_protocol_reply_round_trip () =
  let managed = Fhe_eva.Eva.compile ~rbits:60 ~wbits:30 (golden_program ()) in
  let compiled =
    { Proto.engine = "eva"; wbits_used = 30; warnings = [ "w1"; "w2" ]; managed }
  in
  List.iter
    (fun (r : Proto.reply) ->
      let typ, payload = Proto.encode_reply r in
      match Proto.decode_reply ~typ payload with
      | Error m ->
          Alcotest.fail (str "decode_reply (%s): %s" (Proto.reply_name r) m)
      | Ok r' ->
          let typ', payload' = Proto.encode_reply r' in
          Alcotest.(check int)
            (str "%s: type byte" (Proto.reply_name r))
            typ typ';
          Alcotest.(check string)
            (str "%s: payload bytes" (Proto.reply_name r))
            payload payload')
    [
      Proto.Compiled compiled;
      Proto.Degraded { compiled with warnings = [] };
      Proto.Shed { retry_after_ms = 40; reason = "at capacity" };
      Proto.Timed_out "budget exceeded";
      Proto.Failed [ "diag one"; "diag two" ];
      Proto.Bad_request "no";
      Proto.Pong;
      Proto.Stats_reply "{\"inflight\":0}";
    ]

(* ----------------------------------------------------------------- *)
(* Protocol: the decode boundary *)

let test_protocol_hostile_payloads () =
  let typ, payload = Proto.encode_request (Proto.Compile (sample_request ())) in
  let n = String.length payload in
  (* every truncation decodes to Error without raising *)
  for cut = 0 to n - 1 do
    let sub = String.sub payload 0 cut in
    no_raise (str "request decode of %d-byte prefix" cut) (fun () ->
        Result.is_ok (Proto.decode_request ~typ sub));
    Alcotest.(check bool)
      (str "%d-byte prefix rejected" cut)
      true
      (Result.is_error (Proto.decode_request ~typ sub))
  done;
  (* seeded bit flips: Ok or Error, never an exception *)
  let rng = Fhe_util.Prng.create 0x5eed in
  for _ = 1 to 500 do
    let i = Fhe_util.Prng.int rng (n * 8) in
    let b = Bytes.of_string payload in
    let c = Char.code (Bytes.get b (i / 8)) in
    Bytes.set b (i / 8) (Char.chr (c lxor (1 lsl (i mod 8))));
    no_raise (str "request decode with bit %d flipped" i) (fun () ->
        Result.is_ok (Proto.decode_request ~typ (Bytes.to_string b)))
  done;
  (* a lying length prefix must be rejected before allocation: the
     first field is the tenant string, length-prefixed as a u32 *)
  let lying = Bytes.of_string payload in
  Bytes.set_int32_le lying 0 0x7fffffffl;
  Alcotest.(check bool) "lying u32 length rejected" true
    (Result.is_error (Proto.decode_request ~typ (Bytes.to_string lying)));
  (* unknown message types are typed errors *)
  Alcotest.(check bool) "unknown request type" true
    (Result.is_error (Proto.decode_request ~typ:99 payload));
  Alcotest.(check bool) "unknown reply type" true
    (Result.is_error (Proto.decode_reply ~typ:99 payload));
  (* control messages must have empty payloads *)
  let ping_typ, _ = Proto.encode_request Proto.Ping in
  Alcotest.(check bool) "ping with trailing junk rejected" true
    (Result.is_error (Proto.decode_request ~typ:ping_typ "x"))

let test_protocol_rejects_bad_ranges () =
  let rt (r : Proto.compile_request) =
    let typ, payload = Proto.encode_request (Proto.Compile r) in
    Proto.decode_request ~typ payload
  in
  let base = app_request "SF" in
  (* the encoder is faithful even to nonsense; the decoder is the
     boundary that keeps it away from the engines *)
  Alcotest.(check bool) "wbits > rbits rejected" true
    (Result.is_error (rt { base with Proto.rbits = 60; wbits = 62 }));
  Alcotest.(check bool) "rbits = 0 rejected" true
    (Result.is_error (rt { base with Proto.rbits = 0; wbits = 0 }));
  Alcotest.(check bool) "rbits > 120 rejected" true
    (Result.is_error (rt { base with Proto.rbits = 121; wbits = 30 }));
  Alcotest.(check bool) "xmax_bits > 120 rejected" true
    (Result.is_error (rt { base with Proto.xmax_bits = 121 }));
  Alcotest.(check bool) "in-range accepted" true (Result.is_ok (rt base))

(* each scenario gets a fresh pipe: a rejected frame can leave
   unconsumed bytes behind, and real servers drop the connection at
   that point rather than resynchronise *)
let with_pipe f =
  let rd, wr = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () -> f rd wr)

let test_protocol_framing_over_fd () =
  let typ, payload = Proto.encode_request (Proto.Compile (sample_request ())) in
  let frame = Proto.frame ~typ payload in
  (* a well-formed frame round-trips *)
  with_pipe (fun rd wr ->
      (match Proto.write_frame wr ~typ payload with
      | Error m -> Alcotest.fail (str "write_frame: %s" m)
      | Ok () -> ());
      match Proto.read_frame rd with
      | Ok (version, typ', payload') ->
          Alcotest.(check int) "frame version" Proto.version version;
          Alcotest.(check int) "frame type" typ typ';
          Alcotest.(check string) "frame payload" payload payload'
      | Error e ->
          Alcotest.fail
            (Format.asprintf "read_frame: %a" Proto.pp_read_error e));
  (* bad magic is malformed, not fatal *)
  with_pipe (fun rd wr ->
      let bad = Bytes.of_string frame in
      Bytes.set bad 0 'X';
      let wrote = Unix.write wr bad 0 (Bytes.length bad) in
      Alcotest.(check int) "wrote the corrupt frame" (Bytes.length bad) wrote;
      match Proto.read_frame rd with
      | Error (`Malformed _) -> ()
      | Ok _ -> Alcotest.fail "bad magic accepted"
      | Error e ->
          Alcotest.fail
            (Format.asprintf "bad magic: expected Malformed, got %a"
               Proto.pp_read_error e));
  (* a declared length over the cap is rejected from the header alone *)
  with_pipe (fun rd wr ->
      let huge = Bytes.of_string frame in
      Bytes.set_int32_le huge (Proto.header_len - 4) 0x7fffffffl;
      let _ = Unix.write wr huge 0 (Bytes.length huge) in
      match Proto.read_frame ~max_payload:65536 rd with
      | Error (`Malformed _) -> ()
      | _ -> Alcotest.fail "oversized frame accepted");
  (* mid-frame EOF is malformed *)
  with_pipe (fun rd wr ->
      let prefix = String.sub frame 0 (Proto.header_len + 3) in
      let _ = Unix.write_substring wr prefix 0 (String.length prefix) in
      Unix.close wr;
      match Proto.read_frame rd with
      | Error (`Malformed _) -> ()
      | _ -> Alcotest.fail "mid-frame EOF not malformed");
  (* EOF at a frame boundary is a clean close *)
  with_pipe (fun rd wr ->
      Unix.close wr;
      match Proto.read_frame rd with
      | Error `Closed -> ()
      | _ -> Alcotest.fail "EOF at boundary should be Closed")

(* ----------------------------------------------------------------- *)
(* Admission control *)

let test_admission_thresholds () =
  let a = Admission.create ~capacity:3 ~degrade_at:2 in
  (match Admission.try_admit a with
  | `Go Admission.Normal -> ()
  | _ -> Alcotest.fail "first admit should be Normal");
  (match Admission.try_admit a with
  | `Go Admission.Normal -> ()
  | _ -> Alcotest.fail "second admit should be Normal");
  (match Admission.try_admit a with
  | `Go Admission.Pressured -> ()
  | _ -> Alcotest.fail "third admit should be Pressured");
  (match Admission.try_admit a with
  | `Shed -> ()
  | `Go _ -> Alcotest.fail "fourth admit should shed");
  let s = Admission.stats a in
  Alcotest.(check int) "inflight" 3 s.Admission.inflight;
  Alcotest.(check int) "admitted" 3 s.Admission.admitted;
  Alcotest.(check int) "shed" 1 s.Admission.shed;
  Admission.release a;
  (match Admission.try_admit a with
  | `Go _ -> ()
  | `Shed -> Alcotest.fail "a released slot must be admittable");
  Alcotest.check_raises "degrade_at 0 rejected"
    (Invalid_argument "Admission.create: degrade_at out of [1, capacity]")
    (fun () -> ignore (Admission.create ~capacity:2 ~degrade_at:0))

let test_admission_stats_json () =
  let a = Admission.create ~capacity:4 ~degrade_at:3 in
  (match Admission.try_admit a with `Go _ -> () | `Shed -> ());
  Admission.note_degraded a;
  Admission.note_timeout a;
  let json = Admission.stats_json (Admission.stats a) in
  match Fhe_check.Benchjson.parse json with
  | Error m -> Alcotest.fail (str "stats json does not parse: %s" m)
  | Ok j ->
      let int_field k =
        match Fhe_check.Benchjson.member k j with
        | Some (Fhe_check.Benchjson.Num f) -> int_of_float f
        | _ -> Alcotest.fail (str "missing stats field %s" k)
      in
      Alcotest.(check int) "inflight" 1 (int_field "inflight");
      Alcotest.(check int) "degraded" 1 (int_field "degraded");
      Alcotest.(check int) "timeouts" 1 (int_field "timeouts")

(* ----------------------------------------------------------------- *)
(* The daemon, end to end *)

let test_server_ping_stats_shutdown () =
  with_server "ctl" @@ fun socket t ->
  (match Client.connect ~socket () with
  | Error m -> Alcotest.fail (str "connect: %s" m)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.ping c with
          | Ok () -> ()
          | Error m -> Alcotest.fail (str "ping: %s" m));
          (match Client.stats c with
          | Ok json ->
              Alcotest.(check bool) "stats is json" true
                (Result.is_ok (Fhe_check.Benchjson.parse json))
          | Error m -> Alcotest.fail (str "stats: %s" m));
          match Client.shutdown_server c with
          | Ok () -> ()
          | Error m -> Alcotest.fail (str "shutdown: %s" m)));
  (* the acceptor notices promptly *)
  let deadline = Unix.gettimeofday () +. 5. in
  while Server.running t && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check bool) "server stopped" false (Server.running t)

(* the five named strategies plus portfolio mode: 8 apps x 6 selectors
   of served-vs-local byte parity *)
let compilers =
  [ "eva"; "hecate"; "reserve-ba"; "reserve-ra"; "reserve-full"; "portfolio" ]

let test_served_equals_local_all_apps () =
  (* the Lenet requests stream ~17 MiB through the socket while the
     co-process client is GC-heavy; the short harness read timeout
     would misread a long GC pause as a slow-loris stall *)
  with_server ~capacity:8 ~read_timeout_ms:10_000 "parity" @@ fun socket _t ->
  List.iter
    (fun (a : Reg.app) ->
      List.iter
        (fun compiler ->
          let req = app_request ~compiler a.Reg.name in
          let served =
            match Client.connect ~timeout_ms:120_000 ~socket () with
            | Error m ->
                Alcotest.fail (str "%s/%s: connect: %s" a.Reg.name compiler m)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    match Client.compile c req with
                    | Ok r -> r
                    | Error m ->
                        Alcotest.fail
                          (str "%s/%s: transport: %s" a.Reg.name compiler m))
          in
          let local = Server.compile_one Admission.Normal req in
          match (served, local) with
          | Proto.Compiled s, Proto.Compiled l ->
              Alcotest.(check string)
                (str "%s/%s: engine" a.Reg.name compiler)
                l.Proto.engine s.Proto.engine;
              Alcotest.(check string)
                (str "%s/%s: served = local, byte-identical" a.Reg.name
                   compiler)
                (managed_bytes l.Proto.managed)
                (managed_bytes s.Proto.managed)
          | r, l ->
              Alcotest.fail
                (str "%s/%s: served %s, local %s" a.Reg.name compiler
                   (Proto.reply_name r) (Proto.reply_name l)))
        compilers)
    Reg.all

let test_server_survives_garbage_frames () =
  with_server "garbage" @@ fun socket _t ->
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      (* a well-framed but undecodable payload: the server must answer
         Bad_request and keep the connection aligned *)
      let typ_compile, _ =
        Proto.encode_request (Proto.Compile (app_request "SF"))
      in
      (match Proto.write_frame fd ~typ:typ_compile "junk payload" with
      | Ok () -> ()
      | Error m -> Alcotest.fail (str "write: %s" m));
      (match Proto.read_frame fd with
      | Ok (_version, typ, payload) -> (
          match Proto.decode_reply ~typ payload with
          | Ok (Proto.Bad_request _) -> ()
          | Ok r ->
              Alcotest.fail
                (str "expected bad-request, got %s" (Proto.reply_name r))
          | Error m -> Alcotest.fail (str "undecodable reply: %s" m))
      | Error e ->
          Alcotest.fail
            (Format.asprintf "no reply to garbage: %a" Proto.pp_read_error e));
      (* an unknown frame type likewise *)
      (match Proto.write_frame fd ~typ:42 "" with
      | Ok () -> ()
      | Error m -> Alcotest.fail (str "write: %s" m));
      (match Proto.read_frame fd with
      | Ok (_version, typ, payload) -> (
          match Proto.decode_reply ~typ payload with
          | Ok (Proto.Bad_request _) -> ()
          | Ok r ->
              Alcotest.fail
                (str "expected bad-request, got %s" (Proto.reply_name r))
          | Error m -> Alcotest.fail (str "undecodable reply: %s" m))
      | Error e ->
          Alcotest.fail
            (Format.asprintf "no reply to unknown type: %a" Proto.pp_read_error
               e));
      (* and the connection still serves a clean ping *)
      let ping_typ, ping_payload = Proto.encode_request Proto.Ping in
      (match Proto.write_frame fd ~typ:ping_typ ping_payload with
      | Ok () -> ()
      | Error m -> Alcotest.fail (str "write: %s" m));
      match Proto.read_frame fd with
      | Ok (_version, typ, payload) -> (
          match Proto.decode_reply ~typ payload with
          | Ok Proto.Pong -> ()
          | Ok r -> Alcotest.fail (str "expected pong, got %s" (Proto.reply_name r))
          | Error m -> Alcotest.fail (str "undecodable pong: %s" m))
      | Error e ->
          Alcotest.fail
            (Format.asprintf "connection lost after garbage: %a"
               Proto.pp_read_error e))

let test_server_fault_matrix () =
  with_server ~read_timeout_ms:150 "faults" @@ fun socket t ->
  let req = app_request ~tenant:"faulted" "SF" in
  let typ, payload = Proto.encode_request (Proto.Compile req) in
  let base = Proto.frame ~typ payload in
  let len = String.length base in
  List.iter
    (fun cls ->
      for seed = 0 to 7 do
        let plan = Faults.wire_plan cls ~seed ~len in
        let bytes = Faults.wire_apply plan base in
        let conduct =
          match plan with
          | Faults.Stall { delay_ms; _ } -> `Stall delay_ms
          | Faults.Disconnect _ -> `Close
          | Faults.Truncate _ | Faults.Flip_bit _ -> `Read_reply
        in
        (match Client.raw ~socket ~bytes conduct with
        | Error m ->
            Alcotest.fail
              (str "%s seed %d: connect failed: %s" (Faults.wire_name cls)
                 seed m)
        | Ok (`Reply r) ->
            (* any structured reply is acceptable; what is not is a
               crash, a hang, or an undecodable answer *)
            Alcotest.(check bool)
              (str "%s seed %d: structured reply %s" (Faults.wire_name cls)
                 seed (Proto.reply_name r))
              true
              (String.length (Proto.reply_name r) > 0)
        | Ok (`No_reply _) | Ok `Closed | Ok (`Send_failed _) -> ());
        Alcotest.(check bool)
          (str "%s seed %d: server alive" (Faults.wire_name cls) seed)
          true (Server.running t)
      done)
    Faults.wire_all;
  (* zero wrong answers: after the whole matrix a clean request still
     compiles, byte-identical to the local dispatch *)
  match Client.connect ~socket () with
  | Error m -> Alcotest.fail (str "post-matrix connect: %s" m)
  | Ok c -> (
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.ping c with
          | Ok () -> ()
          | Error m -> Alcotest.fail (str "post-matrix ping: %s" m));
          match (Client.compile c req, Server.compile_one Admission.Normal req) with
          | Ok (Proto.Compiled s), Proto.Compiled l ->
              Alcotest.(check string) "post-matrix compile byte-identical"
                (managed_bytes l.Proto.managed)
                (managed_bytes s.Proto.managed)
          | Ok r, _ ->
              Alcotest.fail
                (str "post-matrix compile: %s" (Proto.reply_name r))
          | Error m, _ -> Alcotest.fail (str "post-matrix transport: %s" m)))

let test_server_sheds_at_capacity () =
  with_server ~capacity:1 ~degrade_at:1 "shed" @@ fun socket t ->
  (* hold the single slot with a deliberately slow compile: MR under
     hecate's full search runs >1 s cold; its deadline bounds the hold
     (a timed-out holder releases the slot, which is equally fine) *)
  let slow =
    app_request ~tenant:"slow" ~compiler:"hecate" ~iterations:0
      ~deadline_ms:3000 "MR"
  in
  let slow_reply = ref None in
  let holder =
    Thread.create
      (fun () ->
        match Client.connect ~timeout_ms:60_000 ~socket () with
        | Error m -> slow_reply := Some (Error m)
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> slow_reply := Some (Client.compile c slow)))
      ()
  in
  Thread.delay 0.25;
  (match Client.connect ~socket () with
  | Error m -> Alcotest.fail (str "connect: %s" m)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.compile c (app_request ~compiler:"eva" "SF") with
          | Ok (Proto.Shed { retry_after_ms; _ }) ->
              Alcotest.(check bool) "retry_after_ms positive" true
                (retry_after_ms > 0)
          | Ok r ->
              Alcotest.fail
                (str "expected shed at capacity, got %s" (Proto.reply_name r))
          | Error m -> Alcotest.fail (str "transport: %s" m)));
  Thread.join holder;
  (match !slow_reply with
  | Some (Ok (Proto.Compiled _)) | Some (Ok (Proto.Timed_out _)) -> ()
  | Some (Ok r) ->
      Alcotest.fail (str "slot holder got %s" (Proto.reply_name r))
  | Some (Error m) -> Alcotest.fail (str "slot holder transport: %s" m)
  | None -> Alcotest.fail "slot holder never finished");
  let s = Server.stats t in
  Alcotest.(check bool) "shed counted" true (s.Admission.shed >= 1)

let test_server_deadline_timeout () =
  with_server ~read_timeout_ms:10_000 "deadline" @@ fun socket t ->
  (* Lenet-5 under reserve-full runs hundreds of ms cold; a 1 ms budget
     must come back as a structured timeout, not a hang or a crash *)
  let req = app_request ~tenant:"tmo" ~deadline_ms:1 "Lenet-5" in
  (match Client.connect ~timeout_ms:30_000 ~socket () with
  | Error m -> Alcotest.fail (str "connect: %s" m)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.compile c req with
          | Ok (Proto.Timed_out msg) ->
              Alcotest.(check bool) "diag mentions the budget" true
                (contains_sub ~sub:"deadline" msg)
          | Ok r ->
              Alcotest.fail
                (str "expected timeout, got %s" (Proto.reply_name r))
          | Error m -> Alcotest.fail (str "transport: %s" m)));
  let s = Server.stats t in
  Alcotest.(check bool) "timeout counted" true (s.Admission.timeouts >= 1)

let test_degradation_policy () =
  fresh_cache ();
  (* wbits 62 > rbits 60 cannot compile strictly (and cannot arrive on
     the wire: decode rejects it) — locally it proves the policy: the
     strict path fails, the pressured path degrades the waterline *)
  let req =
    { (app_request "SF") with Proto.rbits = 60; wbits = 62; oracle = true }
  in
  (match Server.compile_one Admission.Normal req with
  | Proto.Failed diags ->
      Alcotest.(check bool) "strict failure carries diagnostics" true
        (diags <> [])
  | r ->
      Alcotest.fail
        (str "strict over-waterline: expected failed, got %s"
           (Proto.reply_name r)));
  (match Server.compile_one Admission.Pressured req with
  | Proto.Degraded d ->
      Alcotest.(check bool) "waterline degraded" true
        (d.Proto.wbits_used < req.Proto.wbits);
      Alcotest.(check bool) "degradation is explained" true
        (d.Proto.warnings <> [])
  | r ->
      Alcotest.fail
        (str "pressured over-waterline: expected degraded, got %s"
           (Proto.reply_name r)));
  match
    Server.compile_one Admission.Normal
      { req with Proto.allow_fallback = true }
  with
  | Proto.Degraded _ -> ()
  | r ->
      Alcotest.fail
        (str "allow_fallback: expected degraded, got %s" (Proto.reply_name r))

let test_tenant_namespacing () =
  fresh_cache ();
  let req tenant = app_request ~tenant "HCD" in
  let bytes_of = function
    | Proto.Compiled c -> managed_bytes c.Proto.managed
    | r -> Alcotest.fail (str "expected ok, got %s" (Proto.reply_name r))
  in
  let a1 = bytes_of (Server.compile_one Admission.Normal (req "alpha")) in
  let s1 = Store.stats () in
  (* a different tenant must not see alpha's entry: its compile is a
     fresh miss *)
  let b1 = bytes_of (Server.compile_one Admission.Normal (req "beta")) in
  let s2 = Store.stats () in
  Alcotest.(check bool) "beta missed" true (s2.Store.misses > s1.Store.misses);
  (* alpha again is served from its own namespace *)
  let a2 = bytes_of (Server.compile_one Admission.Normal (req "alpha")) in
  let s3 = Store.stats () in
  Alcotest.(check bool) "alpha hit" true (s3.Store.hits > s2.Store.hits);
  Alcotest.(check string) "alpha stable across the hit" a1 a2;
  Alcotest.(check string) "tenants compute the same plan" a1 b1;
  Alcotest.(check (option string)) "namespace restored" None (Store.namespace ())

let test_restart_recovery_sweep () =
  let dir = str "_serve_sweep_%d" (Unix.getpid ()) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let plant name =
        let oc = open_out_bin (Filename.concat dir name) in
        output_string oc "orphaned partial write";
        close_out oc
      in
      plant "aaaa.bin.tmp.1234.0";
      plant "bbbb.bin.tmp.99.3";
      plant "legit-entry.bin";
      Alcotest.(check int) "sweep removes exactly the orphans" 2
        (Fhe_cache.Disk.sweep ~dir);
      Alcotest.(check bool) "real entries survive" true
        (Sys.file_exists (Filename.concat dir "legit-entry.bin"));
      (* the store runs the same sweep on open — the daemon's startup
         path — and counts it *)
      plant "cccc.bin.tmp.42.1";
      fresh_cache ();
      Store.set_dir (Some dir);
      let s = Store.stats () in
      Alcotest.(check int) "store open swept the orphan" 1 s.Store.swept;
      Store.set_dir None)

let test_client_retry_immediate_ok () =
  with_server "retry-ok" @@ fun socket _t ->
  match
    Client.compile_retry ~socket (app_request ~compiler:"eva" "SF")
  with
  | Ok (Proto.Compiled _, log) ->
      Alcotest.(check int) "one attempt" 1 log.Client.attempts;
      Alcotest.(check int) "no sheds" 0 log.Client.sheds;
      Alcotest.(check int) "no transport errors" 0 log.Client.transport_errors
  | Ok (r, _) -> Alcotest.fail (str "expected ok, got %s" (Proto.reply_name r))
  | Error m -> Alcotest.fail (str "retry failed: %s" m)

let test_client_retry_dead_socket () =
  let socket = sock "nobody-home" in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  match
    Client.compile_retry ~attempts:3 ~base_delay_ms:1. ~socket
      (app_request ~compiler:"eva" "SF")
  with
  | Error _ -> ()
  | Ok (r, _) ->
      Alcotest.fail
        (str "dead socket produced a reply: %s" (Proto.reply_name r))

let test_client_retry_rides_out_shed () =
  with_server ~capacity:1 ~degrade_at:1 "retry-shed" @@ fun socket _t ->
  (* the holder's deadline bounds how long the slot stays taken, so
     the retrying client is guaranteed both some sheds and an eventual
     success inside its attempt budget *)
  let slow =
    app_request ~tenant:"slow" ~compiler:"hecate" ~iterations:0
      ~deadline_ms:1200 "MR"
  in
  let holder =
    Thread.create
      (fun () ->
        match Client.connect ~timeout_ms:60_000 ~socket () with
        | Error _ -> ()
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> ignore (Client.compile c slow)))
      ()
  in
  Thread.delay 0.15;
  (* generous attempt budget: on a loaded 1-core host the holder's
     compile (and the server's deadline bookkeeping) time-dilates, and
     the early exponential-backoff attempts can all land inside the
     hold window *)
  let result =
    Client.compile_retry ~attempts:14 ~base_delay_ms:100. ~socket
      (app_request ~compiler:"eva" "SF")
  in
  Thread.join holder;
  match result with
  | Ok (Proto.Compiled _, log) ->
      Alcotest.(check bool)
        (str "shed at least once (%d sheds, %d attempts)" log.Client.sheds
           log.Client.attempts)
        true
        (log.Client.sheds >= 1);
      Alcotest.(check bool) "then retried through" true (log.Client.attempts >= 2)
  | Ok (r, _) -> Alcotest.fail (str "expected ok, got %s" (Proto.reply_name r))
  | Error m -> Alcotest.fail (str "retry failed: %s" m)

let test_loadgen_smoke () =
  with_server "loadgen" @@ fun socket _t ->
  let req = app_request ~compiler:"eva" "SF" in
  let s = Loadgen.run ~socket ~threads:2 ~per_thread:3 ~make_request:(fun _ -> req) () in
  Alcotest.(check int) "all requests issued" 6 s.Loadgen.requests;
  Alcotest.(check int) "all ok" 6 s.Loadgen.ok;
  Alcotest.(check int) "no transport failures" 0 s.Loadgen.transport;
  Alcotest.(check bool) "qps measured" true (s.Loadgen.qps > 0.);
  Alcotest.(check bool) "p99 >= p50 >= 0" true
    (s.Loadgen.p99_ms >= s.Loadgen.p50_ms && s.Loadgen.p50_ms >= 0.)

(* ----------------------------------------------------------------- *)

let () =
  fresh_cache ();
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "serve"
    [
      ( "wire",
        [
          t "binary round trip, 500 programs" test_wire_binary_round_trip_500;
          t "text round trip, 500 programs" test_wire_text_round_trip_500;
          t "managed round trip" test_wire_managed_round_trip;
          t "golden: textual encoding pinned" test_wire_golden_text;
          t "golden: binary encoding pinned" test_wire_golden_binary;
          t "hostile: every truncation rejected" test_wire_hostile_truncations;
          t "hostile: bit flips never raise" test_wire_hostile_bit_flips;
          t "hostile: corrupt text never raises" test_wire_hostile_text;
        ] );
      ( "protocol",
        [
          t "request round trip" test_protocol_request_round_trip;
          t "reply round trip" test_protocol_reply_round_trip;
          t "hostile payloads never raise" test_protocol_hostile_payloads;
          t "out-of-range configs rejected" test_protocol_rejects_bad_ranges;
          t "framing over a real fd" test_protocol_framing_over_fd;
        ] );
      ( "admission",
        [
          t "normal / pressured / shed thresholds" test_admission_thresholds;
          t "stats json" test_admission_stats_json;
        ] );
      ( "daemon",
        [
          t "ping, stats, shutdown" test_server_ping_stats_shutdown;
          t "served = local, 8 apps x 5 compilers"
            test_served_equals_local_all_apps;
          t "garbage frames keep the connection" test_server_survives_garbage_frames;
          t "seeded wire-fault matrix" test_server_fault_matrix;
          t "sheds at capacity" test_server_sheds_at_capacity;
          t "deadline budget times out" test_server_deadline_timeout;
          t "degradation policy" test_degradation_policy;
          t "tenant cache isolation" test_tenant_namespacing;
          t "restart recovery sweeps orphans" test_restart_recovery_sweep;
        ] );
      ( "client",
        [
          t "retry: immediate success" test_client_retry_immediate_ok;
          t "retry: dead socket exhausts attempts" test_client_retry_dead_socket;
          t "retry: rides out shedding" test_client_retry_rides_out_shed;
          t "loadgen smoke" test_loadgen_smoke;
        ] );
    ]
