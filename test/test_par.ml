(* Tests for the multicore engine (lib/par) and the parallel drivers
   built on it.

   The load-bearing property throughout: a parallel run is
   *byte-identical* to a sequential one.  Pool.map returns results in
   submission order, per-item PRNG streams are split from the seed up
   front, and every driver folds its results sequentially — so the
   tests here compare whole rendered reports across pool widths, not
   just summary counters. *)

module Pool = Fhe_par.Pool
module Chunk = Fhe_par.Chunk
module Prng = Fhe_util.Prng
module Timer = Fhe_util.Timer
module Conformance = Fhe_check.Conformance
module Differential = Fhe_check.Differential
module Fuzzdriver = Fhe_check.Fuzzdriver
module Progen = Fhe_sim.Progen

let str = Format.asprintf

(* ----------------------------------------------------------------- *)
(* Pool                                                               *)

let test_pool_ordered_results () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let xs = List.init 200 (fun i -> i) in
          let got = Pool.map pool (fun i -> i * i) xs in
          Alcotest.(check (list int))
            (str "squares in submission order at width %d" domains)
            (List.map (fun i -> i * i) xs)
            got))
    [ 1; 2; 4 ]

let test_pool_exception_propagation () =
  Pool.with_pool ~domains:4 (fun pool ->
      let ran = Atomic.make 0 in
      let f i =
        Atomic.incr ran;
        if i = 7 || i = 13 then failwith (Printf.sprintf "boom-%d" i);
        i
      in
      (match Pool.map pool f (List.init 20 (fun i -> i)) with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg ->
          (* two tasks fail; the lowest submission index wins,
             whatever order the domains ran them in *)
          Alcotest.(check string) "lowest-indexed failure" "boom-7" msg);
      Alcotest.(check int) "every task still ran" 20 (Atomic.get ran))

let test_pool_nested_use_rejected () =
  Pool.with_pool ~domains:2 (fun pool ->
      let saw =
        Pool.map pool
          (fun () ->
            match Pool.map pool (fun x -> x) [ 1; 2; 3 ] with
            | _ -> false
            | exception Invalid_argument _ -> true)
          [ (); () ]
      in
      Alcotest.(check (list bool))
        "map inside a task raises Invalid_argument" [ true; true ] saw)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check (list int))
    "pool works before shutdown" [ 2; 4 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.map pool (fun x -> x) [ 1 ] with
  | _ -> Alcotest.fail "map after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_pool_iter_runs_everything () =
  Pool.with_pool ~domains:4 (fun pool ->
      let sum = Atomic.make 0 in
      Pool.iter pool (fun i -> ignore (Atomic.fetch_and_add sum i))
        (List.init 100 (fun i -> i));
      Alcotest.(check int) "iter visited every element" 4950 (Atomic.get sum))

let test_pool_width_one_stays_in_caller () =
  Pool.with_pool ~domains:1 (fun pool ->
      let self = Domain.self () in
      let where = Pool.map pool (fun () -> Domain.self ()) [ (); (); () ] in
      Alcotest.(check bool)
        "width 1 spawns no domains: tasks run in the caller" true
        (List.for_all (fun d -> d = self) where))

let test_pool_invalid_width () =
  match Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains:0 should be rejected"
  | exception Invalid_argument _ -> ()

(* ----------------------------------------------------------------- *)
(* Chunk                                                              *)

let test_chunk_ranges_balanced () =
  List.iter
    (fun (chunks, n) ->
      let rs = Chunk.ranges ~chunks n in
      let total = List.fold_left (fun acc (_, len) -> acc + len) 0 rs in
      Alcotest.(check int) (str "ranges cover %d/%d" chunks n) n total;
      Alcotest.(check bool)
        "at most [chunks] ranges" true
        (List.length rs <= chunks);
      List.iter
        (fun (_, len) ->
          Alcotest.(check bool) "no empty range" true (len > 0))
        rs;
      (match rs with
      | [] -> Alcotest.(check int) "empty only when n = 0" 0 n
      | (s0, _) :: _ ->
          Alcotest.(check int) "starts at zero" 0 s0;
          ignore
            (List.fold_left
               (fun expected (s, len) ->
                 Alcotest.(check int) "contiguous" expected s;
                 s + len)
               0 rs));
      let lens = List.map snd rs in
      match (lens, List.rev lens) with
      | hi :: _, lo :: _ ->
          Alcotest.(check bool) "balanced within one" true (hi - lo <= 1)
      | _ -> ())
    [ (1, 10); (3, 10); (4, 13); (7, 5); (20, 3); (4, 0); (2, 1) ]

let test_chunk_split_identity () =
  List.iter
    (fun (chunks, n) ->
      let xs = List.init n (fun i -> i * 3) in
      Alcotest.(check (list int))
        (str "concat (split %d) = id over %d" chunks n)
        xs
        (List.concat (Chunk.split ~chunks xs)))
    [ (1, 10); (4, 13); (16, 5); (3, 0) ]

let test_chunk_invalid () =
  match Chunk.ranges ~chunks:0 5 with
  | _ -> Alcotest.fail "chunks:0 should be rejected"
  | exception Invalid_argument _ -> ()

(* ----------------------------------------------------------------- *)
(* Prng.split_n                                                       *)

let draws rng n = List.init n (fun _ -> Prng.next_int64 rng)

let test_split_n_deterministic () =
  let a = Prng.split_n (Prng.create 42) 8 in
  let b = Prng.split_n (Prng.create 42) 8 in
  Array.iteri
    (fun i sa ->
      Alcotest.(check bool)
        (str "stream %d reproducible from the seed" i)
        true
        (draws sa 16 = draws b.(i) 16))
    a

let test_split_n_streams_independent () =
  let streams = Prng.split_n (Prng.create 7) 6 in
  let firsts = Array.map (fun s -> Prng.next_int64 s) streams in
  let distinct =
    List.sort_uniq compare (Array.to_list firsts) |> List.length
  in
  Alcotest.(check int) "streams start differently" 6 distinct

let test_split_n_matches_sequential_splits () =
  (* split_n is by definition n sequential splits, taken before any
     work runs — the property that makes parallel generation
     scheduling-independent *)
  let root1 = Prng.create 99 and root2 = Prng.create 99 in
  let batch = Prng.split_n root1 4 in
  let seq = Array.init 4 (fun _ -> Prng.split root2) in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool) (str "stream %d" i) true
        (draws s 8 = draws seq.(i) 8))
    batch;
  Alcotest.(check bool) "parent state advanced identically" true
    (draws root1 4 = draws root2 4)

(* ----------------------------------------------------------------- *)
(* Timer (monotonic clock)                                            *)

let test_timer_elapsed_non_negative () =
  for _ = 1 to 1000 do
    let ms = Timer.time_ms (fun () -> ()) in
    if ms < 0.0 then
      Alcotest.failf "monotonic elapsed time went negative: %f ms" ms
  done

let test_timer_now_monotone () =
  let prev = ref (Timer.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Timer.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "now_ns stepped backwards: %Ld -> %Ld" !prev t;
    prev := t
  done

let test_timer_measures_work () =
  let r, ms = Timer.time (fun () -> Array.init 100_000 float_of_int) in
  Alcotest.(check int) "result threaded through" 100_000 (Array.length r);
  Alcotest.(check bool) "elapsed is finite and non-negative" true
    (Float.is_finite ms && ms >= 0.0)

(* ----------------------------------------------------------------- *)
(* Pipeline.compile_batch                                             *)

let fingerprint (m : Fhe_ir.Managed.t) =
  ( Fhe_ir.Program.ops m.Fhe_ir.Managed.prog,
    Fhe_ir.Program.outputs m.Fhe_ir.Managed.prog,
    m.Fhe_ir.Managed.scale,
    m.Fhe_ir.Managed.level )

let test_compile_batch_matches_sequential () =
  let progs =
    List.init 6 (fun i -> (Progen.make ~size:20 (100 + i)).Progen.prog)
  in
  let seq =
    Reserve.Pipeline.compile_batch ~rbits:60 ~wbits:30 progs
  in
  let par =
    Pool.with_pool ~domains:4 (fun pool ->
        Reserve.Pipeline.compile_batch ~pool ~rbits:60 ~wbits:30 progs)
  in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ok ma, Ok mb ->
          Alcotest.(check bool) "same managed program" true
            (fingerprint ma = fingerprint mb)
      | Error ea, Error eb -> Alcotest.(check string) "same error" ea eb
      | _ -> Alcotest.fail "sequential and parallel disagree on success")
    seq par;
  List.iter
    (function
      | Ok _ -> ()
      | Error e -> Alcotest.failf "batch compilation failed: %s" e)
    seq

(* ----------------------------------------------------------------- *)
(* Determinism: the conformance sweep across pool widths              *)

let render_summary (s : Conformance.summary) progress_lines =
  str "%a@\n--@\n%s" Conformance.pp s (String.concat "\n" progress_lines)

let conformance_report ?pool ~seed () =
  let lines = ref [] in
  let s =
    Conformance.run ?pool ~apps:false ~gen:50 ~seed
      ~progress:(fun l -> lines := l :: !lines)
      ()
  in
  render_summary s (List.rev !lines)

let test_conformance_byte_identical_across_widths () =
  List.iter
    (fun seed ->
      let sequential = conformance_report ~seed () in
      let parallel =
        Pool.with_pool ~domains:4 (fun pool ->
            conformance_report ~pool ~seed ())
      in
      Alcotest.(check string)
        (str "seed %d: report and progress identical at widths 1 and 4" seed)
        sequential parallel)
    [ 1; 2; 3 ]

(* ----------------------------------------------------------------- *)
(* Determinism: the differential driver on a pool                     *)

let entry_shape (e : Differential.entry) =
  ( Differential.compiler_name e.Differential.compiler,
    e.Differential.input_level,
    e.Differential.modulus_bits,
    e.Differential.est_latency_us,
    e.Differential.validator_errors,
    List.length e.Differential.lemma_violations,
    (match e.Differential.oracle with
    | Some o -> Some (Fhe_check.Oracle.ok o)
    | None -> None),
    e.Differential.crash )

let fst8 (x, _, _, _, _, _, _, _) = x

let test_differential_pool_matches_sequential () =
  let g = Progen.make ~size:30 5 in
  let seq =
    Differential.run ~label:"par-test" g.Progen.prog ~inputs:g.Progen.inputs
  in
  let par =
    Pool.with_pool ~domains:4 (fun pool ->
        Differential.run ~pool ~label:"par-test" g.Progen.prog
          ~inputs:g.Progen.inputs)
  in
  Alcotest.(check bool) "sequential run is clean" true (Differential.ok seq);
  Alcotest.(check bool) "parallel run is clean" true (Differential.ok par);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (str "entry %s identical" (fst8 (entry_shape a)))
        true
        (entry_shape a = entry_shape b))
    seq.Differential.entries par.Differential.entries

(* ----------------------------------------------------------------- *)
(* Stress: parallel fuzz under fault injection                        *)

let fuzz_shape (s : Fuzzdriver.stats) =
  ( s.Fuzzdriver.ok, s.Fuzzdriver.fellback, s.Fuzzdriver.failed,
    s.Fuzzdriver.crashed,
    Array.to_list s.Fuzzdriver.injected,
    Array.to_list s.Fuzzdriver.detected,
    Array.to_list s.Fuzzdriver.missed,
    Array.to_list s.Fuzzdriver.nosite,
    s.Fuzzdriver.crash_msgs )

let test_fuzz_parallel_matches_sequential () =
  let seq = Fuzzdriver.run ~seeds:80 () in
  let par =
    Pool.with_pool ~domains:4 (fun pool ->
        Fuzzdriver.run ~pool ~seeds:80 ())
  in
  (* no injected fault may escape the pool as a crash… *)
  Alcotest.(check int) "sequential: no crashes" 0 seq.Fuzzdriver.crashed;
  Alcotest.(check int) "parallel: no crashes" 0 par.Fuzzdriver.crashed;
  (match Fuzzdriver.verdict par with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* …and the diagnostic set must equal the sequential run's *)
  Alcotest.(check bool) "identical stats" true (fuzz_shape seq = fuzz_shape par);
  Alcotest.(check string) "identical rendered report"
    (str "%a" Fuzzdriver.pp seq)
    (str "%a" Fuzzdriver.pp par)

let test_fuzz_report_is_byte_stable_across_widths () =
  let reports =
    List.map
      (fun domains ->
        if domains = 1 then str "%a" Fuzzdriver.pp (Fuzzdriver.run ~seeds:40 ())
        else
          Pool.with_pool ~domains (fun pool ->
              str "%a" Fuzzdriver.pp (Fuzzdriver.run ~pool ~seeds:40 ())))
      [ 1; 2; 4 ]
  in
  match reports with
  | r1 :: rest ->
      List.iter
        (fun r -> Alcotest.(check string) "width-independent report" r1 r)
        rest
  | [] -> assert false

(* ----------------------------------------------------------------- *)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "par"
    [
      ( "pool",
        [
          t "ordered results at widths 1/2/4" test_pool_ordered_results;
          t "exception propagation" test_pool_exception_propagation;
          t "nested use rejected" test_pool_nested_use_rejected;
          t "shutdown idempotent" test_pool_shutdown_idempotent;
          t "iter runs everything" test_pool_iter_runs_everything;
          t "width 1 stays in caller" test_pool_width_one_stays_in_caller;
          t "invalid width rejected" test_pool_invalid_width;
        ] );
      ( "chunk",
        [
          t "ranges balanced" test_chunk_ranges_balanced;
          t "split/concat identity" test_chunk_split_identity;
          t "invalid chunks rejected" test_chunk_invalid;
        ] );
      ( "prng",
        [
          t "split_n deterministic" test_split_n_deterministic;
          t "streams independent" test_split_n_streams_independent;
          t "matches sequential splits" test_split_n_matches_sequential_splits;
        ] );
      ( "timer",
        [
          t "elapsed non-negative" test_timer_elapsed_non_negative;
          t "now_ns monotone" test_timer_now_monotone;
          t "measures work" test_timer_measures_work;
        ] );
      ( "compile-batch",
        [ t "parallel = sequential" test_compile_batch_matches_sequential ] );
      ( "determinism",
        [
          t "conformance byte-identical (3 seeds)"
            test_conformance_byte_identical_across_widths;
          t "differential pool = sequential"
            test_differential_pool_matches_sequential;
        ] );
      ( "stress",
        [
          t "fuzz+faults parallel = sequential"
            test_fuzz_parallel_matches_sequential;
          t "fuzz report byte-stable at widths 1/2/4"
            test_fuzz_report_is_byte_stable_across_widths;
        ] );
    ]
