(* The number-theoretic substrate: modular arithmetic, primes, NTT,
   bignum CRT, and the canonical-embedding FFT. *)

module M = Ckks.Modarith

let p17 = 268441601 (* an NTT prime used by the default context *)

let prop_modarith_matches_naive =
  QCheck.Test.make ~name:"modarith add/sub/mul match naive formulas" ~count:500
    QCheck.(triple (int_range 0 1000000) (int_range 0 1000000) (int_range 2 1000))
    (fun (a, b, m) ->
      let a = a mod m and b = b mod m in
      M.add a b ~m = (a + b) mod m
      && M.sub a b ~m = ((a - b) mod m + m) mod m
      && M.mul a b ~m = a * b mod m
      && M.neg a ~m = (m - a) mod m)

let test_pow_inv () =
  Alcotest.(check int) "2^10 mod 1000" 24 (M.pow 2 10 ~m:1000);
  Alcotest.(check int) "pow 0" 1 (M.pow 5 0 ~m:7);
  let x = 123456 in
  Alcotest.(check int) "x * x^-1 = 1" 1 (M.mul x (M.inv x ~m:p17) ~m:p17);
  try
    ignore (M.inv 0 ~m:7);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_center () =
  Alcotest.(check int) "small" 3 (M.center 3 ~m:7);
  Alcotest.(check int) "wraps" (-3) (M.center 4 ~m:7)

let test_is_prime () =
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool) (string_of_int n) expect (Ckks.Primes.is_prime n))
    [ (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *);
      (7919, true); (1, false); (0, false); (p17, true);
      (268441603, false) ]

let test_prime_chain () =
  let ps = Ckks.Primes.ntt_prime_chain ~n:1024 ~bits:28 ~count:5 in
  Alcotest.(check int) "count" 5 (List.length ps);
  List.iter
    (fun p ->
      Alcotest.(check bool) "prime" true (Ckks.Primes.is_prime p);
      Alcotest.(check int) "p = 1 mod 2n" 1 (p mod 2048);
      Alcotest.(check bool) "near 2^28" true
        (Float.abs (float_of_int p /. 268435456.0 -. 1.0) < 0.01))
    ps;
  Alcotest.(check int) "distinct"
    (List.length ps)
    (List.length (List.sort_uniq compare ps))

let test_primitive_root () =
  let r = Ckks.Primes.primitive_root ~p:p17 ~two_n:2048 in
  Alcotest.(check int) "order exactly 2n: r^n = -1" (p17 - 1)
    (M.pow r 1024 ~m:p17);
  Alcotest.(check int) "r^2n = 1" 1 (M.pow r 2048 ~m:p17)

let plan = lazy (Ckks.Ntt.make_plan ~n:64 ~p:7681)
(* 7681 = 1 + 2*64*60, classic toy NTT prime *)

let prop_shoup_barrett_match_naive =
  QCheck.Test.make ~name:"Shoup/Barrett reductions match plain mod" ~count:500
    QCheck.(pair (int_range 0 (p17 - 1)) (int_range 0 (p17 - 1)))
    (fun (a, w) ->
      let wp = M.shoup w ~m:p17 in
      let br = M.Barrett.make p17 in
      M.mul_shoup a w wp ~m:p17 = a * w mod p17
      && M.Barrett.mul br a w = a * w mod p17
      && M.Barrett.reduce br (a * w) = a * w mod p17
      &&
      (* the lazy variant is congruent and stays below 2p for lazy
         inputs (a < 2p) *)
      let al = a + p17 in
      let r = M.mul_shoup_lazy al w wp ~m:p17 in
      r >= 0 && r < 2 * p17 && r mod p17 = al * w mod p17)

let prop_ntt_roundtrip =
  QCheck.Test.make ~name:"NTT inverse . forward = id" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let plan = Lazy.force plan in
      let g = Fhe_util.Prng.create seed in
      let a = Array.init 64 (fun _ -> Fhe_util.Prng.int g 7681) in
      let b = Ckks.Rvec.of_array a in
      Ckks.Ntt.forward plan b;
      Ckks.Ntt.inverse plan b;
      a = Ckks.Rvec.to_array b)

(* schoolbook negacyclic product for cross-checking *)
let negacyclic_mul a b ~n ~p =
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let k = i + j in
      let v = M.mul a.(i) b.(j) ~m:p in
      if k < n then out.(k) <- M.add out.(k) v ~m:p
      else out.(k - n) <- M.sub out.(k - n) v ~m:p
    done
  done;
  out

let prop_ntt_negacyclic =
  QCheck.Test.make ~name:"NTT pointwise product = negacyclic convolution"
    ~count:50 QCheck.small_int (fun seed ->
      let plan = Lazy.force plan in
      let g = Fhe_util.Prng.create (seed + 1000) in
      let a = Array.init 64 (fun _ -> Fhe_util.Prng.int g 7681) in
      let b = Array.init 64 (fun _ -> Fhe_util.Prng.int g 7681) in
      let expect = negacyclic_mul a b ~n:64 ~p:7681 in
      let fa = Ckks.Rvec.of_array a and fb = Ckks.Rvec.of_array b in
      Ckks.Ntt.forward plan fa;
      Ckks.Ntt.forward plan fb;
      let fc =
        Ckks.Rvec.of_array
          (Array.init 64 (fun i ->
               M.mul (Ckks.Rvec.get fa i) (Ckks.Rvec.get fb i) ~m:7681))
      in
      Ckks.Ntt.inverse plan fc;
      Ckks.Rvec.to_array fc = expect)

module B = Ckks.Bigint

let prop_bigint_matches_int =
  QCheck.Test.make ~name:"bigint arithmetic matches int (small values)"
    ~count:300
    QCheck.(triple (int_range 0 1000000000) (int_range 0 1000000000) (int_range 1 100000))
    (fun (a, b, k) ->
      let ba = B.of_int a and bb = B.of_int b in
      B.to_float (B.add ba bb) = float_of_int (a + b)
      && B.to_float (B.mul_small ba k) = float_of_int (a * k)
      && B.compare ba bb = compare a b
      &&
      let q, r = B.divmod_small ba k in
      B.to_float q = float_of_int (a / k) && r = a mod k)

let test_bigint_sub () =
  let a = B.of_int 1000000 and b = B.of_int 999999 in
  Alcotest.(check (float 0.0)) "sub" 1.0 (B.to_float (B.sub a b));
  try
    ignore (B.sub b a);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_bigint_product_big () =
  (* product of five 28-bit primes exceeds the int range: check via mod *)
  let ps = Ckks.Primes.ntt_prime_chain ~n:256 ~bits:28 ~count:5 in
  let q = B.product ps in
  List.iter
    (fun p ->
      let _, r = B.divmod_small q p in
      Alcotest.(check int) "divisible by each prime" 0 r)
    ps;
  let expect_bits =
    List.fold_left (fun acc p -> acc +. Fhe_util.Bits.log2f (float_of_int p)) 0.0 ps
  in
  Alcotest.(check (float 0.01)) "magnitude"
    expect_bits
    (Fhe_util.Bits.log2f (B.to_float q))

let test_bigint_zero () =
  Alcotest.(check (float 0.0)) "zero" 0.0 (B.to_float B.zero);
  Alcotest.(check (float 0.0)) "0 * 5" 0.0 (B.to_float (B.mul_small B.zero 5));
  Alcotest.(check int) "compare" 0 (B.compare B.zero (B.of_int 0))

let fft_plan = lazy (Ckks.Fftc.make_plan ~n:64)

let prop_fft_roundtrip =
  QCheck.Test.make ~name:"canonical-embedding FFT roundtrip" ~count:100
    QCheck.small_int (fun seed ->
      let plan = Lazy.force fft_plan in
      let g = Fhe_util.Prng.create seed in
      let vals =
        Array.init 32 (fun _ ->
            { Complex.re = Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0;
              im = Fhe_util.Prng.uniform g ~lo:(-1.0) ~hi:1.0 })
      in
      let copy = Array.map (fun c -> c) vals in
      Ckks.Fftc.embed_inv plan copy;
      Ckks.Fftc.embed plan copy;
      Array.for_all2
        (fun a b ->
          Complex.norm (Complex.sub a b) < 1e-9)
        vals copy)

let test_fft_real_coefficients () =
  (* conjugate-symmetric slot data must give (numerically) real
     behaviour: encoding real slots and decoding returns real slots *)
  let plan = Lazy.force fft_plan in
  let vals =
    Array.init 32 (fun i -> { Complex.re = cos (float_of_int i); im = 0.0 })
  in
  let w = Array.map (fun c -> c) vals in
  Ckks.Fftc.embed_inv plan w;
  Ckks.Fftc.embed plan w;
  Array.iteri
    (fun i c ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "re %d" i)
        vals.(i).Complex.re c.Complex.re)
    vals

let test_rot_group () =
  let plan = Lazy.force fft_plan in
  let rg = Ckks.Fftc.rot_group plan in
  Alcotest.(check int) "starts at 1" 1 rg.(0);
  Alcotest.(check int) "5^1" 5 rg.(1);
  Array.iter (fun g -> Alcotest.(check int) "odd" 1 (g land 1)) rg

let suite =
  [ QCheck_alcotest.to_alcotest prop_modarith_matches_naive;
    Alcotest.test_case "pow/inv" `Quick test_pow_inv;
    Alcotest.test_case "center" `Quick test_center;
    Alcotest.test_case "primality" `Quick test_is_prime;
    Alcotest.test_case "ntt prime chain" `Quick test_prime_chain;
    Alcotest.test_case "primitive root" `Quick test_primitive_root;
    QCheck_alcotest.to_alcotest prop_shoup_barrett_match_naive;
    QCheck_alcotest.to_alcotest prop_ntt_roundtrip;
    QCheck_alcotest.to_alcotest prop_ntt_negacyclic;
    QCheck_alcotest.to_alcotest prop_bigint_matches_int;
    Alcotest.test_case "bigint: sub" `Quick test_bigint_sub;
    Alcotest.test_case "bigint: large products" `Quick test_bigint_product_big;
    Alcotest.test_case "bigint: zero" `Quick test_bigint_zero;
    QCheck_alcotest.to_alcotest prop_fft_roundtrip;
    Alcotest.test_case "fft: real slot data" `Quick test_fft_real_coefficients;
    Alcotest.test_case "fft: rot group" `Quick test_rot_group ]
