let () =
  Alcotest.run "reserve-fhe"
    [ ("util", Test_util.suite);
      ("ir", Test_ir.suite);
      ("passes", Test_passes.suite);
      ("validator", Test_validator.suite);
      ("cost", Test_cost.suite);
      ("eva", Test_eva.suite);
      ("rtype", Test_rtype.suite);
      ("reserve", Test_reserve.suite);
      ("hecate", Test_hecate.suite);
      ("sim", Test_sim.suite);
      ("apps", Test_apps.suite);
      ("ckks-math", Test_ckks_math.suite);
      ("ckks", Test_ckks.suite);
      ("backend", Test_backend.suite);
      ("extras", Test_extras.suite);
      ("props", Test_props.suite);
      ("resilience", Test_resilience.suite);
      ("edge", Test_edge.suite) ]
