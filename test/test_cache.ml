(* The cache-correctness tier (dune build @cache).

   Two subsystems under test, and the seam between them:
   - lib/ir/Intern: hash-consed op nodes and the content digest the
     cache keys on — structural equality must mean physical identity,
     float payloads must compare bit-exactly (0.0 vs -0.0) except for
     NaN, whose payloads unify;
   - lib/cache: the LRU, the checksummed disk store, and the global
     Store — a warm compile must be byte-identical to a cold one, a
     poisoned entry must be detected and recomputed (never trusted),
     and a shared cache must not perturb parallel determinism. *)

open Fhe_ir
module Store = Fhe_cache.Store
module Reg = Fhe_apps.Registry

let str = Printf.sprintf

(* every test starts from a known cache configuration; the store is
   process-global and alcotest runs these sequentially *)
let fresh_cache ?dir () =
  Store.set_enabled true;
  Store.set_dir dir;
  Store.set_capacity 256;
  Store.reset ()

let print_managed (m : Managed.t) =
  Format.asprintf "%a"
    (Pp.pp_managed ~scale:m.Managed.scale ~level:m.Managed.level)
    m.Managed.prog

(* ----------------------------------------------------------------- *)
(* interning *)

let test_intern_physical_identity () =
  (* structurally equal kinds intern to the same physical node *)
  for seed = 0 to 49 do
    let p = (Fhe_sim.Progen.make seed).Fhe_sim.Progen.prog in
    Program.iteri
      (fun _ k ->
        let a = Intern.kind k in
        (* a structurally equal copy, rebuilt so it is a fresh value *)
        let copy = Op.map_operands (fun i -> i) k in
        let b = Intern.kind copy in
        Alcotest.(check bool) "same node" true (a == b);
        Alcotest.(check int) "same uid" a.Intern.uid b.Intern.uid;
        Alcotest.(check bool) "equal_kind agrees" true
          (Intern.equal_kind a.Intern.kind b.Intern.kind))
      p
  done

let test_intern_hash_consistent () =
  for seed = 0 to 49 do
    let p = (Fhe_sim.Progen.make seed).Fhe_sim.Progen.prog in
    Program.iteri
      (fun _ k ->
        let copy = Op.map_operands (fun i -> i) k in
        Alcotest.(check int) "equal kinds hash equal" (Intern.hash_kind k)
          (Intern.hash_kind copy))
      p
  done

let structurally_equal a b =
  Program.n_ops a = Program.n_ops b
  && Program.n_slots a = Program.n_slots b
  && Program.outputs a = Program.outputs b
  && (let same = ref true in
      Program.iteri
        (fun i k ->
          if not (Intern.equal_kind k (Program.kind b i)) then same := false)
        a;
      !same)

let test_digest_no_collisions_500 () =
  (* 500 generated programs: equal digest must mean equal structure
     (the key property the whole cache rests on) *)
  let tbl : (string, Program.t) Hashtbl.t = Hashtbl.create 512 in
  let distinct = ref 0 in
  for seed = 0 to 499 do
    let p = (Fhe_sim.Progen.make seed).Fhe_sim.Progen.prog in
    let d = Intern.digest p in
    Alcotest.(check int) "hex md5" 32 (String.length d);
    (match Hashtbl.find_opt tbl d with
    | None ->
        incr distinct;
        Hashtbl.add tbl d p
    | Some q ->
        Alcotest.(check bool)
          (str "digest collision at seed %d is structural" seed)
          true (structurally_equal p q));
    (* and the digest is a function of structure: recomputing agrees *)
    Alcotest.(check string) "digest stable" d (Intern.digest p)
  done;
  Alcotest.(check bool)
    (str "generator diversity (%d distinct)" !distinct)
    true (!distinct > 400)

let quiet_nan_1 = Int64.float_of_bits 0x7FF8000000000001L

let quiet_nan_2 = Int64.float_of_bits 0x7FF800000000BEEFL

let one_const_prog c =
  Program.make
    ~ops:[| Op.Input { name = "x"; vt = Op.Cipher }; Op.Const c;
            Op.Mul (0, 1) |]
    ~outputs:[| 2 |] ~n_slots:16

let test_digest_float_bit_patterns () =
  (* 0.0 and -0.0 are different constants (polymorphic compare says
     equal — the latent Builder aliasing bug); NaN payloads are the
     same constant (polymorphic compare says unequal) *)
  Alcotest.(check bool) "0.0 vs -0.0 digests differ" false
    (Intern.digest (one_const_prog 0.0) = Intern.digest (one_const_prog (-0.0)));
  Alcotest.(check string) "NaN payloads unify"
    (Intern.digest (one_const_prog quiet_nan_1))
    (Intern.digest (one_const_prog quiet_nan_2));
  Alcotest.(check bool) "equal_kind: 0.0 vs -0.0" false
    (Intern.equal_kind (Op.Const 0.0) (Op.Const (-0.0)));
  Alcotest.(check bool) "equal_kind: NaN vs NaN" true
    (Intern.equal_kind (Op.Const quiet_nan_1) (Op.Const quiet_nan_2));
  Alcotest.(check int) "NaN hashes agree"
    (Intern.hash_kind (Op.Const quiet_nan_1))
    (Intern.hash_kind (Op.Const quiet_nan_2))

let test_builder_dedup_float_bits () =
  (* the regression for the raw-Op.kind keying gap: the builder must
     not merge 0.0 with -0.0, and must merge NaNs regardless of
     payload *)
  let b = Builder.create ~n_slots:16 () in
  let z = Builder.const b 0.0 in
  let nz = Builder.const b (-0.0) in
  Alcotest.(check bool) "-0.0 not aliased to 0.0" false (z = nz);
  let n1 = Builder.const b quiet_nan_1 in
  let n2 = Builder.const b quiet_nan_2 in
  Alcotest.(check int) "NaN payloads dedup" n1 n2;
  let c1 = Builder.const b 1.5 in
  let c2 = Builder.const b 1.5 in
  Alcotest.(check int) "ordinary consts dedup" c1 c2;
  (* compound ops over them stay distinct where operands are distinct *)
  let x = Builder.input b "x" in
  let a1 = Builder.add b x z in
  let a2 = Builder.add b x nz in
  Alcotest.(check bool) "sums over distinct zeros distinct" false (a1 = a2);
  let a3 = Builder.add b x z in
  Alcotest.(check int) "identical sums dedup" a1 a3

(* ----------------------------------------------------------------- *)
(* lru *)

let test_lru_basics () =
  let l : int Fhe_cache.Lru.t = Fhe_cache.Lru.create ~cap:4 () in
  Alcotest.(check (option int)) "empty" None (Fhe_cache.Lru.find l "a");
  Fhe_cache.Lru.add l "a" 1;
  Fhe_cache.Lru.add l "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Fhe_cache.Lru.find l "a");
  Alcotest.(check (option int)) "find b" (Some 2) (Fhe_cache.Lru.find l "b");
  Fhe_cache.Lru.clear l;
  Alcotest.(check (option int)) "cleared" None (Fhe_cache.Lru.find l "a");
  Alcotest.(check int) "length 0" 0 (Fhe_cache.Lru.length l)

let test_lru_bounded () =
  let cap = 8 in
  let l : int Fhe_cache.Lru.t = Fhe_cache.Lru.create ~cap () in
  for i = 0 to 999 do
    Fhe_cache.Lru.add l (str "k%d" i) i
  done;
  Alcotest.(check bool)
    (str "length %d <= 2*cap" (Fhe_cache.Lru.length l))
    true
    (Fhe_cache.Lru.length l <= 2 * cap);
  (* the most recent insert always survives *)
  Alcotest.(check (option int)) "newest survives" (Some 999)
    (Fhe_cache.Lru.find l "k999")

let test_lru_zero_cap_disables () =
  let l : int Fhe_cache.Lru.t = Fhe_cache.Lru.create ~cap:0 () in
  Fhe_cache.Lru.add l "a" 1;
  Alcotest.(check (option int)) "nothing retained" None
    (Fhe_cache.Lru.find l "a")

(* ----------------------------------------------------------------- *)
(* keys *)

let test_key_distinguishes_config () =
  let digest = String.make 32 'a' in
  let base = Fhe_cache.Key.make ~digest ~compiler:"eva" ~rbits:60 ~wbits:30 () in
  let distinct =
    [ Fhe_cache.Key.make ~digest:(String.make 32 'b') ~compiler:"eva"
        ~rbits:60 ~wbits:30 ();
      Fhe_cache.Key.make ~digest ~compiler:"hecate" ~rbits:60 ~wbits:30 ();
      Fhe_cache.Key.make ~digest ~compiler:"eva" ~rbits:50 ~wbits:30 ();
      Fhe_cache.Key.make ~digest ~compiler:"eva" ~rbits:60 ~wbits:25 ();
      Fhe_cache.Key.make ~digest ~compiler:"eva" ~rbits:60 ~wbits:30
        ~xmax_bits:4 ();
      Fhe_cache.Key.make ~digest ~compiler:"eva" ~rbits:60 ~wbits:30
        ~extra:[ "true" ] () ]
  in
  List.iteri
    (fun i k ->
      Alcotest.(check bool) (str "variant %d differs" i) false (k = base))
    distinct;
  Alcotest.(check string) "deterministic" base
    (Fhe_cache.Key.make ~digest ~compiler:"eva" ~rbits:60 ~wbits:30 ())

(* ----------------------------------------------------------------- *)
(* disk *)

let disk_dir name = str "_fhecache_test_%s" name

let test_disk_round_trip () =
  let dir = disk_dir "rt" in
  let key = String.make 32 '5' in
  Alcotest.(check bool) "miss before put" true
    (Fhe_cache.Disk.get ~dir ~key = `Miss);
  Fhe_cache.Disk.put ~dir ~key "some payload \x00\x01 with binary";
  (match Fhe_cache.Disk.get ~dir ~key with
  | `Hit p ->
      Alcotest.(check string) "payload survives"
        "some payload \x00\x01 with binary" p
  | `Miss | `Poisoned -> Alcotest.fail "expected a hit");
  Fhe_cache.Disk.remove ~dir ~key;
  Alcotest.(check bool) "miss after remove" true
    (Fhe_cache.Disk.get ~dir ~key = `Miss)

let corrupt_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string text in
  (* flip a byte near the end — inside the payload, after the header *)
  let i = Bytes.length b - 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_disk_detects_corruption () =
  let dir = disk_dir "poison" in
  let key = String.make 32 '7' in
  Fhe_cache.Disk.put ~dir ~key "payload to be corrupted";
  corrupt_file (Filename.concat dir (key ^ ".entry"));
  Alcotest.(check bool) "corrupt entry is Poisoned" true
    (Fhe_cache.Disk.get ~dir ~key = `Poisoned);
  (* truncation is also poison, not a crash *)
  let oc = open_out_bin (Filename.concat dir (key ^ ".entry")) in
  output_string oc "fhe-cache-entry/1 ";
  close_out oc;
  Alcotest.(check bool) "truncated entry is Poisoned" true
    (Fhe_cache.Disk.get ~dir ~key = `Poisoned)

let test_disk_rejects_bad_keys () =
  List.iter
    (fun key ->
      match Fhe_cache.Disk.path ~dir:"d" ~key with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (str "key %S accepted" key))
    [ ""; "../escape"; "ABC"; "abc/def"; "a b" ]

(* ----------------------------------------------------------------- *)
(* store *)

let small_prog seed = (Fhe_sim.Progen.make ~size:12 seed).Fhe_sim.Progen.prog

let test_store_memory_hit () =
  fresh_cache ();
  let p = small_prog 3 in
  let key = Reserve.Pipeline.cache_key ~rbits:60 ~wbits:30 p in
  let computes = ref 0 in
  let compute () =
    incr computes;
    Store.bypass (fun () -> Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p)
  in
  let m1, hit1 = Store.with_managed_hit ~key compute in
  let m2, hit2 = Store.with_managed_hit ~key compute in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  Alcotest.(check int) "computed once" 1 !computes;
  Alcotest.(check bool) "served physically" true (m1 == m2);
  let s = Store.stats () in
  Alcotest.(check int) "one hit" 1 s.Store.hits;
  Alcotest.(check int) "one miss" 1 s.Store.misses;
  Alcotest.(check int) "one store" 1 s.Store.stores

let test_store_bypass () =
  fresh_cache ();
  let p = small_prog 4 in
  let key = Reserve.Pipeline.cache_key ~rbits:60 ~wbits:30 p in
  let m = Store.bypass (fun () -> Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p) in
  Store.bypass (fun () -> Store.add key m);
  Alcotest.(check bool) "bypassed add dropped" true (Store.find key = None);
  Store.add key m;
  Store.bypass (fun () ->
      Alcotest.(check bool) "bypassed find misses" true (Store.find key = None));
  Alcotest.(check bool) "visible outside bypass" true (Store.find key <> None)

let test_store_disabled () =
  fresh_cache ();
  Store.set_enabled false;
  let p = small_prog 5 in
  let key = Reserve.Pipeline.cache_key ~rbits:60 ~wbits:30 p in
  let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p in
  Store.add key m;
  Alcotest.(check bool) "disabled store holds nothing" true
    (Store.find key = None);
  Store.set_enabled true

(* the end-to-end poisoned-cache property: a corrupt on-disk entry is
   detected, discarded, and the program recompiled — the answer is the
   fresh one, never the corrupt bytes *)
let test_store_poisoned_recompute () =
  let dir = disk_dir "store" in
  fresh_cache ~dir ();
  let p = small_prog 6 in
  let reference =
    print_managed
      (Store.bypass (fun () -> Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p))
  in
  (* populate memory + disk *)
  let _ = Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p in
  (* corrupt every entry on disk, then drop the in-memory layer so the
     next lookup must go to disk *)
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".entry")
  in
  Alcotest.(check bool) "disk populated" true (entries <> []);
  List.iter (fun f -> corrupt_file (Filename.concat dir f)) entries;
  Store.reset ();
  let m = Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p in
  Alcotest.(check string) "recompute equals reference" reference
    (print_managed m);
  let s = Store.stats () in
  Alcotest.(check bool)
    (str "poison detected (%d)" s.Store.poisoned)
    true (s.Store.poisoned > 0);
  (* the poisoned file was deleted and replaced by the recompute; a
     fresh lookup now hits clean *)
  Store.reset ();
  let m' = Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p in
  Alcotest.(check string) "disk self-healed" reference (print_managed m');
  Alcotest.(check int) "no new poison" 0 (Store.stats ()).Store.poisoned;
  Store.set_dir None

(* a marshalled-but-wrong entry (valid container, illegal program) must
   be rejected by the validator re-check, not served *)
let test_store_rejects_invalid_payload () =
  let dir = disk_dir "invalid" in
  fresh_cache ~dir ();
  let p = small_prog 7 in
  let key = Reserve.Pipeline.cache_key ~rbits:60 ~wbits:30 p in
  let m = Store.bypass (fun () -> Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p) in
  (* break the scale bookkeeping, then write the corpse with a *valid*
     checksum, as a hostile/buggy producer would *)
  let bad = { m with Managed.scale = Array.map (fun s -> s + 7) m.Managed.scale } in
  Fhe_cache.Disk.put ~dir ~key (Marshal.to_string bad []);
  Store.reset ();
  Alcotest.(check bool) "invalid payload not served" true (Store.find key = None);
  Alcotest.(check bool) "counted as poison" true
    ((Store.stats ()).Store.poisoned > 0);
  Store.set_dir None

(* ----------------------------------------------------------------- *)
(* cache-consistency lemma *)

let test_cache_consistency_clean () =
  let p = small_prog 8 in
  let m = Store.bypass (fun () -> Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p) in
  Alcotest.(check int) "no violations against itself" 0
    (List.length
       (Fhe_check.Invariants.check_cache_consistency ~cached:m ~fresh:m))

let test_cache_consistency_flags_drift () =
  let p = small_prog 9 in
  let fresh = Store.bypass (fun () -> Reserve.Pipeline.compile ~rbits:60 ~wbits:30 p) in
  let cached =
    { fresh with Managed.scale = Array.map (fun s -> s + 1) fresh.Managed.scale }
  in
  let vs = Fhe_check.Invariants.check_cache_consistency ~cached ~fresh in
  Alcotest.(check bool) "drift detected" true (vs <> []);
  List.iter
    (fun v ->
      Alcotest.(check string) "rule name" "cache-consistency"
        v.Fhe_check.Invariants.rule)
    vs

let test_differential_flags_poisoned_hit () =
  (* seed the store with a plan compiled under the *wrong* waterline;
     the differential driver's verify-on-hit must surface it as a
     cache-consistency lemma violation *)
  fresh_cache ();
  let g = Fhe_sim.Progen.make ~size:12 11 in
  let p = g.Fhe_sim.Progen.prog in
  let wrong =
    Store.bypass (fun () ->
        Reserve.Pipeline.compile ~variant:`Full ~rbits:60 ~wbits:25 p)
  in
  Store.add (Reserve.Pipeline.cache_key ~variant:`Full ~rbits:60 ~wbits:30 p)
    { wrong with Managed.wbits = 30 };
  let r =
    Fhe_check.Differential.run
      ~compilers:[ Option.get (Fhe_check.Differential.of_name "reserve-full") ]
      ~label:"poisoned" p ~inputs:g.Fhe_sim.Progen.inputs
  in
  let entry = List.hd r.Fhe_check.Differential.entries in
  Alcotest.(check bool) "cache-consistency violation reported" true
    (List.exists
       (fun v -> v.Fhe_check.Invariants.rule = "cache-consistency")
       entry.Fhe_check.Differential.lemma_violations);
  (* and with a clean cache the same run is violation-free *)
  fresh_cache ();
  let r' =
    Fhe_check.Differential.run
      ~compilers:[ Option.get (Fhe_check.Differential.of_name "reserve-full") ]
      ~label:"clean" p ~inputs:g.Fhe_sim.Progen.inputs
  in
  Alcotest.(check bool) "clean run ok" true (Fhe_check.Differential.ok r')

(* ----------------------------------------------------------------- *)
(* metamorphic: warm byte-identical to cold, 8 apps x 5 compilers *)

let hecate_iters = 10

let compile_app (a : Reg.app) p compiler =
  match compiler with
  | "eva" -> Fhe_eva.Eva.compile ~rbits:60 ~wbits:30 p
  | "hecate" ->
      (Fhe_hecate.Hecate.compile ~iterations:hecate_iters ~rbits:60 ~wbits:30
         p)
        .Fhe_hecate.Hecate.managed
  | "reserve-ba" -> Reserve.Pipeline.compile ~variant:`Ba ~rbits:60 ~wbits:30 p
  | "reserve-ra" -> Reserve.Pipeline.compile ~variant:`Ra ~rbits:60 ~wbits:30 p
  | "reserve-full" ->
      Reserve.Pipeline.compile ~variant:`Full ~rbits:60 ~wbits:30 p
  | other -> Alcotest.fail (str "unknown compiler %s (%s)" other a.Reg.name)

let app_key p compiler =
  match compiler with
  | "eva" -> Reserve.Pipeline.eva_cache_key ~rbits:60 ~wbits:30 p
  | "hecate" ->
      Fhe_cache.Key.make ~digest:(Intern.digest p) ~compiler:"hecate"
        ~rbits:60 ~wbits:30
        ~extra:[ string_of_int hecate_iters ]
        ()
  | variant_name ->
      let variant =
        match variant_name with
        | "reserve-ba" -> `Ba
        | "reserve-ra" -> `Ra
        | _ -> `Full
      in
      Reserve.Pipeline.cache_key ~variant ~rbits:60 ~wbits:30 p

let test_warm_equals_cold_all_apps () =
  let dir = disk_dir "apps" in
  let compilers =
    [ "eva"; "hecate"; "reserve-ba"; "reserve-ra"; "reserve-full" ]
  in
  List.iter
    (fun (a : Reg.app) ->
      let p = a.Reg.build () in
      List.iter
        (fun c ->
          fresh_cache ~dir ();
          let key = app_key p c in
          let cold =
            print_managed (Store.bypass (fun () -> compile_app a p c))
          in
          (* populate: a miss computes and writes memory + disk *)
          let first =
            Store.with_managed ~key (fun () ->
                Store.bypass (fun () -> compile_app a p c))
          in
          Alcotest.(check string)
            (str "%s/%s: compiler deterministic" a.Reg.name c)
            cold (print_managed first);
          (* warm from memory *)
          let warm_mem =
            Store.with_managed ~key (fun () ->
                Alcotest.fail
                  (str "%s/%s: expected a memory hit" a.Reg.name c))
          in
          Alcotest.(check string)
            (str "%s/%s: memory-warm byte-identical" a.Reg.name c)
            cold (print_managed warm_mem);
          (* warm from disk: drop the memory layer, forcing the
             marshal/checksum/validator path *)
          Store.reset ();
          let warm_disk =
            Store.with_managed ~key (fun () ->
                Alcotest.fail (str "%s/%s: expected a disk hit" a.Reg.name c))
          in
          Alcotest.(check string)
            (str "%s/%s: disk-warm byte-identical" a.Reg.name c)
            cold (print_managed warm_disk);
          Alcotest.(check bool)
            (str "%s/%s: served from disk" a.Reg.name c)
            true
            ((Store.stats ()).Store.disk_hits > 0))
        compilers)
    Reg.all;
  Store.set_dir None

(* ----------------------------------------------------------------- *)
(* parallel: a shared cache must not perturb pool determinism *)

let test_parallel_shared_cache_deterministic () =
  (* 15 distinct programs, each listed 4 times: the pooled run races
     4 domains on a shared store with guaranteed cross-domain hits *)
  let progs =
    List.concat_map
      (fun seed -> List.init 4 (fun _ -> small_prog (100 + seed)))
      (List.init 15 (fun i -> i))
  in
  Store.set_enabled false;
  let baseline =
    Reserve.Pipeline.compile_batch ~rbits:60 ~wbits:30 progs
    |> List.map (Result.map print_managed)
  in
  fresh_cache ();
  let pooled =
    Fhe_par.Pool.with_pool ~domains:4 (fun pool ->
        Reserve.Pipeline.compile_batch ~pool ~rbits:60 ~wbits:30 progs)
    |> List.map (Result.map print_managed)
  in
  List.iteri
    (fun i (b, c) ->
      match (b, c) with
      | Ok b, Ok c ->
          Alcotest.(check string) (str "program %d identical" i) b c
      | Error _, Error _ -> ()
      | _ -> Alcotest.fail (str "program %d: ok/error disagree" i))
    (List.combine baseline pooled);
  let s = Store.stats () in
  Alcotest.(check bool)
    (str "shared store hit across the pool (%d hits)" s.Store.hits)
    true (s.Store.hits > 0)

let test_parallel_fuzz_matches_sequential () =
  (* the fuzz tier's aggregate must be identical with and without the
     cache, sequentially and on a pool *)
  Store.set_enabled false;
  let plain = Fhe_check.Fuzzdriver.run ~size:12 ~seeds:20 () in
  fresh_cache ();
  let cached = Fhe_check.Fuzzdriver.run ~size:12 ~seeds:20 () in
  let pooled =
    Fhe_par.Pool.with_pool ~domains:4 (fun pool ->
        Fhe_check.Fuzzdriver.run ~pool ~size:12 ~seeds:20 ())
  in
  Alcotest.(check bool) "cache does not change the fuzz report" true
    (plain = cached);
  Alcotest.(check bool) "pool + shared cache does not change it" true
    (plain = pooled)

(* ----------------------------------------------------------------- *)

let () =
  (* tests share one process-global store; leave it enabled/in-memory
     for whichever test runs first *)
  fresh_cache ();
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cache"
    [
      ( "intern",
        [
          t "structural equality is physical identity"
            test_intern_physical_identity;
          t "hash respects equality" test_intern_hash_consistent;
          t "500 programs: no digest collisions" test_digest_no_collisions_500;
          t "float bit patterns in the digest" test_digest_float_bit_patterns;
          t "builder dedup on float bits" test_builder_dedup_float_bits;
        ] );
      ( "lru",
        [
          t "add/find/clear" test_lru_basics;
          t "bounded at 2x capacity" test_lru_bounded;
          t "zero capacity disables" test_lru_zero_cap_disables;
        ] );
      ( "key", [ t "distinguishes every config knob" test_key_distinguishes_config ] );
      ( "disk",
        [
          t "round trip" test_disk_round_trip;
          t "detects corruption" test_disk_detects_corruption;
          t "rejects unsafe keys" test_disk_rejects_bad_keys;
        ] );
      ( "store",
        [
          t "memory hit serves the same plan" test_store_memory_hit;
          t "bypass hides the store" test_store_bypass;
          t "disabled store holds nothing" test_store_disabled;
          t "poisoned disk entry recomputed" test_store_poisoned_recompute;
          t "invalid payload rejected by validator"
            test_store_rejects_invalid_payload;
        ] );
      ( "consistency",
        [
          t "clean on identical plans" test_cache_consistency_clean;
          t "flags drifted plans" test_cache_consistency_flags_drift;
          t "differential verifies hits" test_differential_flags_poisoned_hit;
        ] );
      ( "metamorphic",
        [ t "warm = cold, 8 apps x 5 compilers" test_warm_equals_cold_all_apps ] );
      ( "parallel",
        [
          t "-j 4 with shared cache = sequential"
            test_parallel_shared_cache_deterministic;
          t "fuzz report invariant to cache and pool"
            test_parallel_fuzz_matches_sequential;
        ] );
    ]
