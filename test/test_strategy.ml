(* The strategy tier (dune build @strategy).

   lib/strategy under test: the Scale_strategy interface every compiler
   implements, the registry that is now the only way drivers reach a
   compiler, and the portfolio mode that races them.

   The load-bearing properties:
   - the registry's canonical order, names, aliases and capability
     flags are pinned (they order the differential report, the
     Benchjson entries, and the serve strategies reply);
   - Strategy.cache_key mints byte-identical keys to the recipes the
     pre-refactor drivers used, so existing on-disk stores keep
     hitting across the refactor;
   - each strategy's three-phase compile is byte-identical (Wire
     encoding) to the legacy direct entry point it replaced;
   - the portfolio winner never scores worse than any leg, the report
     is identical at any pool width, and a warm store serves every leg
     from cache (verified via Store counters);
   - protocol v2 carries the strategy subset, v1 frames still decode
     (golden-pinned), and every truncation of a v2 payload fails.

   The register test mutates the process-global registry, so it runs
   last. *)

open Fhe_ir
module St = Fhe_strategy.Strategy
module SReg = Fhe_strategy.Registry
module Portfolio = Fhe_strategy.Portfolio
module Proto = Fhe_serve.Protocol
module Server = Fhe_serve.Server
module Store = Fhe_cache.Store
module Reg = Fhe_apps.Registry

let str = Printf.sprintf
let hecate_iters = 10

(* every cache-touching test starts from a known store configuration;
   the store is process-global and alcotest runs these sequentially *)
let fresh_cache () =
  Store.set_enabled true;
  Store.set_dir None;
  Store.set_capacity 256;
  Store.reset ()

let prog name = (Reg.find name).Reg.build ()

(* iteration budgets mirror the bench emitter: full exploration on the
   small apps, capped on the LeNets to keep the tier in CI budget *)
let iters_of name =
  if String.length name >= 5 && String.sub name 0 5 = "Lenet" then 10 else 60

let managed_bytes = Wire.encode_managed

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.fail (str "%s: %s" what e)

(* ----------------------------------------------------------------- *)
(* Registry: order, names, aliases, caps *)

let test_registry_order () =
  Alcotest.(check (list string))
    "canonical registration order"
    [ "eva"; "hecate"; "reserve-ba"; "reserve-ra"; "reserve-full" ]
    (SReg.names ())

let test_registry_aliases () =
  let resolves spelling expect =
    match SReg.of_name spelling with
    | Some s -> Alcotest.(check string) (str "%S resolves" spelling) expect (St.name s)
    | None -> Alcotest.fail (str "%S did not resolve" spelling)
  in
  resolves "eva" "eva";
  resolves "EVA" "eva";
  resolves "hecate" "hecate";
  resolves "ba" "reserve-ba";
  resolves "ra" "reserve-ra";
  resolves "full" "reserve-full";
  resolves "reserve" "reserve-full";
  resolves "RESERVE-FULL" "reserve-full";
  Alcotest.(check bool) "unknown name is None" true
    (SReg.of_name "seal" = None);
  (* portfolio is a mode, not a strategy *)
  Alcotest.(check bool) "portfolio is not a strategy" true
    (SReg.of_name Portfolio.mode_name = None);
  match SReg.get_exn "no-such-strategy" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "get_exn accepted an unknown name"

let test_registry_caps () =
  let caps name = St.caps_string (St.caps (SReg.get_exn name)) in
  Alcotest.(check string) "eva caps" "-" (caps "eva");
  Alcotest.(check string) "hecate caps" "explores" (caps "hecate");
  Alcotest.(check string) "ba caps" "fallback" (caps "reserve-ba");
  Alcotest.(check string) "ra caps" "redistributes,fallback" (caps "reserve-ra");
  Alcotest.(check string) "full caps" "redistributes,hoists,fallback"
    (caps "reserve-full");
  (* only the reserve variants sit on the degradation chain *)
  List.iter
    (fun s ->
      let expect = (St.caps s).St.fallback_chain in
      Alcotest.(check bool)
        (str "%s safe entry point" (St.name s))
        expect
        (St.safe s <> None))
    (SReg.all ())

(* ----------------------------------------------------------------- *)
(* Cache keys: byte-identical to the pre-refactor recipes, so on-disk
   stores built before the registry keep hitting after it *)

let test_cache_keys_legacy () =
  List.iter
    (fun name ->
      let p = prog name in
      let cfg = St.config ~xmax_bits:4 ~iterations:hecate_iters ~rbits:60 ~wbits:30 () in
      let key s = St.cache_key (SReg.get_exn s) cfg p in
      Alcotest.(check string)
        (str "%s: eva key matches eva_cache_key" name)
        (Reserve.Pipeline.eva_cache_key ~xmax_bits:4 ~rbits:60 ~wbits:30 p)
        (key "eva");
      Alcotest.(check string)
        (str "%s: hecate key matches the differential driver's recipe" name)
        (Fhe_cache.Key.make ~digest:(Intern.digest p) ~compiler:"hecate"
           ~rbits:60 ~wbits:30 ~xmax_bits:4
           ~extra:[ string_of_int hecate_iters ]
           ())
        (key "hecate");
      List.iter
        (fun (vn, variant) ->
          Alcotest.(check string)
            (str "%s: %s key matches Pipeline.cache_key" name vn)
            (Reserve.Pipeline.cache_key ~variant ~xmax_bits:4 ~rbits:60
               ~wbits:30 p)
            (key vn))
        [ ("reserve-ba", `Ba); ("reserve-ra", `Ra); ("reserve-full", `Full) ])
    [ "SF"; "HCD" ]

let test_cache_key_hecate_default_budget () =
  let p = prog "SF" in
  let cfg = St.config ~rbits:60 ~wbits:30 () in
  Alcotest.(check string)
    "no explicit budget folds default_iterations into the key"
    (Fhe_cache.Key.make ~digest:(Intern.digest p) ~compiler:"hecate" ~rbits:60
       ~wbits:30 ~xmax_bits:0
       ~extra:[ string_of_int (Fhe_hecate.Hecate.default_iterations p) ]
       ())
    (St.cache_key (SReg.get_exn "hecate") cfg p)

(* ----------------------------------------------------------------- *)
(* Compile parity: the three-phase path is byte-identical to the legacy
   direct entry points it replaced *)

let legacy_compile name p =
  match name with
  | "eva" -> Fhe_eva.Eva.compile ~rbits:60 ~wbits:30 p
  | "hecate" ->
      (Fhe_hecate.Hecate.compile ~iterations:hecate_iters ~rbits:60 ~wbits:30 p)
        .Fhe_hecate.Hecate.managed
  | "reserve-ba" ->
      Store.bypass (fun () ->
          Reserve.Pipeline.compile ~variant:`Ba ~rbits:60 ~wbits:30 p)
  | "reserve-ra" ->
      Store.bypass (fun () ->
          Reserve.Pipeline.compile ~variant:`Ra ~rbits:60 ~wbits:30 p)
  | "reserve-full" ->
      Store.bypass (fun () ->
          Reserve.Pipeline.compile ~variant:`Full ~rbits:60 ~wbits:30 p)
  | other -> Alcotest.fail ("unknown legacy compiler " ^ other)

let test_compile_parity () =
  let cfg = St.config ~iterations:hecate_iters ~rbits:60 ~wbits:30 () in
  List.iter
    (fun app ->
      let p = prog app in
      List.iter
        (fun s ->
          let name = St.name s in
          Alcotest.(check string)
            (str "%s/%s: strategy compile byte-identical to legacy" app name)
            (managed_bytes (legacy_compile name p))
            (managed_bytes (SReg.compile_uncached s cfg p)))
        (SReg.all ()))
    [ "SF"; "HCD"; "LR"; "MLP" ]

let test_compile_with_phases () =
  let p = prog "HCD" in
  let cfg = St.config ~rbits:60 ~wbits:30 () in
  let s = SReg.get_exn "reserve-full" in
  let m, ph = St.compile_with_phases s cfg p in
  Alcotest.(check string) "phased compile produces the same plan"
    (managed_bytes (SReg.compile_uncached s cfg p))
    (managed_bytes m);
  List.iter
    (fun (what, v) ->
      Alcotest.(check bool) (str "%s is a finite non-negative time" what) true
        (Float.is_finite v && v >= 0.))
    [
      ("analyze_ms", ph.St.analyze_ms);
      ("annotate_ms", ph.St.annotate_ms);
      ("place_ms", ph.St.place_ms);
      ("total_ms", ph.St.total_ms);
    ];
  Alcotest.(check bool) "total is the sum of the phases" true
    (Float.abs
       (ph.St.total_ms
       -. (ph.St.analyze_ms +. ph.St.annotate_ms +. ph.St.place_ms))
    < 1e-9)

(* ----------------------------------------------------------------- *)
(* Portfolio: winner optimality, pool-width identity, cache riding *)

let portfolio_cfg app =
  St.config ~iterations:(iters_of app) ~rbits:60 ~wbits:30 ()

let test_portfolio_winner_optimal () =
  fresh_cache ();
  List.iter
    (fun (a : Reg.app) ->
      let p = a.Reg.build () in
      let r = ok_exn a.Reg.name (Portfolio.run (portfolio_cfg a.Reg.name) p) in
      Alcotest.(check int)
        (str "%s: one leg per registered strategy" a.Reg.name)
        (List.length (SReg.all ()))
        (List.length r.Portfolio.legs);
      List.iter
        (fun (l : Portfolio.leg) ->
          match l.Portfolio.result with
          | Error e ->
              Alcotest.fail
                (str "%s/%s failed: %s" a.Reg.name
                   (St.name l.Portfolio.strategy)
                   e)
          | Ok _ ->
              Alcotest.(check bool)
                (str "%s: winner est <= %s" a.Reg.name
                   (St.name l.Portfolio.strategy))
                true
                (r.Portfolio.winner.Portfolio.est_latency_us
                 <= l.Portfolio.est_latency_us))
        r.Portfolio.legs)
    Reg.all

(* project a report onto its deterministic content (drop wall times
   and cache provenance — a hit and a recompute must agree on bytes) *)
let report_fingerprint (r : Portfolio.report) =
  let leg (l : Portfolio.leg) =
    str "%s est=%.6f %s"
      (St.name l.Portfolio.strategy)
      l.Portfolio.est_latency_us
      (match l.Portfolio.result with
      | Ok m -> Digest.to_hex (Digest.string (managed_bytes m))
      | Error e -> "error:" ^ e)
  in
  String.concat "\n"
    (str "winner=%s" (St.name r.Portfolio.winner.Portfolio.strategy)
    :: List.map leg r.Portfolio.legs)

let test_portfolio_pool_identity () =
  let p = prog "MLP" in
  let cfg = portfolio_cfg "MLP" in
  let run pool =
    fresh_cache ();
    report_fingerprint (ok_exn "MLP portfolio" (Portfolio.run ?pool cfg p))
  in
  let seq = run None in
  List.iter
    (fun domains ->
      let par =
        Fhe_par.Pool.with_pool ~domains (fun pool -> run (Some pool))
      in
      Alcotest.(check string)
        (str "report identical sequential vs %d domains" domains)
        seq par)
    [ 2; 4 ]

let test_portfolio_rides_cache () =
  fresh_cache ();
  let p = prog "MLP" in
  let cfg = portfolio_cfg "MLP" in
  let cold = ok_exn "cold portfolio" (Portfolio.run cfg p) in
  let s1 = Store.stats () in
  let warm = ok_exn "warm portfolio" (Portfolio.run cfg p) in
  let s2 = Store.stats () in
  let legs = List.length warm.Portfolio.legs in
  Alcotest.(check int) "warm run compiles nothing" s1.Store.misses
    s2.Store.misses;
  Alcotest.(check bool)
    (str "warm run hits the store once per leg (%d -> %d hits)"
       s1.Store.hits s2.Store.hits)
    true
    (s2.Store.hits - s1.Store.hits >= legs);
  List.iter
    (fun (l : Portfolio.leg) ->
      Alcotest.(check bool)
        (str "warm leg %s served from cache" (St.name l.Portfolio.strategy))
        true l.Portfolio.from_cache)
    warm.Portfolio.legs;
  Alcotest.(check string) "warm report identical to cold"
    (report_fingerprint cold) (report_fingerprint warm)

let test_portfolio_subset () =
  fresh_cache ();
  let p = prog "SF" in
  let cfg = portfolio_cfg "SF" in
  let subset = [ SReg.get_exn "eva"; SReg.get_exn "reserve-ba" ] in
  let r = ok_exn "subset portfolio" (Portfolio.run ~strategies:subset cfg p) in
  Alcotest.(check (list string))
    "exactly the requested legs, in order"
    [ "eva"; "reserve-ba" ]
    (List.map (fun l -> St.name l.Portfolio.strategy) r.Portfolio.legs);
  Alcotest.(check bool) "winner comes from the subset" true
    (List.mem
       (St.name r.Portfolio.winner.Portfolio.strategy)
       [ "eva"; "reserve-ba" ]);
  (* the wire protocol's "empty subset = all" convention *)
  let r' = ok_exn "empty subset" (Portfolio.run ~strategies:[] cfg p) in
  Alcotest.(check int) "empty subset races every strategy"
    (List.length (SReg.all ()))
    (List.length r'.Portfolio.legs)

(* ----------------------------------------------------------------- *)
(* Protocol v2: the strategy subset on the wire, v1 compatibility *)

let sample_request p =
  {
    Proto.tenant = "t0";
    compiler = "portfolio";
    strategies = [ "eva"; "reserve-full" ];
    rbits = 60;
    wbits = 30;
    xmax_bits = 2;
    iterations = 40;
    allow_fallback = true;
    oracle = false;
    deadline_ms = 900;
    program = p;
  }

let test_proto_v2_round_trip () =
  let p = prog "SF" in
  let req = sample_request p in
  let typ, payload = Proto.encode_request (Proto.Compile req) in
  match Proto.decode_request ~typ payload with
  | Error e -> Alcotest.fail ("v2 round trip: " ^ e)
  | Ok (Proto.Compile r) ->
      Alcotest.(check string) "tenant" req.Proto.tenant r.Proto.tenant;
      Alcotest.(check string) "compiler" req.Proto.compiler r.Proto.compiler;
      Alcotest.(check (list string))
        "strategy subset survives the wire" req.Proto.strategies
        r.Proto.strategies;
      Alcotest.(check int) "iterations" req.Proto.iterations r.Proto.iterations;
      Alcotest.(check string) "program digest"
        (Intern.digest req.Proto.program)
        (Intern.digest r.Proto.program)
  | Ok _ -> Alcotest.fail "v2 round trip: decoded to a different request"

let test_proto_v2_truncations () =
  let p = prog "SF" in
  let typ, payload = Proto.encode_request (Proto.Compile (sample_request p)) in
  (* the v2 strategy trailer is mandatory, so every proper prefix —
     including one that is a well-formed v1 payload — must fail *)
  for cut = 0 to String.length payload - 1 do
    match Proto.decode_request ~typ (String.sub payload 0 cut) with
    | Ok _ -> Alcotest.fail (str "%d-byte prefix decoded as v2" cut)
    | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (str "%d-byte prefix raised %s" cut (Printexc.to_string e))
  done

let test_proto_strategies_round_trip () =
  let typ, payload = Proto.encode_request Proto.List_strategies in
  (match Proto.decode_request ~typ payload with
  | Ok Proto.List_strategies -> ()
  | Ok _ -> Alcotest.fail "List_strategies decoded to a different request"
  | Error e -> Alcotest.fail ("List_strategies: " ^ e));
  let infos = Server.strategy_infos () in
  Alcotest.(check int) "one info per registered strategy"
    (List.length (SReg.all ()))
    (List.length infos);
  let typ, payload = Proto.encode_reply (Proto.Strategies_reply infos) in
  match Proto.decode_reply ~typ payload with
  | Ok (Proto.Strategies_reply infos') ->
      Alcotest.(check bool) "strategy infos survive the wire" true
        (infos = infos')
  | Ok _ -> Alcotest.fail "Strategies_reply decoded to a different reply"
  | Error e -> Alcotest.fail ("Strategies_reply: " ^ e)

(* ----------------------------------------------------------------- *)
(* v1 golden frame: a pre-bump peer's compile request, frozen.

   The encoder below is a copy of the v1 payload layout (the v2 layout
   minus the strategy trailer) and must never change — it stands in
   for every daemon and client built before the version bump.  The
   frame bytes are pinned in golden/proto_v1.hex; regenerate with
   `test_strategy.exe --dump-proto-v1` only if the golden is
   deliberately re-frozen. *)

let v1_add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let v1_add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let v1_add_str b s =
  v1_add_u32 b (String.length s);
  Buffer.add_string b s

let frozen_v1_frame () =
  let b = Buffer.create 256 in
  v1_add_str b "acme";
  v1_add_str b "reserve" (* the pre-rename alias a v1 peer would send *);
  v1_add_u32 b 60;
  v1_add_u32 b 30;
  v1_add_u32 b 8;
  v1_add_u32 b 25;
  v1_add_u8 b 1 (* allow_fallback, no oracle *);
  v1_add_u32 b 1500;
  v1_add_str b (Wire.encode (prog "SF"));
  let payload = Buffer.contents b in
  let f = Buffer.create (Proto.header_len + String.length payload) in
  Buffer.add_string f Proto.magic;
  v1_add_u8 f 1 (* version *);
  v1_add_u8 f 1 (* t_compile *);
  v1_add_u32 f (String.length payload);
  Buffer.add_string f payload;
  Buffer.contents f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun ch -> Buffer.add_string b (str "%02x" (Char.code ch))) s;
  Buffer.contents b

let test_proto_v1_golden_pinned () =
  Alcotest.(check string) "v1 compile frame bytes are pinned"
    (String.trim (read_file "golden/proto_v1.hex"))
    (hex (frozen_v1_frame ()))

(* feed frame bytes through the real reader *)
let with_frame_fd bytes f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let n = Unix.write_substring w bytes 0 (String.length bytes) in
      Alcotest.(check int) "frame fits the pipe" (String.length bytes) n;
      Unix.close w;
      f r)

let test_proto_v1_frame_decodes () =
  let frame = frozen_v1_frame () in
  with_frame_fd frame (fun fd ->
      match Proto.read_frame fd with
      | Error e ->
          Alcotest.fail
            (Format.asprintf "v1 frame rejected: %a" Proto.pp_read_error e)
      | Ok (version, typ, payload) -> (
          Alcotest.(check int) "reader surfaces the peer's version" 1 version;
          match Proto.decode_request ~version ~typ payload with
          | Error e -> Alcotest.fail ("v1 payload rejected: " ^ e)
          | Ok (Proto.Compile r) ->
              Alcotest.(check string) "tenant" "acme" r.Proto.tenant;
              Alcotest.(check string) "compiler (old alias)" "reserve"
                r.Proto.compiler;
              Alcotest.(check (list string))
                "v1 decodes with an empty strategy subset" []
                r.Proto.strategies;
              Alcotest.(check int) "rbits" 60 r.Proto.rbits;
              Alcotest.(check int) "wbits" 30 r.Proto.wbits;
              Alcotest.(check int) "xmax_bits" 8 r.Proto.xmax_bits;
              Alcotest.(check int) "iterations" 25 r.Proto.iterations;
              Alcotest.(check bool) "allow_fallback" true r.Proto.allow_fallback;
              Alcotest.(check bool) "oracle" false r.Proto.oracle;
              Alcotest.(check int) "deadline_ms" 1500 r.Proto.deadline_ms;
              Alcotest.(check string) "program digest"
                (Intern.digest (prog "SF"))
                (Intern.digest r.Proto.program)
          | Ok _ -> Alcotest.fail "v1 frame decoded to a different request"))

let test_proto_v2_frame_version () =
  let p = prog "SF" in
  let typ, payload = Proto.encode_request (Proto.Compile (sample_request p)) in
  with_frame_fd (Proto.frame ~typ payload) (fun fd ->
      match Proto.read_frame fd with
      | Error e ->
          Alcotest.fail
            (Format.asprintf "v2 frame rejected: %a" Proto.pp_read_error e)
      | Ok (version, typ', payload') ->
          Alcotest.(check int) "current version on the wire" Proto.version
            version;
          Alcotest.(check int) "type byte preserved" typ typ';
          Alcotest.(check string) "payload preserved" payload payload')

(* ----------------------------------------------------------------- *)
(* register: strategy number six (global mutation — keep this last) *)

module Eva_two = struct
  let name = "eva-2"
  let aliases = [ "eva-two" ]

  let caps =
    {
      St.redistributes = false;
      hoists = false;
      explores = false;
      fallback_chain = false;
    }

  let cache_key_tag = "eva-2"
  let cache_extra _ _ = []

  type analysis = unit
  type annotation = unit

  let analyze _ _ = ()
  let annotate _ _ () = ()

  let place (cfg : St.config) p () =
    Fhe_eva.Eva.compile ~xmax_bits:cfg.St.xmax_bits ~rbits:cfg.St.rbits
      ~wbits:cfg.St.wbits p

  let safe = None
end

module Colliding = struct
  include Eva_two

  let name = "eva-3"
  let aliases = [ "reserve" ] (* collides with reserve-full's alias *)
  let cache_key_tag = "eva-3"
end

let test_register_sixth_strategy () =
  SReg.register (module Eva_two : St.SCALE_STRATEGY);
  Alcotest.(check int) "six strategies registered" 6
    (List.length (SReg.all ()));
  Alcotest.(check (list string))
    "appended after the built-ins"
    [ "eva"; "hecate"; "reserve-ba"; "reserve-ra"; "reserve-full"; "eva-2" ]
    (SReg.names ());
  (match SReg.of_name "EVA-TWO" with
  | Some s -> Alcotest.(check string) "alias resolves" "eva-2" (St.name s)
  | None -> Alcotest.fail "registered alias did not resolve");
  (* drivers pick the newcomer up with no dispatch changes *)
  let p = prog "SF" in
  let cfg = St.config ~rbits:60 ~wbits:30 () in
  Alcotest.(check string) "newcomer compiles like its delegate"
    (managed_bytes (Fhe_eva.Eva.compile ~rbits:60 ~wbits:30 p))
    (managed_bytes (SReg.compile_uncached (SReg.get_exn "eva-2") cfg p));
  let r = ok_exn "portfolio with six" (Portfolio.run cfg p) in
  Alcotest.(check int) "portfolio races all six" 6
    (List.length r.Portfolio.legs);
  (* duplicate spellings are refused, with the registry unchanged *)
  (match SReg.register (module Eva_two : St.SCALE_STRATEGY) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "re-registering the same name was accepted");
  (match SReg.register (module Colliding : St.SCALE_STRATEGY) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "an alias collision was accepted");
  Alcotest.(check int) "failed registrations left the registry alone" 6
    (List.length (SReg.all ()))

(* ----------------------------------------------------------------- *)

let () =
  (* regen hook for the golden frame; see the frozen encoder's doc *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--dump-proto-v1" then begin
    print_string (hex (frozen_v1_frame ()));
    print_newline ();
    exit 0
  end;
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "strategy"
    [
      ( "registry",
        [
          t "canonical order" test_registry_order;
          t "aliases resolve" test_registry_aliases;
          t "capability flags" test_registry_caps;
        ] );
      ( "cache keys",
        [
          t "legacy recipes preserved" test_cache_keys_legacy;
          t "hecate default budget" test_cache_key_hecate_default_budget;
        ] );
      ( "compile parity",
        [
          t "byte-identical to legacy entry points" test_compile_parity;
          t "phased compile" test_compile_with_phases;
        ] );
      ( "portfolio",
        [
          t "winner is optimal on every app" test_portfolio_winner_optimal;
          t "identical at any pool width" test_portfolio_pool_identity;
          t "warm store serves every leg" test_portfolio_rides_cache;
          t "strategy subsets" test_portfolio_subset;
        ] );
      ( "protocol",
        [
          t "v2 round trip" test_proto_v2_round_trip;
          t "v2 truncations all fail" test_proto_v2_truncations;
          t "strategies listing round trip" test_proto_strategies_round_trip;
          t "v1 golden frame pinned" test_proto_v1_golden_pinned;
          t "v1 frame decodes" test_proto_v1_frame_decodes;
          t "v2 frame carries its version" test_proto_v2_frame_version;
        ] );
      ("register", [ t "strategy number six" test_register_sixth_strategy ]);
    ]
