(* The memory tier (@mem): memory-scalable execution, locked end to
   end.

   - the liveness scheduler (lib/sched): topological validity and
     peak <= program-order-peak over 200 fixed-seed Progen programs,
     free-plan soundness (no double free, no freeing an output, no use
     after free), and a wide-sum program that FAILS if the scheduler
     silently falls back to program order;
   - the ciphertext row arena: freelist reuse, zeroing on reuse,
     wrong-length rejection;
   - lazy switch keys under a byte budget: no generation at keygen,
     LRU eviction that respects the budget, and the determinism
     contract — an evicted key regenerates byte-identically;
   - spill-to-disk (Ctstore on Fhe_cache.Disk): bit-exact round trip,
     poisoned-entry recovery, and the backend's reload/recompute paths
     producing byte-identical decrypts;
   - the invariant the whole PR rests on: decrypted outputs are
     bit-identical with scheduling on or off, across all 8 registry
     apps x 5 compilers, at pool widths 1 and 4, under tight or
     unlimited budgets;
   - the exec-scale LeNet peak-memory win: reordering actually happens
     and cuts analytic peak live bytes by >= 30% vs program order,
     under a pinned absolute ceiling. *)

open Fhe_ir
module Reg = Fhe_apps.Registry
module Progen = Fhe_sim.Progen
module Schedule = Fhe_sched.Schedule

let rbits = 28

let wbits = 22

(* ------------------------------------------------------------------ *)
(* scheduler: 200 fixed-seed generated programs                        *)

(* graph callbacks for an unmanaged Progen DAG: every op is its own
   storage root, cipher values weigh 1 *)
let graph_of (p : Program.t) =
  let deps i = Op.operands (Program.kind p i) in
  let weight i = if Program.vtype p i = Op.Cipher then 1 else 0 in
  (Program.n_ops p, deps, weight, Program.outputs p)

let plan_of ?reorder (p : Program.t) =
  let n, deps, weight, outputs = graph_of p in
  Schedule.plan ?reorder ~n ~deps ~root:(fun i -> i) ~weight ~outputs ()

let test_sched_topological () =
  for seed = 0 to 199 do
    let g = Progen.make seed in
    let p = g.Progen.prog in
    let n, deps, _, _ = graph_of p in
    let plan = plan_of p in
    if Array.length plan.Schedule.order <> n then
      Alcotest.failf "seed %d: order has %d entries, program has %d ops" seed
        (Array.length plan.Schedule.order)
        n;
    let pos = Array.make n (-1) in
    Array.iteri
      (fun q i ->
        if i < 0 || i >= n || pos.(i) >= 0 then
          Alcotest.failf "seed %d: order is not a permutation" seed;
        pos.(i) <- q)
      plan.Schedule.order;
    Array.iteri
      (fun q i ->
        List.iter
          (fun d ->
            if pos.(d) >= q then
              Alcotest.failf "seed %d: op %d scheduled before its operand %d"
                seed i d)
          (deps i))
      plan.Schedule.order
  done

let test_sched_peak_bound () =
  let improved = ref 0 in
  for seed = 0 to 199 do
    let g = Progen.make seed in
    let plan = plan_of g.Progen.prog in
    if plan.Schedule.peak > plan.Schedule.order_peak then
      Alcotest.failf "seed %d: peak %d exceeds program-order peak %d" seed
        plan.Schedule.peak plan.Schedule.order_peak;
    if plan.Schedule.order_peak > plan.Schedule.resident then
      Alcotest.failf "seed %d: order peak %d exceeds no-freeing resident %d"
        seed plan.Schedule.order_peak plan.Schedule.resident;
    if plan.Schedule.peak < plan.Schedule.order_peak then incr improved
  done;
  (* the greedy order must actually win somewhere, or the scheduler is
     dead weight on every real graph shape we generate *)
  if !improved = 0 then
    Alcotest.fail "scheduler never improved on program order in 200 programs"

(* free-plan soundness + peak accounting, by independent simulation *)
let check_plan_sound ~what (p : Program.t) (plan : Schedule.plan) =
  let n, deps, weight, outputs = graph_of p in
  let pos = Array.make n (-1) in
  Array.iteri (fun q i -> pos.(i) <- q) plan.Schedule.order;
  let is_out = Array.make n false in
  Array.iter (fun o -> is_out.(o) <- true) outputs;
  let freed = Array.make n false in
  let live = ref 0 and peak = ref 0 in
  Array.iteri
    (fun q i ->
      live := !live + weight i;
      if !live > !peak then peak := !live;
      List.iter
        (fun r ->
          if freed.(r) then Alcotest.failf "%s: root %d freed twice" what r;
          if is_out.(r) then Alcotest.failf "%s: output %d freed" what r;
          if pos.(r) > q then
            Alcotest.failf "%s: root %d freed before it executed" what r;
          freed.(r) <- true;
          live := !live - weight r;
          for q' = q + 1 to n - 1 do
            let j = plan.Schedule.order.(q') in
            List.iter
              (fun d ->
                if d = r then
                  Alcotest.failf "%s: op %d uses root %d after its free" what
                    j r)
              (deps j)
          done)
        plan.Schedule.free_after.(q))
    plan.Schedule.order;
  if !peak <> plan.Schedule.peak then
    Alcotest.failf "%s: simulated peak %d but plan says %d" what !peak
      plan.Schedule.peak

let test_sched_free_plan_sound () =
  for seed = 0 to 49 do
    let g = Progen.make seed in
    check_plan_sound ~what:(Printf.sprintf "seed %d" seed) g.Progen.prog
      (plan_of g.Progen.prog)
  done

let test_sched_identity_mode () =
  for seed = 0 to 19 do
    let g = Progen.make seed in
    let plan = plan_of ~reorder:false g.Progen.prog in
    if plan.Schedule.reordered then
      Alcotest.failf "seed %d: reorder:false claims a reorder" seed;
    Array.iteri
      (fun q i ->
        if q <> i then
          Alcotest.failf "seed %d: reorder:false order is not the identity"
            seed)
      plan.Schedule.order;
    if plan.Schedule.peak <> plan.Schedule.order_peak then
      Alcotest.failf "seed %d: identity plan peak %d <> order peak %d" seed
        plan.Schedule.peak plan.Schedule.order_peak
  done

(* the anti-silent-fallback guard: a wide sum whose program order holds
   every addend live at once, while interleaving keeps ~3 values live.
   If the scheduler ever degrades to program order, this test fails. *)
let test_sched_wide_sum_improves () =
  let k = 10 in
  (* ops 0..k-1: sources (no deps); ops k..2k-2: a left-fold of sums *)
  let n = (2 * k) - 1 in
  let deps i =
    if i < k then []
    else if i = k then [ 0; 1 ]
    else [ i - 1; i - k + 1 ]
  in
  let plan =
    Schedule.plan ~n ~deps
      ~root:(fun i -> i)
      ~weight:(fun _ -> 1)
      ~outputs:[| n - 1 |] ()
  in
  if not plan.Schedule.reordered then
    Alcotest.fail "scheduler fell back to program order on the wide sum";
  if plan.Schedule.order_peak < k then
    Alcotest.failf "order peak %d unexpectedly small (want >= %d)"
      plan.Schedule.order_peak k;
  if plan.Schedule.peak > 4 then
    Alcotest.failf "interleaved peak %d (want <= 4): scheduler regressed"
      plan.Schedule.peak

let test_sched_rejects_bad_graphs () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  if
    not
      (bad (fun () ->
           Schedule.plan ~n:2
             ~deps:(fun i -> if i = 0 then [ 1 ] else [])
             ~root:(fun i -> i)
             ~weight:(fun _ -> 1)
             ~outputs:[| 1 |] ()))
  then Alcotest.fail "forward dependence accepted";
  if
    not
      (bad (fun () ->
           Schedule.plan ~n:2 ~deps:(fun _ -> [])
             ~root:(fun i -> 1 - i)
             ~weight:(fun _ -> 1)
             ~outputs:[| 1 |] ()))
  then Alcotest.fail "unresolved root map accepted"

(* ------------------------------------------------------------------ *)
(* arena                                                               *)

let test_arena_reuse () =
  let a = Ckks.Arena.create ~n:8 in
  let r1 = Ckks.Arena.alloc_zero a in
  Alcotest.(check int) "first alloc is fresh" 1 (Ckks.Arena.fresh a);
  Ckks.Rvec.set r1 3 42;
  Ckks.Arena.release a r1;
  Alcotest.(check int) "one row parked" 1 (Ckks.Arena.available a);
  let r2 = Ckks.Arena.alloc_zero a in
  Alcotest.(check int) "second alloc reuses" 1 (Ckks.Arena.reuses a);
  Alcotest.(check int) "reused row is zeroed" 0 (Ckks.Rvec.get r2 3);
  Ckks.Arena.release a r2;
  let r3 = Ckks.Arena.alloc_raw a in
  Alcotest.(check int) "raw alloc reuses too" 2 (Ckks.Arena.reuses a);
  Alcotest.(check int) "row length preserved" 8 (Ckks.Rvec.length r3);
  (* wrong-length rows are dropped, not parked *)
  Ckks.Arena.release a (Ckks.Rvec.create 4);
  Alcotest.(check int) "wrong length ignored" 0 (Ckks.Arena.available a)

(* ------------------------------------------------------------------ *)
(* lazy switch keys under a byte budget                                *)

let small_ctx () = Ckks.Context.make ~n:32 ~levels:4 ()

(* a switch key's raw residue rows, deep-copied out of any arena *)
let sk_snapshot (sk : Ckks.Keys.switch_key) =
  let poly (p : Ckks.Poly.t) =
    (p.Ckks.Poly.level, p.Ckks.Poly.special, p.Ckks.Poly.ntt,
     Array.map Ckks.Rvec.to_array p.Ckks.Poly.data)
  in
  (Array.map poly sk.Ckks.Keys.kb, Array.map poly sk.Ckks.Keys.ka)

let test_keys_lazy_under_budget () =
  let ctx = small_ctx () in
  let k = Ckks.Keys.keygen ~seed:3 ~key_budget:(64 * 1024 * 1024) ctx in
  let m0 = Ckks.Keys.mem k in
  Alcotest.(check int) "no switch key generated at keygen" 0
    m0.Ckks.Keys.gens;
  Alcotest.(check int) "nothing resident at keygen" 0
    m0.Ckks.Keys.resident_bytes;
  Alcotest.(check bool) "relin is lazy" true (k.Ckks.Keys.relin = None);
  ignore (Ckks.Keys.galois_key k 1);
  Alcotest.(check int) "first rotation generates" 1
    (Ckks.Keys.mem k).Ckks.Keys.gens;
  ignore (Ckks.Keys.galois_key k 1);
  Alcotest.(check int) "cached rotation does not regenerate" 1
    (Ckks.Keys.mem k).Ckks.Keys.gens;
  ignore (Ckks.Keys.relin_key k);
  Alcotest.(check int) "relin generates on first use" 2
    (Ckks.Keys.mem k).Ckks.Keys.gens;
  (* without a budget, relin is eager — the pre-lazy contract *)
  let k' = Ckks.Keys.keygen ~seed:3 ctx in
  Alcotest.(check bool) "unbudgeted keygen keeps the eager relin" true
    (k'.Ckks.Keys.relin <> None)

let test_keys_budget_respected () =
  let ctx = small_ctx () in
  let one = Ckks.Keys.switch_key_bytes ctx in
  let k = Ckks.Keys.keygen ~seed:5 ~key_budget:one ctx in
  ignore (Ckks.Keys.galois_key k 1);
  ignore (Ckks.Keys.galois_key k 2);
  ignore (Ckks.Keys.galois_key k 3);
  let m = Ckks.Keys.mem k in
  Alcotest.(check int) "one-key budget keeps one key" one
    m.Ckks.Keys.resident_bytes;
  Alcotest.(check int) "two evictions" 2 m.Ckks.Keys.evictions;
  Alcotest.(check int) "three generations" 3 m.Ckks.Keys.gens;
  Alcotest.(check int) "peak never exceeded one key" one
    m.Ckks.Keys.peak_bytes;
  ignore (Ckks.Keys.galois_key k 1);
  Alcotest.(check int) "evicted key regenerates" 4
    (Ckks.Keys.mem k).Ckks.Keys.gens

let test_keys_evict_regenerate_identical () =
  let ctx = small_ctx () in
  let one = Ckks.Keys.switch_key_bytes ctx in
  let k = Ckks.Keys.keygen ~seed:7 ~key_budget:one ctx in
  let rot5 = sk_snapshot (Ckks.Keys.galois_key k 5) in
  let relin = sk_snapshot (Ckks.Keys.relin_key k) in
  (* the one-key budget means requesting any other key evicts *)
  ignore (Ckks.Keys.galois_key k 9);
  Alcotest.(check bool) "rotation 5 was evicted" false
    (Hashtbl.mem k.Ckks.Keys.galois 5);
  Alcotest.(check bool) "relin was evicted" true (k.Ckks.Keys.relin = None);
  Alcotest.(check bool) "rotation 5 regenerates byte-identically" true
    (sk_snapshot (Ckks.Keys.galois_key k 5) = rot5);
  Alcotest.(check bool) "relin regenerates byte-identically" true
    (sk_snapshot (Ckks.Keys.relin_key k) = relin);
  (* and a fresh key set from the same seed agrees, whatever order the
     keys are asked for in *)
  let k2 = Ckks.Keys.keygen ~seed:7 ~key_budget:(64 * 1024 * 1024) ctx in
  Alcotest.(check bool) "fresh keygen, different request order, same bytes"
    true
    (sk_snapshot (Ckks.Keys.relin_key k2) = relin
    && sk_snapshot (Ckks.Keys.galois_key k2 5) = rot5)

let test_encrypt_det_order_independent () =
  let ctx = small_ctx () in
  let values = Array.init 16 (fun i -> float_of_int i /. 16.0) in
  let bytes k tag =
    Bytes.to_string
      (Ckks.Serialize.ciphertext_to_bytes
         (Ckks.Evaluator.encrypt_det k ~tag ~level:3 ~scale:(Float.ldexp 1.0 wbits)
            values))
  in
  let k1 = Ckks.Keys.keygen ~seed:11 ctx in
  let a3 = bytes k1 3 in
  let a4 = bytes k1 4 in
  let k2 = Ckks.Keys.keygen ~seed:11 ctx in
  let b4 = bytes k2 4 in
  let b3 = bytes k2 3 in
  Alcotest.(check bool) "tag 3 independent of encryption order" true
    (a3 = b3);
  Alcotest.(check bool) "tag 4 independent of encryption order" true
    (a4 = b4);
  Alcotest.(check bool) "distinct tags draw distinct randomness" true
    (a3 <> a4)

(* ------------------------------------------------------------------ *)
(* spill-to-disk                                                       *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fhe-mem-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_ctstore_round_trip () =
  with_temp_dir @@ fun dir ->
  let ctx = small_ctx () in
  let k = Ckks.Keys.keygen ~seed:13 ctx in
  let ct =
    Ckks.Evaluator.encrypt k ~level:3 ~scale:(Float.ldexp 1.0 wbits)
      (Array.init 16 (fun i -> sin (float_of_int i)))
  in
  Alcotest.(check bool) "spill verifies" true
    (Ckks.Ctstore.spill ~dir ~nonce:"t" ~id:7 ct);
  (match Ckks.Ctstore.load ctx ~dir ~nonce:"t" ~id:7 with
  | None -> Alcotest.fail "spilled ciphertext did not reload"
  | Some ct' ->
      Alcotest.(check bool) "reload is bit-identical" true
        (Ckks.Serialize.ciphertext_to_bytes ct'
        = Ckks.Serialize.ciphertext_to_bytes ct));
  Alcotest.(check bool) "other ids miss" true
    (Ckks.Ctstore.load ctx ~dir ~nonce:"t" ~id:8 = None);
  Alcotest.(check bool) "other nonces miss" true
    (Ckks.Ctstore.load ctx ~dir ~nonce:"u" ~id:7 = None);
  Ckks.Ctstore.drop ~dir ~nonce:"t" ~id:7;
  Alcotest.(check bool) "dropped entry misses" true
    (Ckks.Ctstore.load ctx ~dir ~nonce:"t" ~id:7 = None)

let test_ctstore_poisoned () =
  with_temp_dir @@ fun dir ->
  let ctx = small_ctx () in
  let k = Ckks.Keys.keygen ~seed:13 ctx in
  let ct =
    Ckks.Evaluator.encrypt k ~level:2 ~scale:(Float.ldexp 1.0 wbits)
      (Array.make 16 0.5)
  in
  Alcotest.(check bool) "spill verifies" true
    (Ckks.Ctstore.spill ~dir ~nonce:"p" ~id:1 ct);
  (* flip bytes in every stored file: whatever the entry layout, the
     checksum (or the ciphertext decoder) must catch it *)
  let rec corrupt path =
    if Sys.is_directory path then
      Array.iter (fun e -> corrupt (Filename.concat path e)) (Sys.readdir path)
    else begin
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (len / 2) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 8 '\xFF') 0 8);
      Unix.close fd
    end
  in
  corrupt dir;
  Alcotest.(check bool) "poisoned entry reads as a miss" true
    (Ckks.Ctstore.load ctx ~dir ~nonce:"p" ~id:1 = None)

(* ------------------------------------------------------------------ *)
(* backend: byte-identity across scheduling / pools / budgets          *)

let compilers =
  [ (`Eva, "eva"); (`Hecate, "hecate"); (`Rsv `Ba, "reserve-ba");
    (`Rsv `Ra, "reserve-ra"); (`Rsv `Full, "reserve-full") ]

let compile_with c p ~xmax_bits =
  match c with
  | `Eva -> Fhe_eva.Eva.compile ~xmax_bits ~rbits ~wbits p
  | `Hecate ->
      (Fhe_hecate.Hecate.compile ~iterations:60 ~xmax_bits ~rbits ~wbits p)
        .Fhe_hecate.Hecate.managed
  | `Rsv variant ->
      Reserve.Pipeline.compile ~variant ~xmax_bits ~rbits ~wbits p

let check_bitwise ~what a b =
  Array.iteri
    (fun o s ->
      Array.iteri
        (fun j x ->
          if
            not
              (Int64.equal (Int64.bits_of_float x)
                 (Int64.bits_of_float b.(o).(j)))
          then
            Alcotest.failf "%s: output %d slot %d: %h vs %h" what o j x
              b.(o).(j))
        s)
    a

(* tight enough to spill on every exec app; keys stay roomy so this
   exercises the ciphertext path, not key thrash *)
let tight_ct_budget = 131_072

let roomy_key_budget = 64 * 1024 * 1024

let test_sched_identity_all_apps () =
  Fhe_par.Pool.with_pool ~domains:4 @@ fun pool ->
  List.iter
    (fun (a : Reg.app) ->
      let p = a.Reg.exec_build () in
      let inputs = a.Reg.exec_inputs ~seed:42 in
      let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
      List.iter
        (fun (c, label) ->
          let m = compile_with c p ~xmax_bits in
          Validator.check_exn m;
          let off = Ckks.Backend.run ~sched:false m ~inputs in
          let on1 = Ckks.Backend.run m ~inputs in
          check_bitwise
            ~what:(Printf.sprintf "%s/%s sched on vs off" a.Reg.name label)
            off on1;
          let on4 = Ckks.Backend.run ~pool m ~inputs in
          check_bitwise
            ~what:(Printf.sprintf "%s/%s sched -j1 vs -j4" a.Reg.name label)
            on1 on4)
        compilers)
    Reg.all

let test_mem_stats_pool_independent () =
  let a = Reg.find "MLP" in
  let p = a.Reg.exec_build () in
  let inputs = a.Reg.exec_inputs ~seed:42 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
  let m = compile_with (`Rsv `Full) p ~xmax_bits in
  let _, st1 = Ckks.Backend.run_timed m ~inputs in
  let _, st4 =
    Fhe_par.Pool.with_pool ~domains:4 (fun pool ->
        Ckks.Backend.run_timed ~pool m ~inputs)
  in
  Alcotest.(check bool) "memory accounting is pool-independent" true
    (st1.Ckks.Backend.mem = st4.Ckks.Backend.mem);
  Alcotest.(check bool) "the arena actually serves reuses" true
    (st1.Ckks.Backend.mem.Ckks.Backend.arena_reuses > 0);
  Alcotest.(check bool) "measured peak is positive" true
    (st1.Ckks.Backend.mem.Ckks.Backend.peak_ct_bytes > 0)

let test_backend_budget_identity () =
  let a = Reg.find "HCD" in
  let p = a.Reg.exec_build () in
  let inputs = a.Reg.exec_inputs ~seed:42 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
  let m = compile_with (`Rsv `Full) p ~xmax_bits in
  let free, st_free = Ckks.Backend.run_timed m ~inputs in
  let tight, st_tight =
    Ckks.Backend.run_timed ~mem_budget:tight_ct_budget
      ~key_budget:roomy_key_budget m ~inputs
  in
  check_bitwise ~what:"HCD tight budget vs unlimited" free tight;
  Alcotest.(check bool) "the tight run actually spilled" true
    (st_tight.Ckks.Backend.mem.Ckks.Backend.ct_spills > 0);
  Alcotest.(check bool) "spilled values were reloaded" true
    (st_tight.Ckks.Backend.mem.Ckks.Backend.ct_reloads > 0);
  Alcotest.(check bool) "unlimited run never spills" true
    (st_free.Ckks.Backend.mem.Ckks.Backend.ct_spills = 0);
  Alcotest.(check bool) "levels unchanged under budget" true
    (st_free.Ckks.Backend.output_levels
    = st_tight.Ckks.Backend.output_levels)

let test_backend_spill_fault_recomputes () =
  let a = Reg.find "SF" in
  let p = a.Reg.exec_build () in
  let inputs = a.Reg.exec_inputs ~seed:42 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
  let m = compile_with (`Rsv `Full) p ~xmax_bits in
  let free = Ckks.Backend.run m ~inputs in
  (* every spilled entry is "lost": reloads must all fail over to
     deterministic recomputation *)
  let faulted, st =
    Ckks.Backend.run_timed ~mem_budget:tight_ct_budget
      ~key_budget:roomy_key_budget
      ~spill_fault:(fun _ -> true)
      m ~inputs
  in
  check_bitwise ~what:"SF all-spills-lost vs unlimited" free faulted;
  Alcotest.(check bool) "lost spills were recomputed" true
    (st.Ckks.Backend.mem.Ckks.Backend.ct_recomputes > 0);
  Alcotest.(check bool) "nothing reloaded from the faulted store" true
    (st.Ckks.Backend.mem.Ckks.Backend.ct_reloads = 0)

(* the tensor frontend's batched packing is the memory-pressure case
   the liveness scheduler exists for: many interleaved users per
   ciphertext keep whole layers live at once.  Under a tight ciphertext
   budget the batched MLP must actually spill — and decrypt
   bit-identically to the unlimited run. *)
let test_tensor_batched_spills () =
  let a = Reg.find "MLP-B" in
  let p = a.Reg.exec_build () in
  let inputs = a.Reg.exec_inputs ~seed:42 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
  let m = compile_with (`Rsv `Full) p ~xmax_bits in
  let free = Ckks.Backend.run m ~inputs in
  let tight, st =
    Ckks.Backend.run_timed ~mem_budget:tight_ct_budget
      ~key_budget:roomy_key_budget m ~inputs
  in
  check_bitwise ~what:"MLP-B tight budget vs unlimited" free tight;
  Alcotest.(check bool) "the batched tensor app spilled" true
    (st.Ckks.Backend.mem.Ckks.Backend.ct_spills > 0);
  Alcotest.(check bool) "spilled ciphertexts were reloaded" true
    (st.Ckks.Backend.mem.Ckks.Backend.ct_reloads > 0)

let test_backend_key_budget_identity () =
  let a = Reg.find "MLP" in
  let p = a.Reg.exec_build () in
  let inputs = a.Reg.exec_inputs ~seed:42 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
  let m = compile_with (`Rsv `Full) p ~xmax_bits in
  let free = Ckks.Backend.run m ~inputs in
  let lean, st =
    Ckks.Backend.run_timed
      ~key_budget:(2 * 1024 * 1024)
      m ~inputs
  in
  check_bitwise ~what:"MLP key budget vs unlimited" free lean;
  Alcotest.(check bool) "keys were evicted under the budget" true
    (st.Ckks.Backend.mem.Ckks.Backend.key_evictions > 0);
  Alcotest.(check bool) "evicted keys were regenerated" true
    (st.Ckks.Backend.mem.Ckks.Backend.key_gens
    > st.Ckks.Backend.mem.Ckks.Backend.key_evictions)

(* ------------------------------------------------------------------ *)
(* the exec-scale LeNet peak-memory win                                *)

(* pinned ceiling for the scheduled analytic peak of exec-scale
   LeNet-5 under reserve-full: measured 9,338,880 bytes (down 37% from
   the 14,893,056-byte program-order peak).  Byte counts are
   deterministic, so the headroom is small on purpose — growing past
   it is a real scheduling regression, not jitter. *)
let lenet_peak_ceiling = 10_000_000

let test_lenet_peak_drop () =
  let a = Reg.find "Lenet-5" in
  let p = a.Reg.exec_build () in
  let inputs = a.Reg.exec_inputs ~seed:42 in
  let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
  let m = compile_with (`Rsv `Full) p ~xmax_bits in
  let _, st = Ckks.Backend.run_timed m ~inputs in
  let mem = st.Ckks.Backend.mem in
  if not mem.Ckks.Backend.reordered then
    Alcotest.fail "LeNet schedule fell back to program order";
  let sched = mem.Ckks.Backend.sched_ct_bytes in
  let order = mem.Ckks.Backend.order_ct_bytes in
  (* the >= 30% acceptance bound: sched <= 0.7 * order, in integers *)
  if sched * 10 > order * 7 then
    Alcotest.failf
      "LeNet peak live bytes only dropped %d -> %d (want >= 30%%)" order
      sched;
  if sched > lenet_peak_ceiling then
    Alcotest.failf "LeNet scheduled peak %d exceeds pinned ceiling %d" sched
      lenet_peak_ceiling;
  Alcotest.(check bool) "measured peak respects the analytic bound" true
    (mem.Ckks.Backend.peak_ct_bytes <= sched)

let suite =
  [ Alcotest.test_case "sched: topological validity (200 programs)" `Quick
      test_sched_topological;
    Alcotest.test_case "sched: peak <= program-order peak (200 programs)"
      `Quick test_sched_peak_bound;
    Alcotest.test_case "sched: free plan sound (50 programs)" `Quick
      test_sched_free_plan_sound;
    Alcotest.test_case "sched: reorder:false is the identity plan" `Quick
      test_sched_identity_mode;
    Alcotest.test_case "sched: wide sum must beat program order" `Quick
      test_sched_wide_sum_improves;
    Alcotest.test_case "sched: rejects malformed graphs" `Quick
      test_sched_rejects_bad_graphs;
    Alcotest.test_case "arena: freelist reuse + zeroing" `Quick
      test_arena_reuse;
    Alcotest.test_case "keys: lazy under budget, eager without" `Quick
      test_keys_lazy_under_budget;
    Alcotest.test_case "keys: LRU eviction respects the byte budget" `Quick
      test_keys_budget_respected;
    Alcotest.test_case "keys: evict -> regenerate is byte-identical" `Quick
      test_keys_evict_regenerate_identical;
    Alcotest.test_case "keys: derived encryption streams commute" `Quick
      test_encrypt_det_order_independent;
    Alcotest.test_case "ctstore: spill/load round trip + drop" `Quick
      test_ctstore_round_trip;
    Alcotest.test_case "ctstore: poisoned entry reads as a miss" `Quick
      test_ctstore_poisoned;
    Alcotest.test_case
      "backend: sched on == off, 8 apps x 5 compilers, -j1/-j4" `Slow
      test_sched_identity_all_apps;
    Alcotest.test_case "backend: mem stats pool-independent" `Slow
      test_mem_stats_pool_independent;
    Alcotest.test_case "backend: tight budget spills, decrypts identical"
      `Slow test_backend_budget_identity;
    Alcotest.test_case "backend: lost spills recompute, decrypts identical"
      `Slow test_backend_spill_fault_recomputes;
    Alcotest.test_case
      "backend: batched tensor app spills under budget, decrypts identical"
      `Slow test_tensor_batched_spills;
    Alcotest.test_case "backend: key budget evicts, decrypts identical"
      `Slow test_backend_key_budget_identity;
    Alcotest.test_case "lenet: scheduled peak >= 30% under program order"
      `Slow test_lenet_peak_drop ]

let () = Alcotest.run "fhe-mem" [ ("mem", suite) ]
