(* Tests for the conformance subsystem (lib/check): oracle, metamorphic
   relations, differential driver, coverage-guided generation, and the
   machine-readable perf-gate schema — plus the unit-test gaps in
   Fhe_sim.Faults and Reserve.Diag that the subsystem leans on.

   This executable is separate from test_main so the conformance tier
   can also run alone via `dune build @check`. *)

open Fhe_ir
module Check = Fhe_check
module Oracle = Check.Oracle
module Invariants = Check.Invariants
module Metamorphic = Check.Metamorphic
module Differential = Check.Differential
module Coverage = Check.Coverage
module Benchjson = Check.Benchjson
module Progen = Fhe_sim.Progen
module Faults = Fhe_sim.Faults
module Diag = Reserve.Diag
module Reg = Fhe_apps.Registry

let str = Format.asprintf

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* structural snapshot of a managed program, for purity/determinism *)
let fingerprint (m : Managed.t) =
  ( Program.ops m.Managed.prog,
    Program.outputs m.Managed.prog,
    m.Managed.scale,
    m.Managed.level )

(* ----------------------------------------------------------------- *)
(* small program constructors                                        *)

let prog_add () =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" and y = Builder.input b "y" in
  Builder.finish b ~outputs:[ Builder.add b x y ]

let prog_sub () =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" and y = Builder.input b "y" in
  Builder.finish b ~outputs:[ Builder.sub b x y ]

(* a mul chain deep enough that every compiler must insert rescales *)
let prog_mul_chain () =
  let b = Builder.create ~n_slots:8 () in
  let x = Builder.input b "x" and y = Builder.input b "y" in
  let m1 = Builder.mul b x y in
  let m2 = Builder.mul b m1 x in
  Builder.finish b ~outputs:[ Builder.mul b m2 y ]

let compile_full ?(wbits = 30) p =
  Reserve.Pipeline.compile ~variant:`Full ~rbits:60 ~wbits p

(* ----------------------------------------------------------------- *)
(* oracle                                                            *)

let test_synth_inputs_deterministic () =
  let p = (Progen.make 11).Progen.prog in
  let a = Oracle.synth_inputs ~seed:5 p
  and b = Oracle.synth_inputs ~seed:5 p
  and c = Oracle.synth_inputs ~seed:6 p in
  Alcotest.(check bool) "same seed, same vectors" true (a = b);
  Alcotest.(check bool) "different seed, different vectors" true (a <> c);
  List.iter
    (fun (_, v) ->
      Array.iter
        (fun x ->
          Alcotest.(check bool) "in [-1, 1)" true (x >= -1.0 && x < 1.0))
        v)
    a

let test_oracle_accepts_correct () =
  let g = Progen.make 3 in
  let m = compile_full g.Progen.prog in
  let r = Oracle.check g.Progen.prog m ~inputs:g.Progen.inputs in
  Alcotest.(check bool) (str "%a" Oracle.pp r) true (Oracle.ok r)

let test_oracle_flags_wrong_program () =
  (* managed program computes x - y, source says x + y: the oracle must
     notice -- this is the mutation-killing direction of the judgment *)
  let src = prog_add () in
  let m = compile_full (prog_sub ()) in
  let inputs = Oracle.synth_inputs src in
  let r = Oracle.check src m ~inputs in
  Alcotest.(check bool) "mismatch reported" false (Oracle.ok r);
  Alcotest.(check bool) "mismatch list non-empty" true
    (List.length r.Oracle.mismatches > 0)

(* ----------------------------------------------------------------- *)
(* invariants                                                        *)

let test_invariants_clean_on_pipeline_output () =
  List.iter
    (fun variant ->
      let m =
        Reserve.Pipeline.compile ~variant ~rbits:60 ~wbits:30
          (prog_mul_chain ())
      in
      let vs = Invariants.check m in
      Alcotest.(check int)
        (str "variant clean, got %d violation(s)" (List.length vs))
        0 (List.length vs))
    [ `Ba; `Ra; `Full ]

let test_invariants_flag_corruption () =
  let m = compile_full (prog_mul_chain ()) in
  (* a dropped rescale breaks the reserve ledger as well as Table 2 *)
  match Faults.inject Faults.Dropped_rescale ~seed:1 m with
  | None -> Alcotest.fail "expected a rescale site in the mul chain"
  | Some bad ->
      Alcotest.(check bool) "lemma violation found" true
        (Invariants.check bad <> [])

(* ----------------------------------------------------------------- *)
(* metamorphic: 200 fixed-seed generated programs                     *)

let test_metamorphic_200 () =
  for seed = 0 to 199 do
    let g = Progen.make seed in
    let fs = Metamorphic.check g.Progen.prog ~inputs:g.Progen.inputs in
    match fs with
    | [] -> ()
    | f :: _ ->
        Alcotest.fail
          (str "seed %d: %a (%d failure(s))" seed Metamorphic.pp_failure f
             (List.length fs))
  done

(* ----------------------------------------------------------------- *)
(* differential: oracle agreement on generated programs               *)

let test_differential_200 () =
  for seed = 0 to 199 do
    let g = Progen.make seed in
    let r =
      Differential.run ~hecate_iterations:8 ~label:(str "gen-%d" seed)
        g.Progen.prog ~inputs:g.Progen.inputs
    in
    match Differential.failures r with
    | [] -> ()
    | (c, what) :: _ ->
        Alcotest.fail (str "seed %d, %s: %s" seed c what)
  done

(* ----------------------------------------------------------------- *)
(* differential regression pins: the eight registry apps              *)

(* input level L per app, measured at rbits 60 / waterline 30 (the
   BENCH_compile.json baseline).  EVA and the reserve variants are
   deterministic, so these are exact; Hecate's exploration quality
   depends on the iteration budget, so it is only bounded. *)
let pinned_levels =
  (* app, eva, ba, ra, full *)
  [
    ("SF", 3, 3, 2, 2);
    ("HCD", 5, 4, 4, 4);
    ("LR", 5, 7, 5, 5);
    ("MR", 5, 7, 5, 5);
    ("PR", 8, 8, 6, 6);
    ("MLP", 4, 4, 4, 4);
    ("Lenet-5", 10, 10, 10, 10);
    ("Lenet-C", 10, 10, 10, 10);
  ]

(* strategies are first-class modules: find entries by canonical name,
   never by polymorphic equality *)
let level_of (r : Differential.report) cname =
  match
    List.find_opt
      (fun e -> Differential.compiler_name e.Differential.compiler = cname)
      r.Differential.entries
  with
  | Some e -> e.Differential.input_level
  | None -> Alcotest.fail ("missing differential entry: " ^ cname)

let check_pins name (r : Differential.report) =
  let eva, ba, ra, full =
    let _, a, b, c, d =
      List.find (fun (n, _, _, _, _) -> n = name) pinned_levels
    in
    (a, b, c, d)
  in
  Alcotest.(check int) (name ^ " eva L") eva (level_of r "eva");
  Alcotest.(check int) (name ^ " ba L") ba (level_of r "reserve-ba");
  Alcotest.(check int) (name ^ " ra L") ra (level_of r "reserve-ra");
  Alcotest.(check int) (name ^ " full L") full (level_of r "reserve-full");
  let hec = level_of r "hecate" in
  Alcotest.(check bool)
    (str "%s hecate L=%d within [%d, %d]" name hec (full - 1) (eva + 1))
    true
    (hec >= full - 1 && hec <= eva + 1)

let test_differential_small_apps () =
  List.iter
    (fun (a : Reg.app) ->
      let p = a.Reg.build () in
      let inputs = a.Reg.inputs ~seed:42 in
      let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
      let r =
        Differential.run ~wbits:30 ~xmax_bits ~hecate_iterations:60
          ~label:a.Reg.name p ~inputs
      in
      (match Differential.failures r with
      | [] -> ()
      | (c, what) :: _ -> Alcotest.fail (str "%s, %s: %s" a.Reg.name c what));
      check_pins a.Reg.name r)
    Reg.small

(* The LeNets are too large to push through the interpreter here (the
   CLI run `fhec check --apps` covers the oracle for them); compile
   under every compiler and pin legality, the reserve lemmas and L. *)
let test_differential_lenet () =
  List.iter
    (fun name ->
      let a = Reg.find name in
      let p = a.Reg.build () in
      (* direct engine calls, bypassing the registry on purpose: an
         independent cross-check that the registered strategies compile
         the same plans (data, not a dispatch on compiler identity) *)
      let direct_compiles =
        [ ("eva", fun p -> Fhe_eva.Eva.compile ~rbits:60 ~wbits:30 p);
          ( "hecate",
            fun p ->
              (Fhe_hecate.Hecate.compile ~iterations:10 ~rbits:60 ~wbits:30 p)
                .Fhe_hecate.Hecate.managed );
          ( "reserve-ba",
            fun p -> Reserve.Pipeline.compile ~variant:`Ba ~rbits:60 ~wbits:30 p
          );
          ( "reserve-ra",
            fun p -> Reserve.Pipeline.compile ~variant:`Ra ~rbits:60 ~wbits:30 p
          );
          ( "reserve-full",
            fun p ->
              Reserve.Pipeline.compile ~variant:`Full ~rbits:60 ~wbits:30 p )
        ]
      in
      let entry_level cname =
        let m = (List.assoc cname direct_compiles) p in
        (match Validator.check m with
        | Ok () -> ()
        | Error (e :: _) ->
            Alcotest.fail (str "%s %s: %a" name cname Validator.pp_error e)
        | Error [] -> ());
        Alcotest.(check int)
          (str "%s %s lemma violations" name cname)
          0
          (List.length (Invariants.check m));
        Managed.input_level m
      in
      let eva, ba, ra, full =
        let _, a, b, c, d =
          List.find (fun (n, _, _, _, _) -> n = name) pinned_levels
        in
        (a, b, c, d)
      in
      Alcotest.(check int) (name ^ " eva L") eva (entry_level "eva");
      Alcotest.(check int) (name ^ " ba L") ba (entry_level "reserve-ba");
      Alcotest.(check int) (name ^ " ra L") ra (entry_level "reserve-ra");
      Alcotest.(check int) (name ^ " full L") full (entry_level "reserve-full");
      let hec = entry_level "hecate" in
      Alcotest.(check bool)
        (str "%s hecate L=%d sane" name hec)
        true
        (hec >= full - 1 && hec <= eva + 1))
    [ "Lenet-5"; "Lenet-C" ]

(* ----------------------------------------------------------------- *)
(* faults: unit-test gaps                                             *)

let test_faults_names () =
  let names = List.map Faults.name Faults.all in
  Alcotest.(check (list string))
    "stable labels"
    [ "scale-off-by-one"; "dropped-rescale"; "level-overflow";
      "dangling-operand" ]
    names;
  List.iter
    (fun c ->
      Alcotest.(check string) "pp prints name" (Faults.name c)
        (str "%a" Faults.pp c))
    Faults.all

let test_faults_every_class_caught () =
  let m = compile_full (prog_mul_chain ()) in
  List.iter
    (fun cls ->
      match Faults.inject cls ~seed:7 m with
      | None ->
          Alcotest.fail
            (str "no injection site for %s in a rescale-rich program"
               (Faults.name cls))
      | Some bad -> (
          match Validator.check bad with
          | Error _ -> ()
          | Ok () ->
              Alcotest.fail
                (str "validator accepted %s corruption" (Faults.name cls))))
    Faults.all

let test_faults_no_site () =
  (* an add-only program compiles without a single rescale: the
     dropped-rescale class must decline rather than corrupt blindly *)
  let m = compile_full (prog_add ()) in
  Alcotest.(check bool)
    "no rescale to drop" true
    (Faults.inject Faults.Dropped_rescale ~seed:0 m = None)

let test_faults_pure () =
  let m = compile_full (prog_mul_chain ()) in
  let before = fingerprint m in
  List.iter (fun cls -> ignore (Faults.inject cls ~seed:3 m)) Faults.all;
  Alcotest.(check bool) "original untouched" true (before = fingerprint m);
  Alcotest.(check bool) "original still legal" true
    (Validator.check m = Ok ())

let test_faults_deterministic () =
  let m = compile_full (prog_mul_chain ()) in
  List.iter
    (fun cls ->
      let show = Option.map fingerprint in
      let a = show (Faults.inject cls ~seed:9 m)
      and b = show (Faults.inject cls ~seed:9 m) in
      Alcotest.(check bool)
        (str "%s: equal seeds, equal corruption" (Faults.name cls))
        true (a = b && a <> None))
    Faults.all

(* ----------------------------------------------------------------- *)
(* diag: unit-test gaps                                               *)

let test_diag_names () =
  Alcotest.(check (list string))
    "severities"
    [ "error"; "warning"; "info" ]
    (List.map Diag.severity_name [ Diag.Error; Diag.Warning; Diag.Info ]);
  Alcotest.(check (list string))
    "passes"
    [ "parse"; "ordering"; "allocation"; "placement"; "validation";
      "oracle"; "driver" ]
    (List.map Diag.pass_name
       [ Diag.Parse; Diag.Ordering; Diag.Allocation; Diag.Placement;
         Diag.Validation; Diag.Oracle; Diag.Driver ])

let test_diag_render_round_trip () =
  (* every field must survive into the rendered form *)
  let d =
    Diag.make ~severity:Diag.Warning ~op:12 ~hint:"raise the waterline"
      Diag.Allocation "scale underflow"
  in
  let s = Diag.to_string d in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (str "rendered %S contains %S" s needle)
        true (contains s needle))
    [ "warning"; "allocation"; "12"; "scale underflow"; "raise the waterline" ]

let test_diag_constructors () =
  let e = Diag.errorf Diag.Driver "fell back %d time(s)" 2 in
  Alcotest.(check bool) "errorf is error" true (Diag.is_error e);
  Alcotest.(check string) "errorf message" "fell back 2 time(s)" e.Diag.msg;
  let w = Diag.warnf Diag.Oracle "drift %.1f" 0.5 in
  Alcotest.(check bool) "warnf not error" false (Diag.is_error w);
  Alcotest.(check string) "warnf message" "drift 0.5" w.Diag.msg

let test_diag_of_exn () =
  List.iter
    (fun (exn, needle) ->
      let d = Diag.of_exn Diag.Validation exn in
      Alcotest.(check bool) "of_exn is error" true (Diag.is_error d);
      Alcotest.(check bool)
        (str "%S mentions %S" d.Diag.msg needle)
        true
        (contains d.Diag.msg needle))
    [
      (Failure "boom", "boom");
      (Invalid_argument "bad arg", "bad arg");
      ((try assert false with e -> e), "assertion");
    ]

let test_diag_errors_filter () =
  let mk sev msg = Diag.make ~severity:sev Diag.Driver msg in
  let ds =
    [ mk Diag.Warning "w1"; mk Diag.Error "e1"; mk Diag.Info "i1";
      mk Diag.Error "e2" ]
  in
  Alcotest.(check (list string))
    "error subset in order" [ "e1"; "e2" ]
    (List.map (fun d -> d.Diag.msg) (Diag.errors ds))

let test_diag_of_validator_error () =
  let m = compile_full (prog_mul_chain ()) in
  match Faults.inject Faults.Scale_off_by_one ~seed:1 m with
  | None -> Alcotest.fail "expected a scale site"
  | Some bad -> (
      match Validator.check bad with
      | Ok () -> Alcotest.fail "validator accepted corruption"
      | Error (e :: _) ->
          let d = Diag.of_validator_error e in
          Alcotest.(check bool) "op preserved" true
            (d.Diag.op = Some e.Validator.op);
          Alcotest.(check string) "validation pass" "validation"
            (Diag.pass_name d.Diag.pass)
      | Error [] -> Alcotest.fail "empty error list")

(* ----------------------------------------------------------------- *)
(* coverage                                                           *)

let test_coverage_features () =
  let b = Builder.create ~n_slots:16 () in
  let x = Builder.input b "x" and y = Builder.input b "y" in
  let m = Builder.mul b x y in
  let r = Builder.rotate b m 4 in
  let p = Builder.finish b ~outputs:[ r ] in
  let fs = Coverage.features p in
  List.iter
    (fun f ->
      Alcotest.(check bool) (str "feature %s present" f) true (List.mem f fs))
    [ "op:mul-cc"; "op:rotate"; "depth:2"; "rot:pow2" ];
  Alcotest.(check bool) "sorted, no dups" true
    (List.sort_uniq compare fs = fs)

let test_coverage_generate_deterministic () =
  let run () =
    let t = Coverage.create () in
    let cs = Coverage.generate t ~seed:17 ~budget:24 in
    List.map
      (fun c -> (c.Coverage.profile, c.Coverage.seed, c.Coverage.fresh))
      cs
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same battery decisions" true (a = b);
  Alcotest.(check int) "exactly budget candidates" 24 (List.length a)

let test_coverage_guided_beats_uniform () =
  (* the battery must reach features the default mix alone does not:
     that is the whole point of coverage-guided generation *)
  let budget = 32 in
  let guided = Coverage.create () in
  ignore (Coverage.generate guided ~seed:5 ~budget);
  let uniform = Coverage.create () in
  for i = 0 to budget - 1 do
    ignore (Coverage.add uniform (Progen.make ((5 * 1_000_003) + i)).Progen.prog)
  done;
  Alcotest.(check bool)
    (str "guided %d > uniform %d features" (Coverage.cardinal guided)
       (Coverage.cardinal uniform))
    true
    (Coverage.cardinal guided > Coverage.cardinal uniform)

let test_coverage_distill () =
  let t = Coverage.create () in
  let cs = Coverage.generate t ~seed:2 ~budget:20 in
  let kept = Coverage.distill cs in
  Alcotest.(check bool) "corpus non-empty" true (kept <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "distilled candidates contributed" true
        (c.Coverage.fresh > 0))
    kept;
  Alcotest.(check bool) "corpus no larger than battery" true
    (List.length kept <= List.length cs)

(* ----------------------------------------------------------------- *)
(* benchjson                                                          *)

let sample_run () =
  {
    Benchjson.rbits = 60;
    wbits = 30;
    domains = 4;
    wall_time_par = 12.5;
    cache =
      {
        Benchjson.cache_hits = 10;
        cache_misses = 2;
        cache_stores = 12;
        cache_poisoned = 0;
      };
    serve =
      Some
        {
          Benchjson.serve_requests = 32;
          serve_qps = 180.0;
          serve_p50_ms = 4.5;
          serve_p99_ms = 11.0;
          serve_shed = 3;
          serve_timeouts = 0;
          serve_degraded = 1;
        };
    portfolio =
      Some
        {
          Benchjson.p_strategies = [ "eva"; "reserve-full" ];
          p_wins = [ ("eva", 0); ("reserve-full", 1) ];
          p_entries =
            [
              {
                Benchjson.p_app = "SF";
                p_winner = "reserve-full";
                p_win_est_latency_us = 200.0;
                p_legs = [ ("eva", 250.0); ("reserve-full", 200.0) ];
              };
            ];
        };
    entries =
      [
        {
          Benchjson.app = "SF";
          compiler = "eva";
          compile_ms = 1.5;
          warm_compile_ms = 0.02;
          input_level = 3;
          modulus_bits = 180;
          est_latency_us = 250.0;
          exec =
            Some
              {
                Benchjson.exec_ms = 42.0;
                encrypt_ms = 6.0;
                eval_ms = 30.0;
                decrypt_ms = 6.0;
                keygen_ms = 55.0;
                max_err = 3.5e-3;
                peak_ct_bytes = 1_048_576;
                order_ct_bytes = 2_097_152;
                resident_ct_bytes = 4_194_304;
                peak_key_bytes = 25_165_824;
              };
        };
        {
          Benchjson.app = "SF";
          compiler = "reserve-full";
          compile_ms = 0.8;
          warm_compile_ms = 0.01;
          input_level = 2;
          modulus_bits = 120;
          est_latency_us = 200.0;
          exec = None;
        };
      ];
  }

let test_benchjson_round_trip () =
  let r = sample_run () in
  let s = Benchjson.to_string (Benchjson.run_to_json r) in
  match Benchjson.parse s with
  | Error e -> Alcotest.fail ("self-emitted JSON rejected: " ^ e)
  | Ok j -> (
      match Benchjson.run_of_json j with
      | Error e -> Alcotest.fail ("schema round trip failed: " ^ e)
      | Ok r' -> Alcotest.(check bool) "round trip exact" true (r = r'))

(* a v1 file (no domains / wall_time_par) must still parse, as a
   sequential run *)
let test_benchjson_v1_compat () =
  let s =
    {|{"schema":"fhe-bench-compile/v1","rbits":60,"waterline":30,"entries":[{"app":"SF","compiler":"eva","compile_ms":1.5,"input_level":3,"modulus_bits":180,"est_latency_us":250}]}|}
  in
  match Result.bind (Benchjson.parse s) Benchjson.run_of_json with
  | Error e -> Alcotest.fail ("v1 baseline rejected: " ^ e)
  | Ok r ->
      Alcotest.(check int) "v1 defaults to one domain" 1 r.Benchjson.domains;
      Alcotest.(check (float 0.0)) "v1 has no batch wall time" 0.0
        r.Benchjson.wall_time_par;
      Alcotest.(check int) "v1 entries survive" 1
        (List.length r.Benchjson.entries)

let test_benchjson_v3_fields () =
  let r = sample_run () in
  let s = Benchjson.to_string (Benchjson.run_to_json r) in
  Alcotest.(check bool) "emits the v7 schema tag" true
    (contains s "fhe-bench-compile/v7");
  match Result.bind (Benchjson.parse s) Benchjson.run_of_json with
  | Error e -> Alcotest.fail e
  | Ok r' ->
      Alcotest.(check int) "domains round trips" r.Benchjson.domains
        r'.Benchjson.domains;
      Alcotest.(check (float 1e-9)) "wall_time_par round trips"
        r.Benchjson.wall_time_par r'.Benchjson.wall_time_par;
      Alcotest.(check int) "cache hits round trip"
        r.Benchjson.cache.Benchjson.cache_hits
        r'.Benchjson.cache.Benchjson.cache_hits;
      Alcotest.(check (float 1e-9)) "warm_compile_ms round trips"
        (List.hd r.Benchjson.entries).Benchjson.warm_compile_ms
        (List.hd r'.Benchjson.entries).Benchjson.warm_compile_ms;
      let serve r =
        match r.Benchjson.serve with
        | Some s -> s
        | None -> Alcotest.fail "serve block lost in round trip"
      in
      Alcotest.(check int) "serve requests round trip"
        (serve r).Benchjson.serve_requests (serve r').Benchjson.serve_requests;
      Alcotest.(check (float 1e-9)) "serve qps round trips"
        (serve r).Benchjson.serve_qps (serve r').Benchjson.serve_qps;
      Alcotest.(check int) "serve shed round trips"
        (serve r).Benchjson.serve_shed (serve r').Benchjson.serve_shed

(* a v3 file (no serve block) must still parse, with serve unmeasured *)
let test_benchjson_v3_compat () =
  let s =
    {|{"schema":"fhe-bench-compile/v3","rbits":60,"waterline":30,"domains":4,"wall_time_par":12.5,"cache":{"hits":10,"misses":2,"stores":12,"poisoned":0},"entries":[{"app":"SF","compiler":"eva","compile_ms":1.5,"warm_compile_ms":0.02,"input_level":3,"modulus_bits":180,"est_latency_us":250}]}|}
  in
  match Result.bind (Benchjson.parse s) Benchjson.run_of_json with
  | Error e -> Alcotest.fail ("v3 baseline rejected: " ^ e)
  | Ok r ->
      Alcotest.(check int) "v3 keeps its cache stats" 10
        r.Benchjson.cache.Benchjson.cache_hits;
      Alcotest.(check bool) "v3 has no serve block" true
        (r.Benchjson.serve = None)

(* a v4 file (no per-entry exec stats) must still parse, with exec
   unmeasured *)
let test_benchjson_v4_compat () =
  let s =
    {|{"schema":"fhe-bench-compile/v4","rbits":60,"waterline":30,"domains":4,"wall_time_par":12.5,"cache":{"hits":10,"misses":2,"stores":12,"poisoned":0},"serve":{"requests":32,"qps":180,"p50_ms":4.5,"p99_ms":11,"shed":3,"timeouts":0,"degraded":1},"entries":[{"app":"SF","compiler":"eva","compile_ms":1.5,"warm_compile_ms":0.02,"input_level":3,"modulus_bits":180,"est_latency_us":250}]}|}
  in
  match Result.bind (Benchjson.parse s) Benchjson.run_of_json with
  | Error e -> Alcotest.fail ("v4 baseline rejected: " ^ e)
  | Ok r ->
      Alcotest.(check bool) "v4 keeps its serve block" true
        (r.Benchjson.serve <> None);
      Alcotest.(check bool) "v4 entries have no exec stats" true
        ((List.hd r.Benchjson.entries).Benchjson.exec = None)

(* a v5 file (no portfolio block) must still parse — the committed
   BENCH_compile.json / BENCH_exec.json baselines are v5 *)
let test_benchjson_v5_compat () =
  let s =
    {|{"schema":"fhe-bench-compile/v5","rbits":60,"waterline":30,"domains":4,"wall_time_par":12.5,"cache":{"hits":10,"misses":2,"stores":12,"poisoned":0},"serve":null,"entries":[{"app":"SF","compiler":"eva","compile_ms":1.5,"warm_compile_ms":0.02,"input_level":3,"modulus_bits":180,"est_latency_us":250,"exec":null}]}|}
  in
  match Result.bind (Benchjson.parse s) Benchjson.run_of_json with
  | Error e -> Alcotest.fail ("v5 baseline rejected: " ^ e)
  | Ok r ->
      Alcotest.(check bool) "v5 has no portfolio block" true
        (r.Benchjson.portfolio = None);
      Alcotest.(check int) "v5 entries survive" 1
        (List.length r.Benchjson.entries)

(* a v6 file (exec stats without memory byte counts) must still parse,
   with the byte counts reading as unmeasured (0) — the mem gate rules
   fire only on baselines that measured them *)
let test_benchjson_v6_compat () =
  let s =
    {|{"schema":"fhe-bench-compile/v6","rbits":60,"waterline":30,"domains":4,"wall_time_par":12.5,"cache":{"hits":10,"misses":2,"stores":12,"poisoned":0},"serve":null,"portfolio":null,"entries":[{"app":"SF","compiler":"eva","compile_ms":1.5,"warm_compile_ms":0.02,"input_level":3,"modulus_bits":180,"est_latency_us":250,"exec":{"exec_ms":42,"encrypt_ms":6,"eval_ms":30,"decrypt_ms":6,"keygen_ms":55,"max_err":0.0035}}]}|}
  in
  match Result.bind (Benchjson.parse s) Benchjson.run_of_json with
  | Error e -> Alcotest.fail ("v6 baseline rejected: " ^ e)
  | Ok r -> (
      match (List.hd r.Benchjson.entries).Benchjson.exec with
      | None -> Alcotest.fail "v6 exec stats lost"
      | Some x ->
          Alcotest.(check (float 1e-9)) "v6 keeps measured runtime" 42.0
            x.Benchjson.exec_ms;
          Alcotest.(check int) "v6 peak ct bytes unmeasured" 0
            x.Benchjson.peak_ct_bytes;
          Alcotest.(check int) "v6 peak key bytes unmeasured" 0
            x.Benchjson.peak_key_bytes)

(* a v2 file (no cache block, no warm timings) must still parse *)
let test_benchjson_v2_compat () =
  let s =
    {|{"schema":"fhe-bench-compile/v2","rbits":60,"waterline":30,"domains":4,"wall_time_par":12.5,"entries":[{"app":"SF","compiler":"eva","compile_ms":1.5,"input_level":3,"modulus_bits":180,"est_latency_us":250}]}|}
  in
  match Result.bind (Benchjson.parse s) Benchjson.run_of_json with
  | Error e -> Alcotest.fail ("v2 baseline rejected: " ^ e)
  | Ok r ->
      Alcotest.(check int) "v2 keeps its domains" 4 r.Benchjson.domains;
      Alcotest.(check int) "v2 has no cache stats" 0
        r.Benchjson.cache.Benchjson.cache_hits;
      Alcotest.(check (float 0.0)) "v2 warm time reads as unmeasured" 0.0
        (List.hd r.Benchjson.entries).Benchjson.warm_compile_ms

let test_benchjson_parse_rejects () =
  List.iter
    (fun s ->
      match Benchjson.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (str "parser accepted %S" s))
    [ "{"; "[1,"; "{} trailing"; "\"unterminated"; "nul"; "" ]

let test_benchjson_escapes () =
  let j = Benchjson.Obj [ ("k\"ey", Benchjson.Str "a\\b\nc") ] in
  match Benchjson.parse (Benchjson.to_string j) with
  | Ok j' -> Alcotest.(check bool) "escape round trip" true (j = j')
  | Error e -> Alcotest.fail e

let test_benchjson_rejects_unknown_schema () =
  let s =
    {|{"schema":"somebody-else/v9","rbits":60,"waterline":30,"entries":[]}|}
  in
  match Benchjson.parse s with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Benchjson.run_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown schema accepted")

let test_benchjson_gate () =
  let base = sample_run () in
  let chk ~expect name msgs =
    Alcotest.(check bool)
      (str "%s: %s" name (String.concat "; " msgs))
      expect (msgs <> [])
  in
  chk ~expect:false "identical runs pass"
    (Benchjson.compare_runs ~baseline:base ~current:base ());
  let drop =
    { base with Benchjson.entries = [ List.hd base.Benchjson.entries ] }
  in
  chk ~expect:true "missing entry flagged"
    (Benchjson.compare_runs ~baseline:base ~current:drop ());
  let bump f =
    {
      base with
      Benchjson.entries = List.map f base.Benchjson.entries;
    }
  in
  chk ~expect:true "modulus growth flagged"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump (fun e ->
              { e with Benchjson.modulus_bits = e.Benchjson.modulus_bits + 60 }))
       ());
  chk ~expect:true "latency blowup flagged"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump (fun e ->
              { e with Benchjson.est_latency_us = e.Benchjson.est_latency_us *. 2.0 }))
       ());
  chk ~expect:false "2x compile time within slack"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump (fun e ->
              { e with Benchjson.compile_ms = e.Benchjson.compile_ms *. 2.0 }))
       ());
  chk ~expect:true "5x compile time flagged"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump (fun e ->
              { e with Benchjson.compile_ms = e.Benchjson.compile_ms *. 5.0 }))
       ());
  chk ~expect:true "warm 5x slower than cold baseline flagged"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump (fun e ->
              { e with
                Benchjson.warm_compile_ms = e.Benchjson.compile_ms *. 5.0 }))
       ());
  chk ~expect:false "warm within slack of cold passes"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump (fun e ->
              { e with
                Benchjson.warm_compile_ms = e.Benchjson.compile_ms *. 2.0 }))
       ());
  chk ~expect:false "unmeasured warm time passes"
    (Benchjson.compare_runs ~baseline:base
       ~current:(bump (fun e -> { e with Benchjson.warm_compile_ms = 0.0 }))
       ());
  (* the v5 measured-runtime rules *)
  let bump_exec f =
    bump (fun e ->
        { e with
          Benchjson.exec = Option.map f e.Benchjson.exec })
  in
  chk ~expect:true "2x measured runtime flagged"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump_exec (fun x ->
              { x with Benchjson.exec_ms = x.Benchjson.exec_ms *. 2.0 }))
       ());
  chk ~expect:false "1.5x measured runtime within slack"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump_exec (fun x ->
              { x with Benchjson.exec_ms = x.Benchjson.exec_ms *. 1.5 }))
       ());
  chk ~expect:true "lost exec stats flagged"
    (Benchjson.compare_runs ~baseline:base
       ~current:(bump (fun e -> { e with Benchjson.exec = None }))
       ());
  chk ~expect:true "precision loss flagged"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump_exec (fun x ->
              { x with Benchjson.max_err = x.Benchjson.max_err *. 10.0 }))
       ());
  chk ~expect:false "2x max err within slack"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump_exec (fun x ->
              { x with Benchjson.max_err = x.Benchjson.max_err *. 2.0 }))
       ());
  chk ~expect:false "baseline without exec stats gates nothing"
    (Benchjson.compare_runs
       ~baseline:
         (bump (fun e -> { e with Benchjson.exec = None }))
       ~current:base ())

(* each exec gate failure path individually, by rule name: push exactly
   one metric past its slack and assert the message that fires belongs
   to the right rule *)
let test_benchjson_gate_rule_names () =
  let base = sample_run () in
  let bump_exec f =
    {
      base with
      Benchjson.entries =
        List.map
          (fun e -> { e with Benchjson.exec = Option.map f e.Benchjson.exec })
          base.Benchjson.entries;
    }
  in
  let expect name f sub =
    match
      Benchjson.compare_runs ~baseline:base ~current:(bump_exec f) ()
    with
    | [ msg ] ->
        Alcotest.(check bool)
          (str "%s: %S names the rule" name msg)
          true (contains msg sub)
    | msgs ->
        Alcotest.fail
          (str "%s: expected exactly 1 regression, got %d" name
             (List.length msgs))
  in
  expect "runtime rule"
    (fun x -> { x with Benchjson.exec_ms = x.Benchjson.exec_ms *. 2.0 })
    "measured runtime regressed";
  expect "precision rule"
    (fun x -> { x with Benchjson.max_err = x.Benchjson.max_err *. 10.0 })
    "decrypt precision regressed";
  expect "peak ct bytes rule"
    (fun x ->
      { x with Benchjson.peak_ct_bytes = x.Benchjson.peak_ct_bytes * 2 })
    "peak live ciphertext bytes regressed";
  expect "peak key bytes rule"
    (fun x ->
      { x with Benchjson.peak_key_bytes = x.Benchjson.peak_key_bytes * 2 })
    "peak switch-key bytes regressed";
  let pass name msgs =
    Alcotest.(check bool)
      (str "%s: %s" name (String.concat "; " msgs))
      true (msgs = [])
  in
  pass "peak ct bytes within 1.10x slack"
    (Benchjson.compare_runs ~baseline:base
       ~current:
         (bump_exec (fun x ->
              { x with
                Benchjson.peak_ct_bytes =
                  x.Benchjson.peak_ct_bytes * 21 / 20 }))
       ());
  pass "mem_slack loosens the byte rules"
    (Benchjson.compare_runs ~mem_slack:3.0 ~baseline:base
       ~current:
         (bump_exec (fun x ->
              { x with
                Benchjson.peak_ct_bytes = x.Benchjson.peak_ct_bytes * 2;
                peak_key_bytes = x.Benchjson.peak_key_bytes * 2 }))
       ());
  (* a pre-v7 baseline (bytes unmeasured) must not gate byte growth *)
  pass "unmeasured baseline bytes gate nothing"
    (Benchjson.compare_runs
       ~baseline:
         (bump_exec (fun x ->
              { x with Benchjson.peak_ct_bytes = 0; peak_key_bytes = 0 }))
       ~current:base ())

(* ----------------------------------------------------------------- *)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "check"
    [
      ( "oracle",
        [
          t "synth inputs deterministic" test_synth_inputs_deterministic;
          t "accepts correct compilation" test_oracle_accepts_correct;
          t "flags wrong program" test_oracle_flags_wrong_program;
        ] );
      ( "invariants",
        [
          t "clean on pipeline output" test_invariants_clean_on_pipeline_output;
          t "flags corruption" test_invariants_flag_corruption;
        ] );
      ( "metamorphic",
        [ t "200 generated programs" test_metamorphic_200 ] );
      ( "differential",
        [
          t "200 generated programs" test_differential_200;
          t "small apps: pins + oracle" test_differential_small_apps;
          t "lenet: pins" test_differential_lenet;
        ] );
      ( "faults",
        [
          t "stable names" test_faults_names;
          t "every class caught by validator" test_faults_every_class_caught;
          t "declines without a site" test_faults_no_site;
          t "injection never mutates" test_faults_pure;
          t "deterministic in seed" test_faults_deterministic;
        ] );
      ( "diag",
        [
          t "severity and pass names" test_diag_names;
          t "render round trip" test_diag_render_round_trip;
          t "errorf and warnf" test_diag_constructors;
          t "of_exn" test_diag_of_exn;
          t "errors filter" test_diag_errors_filter;
          t "of_validator_error keeps the op" test_diag_of_validator_error;
        ] );
      ( "coverage",
        [
          t "feature extraction" test_coverage_features;
          t "deterministic battery" test_coverage_generate_deterministic;
          t "guided beats uniform" test_coverage_guided_beats_uniform;
          t "distill keeps contributors" test_coverage_distill;
        ] );
      ( "benchjson",
        [
          t "round trip" test_benchjson_round_trip;
          t "v1 files still parse" test_benchjson_v1_compat;
          t "v2 files still parse" test_benchjson_v2_compat;
          t "v3 files still parse" test_benchjson_v3_compat;
          t "v4 files still parse" test_benchjson_v4_compat;
          t "v5 files still parse" test_benchjson_v5_compat;
          t "v6 files still parse" test_benchjson_v6_compat;
          t "v7 fields round trip" test_benchjson_v3_fields;
          t "parser rejects garbage" test_benchjson_parse_rejects;
          t "string escapes" test_benchjson_escapes;
          t "rejects unknown schema" test_benchjson_rejects_unknown_schema;
          t "gate comparator" test_benchjson_gate;
          t "gate rule names" test_benchjson_gate_rule_names;
        ] );
    ]
