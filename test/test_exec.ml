(* The execution tier (@exec): pins on *real* encrypted runtime
   behaviour, locking down the optimized CKKS hot paths.

   - the optimized NTT kernels are bit-exact against the retained
     scalar Reference for every chain prime (and the special prime)
     across n = 2^4 .. 2^12, roundtrip to the identity, and implement
     negacyclic convolution (vs the O(n^2) schoolbook product);
   - the optimized forward transform is measurably faster than the
     Reference at n = 2^12 (the regression guard for the speedup the
     PR claims);
   - all 8 registry apps plus the 2 tensor-frontend apps x all 5
     compilers execute end-to-end on Ckks.Backend within their pinned
     decrypt-precision bounds;
   - runs are byte-identical at pool widths 1 and 4 (deterministic
     parallelism of the RNS limb fan-out). *)

open Fhe_ir
module Reg = Fhe_apps.Registry

let rbits = 28

let wbits = 22

(* ------------------------------------------------------------------ *)
(* NTT: optimized kernels vs the scalar Reference *)

(* primes ≡ 1 (mod 2·4096) serve every n ≤ 4096 *)
let chain_primes = Ckks.Primes.ntt_prime_chain ~n:4096 ~bits:28 ~count:6

let special_prime =
  let ctx = Ckks.Context.make ~n:4096 ~levels:2 () in
  ctx.Ckks.Context.special

let all_primes = chain_primes @ [ special_prime ]

let test_ntt_bit_exact () =
  List.iter
    (fun p ->
      List.iter
        (fun logn ->
          let n = 1 lsl logn in
          let plan = Ckks.Ntt.make_plan ~n ~p in
          let g = Fhe_util.Prng.create ((logn * 7919) + (p land 0xFFFF)) in
          let a = Array.init n (fun _ -> Fhe_util.Prng.int g p) in
          let r = Array.copy a in
          let v = Ckks.Rvec.of_array a in
          Ckks.Ntt.Reference.forward plan r;
          Ckks.Ntt.forward plan v;
          if Ckks.Rvec.to_array v <> r then
            Alcotest.failf "forward differs from Reference: p=%d n=%d" p n;
          Ckks.Ntt.Reference.inverse plan r;
          Ckks.Ntt.inverse plan v;
          if Ckks.Rvec.to_array v <> r then
            Alcotest.failf "inverse differs from Reference: p=%d n=%d" p n;
          if r <> a then
            Alcotest.failf "roundtrip is not the identity: p=%d n=%d" p n)
        [ 4; 5; 6; 7; 8; 9; 10; 11; 12 ])
    all_primes

(* schoolbook negacyclic product, the O(n^2) oracle *)
let negacyclic_mul a b ~n ~p =
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let k = i + j in
      let v = Ckks.Modarith.mul a.(i) b.(j) ~m:p in
      if k < n then out.(k) <- Ckks.Modarith.add out.(k) v ~m:p
      else out.(k - n) <- Ckks.Modarith.sub out.(k - n) v ~m:p
    done
  done;
  out

let test_ntt_negacyclic () =
  List.iter
    (fun p ->
      List.iter
        (fun n ->
          let plan = Ckks.Ntt.make_plan ~n ~p in
          let br = Ckks.Ntt.barrett plan in
          let g = Fhe_util.Prng.create (n + (p land 0xFFFF)) in
          let a = Array.init n (fun _ -> Fhe_util.Prng.int g p) in
          let b = Array.init n (fun _ -> Fhe_util.Prng.int g p) in
          let expect = negacyclic_mul a b ~n ~p in
          let fa = Ckks.Rvec.of_array a and fb = Ckks.Rvec.of_array b in
          Ckks.Ntt.forward plan fa;
          Ckks.Ntt.forward plan fb;
          let fc =
            Ckks.Rvec.of_array
              (Array.init n (fun i ->
                   Ckks.Modarith.Barrett.mul br (Ckks.Rvec.get fa i)
                     (Ckks.Rvec.get fb i)))
          in
          Ckks.Ntt.inverse plan fc;
          if Ckks.Rvec.to_array fc <> expect then
            Alcotest.failf "negacyclic product differs: p=%d n=%d" p n)
        [ 16; 32 ])
    [ List.hd chain_primes; special_prime ]

let test_ntt_speedup () =
  let n = 4096 in
  let p = List.hd chain_primes in
  let plan = Ckks.Ntt.make_plan ~n ~p in
  let g = Fhe_util.Prng.create 5 in
  let a = Array.init n (fun _ -> Fhe_util.Prng.int g p) in
  let reps = 100 in
  let time f =
    ignore (f ());
    let _, ms =
      Fhe_util.Timer.time (fun () ->
          for _ = 1 to reps do
            f ()
          done)
    in
    ms /. float_of_int reps
  in
  (* both kernels map canonical residues to canonical residues *)
  let scratch = Array.copy a in
  let t_ref = time (fun () -> Ckks.Ntt.Reference.forward plan scratch) in
  let v = Ckks.Rvec.of_array a in
  let t_opt = time (fun () -> Ckks.Ntt.forward plan v) in
  let speedup = t_ref /. t_opt in
  if speedup < 3.0 then
    Alcotest.failf
      "optimized NTT only %.2fx over Reference at n=%d (want >= 3x): \
       %.3f ms vs %.3f ms"
      speedup n t_opt t_ref

(* ------------------------------------------------------------------ *)
(* 8 apps x 5 compilers: decrypt-precision pins on the real backend *)

let compilers =
  [ (`Eva, "eva"); (`Hecate, "hecate"); (`Rsv `Ba, "reserve-ba");
    (`Rsv `Ra, "reserve-ra"); (`Rsv `Full, "reserve-full") ]

let compile_with c p ~xmax_bits =
  match c with
  | `Eva -> Fhe_eva.Eva.compile ~xmax_bits ~rbits ~wbits p
  | `Hecate ->
      (Fhe_hecate.Hecate.compile ~iterations:60 ~xmax_bits ~rbits ~wbits p)
        .Fhe_hecate.Hecate.managed
  | `Rsv variant -> Reserve.Pipeline.compile ~variant ~xmax_bits ~rbits ~wbits p

let max_err refs got =
  let worst = ref 0.0 in
  Array.iteri
    (fun o e ->
      Array.iteri
        (fun j x ->
          let d = Float.abs (x -. got.(o).(j)) in
          if d > !worst then worst := d)
        e)
    refs;
  !worst

(* a budget tight enough to force ciphertext spilling on every exec
   app (a level-6 ct at n=512 is ~49 KiB) while the generous key bound
   keeps switch keys resident — key thrash is @mem's subject, not this
   tier's *)
let tight_ct_budget = 262_144

let roomy_key_budget = 64 * 1024 * 1024

let test_precision_pins () =
  List.iter
    (fun (a : Reg.app) ->
      let p = a.Reg.exec_build () in
      let inputs = a.Reg.exec_inputs ~seed:42 in
      let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
      let refs = Fhe_sim.Interp.run_reference p ~inputs in
      List.iter
        (fun (c, label) ->
          let m = compile_with c p ~xmax_bits in
          Validator.check_exn m;
          let got, st = Ckks.Backend.run_timed m ~inputs in
          let err = max_err refs got in
          if err > a.Reg.exec_tol then
            Alcotest.failf "%s/%s: max|err| %g exceeds pinned tolerance %g"
              a.Reg.name label err a.Reg.exec_tol;
          (* the same run under a constrained memory budget: identical
             levels and bit-identical decrypts, so every pin above
             transfers verbatim *)
          let got_b, st_b =
            Ckks.Backend.run_timed ~mem_budget:tight_ct_budget
              ~key_budget:roomy_key_budget m ~inputs
          in
          if st_b.Ckks.Backend.output_levels <> st.Ckks.Backend.output_levels
          then
            Alcotest.failf "%s/%s: output levels changed under mem budget"
              a.Reg.name label;
          Array.iteri
            (fun o s ->
              Array.iteri
                (fun j x ->
                  if
                    not
                      (Int64.equal (Int64.bits_of_float x)
                         (Int64.bits_of_float got_b.(o).(j)))
                  then
                    Alcotest.failf
                      "%s/%s output %d slot %d: unlimited %h vs budgeted %h"
                      a.Reg.name label o j x got_b.(o).(j))
                s)
            got)
        compilers)
    (* the paper's eight plus the tensor-frontend additions: the wide
       (polynomial-activation) and batched (interleaved-packing) MLPs
       carry their own measured-error pins *)
    (Reg.all @ Reg.tensor)

(* ------------------------------------------------------------------ *)
(* deterministic parallelism: -j 1 and -j 4 decrypt bit-identically *)

let test_pool_byte_identity () =
  List.iter
    (fun name ->
      let a = Reg.find name in
      let p = a.Reg.exec_build () in
      let inputs = a.Reg.exec_inputs ~seed:42 in
      let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
      let m = Reserve.Pipeline.compile ~xmax_bits ~rbits ~wbits p in
      let seq = Ckks.Backend.run m ~inputs in
      let par =
        Fhe_par.Pool.with_pool ~domains:4 (fun pool ->
            Ckks.Backend.run ~pool m ~inputs)
      in
      Array.iteri
        (fun o s ->
          Array.iteri
            (fun j x ->
              (* bit equality, not within-epsilon: the parallel fan-out
                 must not reorder a single arithmetic operation *)
              if not (Int64.equal (Int64.bits_of_float x)
                        (Int64.bits_of_float par.(o).(j))) then
                Alcotest.failf "%s output %d slot %d: -j1 %h vs -j4 %h" name o
                  j x par.(o).(j))
            s)
        seq)
    [ "MLP"; "HCD" ]

let suite =
  [ Alcotest.test_case "NTT bit-exact vs Reference (all primes, 2^4..2^12)"
      `Slow test_ntt_bit_exact;
    Alcotest.test_case "NTT negacyclic vs schoolbook" `Slow
      test_ntt_negacyclic;
    Alcotest.test_case "NTT optimized >= 3x Reference at 2^12" `Slow
      test_ntt_speedup;
    Alcotest.test_case
      "10 apps x 5 compilers precision pins (unlimited + tight mem budget)"
      `Slow test_precision_pins;
    Alcotest.test_case "pool width 1 vs 4 bit-identical" `Slow
      test_pool_byte_identity ]

let () = Alcotest.run "fhe-exec" [ ("exec", suite) ]
