(* End-to-end: DSL programs -> scale-management compilers -> real
   RNS-CKKS execution -> decrypted results match the reference. *)

open Fhe_ir

let n_slots = 256

let rbits = 28

let wbits = 22

let inputs2 =
  let g = Fhe_util.Prng.create 77 in
  [ ("x", Array.init n_slots (fun _ -> Fhe_util.Prng.uniform g ~lo:(-0.8) ~hi:0.8));
    ("y", Array.init n_slots (fun _ -> Fhe_util.Prng.uniform g ~lo:(-0.8) ~hi:0.8)) ]

let check_backend ?(tol = 2e-2) p m =
  Helpers.check_valid m;
  let expect = Fhe_sim.Interp.run_reference p ~inputs:inputs2 in
  let got = Ckks.Backend.run m ~inputs:inputs2 in
  Array.iteri
    (fun o e ->
      Array.iteri
        (fun j x ->
          if Float.abs (x -. got.(o).(j)) > tol then
            Alcotest.failf "output %d slot %d: encrypted %g vs expected %g" o j
              got.(o).(j) x)
        e)
    expect

let paper_program () =
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let x3 = Builder.mul b x (Builder.mul b x x) in
  let q = Builder.mul b x3 (Builder.add b (Builder.mul b y y) y) in
  Builder.finish b ~outputs:[ q ]

let test_eva_backend () =
  let p = paper_program () in
  check_backend p (Fhe_eva.Eva.compile ~rbits ~wbits p)

let test_reserve_backend () =
  let p = paper_program () in
  check_backend p (Reserve.Pipeline.compile ~rbits ~wbits p)

let test_hecate_backend () =
  let p = paper_program () in
  let r = Fhe_hecate.Hecate.compile ~iterations:100 ~rbits ~wbits p in
  check_backend p r.Fhe_hecate.Hecate.managed

let test_rotation_program () =
  (* rotations + plaintext masks through the whole stack *)
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x" in
  let sum4 =
    Builder.add b
      (Builder.add b x (Builder.rotate b x 1))
      (Builder.add b (Builder.rotate b x 2) (Builder.rotate b x 3))
  in
  let masked = Builder.mul b sum4 (Builder.vconst b (Array.make 8 0.25)) in
  let p = Builder.finish b ~outputs:[ masked ] in
  check_backend p (Reserve.Pipeline.compile ~rbits ~wbits p)

let test_sub_neg_program () =
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let e = Builder.sub b (Builder.neg b x) (Builder.mul b y (Builder.const b 0.5)) in
  let p = Builder.finish b ~outputs:[ e ] in
  check_backend p (Fhe_eva.Eva.compile ~rbits ~wbits p)

let test_plain_input_program () =
  let b = Builder.create ~n_slots () in
  let x = Builder.input b "x" in
  let w = Builder.input b ~vt:Op.Plain "y" in
  let e = Builder.add b (Builder.mul b x w) x in
  let p = Builder.finish b ~outputs:[ e ] in
  check_backend p (Reserve.Pipeline.compile ~rbits ~wbits p)

let test_rejects_wrong_rbits () =
  let p = paper_program () in
  let m = Fhe_eva.Eva.compile ~rbits:60 ~wbits:30 p in
  try
    ignore (Ckks.Backend.run m ~inputs:inputs2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_small_sobel_encrypted () =
  (* a 16x16 Sobel through the reserve compiler, fully encrypted *)
  let width = 16 in
  let b = Builder.create ~n_slots () in
  let img = Builder.input b "x" in
  let gx =
    Fhe_apps.Kernels.conv2d b img ~width ~height:width
      ~weights:Fhe_apps.Sobel.sobel_x
  in
  let gy =
    Fhe_apps.Kernels.conv2d b img ~width ~height:width
      ~weights:Fhe_apps.Sobel.sobel_y
  in
  let out = Builder.add b (Builder.square b gx) (Builder.square b gy) in
  let p = Builder.finish b ~outputs:[ out ] in
  (* sobel outputs reach ~100: reserve x_max headroom for them and
     loosen the tolerance accordingly *)
  let xmax_bits =
    Fhe_sim.Interp.max_magnitude_bits p ~inputs:inputs2
  in
  check_backend ~tol:0.5 p
    (Reserve.Pipeline.compile ~xmax_bits ~rbits ~wbits p)

(* All eight registry applications (exec-scale variants) end to end
   through the reserve compiler: decrypt within the pinned per-app
   tolerance, and every ciphertext output at exactly the level the
   compiler placed for it — the backend must consume levels as planned,
   not merely produce close numbers. *)
let test_all_apps_encrypted () =
  List.iter
    (fun (a : Fhe_apps.Registry.app) ->
      let module Reg = Fhe_apps.Registry in
      let p = a.Reg.exec_build () in
      let inputs = a.Reg.exec_inputs ~seed:42 in
      let xmax_bits = Fhe_sim.Interp.max_magnitude_bits p ~inputs in
      let m = Reserve.Pipeline.compile ~xmax_bits ~rbits ~wbits p in
      Helpers.check_valid m;
      let expect = Fhe_sim.Interp.run_reference p ~inputs in
      let got, st = Ckks.Backend.run_timed m ~inputs in
      Array.iteri
        (fun o e ->
          Array.iteri
            (fun j x ->
              if Float.abs (x -. got.(o).(j)) > a.Reg.exec_tol then
                Alcotest.failf
                  "%s output %d slot %d: encrypted %g vs expected %g (tol %g)"
                  a.Reg.name o j got.(o).(j) x a.Reg.exec_tol)
            e)
        expect;
      let outs = Program.outputs m.Managed.prog in
      Array.iteri
        (fun o op ->
          if Program.vtype m.Managed.prog op = Op.Cipher then
            Alcotest.(check int)
              (Printf.sprintf "%s output %d level" a.Reg.name o)
              m.Managed.level.(op)
              st.Ckks.Backend.output_levels.(o))
        outs)
    Fhe_apps.Registry.all

let suite =
  [ Alcotest.test_case "paper program via EVA" `Slow test_eva_backend;
    Alcotest.test_case "paper program via reserve" `Slow test_reserve_backend;
    Alcotest.test_case "paper program via hecate" `Slow test_hecate_backend;
    Alcotest.test_case "rotations + masks" `Slow test_rotation_program;
    Alcotest.test_case "sub/neg/plain" `Slow test_sub_neg_program;
    Alcotest.test_case "plaintext input" `Slow test_plain_input_program;
    Alcotest.test_case "rejects mismatched rbits" `Quick
      test_rejects_wrong_rbits;
    Alcotest.test_case "encrypted Sobel 16x16" `Slow
      test_small_sobel_encrypted;
    Alcotest.test_case "all 8 apps encrypted + level pins" `Slow
      test_all_apps_encrypted ]
