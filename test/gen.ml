(* Random arithmetic-program generation for property-based testing —
   the shared generator lives in Fhe_sim.Progen so `fhec fuzz` pushes
   the exact same program distribution through the compilers. *)

type t = Fhe_sim.Progen.t = {
  prog : Fhe_ir.Program.t;
  inputs : (string * float array) list;
}

let make = Fhe_sim.Progen.make
